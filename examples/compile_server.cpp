/**
 * @file
 * The compile daemon binary.
 *
 *   compile_server [options]
 *
 * Options:
 *   --port N        TCP port on 127.0.0.1 (default 7717; 0 = ephemeral,
 *                   printed on stdout for scripts to scrape)
 *   --threads N     service worker threads (default: auto)
 *   --cache N       in-memory result-cache capacity (default 128)
 *   --disk-cache D  directory of the persistent result tier (default:
 *                   off); a restarted daemon pointed at the same
 *                   directory serves repeat compiles from disk
 *   --disk-cap N    disk-tier entry bound (default 512; 0 = unbounded)
 *   --quantum N     DRR gate-credit quantum (default 256)
 *   --inflight N    per-client in-flight budget (default 4; 0 = off)
 *
 * SIGTERM/SIGINT drain gracefully: stop accepting, stream Cancelled for
 * still-queued jobs, finish in-flight compiles, exit 0.
 */
#include <atomic>
#include <csignal>
#include <cstdlib>
#include <iostream>
#include <string>

#include <sys/socket.h>

#include "serve/compile_server.h"

using namespace mussti;

namespace {

// The only async-signal-safe way to stop the daemon: shut down the
// listen socket, which unblocks the accept loop; main() then drains.
std::atomic<int> g_listen_fd{-1};

void
onSignal(int)
{
    const int fd = g_listen_fd.load();
    if (fd >= 0)
        ::shutdown(fd, SHUT_RDWR);
}

void
usage()
{
    std::cerr <<
        "usage: compile_server [--port N] [--threads N] [--cache N]\n"
        "                      [--disk-cache DIR] [--disk-cap N]\n"
        "                      [--quantum N] [--inflight N]\n";
}

} // namespace

int
main(int argc, char **argv)
{
    CompileServerConfig config;
    config.port = 7717;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--port" && i + 1 < argc) {
            config.port = std::atoi(argv[++i]);
        } else if (arg == "--threads" && i + 1 < argc) {
            config.numThreads = std::atoi(argv[++i]);
        } else if (arg == "--cache" && i + 1 < argc) {
            config.cacheCapacity =
                static_cast<std::size_t>(std::atoll(argv[++i]));
        } else if (arg == "--disk-cache" && i + 1 < argc) {
            config.diskCachePath = argv[++i];
        } else if (arg == "--disk-cap" && i + 1 < argc) {
            config.diskCacheCapacity =
                static_cast<std::size_t>(std::atoll(argv[++i]));
        } else if (arg == "--quantum" && i + 1 < argc) {
            config.admission.quantum =
                static_cast<std::uint64_t>(std::atoll(argv[++i]));
        } else if (arg == "--inflight" && i + 1 < argc) {
            config.admission.maxInFlightPerClient =
                static_cast<std::size_t>(std::atoll(argv[++i]));
        } else {
            usage();
            return 2;
        }
    }

    CompileServer server(config);
    if (!server.start()) {
        std::cerr << "compile_server: cannot bind 127.0.0.1:"
                  << config.port << "\n";
        return 1;
    }
    g_listen_fd.store(server.listenFd());
    std::signal(SIGTERM, onSignal);
    std::signal(SIGINT, onSignal);

    // Scripts scrape this line (the CI smoke boots with --port 0).
    std::cout << "compile_server: listening on 127.0.0.1:"
              << server.port() << std::endl;

    server.waitForShutdownRequest();
    std::cout << "compile_server: draining" << std::endl;
    server.stop();
    std::cout << "compile_server: stopped" << std::endl;
    return 0;
}
