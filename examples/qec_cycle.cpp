/**
 * @file
 * QEC-outlook example: compile repeated surface-code syndrome-
 * extraction rounds (the paper's Outlook workload) and inspect where
 * the schedule spends its shuttles using the analyzer API.
 *
 *   qec_cycle [distance] [rounds]
 */
#include <cstdlib>
#include <iostream>

#include "core/compiler.h"
#include "sim/analyzer.h"
#include "sim/timeline.h"
#include "workloads/workloads.h"

int
main(int argc, char **argv)
{
    using namespace mussti;

    const int distance = argc > 1 ? std::atoi(argv[1]) : 5;
    const int rounds = argc > 2 ? std::atoi(argv[2]) : 2;

    const Circuit circuit = makeSurfaceCodeCycle(distance, rounds);
    const MusstiCompiler compiler;
    const auto result = compiler.compile(circuit);
    const auto device = compiler.deviceFor(circuit);

    std::cout << "surface code d=" << distance << ", " << rounds
              << " syndrome rounds\n"
              << "qubits       : " << circuit.numQubits() << " ("
              << distance * distance << " data + "
              << distance * distance - 1 << " ancilla)\n"
              << "modules      : " << device->numModules() << "\n"
              << "CX gates     : " << circuit.twoQubitCount() << "\n"
              << "shuttles     : " << result.metrics.shuttleCount << "\n"
              << "fiber gates  : " << result.metrics.fiberGateCount
              << "\n"
              << "exec time    : " << result.metrics.executionTimeUs
              << " us\n"
              << "log10 F      : " << result.metrics.log10Fidelity()
              << "\n\n";

    const auto report = analyzeSchedule(result.schedule, *device,
                                        compiler.params());
    std::cout << "hottest zones (final n-bar):\n";
    int shown = 0;
    for (int z : report.hottestZones()) {
        if (shown++ == 5)
            break;
        const auto &zone = report.zones[z];
        std::cout << "  module " << zone.module << " "
                  << zoneKindName(zone.kind) << ": heat "
                  << zone.finalHeat << ", " << zone.arrivals
                  << " arrivals, " << zone.gatesExecuted << " gates\n";
    }

    const Timeline timeline(*device);
    const auto t = timeline.replay(result.schedule, circuit.numQubits());
    std::cout << "\nserial time " << t.serialUs << " us vs makespan "
              << t.makespanUs << " us (" << t.parallelism()
              << "x overlap available)\n";
    return 0;
}
