/**
 * @file
 * Static-analysis driver: compile a workload, lint the artifact, and
 * render the findings — the command-line face of src/lint/.
 *
 *   lint_cli [options] <family|file.qasm> [qubits]
 *   lint_cli --search "eml:modules=2..8,cap=8..32:step=8"
 *
 * Options:
 *   --device SPEC    target device spec (default: the paper EML device)
 *   --backend B      mussti (default) | murali | dai | mqt
 *   --json           render the report as mussti-lint-v1 JSON
 *   --corrupt RULE   plant the named violation into the compiled
 *                    schedule before linting (sch.* rule id, or `list`
 *                    to print the catalog) — a self-test that the
 *                    linter catches what it claims to catch
 *   --search TEXT    lint a device spec / spec-search string instead of
 *                    compiling anything (never parses, never fatal()s)
 *
 * Exit status: 0 when the report has no errors, 1 when it does, 2 on
 * usage errors. CI smokes both directions: a golden compile must exit
 * 0 with an empty findings array, and a --corrupt run must exit 1 with
 * the planted rule id in the output.
 */
#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include "arch/device_registry.h"
#include "baselines/backend_factory.h"
#include "circuit/qasm.h"
#include "common/string_util.h"
#include "core/compiler.h"
#include "lint/corrupt.h"
#include "lint/schedule_linter.h"
#include "lint/spec_linter.h"
#include "workloads/workloads.h"

using namespace mussti;

namespace {

void
usage()
{
    std::cerr <<
        "usage: lint_cli [options] <family|file.qasm> [qubits]\n"
        "       lint_cli --search SPEC_OR_SEARCH_TEXT\n"
        "  options: --device SPEC --backend B --json --corrupt RULE\n"
        "  rules:   lint_cli --corrupt list\n";
}

int
renderAndExit(const LintReport &report, bool json)
{
    std::cout << (json ? report.renderJson() : report.renderText());
    return report.ok() ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string backend_name = "mussti";
    std::string device_spec;
    std::string corrupt_rule;
    std::string search_text;
    bool json = false;
    std::string target;
    int qubits = 0;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--device" && i + 1 < argc) {
            device_spec = argv[++i];
        } else if (arg == "--backend" && i + 1 < argc) {
            backend_name = toLower(argv[++i]);
        } else if (arg == "--json") {
            json = true;
        } else if (arg == "--corrupt" && i + 1 < argc) {
            corrupt_rule = argv[++i];
        } else if (arg == "--search" && i + 1 < argc) {
            search_text = argv[++i];
        } else if (arg.rfind("--", 0) == 0) {
            usage();
            return 2;
        } else if (target.empty()) {
            target = arg;
        } else {
            qubits = parseIntArg(arg, "qubit count");
        }
    }

    if (corrupt_rule == "list") {
        for (const std::string &rule : corruptibleRules())
            std::cout << rule << "\n";
        return 0;
    }
    if (!search_text.empty())
        return renderAndExit(lintSpecSearchText(search_text), json);
    if (target.empty()) {
        usage();
        return 2;
    }

    Circuit circuit(1);
    if (target.size() > 5 &&
        target.compare(target.size() - 5, 5, ".qasm") == 0) {
        std::ifstream in(target);
        if (!in) {
            std::cerr << "cannot open " << target << "\n";
            return 2;
        }
        circuit = fromQasmStream(in, target);
    } else {
        circuit = makeBenchmark(target, qubits > 0 ? qubits : 32);
    }

    MusstiConfig config;
    DeviceSpec spec = DeviceRegistry::specOf(config.device);
    if (!device_spec.empty())
        spec = DeviceRegistry::parse(device_spec);

    std::shared_ptr<const ICompilerBackend> backend;
    if (backend_name == "mussti") {
        if (spec.family != DeviceFamily::Eml)
            fatal("backend mussti needs an eml:... device spec, got: " +
                  spec.canonical());
        config.device = spec.eml;
        backend = makeMusstiBackend(config);
    } else {
        if (spec.family != DeviceFamily::Grid)
            fatal("backend " + backend_name + " needs a grid:... device "
                  "spec, got: " + spec.canonical());
        backend = makeGridBackend(backend_name, spec.grid);
    }

    const std::shared_ptr<const TargetDevice> device =
        DeviceRegistry::create(spec, circuit.numQubits());
    CompileResult result = backend->compile(circuit);

    if (!corrupt_rule.empty() &&
        !corruptSchedule(result.schedule, result.lowered, *device,
                         corrupt_rule)) {
        std::cerr << "cannot stage corruption `" << corrupt_rule
                  << "` on this schedule — pick a richer workload\n";
        return 2;
    }

    LintReport report =
        lintSchedule(result.schedule, result.lowered, *device);
    report.merge(lintDeviceSpec(spec, circuit.numQubits()));
    return renderAndExit(report, json);
}
