/**
 * @file
 * QASM workflow example: import an OpenQASM 2.0 file (or a built-in
 * demo if none is given), compile it with MUSS-TI, report metrics, and
 * export the (SWAP-lowered) circuit back to QASM on stdout.
 *
 *   qasm_roundtrip [file.qasm]
 */
#include <fstream>
#include <iostream>
#include <sstream>

#include "circuit/qasm.h"
#include "core/compiler.h"
#include "workloads/workloads.h"

int
main(int argc, char **argv)
{
    using namespace mussti;

    Circuit circuit(1);
    if (argc > 1) {
        std::ifstream in(argv[1]);
        if (!in) {
            std::cerr << "cannot open " << argv[1] << "\n";
            return 1;
        }
        circuit = fromQasmStream(in, argv[1]);
    } else {
        // Demo: generate, export, and re-import a QFT to show the
        // round trip.
        const Circuit qft = makeQft(16);
        circuit = fromQasm(toQasm(qft), qft.name());
    }

    const MusstiCompiler compiler;
    const auto result = compiler.compile(circuit);

    std::cerr << "parsed " << circuit.name() << ": "
              << circuit.numQubits() << " qubits, "
              << circuit.twoQubitCount() << " two-qubit gates\n"
              << "shuttles: " << result.metrics.shuttleCount
              << ", execution " << result.metrics.executionTimeUs
              << " us, log10 fidelity "
              << result.metrics.log10Fidelity() << "\n"
              << "-- lowered QASM on stdout --\n";
    std::cout << toQasm(result.lowered);
    return 0;
}
