/**
 * @file
 * QASM workflow example: import an OpenQASM 2.0 file (or a built-in
 * demo if none is given), compile it with MUSS-TI onto a registry-spec
 * device, report metrics, and export the (SWAP-lowered) circuit back
 * to QASM on stdout.
 *
 *   qasm_roundtrip [file.qasm] [device-spec]
 *   qasm_roundtrip my.qasm eml:cap=20,optical=2
 */
#include <fstream>
#include <iostream>
#include <sstream>

#include "arch/device_registry.h"
#include "circuit/qasm.h"
#include "core/compiler.h"
#include "workloads/workloads.h"

int
main(int argc, char **argv)
{
    using namespace mussti;

    Circuit circuit(1);
    if (argc > 1) {
        std::ifstream in(argv[1]);
        if (!in) {
            std::cerr << "cannot open " << argv[1] << "\n";
            return 1;
        }
        circuit = fromQasmStream(in, argv[1]);
    } else {
        // Demo: generate, export, and re-import a QFT to show the
        // round trip.
        const Circuit qft = makeQft(16);
        circuit = fromQasm(toQasm(qft), qft.name());
    }

    // The target device arrives as a registry spec, like every other
    // entry point (paper defaults when none is given).
    const DeviceSpec spec = DeviceRegistry::parse(
        argc > 2 ? argv[2] : "eml:cap=16,storage=2,op=1,optical=1");
    if (spec.family != DeviceFamily::Eml)
        fatal("qasm_roundtrip compiles with MUSS-TI; pass an eml:... "
              "spec, got: " + spec.canonical());

    MusstiConfig config;
    config.device = spec.eml;
    const MusstiCompiler compiler(config);
    const auto result = compiler.compile(circuit);

    std::cerr << "device: " << compiler.deviceFor(circuit)->describe()
              << "\n"
              << "parsed " << circuit.name() << ": "
              << circuit.numQubits() << " qubits, "
              << circuit.twoQubitCount() << " two-qubit gates\n"
              << "shuttles: " << result.metrics.shuttleCount
              << ", execution " << result.metrics.executionTimeUs
              << " us, log10 fidelity "
              << result.metrics.log10Fidelity() << "\n"
              << "-- lowered QASM on stdout --\n";
    std::cout << toQasm(result.lowered);
    return 0;
}
