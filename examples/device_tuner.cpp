/**
 * @file
 * Device-aware auto-tuner CLI: search the DeviceRegistry spec space for
 * the device that best serves a workload set, and report a Pareto front
 * plus one recommended spec.
 *
 *   device_tuner --workload qaoa:96 --search 'eml:modules=2..8,cap=8..32'
 *   device_tuner --workload bv:64 --workload ghz:64 \
 *       --search 'eml:modules=2..4,cap=12..20:step=4' --json sweep.json
 *
 * Options:
 *   --search SPEC        search-space spec (required; see
 *                        src/arch/README.md for the range grammar, e.g.
 *                        eml:modules=2..8,cap=8..32:step=8 or
 *                        eml:hetero=2.1.1-2.1.1|2.1.2-2.1.1,cap=16)
 *   --workload F:N       family:qubits (repeatable; default qaoa:96)
 *   --backend B          backend for grid:... searches (murali | dai |
 *                        mqt; eml searches always use mussti)
 *   --seed N             base seed for per-job seed derivation
 *   --threads N          sweep pool size (default: MUSSTI_BENCH_THREADS
 *                        or hardware concurrency)
 *   --json [PATH]        write the sweep trajectory as mussti-bench-v1
 *                        JSON (default path device_tuner_results.json)
 *
 * The sweep is deterministic: the same search at any --threads value
 * yields a bit-identical Pareto front and recommendation.
 */
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "common/bench_json.h"
#include "common/string_util.h"
#include "tune/tuner.h"

using namespace mussti;

namespace {

void
usage()
{
    std::cerr <<
        "usage: device_tuner --search SPEC [options]\n"
        "  --search SPEC    e.g. 'eml:modules=2..8,cap=8..32:step=8'\n"
        "  --workload F:N   family:qubits (repeatable; default qaoa:96)\n"
        "  --backend B      grid-search backend (murali | dai | mqt)\n"
        "  --seed N --threads N --json [PATH]\n";
}

/** The sweep trajectory as bench records (one per feasible job). */
std::vector<BenchRecord>
trajectoryRecords(const TunerConfig &config, const TuneOutcome &outcome)
{
    std::vector<BenchRecord> records;
    for (const TuneCandidate &candidate : outcome.candidates) {
        if (!candidate.feasible)
            continue;
        for (std::size_t w = 0; w < config.workloads.size(); ++w) {
            const TuneWorkload &workload = config.workloads[w];
            const ScoreCard &card = candidate.perWorkload[w];
            BenchRecord record;
            record.suite = "device_tuner/" + workload.label();
            record.name = candidate.spec.canonical();
            record.qubits = workload.qubits;
            record.repeats = 1;
            record.wallMs = 1e3 * card.compileTimeSec;
            record.shuttles = card.shuttles;
            record.makespanUs = card.makespanUs;
            record.log10Fidelity = card.log10Fidelity;
            records.push_back(std::move(record));
        }
    }
    return records;
}

} // namespace

int
main(int argc, char **argv)
{
    TunerConfig config;
    std::string json_path;
    bool emit_json = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--search" && i + 1 < argc) {
            config.search = argv[++i];
        } else if (arg == "--workload" && i + 1 < argc) {
            config.workloads.push_back(parseTuneWorkload(argv[++i]));
        } else if (arg == "--backend" && i + 1 < argc) {
            config.gridBackend = toLower(argv[++i]);
        } else if (arg == "--seed" && i + 1 < argc) {
            config.baseSeed = static_cast<std::uint64_t>(
                parseIntArg(argv[++i], "base seed"));
        } else if (arg == "--threads" && i + 1 < argc) {
            config.numThreads = parseIntArg(argv[++i], "thread count");
        } else if (arg == "--json") {
            emit_json = true;
            if (i + 1 < argc && argv[i + 1][0] != '-')
                json_path = argv[++i];
            if (json_path.empty())
                json_path = "device_tuner_results.json";
        } else {
            usage();
            return 2;
        }
    }
    if (config.search.empty()) {
        usage();
        return 2;
    }
    if (config.workloads.empty())
        config.workloads.push_back(parseTuneWorkload("qaoa:96"));
    if (config.numThreads <= 0)
        config.numThreads = CompileService::parseThreadCount(
            std::getenv("MUSSTI_BENCH_THREADS"));

    const SpecSearchSpace space = parseSpecSearch(config.search);
    std::cout << "search       : " << config.search << "\n"
              << "space        : " << space.describe() << "\n"
              << "workloads    :";
    for (const TuneWorkload &workload : config.workloads)
        std::cout << " " << workload.label();
    std::cout << "\n\n";

    const TuneOutcome outcome = tuneDeviceSpec(config, space);

    std::size_t infeasible = 0;
    for (const TuneCandidate &candidate : outcome.candidates)
        infeasible += candidate.feasible ? 0 : 1;

    std::printf("%-44s  %12s  %12s  %9s  %s\n", "device spec",
                "log10(F)", "makespan(us)", "shuttles", "front");
    for (const TuneCandidate &candidate : outcome.candidates) {
        if (!candidate.feasible)
            continue;
        std::printf("%-44s  %12.2f  %12.0f  %9lld  %s\n",
                    candidate.spec.canonical().c_str(),
                    candidate.total.log10Fidelity,
                    candidate.total.makespanUs, candidate.total.shuttles,
                    candidate.onParetoFront ? "*" : "");
    }
    if (infeasible > 0)
        std::cout << "(" << infeasible << " of "
                  << outcome.candidates.size()
                  << " candidates infeasible for the workload set)\n";

    const TuneCandidate &best = outcome.recommendedCandidate();
    std::cout << "\npareto front : " << outcome.paretoFront.size()
              << " of " << outcome.candidates.size() - infeasible
              << " feasible candidate(s) (*)\n"
              << "recommended  : " << best.spec.canonical() << "\n";

    if (emit_json) {
        std::string context = "device_tuner --search '" + config.search +
            "'";
        for (const TuneWorkload &workload : config.workloads)
            context += " --workload " + workload.family + ":" +
                std::to_string(workload.qubits);
        context += "; recommended=" + best.spec.canonical();
        writeBenchResults(json_path, trajectoryRecords(config, outcome),
                          context);
        std::cout << "trajectory   : " << json_path << "\n";
    }
    return 0;
}
