/**
 * @file
 * Command-line client of the compile daemon.
 *
 *   compile_client [options] <family|file.qasm> [qubits]
 *   compile_client --stats
 *
 * Options:
 *   --host H         daemon address (default 127.0.0.1)
 *   --port N         daemon port (default 7717)
 *   --client NAME    admission identity: requests sharing a name share
 *                    one fair-admission queue (default "cli")
 *   --qasm FILE      submit the QASM file's text (same as a positional
 *                    *.qasm argument)
 *   --device SPEC    device spec (DeviceRegistry grammar)
 *   --backend B      mussti (default) | murali | dai | mqt
 *   --seed S         explicit compile seed
 *   --deadline-ms N  per-job deadline, relative, server-anchored
 *   --count N        submit the circuit N times, pipelined (cache and
 *                    fairness exercises); responses print as they land
 *   --json           print each response as its wire JSON payload
 *   --stats          print the daemon's counters instead of compiling
 *
 * Exit status: 0 if every response was ok, 1 otherwise — so scripts can
 * assert a deadline was met without parsing.
 *
 * The fingerprint in every ok response is resultFingerprint() of the
 * server-side compile; compile_cli prints the same digest for a local
 * run, so `compile_client qft 32` vs `compile_cli qft 32` is the
 * end-to-end determinism check in one diff.
 */
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "serve/compile_client.h"
#include "serve/protocol.h"

using namespace mussti;

namespace {

void
usage()
{
    std::cerr <<
        "usage: compile_client [options] <family|file.qasm> [qubits]\n"
        "       compile_client --stats\n"
        "  options: --host H --port N --client NAME --qasm FILE\n"
        "           --device SPEC --backend B --seed S --deadline-ms N\n"
        "           --count N --json\n";
}

bool
printResponse(const ServeResponse &response, bool json)
{
    if (json) {
        std::cout << encodeResponse(response) << "\n";
        return response.ok;
    }
    if (!response.ok) {
        std::cout << "error        : " << response.error.category << " ["
                  << response.error.code << "] " << response.error.message
                  << "\n";
        return false;
    }
    std::cout << "response id  : " << response.id << "\n"
              << "fingerprint  : 0x" << std::hex << response.fingerprint
              << std::dec << "\n"
              << "exec time    : " << response.executionTimeUs << " us\n"
              << "log10 fid    : " << response.log10Fidelity << "\n"
              << "shuttles     : " << response.shuttles << "\n"
              << "swap inserts : " << response.swapInsertions << "\n"
              << "attempts     : " << response.attempts << "\n";
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string host = "127.0.0.1";
    int port = 7717;
    ServeRequest request;
    request.client = "cli";
    bool json = false;
    bool stats = false;
    int count = 1;
    std::string qasm_file;
    std::string target;
    int qubits = 0;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--host" && i + 1 < argc) {
            host = argv[++i];
        } else if (arg == "--port" && i + 1 < argc) {
            port = std::atoi(argv[++i]);
        } else if (arg == "--client" && i + 1 < argc) {
            request.client = argv[++i];
        } else if (arg == "--qasm" && i + 1 < argc) {
            qasm_file = argv[++i];
        } else if (arg == "--device" && i + 1 < argc) {
            request.device = argv[++i];
        } else if (arg == "--backend" && i + 1 < argc) {
            request.backend = argv[++i];
        } else if (arg == "--seed" && i + 1 < argc) {
            request.seed = std::strtoull(argv[++i], nullptr, 0);
            request.hasSeed = true;
        } else if (arg == "--deadline-ms" && i + 1 < argc) {
            request.deadlineMs = std::atoll(argv[++i]);
        } else if (arg == "--count" && i + 1 < argc) {
            count = std::atoi(argv[++i]);
        } else if (arg == "--json") {
            json = true;
        } else if (arg == "--stats") {
            stats = true;
        } else if (arg.rfind("--", 0) == 0) {
            usage();
            return 2;
        } else if (target.empty()) {
            target = arg;
        } else {
            qubits = std::atoi(arg.c_str());
        }
    }

    if (target.size() > 5 &&
        target.compare(target.size() - 5, 5, ".qasm") == 0) {
        qasm_file = target;
        target.clear();
    }
    if (!stats && qasm_file.empty() && target.empty()) {
        usage();
        return 2;
    }

    if (!qasm_file.empty()) {
        std::ifstream in(qasm_file);
        if (!in) {
            std::cerr << "cannot open " << qasm_file << "\n";
            return 1;
        }
        std::ostringstream text;
        text << in.rdbuf();
        request.qasm = text.str();
        request.name = qasm_file;
    } else {
        request.family = target;
        request.qubits = qubits;
    }

    CompileClient client;
    if (!client.connect(host, port)) {
        std::cerr << "cannot connect to " << host << ":" << port << "\n";
        return 1;
    }

    if (stats) {
        const ServeResponse response = client.stats(request.client);
        if (json) {
            std::cout << encodeResponse(response) << "\n";
        } else {
            for (const auto &[key, value] : response.stats)
                std::cout << key << " : " << value << "\n";
        }
        return response.ok ? 0 : 1;
    }

    // Pipeline the batch: send everything, then collect. The server
    // streams completions, so awaits in id order still drain frames as
    // they arrive (out-of-order ones buffer inside the client).
    std::vector<std::uint64_t> ids;
    for (int i = 0; i < count; ++i)
        ids.push_back(client.send(request));

    bool all_ok = true;
    for (std::size_t i = 0; i < ids.size(); ++i) {
        if (i > 0 && !json)
            std::cout << "\n";
        all_ok = printResponse(client.await(ids[i]), json) && all_ok;
    }
    return all_ok ? 0 : 1;
}
