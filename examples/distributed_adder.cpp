/**
 * @file
 * Distributed arithmetic example: a 128-qubit ripple-carry adder spans
 * four EML-QCCD modules. Shows how SWAP insertion migrates qubits whose
 * future work lives on another module, and compares against disabling
 * the mechanism — the paper's Fig 5 scenario at application scale.
 */
#include <iostream>

#include "core/compiler.h"
#include "workloads/workloads.h"

int
main()
{
    using namespace mussti;

    const Circuit circuit = makeAdder(128);

    MusstiConfig with_swaps;            // paper defaults
    MusstiConfig without_swaps;
    without_swaps.enableSwapInsertion = false;

    const auto on = MusstiCompiler(with_swaps).compile(circuit);
    const auto off = MusstiCompiler(without_swaps).compile(circuit);

    std::cout << "Adder_n128 on a 4-module EML-QCCD\n\n";
    std::cout << "                       with SWAP-insert   without\n";
    std::cout << "shuttles             : " << on.metrics.shuttleCount
              << "\t\t" << off.metrics.shuttleCount << "\n";
    std::cout << "fiber gates          : " << on.metrics.fiberGateCount
              << "\t\t" << off.metrics.fiberGateCount << "\n";
    std::cout << "inserted SWAPs       : " << on.swapInsertions
              << "\t\t" << off.swapInsertions << "\n";
    std::cout << "execution time (us)  : " << on.metrics.executionTimeUs
              << "\t" << off.metrics.executionTimeUs << "\n";
    std::cout << "log10 fidelity       : " << on.metrics.log10Fidelity()
              << "\t" << off.metrics.log10Fidelity() << "\n";

    // Walk the op stream and show the first inserted logical SWAP.
    int shown = 0;
    for (const auto &op : on.schedule.ops) {
        if (op.inserted && shown < 3) {
            std::cout << "inserted gate        : " << op.describe()
                      << "\n";
            ++shown;
        }
    }
    if (shown == 0)
        std::cout << "(no SWAPs were inserted for this mapping)\n";
    return 0;
}
