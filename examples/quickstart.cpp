/**
 * @file
 * Quickstart: compile a 64-qubit GHZ circuit onto a 2-module EML-QCCD
 * device with paper-default settings and print the headline metrics.
 *
 * Build and run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */
#include <iostream>

#include "arch/device_registry.h"
#include "core/compiler.h"
#include "workloads/workloads.h"

int
main()
{
    using namespace mussti;

    // 1. Get a circuit: a 64-qubit GHZ state (or parse your own QASM
    //    via fromQasm()).
    const Circuit circuit = makeGhz(64);

    // 2. Pick the target device by spec: the paper's EML module — trap
    //    capacity 16, one optical + one operation + two storage zones
    //    per module, a module per 32 qubits. (The same grammar selects
    //    any architecture: try "grid:8x8,cap=16" with a grid backend,
    //    or "eml:hetero=2.1.2-2.1.1,cap=16" for per-module zone
    //    counts.)
    const DeviceSpec spec = DeviceRegistry::parse(
        "eml:cap=16,storage=2,op=1,optical=1,maxq=32");

    // 3. Configure the compiler with it. The remaining defaults
    //    reproduce the paper: look-ahead k=8, SWAP threshold T=4,
    //    SABRE mapping.
    MusstiConfig config;
    config.device = spec.eml;
    const MusstiCompiler compiler(config);

    // 4. Compile.
    const CompileResult result = compiler.compile(circuit);

    // 5. Inspect.
    const auto device = compiler.deviceFor(circuit);
    std::cout << "circuit           : " << circuit.name() << "\n"
              << "qubits            : " << circuit.numQubits() << "\n"
              << "two-qubit gates   : " << circuit.twoQubitCount() << "\n"
              << "device            : " << device->describe() << "\n"
              << "modules           : " << device->numModules() << "\n"
              << "shuttle ops       : " << result.metrics.shuttleCount
              << "\n"
              << "fiber gates       : " << result.metrics.fiberGateCount
              << "\n"
              << "inserted SWAPs    : " << result.swapInsertions << "\n"
              << "execution time    : " << result.metrics.executionTimeUs
              << " us\n"
              << "fidelity          : " << result.metrics.fidelity()
              << "  (log10 = " << result.metrics.log10Fidelity() << ")\n"
              << "compile time      : " << result.compileTimeSec
              << " s\n";
    return 0;
}
