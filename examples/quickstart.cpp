/**
 * @file
 * Quickstart: compile a 64-qubit GHZ circuit onto a 2-module EML-QCCD
 * device with paper-default settings and print the headline metrics.
 *
 * Build and run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */
#include <iostream>

#include "core/compiler.h"
#include "workloads/workloads.h"

int
main()
{
    using namespace mussti;

    // 1. Get a circuit: a 64-qubit GHZ state (or parse your own QASM
    //    via fromQasm()).
    const Circuit circuit = makeGhz(64);

    // 2. Configure the compiler. Defaults reproduce the paper: look-
    //    ahead k=8, SWAP threshold T=4, SABRE mapping, trap capacity
    //    16, one optical + one operation + two storage zones per
    //    module, a module per 32 qubits.
    MusstiConfig config;
    const MusstiCompiler compiler(config);

    // 3. Compile.
    const CompileResult result = compiler.compile(circuit);

    // 4. Inspect.
    const EmlDevice device = compiler.deviceFor(circuit);
    std::cout << "circuit           : " << circuit.name() << "\n"
              << "qubits            : " << circuit.numQubits() << "\n"
              << "two-qubit gates   : " << circuit.twoQubitCount() << "\n"
              << "modules           : " << device.numModules() << "\n"
              << "shuttle ops       : " << result.metrics.shuttleCount
              << "\n"
              << "fiber gates       : " << result.metrics.fiberGateCount
              << "\n"
              << "inserted SWAPs    : " << result.swapInsertions << "\n"
              << "execution time    : " << result.metrics.executionTimeUs
              << " us\n"
              << "fidelity          : " << result.metrics.fidelity()
              << "  (log10 = " << result.metrics.log10Fidelity() << ")\n"
              << "compile time      : " << result.compileTimeSec
              << " s\n";
    return 0;
}
