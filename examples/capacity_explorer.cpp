/**
 * @file
 * Architecture co-design example (paper section 5.3): sweep the EML
 * trap capacity for a workload supplied on the command line and report
 * where fidelity peaks. Usage:
 *
 *   capacity_explorer [family] [qubits]
 *   capacity_explorer sqrt 117
 */
#include <cstdlib>
#include <iostream>

#include "core/compiler.h"
#include "workloads/workloads.h"

int
main(int argc, char **argv)
{
    using namespace mussti;

    const std::string family = argc > 1 ? argv[1] : "bv";
    const int qubits = argc > 2 ? std::atoi(argv[2]) : 128;

    const Circuit circuit = makeBenchmark(family, qubits);
    std::cout << "Trap-capacity sweep for " << circuit.name() << " ("
              << circuit.twoQubitCount() << " two-qubit gates)\n\n";
    std::cout << "capacity  shuttles  time(us)   log10(fidelity)\n";

    int best_capacity = 0;
    double best = -1e300;
    for (int capacity = 12; capacity <= 20; capacity += 2) {
        MusstiConfig config;
        config.device.trapCapacity = capacity;
        const auto result = MusstiCompiler(config).compile(circuit);
        std::printf("%8d  %8d  %9.0f  %15.2f\n", capacity,
                    result.metrics.shuttleCount,
                    result.metrics.executionTimeUs,
                    result.metrics.log10Fidelity());
        if (result.metrics.lnFidelity > best) {
            best = result.metrics.lnFidelity;
            best_capacity = capacity;
        }
    }
    std::cout << "\nBest capacity for " << circuit.name() << ": "
              << best_capacity
              << " (paper: 14-18 is consistently good in EML-QCCD)\n";
    return 0;
}
