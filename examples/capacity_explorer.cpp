/**
 * @file
 * Architecture co-design example (paper section 5.3, extended): sweep
 * the EML trap capacity for a workload supplied on the command line and
 * report where fidelity peaks — then sweep heterogeneous per-module
 * zone mixes (a scenario the paper never ran, unlocked by the
 * DeviceRegistry's `eml:hetero=...` specs) against the uniform device.
 *
 *   capacity_explorer [family] [qubits]
 *   capacity_explorer sqrt 117
 *   capacity_explorer --spec eml:hetero=2.1.2-2.1.1,cap=16 bv 64
 */
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "arch/device_registry.h"
#include "common/string_util.h"
#include "core/compiler.h"
#include "workloads/workloads.h"

using namespace mussti;

namespace {

/** Compile the circuit on the spec'd device and print one table row. */
CompileResult
runRow(const Circuit &circuit, const DeviceSpec &spec,
       const std::string &label)
{
    MusstiConfig config;
    config.device = spec.eml;
    const auto result = MusstiCompiler(config).compile(circuit);
    std::printf("%-34s  %8d  %9.0f  %15.2f\n", label.c_str(),
                result.metrics.shuttleCount,
                result.metrics.executionTimeUs,
                result.metrics.log10Fidelity());
    return result;
}

/** Uniform 2.1.1 modules with module `hub` (if any) enriched. */
std::string
hubSpec(int modules, int hub, const EmlModuleMix &hub_mix, int capacity)
{
    std::vector<EmlModuleMix> mixes(modules);
    if (hub >= 0 && hub < modules)
        mixes[hub] = hub_mix;
    return DeviceRegistry::heteroSpec(mixes, capacity);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string family = "bv";
    int qubits = 128;
    std::string explicit_spec;
    std::vector<std::string> positional;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--spec") == 0 && i + 1 < argc)
            explicit_spec = argv[++i];
        else
            positional.push_back(argv[i]);
    }
    if (!positional.empty())
        family = positional[0];
    if (positional.size() > 1) {
        qubits = parseIntArg(positional[1], "qubit count");
        MUSSTI_REQUIRE(qubits > 0, "qubit count must be positive, got "
                       << positional[1]);
    }

    const Circuit circuit = makeBenchmark(family, qubits);
    std::cout << "Device sweep for " << circuit.name() << " ("
              << circuit.twoQubitCount() << " two-qubit gates)\n\n";

    if (!explicit_spec.empty()) {
        // One-shot mode: compile end-to-end on the given spec.
        const DeviceSpec spec = DeviceRegistry::parse(explicit_spec);
        if (spec.family != DeviceFamily::Eml)
            fatal("capacity_explorer sweeps EML devices; got: " +
                  spec.canonical());
        std::cout << DeviceRegistry::create(spec, qubits)->describe()
                  << "\n\n";
        std::printf("%-34s  %8s  %9s  %15s\n", "device", "shuttles",
                    "time(us)", "log10(fidelity)");
        runRow(circuit, spec, spec.canonical());
        return 0;
    }

    // ---- Sweep 1: uniform trap capacity (paper Fig 7). -----------------
    std::printf("%-34s  %8s  %9s  %15s\n", "capacity", "shuttles",
                "time(us)", "log10(fidelity)");
    int best_capacity = 0;
    double best = -1e300;
    for (int capacity = 12; capacity <= 20; capacity += 2) {
        std::ostringstream spec_text;
        spec_text << "eml:cap=" << capacity;
        const DeviceSpec spec = DeviceRegistry::parse(spec_text.str());
        const auto result = runRow(circuit, spec,
                                   std::to_string(capacity));
        if (result.metrics.lnFidelity > best) {
            best = result.metrics.lnFidelity;
            best_capacity = capacity;
        }
    }
    std::cout << "\nBest capacity for " << circuit.name() << ": "
              << best_capacity
              << " (paper: 14-18 is consistently good in EML-QCCD)\n\n";

    // ---- Sweep 2: heterogeneous per-module zone mixes. -----------------
    // The uniform device gives every module the same 2.1.1 layout; the
    // hetero specs enrich one "hub" module (extra optical or operation
    // zones) at the same trap capacity, asking whether the fidelity
    // budget prefers a fat hub over symmetric modules.
    const int modules = (qubits + 31) / 32;
    if (modules < 2) {
        std::cout << "(heterogeneous sweep needs a multi-module "
                     "workload; try >= 33 qubits)\n";
        return 0;
    }
    std::printf("%-34s  %8s  %9s  %15s\n", "module mix", "shuttles",
                "time(us)", "log10(fidelity)");
    runRow(circuit, DeviceRegistry::parse(
               hubSpec(modules, -1, {}, best_capacity)),
           "uniform 2.1.1");
    runRow(circuit, DeviceRegistry::parse(
               hubSpec(modules, 0, {2, 1, 2}, best_capacity)),
           "optical hub (2.1.2 first)");
    runRow(circuit, DeviceRegistry::parse(
               hubSpec(modules, 0, {2, 2, 1}, best_capacity)),
           "operation hub (2.2.1 first)");
    runRow(circuit, DeviceRegistry::parse(
               hubSpec(modules, modules / 2, {3, 1, 2}, best_capacity)),
           "fat middle (3.1.2 center)");
    std::cout << "\n(heterogeneous specs: eml:hetero=S.O.X-... — see "
                 "src/arch/README.md)\n";
    return 0;
}
