/**
 * @file
 * Command-line compiler driver: the "downstream user" entry point.
 *
 *   compile_cli [options] <family|file.qasm> [qubits]
 *
 * Options:
 *   --trivial            use trivial mapping (default: SABRE)
 *   --no-swap-insert     disable section-3.3 SWAP insertion
 *   --capacity N         trap capacity (default 16)
 *   --optical N          optical zones per module (default 1)
 *   --lookahead K        weight-table window (default 8)
 *   --policy P           anticipatory-lru | lru | fifo | random
 *   --trace [N]          print the first N schedule ops (default 40)
 *   --validate           run the schedule validator and report
 *
 * Examples:
 *   compile_cli sqrt 117
 *   compile_cli --capacity 20 --optical 2 ran 256
 *   compile_cli --trace 20 --validate my_circuit.qasm
 */
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include "circuit/qasm.h"
#include "core/compile_service.h"
#include "core/compiler.h"
#include "sim/trace.h"
#include "sim/validator.h"
#include "workloads/workloads.h"

using namespace mussti;

namespace {

void
usage()
{
    std::cerr <<
        "usage: compile_cli [options] <family|file.qasm> [qubits]\n"
        "  families: adder bv ghz qaoa qft sqrt ran sc ising qv wstate\n"
        "  options: --trivial --no-swap-insert --capacity N --optical N\n"
        "           --lookahead K --policy P --trace [N] --validate\n";
}

} // namespace

int
main(int argc, char **argv)
{
    MusstiConfig config;
    bool trace = false;
    int trace_ops = 40;
    bool validate = false;
    std::string target;
    int qubits = 0;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--trivial") {
            config.mapping = MappingKind::Trivial;
        } else if (arg == "--no-swap-insert") {
            config.enableSwapInsertion = false;
        } else if (arg == "--capacity" && i + 1 < argc) {
            config.device.trapCapacity = std::atoi(argv[++i]);
        } else if (arg == "--optical" && i + 1 < argc) {
            config.device.numOpticalZones = std::atoi(argv[++i]);
        } else if (arg == "--lookahead" && i + 1 < argc) {
            config.lookAhead = std::atoi(argv[++i]);
        } else if (arg == "--policy" && i + 1 < argc) {
            const std::string p = argv[++i];
            if (p == "anticipatory-lru")
                config.replacement = ReplacementPolicy::AnticipatoryLru;
            else if (p == "lru")
                config.replacement = ReplacementPolicy::Lru;
            else if (p == "fifo")
                config.replacement = ReplacementPolicy::Fifo;
            else if (p == "random")
                config.replacement = ReplacementPolicy::Random;
            else {
                usage();
                return 2;
            }
        } else if (arg == "--trace") {
            trace = true;
            if (i + 1 < argc && std::isdigit(
                    static_cast<unsigned char>(argv[i + 1][0])))
                trace_ops = std::atoi(argv[++i]);
        } else if (arg == "--validate") {
            validate = true;
        } else if (arg.rfind("--", 0) == 0) {
            usage();
            return 2;
        } else if (target.empty()) {
            target = arg;
        } else {
            qubits = std::atoi(arg.c_str());
        }
    }
    if (target.empty()) {
        usage();
        return 2;
    }

    Circuit circuit(1);
    if (target.size() > 5 &&
        target.compare(target.size() - 5, 5, ".qasm") == 0) {
        std::ifstream in(target);
        if (!in) {
            std::cerr << "cannot open " << target << "\n";
            return 1;
        }
        circuit = fromQasmStream(in, target);
    } else {
        circuit = makeBenchmark(target, qubits > 0 ? qubits : 32);
    }

    const auto compiler = std::make_shared<const MusstiCompiler>(config);
    CompileServiceConfig service_config;
    service_config.numThreads = 1;   // one job; no pool needed
    service_config.cacheCapacity = 0;
    CompileService service(service_config);
    const auto result = service.submit(compiler, circuit).get();
    const EmlDevice device = compiler->deviceFor(circuit);

    std::cout << "circuit      : " << circuit.name() << " ("
              << circuit.numQubits() << " qubits, "
              << circuit.twoQubitCount() << " 2q gates)\n"
              << "device       : " << device.numModules()
              << " modules, capacity "
              << config.device.trapCapacity << ", "
              << config.device.numOpticalZones << " optical zone(s)\n"
              << "schedule     : " << summarizeSchedule(result.schedule)
              << "\n"
              << "swap inserts : " << result.swapInsertions << "\n"
              << "evictions    : " << result.evictions << "\n"
              << "exec time    : " << result.metrics.executionTimeUs
              << " us\n"
              << "fidelity     : " << result.metrics.fidelity()
              << " (log10 " << result.metrics.log10Fidelity() << ")\n"
              << "compile time : " << result.compileTimeSec << " s\n";

    if (trace) {
        std::cout << "\n" << formatSchedule(result.schedule,
                                            device.zoneInfos(),
                                            trace_ops);
    }
    if (validate) {
        const auto report = ScheduleValidator(device.zoneInfos())
                                .validate(result.schedule, result.lowered);
        std::cout << "validation   : "
                  << (report ? "PASS" : "FAIL: " + report.firstError)
                  << "\n";
        return report ? 0 : 1;
    }
    return 0;
}
