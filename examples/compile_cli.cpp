/**
 * @file
 * Command-line compiler driver: the "downstream user" entry point.
 *
 *   compile_cli [options] <family|file.qasm> [qubits]
 *
 * Options:
 *   --device SPEC        target device spec (DeviceRegistry grammar,
 *                        e.g. eml:modules=4,cap=16,optical=2 or
 *                        grid:8x8,cap=16); default: paper EML device
 *   --backend B          mussti (default) | murali | dai | mqt; the
 *                        grid baselines need a grid:... device spec
 *   --trivial            use trivial mapping (default: SABRE)
 *   --no-swap-insert     disable section-3.3 SWAP insertion
 *   --capacity N         trap capacity (default 16)
 *   --optical N          optical zones per module (default 1)
 *   --lookahead K        weight-table window (default 8)
 *   --policy P           anticipatory-lru | lru | fifo | random
 *   --trace [N]          print the first N schedule ops (default 40)
 *   --validate           run the schedule validator and report
 *
 * Examples:
 *   compile_cli sqrt 117
 *   compile_cli --device eml:hetero=2.1.2-2.1.1,cap=20 ran 64
 *   compile_cli --device grid:4x3,cap=16 --backend murali qft 32
 *   compile_cli --trace 20 --validate my_circuit.qasm
 */
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include "arch/device_registry.h"
#include "baselines/backend_factory.h"
#include "circuit/qasm.h"
#include "common/string_util.h"
#include "core/compile_service.h"
#include "core/compiler.h"
#include "core/pipeline.h"
#include "sim/trace.h"
#include "sim/validator.h"
#include "workloads/workloads.h"

using namespace mussti;

namespace {

void
usage()
{
    std::cerr <<
        "usage: compile_cli [options] <family|file.qasm> [qubits]\n"
        "  families: adder bv ghz qaoa qft sqrt ran sc ising qv wstate\n"
        "  options: --device SPEC --backend B --trivial --no-swap-insert\n"
        "           --capacity N --optical N --lookahead K --policy P\n"
        "           --trace [N] --validate\n";
}

} // namespace

int
main(int argc, char **argv)
{
    MusstiConfig config;
    std::string backend_name = "mussti";
    std::string device_spec;
    bool device_flags = false;
    bool trace = false;
    int trace_ops = 40;
    bool validate = false;
    std::string target;
    int qubits = 0;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--device" && i + 1 < argc) {
            device_spec = argv[++i];
        } else if (arg == "--backend" && i + 1 < argc) {
            backend_name = toLower(argv[++i]);
        } else if (arg == "--trivial") {
            config.mapping = MappingKind::Trivial;
        } else if (arg == "--no-swap-insert") {
            config.enableSwapInsertion = false;
        } else if (arg == "--capacity" && i + 1 < argc) {
            config.device.trapCapacity = std::atoi(argv[++i]);
            device_flags = true;
        } else if (arg == "--optical" && i + 1 < argc) {
            config.device.numOpticalZones = std::atoi(argv[++i]);
            device_flags = true;
        } else if (arg == "--lookahead" && i + 1 < argc) {
            config.lookAhead = std::atoi(argv[++i]);
        } else if (arg == "--policy" && i + 1 < argc) {
            const std::string p = argv[++i];
            if (p == "anticipatory-lru")
                config.replacement = ReplacementPolicy::AnticipatoryLru;
            else if (p == "lru")
                config.replacement = ReplacementPolicy::Lru;
            else if (p == "fifo")
                config.replacement = ReplacementPolicy::Fifo;
            else if (p == "random")
                config.replacement = ReplacementPolicy::Random;
            else {
                usage();
                return 2;
            }
        } else if (arg == "--trace") {
            trace = true;
            if (i + 1 < argc && std::isdigit(
                    static_cast<unsigned char>(argv[i + 1][0])))
                trace_ops = std::atoi(argv[++i]);
        } else if (arg == "--validate") {
            validate = true;
        } else if (arg.rfind("--", 0) == 0) {
            usage();
            return 2;
        } else if (target.empty()) {
            target = arg;
        } else {
            qubits = std::atoi(arg.c_str());
        }
    }
    if (target.empty()) {
        usage();
        return 2;
    }

    Circuit circuit(1);
    if (target.size() > 5 &&
        target.compare(target.size() - 5, 5, ".qasm") == 0) {
        std::ifstream in(target);
        if (!in) {
            std::cerr << "cannot open " << target << "\n";
            return 1;
        }
        circuit = fromQasmStream(in, target);
    } else {
        circuit = makeBenchmark(target, qubits > 0 ? qubits : 32);
    }

    // Device selection is spec-driven: the registry parses the string
    // and the backend family must match the device family. A spec
    // defines the WHOLE device, so combining it with the legacy
    // per-knob flags would silently drop one side — refuse instead.
    if (!device_spec.empty() && device_flags)
        fatal("--device replaces the whole device; fold --capacity/"
              "--optical into the spec (e.g. " + device_spec +
              ",cap=20) instead of mixing them");
    DeviceSpec spec = DeviceRegistry::specOf(config.device);
    if (!device_spec.empty())
        spec = DeviceRegistry::parse(device_spec);

    std::shared_ptr<const ICompilerBackend> backend;
    if (backend_name == "mussti") {
        if (spec.family != DeviceFamily::Eml)
            fatal("backend mussti needs an eml:... device spec, got: " +
                  spec.canonical());
        config.device = spec.eml;
        backend = makeMusstiBackend(config);
    } else {
        if (spec.family != DeviceFamily::Grid)
            fatal("backend " + backend_name + " needs a grid:... device "
                  "spec, got: " + spec.canonical());
        backend = makeGridBackend(backend_name, spec.grid);
    }
    const std::shared_ptr<const TargetDevice> device =
        DeviceRegistry::create(spec, circuit.numQubits());

    CompileServiceConfig service_config;
    service_config.numThreads = 1;   // one job; no pool needed
    service_config.cacheCapacity = 0;
    CompileService service(service_config);
    const auto result = service.submit(backend, circuit).get();

    std::cout << "circuit      : " << circuit.name() << " ("
              << circuit.numQubits() << " qubits, "
              << circuit.twoQubitCount() << " 2q gates)\n"
              << "backend      : " << backend->name() << "\n"
              << "device       : " << device->describe() << "\n"
              << "device spec  : " << device->spec() << "\n"
              << "schedule     : " << summarizeSchedule(result.schedule)
              << "\n"
              << "swap inserts : " << result.swapInsertions << "\n"
              << "evictions    : " << result.evictions << "\n"
              << "exec time    : " << result.metrics.executionTimeUs
              << " us\n"
              << "fidelity     : " << result.metrics.fidelity()
              << " (log10 " << result.metrics.log10Fidelity() << ")\n"
              << "fingerprint  : 0x" << std::hex
              << resultFingerprint(result) << std::dec << "\n"
              << "compile time : " << result.compileTimeSec << " s\n";

    if (trace) {
        std::cout << "\n" << formatSchedule(result.schedule, *device,
                                            trace_ops);
    }
    if (validate) {
        const auto report = ScheduleValidator(*device)
                                .validate(result.schedule, result.lowered);
        std::cout << "validation   : "
                  << (report ? "PASS" : "FAIL: " + report.firstError)
                  << "\n";
        return report ? 0 : 1;
    }
    return 0;
}
