#include "tune/tuner.h"

#include <sstream>
#include <utility>

#include "arch/device_registry.h"
#include "baselines/backend_factory.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "core/compiler.h"
#include "workloads/workloads.h"

namespace mussti {

namespace {

/** The backend one candidate spec compiles with. */
std::shared_ptr<const ICompilerBackend>
backendFor(const DeviceSpec &spec, const TunerConfig &config)
{
    if (spec.family == DeviceFamily::Eml) {
        MusstiConfig mussti;
        mussti.device = spec.eml;
        return makeMusstiBackend(mussti);
    }
    return makeGridBackend(config.gridBackend, spec.grid);
}

/**
 * The deterministic recommendation among the Pareto front: best total
 * log-fidelity, then lower makespan, then fewer shuttles, then the
 * lexicographically smallest canonical spec. Only scored objectives
 * and the spec text participate — never wall-clock — so the pick is
 * identical across machines and thread counts.
 */
bool
recommendOver(const TuneCandidate &challenger, const TuneCandidate &best)
{
    const ScoreCard &c = challenger.total;
    const ScoreCard &b = best.total;
    if (c.log10Fidelity != b.log10Fidelity)
        return c.log10Fidelity > b.log10Fidelity;
    if (c.makespanUs != b.makespanUs)
        return c.makespanUs < b.makespanUs;
    if (c.shuttles != b.shuttles)
        return c.shuttles < b.shuttles;
    return challenger.spec.canonical() < best.spec.canonical();
}

} // namespace

std::string
TuneWorkload::label() const
{
    std::ostringstream out;
    out << family << "_n" << qubits;
    return out.str();
}

TuneWorkload
parseTuneWorkload(const std::string &text)
{
    const std::size_t colon = text.find(':');
    MUSSTI_REQUIRE(colon != std::string::npos && colon > 0,
                   "malformed workload `" << text
                   << "` (expected family:qubits, e.g. qaoa:96)");
    TuneWorkload workload;
    workload.family = toLower(trim(text.substr(0, colon)));
    workload.qubits = parseIntArg(text.substr(colon + 1),
                                  "workload qubit count");
    MUSSTI_REQUIRE(workload.qubits > 0,
                   "workload qubit count must be positive in `" << text
                   << "`");
    return workload;
}

const TuneCandidate &
TuneOutcome::recommendedCandidate() const
{
    MUSSTI_ASSERT(recommended >= 0 &&
                  static_cast<std::size_t>(recommended) <
                      candidates.size(),
                  "no recommended candidate in this TuneOutcome");
    return candidates[static_cast<std::size_t>(recommended)];
}

TuneOutcome
tuneDeviceSpec(const TunerConfig &config)
{
    return tuneDeviceSpec(config, parseSpecSearch(config.search));
}

TuneOutcome
tuneDeviceSpec(const TunerConfig &config, CompileService &service)
{
    return tuneDeviceSpec(config, parseSpecSearch(config.search),
                          service);
}

TuneOutcome
tuneDeviceSpec(const TunerConfig &config, const SpecSearchSpace &space)
{
    CompileServiceConfig service_config;
    service_config.numThreads = config.numThreads;
    service_config.cacheCapacity = config.cacheCapacity;
    CompileService service(service_config);
    return tuneDeviceSpec(config, space, service);
}

TuneOutcome
tuneDeviceSpec(const TunerConfig &config, const SpecSearchSpace &space,
               CompileService &service)
{
    MUSSTI_REQUIRE(!config.workloads.empty(),
                   "tuner needs at least one workload (family:qubits)");
    for (const TuneWorkload &workload : config.workloads)
        MUSSTI_REQUIRE(workload.qubits > 0,
                       "workload " << workload.family
                       << " needs a positive qubit count");

    // parseSpecSearch fills `candidates`; a hand-built space falls
    // back to enumerating here.
    const std::vector<DeviceSpec> fallback =
        space.candidates.empty() ? space.enumerate()
                                 : std::vector<DeviceSpec>{};
    const std::vector<DeviceSpec> &enumerated =
        space.candidates.empty() ? fallback : space.candidates;

    TuneOutcome outcome;
    for (const DeviceSpec &spec : enumerated) {
        TuneCandidate candidate;
        candidate.spec = spec;
        outcome.candidates.push_back(std::move(candidate));
    }

    // One circuit build per workload. CompileRequest carries the
    // circuit BY VALUE, so each feasible (candidate x workload) job
    // below copies it — acceptable at the 4096-candidate ceiling, but
    // a cost to know about before raising that ceiling.
    std::vector<Circuit> circuits;
    circuits.reserve(config.workloads.size());
    for (const TuneWorkload &workload : config.workloads)
        circuits.push_back(makeBenchmark(workload.family,
                                         workload.qubits));

    // Feasibility probe: a candidate must host every workload. The
    // probe is quiet (tryCreate) — an out-of-range candidate is an
    // expected part of a sweep, not console noise — and deterministic,
    // so the feasible set is identical on every run.
    std::vector<std::size_t> feasible;
    for (std::size_t i = 0; i < outcome.candidates.size(); ++i) {
        TuneCandidate &candidate = outcome.candidates[i];
        candidate.feasible = true;
        for (const Circuit &circuit : circuits) {
            std::string reason;
            if (!DeviceRegistry::tryCreate(candidate.spec,
                                           circuit.numQubits(),
                                           &reason)) {
                candidate.feasible = false;
                candidate.infeasibleReason = reason;
                break;
            }
        }
        if (candidate.feasible)
            feasible.push_back(i);
    }
    MUSSTI_REQUIRE(!feasible.empty(),
                   "every candidate of device search `" << config.search
                   << "` is infeasible for the workload set; e.g. "
                   << outcome.candidates.front().spec.canonical() << ": "
                   << outcome.candidates.front().infeasibleReason);

    // One sharded batch over the whole (feasible spec x workload) grid.
    // Seeds derive from the flat job index, so the sweep replays
    // identically at any thread count.
    std::vector<CompileRequest> requests;
    requests.reserve(feasible.size() * circuits.size());
    for (const std::size_t i : feasible) {
        const auto backend = backendFor(outcome.candidates[i].spec,
                                        config);
        for (const Circuit &circuit : circuits)
            requests.push_back({backend, circuit, {}});
    }
    const std::vector<CompileResult> results =
        service.compileSweep(std::move(requests), config.baseSeed);

    std::size_t next = 0;
    for (const std::size_t i : feasible) {
        TuneCandidate &candidate = outcome.candidates[i];
        for (std::size_t w = 0; w < circuits.size(); ++w) {
            const ScoreCard card = scoreCardOf(results[next++]);
            candidate.perWorkload.push_back(card);
            candidate.total.accumulate(card);
        }
    }

    // Pareto front over the aggregated scores: a candidate survives
    // unless some feasible candidate dominates it.
    for (const std::size_t i : feasible) {
        bool dominated = false;
        for (const std::size_t j : feasible) {
            if (i != j && outcome.candidates[j].total.dominates(
                              outcome.candidates[i].total)) {
                dominated = true;
                break;
            }
        }
        if (!dominated) {
            outcome.candidates[i].onParetoFront = true;
            outcome.paretoFront.push_back(i);
        }
    }

    for (const std::size_t i : outcome.paretoFront) {
        if (outcome.recommended < 0 ||
            recommendOver(outcome.candidates[i],
                          outcome.candidates[static_cast<std::size_t>(
                              outcome.recommended)]))
            outcome.recommended = static_cast<int>(i);
    }
    return outcome;
}

} // namespace mussti
