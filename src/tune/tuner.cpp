#include "tune/tuner.h"

#include <sstream>
#include <utility>

#include "arch/device_registry.h"
#include "baselines/backend_factory.h"
#include "common/fault_injection.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "core/compiler.h"
#include "workloads/workloads.h"

namespace mussti {

namespace {

/**
 * Attempts the tuner gives a Transient-faulted probe or sweep job
 * before declaring the candidate infeasible. Retries are deterministic:
 * a probe is a pure function of the spec, and a retried sweep job
 * recompiles under the seed of its original flat index, so the outcome
 * set — and therefore the front — is identical whether a job resolved
 * on round one or round three.
 */
constexpr int kTunerFaultAttempts = 3;

/** Render a structured error for an infeasibleReason field. */
std::string
describeFailure(const MusstiError &error)
{
    return std::string(error.categoryName()) + " [" + error.code() +
           "] " + error.message();
}

/** The backend one candidate spec compiles with. */
std::shared_ptr<const ICompilerBackend>
backendFor(const DeviceSpec &spec, const TunerConfig &config)
{
    if (spec.family == DeviceFamily::Eml) {
        MusstiConfig mussti;
        mussti.device = spec.eml;
        return makeMusstiBackend(mussti);
    }
    return makeGridBackend(config.gridBackend, spec.grid);
}

/**
 * The deterministic recommendation among the Pareto front: best total
 * log-fidelity, then lower makespan, then fewer shuttles, then the
 * lexicographically smallest canonical spec. Only scored objectives
 * and the spec text participate — never wall-clock — so the pick is
 * identical across machines and thread counts.
 */
bool
recommendOver(const TuneCandidate &challenger, const TuneCandidate &best)
{
    const ScoreCard &c = challenger.total;
    const ScoreCard &b = best.total;
    if (c.log10Fidelity != b.log10Fidelity)
        return c.log10Fidelity > b.log10Fidelity;
    if (c.makespanUs != b.makespanUs)
        return c.makespanUs < b.makespanUs;
    if (c.shuttles != b.shuttles)
        return c.shuttles < b.shuttles;
    return challenger.spec.canonical() < best.spec.canonical();
}

} // namespace

std::string
TuneWorkload::label() const
{
    std::ostringstream out;
    out << family << "_n" << qubits;
    return out.str();
}

TuneWorkload
parseTuneWorkload(const std::string &text)
{
    const std::size_t colon = text.find(':');
    MUSSTI_REQUIRE(colon != std::string::npos && colon > 0,
                   "malformed workload `" << text
                   << "` (expected family:qubits, e.g. qaoa:96)");
    TuneWorkload workload;
    workload.family = toLower(trim(text.substr(0, colon)));
    workload.qubits = parseIntArg(text.substr(colon + 1),
                                  "workload qubit count");
    MUSSTI_REQUIRE(workload.qubits > 0,
                   "workload qubit count must be positive in `" << text
                   << "`");
    return workload;
}

const TuneCandidate &
TuneOutcome::recommendedCandidate() const
{
    MUSSTI_ASSERT(recommended >= 0 &&
                  static_cast<std::size_t>(recommended) <
                      candidates.size(),
                  "no recommended candidate in this TuneOutcome");
    return candidates[static_cast<std::size_t>(recommended)];
}

TuneOutcome
tuneDeviceSpec(const TunerConfig &config)
{
    return tuneDeviceSpec(config, parseSpecSearch(config.search));
}

TuneOutcome
tuneDeviceSpec(const TunerConfig &config, CompileService &service)
{
    return tuneDeviceSpec(config, parseSpecSearch(config.search),
                          service);
}

TuneOutcome
tuneDeviceSpec(const TunerConfig &config, const SpecSearchSpace &space)
{
    CompileServiceConfig service_config;
    service_config.numThreads = config.numThreads;
    service_config.cacheCapacity = config.cacheCapacity;
    CompileService service(service_config);
    return tuneDeviceSpec(config, space, service);
}

TuneOutcome
tuneDeviceSpec(const TunerConfig &config, const SpecSearchSpace &space,
               CompileService &service)
{
    MUSSTI_REQUIRE(!config.workloads.empty(),
                   "tuner needs at least one workload (family:qubits)");
    for (const TuneWorkload &workload : config.workloads)
        MUSSTI_REQUIRE(workload.qubits > 0,
                       "workload " << workload.family
                       << " needs a positive qubit count");

    // parseSpecSearch fills `candidates`; a hand-built space falls
    // back to enumerating here.
    const std::vector<DeviceSpec> fallback =
        space.candidates.empty() ? space.enumerate()
                                 : std::vector<DeviceSpec>{};
    const std::vector<DeviceSpec> &enumerated =
        space.candidates.empty() ? fallback : space.candidates;

    TuneOutcome outcome;
    for (const DeviceSpec &spec : enumerated) {
        TuneCandidate candidate;
        candidate.spec = spec;
        outcome.candidates.push_back(std::move(candidate));
    }

    // One circuit build per workload. CompileRequest carries the
    // circuit BY VALUE, so each feasible (candidate x workload) job
    // below copies it — acceptable at the 4096-candidate ceiling, but
    // a cost to know about before raising that ceiling.
    std::vector<Circuit> circuits;
    circuits.reserve(config.workloads.size());
    for (const TuneWorkload &workload : config.workloads)
        circuits.push_back(makeBenchmark(workload.family,
                                         workload.qubits));

    // Feasibility probe: a candidate must host every workload. The
    // probe is quiet (tryCreate) — an out-of-range candidate is an
    // expected part of a sweep, not console noise — and deterministic,
    // so the feasible set is identical on every run. The TunerProbe
    // fault site covers the probe: a Transient fault retries (the probe
    // is pure, so a retry decides identically); anything persistent
    // marks the candidate infeasible instead of aborting the tune.
    std::vector<std::size_t> feasible;
    for (std::size_t i = 0; i < outcome.candidates.size(); ++i) {
        TuneCandidate &candidate = outcome.candidates[i];
        for (int attempt = 0;; ++attempt) {
            try {
                FaultInjector::maybeThrow(FaultSite::TunerProbe);
                candidate.feasible = true;
                for (const Circuit &circuit : circuits) {
                    std::string reason;
                    if (!DeviceRegistry::tryCreate(candidate.spec,
                                                   circuit.numQubits(),
                                                   &reason)) {
                        candidate.feasible = false;
                        candidate.infeasibleReason = reason;
                        break;
                    }
                }
                break;
            } catch (...) {
                const MusstiError error = describeCurrentException();
                if (error.category() == ErrorCategory::Transient &&
                    attempt + 1 < kTunerFaultAttempts)
                    continue;
                candidate.feasible = false;
                candidate.infeasibleReason = describeFailure(error);
                break;
            }
        }
        if (candidate.feasible)
            feasible.push_back(i);
    }
    MUSSTI_REQUIRE(!feasible.empty(),
                   "every candidate of device search `" << config.search
                   << "` is infeasible for the workload set; e.g. "
                   << outcome.candidates.front().spec.canonical() << ": "
                   << outcome.candidates.front().infeasibleReason);

    // One sharded batch over the whole (feasible spec x workload) grid,
    // seeded EXPLICITLY by flat job index (the seeds compileSweep would
    // derive): a job retried in a later round recompiles under the seed
    // of its original position, so the resolved outcome set is a pure
    // function of (requests, baseSeed) no matter which round each job
    // lands in — or how many faults fired along the way.
    std::vector<CompileRequest> requests;
    std::vector<std::size_t> owner; ///< flat job -> candidate index
    requests.reserve(feasible.size() * circuits.size());
    for (const std::size_t i : feasible) {
        const auto backend = backendFor(outcome.candidates[i].spec,
                                        config);
        for (const Circuit &circuit : circuits) {
            CompileRequest request{backend, circuit, {}, {}, {}};
            request.seed = CompileService::deriveJobSeed(config.baseSeed,
                                                         requests.size());
            requests.push_back(std::move(request));
            owner.push_back(i);
        }
    }

    // Outcome-tolerant sweep with bounded retry rounds. A job fails a
    // round through the service (worker-side faults the service's own
    // retry gave up on) or at the TunerSweep harvest site; Transient
    // failures re-enter the next round, anything else is final. Jobs
    // still failed after the last round poison their candidate:
    // infeasible with the structured reason, excluded from the front.
    std::vector<std::optional<CompileResult>> resolved(requests.size());
    std::vector<std::size_t> unresolved(requests.size());
    for (std::size_t i = 0; i < unresolved.size(); ++i)
        unresolved[i] = i;

    for (int round = 0;
         round < kTunerFaultAttempts && !unresolved.empty(); ++round) {
        std::vector<CompileRequest> batch;
        batch.reserve(unresolved.size());
        for (const std::size_t idx : unresolved)
            batch.push_back(requests[idx]);
        std::vector<CompileOutcome> outcomes =
            service.compileAllOutcomes(std::move(batch));

        std::vector<std::size_t> retry;
        for (std::size_t k = 0; k < unresolved.size(); ++k) {
            const std::size_t idx = unresolved[k];
            std::optional<MusstiError> failure;
            if (outcomes[k].ok()) {
                try {
                    FaultInjector::maybeThrow(FaultSite::TunerSweep);
                    resolved[idx] = std::move(*outcomes[k].result);
                } catch (...) {
                    failure = describeCurrentException();
                }
            } else {
                failure = std::move(*outcomes[k].error);
            }
            if (!failure)
                continue;
            if (failure->category() == ErrorCategory::Transient &&
                round + 1 < kTunerFaultAttempts) {
                retry.push_back(idx);
            } else {
                TuneCandidate &candidate =
                    outcome.candidates[owner[idx]];
                candidate.feasible = false;
                if (candidate.infeasibleReason.empty())
                    candidate.infeasibleReason =
                        describeFailure(*failure);
            }
        }
        unresolved = std::move(retry);
    }
    for (const std::size_t idx : unresolved) {
        TuneCandidate &candidate = outcome.candidates[owner[idx]];
        candidate.feasible = false;
        if (candidate.infeasibleReason.empty())
            candidate.infeasibleReason =
                "sweep compile kept failing Transient after " +
                std::to_string(kTunerFaultAttempts) + " rounds";
    }

    // Score the survivors (a candidate needs every workload resolved).
    std::vector<std::size_t> scored;
    for (const std::size_t i : feasible)
        if (outcome.candidates[i].feasible)
            scored.push_back(i);
    std::size_t next = 0;
    for (const std::size_t i : feasible) {
        TuneCandidate &candidate = outcome.candidates[i];
        for (std::size_t w = 0; w < circuits.size(); ++w, ++next) {
            if (!candidate.feasible)
                continue;
            const ScoreCard card = scoreCardOf(*resolved[next]);
            candidate.perWorkload.push_back(card);
            candidate.total.accumulate(card);
        }
    }
    MUSSTI_REQUIRE(!scored.empty(),
                   "every feasible candidate of device search `"
                   << config.search << "` failed its sweep compiles; "
                   "e.g. " << outcome.candidates[feasible.front()]
                                  .spec.canonical() << ": "
                   << outcome.candidates[feasible.front()]
                          .infeasibleReason);

    // Pareto front over the aggregated scores: a candidate survives
    // unless some scored candidate dominates it.
    for (const std::size_t i : scored) {
        bool dominated = false;
        for (const std::size_t j : scored) {
            if (i != j && outcome.candidates[j].total.dominates(
                              outcome.candidates[i].total)) {
                dominated = true;
                break;
            }
        }
        if (!dominated) {
            outcome.candidates[i].onParetoFront = true;
            outcome.paretoFront.push_back(i);
        }
    }

    for (const std::size_t i : outcome.paretoFront) {
        if (outcome.recommended < 0 ||
            recommendOver(outcome.candidates[i],
                          outcome.candidates[static_cast<std::size_t>(
                              outcome.recommended)]))
            outcome.recommended = static_cast<int>(i);
    }
    return outcome;
}

} // namespace mussti
