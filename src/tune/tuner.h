/**
 * @file
 * Device-aware auto-tuner: search the DeviceRegistry spec space for the
 * device shape that best serves a workload set.
 *
 * The paper's central claim is that zoned EML architectures beat
 * monolithic grids only when the device shape (module count, trap
 * capacity, optical links, heterogeneous mixes) matches the workload.
 * The tuner closes that loop: it enumerates candidate DeviceSpecs from
 * a constrained search grammar (arch/spec_search.h), probes each for
 * feasibility, fans every feasible (spec x workload) job through the
 * CompileService as one sharded outcome-tolerant batch with per-flat-
 * index derived seeds, scores the results into compact ScoreCards
 * (sim/score_card.h), and returns a deterministic Pareto front plus
 * one recommended spec.
 *
 * Fault tolerance: the probe and sweep paths carry fault-injection
 * sites (TunerProbe, TunerSweep). Transient failures — injected or
 * real — retry up to a fixed round bound; a retried sweep job
 * recompiles under its original flat-index seed, so the front is
 * bit-identical whether or not faults fired. Persistent failures mark
 * just that candidate infeasible (with the structured reason) instead
 * of aborting the tune.
 *
 * Determinism contract: a TuneOutcome is a pure function of the
 * TunerConfig — candidate order is the search grammar's enumeration
 * order, per-job seeds derive from (baseSeed, job index), every compile
 * is bit-identical regardless of pool size, and the recommendation
 * tie-breaks on scored objectives only (never wall-clock). Running the
 * same search under 1 thread and N threads yields identical fronts and
 * recommendations (tests/test_tuner.cpp pins this).
 */
#ifndef MUSSTI_TUNE_TUNER_H
#define MUSSTI_TUNE_TUNER_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "arch/spec_search.h"
#include "core/compile_service.h"
#include "sim/score_card.h"

namespace mussti {

/** One workload of a tuning run. */
struct TuneWorkload
{
    std::string family; ///< makeBenchmark() family name.
    int qubits = 0;

    /** "qaoa_n96"-style label used in reports and bench JSON. */
    std::string label() const;
};

/**
 * Parse a "family:qubits" workload token (e.g. "qaoa:96"); fatal()
 * names the offending token on garbage.
 */
TuneWorkload parseTuneWorkload(const std::string &text);

/** Everything a tuning run needs. */
struct TunerConfig
{
    /** Search-space text (arch/spec_search.h grammar). */
    std::string search;

    /** Workloads scored jointly (ScoreCards sum across them). */
    std::vector<TuneWorkload> workloads;

    /** Base seed the per-job seeds derive from. */
    std::uint64_t baseSeed = 2025;

    /** Sweep pool size; <= 0 selects hardware concurrency. */
    int numThreads = 0;

    /** Result-cache capacity of the sweep's service. */
    std::size_t cacheCapacity = 256;

    /**
     * Backend for grid:... searches ("murali", "dai", or "mqt");
     * eml:... searches always compile with MUSS-TI.
     */
    std::string gridBackend = "murali";
};

/** One enumerated candidate's outcome. */
struct TuneCandidate
{
    DeviceSpec spec;

    /** False when some workload does not fit the device. */
    bool feasible = false;
    std::string infeasibleReason; ///< Set when !feasible.

    /** Per-workload scores (config order); empty when infeasible. */
    std::vector<ScoreCard> perWorkload;

    /** Scores accumulated over every workload. */
    ScoreCard total;

    bool onParetoFront = false;
};

/** The result of a tuning run. */
struct TuneOutcome
{
    /** Every candidate, in search-grammar enumeration order. */
    std::vector<TuneCandidate> candidates;

    /** Indices of the Pareto-optimal candidates, ascending. */
    std::vector<std::size_t> paretoFront;

    /** Index of the recommended candidate; -1 if nothing is feasible. */
    int recommended = -1;

    /** The recommended candidate; panics when recommended < 0. */
    const TuneCandidate &recommendedCandidate() const;
};

/**
 * Run the sweep on a private CompileService sized by the config.
 * fatal() on malformed search/workload input or when every candidate
 * is infeasible.
 */
TuneOutcome tuneDeviceSpec(const TunerConfig &config);

/** Same, submitting through a caller-provided service (pool reuse). */
TuneOutcome tuneDeviceSpec(const TunerConfig &config,
                           CompileService &service);

/**
 * Same, over an already-parsed search space (`space` stands in for
 * config.search, which is ignored) — for callers that parsed once for
 * display and should not pay a second enumeration.
 */
TuneOutcome tuneDeviceSpec(const TunerConfig &config,
                           const SpecSearchSpace &space);

TuneOutcome tuneDeviceSpec(const TunerConfig &config,
                           const SpecSearchSpace &space,
                           CompileService &service);

} // namespace mussti

#endif // MUSSTI_TUNE_TUNER_H
