/**
 * @file
 * Multi-level qubit routing and conflict handling (paper section 3.2).
 *
 * Routing brings the operands of a selected gate into a zone where the
 * gate may execute. Candidate plans are costed in shuttles (plus chain
 * extraction swaps and move distance as tie-breakers) and the cheapest
 * plan is executed. When a target zone lacks space, the LRU resident is
 * evicted to the nearest lower-level zone with a free slot — the
 * page-fault analogy of the paper.
 *
 * The router is allocation-free in steady state: candidate plans, mover
 * sets, and protect sets live in inline-capacity SmallVecs, victim
 * scans walk the contiguous zone chains directly, and the only heap
 * traffic left is the per-construction arrival table (outside the
 * scheduling loop). micro_scheduler_bench's allocation counter pins
 * this property.
 */
#ifndef MUSSTI_CORE_ROUTER_H
#define MUSSTI_CORE_ROUTER_H

#include <vector>

#include "arch/eml_device.h"
#include "arch/placement.h"
#include "common/rng.h"
#include "common/small_vec.h"
#include "core/config.h"
#include "core/lru.h"
#include "core/schedule_snapshot.h"
#include "sim/params.h"
#include "sim/schedule.h"
#include "sim/shuttle_emitter.h"

namespace mussti {

/**
 * Qubits that must not be evicted during the current routing action:
 * the gate operands plus at most one in-flight mover. Inline capacity
 * covers the worst case, so building one never allocates.
 */
using ProtectSet = SmallVec<int, 4>;

/**
 * Observer of qubit relocations. The scheduler's frontier worklist
 * registers one so that every placement change (shuttle or logical
 * SWAP) re-queues the affected frontier gate for an executability
 * check — the hook that lets the drain loop skip re-scanning
 * untouched gates.
 */
class QubitMoveListener
{
  public:
    virtual ~QubitMoveListener() = default;

    /** The qubit's zone just changed. */
    virtual void onQubitMoved(int qubit) = 0;
};

/** Routing engine bound to one in-progress compilation. */
class Router
{
  public:
    Router(const EmlDevice &device, const PhysicalParams &params,
           Placement &placement, Schedule &schedule, LruTracker &lru,
           ReplacementPolicy policy = ReplacementPolicy::AnticipatoryLru,
           std::uint64_t seed = 2025);

    /**
     * Make the two-qubit gate (qa, qb) executable: after the call either
     * both qubits share a gate-capable zone (same module) or each sits
     * in an optical zone of its own module (cross-module).
     */
    void routeForGate(int qubit_a, int qubit_b);

    /**
     * Bring one qubit into an optical zone of its module (used by SWAP
     * insertion before emitting fiber gates).
     */
    void routeToOptical(int qubit, const ProtectSet &protect);

    /**
     * Anticipated-usage hint (the paper's LRU "considers both historical
     * and anticipated qubit usage"): next_use[q] is the DAG layer of
     * qubit q's next two-qubit gate, or a large sentinel when it has no
     * use within the scheduler's window. Eviction prefers the victim
     * with the farthest next use (approximate Belady), breaking ties by
     * chain-extraction cost and then LRU age. Owned by the scheduler
     * and refreshed before each routing step; size = qubit count.
     */
    void setNextUse(const std::vector<int> *next_use)
    {
        nextUse_ = next_use;
    }

    /** Register the relocation observer (may be null). */
    void setMoveListener(QubitMoveListener *listener)
    {
        moveListener_ = listener;
    }

    /** The registered relocation observer, or null. */
    QubitMoveListener *moveListener() const { return moveListener_; }

    /** Total evictions performed so far (conflict-handling count). */
    int evictionCount() const { return evictions_; }

    /**
     * Capture the conflict-handling state into a delta-compile
     * checkpoint: arrival stamps (FIFO policy), eviction count, and the
     * Random-policy RNG stream position.
     */
    void
    saveCheckpoint(RouterCheckpoint &out) const
    {
        out.arrival = arrival_;
        out.arrivalClock = arrivalClock_;
        out.evictions = evictions_;
        out.rng = rng_;
    }

    /** Restore the state captured by saveCheckpoint. */
    void
    restoreCheckpoint(const RouterCheckpoint &checkpoint)
    {
        MUSSTI_ASSERT(checkpoint.arrival.size() == arrival_.size(),
                      "router checkpoint across qubit counts");
        arrival_ = checkpoint.arrival;
        arrivalClock_ = checkpoint.arrivalClock;
        evictions_ = checkpoint.evictions;
        rng_ = checkpoint.rng;
    }

  private:
    const EmlDevice &device_;
    const PhysicalParams &params_;
    Placement &placement_;
    ShuttleEmitter emitter_;
    LruTracker &lru_;
    const std::vector<int> *nextUse_ = nullptr;
    QubitMoveListener *moveListener_ = nullptr;
    ReplacementPolicy policy_;
    Rng rng_;
    std::vector<std::int64_t> arrival_; ///< Per-qubit arrival stamps
                                        ///< (FIFO policy).
    std::int64_t arrivalClock_ = 0;
    int evictions_ = 0;

    /** Relocate via the emitter and notify the move listener. */
    void relocate(int qubit, int zone);

    /** Pick the eviction victim of a zone under the active policy. */
    int pickVictim(int zone, const ProtectSet &protect);

    /** Free slots of a zone. */
    int freeSlots(int zone) const;

    /**
     * Estimated cost of moving the `count` movers into `zone` (shuttle
     * + extraction swaps + distance tie-breaker + eviction deficit).
     */
    double planCost(const int *movers, int count, int zone) const;

    /**
     * Evict the LRU resident of `zone` (excluding `protect`) to the
     * nearest lower-level zone with space; falls back level by level and
     * finally to any same-module zone with space.
     */
    void evictOne(int zone, const ProtectSet &protect);

    /** Move a qubit into `zone`, evicting until a slot is free. */
    void moveIn(int qubit, int zone, const ProtectSet &protect);

    /** Pick the best optical zone of a module for one mover. */
    int chooseOpticalZone(int module, int qubit) const;
};

} // namespace mussti

#endif // MUSSTI_CORE_ROUTER_H
