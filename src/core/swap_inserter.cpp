#include "core/swap_inserter.h"

#include "common/logging.h"

namespace mussti {

SwapInserter::SwapInserter(const EmlDevice &device,
                           const PhysicalParams &params,
                           const MusstiConfig &config,
                           Placement &placement, Schedule &schedule,
                           Router &router, LruTracker &lru)
    : device_(device), params_(params), config_(config),
      placement_(placement), schedule_(schedule), router_(router),
      lru_(lru)
{
    MUSSTI_REQUIRE(config.swapThreshold >= 3,
                   "SWAP threshold T must be >= 3 (a SWAP costs 3 MS "
                   "gates)");
    // Pre-size the lazy weight row so the first query inside the
    // scheduling loop performs no allocation.
    weights_.reserve(device.numModules());
}

int
SwapInserter::choosePartner(const WeightTable &weights, int target_module,
                            int exclude_a, int exclude_b) const
{
    // Candidates: qubits resident on the target module that have no
    // near-future work there (W(qc, cj) == 0). Prefer ions already in an
    // optical zone (no extra shuttle), then the LRU-oldest.
    int best = -1;
    bool best_optical = false;
    std::int64_t best_stamp = 0;
    for (int z : device_.zonesOfModule(target_module)) {
        const bool optical = device_.zone(z).kind == ZoneKind::Optical;
        for (int q : placement_.chain(z)) {
            if (q == exclude_a || q == exclude_b)
                continue;
            if (weights.weight(q, target_module) != 0)
                continue;
            const std::int64_t stamp = lru_.stampOf(q);
            const bool better = best < 0 ||
                (optical && !best_optical) ||
                (optical == best_optical && stamp < best_stamp);
            if (better) {
                best = q;
                best_optical = optical;
                best_stamp = stamp;
            }
        }
    }
    return best;
}

void
SwapInserter::performSwap(int qubit, int partner)
{
    // Both ends must sit in optical zones before the fiber SWAP.
    router_.routeToOptical(qubit, {qubit, partner});
    router_.routeToOptical(partner, {qubit, partner});

    const int zone_q = placement_.zoneOf(qubit);
    const int zone_p = placement_.zoneOf(partner);
    MUSSTI_ASSERT(device_.zone(zone_q).kind == ZoneKind::Optical &&
                  device_.zone(zone_p).kind == ZoneKind::Optical &&
                  device_.zone(zone_q).module !=
                      device_.zone(zone_p).module,
                  "SWAP insertion endpoints not fiber-linkable");

    for (int i = 0; i < 3; ++i) {
        ScheduledOp op;
        op.kind = OpKind::FiberGate;
        op.q0 = qubit;
        op.q1 = partner;
        op.zoneFrom = zone_q;
        op.zoneTo = zone_p;
        op.durationUs = params_.fiberGateTimeUs;
        op.inserted = true;
        schedule_.push(op);
    }
    ++schedule_.insertedSwapGates;
    placement_.exchange(qubit, partner);
    lru_.touch(qubit);
    lru_.touch(partner);
    ++inserted_;
    // A logical SWAP relocates both ions; the frontier worklist needs
    // to re-examine their pending gates just like after a shuttle.
    if (QubitMoveListener *listener = router_.moveListener()) {
        listener->onQubitMoved(qubit);
        listener->onQubitMoved(partner);
    }
}

int
SwapInserter::maybeInsert(const DependencyDag &dag, int qubit_a,
                          int qubit_b)
{
    int performed = 0;
    // The view reads the live dag/placement, so each query already sees
    // the effect of any SWAP performed for the first operand; only the
    // cached row must be dropped after a migration.
    weights_.bind(dag, placement_, device_, config_.lookAhead);
    for (int q : {qubit_a, qubit_b}) {
        const int home = device_.zone(placement_.zoneOf(q)).module;
        if (weights_.weight(q, home) != 0)
            continue;
        const auto [target, weight] = weights_.bestForeignModule(q, home);
        if (target < 0 || weight <= config_.swapThreshold)
            continue;
        const int partner = choosePartner(weights_, target,
                                          qubit_a, qubit_b);
        if (partner < 0)
            continue;
        performSwap(q, partner);
        ++performed;
        weights_.invalidateCache();
    }
    return performed;
}

} // namespace mussti
