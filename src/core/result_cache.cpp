#include "core/result_cache.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>
#include <unistd.h>
#include <vector>

#include "common/hash.h"
#include "common/logging.h"

namespace fs = std::filesystem;

namespace mussti {

std::uint64_t
ResultCacheKey::digest() const
{
    Fnv1a hash;
    hash.update(circuitHash);
    hash.update(configDigest);
    hash.update(seed);
    hash.update(hasSeed);
    return hash.digest();
}

// ---- binary serialization ---------------------------------------------
//
// Little-endian fixed-width fields; doubles as raw bit patterns so the
// round trip is bit-exact (the golden-fingerprint tests depend on it).
// The format is private to the disk tier and versioned by
// DiskResultCache::kFormatVersion — any change bumps the version and
// old entries degrade to misses.

namespace {

void
putU64(std::string &out, std::uint64_t value)
{
    for (int i = 0; i < 8; ++i)
        out += static_cast<char>((value >> (8 * i)) & 0xFF);
}

void
putI32(std::string &out, std::int32_t value)
{
    const auto bits = static_cast<std::uint32_t>(value);
    for (int i = 0; i < 4; ++i)
        out += static_cast<char>((bits >> (8 * i)) & 0xFF);
}

void
putU8(std::string &out, std::uint8_t value)
{
    out += static_cast<char>(value);
}

void
putDouble(std::string &out, double value)
{
    std::uint64_t bits = 0;
    std::memcpy(&bits, &value, sizeof(bits));
    putU64(out, bits);
}

void
putString(std::string &out, const std::string &value)
{
    putU64(out, value.size());
    out += value;
}

void
putIntMatrix(std::string &out, const std::vector<std::vector<int>> &rows)
{
    putU64(out, rows.size());
    for (const auto &row : rows) {
        putU64(out, row.size());
        for (const int v : row)
            putI32(out, v);
    }
}

/**
 * Bounds-checked little-endian reader over a byte string. Every get*
 * returns false on overrun instead of throwing, so a truncated payload
 * unwinds to "corrupt entry", never UB.
 */
class ByteReader
{
  public:
    explicit ByteReader(const std::string &bytes) : bytes_(bytes) {}

    bool
    getU64(std::uint64_t &value)
    {
        if (pos_ + 8 > bytes_.size())
            return false;
        value = 0;
        for (int i = 0; i < 8; ++i)
            value |= static_cast<std::uint64_t>(
                         static_cast<unsigned char>(bytes_[pos_ + i]))
                     << (8 * i);
        pos_ += 8;
        return true;
    }

    bool
    getI32(std::int32_t &value)
    {
        if (pos_ + 4 > bytes_.size())
            return false;
        std::uint32_t bits = 0;
        for (int i = 0; i < 4; ++i)
            bits |= static_cast<std::uint32_t>(
                        static_cast<unsigned char>(bytes_[pos_ + i]))
                    << (8 * i);
        pos_ += 4;
        value = static_cast<std::int32_t>(bits);
        return true;
    }

    bool
    getU8(std::uint8_t &value)
    {
        if (pos_ >= bytes_.size())
            return false;
        value = static_cast<unsigned char>(bytes_[pos_++]);
        return true;
    }

    bool
    getDouble(double &value)
    {
        std::uint64_t bits = 0;
        if (!getU64(bits))
            return false;
        std::memcpy(&value, &bits, sizeof(value));
        return true;
    }

    bool
    getString(std::string &value)
    {
        std::uint64_t size = 0;
        if (!getU64(size) || pos_ + size > bytes_.size())
            return false;
        value.assign(bytes_, pos_, static_cast<std::size_t>(size));
        pos_ += static_cast<std::size_t>(size);
        return true;
    }

    /**
     * Element-count sanity bound: a corrupt length field must not turn
     * into a multi-gigabyte allocation before the per-element reads
     * notice the truncation. Every element below is >= 1 byte, so any
     * honest count is <= the remaining byte budget.
     */
    bool
    plausibleCount(std::uint64_t count) const
    {
        return count <= bytes_.size() - pos_;
    }

    bool
    getIntMatrix(std::vector<std::vector<int>> &rows)
    {
        std::uint64_t num_rows = 0;
        if (!getU64(num_rows) || !plausibleCount(num_rows))
            return false;
        rows.clear();
        rows.reserve(static_cast<std::size_t>(num_rows));
        for (std::uint64_t r = 0; r < num_rows; ++r) {
            std::uint64_t len = 0;
            if (!getU64(len) || !plausibleCount(len))
                return false;
            std::vector<int> row;
            row.reserve(static_cast<std::size_t>(len));
            for (std::uint64_t i = 0; i < len; ++i) {
                std::int32_t v = 0;
                if (!getI32(v))
                    return false;
                row.push_back(v);
            }
            rows.push_back(std::move(row));
        }
        return true;
    }

    bool atEnd() const { return pos_ == bytes_.size(); }

  private:
    const std::string &bytes_;
    std::size_t pos_ = 0;
};

constexpr std::uint8_t kMaxGateKind =
    static_cast<std::uint8_t>(GateKind::Barrier);
constexpr std::uint8_t kMaxOpKind =
    static_cast<std::uint8_t>(OpKind::FiberGate);

} // namespace

std::string
serializeCompileResult(const CompileResult &result)
{
    std::string out;
    out.reserve(256 + result.schedule.ops.size() * 48);

    // lowered circuit
    putI32(out, result.lowered.numQubits());
    putString(out, result.lowered.name());
    putU64(out, result.lowered.size());
    for (const Gate &gate : result.lowered.gates()) {
        putU8(out, static_cast<std::uint8_t>(gate.kind));
        putI32(out, gate.q0);
        putI32(out, gate.q1);
        putDouble(out, gate.param);
    }

    // schedule
    putIntMatrix(out, result.schedule.initialChains);
    putU64(out, result.schedule.ops.size());
    for (const ScheduledOp &op : result.schedule.ops) {
        putU8(out, static_cast<std::uint8_t>(op.kind));
        putI32(out, op.q0);
        putI32(out, op.q1);
        putI32(out, op.zoneFrom);
        putI32(out, op.zoneTo);
        putDouble(out, op.durationUs);
        putDouble(out, op.nbar);
        putI32(out, op.circuitGate);
        putU8(out, op.inserted ? 1 : 0);
        putU8(out, op.enterFront ? 1 : 0);
    }
    putI32(out, result.schedule.shuttleCount);
    putI32(out, result.schedule.ionSwapCount);
    putI32(out, result.schedule.insertedSwapGates);

    // metrics
    putI32(out, result.metrics.shuttleCount);
    putI32(out, result.metrics.ionSwapCount);
    putI32(out, result.metrics.gate1qCount);
    putI32(out, result.metrics.gate2qCount);
    putI32(out, result.metrics.fiberGateCount);
    putI32(out, result.metrics.insertedSwapGates);
    putDouble(out, result.metrics.executionTimeUs);
    putDouble(out, result.metrics.lnFidelity);
    putDouble(out, result.metrics.lnFromShuttleOps);
    putDouble(out, result.metrics.lnFromGateIntrinsic);
    putDouble(out, result.metrics.lnFromHeatBackground);
    putDouble(out, result.metrics.lnFromLifetime);

    // top-level scalars and traces
    putDouble(out, result.compileTimeSec);
    putI32(out, result.swapInsertions);
    putI32(out, result.evictions);
    putIntMatrix(out, result.finalChains);
    putU64(out, result.passTrace.size());
    for (const PassTiming &timing : result.passTrace) {
        putString(out, timing.pass);
        putDouble(out, timing.seconds);
    }
    putI32(out, result.routingSteps);
    putU64(out, result.schedulerHeapAllocs);
    putU8(out, result.deltaResumed ? 1 : 0);
    return out;
}

std::optional<CompileResult>
deserializeCompileResult(const std::string &bytes)
{
    ByteReader in(bytes);

    std::int32_t num_qubits = 0;
    std::string name;
    std::uint64_t num_gates = 0;
    if (!in.getI32(num_qubits) || num_qubits <= 0 || !in.getString(name) ||
        !in.getU64(num_gates) || !in.plausibleCount(num_gates))
        return std::nullopt;

    Circuit lowered(num_qubits, std::move(name));
    for (std::uint64_t i = 0; i < num_gates; ++i) {
        std::uint8_t kind = 0;
        Gate gate;
        std::int32_t q0 = 0, q1 = 0;
        if (!in.getU8(kind) || kind > kMaxGateKind || !in.getI32(q0) ||
            !in.getI32(q1) || !in.getDouble(gate.param))
            return std::nullopt;
        gate.kind = static_cast<GateKind>(kind);
        gate.q0 = q0;
        gate.q1 = q1;
        // Validate operands here (Circuit::add would fatal(), which is
        // the wrong failure mode for corrupt cache bytes).
        if (gate.q0 < -1 || gate.q0 >= num_qubits || gate.q1 < -1 ||
            gate.q1 >= num_qubits)
            return std::nullopt;
        if (gateArity(gate.kind) >= 1 && gate.q0 < 0)
            return std::nullopt;
        if (gateArity(gate.kind) == 2 &&
            (gate.q1 < 0 || gate.q0 == gate.q1))
            return std::nullopt;
        lowered.add(gate);
    }

    CompileResult result(std::move(lowered));

    if (!in.getIntMatrix(result.schedule.initialChains))
        return std::nullopt;
    std::uint64_t num_ops = 0;
    if (!in.getU64(num_ops) || !in.plausibleCount(num_ops))
        return std::nullopt;
    result.schedule.ops.reserve(static_cast<std::size_t>(num_ops));
    for (std::uint64_t i = 0; i < num_ops; ++i) {
        ScheduledOp op;
        std::uint8_t kind = 0, inserted = 0, enter_front = 0;
        if (!in.getU8(kind) || kind > kMaxOpKind || !in.getI32(op.q0) ||
            !in.getI32(op.q1) || !in.getI32(op.zoneFrom) ||
            !in.getI32(op.zoneTo) || !in.getDouble(op.durationUs) ||
            !in.getDouble(op.nbar) || !in.getI32(op.circuitGate) ||
            !in.getU8(inserted) || !in.getU8(enter_front))
            return std::nullopt;
        op.kind = static_cast<OpKind>(kind);
        op.inserted = inserted != 0;
        op.enterFront = enter_front != 0;
        result.schedule.ops.push_back(op);
    }
    if (!in.getI32(result.schedule.shuttleCount) ||
        !in.getI32(result.schedule.ionSwapCount) ||
        !in.getI32(result.schedule.insertedSwapGates))
        return std::nullopt;

    if (!in.getI32(result.metrics.shuttleCount) ||
        !in.getI32(result.metrics.ionSwapCount) ||
        !in.getI32(result.metrics.gate1qCount) ||
        !in.getI32(result.metrics.gate2qCount) ||
        !in.getI32(result.metrics.fiberGateCount) ||
        !in.getI32(result.metrics.insertedSwapGates) ||
        !in.getDouble(result.metrics.executionTimeUs) ||
        !in.getDouble(result.metrics.lnFidelity) ||
        !in.getDouble(result.metrics.lnFromShuttleOps) ||
        !in.getDouble(result.metrics.lnFromGateIntrinsic) ||
        !in.getDouble(result.metrics.lnFromHeatBackground) ||
        !in.getDouble(result.metrics.lnFromLifetime))
        return std::nullopt;

    std::uint64_t num_timings = 0;
    std::uint8_t delta_resumed = 0;
    std::uint64_t heap_allocs = 0;
    if (!in.getDouble(result.compileTimeSec) ||
        !in.getI32(result.swapInsertions) ||
        !in.getI32(result.evictions) ||
        !in.getIntMatrix(result.finalChains) || !in.getU64(num_timings) ||
        !in.plausibleCount(num_timings))
        return std::nullopt;
    result.passTrace.reserve(static_cast<std::size_t>(num_timings));
    for (std::uint64_t i = 0; i < num_timings; ++i) {
        PassTiming timing;
        if (!in.getString(timing.pass) || !in.getDouble(timing.seconds))
            return std::nullopt;
        result.passTrace.push_back(std::move(timing));
    }
    if (!in.getI32(result.routingSteps) || !in.getU64(heap_allocs) ||
        !in.getU8(delta_resumed) || delta_resumed > 1 || !in.atEnd())
        return std::nullopt;
    result.schedulerHeapAllocs = heap_allocs;
    result.deltaResumed = delta_resumed != 0;
    return result;
}

// ---- memory tier ------------------------------------------------------

MemoryResultCache::MemoryResultCache(std::size_t capacity)
    : capacity_(capacity)
{}

std::optional<CompileResult>
MemoryResultCache::lookup(const ResultCacheKey &key)
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(key);
    if (it == entries_.end()) {
        ++stats_.misses;
        return std::nullopt;
    }
    // Refresh recency.
    lru_.splice(lru_.begin(), lru_, it->second.second);
    ++stats_.hits;
    return it->second.first;
}

void
MemoryResultCache::store(const ResultCacheKey &key,
                         const CompileResult &result)
{
    if (capacity_ == 0)
        return;
    std::lock_guard<std::mutex> lock(mutex_);
    if (entries_.find(key) != entries_.end())
        return; // A concurrent identical job already stored it.
    while (entries_.size() >= capacity_ && !lru_.empty()) {
        entries_.erase(lru_.back());
        lru_.pop_back();
        ++stats_.evictions;
    }
    lru_.push_front(key);
    entries_.emplace(key, std::make_pair(result, lru_.begin()));
}

ResultTierStats
MemoryResultCache::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

// ---- disk tier --------------------------------------------------------

const char DiskResultCache::kMagic[9] = "MSTCACHE";

namespace {

/** 16-hex-digit rendering of a key digest. */
std::string
hexDigest(std::uint64_t digest)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(digest));
    return buf;
}

/** The key fields an entry header carries, for exact-match checking. */
std::string
encodeHeader(const ResultCacheKey &key, const std::string &payload)
{
    std::string header;
    header.append(DiskResultCache::kMagic, 8);
    const std::uint32_t version = DiskResultCache::kFormatVersion;
    for (int i = 0; i < 4; ++i)
        header += static_cast<char>((version >> (8 * i)) & 0xFF);
    putU64(header, key.circuitHash);
    putU64(header, key.configDigest);
    putU64(header, key.seed);
    putU8(header, key.hasSeed ? 1 : 0);
    putU64(header, payload.size());
    Fnv1a checksum;
    checksum.updateBytes(payload.data(), payload.size());
    putU64(header, checksum.digest());
    return header;
}

/**
 * Validate a whole entry file against `key`; the payload on success.
 * Every failure mode — short file, wrong magic/version, key mismatch
 * (digest collision), bad length, bad checksum — is "corrupt".
 */
std::optional<std::string>
validateEntry(const std::string &bytes, const ResultCacheKey &key)
{
    static constexpr std::size_t kHeaderSize = 8 + 4 + 8 * 3 + 1 + 8 + 8;
    if (bytes.size() < kHeaderSize)
        return std::nullopt;
    if (std::memcmp(bytes.data(), DiskResultCache::kMagic, 8) != 0)
        return std::nullopt;

    ByteReader in(bytes);
    {   // Skip the magic through the reader to keep offsets aligned.
        std::uint64_t magic = 0;
        if (!in.getU64(magic))
            return std::nullopt;
    }
    std::uint32_t version = 0;
    for (int i = 0; i < 4; ++i) {
        std::uint8_t byte = 0;
        if (!in.getU8(byte))
            return std::nullopt;
        version |= static_cast<std::uint32_t>(byte) << (8 * i);
    }
    if (version != DiskResultCache::kFormatVersion)
        return std::nullopt;

    ResultCacheKey stored;
    std::uint8_t has_seed = 0;
    if (!in.getU64(stored.circuitHash) || !in.getU64(stored.configDigest) ||
        !in.getU64(stored.seed) || !in.getU8(has_seed) || has_seed > 1)
        return std::nullopt;
    stored.hasSeed = has_seed != 0;
    if (!(stored == key))
        return std::nullopt;

    std::uint64_t payload_size = 0;
    std::uint64_t expected_checksum = 0;
    if (!in.getU64(payload_size) || !in.getU64(expected_checksum))
        return std::nullopt;
    if (bytes.size() - kHeaderSize != payload_size)
        return std::nullopt;

    Fnv1a checksum;
    checksum.updateBytes(bytes.data() + kHeaderSize,
                         bytes.size() - kHeaderSize);
    if (checksum.digest() != expected_checksum)
        return std::nullopt;
    return bytes.substr(kHeaderSize);
}

} // namespace

DiskResultCache::DiskResultCache(std::string directory,
                                 std::size_t capacity)
    : directory_(std::move(directory)), capacity_(capacity)
{
    std::error_code ec;
    fs::create_directories(directory_, ec);
    if (ec)
        warn("disk result cache: cannot create `" + directory_ + "`: " +
             ec.message() + "; the tier will miss on every lookup");
}

std::string
DiskResultCache::entryPathFor(const ResultCacheKey &key) const
{
    return (fs::path(directory_) / (hexDigest(key.digest()) + ".mstc"))
        .string();
}

std::optional<CompileResult>
DiskResultCache::lookup(const ResultCacheKey &key)
{
    const std::string path = entryPathFor(key);
    std::string bytes;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        std::ifstream in(path, std::ios::binary);
        if (!in.good()) {
            ++stats_.misses;
            return std::nullopt;
        }
        std::ostringstream buffer;
        buffer << in.rdbuf();
        bytes = std::move(buffer).str();
        if (!in.good() && !in.eof()) {
            ++stats_.misses;
            return std::nullopt; // Read error, not evidence of corruption.
        }
    }

    std::optional<CompileResult> result;
    if (const auto payload = validateEntry(bytes, key))
        result = deserializeCompileResult(*payload);

    std::lock_guard<std::mutex> lock(mutex_);
    if (!result.has_value()) {
        ++stats_.corrupt;
        ++stats_.misses;
        quarantine(path);
        return std::nullopt;
    }
    ++stats_.hits;
    return result;
}

void
DiskResultCache::store(const ResultCacheKey &key,
                       const CompileResult &result)
{
    const std::string payload = serializeCompileResult(result);
    const std::string header = encodeHeader(key, payload);
    const std::string path = entryPathFor(key);

    std::lock_guard<std::mutex> lock(mutex_);
    std::error_code ec;
    if (fs::exists(path, ec))
        return; // A concurrent identical job already stored it.

    // Atomic publish: a reader (in this process or another sharing the
    // directory) only ever opens complete entries.
    const std::string tmp = path + ".tmp." +
        std::to_string(static_cast<unsigned long>(::getpid()));
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out.good())
            return; // Best-effort: an unwritable cache is a cache miss.
        out << header << payload;
        out.flush();
        if (!out.good()) {
            out.close();
            fs::remove(tmp, ec);
            return;
        }
    }
    fs::rename(tmp, path, ec);
    if (ec) {
        fs::remove(tmp, ec);
        return;
    }
    enforceCapacityLocked();
}

void
DiskResultCache::enforceCapacityLocked()
{
    if (capacity_ == 0)
        return;
    std::error_code ec;
    std::vector<std::pair<fs::file_time_type, fs::path>> entries;
    for (const auto &entry : fs::directory_iterator(directory_, ec)) {
        if (!entry.is_regular_file(ec) ||
            entry.path().extension() != ".mstc")
            continue;
        entries.emplace_back(entry.last_write_time(ec), entry.path());
    }
    if (entries.size() <= capacity_)
        return;
    // Oldest-mtime eviction: recency on disk is write time, which is
    // coarser than the memory tier's LRU but needs no sidecar state.
    std::sort(entries.begin(), entries.end());
    const std::size_t excess = entries.size() - capacity_;
    for (std::size_t i = 0; i < excess; ++i) {
        fs::remove(entries[i].second, ec);
        if (!ec)
            ++stats_.evictions;
    }
}

void
DiskResultCache::quarantine(const std::string &path)
{
    std::error_code ec;
    const fs::path quarantine_dir = fs::path(directory_) / "quarantine";
    fs::create_directories(quarantine_dir, ec);
    if (ec) {
        fs::remove(path, ec); // Still get the bad entry off the hot path.
        return;
    }
    fs::rename(path, quarantine_dir / fs::path(path).filename(), ec);
    if (ec)
        fs::remove(path, ec);
}

ResultTierStats
DiskResultCache::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

} // namespace mussti
