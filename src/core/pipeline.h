/**
 * @file
 * The pass-based compilation pipeline.
 *
 * A compilation is an ordered sequence of CompilerPass objects run over
 * one CompileContext. The context carries everything the stages exchange:
 * the input and lowered circuits, the target device, the working and
 * final placements, the op schedule, counters, and the evaluated metrics.
 * PassPipeline owns the sequence, times each stage, enforces the
 * end-of-pipeline invariants (a lowering pass ran, an evaluation pass
 * ran), and assembles the CompileResult.
 *
 * Every compiler in the library — MUSS-TI and the grid baselines — is a
 * pass sequence behind the ICompilerBackend interface (core/backend.h);
 * adding a compilation stage means adding a pass, not editing a monolith.
 */
#ifndef MUSSTI_CORE_PIPELINE_H
#define MUSSTI_CORE_PIPELINE_H

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "arch/placement.h"
#include "arch/target_device.h"
#include "circuit/circuit.h"
#include "core/job_control.h"
#include "core/schedule_snapshot.h"
#include "sim/evaluator.h"
#include "sim/params.h"
#include "sim/schedule.h"

namespace mussti {

class EmlDevice;           // arch/eml_device.h
class GridDevice;          // arch/grid_device.h
struct SchedulerWorkspace; // core/scheduler_workspace.h

/** Wall-clock record of one executed pass. */
struct PassTiming
{
    std::string pass;
    double seconds = 0.0;
};

/**
 * Delta-compilation exchange of one compile call (core/
 * schedule_snapshot.h). The caller (normally the CompileService's
 * snapshot tier) supplies checkpoints whose input-prefix hashes it has
 * matched against the incoming circuit; the pipeline's scheduling pass
 * tries to resume from the longest provably safe one and reports the
 * checkpoints it captured for future reuse. Only consulted when the
 * backend's configuration enables delta compilation
 * (MusstiConfig::deltaCompile); other backends ignore it.
 */
struct DeltaCompileIO
{
    /**
     * Resume candidates, ascending by inputPrefixGates. Each must
     * carry a prefixHash the caller verified equals the incoming
     * circuit's prefixHash(inputPrefixGates).
     */
    std::vector<std::shared_ptr<const ScheduleSnapshot>> candidates;

    /**
     * Checkpoints captured during this compile, stamped with the input
     * prefix they cover — ready to key into a snapshot cache.
     */
    std::vector<ScheduleSnapshot> captured;

    /** The compile resumed from one of the candidates. */
    bool resumed = false;

    /**
     * Capture permission: when false the scheduling pass takes no
     * checkpoints even if the backend's config enables delta
     * compilation. The service clears it when the snapshot tier is
     * disabled or quarantined, so cold compiles don't pay capture cost
     * for snapshots nobody will store.
     */
    bool allowCapture = true;
};

/** Everything a compilation produces. */
struct CompileResult
{
    Circuit lowered;          ///< Input with SWAPs decomposed to 3 CX;
                              ///< the circuit the schedule implements.
    Schedule schedule;        ///< The physical op stream.
    Metrics metrics;          ///< Evaluated under the compiler's params.
    double compileTimeSec = 0.0; ///< Wall-clock of the full pipeline.
    int swapInsertions = 0;   ///< Logical SWAPs added (section 3.3).
    int evictions = 0;        ///< Conflict-handling relocations.
    std::vector<std::vector<int>> finalChains; ///< End-of-run placement.
    std::vector<PassTiming> passTrace; ///< Per-pass wall-clock breakdown.

    /**
     * Scheduler-loop perf counters, summed over every scheduler run of
     * the compilation (all three SABRE legs, whichever candidate won):
     * phase-2 routing steps, and heap allocations observed inside the
     * scheduling loops by common/alloc_counter.h (always zero unless
     * the binary instruments operator new — micro_scheduler_bench does,
     * and gates on allocations/step staying zero once warm).
     */
    int routingSteps = 0;
    std::uint64_t schedulerHeapAllocs = 0;

    /**
     * The schedule was produced by resuming from a delta-compile
     * checkpoint rather than scheduling the whole circuit (bit-
     * identical either way; see MusstiConfig::deltaCompile).
     */
    bool deltaResumed = false;

    explicit CompileResult(Circuit c) : lowered(std::move(c)) {}
};

/**
 * Platform-stable FNV-1a digest over everything that makes a result's
 * SCHEDULE what it is: every op field, initial and final chains, the
 * shuttle/swap/eviction counters, and the headline metrics. Two results
 * fingerprint equally iff the compiles were bit-identical — the
 * determinism pin used by the golden backend tests, printed by
 * compile_cli, and carried in every compile-server response so a client
 * can assert server == local without shipping the schedule back.
 * (Timing fields — compileTimeSec, passTrace — are excluded; they vary
 * run to run by construction.)
 */
std::uint64_t resultFingerprint(const CompileResult &result);

/**
 * Shared state of one compilation, created per job and owned by the
 * pipeline run — nothing in it is shared across concurrent compiles.
 */
struct CompileContext
{
    CompileContext(Circuit input_circuit, const PhysicalParams &physical,
                   std::uint64_t rng_seed)
        : input(std::move(input_circuit)), params(physical),
          seed(rng_seed), lowered(1)
    {}

    // ---- inputs -------------------------------------------------------
    Circuit input;            ///< The circuit as submitted.
    PhysicalParams params;    ///< Physics the schedule is costed under.
    std::uint64_t seed;       ///< Per-job RNG seed for stochastic passes.

    // ---- produced by passes ------------------------------------------
    Circuit lowered;          ///< Valid once loweredReady (LowerSwapsPass).
    bool loweredReady = false;

    /**
     * THE target device — every compilation has exactly one, set by the
     * backend's target pass (created through the DeviceRegistry) and
     * shared immutably, so concurrent jobs may alias one device.
     */
    std::shared_ptr<const TargetDevice> device;

    std::optional<Placement> placement;      ///< Initial/working mapping.
    std::optional<Placement> finalPlacement; ///< End-of-run mapping.

    Schedule schedule;
    int swapInsertions = 0;
    int evictions = 0;
    int routingSteps = 0;      ///< Accumulated by the scheduling passes.
    std::uint64_t schedulerHeapAllocs = 0; ///< Ditto (see CompileResult).

    Metrics metrics;
    bool metricsValid = false; ///< Set by whichever pass evaluated last.

    /**
     * Scheduler buffer cache shared by the scheduling passes of one job
     * (created by the first pass that runs a scheduler, reused by the
     * SABRE legs). Per-context, so concurrent jobs never share it.
     */
    std::shared_ptr<SchedulerWorkspace> schedulerWorkspace;

    /**
     * Delta-compilation exchange (may be null): candidates in,
     * captured checkpoints and the resume verdict out. Owned by the
     * compile() caller; the scheduling pass is the only reader/writer.
     */
    DeltaCompileIO *delta = nullptr;

    /**
     * Deadline/cancellation control for this job (may be null). The
     * pipeline checkpoints it at every pass boundary; the scheduling
     * passes thread it into the routing loop.
     */
    const JobControl *control = nullptr;

    std::vector<PassTiming> trace; ///< Filled by PassPipeline.

    // ---- invariant helpers (passes call these on entry) --------------
    /** The target device; panics if no target pass ran yet. */
    const TargetDevice &requireDevice() const;

    /** Zone descriptors of the target device. */
    const std::vector<ZoneInfo> &zoneInfos() const;

    /** The lowered circuit; panics if no lowering pass ran yet. */
    const Circuit &requireLowered() const;

    /** The working placement; panics if no mapping pass ran yet. */
    const Placement &requirePlacement() const;

    /**
     * Typed downcast for EML-only passes; panics if the target is
     * missing or not an EML device.
     */
    const EmlDevice &requireEmlDevice() const;

    /** Typed downcast for grid-only passes. */
    const GridDevice &requireGridDevice() const;
};

/** One stage of a compilation pipeline. */
class CompilerPass
{
  public:
    virtual ~CompilerPass() = default;

    /** Stable identifier used in pass traces and diagnostics. */
    virtual const char *name() const = 0;

    /** Execute the stage, reading and extending the context. */
    virtual void run(CompileContext &ctx) const = 0;
};

/**
 * An ordered, immutable-after-construction sequence of passes.
 *
 * compile() is const and re-entrant: each invocation builds a private
 * CompileContext, so one pipeline instance may serve concurrent jobs.
 */
class PassPipeline
{
  public:
    PassPipeline() = default;
    PassPipeline(PassPipeline &&) = default;
    PassPipeline &operator=(PassPipeline &&) = default;

    /** Append a pass; returns *this for chaining. */
    PassPipeline &add(std::unique_ptr<CompilerPass> pass);

    /** Names of the registered passes, in execution order. */
    std::vector<std::string> passNames() const;

    std::size_t size() const { return passes_.size(); }

    /**
     * Run every pass over a fresh context and assemble the result.
     * Panics unless a lowering pass and an evaluation pass both ran.
     * `workspace`, when given, seeds the context's scheduler arena so
     * repeated compilations reuse warm buffers (results are identical
     * either way; see core/scheduler_workspace.h for the contract).
     * `delta`, when given, is wired into the context for the scheduling
     * pass (resume candidates in, captured checkpoints out). `control`,
     * when given, is checkpointed before every pass (and inside the
     * scheduler's routing loop) so deadlines and cancellation take
     * effect at pass granularity or finer.
     */
    CompileResult
    compile(Circuit circuit, const PhysicalParams &params,
            std::uint64_t seed,
            std::shared_ptr<SchedulerWorkspace> workspace = nullptr,
            DeltaCompileIO *delta = nullptr,
            const JobControl *control = nullptr) const;

  private:
    std::vector<std::unique_ptr<CompilerPass>> passes_;
};

/** Lowering: decompose SWAP gates into 3 CX (native trapped-ion form). */
class LowerSwapsPass : public CompilerPass
{
  public:
    const char *name() const override { return "lower-swaps"; }
    void run(CompileContext &ctx) const override;
};

} // namespace mussti

#endif // MUSSTI_CORE_PIPELINE_H
