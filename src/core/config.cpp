#include "core/config.h"

#include "common/logging.h"

namespace mussti {

const char *
replacementPolicyName(ReplacementPolicy policy)
{
    switch (policy) {
      case ReplacementPolicy::AnticipatoryLru: return "anticipatory-lru";
      case ReplacementPolicy::Lru: return "lru";
      case ReplacementPolicy::Fifo: return "fifo";
      case ReplacementPolicy::Random: return "random";
    }
    panic("unhandled ReplacementPolicy");
}

} // namespace mussti
