/**
 * @file
 * Mid-run scheduler checkpoints for prefix-reuse delta compilation.
 *
 * A ScheduleSnapshot freezes everything MusstiScheduler::run mutates —
 * the op stream, placement chains, LRU stamps, router
 * eviction/arrival/RNG state, SWAP-insertion count, the anticipated-
 * usage table, and the DAG completion watermark (as the exact
 * retirement order) — at a point where the phase-1 drain has just
 * proven every frontier gate non-executable. Resuming from one replays
 * the recorded retirements over a freshly built DAG and restores the
 * rest verbatim, which by construction reproduces the cold run's state
 * bit for bit; the remaining suffix then schedules through the ordinary
 * loop (see scheduler.cpp, "Delta resume" and src/core/README.md).
 *
 * Snapshots are keyed by Circuit::prefixHash of the input prefix they
 * cover: two circuits agreeing on qubit count, name, and the first
 * `inputPrefixGates` gates hash equally, so CompileService finds the
 * longest reusable checkpoint by hash lookup, never by diffing.
 */
#ifndef MUSSTI_CORE_SCHEDULE_SNAPSHOT_H
#define MUSSTI_CORE_SCHEDULE_SNAPSHOT_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "sim/schedule.h"

namespace mussti {

/**
 * Router conflict-handling state at a checkpoint: the eviction count,
 * the FIFO arrival stamps, and the Random-policy RNG stream position.
 * Captured and restored as one unit so every later pickVictim() draw
 * and arrival comparison replays identically.
 */
struct RouterCheckpoint
{
    std::vector<std::int64_t> arrival;
    std::int64_t arrivalClock = 0;
    int evictions = 0;
    Rng rng{0};
};

/** One resumable checkpoint of a MUSS-TI scheduling pass. */
struct ScheduleSnapshot
{
    /**
     * Circuit::prefixHash(inputPrefixGates) of the *input* circuit the
     * snapshot was captured from — the snapshot-cache key component.
     * Stamped by the compile pass (the scheduler sees only the lowered
     * circuit); 0 until then.
     */
    std::uint64_t prefixHash = 0;

    /** Input-circuit gate count the snapshot covers (key metadata). */
    std::size_t inputPrefixGates = 0;

    /**
     * Lowered-circuit gate count the snapshot covers: every scheduled
     * or exposed gate has circuitIndex < loweredPrefixGates, so any
     * lowered circuit sharing this prefix can resume here.
     */
    std::size_t loweredPrefixGates = 0;

    /**
     * DAG completion watermark: retired node ids in their exact
     * retirement order. This is a valid topological order of the
     * retired set, so replaying complete() over it fast-forwards a
     * freshly built DAG to the captured window state without ever
     * touching a non-ready node.
     */
    std::vector<int> retired;

    /** The op stream and counters emitted up to the checkpoint. */
    Schedule schedule;

    /** Placement chains per zone at the checkpoint (front to back). */
    std::vector<std::vector<int>> chains;

    /** LRU use stamps and clock. */
    std::vector<std::int64_t> lruStamps;
    std::int64_t lruClock = 0;

    /** Router eviction/arrival/RNG state. */
    RouterCheckpoint router;

    /**
     * The per-step anticipated-usage table as the pass last snapshot it
     * (deliberately stale relative to the DAG — the cold pass syncs it
     * lazily, and the resumed pass must observe the same staleness).
     */
    std::vector<int> nextUse;
    bool nextUseSynced = false;

    /**
     * Per-qubit window depth (clamped to the horizon) of the qubit's
     * last unfinished two-qubit gate inside the covered lowered prefix,
     * or -1 when no such gate remains. This seeds the candidate-
     * selection sweep (scheduler.cpp, suffixWindowClean): suffix gates
     * chain onto exactly these depths, so whether a resume point stays
     * invisible to an edited suffix is decidable from the new circuit
     * alone — no DAG build, no replay.
     */
    std::vector<int> chainTailDepth;

    /** Pass counters at the checkpoint. */
    int swapInsertions = 0;
    int insertedSwapCount = 0;
    int routingSteps = 0;

    /** Approximate heap footprint, for the snapshot-cache byte budget. */
    std::size_t
    approxBytes() const
    {
        std::size_t bytes = sizeof(*this);
        bytes += retired.capacity() * sizeof(int);
        bytes += schedule.ops.capacity() * sizeof(ScheduledOp);
        for (const auto &chain : schedule.initialChains)
            bytes += chain.capacity() * sizeof(int);
        for (const auto &chain : chains)
            bytes += chain.capacity() * sizeof(int);
        bytes += lruStamps.capacity() * sizeof(std::int64_t);
        bytes += router.arrival.capacity() * sizeof(std::int64_t);
        bytes += nextUse.capacity() * sizeof(int);
        bytes += chainTailDepth.capacity() * sizeof(int);
        return bytes;
    }
};

} // namespace mussti

#endif // MUSSTI_CORE_SCHEDULE_SNAPSHOT_H
