/**
 * @file
 * Logical SWAP insertion across modules (paper section 3.3).
 *
 * After a cross-module (fiber) gate on (qa, qb): for each operand q with
 * no remaining near-future work on its own module (W(q, module(q)) == 0),
 * if some other module cj holds more than T future partners and contains
 * a qubit qc that is itself idle on cj (W(qc, cj) == 0), a logical SWAP
 * (three fiber MS gates) exchanges q and qc. The paper requires T >= 3
 * because a SWAP costs three entangling gates; the default is 4.
 */
#ifndef MUSSTI_CORE_SWAP_INSERTER_H
#define MUSSTI_CORE_SWAP_INSERTER_H

#include <vector>

#include "arch/eml_device.h"
#include "arch/placement.h"
#include "core/config.h"
#include "core/lru.h"
#include "core/router.h"
#include "core/weight_table.h"
#include "dag/dag.h"
#include "sim/params.h"
#include "sim/schedule.h"

namespace mussti {

/** The SWAP-insertion pass, invoked after every fiber gate. */
class SwapInserter
{
  public:
    SwapInserter(const EmlDevice &device, const PhysicalParams &params,
                 const MusstiConfig &config, Placement &placement,
                 Schedule &schedule, Router &router, LruTracker &lru);

    /**
     * Consider migrating qa and/or qb after their fiber gate. Returns
     * the number of logical SWAPs inserted (0, 1, or 2).
     */
    int maybeInsert(const DependencyDag &dag, int qubit_a, int qubit_b);

    /** Lifetime count of inserted logical SWAPs. */
    int insertedCount() const { return inserted_; }

    /** Restore the lifetime count from a delta-compile checkpoint. */
    void restoreInsertedCount(int count) { inserted_ = count; }

  private:
    const EmlDevice &device_;
    const PhysicalParams &params_;
    const MusstiConfig &config_;
    Placement &placement_;
    Schedule &schedule_;
    Router &router_;
    LruTracker &lru_;
    int inserted_ = 0;
    WeightTable weights_; ///< Lazy weight view re-bound per maybeInsert;
                          ///< row storage reused across the whole pass.

    /**
     * Pick the exchange partner on the target module, or -1. The
     * excluded qubits are exactly the two operands of the triggering
     * fiber gate, so they arrive as plain ids — no exclusion list to
     * build or scan per chain resident.
     */
    int choosePartner(const WeightTable &weights, int target_module,
                      int exclude_a, int exclude_b) const;

    /** Emit the 3-fiber-gate SWAP and exchange the placements. */
    void performSwap(int qubit, int partner);
};

} // namespace mussti

#endif // MUSSTI_CORE_SWAP_INSERTER_H
