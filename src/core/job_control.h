/**
 * @file
 * Cooperative deadline/cancellation control for one compile job.
 *
 * A JobControl is owned by whoever runs the job (the CompileService
 * worker, or a caller driving a backend directly) and threaded by
 * pointer through the pipeline into the scheduler's routing loop. The
 * flags it watches are plain atomics owned elsewhere — checking them is
 * a relaxed load, and the deadline check is one steady_clock read — so
 * a checkpoint allocates nothing unless it actually fires, preserving
 * the scheduler's zero-steady-state-allocation invariant. The pipeline
 * checkpoints at every pass boundary; the scheduler every
 * `checkEveryGates` routing steps.
 *
 * A fired checkpoint raises a quiet structured error (Cancelled or
 * Timeout, common/error.h) that unwinds the compile; the service turns
 * it into the job's CompileOutcome.
 */
#ifndef MUSSTI_CORE_JOB_CONTROL_H
#define MUSSTI_CORE_JOB_CONTROL_H

#include <atomic>
#include <chrono>
#include <optional>

#include "common/error.h"
#include "common/logging.h"

namespace mussti {

struct JobControl
{
    /** Absolute deadline; past it the job resolves Timeout. */
    std::optional<std::chrono::steady_clock::time_point> deadline;

    /** Caller's cancellation token (may be null). Set → Cancelled. */
    const std::atomic<bool> *cancel = nullptr;

    /** Service-shutdown flag (may be null). Set → Cancelled. */
    const std::atomic<bool> *shutdown = nullptr;

    /** Scheduler checkpoint cadence, in retired routing steps. */
    int checkEveryGates = 128;

    bool cancelRequested() const
    {
        return (cancel != nullptr &&
                cancel->load(std::memory_order_relaxed)) ||
               (shutdown != nullptr &&
                shutdown->load(std::memory_order_relaxed));
    }

    bool deadlineExpired() const
    {
        return deadline.has_value() &&
               std::chrono::steady_clock::now() >= *deadline;
    }

    /** Raise Cancelled/Timeout if either condition holds. */
    void checkpoint() const
    {
        if (cancelRequested())
            raiseError(ErrorCategory::Cancelled, "job.cancelled",
                       "compile job cancelled");
        if (deadlineExpired())
            raiseError(ErrorCategory::Timeout, "job.deadline-exceeded",
                       "compile job deadline exceeded");
    }
};

} // namespace mussti

#endif // MUSSTI_CORE_JOB_CONTROL_H
