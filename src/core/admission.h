/**
 * @file
 * Multi-tenant fair admission in front of the compile service.
 *
 * The CompileService's queue is a plain FIFO: a client that dumps a
 * 4096-job sweep ahead of an interactive compile starves it. This layer
 * puts a per-client queue in front of the pool and dispatches by
 * deficit round robin (DRR): clients take turns in first-appearance
 * order; each turn banks a fixed quantum of "gate credit" and
 * dispatches queued jobs while the credit covers their cost (a job's
 * cost is its gate count, so credit models compile work, not job
 * count). A bounded per-client in-flight budget keeps any one client
 * from occupying every worker even when the queues of others are
 * momentarily empty.
 *
 * Jobs reach the pool through CompileService::submitWithCallback, so
 * deadlines, cancellation, Transient retry, caching, and shutdown-drain
 * semantics carry over unchanged — admission reorders dispatch, it
 * never touches execution. Schedules therefore stay bit-identical to a
 * direct compileAll at any interleaving: WHAT a job compiles to is
 * pinned by (circuit, config, seed); admission only decides WHEN it
 * starts.
 *
 * Within one client, jobs dispatch in submission order (per-client
 * FIFO). Across clients, the dispatch order is a deterministic function
 * of the submission sequence: selection happens under one lock by one
 * pump at a time, and the dispatch log records it for tests.
 */
#ifndef MUSSTI_CORE_ADMISSION_H
#define MUSSTI_CORE_ADMISSION_H

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/compile_service.h"

namespace mussti {

/** Fairness policy knobs. */
struct FairAdmissionConfig
{
    /**
     * Gate credit a client banks per DRR turn. Larger quanta lower
     * switching granularity (a client may burst more per turn);
     * smaller quanta interleave finer. Any positive value preserves
     * long-run proportional fairness.
     */
    std::uint64_t quantum = 256;

    /**
     * Per-client in-flight bound: jobs a single client may have
     * occupying workers at once; 0 = unbounded. The lever that keeps a
     * sweep from filling every worker the moment it is alone, which
     * would still delay the next interactive arrival by a full compile.
     */
    std::size_t maxInFlightPerClient = 4;
};

/** Point-in-time admission counters. */
struct AdmissionStats
{
    std::uint64_t submitted = 0;   ///< Jobs accepted into a queue.
    std::uint64_t dispatched = 0;  ///< Jobs handed to the service.
    std::uint64_t completed = 0;   ///< Outcomes delivered to callers.
    std::uint64_t cancelledQueued = 0; ///< Queued jobs cancelled by shutdown.
    std::size_t queuedJobs = 0;    ///< Currently waiting for dispatch.
    std::size_t inFlightJobs = 0;  ///< Currently at the service.
    std::size_t activeClients = 0; ///< Clients with queued or in-flight work.
};

/** Deficit-round-robin scheduler over per-client FIFO queues. */
class FairAdmission
{
  public:
    /** The service outlives this object; its pool does the work. */
    explicit FairAdmission(CompileService &service,
                           const FairAdmissionConfig &config = {});
    ~FairAdmission();

    FairAdmission(const FairAdmission &) = delete;
    FairAdmission &operator=(const FairAdmission &) = delete;

    /**
     * Queue one job for `client`; `done` fires exactly once with the
     * outcome (from a worker thread, or inline for immediate
     * rejections — including submit-after-shutdown, which resolves
     * Cancelled). Never throws; never blocks on compile work.
     */
    void submit(const std::string &client, CompileRequest request,
                std::function<void(CompileOutcome)> done);

    /**
     * Stop admitting: resolve every still-queued job Cancelled, then
     * wait for in-flight jobs to deliver. Idempotent; the destructor
     * calls it. (Jobs already at the service finish or are cut short
     * by the service's own shutdown — graceful drain runs this before
     * CompileService::shutdown.)
     */
    void shutdown();

    /** Block until no job is queued or in flight. */
    void drain();

    AdmissionStats stats() const;

    /**
     * Client ids in dispatch order since construction — the DRR
     * schedule itself, recorded under the selection lock so fairness
     * tests can pin the interleaving exactly.
     */
    std::vector<std::string> dispatchLog() const;

  private:
    struct Pending
    {
        CompileRequest request;
        std::function<void(CompileOutcome)> done;
        std::uint64_t cost = 1;
    };

    struct ClientState
    {
        std::deque<Pending> queue;
        std::uint64_t deficit = 0;  ///< Banked gate credit.
        std::size_t inFlight = 0;
    };

    struct Dispatch
    {
        std::string client;
        Pending job;
    };

    /**
     * Run DRR selection and dispatch until nothing is dispatchable.
     * Only one pump runs at a time (pumping_); concurrent callers mark
     * repump_ and leave, and the running pump loops again — dispatching
     * happens outside the lock, so a completion callback re-entering
     * pump() can never deadlock.
     */
    void pump();

    /** One full DRR rotation; selected jobs, booked as in-flight. */
    std::vector<Dispatch> selectLocked();

    /** Hand one selected job to the service. */
    void dispatch(Dispatch item);

    CompileService &service_;
    const FairAdmissionConfig config_;

    mutable std::mutex mutex_;
    std::condition_variable idleCv_; ///< Signalled when work drains.
    std::unordered_map<std::string, ClientState> clients_;
    std::vector<std::string> ring_;  ///< First-appearance client order.
    std::size_t cursor_ = 0;         ///< Next ring position to serve.
    bool stopping_ = false;
    bool pumping_ = false;
    bool repump_ = false;

    /**
     * Completion hooks currently executing past their bookkeeping
     * (inside the re-pump). drain() waits for zero so no callback
     * thread still touches this object once the owner may destroy it.
     */
    std::size_t activeHooks_ = 0;

    std::uint64_t submitted_ = 0;
    std::uint64_t dispatched_ = 0;
    std::uint64_t completed_ = 0;
    std::uint64_t cancelledQueued_ = 0;
    std::vector<std::string> dispatchLog_;
};

} // namespace mussti

#endif // MUSSTI_CORE_ADMISSION_H
