/**
 * @file
 * The uniform compiler-backend interface.
 *
 * A backend is a named, configured compiler: circuit in, CompileResult
 * out. MUSS-TI (core/compiler.h) and every grid baseline
 * (baselines/grid_compiler_base.h) implement it, so bench drivers, the
 * CLI, and the CompileService never special-case a compiler type.
 * Backends are immutable after construction and safe to share across
 * threads; every compile() call builds private state.
 */
#ifndef MUSSTI_CORE_BACKEND_H
#define MUSSTI_CORE_BACKEND_H

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "core/pipeline.h"

namespace mussti {

struct SchedulerWorkspace; // core/scheduler_workspace.h

/** A configured compiler behind a uniform interface. */
class ICompilerBackend
{
  public:
    virtual ~ICompilerBackend() = default;

    /** Stable backend identifier ("mussti", "murali", "dai", "mqt"). */
    virtual const std::string &name() const = 0;

    /** Compile a circuit under the backend's configured seed. */
    virtual CompileResult compile(Circuit circuit) const = 0;

    /**
     * compile() against a donated scheduler arena (see the seeded
     * overload below for the reuse contract). Backends without a
     * scheduler hot path ignore the arena.
     */
    virtual CompileResult
    compile(Circuit circuit,
            const std::shared_ptr<SchedulerWorkspace> &workspace) const
    {
        (void)workspace;
        return compile(std::move(circuit));
    }

    /**
     * Compile with an explicit RNG seed for stochastic passes (the
     * CompileService's per-job seeding hook). Deterministic backends
     * ignore the seed and must return the same result as compile().
     */
    virtual CompileResult
    compileSeeded(Circuit circuit, std::uint64_t seed) const
    {
        (void)seed;
        return compile(std::move(circuit));
    }

    /**
     * compileSeeded with a donated scheduler arena. The CompileService
     * keeps one workspace per worker thread and passes it here, so
     * consecutive jobs on a worker reuse warm buffers instead of
     * re-growing them per compilation. Purely an allocation cache: the
     * result must be bit-identical to compileSeeded(circuit, seed), and
     * backends without a scheduler hot path simply ignore the arena
     * (this default).
     */
    virtual CompileResult
    compileSeeded(Circuit circuit, std::uint64_t seed,
                  const std::shared_ptr<SchedulerWorkspace> &workspace) const
    {
        (void)workspace;
        return compileSeeded(std::move(circuit), seed);
    }

    /**
     * Compile with a delta-compilation exchange: resume candidates in,
     * captured checkpoints out (see DeltaCompileIO). `seed` absent means
     * the backend's configured seed, matching compile(); present matches
     * compileSeeded(). The result must be bit-identical to the
     * corresponding plain call whether or not a resume happens. Backends
     * without a delta path ignore the candidates and capture nothing
     * (this default).
     */
    virtual CompileResult
    compileDelta(Circuit circuit, const std::optional<std::uint64_t> &seed,
                 const std::shared_ptr<SchedulerWorkspace> &workspace,
                 DeltaCompileIO &delta) const
    {
        delta.captured.clear();
        delta.resumed = false;
        return seed.has_value()
                   ? compileSeeded(std::move(circuit), *seed, workspace)
                   : compile(std::move(circuit), workspace);
    }

    /**
     * The full-service entry point: compileDelta plus a deadline/
     * cancellation control the backend threads into its pipeline and
     * scheduler loops. `control` may be null (uncontrolled). Backends
     * that don't thread control any deeper still honour it at this
     * boundary via the default's entry checkpoint; backends built on
     * PassPipeline should override and pass it through so every pass
     * boundary (and the routing loop) checks it.
     */
    virtual CompileResult
    compileControlled(Circuit circuit,
                      const std::optional<std::uint64_t> &seed,
                      const std::shared_ptr<SchedulerWorkspace> &workspace,
                      DeltaCompileIO &delta, const JobControl *control) const
    {
        if (control != nullptr)
            control->checkpoint();
        return compileDelta(std::move(circuit), seed, workspace, delta);
    }

    /**
     * Digest of everything besides the circuit and the per-job seed that
     * determines the output: backend identity, configuration, and
     * physical parameters. One third of the service's cache key.
     */
    virtual std::uint64_t configDigest() const = 0;
};

} // namespace mussti

#endif // MUSSTI_CORE_BACKEND_H
