#include "core/lru.h"

#include <algorithm>

#include "common/logging.h"

namespace mussti {

LruTracker::LruTracker(int num_qubits) : stamps_(num_qubits, 0)
{
    MUSSTI_REQUIRE(num_qubits > 0, "LRU tracker needs qubits");
}

void
LruTracker::touch(int qubit)
{
    MUSSTI_ASSERT(qubit >= 0 &&
                  qubit < static_cast<int>(stamps_.size()),
                  "LRU touch out of range: " << qubit);
    stamps_[qubit] = ++clock_;
}

std::int64_t
LruTracker::stampOf(int qubit) const
{
    MUSSTI_ASSERT(qubit >= 0 &&
                  qubit < static_cast<int>(stamps_.size()),
                  "LRU stamp out of range: " << qubit);
    return stamps_[qubit];
}

int
LruTracker::victim(const ZoneChain &candidates,
                   const std::vector<int> &exclude) const
{
    int best = -1;
    std::int64_t best_stamp = 0;
    for (int q : candidates) {
        if (std::find(exclude.begin(), exclude.end(), q) != exclude.end())
            continue;
        if (best < 0 || stamps_[q] < best_stamp) {
            best = q;
            best_stamp = stamps_[q];
        }
    }
    return best;
}

} // namespace mussti
