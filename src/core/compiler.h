/**
 * @file
 * The MUSS-TI compiler facade: circuit in, evaluated schedule out.
 * This is the primary public entry point of the library.
 */
#ifndef MUSSTI_CORE_COMPILER_H
#define MUSSTI_CORE_COMPILER_H

#include <vector>

#include "arch/eml_device.h"
#include "circuit/circuit.h"
#include "core/config.h"
#include "sim/evaluator.h"
#include "sim/params.h"
#include "sim/schedule.h"

namespace mussti {

/** Everything a compilation produces. */
struct CompileResult
{
    Circuit lowered;          ///< Input with SWAPs decomposed to 3 CX;
                              ///< the circuit the schedule implements.
    Schedule schedule;        ///< The physical op stream.
    Metrics metrics;          ///< Evaluated under the compiler's params.
    double compileTimeSec = 0.0; ///< Wall-clock of mapping + scheduling.
    int swapInsertions = 0;   ///< Logical SWAPs added (section 3.3).
    int evictions = 0;        ///< Conflict-handling relocations.
    std::vector<std::vector<int>> finalChains; ///< End-of-run placement.

    CompileResult(Circuit c) : lowered(std::move(c)) {}
};

/**
 * MUSS-TI compiler for EML-QCCD devices.
 *
 * Usage:
 * @code
 *   MusstiConfig config;              // paper defaults
 *   MusstiCompiler compiler(config);
 *   CompileResult result = compiler.compile(makeGhz(64));
 *   std::cout << result.metrics.shuttleCount;
 * @endcode
 */
class MusstiCompiler
{
  public:
    explicit MusstiCompiler(const MusstiConfig &config = {},
                            const PhysicalParams &params = {})
        : config_(config), params_(params)
    {}

    const MusstiConfig &config() const { return config_; }
    const PhysicalParams &params() const { return params_; }

    /** The device a given circuit compiles onto (ceil(n/32) modules). */
    EmlDevice deviceFor(const Circuit &circuit) const;

    /** Compile and evaluate. */
    CompileResult compile(const Circuit &circuit) const;

  private:
    MusstiConfig config_;
    PhysicalParams params_;
};

} // namespace mussti

#endif // MUSSTI_CORE_COMPILER_H
