/**
 * @file
 * The MUSS-TI compiler facade: circuit in, evaluated schedule out.
 * This is the primary public entry point of the library.
 *
 * Internally the compiler is a pass pipeline (core/pipeline.h):
 *
 *   lower-swaps -> eml-target -> trivial-placement -> mussti-schedule
 *               -> sabre-two-fold -> evaluate
 *
 * and it is one ICompilerBackend among several (core/backend.h), so
 * services and bench drivers can treat it interchangeably with the grid
 * baselines.
 */
#ifndef MUSSTI_CORE_COMPILER_H
#define MUSSTI_CORE_COMPILER_H

#include <memory>

#include "arch/eml_device.h"
#include "circuit/circuit.h"
#include "core/backend.h"
#include "core/config.h"
#include "core/pipeline.h"
#include "sim/params.h"

namespace mussti {

/**
 * MUSS-TI compiler for EML-QCCD devices.
 *
 * Usage:
 * @code
 *   MusstiConfig config;              // paper defaults
 *   MusstiCompiler compiler(config);
 *   CompileResult result = compiler.compile(makeGhz(64));
 *   std::cout << result.metrics.shuttleCount;
 * @endcode
 */
class MusstiCompiler : public ICompilerBackend
{
  public:
    explicit MusstiCompiler(const MusstiConfig &config = {},
                            const PhysicalParams &params = {})
        : config_(config), params_(params)
    {}

    const MusstiConfig &config() const { return config_; }
    const PhysicalParams &params() const { return params_; }

    /**
     * The device a given circuit compiles onto (ceil(n/32) modules),
     * created through the DeviceRegistry like the target pass's.
     */
    std::shared_ptr<const EmlDevice> deviceFor(const Circuit &circuit) const;

    /** Compile and evaluate. */
    CompileResult compile(Circuit circuit) const override;

    /** Compile and evaluate against a donated scheduler arena. */
    CompileResult
    compile(Circuit circuit,
            const std::shared_ptr<SchedulerWorkspace> &workspace)
        const override;

    /** Compile with the configured seed replaced (per-job seeding). */
    CompileResult compileSeeded(Circuit circuit,
                                std::uint64_t seed) const override;

    /**
     * compileSeeded against a donated scheduler arena (see
     * ICompilerBackend): the three SABRE legs and later compilations
     * through the same workspace reuse warm buffers. Bit-identical to
     * the workspace-less overload.
     */
    CompileResult compileSeeded(
        Circuit circuit, std::uint64_t seed,
        const std::shared_ptr<SchedulerWorkspace> &workspace)
        const override;

    /**
     * Compile with a delta-compilation exchange: when
     * MusstiConfig::deltaCompile is on, the scheduling pass tries to
     * resume from the candidates and captures checkpoints per
     * MusstiConfig::deltaCheckpointGates. Bit-identical to
     * compileSeeded(circuit, seed) / compile(circuit) either way.
     */
    CompileResult
    compileDelta(Circuit circuit, const std::optional<std::uint64_t> &seed,
                 const std::shared_ptr<SchedulerWorkspace> &workspace,
                 DeltaCompileIO &delta) const override;

    /**
     * compileDelta plus cooperative deadline/cancellation: the control
     * is checkpointed at every pass boundary and every
     * JobControl::checkEveryGates routing steps of each scheduler leg.
     */
    CompileResult
    compileControlled(Circuit circuit,
                      const std::optional<std::uint64_t> &seed,
                      const std::shared_ptr<SchedulerWorkspace> &workspace,
                      DeltaCompileIO &delta,
                      const JobControl *control) const override;

    const std::string &name() const override;

    std::uint64_t configDigest() const override;

    /** The pass sequence compile() runs (exposed for tests/tools). */
    PassPipeline makePipeline() const;

  private:
    MusstiConfig config_;
    PhysicalParams params_;
};

} // namespace mussti

#endif // MUSSTI_CORE_COMPILER_H
