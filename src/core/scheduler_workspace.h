/**
 * @file
 * The per-job scheduler arena.
 *
 * One SchedulerWorkspace carries every growable buffer the MUSS-TI
 * scheduling hot path needs: the anticipated-usage snapshot, the
 * frontier worklist's round buffers, and the DependencyDag's window
 * scratch. A SABRE compile runs the scheduler three times (forward,
 * reverse, refined forward) against one workspace, and the
 * CompileService keeps one workspace per worker thread, so after the
 * first compilation of a given scale every buffer is warm and the
 * scheduling loop performs zero heap allocations (the property
 * micro_scheduler_bench's allocation counter pins).
 *
 * Purely an allocation cache: every consumer fully re-initialises the
 * ranges it reads, results are bit-identical with or without a
 * workspace (tests/test_scheduler_workspace.cpp), and a
 * default-constructed instance is always valid. Nothing in here may
 * carry information between runs — only capacity.
 */
#ifndef MUSSTI_CORE_SCHEDULER_WORKSPACE_H
#define MUSSTI_CORE_SCHEDULER_WORKSPACE_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "dag/dag.h"

namespace mussti {

/**
 * Reusable buffers for MusstiScheduler::run — see the file comment for
 * the reuse contract (allocation cache only, never information).
 */
struct SchedulerWorkspace
{
    /** Recycled storage for the per-pass nextUse snapshot. */
    std::vector<int> nextUseScratch;

    /** Op count of the largest run so far; seeds Schedule::ops reserve. */
    std::size_t opReserveHint = 0;

    /** Frontier-worklist round buffers (current round / next round). */
    std::vector<int> worklistCur;
    std::vector<int> worklistNext;

    /** Per-DAG-node worklist membership state. */
    std::vector<std::uint8_t> worklistState;

    /** Donated DependencyDag window scratch. */
    DagScratch dag;

    /**
     * Retirement-order recording buffer of the delta-compile capture
     * path (unused — empty — when deltaCompile is off). Reserved to the
     * DAG size before the hot loop so recording a retirement is a plain
     * push into warm storage.
     */
    std::vector<int> retiredOrderScratch;

    /**
     * Recycled per-qubit depth buffer for the resume-candidate
     * selection sweep (scheduler.cpp, suffixWindowClean).
     */
    std::vector<int> sweepScratch;
};

} // namespace mussti

#endif // MUSSTI_CORE_SCHEDULER_WORKSPACE_H
