/**
 * @file
 * Pluggable result-cache tiers for the compile service.
 *
 * The service memoises finished CompileResults keyed by (circuit
 * content hash, backend config digest, seed). This header makes the
 * store pluggable: tiers implement ResultCacheTier and the service
 * stacks them fastest-first — today an in-memory LRU tier
 * (MemoryResultCache) in front of an optional disk-backed persistent
 * tier (DiskResultCache). A lookup walks the stack front to back and
 * promotes hits into the tiers it passed, so a result that survived a
 * process restart on disk is one miss away from memory speed.
 *
 * Tier contract:
 *  - lookup()/store() are thread-safe and never throw: a tier that
 *    cannot serve (I/O error, corrupt entry, capacity zero) degrades to
 *    a miss or a dropped store, never to a wrong result and never to an
 *    exception on the compile path.
 *  - A stored result must deserialize bit-identical to what went in;
 *    the disk tier enforces this with a version-stamped, checksummed
 *    entry format and quarantines anything that fails validation.
 *  - Only completed compiles are stored (the service guarantees this),
 *    so a cache hit is always a result some compile actually produced.
 */
#ifndef MUSSTI_CORE_RESULT_CACHE_H
#define MUSSTI_CORE_RESULT_CACHE_H

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>

#include "core/pipeline.h"

namespace mussti {

/** Cache coordinates of one compile (same fields as the service key). */
struct ResultCacheKey
{
    std::uint64_t circuitHash = 0;
    std::uint64_t configDigest = 0;
    std::uint64_t seed = 0;
    bool hasSeed = false;

    bool operator==(const ResultCacheKey &other) const = default;

    /** FNV-1a digest over all fields (filenames, hash buckets). */
    std::uint64_t digest() const;
};

struct ResultCacheKeyHash
{
    std::size_t
    operator()(const ResultCacheKey &key) const
    {
        return static_cast<std::size_t>(key.digest());
    }
};

/** Monotonic per-tier counters. */
struct ResultTierStats
{
    std::uint64_t hits = 0;      ///< Lookups that returned a result.
    std::uint64_t misses = 0;    ///< Lookups that found nothing usable.
    std::uint64_t evictions = 0; ///< Entries dropped by the capacity bound.
    std::uint64_t corrupt = 0;   ///< Entries failing validation (counted
                                 ///< as misses and quarantined).
};

/** One level of the result-cache stack. */
class ResultCacheTier
{
  public:
    virtual ~ResultCacheTier() = default;

    /** Stable identifier for stats and diagnostics ("memory"/"disk"). */
    virtual const char *name() const = 0;

    /** The result stored under `key`, or nullopt. Never throws. */
    virtual std::optional<CompileResult>
    lookup(const ResultCacheKey &key) = 0;

    /** Store (best-effort; duplicate keys keep the incumbent). */
    virtual void store(const ResultCacheKey &key,
                       const CompileResult &result) = 0;

    virtual ResultTierStats stats() const = 0;
};

/** The in-memory bounded LRU tier (the service's original cache). */
class MemoryResultCache : public ResultCacheTier
{
  public:
    explicit MemoryResultCache(std::size_t capacity);

    const char *name() const override { return "memory"; }
    std::optional<CompileResult>
    lookup(const ResultCacheKey &key) override;
    void store(const ResultCacheKey &key,
               const CompileResult &result) override;
    ResultTierStats stats() const override;

  private:
    const std::size_t capacity_;
    mutable std::mutex mutex_;
    std::unordered_map<ResultCacheKey,
                       std::pair<CompileResult,
                                 std::list<ResultCacheKey>::iterator>,
                       ResultCacheKeyHash>
        entries_;
    std::list<ResultCacheKey> lru_; ///< Front = most recently used.
    ResultTierStats stats_;
};

/**
 * The disk-backed persistent tier: one file per entry under a cache
 * directory, named by the key digest. Writes are atomic
 * (write-to-temp + rename), so concurrent writers and a reader racing
 * a writer only ever observe complete entries. Every entry carries a
 * magic tag, a format version, the full key, and a payload checksum;
 * an entry failing ANY of those checks — truncation, garbage, a stale
 * format, a digest collision — is treated as a miss, counted corrupt,
 * and moved into a quarantine/ subdirectory for post-mortem, keeping
 * the hot path silent and the wrong-result probability at the checksum
 * collision floor.
 */
class DiskResultCache : public ResultCacheTier
{
  public:
    /**
     * `directory` is created if missing; `capacity` bounds the entry
     * count (oldest-mtime eviction past it; 0 = unbounded).
     */
    DiskResultCache(std::string directory, std::size_t capacity);

    const char *name() const override { return "disk"; }
    std::optional<CompileResult>
    lookup(const ResultCacheKey &key) override;
    void store(const ResultCacheKey &key,
               const CompileResult &result) override;
    ResultTierStats stats() const override;

    /** Entry path for `key` (exposed for the corruption tests). */
    std::string entryPathFor(const ResultCacheKey &key) const;

    /** Entry format version stamped into every file header. */
    static constexpr std::uint32_t kFormatVersion = 1;

    /** 8-byte magic tag opening every entry file. */
    static const char kMagic[9];

  private:
    void quarantine(const std::string &path);
    void enforceCapacityLocked();

    const std::string directory_;
    const std::size_t capacity_;
    mutable std::mutex mutex_;
    ResultTierStats stats_;
};

/**
 * Bit-exact binary serialization of a CompileResult (doubles round-trip
 * as raw bit patterns), the payload format of the disk tier. Exposed
 * for tests; the encoding is internal to this repo and versioned by
 * DiskResultCache::kFormatVersion.
 */
std::string serializeCompileResult(const CompileResult &result);

/**
 * Inverse of serializeCompileResult. nullopt on ANY malformation —
 * truncation, trailing bytes, out-of-range enum or operand — never an
 * exception and never a partially-filled result.
 */
std::optional<CompileResult>
deserializeCompileResult(const std::string &bytes);

} // namespace mussti

#endif // MUSSTI_CORE_RESULT_CACHE_H
