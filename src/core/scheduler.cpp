#include "core/scheduler.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/alloc_counter.h"
#include "common/logging.h"
#include "core/lru.h"
#include "core/router.h"
#include "core/swap_inserter.h"
#include "dag/dag.h"

namespace mussti {

namespace {

/**
 * The incrementally maintained executable-ready worklist behind the
 * phase-1 drain.
 *
 * The historical drain re-snapshotted the whole frontier and re-scanned
 * it until fixpoint — O(frontier²) work per routing step, almost all of
 * it re-checking gates whose operands had not moved. The worklist keeps
 * exactly the gates whose executability may have changed:
 *
 *  - every gate that just became ready (its last predecessor retired);
 *  - every ready gate with a relocated operand (the router and the
 *    SWAP-inserter report placement changes through QubitMoveListener;
 *    the only frontier gate a move of qubit q can affect is q's chain
 *    head, an O(1) lookup).
 *
 * Order is pinned to the historical drain: a round visits its
 * candidates in ascending node-id (= FCFS) order, exactly the order the
 * full re-scan visited them. A gate dirtied mid-round re-enters the
 * CURRENT round when its id is still ahead of the cursor (the re-scan
 * would reach it this pass, after the move) and the NEXT round
 * otherwise (the re-scan would catch it on the following pass). Gates
 * that merely became ready mid-round always wait for the next round —
 * they were absent from the re-scan's snapshot. Skipped gates are
 * exactly those whose operands sat still since their last check, for
 * which the re-scan's answer could not have changed; the executed gate
 * sequence is therefore bit-identical (pinned by the golden
 * fingerprints and the cross-check in tests/test_scheduler.cpp).
 *
 * Buffers are borrowed from the SchedulerWorkspace, so steady-state
 * rounds allocate nothing.
 */
class FrontierWorklist : public QubitMoveListener
{
  public:
    FrontierWorklist(const DependencyDag &dag, SchedulerWorkspace &ws)
        : dag_(dag), ws_(ws), cur_(std::move(ws.worklistCur)),
          next_(std::move(ws.worklistNext)),
          queued_(std::move(ws.worklistState))
    {
        cur_.clear();
        next_.clear();
        queued_.assign(static_cast<std::size_t>(dag.size()), 0);
        for (DagNodeId id : dag.frontier())
            noteReady(id);
    }

    ~FrontierWorklist() override
    {
        // Hand the buffers back so the next run starts warm.
        ws_.worklistCur = std::move(cur_);
        ws_.worklistNext = std::move(next_);
        ws_.worklistState = std::move(queued_);
    }

    /**
     * Start the next drain round: the queued candidates become the
     * round's visit list (ascending id). False when nothing is queued —
     * every ready gate is known non-executable and the drain is done.
     */
    bool
    beginRound()
    {
        if (next_.empty())
            return false;
        cur_.swap(next_);
        next_.clear();
        std::sort(cur_.begin(), cur_.end());
        cursor_ = 0;
        cursorId_ = -1;
        inRound_ = true;
        return true;
    }

    /** Next candidate of the round, or -1 when the round is exhausted. */
    DagNodeId
    take()
    {
        if (cursor_ >= cur_.size()) {
            inRound_ = false;
            return -1;
        }
        const DagNodeId id = cur_[cursor_++];
        queued_[id] = 0;
        cursorId_ = id;
        return id;
    }

    /** A node's last predecessor retired; queue its first check. */
    void
    noteReady(DagNodeId id)
    {
        if (queued_[id])
            return;
        queued_[id] = 1;
        next_.push_back(id);
    }

    void
    onQubitMoved(int qubit) override
    {
        // The only frontier gate a move of `qubit` can affect is the
        // head of its dependency chain; anything later depends on it.
        const DagNodeId head = dag_.qubitChainHeadNode(qubit);
        if (head < 0 || !dag_.isReady(head) || queued_[head])
            return;
        queued_[head] = 1;
        if (inRound_ && head > cursorId_) {
            // Ahead of the cursor: the historical re-scan would check
            // this gate later in the current pass — keep that order.
            const auto it = std::lower_bound(
                cur_.begin() + static_cast<std::ptrdiff_t>(cursor_),
                cur_.end(), head);
            cur_.insert(it, head);
        } else {
            next_.push_back(head);
        }
    }

  private:
    const DependencyDag &dag_;
    SchedulerWorkspace &ws_;
    std::vector<DagNodeId> cur_;  ///< Current round, ascending ids.
    std::vector<DagNodeId> next_; ///< Accumulating next round.
    std::vector<std::uint8_t> queued_; ///< Node is in cur_ or next_.
    std::size_t cursor_ = 0;
    DagNodeId cursorId_ = -1;
    bool inRound_ = false;
};

/** Shared mutable state of one scheduling pass. */
struct PassState
{
    const EmlDevice &device;
    const PhysicalParams &params;
    Placement placement;
    Schedule schedule;
    LruTracker lru;
    Router router;
    SwapInserter inserter;
    DependencyDag dag;
    FrontierWorklist worklist;

    std::vector<int> nextUse;
    bool nextUseSynced = false; ///< First snapshot copies the table.

    PassState(const EmlDevice &dev, const PhysicalParams &par,
              const MusstiConfig &cfg, const Circuit &circuit,
              const Placement &initial, SchedulerWorkspace &ws)
        : device(dev), params(par), placement(initial),
          lru(circuit.numQubits()),
          router(dev, par, placement, schedule, lru, cfg.replacement,
                 cfg.seed),
          inserter(dev, par, cfg, placement, schedule, router, lru),
          dag(circuit, cfg.nextUseHorizon, &ws.dag),
          worklist(dag, ws),
          nextUse(std::move(ws.nextUseScratch))
    {
        nextUse.assign(circuit.numQubits(), 0);
        schedule.initialChains = Schedule::snapshotChains(initial);
        schedule.ops.reserve(ws.opReserveHint);
        router.setNextUse(&nextUse);
        dag.enableNextUseLog();
        if (cfg.incrementalFrontier)
            router.setMoveListener(&worklist);
        // Chains never outgrow their trap capacity, so one reserve here
        // makes every later push/pop allocation-free.
        placement.reserveChains(dev.zoneInfos());
    }

    /**
     * Snapshot the anticipated-usage table the DAG maintains
     * incrementally: nextUse[q] = window depth of qubit q's next gate,
     * or the horizon sentinel when q is idle throughout the window.
     * This is the "anticipated qubit usage" the paper's replacement
     * scheduler combines with LRU history. Taken once per routing step
     * so eviction decisions between snapshots see a stable table,
     * exactly as the full recomputation did — but synced by the DAG's
     * change log, so a step pays for the chain heads that moved, not
     * for an O(qubits) copy.
     */
    void
    snapshotNextUse()
    {
        dag.syncNextUse(nextUse, !nextUseSynced);
        nextUseSynced = true;
    }
};

/** Emit a costed single-qubit gate (Measure/Barrier are free markers). */
void
emit1q(PassState &st, const Gate &gate)
{
    if (!isSingleQubit(gate.kind))
        return;
    ScheduledOp op;
    op.kind = OpKind::Gate1Q;
    op.q0 = gate.q0;
    op.zoneFrom = st.placement.zoneOf(gate.q0);
    op.zoneTo = op.zoneFrom;
    op.durationUs = st.params.gate1qTimeUs;
    st.schedule.push(op);
}

/** True if the gate can execute with the current placement. */
bool
executable(const PassState &st, const Gate &gate)
{
    const int zone_a = st.placement.zoneOf(gate.q0);
    const int zone_b = st.placement.zoneOf(gate.q1);
    const ZoneInfo &info_a = st.device.zone(zone_a);
    const ZoneInfo &info_b = st.device.zone(zone_b);
    if (zone_a == zone_b)
        return info_a.gateCapable();
    return info_a.kind == ZoneKind::Optical &&
           info_b.kind == ZoneKind::Optical &&
           info_a.module != info_b.module;
}

/** Execute a frontier node that satisfies executable(). */
void
executeGate(PassState &st, const MusstiConfig &config, DagNodeId id,
            int &swap_insertions)
{
    const DagNode &node = st.dag.node(id);
    const Gate &gate = node.gate;
    MUSSTI_ASSERT(executable(st, gate),
                  "executeGate on non-executable node " << id);

    for (const Gate &g1 : st.dag.leading1q(id))
        emit1q(st, g1);

    const int zone_a = st.placement.zoneOf(gate.q0);
    const int zone_b = st.placement.zoneOf(gate.q1);
    const bool fiber = zone_a != zone_b;

    ScheduledOp op;
    op.q0 = gate.q0;
    op.q1 = gate.q1;
    op.circuitGate = node.circuitIndex;
    if (fiber) {
        op.kind = OpKind::FiberGate;
        op.zoneFrom = zone_a;
        op.zoneTo = zone_b;
        op.durationUs = st.params.fiberGateTimeUs;
    } else {
        op.kind = OpKind::Gate2Q;
        op.zoneFrom = zone_a;
        op.zoneTo = zone_a;
        op.durationUs = st.params.gate2qTimeUs;
    }
    st.schedule.push(op);

    st.lru.touch(gate.q0);
    st.lru.touch(gate.q1);
    st.dag.complete(id);
    if (config.incrementalFrontier) {
        for (DagNodeId succ : node.succs) {
            if (st.dag.isReady(succ))
                st.worklist.noteReady(succ);
        }
    }

    if (fiber && config.enableSwapInsertion)
        swap_insertions += st.inserter.maybeInsert(st.dag, gate.q0,
                                                   gate.q1);
}

/**
 * Phase-1 drain, worklist form: visit exactly the candidates whose
 * executability may have changed, in the historical re-scan order.
 */
void
drainIncremental(PassState &st, const MusstiConfig &config,
                 int &swap_insertions)
{
    while (st.worklist.beginRound()) {
        DagNodeId id;
        while ((id = st.worklist.take()) >= 0) {
            if (st.dag.isReady(id) &&
                executable(st, st.dag.node(id).gate))
                executeGate(st, config, id, swap_insertions);
        }
    }
}

/**
 * Phase-1 drain, reference form: re-snapshot the whole frontier and
 * re-scan until fixpoint. Kept verbatim as the cross-check oracle for
 * the worklist (config.incrementalFrontier == false).
 */
void
drainFullRescan(PassState &st, const MusstiConfig &config,
                int &swap_insertions)
{
    bool progressed = true;
    while (progressed) {
        progressed = false;
        const std::vector<DagNodeId> snapshot = st.dag.frontier();
        for (DagNodeId id : snapshot) {
            if (st.dag.isReady(id) &&
                executable(st, st.dag.node(id).gate)) {
                executeGate(st, config, id, swap_insertions);
                progressed = true;
            }
        }
    }
}

} // namespace

MusstiScheduler::RunOutput
MusstiScheduler::run(const Circuit &lowered, const Placement &initial,
                     SchedulerWorkspace *workspace) const
{
    MUSSTI_REQUIRE(initial.allPlaced(),
                   "initial mapping leaves qubits unplaced");

    SchedulerWorkspace local;
    SchedulerWorkspace &ws = workspace ? *workspace : local;
    PassState st(device_, params_, config_, lowered, initial, ws);
    int swap_insertions = 0;
    int routing_steps = 0;

    // Everything beyond this point is the steady-state hot path; the
    // delta of the (bench-instrumented) allocation counter proves it
    // performs no heap allocation once the workspace is warm.
    const std::uint64_t allocs_at_start = AllocCounter::now();

    while (!st.dag.empty()) {
        // Gate selection, phase 1: drain every immediately executable
        // frontier gate ("prioritize executable gates").
        if (config_.incrementalFrontier)
            drainIncremental(st, config_, swap_insertions);
        else
            drainFullRescan(st, config_, swap_insertions);
        if (st.dag.empty())
            break;

        // Phase 2: first-come-first-served on the frontier; route its
        // operands, then execute. Eviction decisions see the current
        // look-ahead window.
        const DagNodeId chosen = st.dag.frontier().front();
        const Gate &gate = st.dag.node(chosen).gate;
        st.snapshotNextUse();
        st.router.routeForGate(gate.q0, gate.q1);
        executeGate(st, config_, chosen, swap_insertions);
        ++routing_steps;
    }

    for (const Gate &g1 : st.dag.trailing1q())
        emit1q(st, g1);

    const std::uint64_t loop_allocs = AllocCounter::now() - allocs_at_start;

    // Hand the reusable buffers back so the next run (the SABRE
    // reverse/refine legs) starts pre-sized.
    ws.opReserveHint = std::max(ws.opReserveHint, st.schedule.ops.size());
    ws.nextUseScratch = std::move(st.nextUse);

    RunOutput out(std::move(st.placement));
    out.schedule = std::move(st.schedule);
    out.swapInsertions = swap_insertions;
    out.evictions = st.router.evictionCount();
    out.routingSteps = routing_steps;
    out.loopHeapAllocs = loop_allocs;
    return out;
}

} // namespace mussti
