#include "core/scheduler.h"

#include <algorithm>
#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

#include "common/alloc_counter.h"
#include "common/fault_injection.h"
#include "common/logging.h"
#include "core/lru.h"
#include "core/router.h"
#include "core/swap_inserter.h"
#include "dag/dag.h"

namespace mussti {

namespace {

/**
 * The incrementally maintained executable-ready worklist behind the
 * phase-1 drain.
 *
 * The historical drain re-snapshotted the whole frontier and re-scanned
 * it until fixpoint — O(frontier²) work per routing step, almost all of
 * it re-checking gates whose operands had not moved. The worklist keeps
 * exactly the gates whose executability may have changed:
 *
 *  - every gate that just became ready (its last predecessor retired);
 *  - every ready gate with a relocated operand (the router and the
 *    SWAP-inserter report placement changes through QubitMoveListener;
 *    the only frontier gate a move of qubit q can affect is q's chain
 *    head, an O(1) lookup).
 *
 * Order is pinned to the historical drain: a round visits its
 * candidates in ascending node-id (= FCFS) order, exactly the order the
 * full re-scan visited them. A gate dirtied mid-round re-enters the
 * CURRENT round when its id is still ahead of the cursor (the re-scan
 * would reach it this pass, after the move) and the NEXT round
 * otherwise (the re-scan would catch it on the following pass). Gates
 * that merely became ready mid-round always wait for the next round —
 * they were absent from the re-scan's snapshot. Skipped gates are
 * exactly those whose operands sat still since their last check, for
 * which the re-scan's answer could not have changed; the executed gate
 * sequence is therefore bit-identical (pinned by the golden
 * fingerprints and the cross-check in tests/test_scheduler.cpp).
 *
 * Buffers are borrowed from the SchedulerWorkspace, so steady-state
 * rounds allocate nothing.
 */
class FrontierWorklist : public QubitMoveListener
{
  public:
    FrontierWorklist(const DependencyDag &dag, SchedulerWorkspace &ws)
        : dag_(dag), ws_(ws), cur_(std::move(ws.worklistCur)),
          next_(std::move(ws.worklistNext)),
          queued_(std::move(ws.worklistState))
    {
        cur_.clear();
        next_.clear();
        queued_.assign(static_cast<std::size_t>(dag.size()), 0);
        for (DagNodeId id : dag.frontier())
            noteReady(id);
    }

    ~FrontierWorklist() override
    {
        // Hand the buffers back so the next run starts warm.
        ws_.worklistCur = std::move(cur_);
        ws_.worklistNext = std::move(next_);
        ws_.worklistState = std::move(queued_);
    }

    /**
     * Start the next drain round: the queued candidates become the
     * round's visit list (ascending id). False when nothing is queued —
     * every ready gate is known non-executable and the drain is done.
     */
    bool
    beginRound()
    {
        if (next_.empty())
            return false;
        cur_.swap(next_);
        next_.clear();
        std::sort(cur_.begin(), cur_.end());
        cursor_ = 0;
        cursorId_ = -1;
        inRound_ = true;
        return true;
    }

    /** Next candidate of the round, or -1 when the round is exhausted. */
    DagNodeId
    take()
    {
        if (cursor_ >= cur_.size()) {
            inRound_ = false;
            return -1;
        }
        const DagNodeId id = cur_[cursor_++];
        queued_[id] = 0;
        cursorId_ = id;
        return id;
    }

    /**
     * Re-seed from the DAG's current frontier, dropping any queued
     * state — the delta-resume entry point. At a checkpoint the drain
     * has just proven every frontier gate non-executable with nothing
     * queued, so a resumed run's first drain round re-checks the full
     * frontier, executes nothing (same placement, same DAG, same
     * verdicts), and lands in exactly the captured worklist state.
     */
    void
    reseed()
    {
        cur_.clear();
        next_.clear();
        std::fill(queued_.begin(), queued_.end(), 0);
        inRound_ = false;
        for (DagNodeId id : dag_.frontier())
            noteReady(id);
    }

    /** A node's last predecessor retired; queue its first check. */
    void
    noteReady(DagNodeId id)
    {
        if (queued_[id])
            return;
        queued_[id] = 1;
        next_.push_back(id);
    }

    void
    onQubitMoved(int qubit) override
    {
        // The only frontier gate a move of `qubit` can affect is the
        // head of its dependency chain; anything later depends on it.
        const DagNodeId head = dag_.qubitChainHeadNode(qubit);
        if (head < 0 || !dag_.isReady(head) || queued_[head])
            return;
        queued_[head] = 1;
        if (inRound_ && head > cursorId_) {
            // Ahead of the cursor: the historical re-scan would check
            // this gate later in the current pass — keep that order.
            const auto it = std::lower_bound(
                cur_.begin() + static_cast<std::ptrdiff_t>(cursor_),
                cur_.end(), head);
            cur_.insert(it, head);
        } else {
            next_.push_back(head);
        }
    }

  private:
    const DependencyDag &dag_;
    SchedulerWorkspace &ws_;
    std::vector<DagNodeId> cur_;  ///< Current round, ascending ids.
    std::vector<DagNodeId> next_; ///< Accumulating next round.
    std::vector<std::uint8_t> queued_; ///< Node is in cur_ or next_.
    std::size_t cursor_ = 0;
    DagNodeId cursorId_ = -1;
    bool inRound_ = false;
};

/** Shared mutable state of one scheduling pass. */
struct PassState
{
    const EmlDevice &device;
    const PhysicalParams &params;
    Placement placement;
    Schedule schedule;
    LruTracker lru;
    Router router;
    SwapInserter inserter;
    DependencyDag dag;
    FrontierWorklist worklist;

    std::vector<int> nextUse;
    bool nextUseSynced = false; ///< First snapshot copies the table.

    /**
     * When non-null, every retired node id is recorded here in
     * retirement order — the DAG completion watermark a
     * ScheduleSnapshot replays to fast-forward a fresh DAG. Only bound
     * when the run captures checkpoints (delta compilation).
     */
    std::vector<int> *retiredOrder = nullptr;

    PassState(const EmlDevice &dev, const PhysicalParams &par,
              const MusstiConfig &cfg, const Circuit &circuit,
              const Placement &initial, SchedulerWorkspace &ws)
        : device(dev), params(par), placement(initial),
          lru(circuit.numQubits()),
          router(dev, par, placement, schedule, lru, cfg.replacement,
                 cfg.seed),
          inserter(dev, par, cfg, placement, schedule, router, lru),
          dag(circuit, cfg.nextUseHorizon, &ws.dag),
          worklist(dag, ws),
          nextUse(std::move(ws.nextUseScratch))
    {
        nextUse.assign(circuit.numQubits(), 0);
        schedule.initialChains = Schedule::snapshotChains(initial);
        schedule.ops.reserve(ws.opReserveHint);
        router.setNextUse(&nextUse);
        dag.enableNextUseLog();
        if (cfg.incrementalFrontier)
            router.setMoveListener(&worklist);
        // Chains never outgrow their trap capacity, so one reserve here
        // makes every later push/pop allocation-free.
        placement.reserveChains(dev.zoneInfos());
    }

    /**
     * Snapshot the anticipated-usage table the DAG maintains
     * incrementally: nextUse[q] = window depth of qubit q's next gate,
     * or the horizon sentinel when q is idle throughout the window.
     * This is the "anticipated qubit usage" the paper's replacement
     * scheduler combines with LRU history. Taken once per routing step
     * so eviction decisions between snapshots see a stable table,
     * exactly as the full recomputation did — but synced by the DAG's
     * change log, so a step pays for the chain heads that moved, not
     * for an O(qubits) copy.
     */
    void
    snapshotNextUse()
    {
        dag.syncNextUse(nextUse, !nextUseSynced);
        nextUseSynced = true;
    }
};

/** Emit a costed single-qubit gate (Measure/Barrier are free markers). */
void
emit1q(PassState &st, const Gate &gate)
{
    if (!isSingleQubit(gate.kind))
        return;
    ScheduledOp op;
    op.kind = OpKind::Gate1Q;
    op.q0 = gate.q0;
    op.zoneFrom = st.placement.zoneOf(gate.q0);
    op.zoneTo = op.zoneFrom;
    op.durationUs = st.params.gate1qTimeUs;
    st.schedule.push(op);
}

/** True if the gate can execute with the current placement. */
bool
executable(const PassState &st, const Gate &gate)
{
    const int zone_a = st.placement.zoneOf(gate.q0);
    const int zone_b = st.placement.zoneOf(gate.q1);
    const ZoneInfo &info_a = st.device.zone(zone_a);
    const ZoneInfo &info_b = st.device.zone(zone_b);
    if (zone_a == zone_b)
        return info_a.gateCapable();
    return info_a.kind == ZoneKind::Optical &&
           info_b.kind == ZoneKind::Optical &&
           info_a.module != info_b.module;
}

/** Execute a frontier node that satisfies executable(). */
void
executeGate(PassState &st, const MusstiConfig &config, DagNodeId id,
            int &swap_insertions)
{
    const DagNode &node = st.dag.node(id);
    const Gate &gate = node.gate;
    MUSSTI_ASSERT(executable(st, gate),
                  "executeGate on non-executable node " << id);

    for (const Gate &g1 : st.dag.leading1q(id))
        emit1q(st, g1);

    const int zone_a = st.placement.zoneOf(gate.q0);
    const int zone_b = st.placement.zoneOf(gate.q1);
    const bool fiber = zone_a != zone_b;

    ScheduledOp op;
    op.q0 = gate.q0;
    op.q1 = gate.q1;
    op.circuitGate = node.circuitIndex;
    if (fiber) {
        op.kind = OpKind::FiberGate;
        op.zoneFrom = zone_a;
        op.zoneTo = zone_b;
        op.durationUs = st.params.fiberGateTimeUs;
    } else {
        op.kind = OpKind::Gate2Q;
        op.zoneFrom = zone_a;
        op.zoneTo = zone_a;
        op.durationUs = st.params.gate2qTimeUs;
    }
    st.schedule.push(op);

    st.lru.touch(gate.q0);
    st.lru.touch(gate.q1);
    st.dag.complete(id);
    if (st.retiredOrder != nullptr)
        st.retiredOrder->push_back(id);
    if (config.incrementalFrontier) {
        for (DagNodeId succ : node.succs) {
            if (st.dag.isReady(succ))
                st.worklist.noteReady(succ);
        }
    }

    if (fiber && config.enableSwapInsertion)
        swap_insertions += st.inserter.maybeInsert(st.dag, gate.q0,
                                                   gate.q1);
}

/**
 * Phase-1 drain, worklist form: visit exactly the candidates whose
 * executability may have changed, in the historical re-scan order.
 */
void
drainIncremental(PassState &st, const MusstiConfig &config,
                 int &swap_insertions)
{
    while (st.worklist.beginRound()) {
        DagNodeId id;
        while ((id = st.worklist.take()) >= 0) {
            if (st.dag.isReady(id) &&
                executable(st, st.dag.node(id).gate))
                executeGate(st, config, id, swap_insertions);
        }
    }
}

/**
 * Phase-1 drain, reference form: re-snapshot the whole frontier and
 * re-scan until fixpoint. Kept verbatim as the cross-check oracle for
 * the worklist (config.incrementalFrontier == false).
 */
void
drainFullRescan(PassState &st, const MusstiConfig &config,
                int &swap_insertions)
{
    bool progressed = true;
    while (progressed) {
        progressed = false;
        const std::vector<DagNodeId> snapshot = st.dag.frontier();
        for (DagNodeId id : snapshot) {
            if (st.dag.isReady(id) &&
                executable(st, st.dag.node(id).gate)) {
                executeGate(st, config, id, swap_insertions);
                progressed = true;
            }
        }
    }
}

// ---- delta compilation: capture and resume ----------------------------
//
// ## Why a checkpoint is resumable bit for bit
//
// Snapshots are captured at one precise point of the loop: after the
// phase-1 drain has concluded (every frontier gate checked, none
// executable, nothing queued) and before phase 2 routes a gate. At that
// point the pass state is closed over (placement, schedule, LRU,
// router, inserter, the stale nextUse copy) plus the DAG, which is a
// pure function of (lowered circuit, retired set). Restoring the
// explicit state verbatim and fast-forwarding a fresh DAG by replaying
// the recorded retirement order (a valid topological order, so every
// replayed node is ready when its turn comes) therefore reconstructs
// the captured state exactly; the loop then continues as the cold run
// would have.
//
// ## Why a resume equals a cold compile of the NEW circuit
//
// The suffix beyond the shared prefix may differ arbitrarily, so the
// resumed run is only bit-identical to a cold compile of the new
// circuit if that cold compile would have made the very same decisions
// up to the checkpoint. Every decision input is either (a) a retired
// node, (b) a node inside the look-ahead window (depth < horizon:
// frontier membership, the nextUse table, the SWAP-insertion weight
// table — which reads depths < lookAhead <= horizon, a guard below), or
// (c) nothing. Window depths only DECREASE as nodes retire, so if a
// suffix node's depth is >= horizon after the full replay, it was >=
// horizon — invisible — at every earlier step too. windowClean() checks
// exactly that on the new DAG; a candidate that fails falls back to the
// cold path, never to a wrong schedule. Prefix nodes' depths depend
// only on their (prefix) predecessors, hence agree between the old and
// new DAGs.

/** No unfinished node at or beyond the shared prefix is visible inside
    the look-ahead window. */
bool
windowClean(const DependencyDag &dag, std::size_t shared_gates)
{
    for (int d = 0; d < dag.windowHorizon(); ++d) {
        for (DagNodeId id : dag.windowLayer(d)) {
            if (static_cast<std::size_t>(dag.node(id).circuitIndex) >=
                shared_gates)
                return false;
        }
    }
    return true;
}

/** Shape guards a snapshot must pass before any replay is attempted. */
bool
resumeShapeOk(const PassState &st, const Circuit &lowered,
              const ResumeCandidate &cand)
{
    const ScheduleSnapshot &snap = *cand.snapshot;
    const auto qubits = static_cast<std::size_t>(lowered.numQubits());
    return snap.loweredPrefixGates <= cand.sharedLoweredGates &&
           cand.sharedLoweredGates <= lowered.size() &&
           snap.retired.size() <=
               static_cast<std::size_t>(st.dag.size()) &&
           snap.lruStamps.size() == qubits &&
           snap.router.arrival.size() == qubits &&
           snap.nextUse.size() == qubits &&
           snap.chainTailDepth.size() == qubits &&
           static_cast<int>(snap.chains.size()) <=
               st.placement.numZones() &&
           snap.schedule.initialChains == st.schedule.initialChains;
}

/**
 * Replay snapshot retirements [from, snap.retired.size()) onto the
 * DAG. Every id must be a ready, unfinished node inside the verified
 * shared prefix; false (state partially advanced, caller rebuilds)
 * otherwise.
 */
bool
replayRetired(PassState &st, const ResumeCandidate &cand,
              std::size_t from)
{
    const ScheduleSnapshot &snap = *cand.snapshot;
    for (std::size_t i = from; i < snap.retired.size(); ++i) {
        const int id = snap.retired[i];
        if (id < 0 || id >= st.dag.size())
            return false;
        const DagNode &node = st.dag.node(id);
        if (node.done || !st.dag.isReady(id) ||
            static_cast<std::size_t>(node.circuitIndex) >=
                cand.sharedLoweredGates)
            return false;
        st.dag.complete(id);
    }
    return true;
}

/**
 * Decide windowClean(shared_gates) for a candidate without building or
 * replaying a DAG. At the resume point, the depth of every prefix node
 * (circuitIndex < the snapshot's covered prefix P) is what it was at
 * capture — depths only read predecessors, all inside the prefix — and
 * each qubit's deepest live prefix depth is frozen in the snapshot's
 * chainTailDepth. Every later node's depth then follows the
 * longest-path recurrence along its operands' dependency chains, so
 * one forward sweep over lowered[P..) reproduces exactly the depths
 * the replayed DAG would report (clamping at the horizon commutes with
 * the recurrence). Fails the moment a node at or beyond shared_gates
 * lands inside the window; succeeds early once every chain tail has
 * sunk to the horizon, since depths only grow along a sweep.
 */
bool
suffixWindowClean(const Circuit &lowered, const ScheduleSnapshot &snap,
                  std::size_t shared_gates, int horizon,
                  std::vector<int> &cur)
{
    cur.assign(snap.chainTailDepth.begin(), snap.chainTailDepth.end());
    int shallow = 0; // Qubits whose next gate could enter the window
                     // (-1, "next gate would be frontier", included).
    for (const int d : cur)
        shallow += d < horizon;
    for (std::size_t i = snap.loweredPrefixGates;
         i < lowered.size() && shallow > 0; ++i) {
        const Gate &g = lowered[i];
        if (!g.twoQubit())
            continue;
        const int da = cur[g.q0];
        const int db = cur[g.q1];
        const int m = std::max(da, db);
        const int d = m < 0 ? 0 : std::min(m + 1, horizon);
        if (d < horizon && i >= shared_gates)
            return false;
        shallow -= (da < horizon) + (db < horizon) - 2 * (d < horizon);
        cur[g.q0] = d;
        cur[g.q1] = d;
    }
    return true;
}

/**
 * Resume a freshly built pass state from a probe-approved candidate:
 * fast-forward the DAG, restore the captured state verbatim, and
 * re-seed the worklist from the fast-forwarded frontier. False when a
 * replay guard trips (pass state is dirty; caller rebuilds and goes
 * cold).
 */
bool
resumeFromSnapshot(PassState &st, const ResumeCandidate &cand,
                   int &swap_insertions, int &routing_steps)
{
    const ScheduleSnapshot &snap = *cand.snapshot;
    if (!replayRetired(st, cand, 0))
        return false;

    st.placement.restoreChains(snap.chains);
    st.schedule.ops.assign(snap.schedule.ops.begin(),
                           snap.schedule.ops.end());
    st.schedule.shuttleCount = snap.schedule.shuttleCount;
    st.schedule.ionSwapCount = snap.schedule.ionSwapCount;
    st.schedule.insertedSwapGates = snap.schedule.insertedSwapGates;
    st.lru.restore(snap.lruStamps, snap.lruClock);
    st.router.restoreCheckpoint(snap.router);
    st.inserter.restoreInsertedCount(snap.insertedSwapCount);
    st.nextUse.assign(snap.nextUse.begin(), snap.nextUse.end());
    st.nextUseSynced = snap.nextUseSynced;
    st.worklist.reseed();
    swap_insertions = snap.swapInsertions;
    routing_steps = snap.routingSteps;
    return true;
}

/**
 * Capture the current pass state as a resumable checkpoint. Returns
 * false — capturing nothing — once the look-ahead window has reached
 * the circuit's last gate (`last_node_index`): from there on a
 * checkpoint's watermark covers the whole circuit, so it could only
 * ever resume an EXACT recompile, which the service's result cache
 * already serves without scheduling at all. The window only moves
 * forward, so the caller should stop capturing for the rest of the run.
 */
bool
captureSnapshot(const PassState &st,
                const std::vector<int> &retired_order,
                int last_node_index, int swap_insertions,
                int routing_steps, std::vector<ScheduleSnapshot> &out)
{
    ScheduleSnapshot snap;

    // Lowered-prefix watermark: everything this run has observed so far
    // is either retired or inside the look-ahead window (see the proof
    // comment above), so any circuit agreeing on gates [0, watermark)
    // can resume here.
    int max_index = -1;
    for (const int id : retired_order)
        max_index = std::max(max_index, st.dag.node(id).circuitIndex);
    for (int d = 0; d < st.dag.windowHorizon(); ++d) {
        for (DagNodeId id : st.dag.windowLayer(d))
            max_index = std::max(max_index,
                                 st.dag.node(id).circuitIndex);
    }
    if (max_index >= last_node_index)
        return false;
    snap.loweredPrefixGates = static_cast<std::size_t>(max_index + 1);

    // Seed of the selection sweep (suffixWindowClean): for each qubit,
    // the clamped depth of its deepest unfinished gate inside the
    // covered prefix. Chain entries are circuit-ordered and the
    // unfinished ones form the suffix from the chain head, so the
    // deepest live prefix gate is the last entry with circuitIndex
    // <= max_index — found by binary search — provided it is at or
    // past the head.
    const int horizon = st.dag.windowHorizon();
    const std::size_t qubits = st.nextUse.size();
    snap.chainTailDepth.assign(qubits, -1);
    for (std::size_t q = 0; q < qubits; ++q) {
        const QubitChainView chain =
            st.dag.qubitChain(static_cast<int>(q));
        int lo = 0, hi = chain.size(); // First entry beyond max_index.
        while (lo < hi) {
            const int mid = lo + (hi - lo) / 2;
            if (st.dag.node(chain[mid]).circuitIndex <= max_index)
                lo = mid + 1;
            else
                hi = mid;
        }
        if (lo > st.dag.qubitChainHead(static_cast<int>(q)))
            snap.chainTailDepth[q] =
                std::min(st.dag.windowDepth(chain[lo - 1]), horizon);
    }

    snap.retired = retired_order;
    snap.schedule = st.schedule;
    snap.chains = Schedule::snapshotChains(st.placement);
    snap.lruStamps = st.lru.stamps();
    snap.lruClock = st.lru.now();
    st.router.saveCheckpoint(snap.router);
    snap.nextUse = st.nextUse;
    snap.nextUseSynced = st.nextUseSynced;
    snap.swapInsertions = swap_insertions;
    snap.insertedSwapCount = st.inserter.insertedCount();
    snap.routingSteps = routing_steps;
    out.push_back(std::move(snap));
    return true;
}

} // namespace

MusstiScheduler::RunOutput
MusstiScheduler::run(const Circuit &lowered, const Placement &initial,
                     SchedulerWorkspace *workspace,
                     const DeltaRequest *delta,
                     const JobControl *control) const
{
    MUSSTI_REQUIRE(initial.allPlaced(),
                   "initial mapping leaves qubits unplaced");

    SchedulerWorkspace local;
    SchedulerWorkspace &ws = workspace ? *workspace : local;
    // Heap-held (not optional-held) so the dirty-resume rebuild is a
    // plain reset, and because GCC's flow analysis mis-flags optional
    // payload reads here. The allocation sits outside the measured
    // loop window.
    auto st = std::make_unique<PassState>(device_, params_, config_,
                                          lowered, initial, ws);
    int swap_insertions = 0;
    int routing_steps = 0;

    // Delta resume is only sound when every window consumer's reach is
    // bounded by the horizon (the weight table reads depths up to
    // lookAhead); otherwise skip resuming, never produce a wrong
    // schedule.
    bool resumable =
        delta != nullptr && !delta->candidates.empty() &&
        config_.lookAhead <= config_.nextUseHorizon;
    // An injected resume fault degrades, never corrupts: the run falls
    // back to a cold compile of the whole circuit (bit-identical by the
    // delta contract). Consulted only when a resume was actually on the
    // table, so the site's visit counter tracks real resume attempts.
    if (resumable && FaultInjector::fires(FaultSite::SnapshotResume))
        resumable = false;
    const bool capture = delta != nullptr && delta->checkpointEvery > 0;

    std::vector<int> retired_order = std::move(ws.retiredOrderScratch);
    retired_order.clear();

    bool resumed = false;
    if (resumable) {
        // Pick the longest candidate whose resume point the no-replay
        // sweep proves invisible to the new suffix, fast-forward the
        // DAG once, and re-verify on the real window state — the sweep
        // selects, windowClean() remains the authoritative guard.
        std::vector<int> sweep = std::move(ws.sweepScratch);
        int best = -1;
        for (int i = static_cast<int>(delta->candidates.size()) - 1;
             i >= 0; --i) {
            const ResumeCandidate &cand = delta->candidates[i];
            if (cand.snapshot == nullptr ||
                !resumeShapeOk(*st, lowered, cand))
                continue;
            if (suffixWindowClean(lowered, *cand.snapshot,
                                  cand.sharedLoweredGates,
                                  st->dag.windowHorizon(), sweep)) {
                best = static_cast<int>(i);
                break;
            }
        }
        ws.sweepScratch = std::move(sweep);
        if (best >= 0) {
            const ResumeCandidate &cand = delta->candidates[best];
            if (resumeFromSnapshot(*st, cand, swap_insertions,
                                   routing_steps) &&
                windowClean(st->dag, cand.sharedLoweredGates)) {
                resumed = true;
                retired_order = cand.snapshot->retired;
            } else {
                // A replay guard tripped or the sweep over-promised:
                // rebuild and schedule from scratch.
                st.reset(); // Returns the scratch before the re-adopt.
                st = std::make_unique<PassState>(device_, params_,
                                                 config_, lowered,
                                                 initial, ws);
                swap_insertions = 0;
                routing_steps = 0;
                retired_order.clear();
            }
        }
    }

    // A resumed run captures nothing: the resume itself proves the
    // snapshot store already covers the shared prefix, so new
    // checkpoints would either duplicate existing keys (the prefix
    // region) or sit inside the end-of-circuit window (exact-recompile
    // only — the result cache's job). Skipping also keeps the resumed
    // hot path allocation-free, the property the delta bench gates on.
    const bool capture_active = capture && !resumed;
    std::vector<ScheduleSnapshot> snapshots;
    int checkpoint_every = capture_active
                               ? std::max(1, delta->checkpointEvery)
                               : 0;
    std::uint64_t capture_allocs = 0;
    int next_capture_at = 0;
    int last_node_index = -1;
    bool capture_open = capture_active;
    if (capture_active) {
        st->retiredOrder = &retired_order;
        retired_order.reserve(static_cast<std::size_t>(st->dag.size()));
        next_capture_at =
            static_cast<int>(retired_order.size()) + checkpoint_every;
        for (DagNodeId id = 0; id < st->dag.size(); ++id)
            last_node_index = std::max(last_node_index,
                                       st->dag.node(id).circuitIndex);
    }

    // Everything beyond this point is the steady-state hot path; the
    // delta of the (bench-instrumented) allocation counter proves it
    // performs no heap allocation once the workspace is warm. Snapshot
    // capture inside the loop books its own allocations separately —
    // it copies state by design — so the counter still pins the
    // scheduling work itself.
    const std::uint64_t allocs_at_start = AllocCounter::now();

    // Cooperative deadline/cancellation: a countdown re-armed every
    // checkEveryGates routing steps. The checkpoint itself is relaxed
    // atomic loads plus (deadline only) one clock read — it allocates
    // nothing unless it fires, so the loop stays steady-state
    // allocation-free under control.
    const int control_every =
        control != nullptr ? std::max(1, control->checkEveryGates) : 0;
    int control_countdown = control_every;

    while (!st->dag.empty()) {
        // Gate selection, phase 1: drain every immediately executable
        // frontier gate ("prioritize executable gates").
        if (config_.incrementalFrontier)
            drainIncremental(*st, config_, swap_insertions);
        else
            drainFullRescan(*st, config_, swap_insertions);
        if (st->dag.empty())
            break;

        if (control_every > 0 && --control_countdown <= 0) {
            control_countdown = control_every;
            control->checkpoint();
        }

        // Between the drain and phase 2 is the one point a checkpoint
        // is resumable from: the worklist is empty and every frontier
        // gate is proven non-executable, so a resumed run's first drain
        // round is a bit-identical no-op.
        if (capture_open) {
            const int retired_count = st->dag.size() -
                                      st->dag.remaining();
            if (retired_count >= next_capture_at) {
                const std::uint64_t before = AllocCounter::now();
                if (FaultInjector::fires(FaultSite::SnapshotCapture)) {
                    // An injected capture fault drops every checkpoint
                    // of this run and stops capturing: the job itself
                    // still succeeds, the snapshot tier just learns
                    // nothing from it.
                    snapshots.clear();
                    capture_open = false;
                } else
                if (captureSnapshot(*st, retired_order, last_node_index,
                                    swap_insertions, routing_steps,
                                    snapshots)) {
                    if (static_cast<int>(snapshots.size()) >
                        std::max(1, delta->maxSnapshots)) {
                        // Thin: drop every other checkpoint and double
                        // the cadence, keeping an even spread at
                        // bounded count.
                        std::size_t kept = 0;
                        for (std::size_t i = 1; i < snapshots.size();
                             i += 2)
                            snapshots[kept++] = std::move(snapshots[i]);
                        snapshots.resize(kept);
                        checkpoint_every *= 2;
                    }
                    next_capture_at = retired_count + checkpoint_every;
                } else {
                    capture_open = false; // Window reached the end.
                }
                capture_allocs += AllocCounter::now() - before;
            }
        }

        // Phase 2: first-come-first-served on the frontier; route its
        // operands, then execute. Eviction decisions see the current
        // look-ahead window.
        const DagNodeId chosen = st->dag.frontier().front();
        const Gate &gate = st->dag.node(chosen).gate;
        st->snapshotNextUse();
        st->router.routeForGate(gate.q0, gate.q1);
        executeGate(*st, config_, chosen, swap_insertions);
        ++routing_steps;
    }

    for (const Gate &g1 : st->dag.trailing1q())
        emit1q(*st, g1);

    const std::uint64_t loop_allocs =
        AllocCounter::now() - allocs_at_start - capture_allocs;

    // Hand the reusable buffers back so the next run (the SABRE
    // reverse/refine legs) starts pre-sized.
    ws.opReserveHint = std::max(ws.opReserveHint, st->schedule.ops.size());
    ws.nextUseScratch = std::move(st->nextUse);
    st->retiredOrder = nullptr;
    ws.retiredOrderScratch = std::move(retired_order);

    RunOutput out(std::move(st->placement));
    out.schedule = std::move(st->schedule);
    out.swapInsertions = swap_insertions;
    out.evictions = st->router.evictionCount();
    out.routingSteps = routing_steps;
    out.loopHeapAllocs = loop_allocs;
    out.snapshots = std::move(snapshots);
    out.resumed = resumed;
    return out;
}

} // namespace mussti
