#include "core/scheduler.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "core/lru.h"
#include "core/router.h"
#include "core/swap_inserter.h"
#include "dag/dag.h"

namespace mussti {

namespace {

/** Shared mutable state of one scheduling pass. */
struct PassState
{
    const EmlDevice &device;
    const PhysicalParams &params;
    Placement placement;
    Schedule schedule;
    LruTracker lru;
    Router router;
    SwapInserter inserter;
    DependencyDag dag;

    std::vector<int> nextUse;

    PassState(const EmlDevice &dev, const PhysicalParams &par,
              const MusstiConfig &cfg, const Circuit &circuit,
              const Placement &initial, SchedulerWorkspace &ws)
        : device(dev), params(par), placement(initial),
          lru(circuit.numQubits()),
          router(dev, par, placement, schedule, lru, cfg.replacement,
                 cfg.seed),
          inserter(dev, par, cfg, placement, schedule, router, lru),
          dag(circuit, cfg.nextUseHorizon),
          nextUse(std::move(ws.nextUseScratch))
    {
        nextUse.assign(circuit.numQubits(), 0);
        schedule.initialChains = Schedule::snapshotChains(initial);
        schedule.ops.reserve(ws.opReserveHint);
        router.setNextUse(&nextUse);
    }

    /**
     * Snapshot the anticipated-usage table the DAG maintains
     * incrementally: nextUse[q] = window depth of qubit q's next gate,
     * or the horizon sentinel when q is idle throughout the window.
     * This is the "anticipated qubit usage" the paper's replacement
     * scheduler combines with LRU history. Taken once per routing step
     * (an O(qubits) copy) so eviction decisions between snapshots see a
     * stable table, exactly as the full recomputation did.
     */
    void
    snapshotNextUse()
    {
        nextUse = dag.nextUse();
    }
};

/** Emit a costed single-qubit gate (Measure/Barrier are free markers). */
void
emit1q(PassState &st, const Gate &gate)
{
    if (!isSingleQubit(gate.kind))
        return;
    ScheduledOp op;
    op.kind = OpKind::Gate1Q;
    op.q0 = gate.q0;
    op.zoneFrom = st.placement.zoneOf(gate.q0);
    op.zoneTo = op.zoneFrom;
    op.durationUs = st.params.gate1qTimeUs;
    st.schedule.push(op);
}

/** True if the gate can execute with the current placement. */
bool
executable(const PassState &st, const Gate &gate)
{
    const int zone_a = st.placement.zoneOf(gate.q0);
    const int zone_b = st.placement.zoneOf(gate.q1);
    const ZoneInfo &info_a = st.device.zone(zone_a);
    const ZoneInfo &info_b = st.device.zone(zone_b);
    if (zone_a == zone_b)
        return info_a.gateCapable();
    return info_a.kind == ZoneKind::Optical &&
           info_b.kind == ZoneKind::Optical &&
           info_a.module != info_b.module;
}

/** Execute a frontier node that satisfies executable(). */
void
executeGate(PassState &st, const MusstiConfig &config, DagNodeId id,
            int &swap_insertions)
{
    const DagNode &node = st.dag.node(id);
    const Gate &gate = node.gate;
    MUSSTI_ASSERT(executable(st, gate),
                  "executeGate on non-executable node " << id);

    for (const Gate &g1 : node.leading1q)
        emit1q(st, g1);

    const int zone_a = st.placement.zoneOf(gate.q0);
    const int zone_b = st.placement.zoneOf(gate.q1);
    const bool fiber = zone_a != zone_b;

    ScheduledOp op;
    op.q0 = gate.q0;
    op.q1 = gate.q1;
    op.circuitGate = node.circuitIndex;
    if (fiber) {
        op.kind = OpKind::FiberGate;
        op.zoneFrom = zone_a;
        op.zoneTo = zone_b;
        op.durationUs = st.params.fiberGateTimeUs;
    } else {
        op.kind = OpKind::Gate2Q;
        op.zoneFrom = zone_a;
        op.zoneTo = zone_a;
        op.durationUs = st.params.gate2qTimeUs;
    }
    st.schedule.push(op);

    st.lru.touch(gate.q0);
    st.lru.touch(gate.q1);
    st.dag.complete(id);

    if (fiber && config.enableSwapInsertion)
        swap_insertions += st.inserter.maybeInsert(st.dag, gate.q0,
                                                   gate.q1);
}

} // namespace

MusstiScheduler::RunOutput
MusstiScheduler::run(const Circuit &lowered, const Placement &initial,
                     SchedulerWorkspace *workspace) const
{
    MUSSTI_REQUIRE(initial.allPlaced(),
                   "initial mapping leaves qubits unplaced");

    SchedulerWorkspace local;
    SchedulerWorkspace &ws = workspace ? *workspace : local;
    PassState st(device_, params_, config_, lowered, initial, ws);
    int swap_insertions = 0;

    while (!st.dag.empty()) {
        // Gate selection, phase 1: drain every immediately executable
        // frontier gate ("prioritize executable gates").
        bool progressed = true;
        while (progressed) {
            progressed = false;
            const std::vector<DagNodeId> snapshot = st.dag.frontier();
            for (DagNodeId id : snapshot) {
                if (st.dag.isReady(id) &&
                    executable(st, st.dag.node(id).gate)) {
                    executeGate(st, config_, id, swap_insertions);
                    progressed = true;
                }
            }
        }
        if (st.dag.empty())
            break;

        // Phase 2: first-come-first-served on the frontier; route its
        // operands, then execute. Eviction decisions see the current
        // look-ahead window.
        const DagNodeId chosen = st.dag.frontier().front();
        const Gate &gate = st.dag.node(chosen).gate;
        st.snapshotNextUse();
        st.router.routeForGate(gate.q0, gate.q1);
        executeGate(st, config_, chosen, swap_insertions);
    }

    for (const Gate &g1 : st.dag.trailing1q())
        emit1q(st, g1);

    // Hand the reusable buffers back so the next run (the SABRE
    // reverse/refine legs) starts pre-sized.
    ws.opReserveHint = std::max(ws.opReserveHint, st.schedule.ops.size());
    ws.nextUseScratch = std::move(st.nextUse);

    RunOutput out(std::move(st.placement));
    out.schedule = std::move(st.schedule);
    out.swapInsertions = swap_insertions;
    out.evictions = st.router.evictionCount();
    return out;
}

} // namespace mussti
