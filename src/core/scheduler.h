/**
 * @file
 * The MUSS-TI multi-level scheduler main loop (paper section 3.2,
 * Fig 3): gate selection, qubit routing, conflict handling, and the
 * SWAP-insertion hook, driven to a full schedule over the dependency
 * DAG.
 */
#ifndef MUSSTI_CORE_SCHEDULER_H
#define MUSSTI_CORE_SCHEDULER_H

#include <cstddef>
#include <vector>

#include "arch/eml_device.h"
#include "arch/placement.h"
#include "circuit/circuit.h"
#include "core/config.h"
#include "sim/params.h"
#include "sim/schedule.h"

namespace mussti {

/**
 * Reusable buffers for MusstiScheduler::run. A SABRE compile runs the
 * scheduler three times (forward, reverse, refined forward); sharing one
 * workspace across those runs recycles the anticipated-usage snapshot
 * buffer and pre-sizes the op stream from the previous run instead of
 * re-growing it from empty. Purely an allocation cache: results are
 * bit-identical with or without one, and a default-constructed instance
 * is always valid.
 */
struct SchedulerWorkspace
{
    /** Recycled storage for the per-pass nextUse snapshot. */
    std::vector<int> nextUseScratch;

    /** Op count of the largest run so far; seeds Schedule::ops reserve. */
    std::size_t opReserveHint = 0;
};

/** One full scheduling pass over a circuit. */
class MusstiScheduler
{
  public:
    /** Result of a pass: the op stream plus the end-of-run placement. */
    struct RunOutput
    {
        Schedule schedule;
        Placement finalPlacement;
        int swapInsertions = 0;
        int evictions = 0;

        RunOutput(Placement placement)
            : finalPlacement(std::move(placement)) {}
    };

    MusstiScheduler(const EmlDevice &device, const PhysicalParams &params,
                    const MusstiConfig &config)
        : device_(device), params_(params), config_(config)
    {}

    /**
     * Schedule `lowered` (SWAPs already decomposed) starting from
     * `initial` placement. The initial placement must place all qubits.
     * `workspace`, when given, donates reusable buffers and receives
     * them back on return (see SchedulerWorkspace); output is identical
     * either way.
     */
    RunOutput run(const Circuit &lowered, const Placement &initial,
                  SchedulerWorkspace *workspace = nullptr) const;

  private:
    const EmlDevice &device_;
    const PhysicalParams &params_;
    const MusstiConfig &config_;
};

} // namespace mussti

#endif // MUSSTI_CORE_SCHEDULER_H
