/**
 * @file
 * The MUSS-TI multi-level scheduler main loop (paper section 3.2,
 * Fig 3): gate selection, qubit routing, conflict handling, and the
 * SWAP-insertion hook, driven to a full schedule over the dependency
 * DAG.
 */
#ifndef MUSSTI_CORE_SCHEDULER_H
#define MUSSTI_CORE_SCHEDULER_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "arch/eml_device.h"
#include "arch/placement.h"
#include "circuit/circuit.h"
#include "core/config.h"
#include "core/job_control.h"
#include "core/schedule_snapshot.h"
#include "core/scheduler_workspace.h"
#include "sim/params.h"
#include "sim/schedule.h"

namespace mussti {

/**
 * One snapshot the scheduler may resume from, paired with the
 * lowered-gate count the caller has VERIFIED (by prefix-hash lookup)
 * the incoming circuit shares with the snapshot's source circuit. The
 * scheduler trusts the count for gate content but still proves, on the
 * freshly built DAG, that nothing at or beyond it leaks into the
 * look-ahead window before the resume point (see scheduler.cpp,
 * windowClean) — the condition that makes a resume bit-identical to a
 * cold compile of the new circuit.
 */
struct ResumeCandidate
{
    const ScheduleSnapshot *snapshot = nullptr;
    std::size_t sharedLoweredGates = 0;
};

/** Delta-compilation request accompanying one scheduling pass. */
struct DeltaRequest
{
    /**
     * Snapshots to try resuming from, ascending by covered prefix
     * (each entry's retirement record extending the previous — they
     * normally come from one source run). The scheduler fast-forwards
     * through them on one probe DAG and resumes from the longest
     * candidate that passes the window-cleanliness proof; when none
     * does, the pass falls back to a cold compile of the whole circuit.
     */
    std::vector<ResumeCandidate> candidates;

    /**
     * Capture a ScheduleSnapshot every this many retired two-qubit
     * gates (0 = never capture).
     */
    int checkpointEvery = 0;

    /**
     * Bound on captured snapshots per run: when exceeded, every other
     * snapshot is dropped and the cadence doubles, so long runs keep a
     * spread of checkpoints at bounded memory.
     */
    int maxSnapshots = 16;
};

/** One full scheduling pass over a circuit. */
class MusstiScheduler
{
  public:
    /** Result of a pass: the op stream plus the end-of-run placement. */
    struct RunOutput
    {
        Schedule schedule;
        Placement finalPlacement;
        int swapInsertions = 0;
        int evictions = 0;

        /** Phase-2 iterations (routed gates) of this run. */
        int routingSteps = 0;

        /**
         * Heap allocations observed inside the scheduling loop — after
         * the pass state (DAG build, placement copy, scratch adoption)
         * is fully constructed, up to the last emitted op — as counted
         * by AllocCounter. Per-run setup allocations are deliberately
         * OUTSIDE the window: the gate proves the per-step hot path is
         * allocation-free, not the run prologue. Zero in every binary
         * that does not instrument operator new; in
         * micro_scheduler_bench it proves the hot path's steady state
         * allocates nothing.
         */
        std::uint64_t loopHeapAllocs = 0;

        /**
         * Checkpoints captured during the run (DeltaRequest with
         * checkpointEvery > 0). inputPrefixGates / prefixHash are left
         * for the compile pass to stamp — the scheduler only sees the
         * lowered circuit.
         */
        std::vector<ScheduleSnapshot> snapshots;

        /** The run resumed from a DeltaRequest candidate. */
        bool resumed = false;

        RunOutput(Placement placement)
            : finalPlacement(std::move(placement)) {}
    };

    MusstiScheduler(const EmlDevice &device, const PhysicalParams &params,
                    const MusstiConfig &config)
        : device_(device), params_(params), config_(config)
    {}

    /**
     * Schedule `lowered` (SWAPs already decomposed) starting from
     * `initial` placement. The initial placement must place all qubits.
     * `workspace`, when given, donates reusable buffers and receives
     * them back on return (see SchedulerWorkspace); output is identical
     * either way. `delta`, when given, may request snapshot capture
     * and/or a resume from a prior run's snapshot — a successful resume
     * produces the bit-identical schedule in time proportional to the
     * unshared suffix. `control`, when given, is checkpointed every
     * `control->checkEveryGates` routing steps — a relaxed atomic load
     * (plus a clock read when a deadline is set), never an allocation,
     * so the zero-steady-state-alloc invariant holds with control on.
     */
    RunOutput run(const Circuit &lowered, const Placement &initial,
                  SchedulerWorkspace *workspace = nullptr,
                  const DeltaRequest *delta = nullptr,
                  const JobControl *control = nullptr) const;

  private:
    const EmlDevice &device_;
    const PhysicalParams &params_;
    const MusstiConfig &config_;
};

} // namespace mussti

#endif // MUSSTI_CORE_SCHEDULER_H
