/**
 * @file
 * The MUSS-TI multi-level scheduler main loop (paper section 3.2,
 * Fig 3): gate selection, qubit routing, conflict handling, and the
 * SWAP-insertion hook, driven to a full schedule over the dependency
 * DAG.
 */
#ifndef MUSSTI_CORE_SCHEDULER_H
#define MUSSTI_CORE_SCHEDULER_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "arch/eml_device.h"
#include "arch/placement.h"
#include "circuit/circuit.h"
#include "core/config.h"
#include "core/scheduler_workspace.h"
#include "sim/params.h"
#include "sim/schedule.h"

namespace mussti {

/** One full scheduling pass over a circuit. */
class MusstiScheduler
{
  public:
    /** Result of a pass: the op stream plus the end-of-run placement. */
    struct RunOutput
    {
        Schedule schedule;
        Placement finalPlacement;
        int swapInsertions = 0;
        int evictions = 0;

        /** Phase-2 iterations (routed gates) of this run. */
        int routingSteps = 0;

        /**
         * Heap allocations observed inside the scheduling loop — after
         * the pass state (DAG build, placement copy, scratch adoption)
         * is fully constructed, up to the last emitted op — as counted
         * by AllocCounter. Per-run setup allocations are deliberately
         * OUTSIDE the window: the gate proves the per-step hot path is
         * allocation-free, not the run prologue. Zero in every binary
         * that does not instrument operator new; in
         * micro_scheduler_bench it proves the hot path's steady state
         * allocates nothing.
         */
        std::uint64_t loopHeapAllocs = 0;

        RunOutput(Placement placement)
            : finalPlacement(std::move(placement)) {}
    };

    MusstiScheduler(const EmlDevice &device, const PhysicalParams &params,
                    const MusstiConfig &config)
        : device_(device), params_(params), config_(config)
    {}

    /**
     * Schedule `lowered` (SWAPs already decomposed) starting from
     * `initial` placement. The initial placement must place all qubits.
     * `workspace`, when given, donates reusable buffers and receives
     * them back on return (see SchedulerWorkspace); output is identical
     * either way.
     */
    RunOutput run(const Circuit &lowered, const Placement &initial,
                  SchedulerWorkspace *workspace = nullptr) const;

  private:
    const EmlDevice &device_;
    const PhysicalParams &params_;
    const MusstiConfig &config_;
};

} // namespace mussti

#endif // MUSSTI_CORE_SCHEDULER_H
