#include "core/weight_table.h"

#include "common/logging.h"

namespace mussti {

WeightTable::WeightTable(const DependencyDag &dag,
                         const Placement &placement,
                         const EmlDevice &device, int look_ahead)
    : numModules_(device.numModules())
{
    table_.assign(static_cast<std::size_t>(placement.numQubits()) *
                  numModules_, 0);

    const auto layers = dag.frontLayers(look_ahead);
    for (const auto &layer : layers) {
        for (DagNodeId id : layer) {
            const Gate &g = dag.node(id).gate;
            const int zone_a = placement.zoneOf(g.q0);
            const int zone_b = placement.zoneOf(g.q1);
            MUSSTI_ASSERT(zone_a >= 0 && zone_b >= 0,
                          "weight table over unplaced qubits");
            const int module_a = device.zone(zone_a).module;
            const int module_b = device.zone(zone_b).module;
            ++table_[rowOf(g.q0) + module_b];
            ++table_[rowOf(g.q1) + module_a];
        }
    }
}

int
WeightTable::weight(int qubit, int module) const
{
    MUSSTI_ASSERT(module >= 0 && module < numModules_,
                  "weight table module out of range");
    return table_[rowOf(qubit) + module];
}

int
WeightTable::totalWeight(int qubit) const
{
    int total = 0;
    for (int m = 0; m < numModules_; ++m)
        total += table_[rowOf(qubit) + m];
    return total;
}

std::pair<int, int>
WeightTable::bestForeignModule(int qubit, int exclude_module) const
{
    int best_module = -1;
    int best_weight = 0;
    for (int m = 0; m < numModules_; ++m) {
        if (m == exclude_module)
            continue;
        const int w = table_[rowOf(qubit) + m];
        if (w > best_weight) {
            best_weight = w;
            best_module = m;
        }
    }
    return {best_module, best_weight};
}

} // namespace mussti
