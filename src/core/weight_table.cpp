#include "core/weight_table.h"

#include <algorithm>

#include "common/logging.h"

namespace mussti {

const std::vector<int> &
WeightTable::row(int qubit) const
{
    MUSSTI_ASSERT(dag_ != nullptr, "query on an unbound weight table");
    if (rowQubit_ == qubit)
        return row_;
    row_.assign(numModules_, 0);

    if (lookAhead_ <= dag_->windowHorizon()) {
        // The qubit's window gates are a chain prefix: walk it until the
        // first node at or beyond the look-ahead depth. Counts match an
        // eager frontLayers(lookAhead_) build exactly — that build
        // increments this row once per window gate touching the qubit,
        // which is precisely this prefix.
        const QubitChainView chain = dag_->qubitChain(qubit);
        for (int i = dag_->qubitChainHead(qubit); i < chain.size(); ++i) {
            const DagNodeId id = chain[i];
            if (dag_->windowDepth(id) >= lookAhead_)
                break;
            const Gate &g = dag_->node(id).gate;
            const int partner = g.q0 == qubit ? g.q1 : g.q0;
            const int zone = placement_->zoneOf(partner);
            MUSSTI_ASSERT(zone >= 0, "weight table over unplaced qubits");
            ++row_[device_->zone(zone).module];
        }
    } else {
        // Look-aheads beyond the DAG's incremental horizon cannot use
        // the clamped depths; fall back to a peel (rare: the default
        // horizon is far above the paper's k = 8).
        for (const auto &layer : dag_->frontLayers(lookAhead_)) {
            for (DagNodeId id : layer) {
                const Gate &g = dag_->node(id).gate;
                for (int partner : {g.q0 == qubit ? g.q1 : -1,
                                    g.q1 == qubit ? g.q0 : -1}) {
                    if (partner < 0)
                        continue;
                    const int zone = placement_->zoneOf(partner);
                    MUSSTI_ASSERT(zone >= 0,
                                  "weight table over unplaced qubits");
                    ++row_[device_->zone(zone).module];
                }
            }
        }
    }

    rowQubit_ = qubit;
    return row_;
}

int
WeightTable::weight(int qubit, int module) const
{
    MUSSTI_ASSERT(module >= 0 && module < numModules_,
                  "weight table module out of range");
    return row(qubit)[module];
}

int
WeightTable::totalWeight(int qubit) const
{
    const std::vector<int> &r = row(qubit);
    int total = 0;
    for (int m = 0; m < numModules_; ++m)
        total += r[m];
    return total;
}

std::pair<int, int>
WeightTable::bestForeignModule(int qubit, int exclude_module) const
{
    const std::vector<int> &r = row(qubit);
    int best_module = -1;
    int best_weight = 0;
    for (int m = 0; m < numModules_; ++m) {
        if (m == exclude_module)
            continue;
        if (r[m] > best_weight) {
            best_weight = r[m];
            best_module = m;
        }
    }
    return {best_module, best_weight};
}

} // namespace mussti
