#include "core/pipeline.h"

#include <chrono>

#include "arch/eml_device.h"
#include "arch/grid_device.h"
#include "common/fault_injection.h"
#include "common/hash.h"
#include "common/logging.h"

namespace mussti {

const TargetDevice &
CompileContext::requireDevice() const
{
    MUSSTI_ASSERT(device != nullptr,
                  "pass needs a target device but no target pass ran");
    return *device;
}

const std::vector<ZoneInfo> &
CompileContext::zoneInfos() const
{
    return requireDevice().zoneInfos();
}

const Circuit &
CompileContext::requireLowered() const
{
    MUSSTI_ASSERT(loweredReady,
                  "pass needs the lowered circuit but no lowering pass ran");
    return lowered;
}

const Placement &
CompileContext::requirePlacement() const
{
    MUSSTI_ASSERT(placement.has_value(),
                  "pass needs a placement but no mapping pass ran");
    return *placement;
}

const EmlDevice &
CompileContext::requireEmlDevice() const
{
    const TargetDevice &target = requireDevice();
    MUSSTI_ASSERT(target.family() == DeviceFamily::Eml,
                  "EML-only pass ran against a `" << target.familyName()
                  << "` target device");
    return static_cast<const EmlDevice &>(target);
}

const GridDevice &
CompileContext::requireGridDevice() const
{
    const TargetDevice &target = requireDevice();
    MUSSTI_ASSERT(target.family() == DeviceFamily::Grid,
                  "grid-only pass ran against a `" << target.familyName()
                  << "` target device");
    return static_cast<const GridDevice &>(target);
}

PassPipeline &
PassPipeline::add(std::unique_ptr<CompilerPass> pass)
{
    MUSSTI_ASSERT(pass != nullptr, "null pass added to pipeline");
    passes_.push_back(std::move(pass));
    return *this;
}

std::vector<std::string>
PassPipeline::passNames() const
{
    std::vector<std::string> names;
    names.reserve(passes_.size());
    for (const auto &pass : passes_)
        names.emplace_back(pass->name());
    return names;
}

CompileResult
PassPipeline::compile(Circuit circuit, const PhysicalParams &params,
                      std::uint64_t seed,
                      std::shared_ptr<SchedulerWorkspace> workspace,
                      DeltaCompileIO *delta, const JobControl *control) const
{
    const auto t0 = std::chrono::steady_clock::now();
    CompileContext ctx(std::move(circuit), params, seed);
    ctx.schedulerWorkspace = std::move(workspace);
    ctx.delta = delta;
    ctx.control = control;

    for (const auto &pass : passes_) {
        if (control != nullptr)
            control->checkpoint();
        FaultInjector::maybeThrow(FaultSite::PassBoundary);
        const auto p0 = std::chrono::steady_clock::now();
        pass->run(ctx);
        const auto p1 = std::chrono::steady_clock::now();
        ctx.trace.push_back(
            {pass->name(),
             std::chrono::duration<double>(p1 - p0).count()});
    }

    MUSSTI_ASSERT(ctx.loweredReady,
                  "pipeline finished without a lowering pass");
    MUSSTI_ASSERT(ctx.metricsValid,
                  "pipeline finished without an evaluation pass");

    const auto t1 = std::chrono::steady_clock::now();

    CompileResult result(std::move(ctx.lowered));
    result.schedule = std::move(ctx.schedule);
    result.metrics = ctx.metrics;
    result.swapInsertions = ctx.swapInsertions;
    result.evictions = ctx.evictions;
    result.routingSteps = ctx.routingSteps;
    result.schedulerHeapAllocs = ctx.schedulerHeapAllocs;
    result.deltaResumed = delta != nullptr && delta->resumed;
    if (ctx.finalPlacement)
        result.finalChains = Schedule::snapshotChains(*ctx.finalPlacement);
    result.compileTimeSec =
        std::chrono::duration<double>(t1 - t0).count();
    result.passTrace = std::move(ctx.trace);
    return result;
}

void
LowerSwapsPass::run(CompileContext &ctx) const
{
    ctx.lowered = ctx.input.withSwapsDecomposed();
    ctx.loweredReady = true;
}

std::uint64_t
resultFingerprint(const CompileResult &result)
{
    // Field-for-field the algorithm test_backend_golden pins its 13
    // golden digests with (kept there as an independent copy on
    // purpose: a drift in THIS function must fail those tests, not
    // re-pin them).
    Fnv1a h;
    h.update(static_cast<std::uint64_t>(result.schedule.ops.size()));
    for (const ScheduledOp &op : result.schedule.ops) {
        h.update(static_cast<int>(op.kind));
        h.update(op.q0);
        h.update(op.q1);
        h.update(op.zoneFrom);
        h.update(op.zoneTo);
        h.update(op.durationUs);
        h.update(op.nbar);
        h.update(op.circuitGate);
        h.update(op.inserted);
        h.update(op.enterFront);
    }
    for (const auto &chain : result.schedule.initialChains) {
        h.update(static_cast<std::uint64_t>(chain.size()));
        for (int q : chain)
            h.update(q);
    }
    for (const auto &chain : result.finalChains) {
        h.update(static_cast<std::uint64_t>(chain.size()));
        for (int q : chain)
            h.update(q);
    }
    h.update(result.schedule.shuttleCount);
    h.update(result.schedule.ionSwapCount);
    h.update(result.schedule.insertedSwapGates);
    h.update(result.swapInsertions);
    h.update(result.evictions);
    h.update(result.metrics.shuttleCount);
    h.update(result.metrics.executionTimeUs);
    h.update(result.metrics.lnFidelity);
    return h.digest();
}

} // namespace mussti
