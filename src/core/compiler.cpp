#include "core/compiler.h"

#include <chrono>

#include "common/logging.h"
#include "core/mapper.h"
#include "core/scheduler.h"

namespace mussti {

EmlDevice
MusstiCompiler::deviceFor(const Circuit &circuit) const
{
    return EmlDevice(config_.device, circuit.numQubits());
}

CompileResult
MusstiCompiler::compile(const Circuit &circuit) const
{
    const auto t0 = std::chrono::steady_clock::now();

    CompileResult result(circuit.withSwapsDecomposed());
    const EmlDevice device = deviceFor(circuit);
    MusstiScheduler scheduler(device, params_, config_);
    const Evaluator evaluator(params_);

    // Forward pass from the trivial mapping. Under MappingKind::Trivial
    // this is the final answer; under Sabre it doubles as the first leg
    // of the two-fold search and as a candidate result.
    const Placement trivial = trivialPlacement(device,
                                               circuit.numQubits());
    auto output = scheduler.run(result.lowered, trivial);
    Metrics metrics = evaluator.evaluate(output.schedule,
                                         device.zoneInfos());

    if (config_.mapping == MappingKind::Sabre) {
        // Reverse pass seeded by the forward pass's final placement,
        // then a forward pass from the reverse pass's final placement.
        // The two executions yield two candidate mappings (section
        // 3.4); keep whichever compiled better.
        const Circuit reversed = result.lowered.reversed();
        auto backward = scheduler.run(reversed, output.finalPlacement);
        auto refined = scheduler.run(result.lowered,
                                     backward.finalPlacement);
        Metrics refined_metrics = evaluator.evaluate(
            refined.schedule, device.zoneInfos());
        if (refined_metrics.lnFidelity > metrics.lnFidelity) {
            output = std::move(refined);
            metrics = refined_metrics;
        }
    }

    const auto t1 = std::chrono::steady_clock::now();
    result.compileTimeSec =
        std::chrono::duration<double>(t1 - t0).count();

    result.schedule = std::move(output.schedule);
    result.swapInsertions = output.swapInsertions;
    result.evictions = output.evictions;
    result.finalChains =
        Schedule::snapshotChains(output.finalPlacement);
    result.metrics = metrics;
    return result;
}

} // namespace mussti
