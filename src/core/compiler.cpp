#include "core/compiler.h"

#include <memory>
#include <utility>

#include "arch/device_registry.h"
#include "common/hash.h"
#include "common/logging.h"
#include "core/mapper.h"
#include "core/scheduler.h"
#include "lint/lint_pass.h"
#include "lint/schedule_linter.h"
#include "sim/evaluation_pass.h"
#include "sim/evaluator.h"

namespace mussti {

namespace {

/** Apply the context's per-job seed to a config copy. */
MusstiConfig
seededConfig(const MusstiConfig &config, std::uint64_t seed)
{
    MusstiConfig seeded = config;
    seeded.seed = seed;
    return seeded;
}

/** The job's scheduler buffer cache, created on first use. */
SchedulerWorkspace &
schedulerWorkspaceOf(CompileContext &ctx)
{
    if (!ctx.schedulerWorkspace)
        ctx.schedulerWorkspace = std::make_shared<SchedulerWorkspace>();
    return *ctx.schedulerWorkspace;
}

/**
 * Lowered-gate count of the first `prefix` input gates: lowering
 * rewrites each SWAP into 3 CX and keeps every other gate 1:1
 * (Circuit::withSwapsDecomposed), so the counts stay in lockstep.
 */
std::size_t
loweredPrefixLength(const Circuit &input, std::size_t prefix)
{
    std::size_t extra = 0;
    for (std::size_t i = 0; i < prefix; ++i) {
        if (input[i].kind == GateKind::Swap)
            extra += 2;
    }
    return prefix + extra;
}

/** Minimal input-prefix length whose lowering covers `lowered_gates`. */
std::size_t
inputPrefixCovering(const Circuit &input, std::size_t lowered_gates)
{
    std::size_t lowered = 0;
    std::size_t prefix = 0;
    while (prefix < input.size() && lowered < lowered_gates) {
        lowered += input[prefix].kind == GateKind::Swap ? 3 : 1;
        ++prefix;
    }
    return prefix;
}

/** Build the EML device sized for the input circuit. */
class EmlTargetPass : public CompilerPass
{
  public:
    explicit EmlTargetPass(const EmlConfig &device) : device_(device) {}

    const char *name() const override { return "eml-target"; }

    void
    run(CompileContext &ctx) const override
    {
        ctx.device = DeviceRegistry::createEml(device_,
                                               ctx.input.numQubits());
    }

  private:
    EmlConfig device_;
};

/** Level-ordered sequential initial mapping (paper section 3.4). */
class TrivialPlacementPass : public CompilerPass
{
  public:
    const char *name() const override { return "trivial-placement"; }

    void
    run(CompileContext &ctx) const override
    {
        ctx.placement = trivialPlacement(ctx.requireEmlDevice(),
                                         ctx.input.numQubits());
    }
};

/**
 * Forward scheduling pass from the context's placement. Under
 * MappingKind::Trivial this produces the final schedule; under Sabre it
 * is the first leg of the two-fold search and a candidate result.
 */
class MusstiSchedulePass : public CompilerPass
{
  public:
    explicit MusstiSchedulePass(const MusstiConfig &config)
        : config_(config)
    {}

    const char *name() const override { return "mussti-schedule"; }

    void
    run(CompileContext &ctx) const override
    {
        const MusstiConfig config = seededConfig(config_, ctx.seed);
        const MusstiScheduler scheduler(ctx.requireEmlDevice(),
                                        ctx.params, config);

        // Delta compilation covers only this forward leg: under Sabre
        // the reverse/refined legs run over different circuits or
        // placements and always schedule cold. Candidates arrive with
        // their input-prefix hashes already verified by the caller;
        // translate each prefix into lowered-gate terms for the
        // scheduler's window-cleanliness proof.
        DeltaRequest request;
        const DeltaRequest *delta = nullptr;
        if (config.deltaCompile && ctx.delta != nullptr) {
            request.checkpointEvery =
                ctx.delta->allowCapture ? config.deltaCheckpointGates : 0;
            request.candidates.reserve(ctx.delta->candidates.size());
            for (const auto &snap : ctx.delta->candidates) {
                if (snap == nullptr ||
                    snap->inputPrefixGates > ctx.input.size())
                    continue;
                request.candidates.push_back(
                    {snap.get(),
                     loweredPrefixLength(ctx.input,
                                         snap->inputPrefixGates)});
            }
            delta = &request;
        }

        auto output = scheduler.run(ctx.requireLowered(),
                                    ctx.requirePlacement(),
                                    &schedulerWorkspaceOf(ctx), delta,
                                    ctx.control);
        ctx.schedule = std::move(output.schedule);
        ctx.finalPlacement = std::move(output.finalPlacement);
        ctx.swapInsertions = output.swapInsertions;
        ctx.evictions = output.evictions;
        ctx.routingSteps += output.routingSteps;
        ctx.schedulerHeapAllocs += output.loopHeapAllocs;

        if (delta == nullptr)
            return;

        if (output.resumed) {
            // Safety net on the fast path: every delta-produced
            // schedule must clear the lint oracle before leaving the
            // pass, so a resume bug can never ship a broken schedule.
            const LintReport report = lintSchedule(
                ctx.schedule, ctx.requireLowered(), ctx.requireDevice());
            MUSSTI_ASSERT(report.ok(),
                          "delta-resumed schedule failed lint with "
                              << report.errorCount() << " error(s)");
        }

        // Stamp each captured checkpoint with the input prefix it
        // covers so the caller can key it by Circuit::prefixHash.
        for (ScheduleSnapshot &snap : output.snapshots) {
            snap.inputPrefixGates =
                inputPrefixCovering(ctx.input, snap.loweredPrefixGates);
            snap.prefixHash = ctx.input.prefixHash(snap.inputPrefixGates);
        }
        ctx.delta->captured = std::move(output.snapshots);
        ctx.delta->resumed = output.resumed;
    }

  private:
    MusstiConfig config_;
};

/**
 * SABRE two-fold search (paper section 3.4): a reverse pass seeded by
 * the forward pass's final placement, then a forward pass from the
 * reverse pass's final placement. The two executions yield two candidate
 * compilations; keep whichever scored better. No-op under
 * MappingKind::Trivial.
 */
class SabreTwoFoldPass : public CompilerPass
{
  public:
    explicit SabreTwoFoldPass(const MusstiConfig &config)
        : config_(config)
    {}

    const char *name() const override { return "sabre-two-fold"; }

    void
    run(CompileContext &ctx) const override
    {
        if (config_.mapping != MappingKind::Sabre)
            return;

        const MusstiConfig config = seededConfig(config_, ctx.seed);
        const EmlDevice &device = ctx.requireEmlDevice();
        const MusstiScheduler scheduler(device, ctx.params, config);
        const Evaluator evaluator(ctx.params);

        // Score the forward candidate the schedule pass left behind.
        ctx.metrics = evaluator.evaluate(ctx.schedule,
                                         device.zoneInfos());
        ctx.metricsValid = true;

        MUSSTI_ASSERT(ctx.finalPlacement.has_value(),
                      "sabre-two-fold needs the forward pass's final "
                      "placement");
        SchedulerWorkspace &workspace = schedulerWorkspaceOf(ctx);
        const Circuit reversed = ctx.requireLowered().reversed();
        auto backward = scheduler.run(reversed, *ctx.finalPlacement,
                                      &workspace, nullptr, ctx.control);
        auto refined = scheduler.run(ctx.requireLowered(),
                                     backward.finalPlacement, &workspace,
                                     nullptr, ctx.control);
        const Metrics refined_metrics = evaluator.evaluate(
            refined.schedule, device.zoneInfos());

        // Perf counters cover the whole compile — both extra legs —
        // regardless of which candidate wins below.
        ctx.routingSteps += backward.routingSteps + refined.routingSteps;
        ctx.schedulerHeapAllocs +=
            backward.loopHeapAllocs + refined.loopHeapAllocs;

        if (refined_metrics.lnFidelity > ctx.metrics.lnFidelity) {
            ctx.schedule = std::move(refined.schedule);
            ctx.finalPlacement = std::move(refined.finalPlacement);
            ctx.swapInsertions = refined.swapInsertions;
            ctx.evictions = refined.evictions;
            ctx.metrics = refined_metrics;
        }
    }

  private:
    MusstiConfig config_;
};

} // namespace

std::shared_ptr<const EmlDevice>
MusstiCompiler::deviceFor(const Circuit &circuit) const
{
    return DeviceRegistry::createEml(config_.device, circuit.numQubits());
}

PassPipeline
MusstiCompiler::makePipeline() const
{
    PassPipeline pipeline;
    pipeline.add(std::make_unique<LowerSwapsPass>())
        .add(std::make_unique<EmlTargetPass>(config_.device))
        .add(std::make_unique<TrivialPlacementPass>())
        .add(std::make_unique<MusstiSchedulePass>(config_))
        .add(std::make_unique<SabreTwoFoldPass>(config_))
        .add(std::make_unique<EvaluationPass>());
    if (config_.lintLevel > 0)
        pipeline.add(std::make_unique<ScheduleLintPass>(config_.lintLevel));
    return pipeline;
}

CompileResult
MusstiCompiler::compile(Circuit circuit) const
{
    return makePipeline().compile(std::move(circuit), params_,
                                  config_.seed);
}

CompileResult
MusstiCompiler::compile(
    Circuit circuit,
    const std::shared_ptr<SchedulerWorkspace> &workspace) const
{
    return makePipeline().compile(std::move(circuit), params_,
                                  config_.seed, workspace);
}

CompileResult
MusstiCompiler::compileSeeded(Circuit circuit, std::uint64_t seed) const
{
    return makePipeline().compile(std::move(circuit), params_, seed);
}

CompileResult
MusstiCompiler::compileSeeded(
    Circuit circuit, std::uint64_t seed,
    const std::shared_ptr<SchedulerWorkspace> &workspace) const
{
    return makePipeline().compile(std::move(circuit), params_, seed,
                                  workspace);
}

CompileResult
MusstiCompiler::compileDelta(
    Circuit circuit, const std::optional<std::uint64_t> &seed,
    const std::shared_ptr<SchedulerWorkspace> &workspace,
    DeltaCompileIO &delta) const
{
    return makePipeline().compile(std::move(circuit), params_,
                                  seed.value_or(config_.seed), workspace,
                                  &delta);
}

CompileResult
MusstiCompiler::compileControlled(
    Circuit circuit, const std::optional<std::uint64_t> &seed,
    const std::shared_ptr<SchedulerWorkspace> &workspace,
    DeltaCompileIO &delta, const JobControl *control) const
{
    return makePipeline().compile(std::move(circuit), params_,
                                  seed.value_or(config_.seed), workspace,
                                  &delta, control);
}

const std::string &
MusstiCompiler::name() const
{
    static const std::string kName = "mussti";
    return kName;
}

std::uint64_t
MusstiCompiler::configDigest() const
{
    Fnv1a hash;
    hash.update(name());
    hash.update(config_.lookAhead);
    hash.update(config_.swapThreshold);
    hash.update(config_.enableSwapInsertion);
    hash.update(config_.nextUseHorizon);
    hash.update(static_cast<int>(config_.mapping));
    hash.update(static_cast<int>(config_.replacement));
    hash.update(config_.seed);
    // lintLevel changes the pipeline shape (strict lint can reject a
    // compile), so a cached result must not cross lint disciplines.
    hash.update(config_.lintLevel);
    // Delta compilation is bit-identical by contract, but snapshots key
    // on this digest and must never cross the knob; fold it in only
    // when enabled so every knob-off digest (and the golden-fingerprint
    // suite keyed on it) stays exactly as before.
    if (config_.deltaCompile) {
        hash.update(config_.deltaCompile);
        hash.update(config_.deltaCheckpointGates);
    }
    // The device folds in through its canonical registry spec, so
    // every topology knob — including heterogeneous module mixes —
    // keys the CompileService cache.
    hash.update(DeviceRegistry::specOf(config_.device).digest());
    hash.update(paramsDigest(params_));
    return hash.digest();
}

} // namespace mussti
