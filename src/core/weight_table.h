/**
 * @file
 * SWAP-insertion weight table (paper section 3.3).
 *
 * W(q, c) counts the two-qubit gates within the first k layers of the
 * remaining dependency DAG that involve qubit q and a partner currently
 * resident on module c. A qubit with W(q, module(q)) == 0 has no near-
 * future work where it lives; if some other module holds more than T
 * future partners, migrating the qubit there (via a logical SWAP) saves
 * shuttles.
 *
 * The table is a lazy view, not a materialised matrix: a qubit's window
 * gates are a prefix of its dependency chain (window depths are
 * non-decreasing along a chain), so one row costs O(k) chain entries.
 * The SWAP-insertion hot path touches a handful of rows per fiber gate,
 * which makes the on-demand rows far cheaper than rebuilding the full
 * numQubits x numModules matrix each time. Values are identical to an
 * eager build from DependencyDag::frontLayers(k) — each row counts
 * exactly the window gates touching that qubit.
 */
#ifndef MUSSTI_CORE_WEIGHT_TABLE_H
#define MUSSTI_CORE_WEIGHT_TABLE_H

#include <cstddef>
#include <utility>
#include <vector>

#include "arch/eml_device.h"
#include "arch/placement.h"
#include "dag/dag.h"

namespace mussti {

/** Lazy view of W(q, c) over the first k layers of a DAG. */
class WeightTable
{
  public:
    /** Unbound table; bind() before the first query. */
    WeightTable() = default;

    /** Bind to the current DAG window and placement (cheap). */
    WeightTable(const DependencyDag &dag, const Placement &placement,
                const EmlDevice &device, int look_ahead)
    {
        bind(dag, placement, device, look_ahead);
    }

    /**
     * (Re)bind the view. O(1): rows are computed on first use per
     * qubit. Queries reflect the bound structures' state at query time;
     * call again (or invalidateCache) after mutating the placement or
     * DAG to drop the row cache.
     */
    void
    bind(const DependencyDag &dag, const Placement &placement,
         const EmlDevice &device, int look_ahead)
    {
        dag_ = &dag;
        placement_ = &placement;
        device_ = &device;
        lookAhead_ = look_ahead;
        numModules_ = device.numModules();
        invalidateCache();
    }

    /** Drop the cached row (after a placement/DAG mutation). */
    void
    invalidateCache()
    {
        rowQubit_ = -1;
    }

    /**
     * Pre-size the row storage for a device's module count, so the
     * first query inside the scheduling loop performs no allocation.
     */
    void
    reserve(int num_modules)
    {
        row_.reserve(static_cast<std::size_t>(num_modules));
    }

    /** W(q, module). */
    int weight(int qubit, int module) const;

    /** Sum over all modules of W(q, *): near-future activity of q. */
    int totalWeight(int qubit) const;

    /**
     * Module with the highest W(q, *) other than `exclude_module`;
     * returns {-1, 0} when the qubit has no cross-module future work.
     */
    std::pair<int, int> bestForeignModule(int qubit,
                                          int exclude_module) const;

  private:
    const DependencyDag *dag_ = nullptr;
    const Placement *placement_ = nullptr;
    const EmlDevice *device_ = nullptr;
    int lookAhead_ = 0;
    int numModules_ = 0;

    mutable std::vector<int> row_; ///< Cached row, numModules wide.
    mutable int rowQubit_ = -1;    ///< Owner of row_, or -1.

    /** Compute (or fetch) the qubit's row of module counts. */
    const std::vector<int> &row(int qubit) const;
};

} // namespace mussti

#endif // MUSSTI_CORE_WEIGHT_TABLE_H
