/**
 * @file
 * SWAP-insertion weight table (paper section 3.3).
 *
 * W(q, c) counts the two-qubit gates within the first k layers of the
 * remaining dependency DAG that involve qubit q and a partner currently
 * resident on module c. A qubit with W(q, module(q)) == 0 has no near-
 * future work where it lives; if some other module holds more than T
 * future partners, migrating the qubit there (via a logical SWAP) saves
 * shuttles.
 */
#ifndef MUSSTI_CORE_WEIGHT_TABLE_H
#define MUSSTI_CORE_WEIGHT_TABLE_H

#include <utility>
#include <vector>

#include "arch/eml_device.h"
#include "arch/placement.h"
#include "dag/dag.h"

namespace mussti {

/** Snapshot of W(q, c) over the first k layers of a DAG. */
class WeightTable
{
  public:
    /**
     * Build from the current DAG frontier window and placement.
     * O(k * layer width).
     */
    WeightTable(const DependencyDag &dag, const Placement &placement,
                const EmlDevice &device, int look_ahead);

    /** W(q, module). */
    int weight(int qubit, int module) const;

    /** Sum over all modules of W(q, *): near-future activity of q. */
    int totalWeight(int qubit) const;

    /**
     * Module with the highest W(q, *) other than `exclude_module`;
     * returns {-1, 0} when the qubit has no cross-module future work.
     */
    std::pair<int, int> bestForeignModule(int qubit,
                                          int exclude_module) const;

  private:
    int numModules_;
    std::vector<int> table_; ///< numQubits x numModules, row-major.
    int rowOf(int qubit) const { return qubit * numModules_; }
};

} // namespace mussti

#endif // MUSSTI_CORE_WEIGHT_TABLE_H
