/**
 * @file
 * Least-recently-used tracking for qubit replacement (paper section 3.2,
 * "Qubit replacement scheduler"). The qubit idle longest is, by locality,
 * the least likely to be needed soon, so it is the eviction victim when a
 * zone must make room.
 */
#ifndef MUSSTI_CORE_LRU_H
#define MUSSTI_CORE_LRU_H

#include <cstdint>
#include <vector>

#include "arch/placement.h"

namespace mussti {

/** Monotonic use-stamp tracker over a fixed qubit population. */
class LruTracker
{
  public:
    explicit LruTracker(int num_qubits);

    /** Record a use of the qubit (gate execution). */
    void touch(int qubit);

    /** The stamp of the qubit's last use (0 = never used). */
    std::int64_t stampOf(int qubit) const;

    /**
     * Least-recently-used qubit among `candidates` that is not in
     * `exclude`; -1 if every candidate is excluded. Ties (e.g. two
     * never-used qubits) break toward the earlier candidate, which for
     * chain containers means ions nearer the front edge.
     */
    int victim(const ZoneChain &candidates,
               const std::vector<int> &exclude) const;

    /** Current clock value (tests). */
    std::int64_t now() const { return clock_; }

    /** Full stamp table (delta-compile checkpoint capture). */
    const std::vector<std::int64_t> &stamps() const { return stamps_; }

    /**
     * Restore stamps and clock from a checkpoint, so every later
     * victim() comparison replays exactly as in the captured run.
     */
    void
    restore(const std::vector<std::int64_t> &stamps, std::int64_t clock)
    {
        MUSSTI_ASSERT(stamps.size() == stamps_.size(),
                      "LRU restore across qubit counts: " << stamps.size()
                      << " vs " << stamps_.size());
        stamps_ = stamps;
        clock_ = clock;
    }

  private:
    std::vector<std::int64_t> stamps_;
    std::int64_t clock_ = 0;
};

} // namespace mussti

#endif // MUSSTI_CORE_LRU_H
