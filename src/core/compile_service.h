/**
 * @file
 * Thread-pooled batch compilation service.
 *
 * Jobs pair a shared ICompilerBackend with a circuit (and an optional
 * per-job RNG seed) and run on a fixed worker pool. Every job compiles
 * in a private CompileContext, so results are bit-identical to serial
 * execution regardless of thread count or completion order. Results are
 * memoised in a bounded LRU cache keyed by (circuit content hash,
 * backend config digest, seed), which collapses the repeated
 * compilations the bench sweeps perform.
 *
 * A second LRU tier caches delta-compile checkpoints
 * (core/schedule_snapshot.h) keyed by (input PREFIX hash, config
 * digest, seed): when a submitted circuit shares a prefix with an
 * earlier compile, the matching snapshots ride into the backend's
 * compileDelta call as resume candidates, so the recompile costs time
 * proportional to the edited suffix instead of the whole circuit —
 * with a bit-identical result either way.
 */
#ifndef MUSSTI_CORE_COMPILE_SERVICE_H
#define MUSSTI_CORE_COMPILE_SERVICE_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/backend.h"
#include "core/schedule_snapshot.h"

namespace mussti {

/** Pool and cache sizing. */
struct CompileServiceConfig
{
    /** Worker threads; <= 0 selects the hardware concurrency. */
    int numThreads = 0;

    /** Cached results kept (LRU evicted); 0 disables the cache. */
    std::size_t cacheCapacity = 128;

    /**
     * Delta-compile checkpoints kept (LRU evicted); 0 disables the
     * snapshot tier entirely — jobs then run through the plain
     * compile/compileSeeded path. With the tier on, every job routes
     * through ICompilerBackend::compileDelta: snapshots captured by
     * past compiles are offered as resume candidates to future jobs
     * that share an input prefix (same config digest and seed), turning
     * an append-or-reparameterize recompile into work proportional to
     * the edited suffix. Results stay bit-identical by contract;
     * backends without a delta path are unaffected.
     */
    std::size_t snapshotCacheCapacity = 64;
};

/** One unit of work for the service. */
struct CompileRequest
{
    std::shared_ptr<const ICompilerBackend> backend;
    Circuit circuit;

    /**
     * RNG seed for the backend's stochastic passes; unset runs under
     * the backend's own configured seed (identical to a direct
     * backend->compile() call).
     */
    std::optional<std::uint64_t> seed;
};

/** Fixed-size worker pool compiling jobs with result memoisation. */
class CompileService
{
  public:
    explicit CompileService(const CompileServiceConfig &config = {});
    ~CompileService();

    CompileService(const CompileService &) = delete;
    CompileService &operator=(const CompileService &) = delete;

    /** Enqueue one job; the future yields the result (or exception). */
    std::future<CompileResult> submit(CompileRequest request);

    std::future<CompileResult>
    submit(std::shared_ptr<const ICompilerBackend> backend,
           Circuit circuit)
    {
        return submit({std::move(backend), std::move(circuit), {}});
    }

    std::future<CompileResult>
    submit(std::shared_ptr<const ICompilerBackend> backend,
           Circuit circuit, std::uint64_t seed)
    {
        return submit({std::move(backend), std::move(circuit), seed});
    }

    /**
     * Compile a batch, returning results in submission order. Jobs run
     * concurrently across the pool; the call blocks until all finish.
     */
    std::vector<CompileResult>
    compileAll(std::vector<CompileRequest> requests);

    /**
     * Batch sweep: compileAll with deterministic per-job seeding. Every
     * request without an explicit seed gets deriveJobSeed(base_seed,
     * index) — index being the request's position in the batch — so a
     * sweep's results are a pure function of (requests, base_seed),
     * independent of the pool's thread count and completion order.
     * This is the fleet-sweep primitive the device tuner fans its
     * (spec x workload) grid through; results come back in submission
     * order.
     */
    std::vector<CompileResult>
    compileSweep(std::vector<CompileRequest> requests,
                 std::uint64_t base_seed);

    /**
     * Deterministic per-job seed derivation (SplitMix64 over the base
     * seed and job index) — independent of thread count and completion
     * order, so seeded batches replay exactly.
     */
    static std::uint64_t deriveJobSeed(std::uint64_t base_seed,
                                       std::size_t job_index);

    /** Upper bound accepted for an explicit worker-thread count. */
    static constexpr int kMaxThreads = 512;

    /**
     * Parse a thread-count override (the MUSSTI_BENCH_THREADS
     * environment variable). Returns 0 — "auto", i.e. hardware
     * concurrency — for null/empty input, and the parsed value for a
     * well-formed positive integer, clamped to kMaxThreads with a
     * warning. Garbage or non-positive values (which std::atoi would
     * silently turn into 0 or accept) are rejected with a logged
     * warning and fall back to auto.
     */
    static int parseThreadCount(const char *text);

    int numThreads() const { return static_cast<int>(workers_.size()); }

    /** Jobs that actually compiled (cache misses). */
    std::uint64_t jobsExecuted() const { return jobsExecuted_.load(); }

    /** Jobs served from the result cache. */
    std::uint64_t cacheHits() const { return cacheHits_.load(); }

    /** Counters over both cache tiers (see cacheStats()). */
    struct CacheStats
    {
        std::uint64_t resultHits = 0;   ///< Jobs served from the result cache.
        std::uint64_t resultMisses = 0; ///< Jobs that actually compiled.
        std::uint64_t resultEvictions = 0; ///< Results dropped by the LRU bound.
        std::uint64_t snapshotHits = 0; ///< Probes finding >=1 resume candidate.
        std::uint64_t snapshotMisses = 0;  ///< Probes finding none.
        std::uint64_t snapshotEvictions = 0; ///< Snapshots dropped by the bound.
        std::uint64_t deltaResumes = 0; ///< Compiles resumed from a snapshot.
        std::uint64_t deltaFallbacks = 0; ///< Candidate-backed compiles that
                                          ///< still scheduled cold.
        std::size_t snapshotCount = 0;  ///< Snapshots currently cached.
        std::size_t snapshotBytes = 0;  ///< Their approximate footprint.
    };

    /**
     * Point-in-time cache-effectiveness counters across the result tier
     * and the delta-compile snapshot tier. Monotonic over the service's
     * lifetime except snapshotCount/snapshotBytes, which track current
     * occupancy.
     */
    CacheStats cacheStats() const;

  private:
    struct Job
    {
        CompileRequest request;
        std::promise<CompileResult> promise;
    };

    struct CacheKey
    {
        std::uint64_t circuitHash = 0;
        std::uint64_t configDigest = 0;
        std::uint64_t seed = 0;
        bool hasSeed = false;

        bool operator==(const CacheKey &other) const = default;
    };

    struct CacheKeyHash
    {
        std::size_t operator()(const CacheKey &key) const;
    };

    /**
     * Snapshot-tier key: the content hash of the input PREFIX the
     * snapshot covers (not the whole circuit — that is the point),
     * plus the same config/seed coordinates as the result tier so a
     * snapshot can never resume a job it was not produced under.
     */
    struct SnapshotKey
    {
        std::uint64_t prefixHash = 0;
        std::uint64_t configDigest = 0;
        std::uint64_t seed = 0;
        bool hasSeed = false;

        bool operator==(const SnapshotKey &other) const = default;
    };

    struct SnapshotKeyHash
    {
        std::size_t operator()(const SnapshotKey &key) const;
    };

    /** (configDigest, seed) coordinates of the probe index. */
    struct ProbeKey
    {
        std::uint64_t configDigest = 0;
        std::uint64_t seed = 0;
        bool hasSeed = false;

        bool operator==(const ProbeKey &other) const = default;
    };

    struct ProbeKeyHash
    {
        std::size_t operator()(const ProbeKey &key) const;
    };

    struct SnapshotEntry
    {
        std::shared_ptr<const ScheduleSnapshot> snapshot;
        std::list<SnapshotKey>::iterator lruIt;
    };

    void workerLoop();
    void execute(Job job);

    std::optional<CompileResult> cacheLookup(const CacheKey &key);
    void cacheStore(const CacheKey &key, const CompileResult &result);

    /**
     * Find cached snapshots whose input prefix the circuit shares
     * (hash-verified), ascending by prefix length, at most
     * kMaxResumeCandidates of the longest ones. Counts a snapshot-tier
     * hit or miss.
     */
    std::vector<std::shared_ptr<const ScheduleSnapshot>>
    probeSnapshots(const CacheKey &key, const Circuit &circuit);

    /** Insert captured checkpoints, evicting LRU past the bound. */
    void storeSnapshots(const CacheKey &key,
                        std::vector<ScheduleSnapshot> captured);

    /** Drop one snapshot entry and unwind its index bookkeeping. */
    void evictSnapshotLocked(const SnapshotKey &key);

    /** Longest resume-candidate list offered to one compile. */
    static constexpr std::size_t kMaxResumeCandidates = 8;

    CompileServiceConfig config_;
    std::vector<std::thread> workers_;

    std::mutex queueMutex_;
    std::condition_variable queueCv_;
    std::deque<Job> queue_;
    bool stopping_ = false;

    mutable std::mutex cacheMutex_; ///< Also taken by const cacheStats().
    std::unordered_map<CacheKey,
                       std::pair<CompileResult,
                                 std::list<CacheKey>::iterator>,
                       CacheKeyHash>
        cache_;
    std::list<CacheKey> lruOrder_; ///< Front = most recently used.

    // ---- snapshot tier (all guarded by cacheMutex_) ------------------
    std::unordered_map<SnapshotKey, SnapshotEntry, SnapshotKeyHash>
        snapshots_;
    std::list<SnapshotKey> snapshotLru_; ///< Front = most recently used.

    /**
     * Probe index: per (configDigest, seed), the cached prefix lengths
     * with a refcount (several snapshots of different circuits may
     * share a length). Lets a probe enumerate candidate lengths and
     * hash only those prefixes of the incoming circuit.
     */
    std::unordered_map<ProbeKey, std::map<std::size_t, int>, ProbeKeyHash>
        prefixIndex_;
    std::size_t snapshotBytes_ = 0;

    std::atomic<std::uint64_t> jobsExecuted_{0};
    std::atomic<std::uint64_t> cacheHits_{0};
    std::atomic<std::uint64_t> resultEvictions_{0};
    std::atomic<std::uint64_t> snapshotHits_{0};
    std::atomic<std::uint64_t> snapshotMisses_{0};
    std::atomic<std::uint64_t> snapshotEvictions_{0};
    std::atomic<std::uint64_t> deltaResumes_{0};
    std::atomic<std::uint64_t> deltaFallbacks_{0};
};

} // namespace mussti

#endif // MUSSTI_CORE_COMPILE_SERVICE_H
