/**
 * @file
 * Thread-pooled batch compilation service.
 *
 * Jobs pair a shared ICompilerBackend with a circuit (and an optional
 * per-job RNG seed) and run on a fixed worker pool. Every job compiles
 * in a private CompileContext, so results are bit-identical to serial
 * execution regardless of thread count or completion order. Results are
 * memoised in a bounded LRU cache keyed by (circuit content hash,
 * backend config digest, seed), which collapses the repeated
 * compilations the bench sweeps perform.
 *
 * A second LRU tier caches delta-compile checkpoints
 * (core/schedule_snapshot.h) keyed by (input PREFIX hash, config
 * digest, seed): when a submitted circuit shares a prefix with an
 * earlier compile, the matching snapshots ride into the backend's
 * compileDelta call as resume candidates, so the recompile costs time
 * proportional to the edited suffix instead of the whole circuit —
 * with a bit-identical result either way.
 *
 * Failure is a first-class outcome (see "Failure semantics" in
 * src/core/README.md): every job resolves to a CompileOutcome carrying
 * either a result or a structured MusstiError; requests may carry a
 * deadline and a cancellation token (checked cooperatively at pass
 * boundaries and inside the scheduler's routing loop); Transient
 * failures are retried with bounded deterministic backoff; and neither
 * cache tier is ever populated by a failed job. Shutdown drains queued
 * jobs with Cancelled outcomes instead of abandoning their promises.
 */
#ifndef MUSSTI_CORE_COMPILE_SERVICE_H
#define MUSSTI_CORE_COMPILE_SERVICE_H

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/error.h"
#include "core/backend.h"
#include "core/result_cache.h"
#include "core/schedule_snapshot.h"

namespace mussti {

/** Pool, cache, and retry/quarantine policy sizing. */
struct CompileServiceConfig
{
    /** Worker threads; <= 0 selects the hardware concurrency. */
    int numThreads = 0;

    /**
     * Results kept in the in-memory LRU tier; 0 disables that tier.
     * The result cache is a tier stack (core/result_cache.h): memory
     * first, then — when diskCachePath is set — the persistent disk
     * tier. A hit anywhere serves the job and promotes the entry into
     * the tiers in front of it.
     */
    std::size_t cacheCapacity = 128;

    /**
     * Directory of the disk-backed persistent result tier; empty
     * disables it. Identical compiles from different processes (or a
     * restarted server) sharing this directory never recompile: the
     * cache key discipline — circuit content hash x backend config
     * digest x seed — makes a disk hit bit-identical to recompiling.
     * Corrupt or truncated entries degrade to misses and are
     * quarantined, never surfaced as results or errors.
     */
    std::string diskCachePath;

    /** Disk-tier entry bound (oldest evicted past it; 0 = unbounded). */
    std::size_t diskCacheCapacity = 512;

    /**
     * Delta-compile checkpoints kept (LRU evicted); 0 disables the
     * snapshot tier entirely — jobs then run through the plain
     * compile path. With the tier on, every job routes through
     * ICompilerBackend::compileControlled with a delta exchange:
     * snapshots captured by past compiles are offered as resume
     * candidates to future jobs that share an input prefix (same
     * config digest and seed), turning an append-or-reparameterize
     * recompile into work proportional to the edited suffix. Results
     * stay bit-identical by contract; backends without a delta path
     * are unaffected.
     */
    std::size_t snapshotCacheCapacity = 64;

    /**
     * Total attempts per job for Transient-classed failures (1 = no
     * retry). Failures in any other category never retry.
     */
    int maxAttempts = 3;

    /**
     * Backoff before retry k is retryBackoffBaseUs * 2^(k-1)
     * microseconds, capped at retryBackoffMaxUs — deterministic, no
     * jitter, so a scripted fault sequence replays identically.
     * A retry is abandoned (the Transient error becomes the outcome)
     * when the job's deadline would expire inside the backoff, or its
     * cancellation token / the service shutdown flag is already set.
     */
    long long retryBackoffBaseUs = 200;
    long long retryBackoffMaxUs = 20000;

    /**
     * Quarantine the delta snapshot tier after this many CONSECUTIVE
     * resume fallbacks (candidate-backed compiles that still scheduled
     * cold) with no successful resume in between; 0 never quarantines.
     * A quarantined tier is cleared and bypassed — jobs compile cold,
     * which is bit-identical by the delta contract, so a corrupted or
     * persistently useless snapshot store degrades throughput, never
     * correctness. A successful resume resets the streak.
     */
    int deltaQuarantineThreshold = 32;
};

/** One unit of work for the service. */
struct CompileRequest
{
    std::shared_ptr<const ICompilerBackend> backend;
    Circuit circuit;

    /**
     * RNG seed for the backend's stochastic passes; unset runs under
     * the backend's own configured seed (identical to a direct
     * backend->compile() call).
     */
    std::optional<std::uint64_t> seed;

    /**
     * Absolute deadline. Checked before the job starts, at every pass
     * boundary, and every JobControl::checkEveryGates routing steps;
     * past it the job resolves with a Timeout error.
     */
    std::optional<std::chrono::steady_clock::time_point> deadline;

    /**
     * Cancellation token (may be null). Set it to true at any time —
     * the job resolves Cancelled at its next cooperative checkpoint,
     * or immediately if still queued when checked. One token may be
     * shared by many requests to cancel them as a group.
     */
    std::shared_ptr<const std::atomic<bool>> cancel;
};

/**
 * How one job ended: exactly one of `result` (success) or `error`
 * (structured failure) is set. The batch-tolerant APIs return these in
 * submission order, so one bad circuit in a sweep costs one outcome,
 * not the batch.
 */
struct CompileOutcome
{
    std::optional<CompileResult> result;
    std::optional<MusstiError> error;

    /** Compile attempts consumed (> 1 means Transient retries). */
    int attempts = 1;

    bool ok() const { return result.has_value(); }

    /** The result; raises the structured error if the job failed. */
    const CompileResult &value() const;

    /** Move the result out; raises the structured error on failure. */
    CompileResult take();

    /** The error; panics if the job succeeded. */
    const MusstiError &errorInfo() const;
};

/** Fixed-size worker pool compiling jobs with result memoisation. */
class CompileService
{
  public:
    explicit CompileService(const CompileServiceConfig &config = {});
    ~CompileService();

    CompileService(const CompileService &) = delete;
    CompileService &operator=(const CompileService &) = delete;

    /**
     * Enqueue one job; the future yields the result (or throws the
     * structured error — a MusstiFault/MusstiPanic). After shutdown()
     * the future is immediately ready with a Cancelled error (it does
     * not race worker teardown).
     */
    std::future<CompileResult> submit(CompileRequest request);

    std::future<CompileResult>
    submit(std::shared_ptr<const ICompilerBackend> backend,
           Circuit circuit)
    {
        return submit({std::move(backend), std::move(circuit), {}, {}, {}});
    }

    std::future<CompileResult>
    submit(std::shared_ptr<const ICompilerBackend> backend,
           Circuit circuit, std::uint64_t seed)
    {
        return submit({std::move(backend), std::move(circuit), seed, {}, {}});
    }

    /**
     * Enqueue one job on the error-tolerant path: the future always
     * yields a CompileOutcome and never throws — failures (including
     * submit-after-shutdown, which resolves Cancelled immediately)
     * arrive as the outcome's structured error.
     */
    std::future<CompileOutcome> submitOutcome(CompileRequest request);

    /**
     * Enqueue one job on the error-tolerant path with a completion
     * callback instead of a future: `done` is invoked exactly once with
     * the job's outcome, from whichever thread resolves it (a worker,
     * or the submitting thread for immediate rejections). The hook the
     * admission layer and the compile server stream results through —
     * same queue, cache tiers, retry, deadline, and drain semantics as
     * submitOutcome. The callback must not block for long and must not
     * re-enter shutdown().
     */
    void submitWithCallback(CompileRequest request,
                            std::function<void(CompileOutcome)> done);

    /**
     * Compile a batch, returning results in submission order. Jobs run
     * concurrently across the pool; the call blocks until all finish.
     * The first failed job's error is thrown (legacy all-or-nothing
     * semantics); use compileAllOutcomes to keep the survivors.
     */
    std::vector<CompileResult>
    compileAll(std::vector<CompileRequest> requests);

    /**
     * Error-tolerant batch: outcomes in submission order, one per
     * request, never throws. One malformed circuit in a 1000-job batch
     * yields 999 results plus one structured error; the surviving
     * results are bit-identical to the batch without the bad job, at
     * any thread count.
     */
    std::vector<CompileOutcome>
    compileAllOutcomes(std::vector<CompileRequest> requests);

    /**
     * Batch sweep: compileAll with deterministic per-job seeding. Every
     * request without an explicit seed gets deriveJobSeed(base_seed,
     * index) — index being the request's position in the batch — so a
     * sweep's results are a pure function of (requests, base_seed),
     * independent of the pool's thread count and completion order.
     * This is the fleet-sweep primitive the device tuner fans its
     * (spec x workload) grid through; results come back in submission
     * order.
     */
    std::vector<CompileResult>
    compileSweep(std::vector<CompileRequest> requests,
                 std::uint64_t base_seed);

    /** Error-tolerant compileSweep (same seeding, outcomes per job). */
    std::vector<CompileOutcome>
    compileSweepOutcomes(std::vector<CompileRequest> requests,
                         std::uint64_t base_seed);

    /**
     * Stop the pool: reject new submissions (ready Cancelled outcomes),
     * resolve every still-queued job with a Cancelled outcome, signal
     * in-flight jobs through their cooperative shutdown checkpoint, and
     * join the workers. Idempotent; the destructor calls it.
     */
    void shutdown();

    /**
     * Deterministic per-job seed derivation (SplitMix64 over the base
     * seed and job index) — independent of thread count and completion
     * order, so seeded batches replay exactly.
     */
    static std::uint64_t deriveJobSeed(std::uint64_t base_seed,
                                       std::size_t job_index);

    /** Upper bound accepted for an explicit worker-thread count. */
    static constexpr int kMaxThreads = 512;

    /**
     * Parse a thread-count override (the MUSSTI_BENCH_THREADS
     * environment variable): parseEnvThreadCount from
     * common/string_util.h bound to that variable name and kMaxThreads.
     * Returns 0 — "auto", i.e. hardware concurrency — for null/empty
     * input, and the parsed value for a well-formed positive integer,
     * clamped with a warning naming the variable. Garbage or
     * non-positive values fall back to auto with a logged warning.
     */
    static int parseThreadCount(const char *text);

    int numThreads() const { return static_cast<int>(workers_.size()); }

    /** Jobs that actually compiled (cache misses). */
    std::uint64_t jobsExecuted() const { return jobsExecuted_.load(); }

    /** Jobs served from the result cache. */
    std::uint64_t cacheHits() const { return cacheHits_.load(); }

    /** Counters over both cache tiers and the failure paths. */
    struct CacheStats
    {
        std::uint64_t resultHits = 0;   ///< Jobs served from the result cache.
        std::uint64_t resultMisses = 0; ///< Jobs that actually compiled.
        std::uint64_t resultEvictions = 0; ///< Results dropped by the LRU bound.
        std::uint64_t snapshotHits = 0; ///< Probes finding >=1 resume candidate.
        std::uint64_t snapshotMisses = 0;  ///< Probes finding none.
        std::uint64_t snapshotEvictions = 0; ///< Snapshots dropped by the bound.
        std::uint64_t deltaResumes = 0; ///< Compiles resumed from a snapshot.
        std::uint64_t deltaFallbacks = 0; ///< Candidate-backed compiles that
                                          ///< still scheduled cold.
        std::size_t snapshotCount = 0;  ///< Snapshots currently cached.
        std::size_t snapshotBytes = 0;  ///< Their approximate footprint.

        // ---- failure-path counters (jobsRetried counts extra
        // attempts, so a job that succeeded on attempt 3 adds 2) ------
        std::uint64_t jobsFailed = 0;    ///< Non-timeout/cancel failures.
        std::uint64_t jobsTimedOut = 0;  ///< Jobs resolved Timeout.
        std::uint64_t jobsCancelled = 0; ///< Jobs resolved Cancelled.
        std::uint64_t jobsRetried = 0;   ///< Transient retry attempts.
        std::uint64_t deltaQuarantines = 0; ///< Tier quarantine events.
        bool deltaQuarantined = false;   ///< Tier currently quarantined.

        /**
         * Per-tier result-cache counters (core/result_cache.h). The
         * aggregate resultHits above counts jobs served by ANY tier;
         * these break it down: memoryTier for the in-memory LRU,
         * diskTier for the persistent tier (all-zero when the tier is
         * not configured). diskTier.corrupt counts entries that failed
         * validation and were quarantined as misses.
         */
        ResultTierStats memoryTier;
        ResultTierStats diskTier;
    };

    /**
     * Point-in-time cache-effectiveness counters across the result tier
     * and the delta-compile snapshot tier. Monotonic over the service's
     * lifetime except snapshotCount/snapshotBytes/deltaQuarantined,
     * which track current state.
     */
    CacheStats cacheStats() const;

  private:
    struct Job
    {
        CompileRequest request;
        std::promise<CompileResult> promise;        ///< Legacy path.
        std::promise<CompileOutcome> outcomePromise; ///< Tolerant path.
        bool tolerant = false;

        /** Set on the callback path; replaces both promises. */
        std::function<void(CompileOutcome)> callback;
    };

    /** Result-tier coordinates (shared with core/result_cache.h). */
    using CacheKey = ResultCacheKey;

    /**
     * Snapshot-tier key: the content hash of the input PREFIX the
     * snapshot covers (not the whole circuit — that is the point),
     * plus the same config/seed coordinates as the result tier so a
     * snapshot can never resume a job it was not produced under.
     */
    struct SnapshotKey
    {
        std::uint64_t prefixHash = 0;
        std::uint64_t configDigest = 0;
        std::uint64_t seed = 0;
        bool hasSeed = false;

        bool operator==(const SnapshotKey &other) const = default;
    };

    struct SnapshotKeyHash
    {
        std::size_t operator()(const SnapshotKey &key) const;
    };

    /** (configDigest, seed) coordinates of the probe index. */
    struct ProbeKey
    {
        std::uint64_t configDigest = 0;
        std::uint64_t seed = 0;
        bool hasSeed = false;

        bool operator==(const ProbeKey &other) const = default;
    };

    struct ProbeKeyHash
    {
        std::size_t operator()(const ProbeKey &key) const;
    };

    struct SnapshotEntry
    {
        std::shared_ptr<const ScheduleSnapshot> snapshot;
        std::list<SnapshotKey>::iterator lruIt;
    };

    void workerLoop();
    void execute(Job job);

    /** Push the job, or deliver it Cancelled if the service stopped. */
    void enqueueOrCancel(Job job);

    /** Run one job to an outcome: cache, retry loop, delta exchange. */
    CompileOutcome runJob(CompileRequest &request);

    /** One compile attempt through the delta/controlled path. */
    CompileResult
    compileOnce(const CompileRequest &request, Circuit circuit,
                const CacheKey &key,
                const std::shared_ptr<SchedulerWorkspace> &workspace,
                const JobControl &control);

    /**
     * Resolve the job's promise (whichever flavour) and book the
     * failure/retry counters — the single accounting point every
     * delivery funnels through.
     */
    void deliver(Job job, CompileOutcome outcome);

    /**
     * Sleep the deterministic backoff before retry `attempt + 1`.
     * False when the retry is pointless (deadline would expire inside
     * the backoff, token/shutdown already set) — the caller then keeps
     * the Transient error as the outcome.
     */
    bool backoffBeforeRetry(const CompileRequest &request,
                            int attempt) const;

    /** Record a candidate-backed cold fallback; maybe quarantine. */
    void noteDeltaFallback();

    /**
     * Walk the tier stack front to back; a hit is promoted into every
     * tier in front of the one that served it. nullopt = global miss.
     */
    std::optional<CompileResult> cacheLookup(const CacheKey &key);

    /** Store a finished result into every tier. */
    void cacheStore(const CacheKey &key, const CompileResult &result);

    /**
     * Find cached snapshots whose input prefix the circuit shares
     * (hash-verified), ascending by prefix length, at most
     * kMaxResumeCandidates of the longest ones. Counts a snapshot-tier
     * hit or miss.
     */
    std::vector<std::shared_ptr<const ScheduleSnapshot>>
    probeSnapshots(const CacheKey &key, const Circuit &circuit);

    /** Insert captured checkpoints, evicting LRU past the bound. */
    void storeSnapshots(const CacheKey &key,
                        std::vector<ScheduleSnapshot> captured);

    /** Drop one snapshot entry and unwind its index bookkeeping. */
    void evictSnapshotLocked(const SnapshotKey &key);

    /** Longest resume-candidate list offered to one compile. */
    static constexpr std::size_t kMaxResumeCandidates = 8;

    CompileServiceConfig config_;
    std::vector<std::thread> workers_;

    std::mutex queueMutex_;
    std::condition_variable queueCv_;
    std::deque<Job> queue_;
    bool stopping_ = false;

    /**
     * Cooperative shutdown signal wired into every in-flight job's
     * JobControl, so a long compile notices teardown at its next
     * checkpoint instead of holding the join.
     */
    std::atomic<bool> shutdownFlag_{false};

    mutable std::mutex cacheMutex_; ///< Snapshot tier; also cacheStats().

    /**
     * Result-cache tier stack, fastest first (memory, then disk when
     * configured). Fixed after construction; tiers self-synchronise,
     * so lookups/stores run without cacheMutex_.
     */
    std::vector<std::unique_ptr<ResultCacheTier>> resultTiers_;

    // ---- snapshot tier (all guarded by cacheMutex_) ------------------
    std::unordered_map<SnapshotKey, SnapshotEntry, SnapshotKeyHash>
        snapshots_;
    std::list<SnapshotKey> snapshotLru_; ///< Front = most recently used.

    /**
     * Probe index: per (configDigest, seed), the cached prefix lengths
     * with a refcount (several snapshots of different circuits may
     * share a length). Lets a probe enumerate candidate lengths and
     * hash only those prefixes of the incoming circuit.
     */
    std::unordered_map<ProbeKey, std::map<std::size_t, int>, ProbeKeyHash>
        prefixIndex_;
    std::size_t snapshotBytes_ = 0;

    std::atomic<std::uint64_t> jobsExecuted_{0};
    std::atomic<std::uint64_t> cacheHits_{0}; ///< Hits across all tiers.
    std::atomic<std::uint64_t> snapshotHits_{0};
    std::atomic<std::uint64_t> snapshotMisses_{0};
    std::atomic<std::uint64_t> snapshotEvictions_{0};
    std::atomic<std::uint64_t> deltaResumes_{0};
    std::atomic<std::uint64_t> deltaFallbacks_{0};

    std::atomic<std::uint64_t> jobsFailed_{0};
    std::atomic<std::uint64_t> jobsTimedOut_{0};
    std::atomic<std::uint64_t> jobsCancelled_{0};
    std::atomic<std::uint64_t> jobsRetried_{0};
    std::atomic<std::uint64_t> deltaQuarantines_{0};
    std::atomic<int> deltaFallbackStreak_{0};
    std::atomic<bool> deltaQuarantined_{false};
};

} // namespace mussti

#endif // MUSSTI_CORE_COMPILE_SERVICE_H
