/**
 * @file
 * Thread-pooled batch compilation service.
 *
 * Jobs pair a shared ICompilerBackend with a circuit (and an optional
 * per-job RNG seed) and run on a fixed worker pool. Every job compiles
 * in a private CompileContext, so results are bit-identical to serial
 * execution regardless of thread count or completion order. Results are
 * memoised in a bounded LRU cache keyed by (circuit content hash,
 * backend config digest, seed), which collapses the repeated
 * compilations the bench sweeps perform.
 */
#ifndef MUSSTI_CORE_COMPILE_SERVICE_H
#define MUSSTI_CORE_COMPILE_SERVICE_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/backend.h"

namespace mussti {

/** Pool and cache sizing. */
struct CompileServiceConfig
{
    /** Worker threads; <= 0 selects the hardware concurrency. */
    int numThreads = 0;

    /** Cached results kept (LRU evicted); 0 disables the cache. */
    std::size_t cacheCapacity = 128;
};

/** One unit of work for the service. */
struct CompileRequest
{
    std::shared_ptr<const ICompilerBackend> backend;
    Circuit circuit;

    /**
     * RNG seed for the backend's stochastic passes; unset runs under
     * the backend's own configured seed (identical to a direct
     * backend->compile() call).
     */
    std::optional<std::uint64_t> seed;
};

/** Fixed-size worker pool compiling jobs with result memoisation. */
class CompileService
{
  public:
    explicit CompileService(const CompileServiceConfig &config = {});
    ~CompileService();

    CompileService(const CompileService &) = delete;
    CompileService &operator=(const CompileService &) = delete;

    /** Enqueue one job; the future yields the result (or exception). */
    std::future<CompileResult> submit(CompileRequest request);

    std::future<CompileResult>
    submit(std::shared_ptr<const ICompilerBackend> backend,
           Circuit circuit)
    {
        return submit({std::move(backend), std::move(circuit), {}});
    }

    std::future<CompileResult>
    submit(std::shared_ptr<const ICompilerBackend> backend,
           Circuit circuit, std::uint64_t seed)
    {
        return submit({std::move(backend), std::move(circuit), seed});
    }

    /**
     * Compile a batch, returning results in submission order. Jobs run
     * concurrently across the pool; the call blocks until all finish.
     */
    std::vector<CompileResult>
    compileAll(std::vector<CompileRequest> requests);

    /**
     * Batch sweep: compileAll with deterministic per-job seeding. Every
     * request without an explicit seed gets deriveJobSeed(base_seed,
     * index) — index being the request's position in the batch — so a
     * sweep's results are a pure function of (requests, base_seed),
     * independent of the pool's thread count and completion order.
     * This is the fleet-sweep primitive the device tuner fans its
     * (spec x workload) grid through; results come back in submission
     * order.
     */
    std::vector<CompileResult>
    compileSweep(std::vector<CompileRequest> requests,
                 std::uint64_t base_seed);

    /**
     * Deterministic per-job seed derivation (SplitMix64 over the base
     * seed and job index) — independent of thread count and completion
     * order, so seeded batches replay exactly.
     */
    static std::uint64_t deriveJobSeed(std::uint64_t base_seed,
                                       std::size_t job_index);

    /** Upper bound accepted for an explicit worker-thread count. */
    static constexpr int kMaxThreads = 512;

    /**
     * Parse a thread-count override (the MUSSTI_BENCH_THREADS
     * environment variable). Returns 0 — "auto", i.e. hardware
     * concurrency — for null/empty input, and the parsed value for a
     * well-formed positive integer, clamped to kMaxThreads with a
     * warning. Garbage or non-positive values (which std::atoi would
     * silently turn into 0 or accept) are rejected with a logged
     * warning and fall back to auto.
     */
    static int parseThreadCount(const char *text);

    int numThreads() const { return static_cast<int>(workers_.size()); }

    /** Jobs that actually compiled (cache misses). */
    std::uint64_t jobsExecuted() const { return jobsExecuted_.load(); }

    /** Jobs served from the result cache. */
    std::uint64_t cacheHits() const { return cacheHits_.load(); }

  private:
    struct Job
    {
        CompileRequest request;
        std::promise<CompileResult> promise;
    };

    struct CacheKey
    {
        std::uint64_t circuitHash = 0;
        std::uint64_t configDigest = 0;
        std::uint64_t seed = 0;
        bool hasSeed = false;

        bool operator==(const CacheKey &other) const = default;
    };

    struct CacheKeyHash
    {
        std::size_t operator()(const CacheKey &key) const;
    };

    void workerLoop();
    void execute(Job job);

    std::optional<CompileResult> cacheLookup(const CacheKey &key);
    void cacheStore(const CacheKey &key, const CompileResult &result);

    CompileServiceConfig config_;
    std::vector<std::thread> workers_;

    std::mutex queueMutex_;
    std::condition_variable queueCv_;
    std::deque<Job> queue_;
    bool stopping_ = false;

    std::mutex cacheMutex_;
    std::unordered_map<CacheKey,
                       std::pair<CompileResult,
                                 std::list<CacheKey>::iterator>,
                       CacheKeyHash>
        cache_;
    std::list<CacheKey> lruOrder_; ///< Front = most recently used.

    std::atomic<std::uint64_t> jobsExecuted_{0};
    std::atomic<std::uint64_t> cacheHits_{0};
};

} // namespace mussti

#endif // MUSSTI_CORE_COMPILE_SERVICE_H
