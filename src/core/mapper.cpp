#include "core/mapper.h"

#include <algorithm>
#include <vector>

#include "common/logging.h"
#include "core/scheduler.h"

namespace mussti {

Placement
trivialPlacement(const EmlDevice &device, int num_qubits)
{
    MUSSTI_REQUIRE(num_qubits == device.numQubits(),
                   "placement qubit count must match the device sizing");
    Placement placement(num_qubits, device.numZones());

    for (int m = 0; m < device.numModules(); ++m) {
        const auto [lo, hi] = device.moduleQubitRange(m);
        // Zones ordered by level descending (optical, operation,
        // storage); stable on position for determinism.
        std::vector<int> zones = device.zonesOfModule(m);
        std::stable_sort(zones.begin(), zones.end(),
                         [&](int a, int b) {
                             return device.zone(a).level() >
                                    device.zone(b).level();
                         });
        int next = lo;
        for (int z : zones) {
            for (int slot = 0; slot < device.zone(z).capacity &&
                 next < hi; ++slot) {
                placement.insert(next, z, ChainEnd::Back);
                ++next;
            }
        }
        MUSSTI_REQUIRE(next == hi, "module " << m << " cannot hold its "
                       "qubit share");
    }
    return placement;
}

Placement
sabrePlacement(const EmlDevice &device, const PhysicalParams &params,
               const MusstiConfig &config, const Circuit &lowered)
{
    MusstiScheduler scheduler(device, params, config);
    SchedulerWorkspace workspace;

    // Forward pass from the trivial mapping.
    const Placement trivial = trivialPlacement(device,
                                               lowered.numQubits());
    auto forward = scheduler.run(lowered, trivial, &workspace);

    // Reverse pass seeded by the forward pass's final placement: the
    // placement it ends in is one that serves the *start* of the
    // circuit well.
    const Circuit reversed = lowered.reversed();
    auto backward = scheduler.run(reversed, forward.finalPlacement,
                                  &workspace);

    return backward.finalPlacement;
}

} // namespace mussti
