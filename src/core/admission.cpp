#include "core/admission.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"

namespace mussti {

namespace {

CompileOutcome
cancelledOutcome(const std::string &message)
{
    CompileOutcome outcome;
    outcome.error = MusstiError(ErrorCategory::Cancelled, "job.cancelled",
                                message);
    return outcome;
}

} // namespace

FairAdmission::FairAdmission(CompileService &service,
                             const FairAdmissionConfig &config)
    : service_(service), config_{std::max<std::uint64_t>(1, config.quantum),
                                 config.maxInFlightPerClient}
{}

FairAdmission::~FairAdmission()
{
    shutdown();
}

void
FairAdmission::submit(const std::string &client, CompileRequest request,
                      std::function<void(CompileOutcome)> done)
{
    MUSSTI_REQUIRE(done != nullptr, "admission submit without a callback");
    // Cost before the move: DRR credit is spent in gate units, so a
    // 10k-gate sweep job drains ~10k credit while an interactive job
    // costs its own size — fairness over work, not job count.
    const std::uint64_t cost =
        std::max<std::uint64_t>(1, request.circuit.size());
    Pending pending{std::move(request), std::move(done), cost};

    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!stopping_) {
            auto [it, inserted] = clients_.try_emplace(client);
            if (inserted)
                ring_.push_back(client);
            it->second.queue.push_back(std::move(pending));
            ++submitted_;
            pending.done = nullptr; // moved from; mark for the path below
        }
    }
    if (pending.done) {
        pending.done(cancelledOutcome(
            "submit after admission shutdown"));
        return;
    }
    pump();
}

void
FairAdmission::shutdown()
{
    std::vector<Pending> orphaned;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
        // Ring order then per-client FIFO: the cancellation order is as
        // deterministic as the dispatch order.
        for (const std::string &client : ring_) {
            ClientState &state = clients_[client];
            for (Pending &pending : state.queue)
                orphaned.push_back(std::move(pending));
            state.queue.clear();
            state.deficit = 0;
        }
        cancelledQueued_ += orphaned.size();
    }
    for (Pending &pending : orphaned)
        pending.done(cancelledOutcome(
            "admission shut down before the job was dispatched"));
    if (!orphaned.empty())
        idleCv_.notify_all();
    drain();
}

void
FairAdmission::drain()
{
    pump(); // Anything dispatchable goes out before we start waiting.
    std::unique_lock<std::mutex> lock(mutex_);
    idleCv_.wait(lock, [this] {
        if (activeHooks_ != 0)
            return false;
        for (const auto &entry : clients_)
            if (!entry.second.queue.empty() || entry.second.inFlight > 0)
                return false;
        return true;
    });
}

AdmissionStats
FairAdmission::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    AdmissionStats stats;
    stats.submitted = submitted_;
    stats.dispatched = dispatched_;
    stats.completed = completed_;
    stats.cancelledQueued = cancelledQueued_;
    for (const auto &entry : clients_) {
        stats.queuedJobs += entry.second.queue.size();
        stats.inFlightJobs += entry.second.inFlight;
        if (!entry.second.queue.empty() || entry.second.inFlight > 0)
            ++stats.activeClients;
    }
    return stats;
}

std::vector<std::string>
FairAdmission::dispatchLog() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return dispatchLog_;
}

void
FairAdmission::pump()
{
    std::unique_lock<std::mutex> lock(mutex_);
    if (pumping_) {
        // A pump is running (possibly dispatching outside the lock);
        // ask it for another rotation rather than racing it.
        repump_ = true;
        return;
    }
    pumping_ = true;
    for (;;) {
        repump_ = false;
        std::vector<Dispatch> batch = selectLocked();
        if (batch.empty()) {
            if (repump_)
                continue; // A completion freed budget while we selected.
            break;
        }
        lock.unlock();
        for (Dispatch &item : batch)
            dispatch(std::move(item));
        lock.lock();
    }
    pumping_ = false;
}

std::vector<FairAdmission::Dispatch>
FairAdmission::selectLocked()
{
    std::vector<Dispatch> batch;
    if (ring_.empty())
        return batch;

    const auto under_budget = [this](const ClientState &state) {
        return config_.maxInFlightPerClient == 0 ||
               state.inFlight < config_.maxInFlightPerClient;
    };

    // Rotate the ring until a full pass makes no progress. Banking a
    // quantum without dispatching counts as progress: the blocked
    // front job's cost is finite, so its client unblocks after a
    // bounded number of rotations (the rotations other clients spend
    // dispatching their own credit).
    std::size_t idle_passes = 0;
    while (idle_passes < ring_.size()) {
        const std::string &client = ring_[cursor_];
        ClientState &state = clients_[client];
        bool progress = false;
        if (!state.queue.empty() && under_budget(state)) {
            state.deficit += config_.quantum;
            progress = true;
            while (!state.queue.empty() && under_budget(state) &&
                   state.queue.front().cost <= state.deficit) {
                state.deficit -= state.queue.front().cost;
                ++state.inFlight;
                ++dispatched_;
                dispatchLog_.push_back(client);
                batch.push_back(
                    Dispatch{client, std::move(state.queue.front())});
                state.queue.pop_front();
            }
        }
        if (state.queue.empty())
            state.deficit = 0; // Standard DRR: credit does not bank
                               // across idle periods.
        cursor_ = (cursor_ + 1) % ring_.size();
        idle_passes = progress ? 0 : idle_passes + 1;
    }
    return batch;
}

void
FairAdmission::dispatch(Dispatch item)
{
    std::string client = item.client;
    service_.submitWithCallback(
        std::move(item.job.request),
        [this, client = std::move(client),
         done = std::move(item.job.done)](CompileOutcome outcome) {
            // Caller first (it streams the result), then bookkeeping,
            // then the re-pump the freed budget may enable.
            done(std::move(outcome));
            {
                std::lock_guard<std::mutex> lock(mutex_);
                auto it = clients_.find(client);
                if (it != clients_.end() && it->second.inFlight > 0)
                    --it->second.inFlight;
                ++completed_;
                // Hook accounting keeps drain() from returning (and the
                // owner from destroying us) while this thread is still
                // inside pump() below.
                ++activeHooks_;
            }
            pump();
            {
                std::lock_guard<std::mutex> lock(mutex_);
                --activeHooks_;
            }
            idleCv_.notify_all();
        });
}

} // namespace mussti
