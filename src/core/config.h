/**
 * @file
 * MUSS-TI compiler configuration (paper sections 3.2-3.4 defaults).
 */
#ifndef MUSSTI_CORE_CONFIG_H
#define MUSSTI_CORE_CONFIG_H

#include <cstdint>

#include "arch/eml_device.h"

namespace mussti {

/** Initial-mapping strategy (paper section 3.4). */
enum class MappingKind {
    Trivial, ///< Level-ordered sequential placement.
    Sabre,   ///< Two-fold forward/reverse pre-run (SABRE-style).
};

/**
 * Conflict-handling victim policy (paper section 3.2 uses an LRU
 * enhanced with anticipated usage; the alternatives exist for the
 * replacement-policy ablation study).
 */
enum class ReplacementPolicy {
    AnticipatoryLru, ///< Farthest next use, then extraction cost, then
                     ///< LRU age (the MUSS-TI default).
    Lru,             ///< Pure least-recently-used.
    Fifo,            ///< Evict the longest-resident ion.
    Random,          ///< Uniform random victim (deterministic seed).
};

/** Human-readable policy name for benches and traces. */
const char *replacementPolicyName(ReplacementPolicy policy);

/** All tunables of the MUSS-TI compiler. */
struct MusstiConfig
{
    /** Weight-table look-ahead depth k (paper uses 8; Fig 9 sweeps it). */
    int lookAhead = 8;

    /**
     * SWAP-insertion threshold T: future-gate count that must justify the
     * 3-gate cost of a logical SWAP (paper uses 4; >= 3 required).
     */
    int swapThreshold = 4;

    /** Enable the section-3.3 SWAP insertion pass. */
    bool enableSwapInsertion = true;

    /**
     * Layers of the incrementally maintained DAG window the replacement
     * scheduler consults for anticipated qubit usage (section 3.4). Also
     * the "idle" sentinel: a qubit with no gate within the horizon
     * reports this value. Larger horizons approximate Belady better but
     * widen the window the DAG maintains per retirement.
     */
    int nextUseHorizon = 64;

    /**
     * Drive the phase-1 drain from the incrementally maintained
     * executable-ready worklist (the default) instead of re-scanning a
     * snapshot of the whole frontier until fixpoint. The two drains are
     * bit-identical by construction — the worklist re-examines exactly
     * the gates whose operands moved, in the same order the full
     * re-scan would have reached them — and tests pin the equivalence
     * (tests/test_scheduler.cpp), so this knob exists only as the
     * reference implementation for that cross-check and is deliberately
     * excluded from configDigest().
     */
    bool incrementalFrontier = true;

    /** Initial mapping strategy. */
    MappingKind mapping = MappingKind::Sabre;

    /** Conflict-handling victim policy. */
    ReplacementPolicy replacement = ReplacementPolicy::AnticipatoryLru;

    /** Seed for ReplacementPolicy::Random (deterministic runs). */
    std::uint64_t seed = 2025;

    /**
     * Prefix-reuse delta compilation. When on, the forward scheduling
     * leg captures ScheduleSnapshots at gate-count checkpoints
     * (core/schedule_snapshot.h) and, handed a snapshot whose input
     * prefix matches, resumes from it instead of replaying the shared
     * prefix — bit-identical to the cold path by construction, with the
     * cold path kept as the cross-check oracle
     * (tests/test_delta_compile.cpp). Off by default so the stock
     * pipelines, golden fingerprints, and configDigest() values are
     * untouched; when on it is folded into configDigest(), so a
     * delta-produced result is never served to a non-delta request.
     */
    bool deltaCompile = false;

    /**
     * Snapshot-capture cadence of the delta path: a checkpoint is
     * captured every this many retired two-qubit gates (the scheduler
     * thins the set to a bounded count as the run grows). Only read
     * when deltaCompile is on.
     */
    int deltaCheckpointGates = 64;

    /**
     * Post-compile static analysis (src/lint/): 0 = off (the default —
     * the linter never sits on the hot path uninvited), 1 = lint the
     * final schedule and warn() on findings, 2 = strict: fatal() when
     * the lint report carries errors. Folded into configDigest() so a
     * cached result is never served across lint-discipline changes.
     */
    int lintLevel = 0;

    /** Device construction parameters. */
    EmlConfig device;
};

} // namespace mussti

#endif // MUSSTI_CORE_CONFIG_H
