#include "core/router.h"

#include <algorithm>
#include <limits>
#include <tuple>

#include "common/logging.h"

namespace mussti {

Router::Router(const EmlDevice &device, const PhysicalParams &params,
               Placement &placement, Schedule &schedule, LruTracker &lru,
               ReplacementPolicy policy, std::uint64_t seed)
    : device_(device), params_(params), placement_(placement),
      emitter_(device.zoneInfos(), params, placement, schedule),
      lru_(lru), policy_(policy), rng_(seed),
      arrival_(placement.numQubits(), 0)
{
}

void
Router::relocate(int qubit, int zone)
{
    emitter_.relocate(qubit, zone);
    arrival_[qubit] = ++arrivalClock_;
    if (moveListener_ != nullptr)
        moveListener_->onQubitMoved(qubit);
}

int
Router::freeSlots(int zone) const
{
    return device_.zone(zone).capacity - placement_.sizeOf(zone);
}

double
Router::planCost(const int *movers, int count, int zone) const
{
    // Primary term: one shuttle per mover plus evictions forced by the
    // capacity deficit (each eviction is itself a shuttle). Secondary
    // terms: chain extraction swaps and move distance, scaled far below
    // one shuttle so they only break ties.
    const int deficit = std::max(0, count - freeSlots(zone));
    double cost = static_cast<double>(count + 2 * deficit);
    for (int i = 0; i < count; ++i) {
        const int q = movers[i];
        const int from = placement_.zoneOf(q);
        cost += 0.05 * placement_.extractionSwaps(q);
        cost += 1e-4 * device_.distanceUm(from, zone);
    }
    return cost;
}

int
Router::chooseOpticalZone(int module, int qubit) const
{
    int best_zone = -1;
    double best_cost = std::numeric_limits<double>::infinity();
    for (int z : device_.zonesOfKind(module, ZoneKind::Optical)) {
        const double cost = planCost(&qubit, 1, z);
        if (cost < best_cost) {
            best_cost = cost;
            best_zone = z;
        }
    }
    MUSSTI_ASSERT(best_zone >= 0,
                  "module " << module << " has no optical zone");
    return best_zone;
}

int
Router::pickVictim(int zone, const ProtectSet &protect)
{
    // One pass over the contiguous chain per policy, skipping protected
    // ions with an inline scan (<= 4 entries). Candidate order is chain
    // order (front to back), matching the historical materialised
    // candidate list, so first-wins tie-breaks are unchanged.
    const ZoneChain &chain = placement_.chain(zone);

    switch (policy_) {
      case ReplacementPolicy::Random: {
        // The RNG draw spans the candidate count, so count first and
        // then index — two passes, identical to drawing over the old
        // materialised list.
        int count = 0;
        for (int q : chain) {
            if (!protect.contains(q))
                ++count;
        }
        if (count == 0)
            return -1;
        int pick = static_cast<int>(
            rng_.uniform(static_cast<std::size_t>(count)));
        for (int q : chain) {
            if (protect.contains(q))
                continue;
            if (pick-- == 0)
                return q;
        }
        panic("random victim index outside candidate set");
      }

      case ReplacementPolicy::Fifo: {
        int victim = -1;
        for (int q : chain) {
            if (protect.contains(q))
                continue;
            if (victim < 0 || arrival_[q] < arrival_[victim])
                victim = q;
        }
        return victim;
      }

      case ReplacementPolicy::Lru: {
        int victim = -1;
        for (int q : chain) {
            if (protect.contains(q))
                continue;
            if (victim < 0 || lru_.stampOf(q) < lru_.stampOf(victim))
                victim = q;
        }
        return victim;
      }

      case ReplacementPolicy::AnticipatoryLru: {
        // Victim choice blends the paper's LRU with anticipated usage
        // and physical cost: farthest next use first (approximate
        // Belady over the DAG window); among equally-idle ions the
        // cheaper chain extraction wins (every in-chain swap deposits
        // heat); LRU age breaks remaining ties.
        int victim = -1;
        std::tuple<int, int, std::int64_t> victim_key;
        for (int q : chain) {
            if (protect.contains(q))
                continue;
            const int next_use = nextUse_ ? (*nextUse_)[q] : 0;
            const auto key = std::make_tuple(
                -next_use, placement_.extractionSwaps(q), lru_.stampOf(q));
            if (victim < 0 || key < victim_key) {
                victim = q;
                victim_key = key;
            }
        }
        return victim;
      }
    }
    panic("unhandled ReplacementPolicy in pickVictim");
}

void
Router::evictOne(int zone, const ProtectSet &protect)
{
    const int victim = pickVictim(zone, protect);
    MUSSTI_ASSERT(victim >= 0, "no evictable ion in zone " << zone
                  << " (capacity dead-lock)");

    const int module = device_.zone(zone).module;
    const int level = device_.zone(zone).level();

    // Preferred targets: nearest lower level first (the multi-level
    // demotion of the paper's example: optical -> operation -> storage),
    // then same level, then anything in the module with space.
    int target = -1;
    for (int want_level = level - 1; want_level >= 0 && target < 0;
         --want_level) {
        double best_cost = std::numeric_limits<double>::infinity();
        for (int z : device_.zonesOfModule(module)) {
            if (z == zone || device_.zone(z).level() != want_level)
                continue;
            if (freeSlots(z) <= 0)
                continue;
            const double cost = 1e-4 * device_.distanceUm(zone, z) -
                0.01 * freeSlots(z);
            if (cost < best_cost) {
                best_cost = cost;
                target = z;
            }
        }
    }
    if (target < 0) {
        // Fall back to any same-module zone with space (including higher
        // levels); margins guarantee one exists.
        double best_cost = std::numeric_limits<double>::infinity();
        for (int z : device_.zonesOfModule(module)) {
            if (z == zone || freeSlots(z) <= 0)
                continue;
            const double cost = 1e-4 * device_.distanceUm(zone, z) -
                0.01 * freeSlots(z);
            if (cost < best_cost) {
                best_cost = cost;
                target = z;
            }
        }
    }
    MUSSTI_ASSERT(target >= 0, "module " << module
                  << " has no free slot anywhere; device mis-sized");

    relocate(victim, target);
    ++evictions_;
}

void
Router::moveIn(int qubit, int zone, const ProtectSet &protect)
{
    if (placement_.zoneOf(qubit) == zone)
        return;
    ProtectSet guarded = protect;
    guarded.push_back(qubit);
    while (freeSlots(zone) <= 0)
        evictOne(zone, guarded);
    relocate(qubit, zone);
}

void
Router::routeForGate(int qubit_a, int qubit_b)
{
    const int zone_a = placement_.zoneOf(qubit_a);
    const int zone_b = placement_.zoneOf(qubit_b);
    MUSSTI_ASSERT(zone_a >= 0 && zone_b >= 0, "routing unplaced qubits");
    const int module_a = device_.zone(zone_a).module;
    const int module_b = device_.zone(zone_b).module;
    const ProtectSet protect = {qubit_a, qubit_b};

    if (module_a == module_b) {
        // Candidate plans: move a to b's zone, move b to a's zone, or
        // move both into a third gate-capable zone; every gate-capable
        // zone of the module is costed with the applicable mover set.
        struct Plan
        {
            int movers[2] = {-1, -1};
            int moverCount = 0;
            int zone = -1;
            double cost = 0.0;
        };
        SmallVec<Plan, 8> plans;
        if (device_.zone(zone_b).gateCapable())
            plans.push_back({{qubit_a, -1}, 1, zone_b,
                             planCost(&qubit_a, 1, zone_b)});
        if (device_.zone(zone_a).gateCapable())
            plans.push_back({{qubit_b, -1}, 1, zone_a,
                             planCost(&qubit_b, 1, zone_a)});
        const int both[2] = {qubit_a, qubit_b};
        for (int z : device_.gateZonesOfModule(module_a)) {
            if (z == zone_a || z == zone_b)
                continue;
            plans.push_back({{qubit_a, qubit_b}, 2, z,
                             planCost(both, 2, z)});
        }
        MUSSTI_ASSERT(!plans.empty(), "no routing plan for local gate");
        // Near-tie bias: keep local gates out of the optical zone so
        // the fiber port stays cool and available for cross-module work
        // (the paper prioritizes on-chip gates, section 5.9).
        const Plan &best = *std::min_element(
            plans.begin(), plans.end(),
            [&](const Plan &x, const Plan &y) {
                const double bias_x = x.zone == zone_a || x.zone == zone_b
                    ? 0.0 : 1e-6 * device_.zone(x.zone).level();
                const double bias_y = y.zone == zone_a || y.zone == zone_b
                    ? 0.0 : 1e-6 * device_.zone(y.zone).level();
                return x.cost + bias_x < y.cost + bias_y;
            });
        for (int i = 0; i < best.moverCount; ++i)
            moveIn(best.movers[i], best.zone, protect);
        return;
    }

    // Cross-module: each operand must reach an optical zone of its own
    // module; the entangling gate then runs over the fiber.
    for (int q : protect) {
        const int zone = placement_.zoneOf(q);
        if (device_.zone(zone).kind == ZoneKind::Optical)
            continue;
        const int target = chooseOpticalZone(device_.zone(zone).module, q);
        moveIn(q, target, protect);
    }
}

void
Router::routeToOptical(int qubit, const ProtectSet &protect)
{
    const int zone = placement_.zoneOf(qubit);
    MUSSTI_ASSERT(zone >= 0, "routeToOptical of unplaced qubit");
    if (device_.zone(zone).kind == ZoneKind::Optical)
        return;
    const int target = chooseOpticalZone(device_.zone(zone).module, qubit);
    ProtectSet guarded = protect;
    guarded.push_back(qubit);
    while (freeSlots(target) <= 0)
        evictOne(target, guarded);
    relocate(qubit, target);
}

} // namespace mussti
