#include "core/router.h"

#include <algorithm>
#include <limits>
#include <tuple>

#include "common/logging.h"

namespace mussti {

Router::Router(const EmlDevice &device, const PhysicalParams &params,
               Placement &placement, Schedule &schedule, LruTracker &lru,
               ReplacementPolicy policy, std::uint64_t seed)
    : device_(device), params_(params), placement_(placement),
      emitter_(device.zoneInfos(), params, placement, schedule),
      lru_(lru), policy_(policy), rng_(seed),
      arrival_(placement.numQubits(), 0)
{
}

int
Router::freeSlots(int zone) const
{
    return device_.zone(zone).capacity - placement_.sizeOf(zone);
}

double
Router::planCost(const std::vector<int> &movers, int zone) const
{
    // Primary term: one shuttle per mover plus evictions forced by the
    // capacity deficit (each eviction is itself a shuttle). Secondary
    // terms: chain extraction swaps and move distance, scaled far below
    // one shuttle so they only break ties.
    const int deficit = std::max(0,
        static_cast<int>(movers.size()) - freeSlots(zone));
    double cost = static_cast<double>(movers.size() + 2 * deficit);
    for (int q : movers) {
        const int from = placement_.zoneOf(q);
        cost += 0.05 * placement_.extractionSwaps(q);
        cost += 1e-4 * device_.distanceUm(from, zone);
    }
    return cost;
}

int
Router::chooseOpticalZone(int module, int qubit) const
{
    int best_zone = -1;
    double best_cost = std::numeric_limits<double>::infinity();
    for (int z : device_.zonesOfKind(module, ZoneKind::Optical)) {
        const double cost = planCost({qubit}, z);
        if (cost < best_cost) {
            best_cost = cost;
            best_zone = z;
        }
    }
    MUSSTI_ASSERT(best_zone >= 0,
                  "module " << module << " has no optical zone");
    return best_zone;
}

int
Router::pickVictim(int zone, const std::vector<int> &protect)
{
    std::vector<int> candidates;
    for (int q : placement_.chain(zone)) {
        if (std::find(protect.begin(), protect.end(), q) == protect.end())
            candidates.push_back(q);
    }
    if (candidates.empty())
        return -1;

    switch (policy_) {
      case ReplacementPolicy::Random:
        return candidates[rng_.uniform(candidates.size())];

      case ReplacementPolicy::Fifo: {
        int victim = candidates.front();
        for (int q : candidates) {
            if (arrival_[q] < arrival_[victim])
                victim = q;
        }
        return victim;
      }

      case ReplacementPolicy::Lru: {
        int victim = candidates.front();
        for (int q : candidates) {
            if (lru_.stampOf(q) < lru_.stampOf(victim))
                victim = q;
        }
        return victim;
      }

      case ReplacementPolicy::AnticipatoryLru: {
        // Victim choice blends the paper's LRU with anticipated usage
        // and physical cost: farthest next use first (approximate
        // Belady over the DAG window); among equally-idle ions the
        // cheaper chain extraction wins (every in-chain swap deposits
        // heat); LRU age breaks remaining ties.
        int victim = -1;
        std::tuple<int, int, std::int64_t> victim_key;
        for (int q : candidates) {
            const int next_use = nextUse_ ? (*nextUse_)[q] : 0;
            const auto key = std::make_tuple(
                -next_use, placement_.extractionSwaps(q), lru_.stampOf(q));
            if (victim < 0 || key < victim_key) {
                victim = q;
                victim_key = key;
            }
        }
        return victim;
      }
    }
    panic("unhandled ReplacementPolicy in pickVictim");
}

void
Router::evictOne(int zone, const std::vector<int> &protect)
{
    const int victim = pickVictim(zone, protect);
    MUSSTI_ASSERT(victim >= 0, "no evictable ion in zone " << zone
                  << " (capacity dead-lock)");

    const int module = device_.zone(zone).module;
    const int level = device_.zone(zone).level();

    // Preferred targets: nearest lower level first (the multi-level
    // demotion of the paper's example: optical -> operation -> storage),
    // then same level, then anything in the module with space.
    int target = -1;
    for (int want_level = level - 1; want_level >= 0 && target < 0;
         --want_level) {
        double best_cost = std::numeric_limits<double>::infinity();
        for (int z : device_.zonesOfModule(module)) {
            if (z == zone || device_.zone(z).level() != want_level)
                continue;
            if (freeSlots(z) <= 0)
                continue;
            const double cost = 1e-4 * device_.distanceUm(zone, z) -
                0.01 * freeSlots(z);
            if (cost < best_cost) {
                best_cost = cost;
                target = z;
            }
        }
    }
    if (target < 0) {
        // Fall back to any same-module zone with space (including higher
        // levels); margins guarantee one exists.
        double best_cost = std::numeric_limits<double>::infinity();
        for (int z : device_.zonesOfModule(module)) {
            if (z == zone || freeSlots(z) <= 0)
                continue;
            const double cost = 1e-4 * device_.distanceUm(zone, z) -
                0.01 * freeSlots(z);
            if (cost < best_cost) {
                best_cost = cost;
                target = z;
            }
        }
    }
    MUSSTI_ASSERT(target >= 0, "module " << module
                  << " has no free slot anywhere; device mis-sized");

    emitter_.relocate(victim, target);
    arrival_[victim] = ++arrivalClock_;
    ++evictions_;
}

void
Router::moveIn(int qubit, int zone, const std::vector<int> &protect)
{
    if (placement_.zoneOf(qubit) == zone)
        return;
    std::vector<int> guarded = protect;
    guarded.push_back(qubit);
    while (freeSlots(zone) <= 0)
        evictOne(zone, guarded);
    emitter_.relocate(qubit, zone);
    arrival_[qubit] = ++arrivalClock_;
}

void
Router::routeForGate(int qubit_a, int qubit_b)
{
    const int zone_a = placement_.zoneOf(qubit_a);
    const int zone_b = placement_.zoneOf(qubit_b);
    MUSSTI_ASSERT(zone_a >= 0 && zone_b >= 0, "routing unplaced qubits");
    const int module_a = device_.zone(zone_a).module;
    const int module_b = device_.zone(zone_b).module;
    const std::vector<int> protect = {qubit_a, qubit_b};

    if (module_a == module_b) {
        // Candidate plans: move a to b's zone, move b to a's zone, or
        // move both into a third gate-capable zone. chooseGateZone costs
        // every gate-capable zone with the applicable mover set.
        struct Plan { std::vector<int> movers; int zone; double cost; };
        std::vector<Plan> plans;
        if (device_.zone(zone_b).gateCapable())
            plans.push_back({{qubit_a}, zone_b,
                             planCost({qubit_a}, zone_b)});
        if (device_.zone(zone_a).gateCapable())
            plans.push_back({{qubit_b}, zone_a,
                             planCost({qubit_b}, zone_a)});
        for (int z : device_.gateZonesOfModule(module_a)) {
            if (z == zone_a || z == zone_b)
                continue;
            plans.push_back({{qubit_a, qubit_b}, z,
                             planCost({qubit_a, qubit_b}, z)});
        }
        MUSSTI_ASSERT(!plans.empty(), "no routing plan for local gate");
        // Near-tie bias: keep local gates out of the optical zone so
        // the fiber port stays cool and available for cross-module work
        // (the paper prioritizes on-chip gates, section 5.9).
        const Plan &best = *std::min_element(
            plans.begin(), plans.end(),
            [&](const Plan &x, const Plan &y) {
                const double bias_x = x.zone == zone_a || x.zone == zone_b
                    ? 0.0 : 1e-6 * device_.zone(x.zone).level();
                const double bias_y = y.zone == zone_a || y.zone == zone_b
                    ? 0.0 : 1e-6 * device_.zone(y.zone).level();
                return x.cost + bias_x < y.cost + bias_y;
            });
        for (int q : best.movers)
            moveIn(q, best.zone, protect);
        return;
    }

    // Cross-module: each operand must reach an optical zone of its own
    // module; the entangling gate then runs over the fiber.
    for (int q : protect) {
        const int zone = placement_.zoneOf(q);
        if (device_.zone(zone).kind == ZoneKind::Optical)
            continue;
        const int target = chooseOpticalZone(device_.zone(zone).module, q);
        moveIn(q, target, protect);
    }
}

void
Router::routeToOptical(int qubit, const std::vector<int> &protect)
{
    const int zone = placement_.zoneOf(qubit);
    MUSSTI_ASSERT(zone >= 0, "routeToOptical of unplaced qubit");
    if (device_.zone(zone).kind == ZoneKind::Optical)
        return;
    const int target = chooseOpticalZone(device_.zone(zone).module, qubit);
    std::vector<int> guarded = protect;
    guarded.push_back(qubit);
    while (freeSlots(target) <= 0)
        evictOne(target, guarded);
    emitter_.relocate(qubit, target);
    arrival_[qubit] = ++arrivalClock_;
}

} // namespace mussti
