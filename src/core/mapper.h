/**
 * @file
 * Initial mapping strategies (paper section 3.4).
 *
 * Trivial: qubits are placed in program order, module by module, filling
 * zones from the highest level downward (optical, operation, storage) —
 * "zones with higher levels typically offer superior functionality".
 *
 * SABRE: a two-fold search. The circuit is scheduled once from the
 * trivial mapping; the resulting final placement seeds a pass over the
 * reversed circuit; that pass's final placement becomes the real initial
 * mapping. This pre-loads qubits into the working zones before use, like
 * memory-block pre-loading.
 */
#ifndef MUSSTI_CORE_MAPPER_H
#define MUSSTI_CORE_MAPPER_H

#include "arch/eml_device.h"
#include "arch/placement.h"
#include "circuit/circuit.h"
#include "core/config.h"
#include "sim/params.h"

namespace mussti {

/** Level-ordered sequential placement. */
Placement trivialPlacement(const EmlDevice &device, int num_qubits);

/**
 * SABRE-style two-fold-search placement. `lowered` must already have
 * SWAP gates decomposed. Internally runs the MUSS-TI scheduler twice.
 */
Placement sabrePlacement(const EmlDevice &device,
                         const PhysicalParams &params,
                         const MusstiConfig &config,
                         const Circuit &lowered);

} // namespace mussti

#endif // MUSSTI_CORE_MAPPER_H
