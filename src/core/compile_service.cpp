#include "core/compile_service.h"

#include <algorithm>
#include <optional>
#include <string>
#include <utility>

#include "common/hash.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "core/scheduler_workspace.h"

namespace mussti {

std::size_t
CompileService::CacheKeyHash::operator()(const CacheKey &key) const
{
    Fnv1a hash;
    hash.update(key.circuitHash);
    hash.update(key.configDigest);
    hash.update(key.seed);
    hash.update(key.hasSeed);
    return static_cast<std::size_t>(hash.digest());
}

std::size_t
CompileService::SnapshotKeyHash::operator()(const SnapshotKey &key) const
{
    Fnv1a hash;
    hash.update(key.prefixHash);
    hash.update(key.configDigest);
    hash.update(key.seed);
    hash.update(key.hasSeed);
    return static_cast<std::size_t>(hash.digest());
}

std::size_t
CompileService::ProbeKeyHash::operator()(const ProbeKey &key) const
{
    Fnv1a hash;
    hash.update(key.configDigest);
    hash.update(key.seed);
    hash.update(key.hasSeed);
    return static_cast<std::size_t>(hash.digest());
}

CompileService::CompileService(const CompileServiceConfig &config)
    : config_(config)
{
    int threads = config.numThreads;
    if (threads <= 0) {
        threads = static_cast<int>(std::thread::hardware_concurrency());
        threads = std::max(threads, 1);
    }
    workers_.reserve(static_cast<std::size_t>(threads));
    for (int i = 0; i < threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

CompileService::~CompileService()
{
    {
        std::lock_guard<std::mutex> lock(queueMutex_);
        stopping_ = true;
    }
    queueCv_.notify_all();
    for (std::thread &worker : workers_)
        worker.join();
}

std::vector<CompileResult>
CompileService::compileSweep(std::vector<CompileRequest> requests,
                             std::uint64_t base_seed)
{
    for (std::size_t i = 0; i < requests.size(); ++i) {
        if (!requests[i].seed.has_value())
            requests[i].seed = deriveJobSeed(base_seed, i);
    }
    return compileAll(std::move(requests));
}

std::uint64_t
CompileService::deriveJobSeed(std::uint64_t base_seed,
                              std::size_t job_index)
{
    // SplitMix64 over (base, index): statistically independent streams
    // per job, identical across runs and thread counts.
    std::uint64_t x = base_seed + 0x9E3779B97F4A7C15ull *
        (static_cast<std::uint64_t>(job_index) + 1);
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
}

int
CompileService::parseThreadCount(const char *text)
{
    if (text == nullptr || *text == '\0')
        return 0;

    const std::optional<int> value = parseIntStrict(text);
    if (!value.has_value()) {
        warn(std::string("ignoring unparsable thread count `") + text +
             "` (want a positive integer); using hardware concurrency");
        return 0;
    }
    if (*value <= 0) {
        warn(std::string("ignoring non-positive thread count `") + text +
             "`; using hardware concurrency");
        return 0;
    }
    if (*value > kMaxThreads) {
        warn("clamping thread count " + std::to_string(*value) + " to " +
             std::to_string(kMaxThreads));
        return kMaxThreads;
    }
    return *value;
}

std::future<CompileResult>
CompileService::submit(CompileRequest request)
{
    MUSSTI_REQUIRE(request.backend != nullptr,
                   "compile request without a backend");
    Job job{std::move(request), std::promise<CompileResult>{}};
    std::future<CompileResult> future = job.promise.get_future();
    {
        std::lock_guard<std::mutex> lock(queueMutex_);
        MUSSTI_REQUIRE(!stopping_,
                       "submit on a stopping CompileService");
        queue_.push_back(std::move(job));
    }
    queueCv_.notify_one();
    return future;
}

std::vector<CompileResult>
CompileService::compileAll(std::vector<CompileRequest> requests)
{
    std::vector<std::future<CompileResult>> futures;
    futures.reserve(requests.size());
    for (CompileRequest &request : requests)
        futures.push_back(submit(std::move(request)));

    std::vector<CompileResult> results;
    results.reserve(futures.size());
    for (std::future<CompileResult> &future : futures)
        results.push_back(future.get());
    return results;
}

void
CompileService::workerLoop()
{
    for (;;) {
        std::optional<Job> job;
        {
            std::unique_lock<std::mutex> lock(queueMutex_);
            queueCv_.wait(lock, [this] {
                return stopping_ || !queue_.empty();
            });
            if (queue_.empty())
                return; // stopping_ and fully drained
            job.emplace(std::move(queue_.front()));
            queue_.pop_front();
        }
        execute(std::move(*job));
    }
}

void
CompileService::execute(Job job)
{
    try {
        CacheKey key;
        key.circuitHash = job.request.circuit.contentHash();
        key.configDigest = job.request.backend->configDigest();
        key.hasSeed = job.request.seed.has_value();
        key.seed = job.request.seed.value_or(0);

        if (config_.cacheCapacity > 0) {
            if (auto cached = cacheLookup(key)) {
                cacheHits_.fetch_add(1);
                job.promise.set_value(std::move(*cached));
                return;
            }
        }

        // One scheduler arena per worker thread: consecutive jobs on a
        // worker reuse warm buffers (a pure allocation cache — results
        // are bit-identical, pinned by test_compile_service/
        // test_scheduler_workspace). Thread-local rather than per-
        // service so the arena survives as long as the worker does.
        thread_local auto workspace =
            std::make_shared<SchedulerWorkspace>();

        CompileResult result = [&] {
            if (config_.snapshotCacheCapacity == 0) {
                return job.request.seed
                           ? job.request.backend->compileSeeded(
                                 std::move(job.request.circuit),
                                 *job.request.seed, workspace)
                           : job.request.backend->compile(
                                 std::move(job.request.circuit),
                                 workspace);
            }

            // Snapshot tier on: offer hash-verified prefix snapshots
            // as resume candidates and bank whatever this compile
            // captures. Bit-identical to the plain path by contract.
            DeltaCompileIO delta;
            delta.candidates = probeSnapshots(key, job.request.circuit);
            const bool had_candidates = !delta.candidates.empty();
            CompileResult compiled = job.request.backend->compileDelta(
                std::move(job.request.circuit), job.request.seed,
                workspace, delta);
            if (delta.resumed)
                deltaResumes_.fetch_add(1);
            else if (had_candidates)
                deltaFallbacks_.fetch_add(1);
            storeSnapshots(key, std::move(delta.captured));
            return compiled;
        }();
        jobsExecuted_.fetch_add(1);

        if (config_.cacheCapacity > 0)
            cacheStore(key, result);
        job.promise.set_value(std::move(result));
    } catch (...) {
        job.promise.set_exception(std::current_exception());
    }
}

std::optional<CompileResult>
CompileService::cacheLookup(const CacheKey &key)
{
    std::lock_guard<std::mutex> lock(cacheMutex_);
    const auto it = cache_.find(key);
    if (it == cache_.end())
        return std::nullopt;
    // Refresh recency.
    lruOrder_.splice(lruOrder_.begin(), lruOrder_, it->second.second);
    return it->second.first;
}

void
CompileService::cacheStore(const CacheKey &key,
                           const CompileResult &result)
{
    std::lock_guard<std::mutex> lock(cacheMutex_);
    if (cache_.find(key) != cache_.end())
        return; // A concurrent identical job already stored it.
    while (cache_.size() >= config_.cacheCapacity && !lruOrder_.empty()) {
        cache_.erase(lruOrder_.back());
        lruOrder_.pop_back();
        resultEvictions_.fetch_add(1);
    }
    lruOrder_.push_front(key);
    cache_.emplace(key, std::make_pair(result, lruOrder_.begin()));
}

std::vector<std::shared_ptr<const ScheduleSnapshot>>
CompileService::probeSnapshots(const CacheKey &key, const Circuit &circuit)
{
    std::vector<std::shared_ptr<const ScheduleSnapshot>> found;
    std::lock_guard<std::mutex> lock(cacheMutex_);

    const ProbeKey probe{key.configDigest, key.seed, key.hasSeed};
    const auto index_it = prefixIndex_.find(probe);
    if (index_it != prefixIndex_.end()) {
        // Walk the cached prefix lengths longest-first — the longer
        // the verified prefix, the less suffix the scheduler replays —
        // and stop once enough candidates are in hand.
        const auto &lengths = index_it->second;
        for (auto it = lengths.rbegin();
             it != lengths.rend() && found.size() < kMaxResumeCandidates;
             ++it) {
            const std::size_t prefix_gates = it->first;
            if (prefix_gates == 0 || prefix_gates > circuit.size())
                continue;
            SnapshotKey skey{circuit.prefixHash(prefix_gates),
                             key.configDigest, key.seed, key.hasSeed};
            const auto snap_it = snapshots_.find(skey);
            if (snap_it == snapshots_.end())
                continue;
            snapshotLru_.splice(snapshotLru_.begin(), snapshotLru_,
                                snap_it->second.lruIt);
            found.push_back(snap_it->second.snapshot);
        }
    }

    if (found.empty())
        snapshotMisses_.fetch_add(1);
    else
        snapshotHits_.fetch_add(1);

    // The scheduler wants candidates ascending by covered prefix.
    std::reverse(found.begin(), found.end());
    return found;
}

void
CompileService::storeSnapshots(const CacheKey &key,
                               std::vector<ScheduleSnapshot> captured)
{
    if (captured.empty())
        return;
    std::lock_guard<std::mutex> lock(cacheMutex_);
    for (ScheduleSnapshot &snap : captured) {
        if (snap.inputPrefixGates == 0)
            continue;
        SnapshotKey skey{snap.prefixHash, key.configDigest, key.seed,
                         key.hasSeed};
        const auto it = snapshots_.find(skey);
        if (it != snapshots_.end()) {
            // Deterministic compiles recapture identical checkpoints;
            // keep the incumbent, just refresh its recency.
            snapshotLru_.splice(snapshotLru_.begin(), snapshotLru_,
                                it->second.lruIt);
            continue;
        }

        snapshotBytes_ += snap.approxBytes();
        prefixIndex_[{key.configDigest, key.seed, key.hasSeed}]
                    [snap.inputPrefixGates] += 1;
        snapshotLru_.push_front(skey);
        snapshots_.emplace(
            skey,
            SnapshotEntry{std::make_shared<const ScheduleSnapshot>(
                              std::move(snap)),
                          snapshotLru_.begin()});

        while (snapshots_.size() > config_.snapshotCacheCapacity &&
               !snapshotLru_.empty()) {
            evictSnapshotLocked(snapshotLru_.back());
            snapshotEvictions_.fetch_add(1);
        }
    }
}

void
CompileService::evictSnapshotLocked(const SnapshotKey &key)
{
    const auto it = snapshots_.find(key);
    if (it == snapshots_.end())
        return;
    const ScheduleSnapshot &snap = *it->second.snapshot;
    const std::size_t bytes = snap.approxBytes();
    snapshotBytes_ -= bytes > snapshotBytes_ ? snapshotBytes_ : bytes;

    const ProbeKey probe{key.configDigest, key.seed, key.hasSeed};
    const auto index_it = prefixIndex_.find(probe);
    if (index_it != prefixIndex_.end()) {
        const auto len_it = index_it->second.find(snap.inputPrefixGates);
        if (len_it != index_it->second.end() && --len_it->second <= 0)
            index_it->second.erase(len_it);
        if (index_it->second.empty())
            prefixIndex_.erase(index_it);
    }

    snapshotLru_.erase(it->second.lruIt);
    snapshots_.erase(it);
}

CompileService::CacheStats
CompileService::cacheStats() const
{
    CacheStats stats;
    stats.resultHits = cacheHits_.load();
    stats.resultMisses = jobsExecuted_.load();
    stats.resultEvictions = resultEvictions_.load();
    stats.snapshotHits = snapshotHits_.load();
    stats.snapshotMisses = snapshotMisses_.load();
    stats.snapshotEvictions = snapshotEvictions_.load();
    stats.deltaResumes = deltaResumes_.load();
    stats.deltaFallbacks = deltaFallbacks_.load();
    {
        std::lock_guard<std::mutex> lock(cacheMutex_);
        stats.snapshotCount = snapshots_.size();
        stats.snapshotBytes = snapshotBytes_;
    }
    return stats;
}

} // namespace mussti
