#include "core/compile_service.h"

#include <algorithm>
#include <optional>
#include <string>
#include <utility>

#include "common/hash.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "core/scheduler_workspace.h"

namespace mussti {

std::size_t
CompileService::CacheKeyHash::operator()(const CacheKey &key) const
{
    Fnv1a hash;
    hash.update(key.circuitHash);
    hash.update(key.configDigest);
    hash.update(key.seed);
    hash.update(key.hasSeed);
    return static_cast<std::size_t>(hash.digest());
}

CompileService::CompileService(const CompileServiceConfig &config)
    : config_(config)
{
    int threads = config.numThreads;
    if (threads <= 0) {
        threads = static_cast<int>(std::thread::hardware_concurrency());
        threads = std::max(threads, 1);
    }
    workers_.reserve(static_cast<std::size_t>(threads));
    for (int i = 0; i < threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

CompileService::~CompileService()
{
    {
        std::lock_guard<std::mutex> lock(queueMutex_);
        stopping_ = true;
    }
    queueCv_.notify_all();
    for (std::thread &worker : workers_)
        worker.join();
}

std::vector<CompileResult>
CompileService::compileSweep(std::vector<CompileRequest> requests,
                             std::uint64_t base_seed)
{
    for (std::size_t i = 0; i < requests.size(); ++i) {
        if (!requests[i].seed.has_value())
            requests[i].seed = deriveJobSeed(base_seed, i);
    }
    return compileAll(std::move(requests));
}

std::uint64_t
CompileService::deriveJobSeed(std::uint64_t base_seed,
                              std::size_t job_index)
{
    // SplitMix64 over (base, index): statistically independent streams
    // per job, identical across runs and thread counts.
    std::uint64_t x = base_seed + 0x9E3779B97F4A7C15ull *
        (static_cast<std::uint64_t>(job_index) + 1);
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
}

int
CompileService::parseThreadCount(const char *text)
{
    if (text == nullptr || *text == '\0')
        return 0;

    const std::optional<int> value = parseIntStrict(text);
    if (!value.has_value()) {
        warn(std::string("ignoring unparsable thread count `") + text +
             "` (want a positive integer); using hardware concurrency");
        return 0;
    }
    if (*value <= 0) {
        warn(std::string("ignoring non-positive thread count `") + text +
             "`; using hardware concurrency");
        return 0;
    }
    if (*value > kMaxThreads) {
        warn("clamping thread count " + std::to_string(*value) + " to " +
             std::to_string(kMaxThreads));
        return kMaxThreads;
    }
    return *value;
}

std::future<CompileResult>
CompileService::submit(CompileRequest request)
{
    MUSSTI_REQUIRE(request.backend != nullptr,
                   "compile request without a backend");
    Job job{std::move(request), std::promise<CompileResult>{}};
    std::future<CompileResult> future = job.promise.get_future();
    {
        std::lock_guard<std::mutex> lock(queueMutex_);
        MUSSTI_REQUIRE(!stopping_,
                       "submit on a stopping CompileService");
        queue_.push_back(std::move(job));
    }
    queueCv_.notify_one();
    return future;
}

std::vector<CompileResult>
CompileService::compileAll(std::vector<CompileRequest> requests)
{
    std::vector<std::future<CompileResult>> futures;
    futures.reserve(requests.size());
    for (CompileRequest &request : requests)
        futures.push_back(submit(std::move(request)));

    std::vector<CompileResult> results;
    results.reserve(futures.size());
    for (std::future<CompileResult> &future : futures)
        results.push_back(future.get());
    return results;
}

void
CompileService::workerLoop()
{
    for (;;) {
        std::optional<Job> job;
        {
            std::unique_lock<std::mutex> lock(queueMutex_);
            queueCv_.wait(lock, [this] {
                return stopping_ || !queue_.empty();
            });
            if (queue_.empty())
                return; // stopping_ and fully drained
            job.emplace(std::move(queue_.front()));
            queue_.pop_front();
        }
        execute(std::move(*job));
    }
}

void
CompileService::execute(Job job)
{
    try {
        CacheKey key;
        key.circuitHash = job.request.circuit.contentHash();
        key.configDigest = job.request.backend->configDigest();
        key.hasSeed = job.request.seed.has_value();
        key.seed = job.request.seed.value_or(0);

        if (config_.cacheCapacity > 0) {
            if (auto cached = cacheLookup(key)) {
                cacheHits_.fetch_add(1);
                job.promise.set_value(std::move(*cached));
                return;
            }
        }

        // One scheduler arena per worker thread: consecutive jobs on a
        // worker reuse warm buffers (a pure allocation cache — results
        // are bit-identical, pinned by test_compile_service/
        // test_scheduler_workspace). Thread-local rather than per-
        // service so the arena survives as long as the worker does.
        thread_local auto workspace =
            std::make_shared<SchedulerWorkspace>();

        const CompileResult result =
            job.request.seed
                ? job.request.backend->compileSeeded(
                      std::move(job.request.circuit), *job.request.seed,
                      workspace)
                : job.request.backend->compile(
                      std::move(job.request.circuit), workspace);
        jobsExecuted_.fetch_add(1);

        if (config_.cacheCapacity > 0)
            cacheStore(key, result);
        job.promise.set_value(result);
    } catch (...) {
        job.promise.set_exception(std::current_exception());
    }
}

std::optional<CompileResult>
CompileService::cacheLookup(const CacheKey &key)
{
    std::lock_guard<std::mutex> lock(cacheMutex_);
    const auto it = cache_.find(key);
    if (it == cache_.end())
        return std::nullopt;
    // Refresh recency.
    lruOrder_.splice(lruOrder_.begin(), lruOrder_, it->second.second);
    return it->second.first;
}

void
CompileService::cacheStore(const CacheKey &key,
                           const CompileResult &result)
{
    std::lock_guard<std::mutex> lock(cacheMutex_);
    if (cache_.find(key) != cache_.end())
        return; // A concurrent identical job already stored it.
    while (cache_.size() >= config_.cacheCapacity && !lruOrder_.empty()) {
        cache_.erase(lruOrder_.back());
        lruOrder_.pop_back();
    }
    lruOrder_.push_front(key);
    cache_.emplace(key, std::make_pair(result, lruOrder_.begin()));
}

} // namespace mussti
