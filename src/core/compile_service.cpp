#include "core/compile_service.h"

#include <algorithm>
#include <optional>
#include <string>
#include <utility>

#include "common/fault_injection.h"
#include "common/hash.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "core/scheduler_workspace.h"

namespace mussti {

namespace {

CompileOutcome
cancelledOutcome(const std::string &message)
{
    CompileOutcome outcome;
    outcome.error = MusstiError(ErrorCategory::Cancelled, "job.cancelled",
                                message);
    return outcome;
}

} // namespace

const CompileResult &
CompileOutcome::value() const
{
    if (!result.has_value())
        errorInfo().raise();
    return *result;
}

CompileResult
CompileOutcome::take()
{
    if (!result.has_value())
        errorInfo().raise();
    return std::move(*result);
}

const MusstiError &
CompileOutcome::errorInfo() const
{
    MUSSTI_ASSERT(error.has_value(),
                  "CompileOutcome carries neither result nor error");
    return *error;
}

std::size_t
CompileService::SnapshotKeyHash::operator()(const SnapshotKey &key) const
{
    Fnv1a hash;
    hash.update(key.prefixHash);
    hash.update(key.configDigest);
    hash.update(key.seed);
    hash.update(key.hasSeed);
    return static_cast<std::size_t>(hash.digest());
}

std::size_t
CompileService::ProbeKeyHash::operator()(const ProbeKey &key) const
{
    Fnv1a hash;
    hash.update(key.configDigest);
    hash.update(key.seed);
    hash.update(key.hasSeed);
    return static_cast<std::size_t>(hash.digest());
}

CompileService::CompileService(const CompileServiceConfig &config)
    : config_(config)
{
    if (config.cacheCapacity > 0)
        resultTiers_.push_back(
            std::make_unique<MemoryResultCache>(config.cacheCapacity));
    if (!config.diskCachePath.empty())
        resultTiers_.push_back(std::make_unique<DiskResultCache>(
            config.diskCachePath, config.diskCacheCapacity));

    int threads = config.numThreads;
    if (threads <= 0) {
        threads = static_cast<int>(std::thread::hardware_concurrency());
        threads = std::max(threads, 1);
    }
    workers_.reserve(static_cast<std::size_t>(threads));
    for (int i = 0; i < threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

CompileService::~CompileService()
{
    shutdown();
}

void
CompileService::shutdown()
{
    std::deque<Job> orphaned;
    {
        std::lock_guard<std::mutex> lock(queueMutex_);
        if (stopping_) {
            // Already shut down (or shutting down on another thread
            // that owns the join below); nothing left to drain.
            return;
        }
        stopping_ = true;
        shutdownFlag_.store(true, std::memory_order_relaxed);
        orphaned.swap(queue_);
    }
    queueCv_.notify_all();
    for (std::thread &worker : workers_)
        worker.join();
    workers_.clear();

    // Queued-but-never-started jobs resolve Cancelled — a shutdown must
    // not abandon promises (a waiter would deadlock on a
    // broken_promise-free future) nor silently run work nobody awaits.
    for (Job &job : orphaned)
        deliver(std::move(job),
                cancelledOutcome("compile service shut down before the "
                                 "job started"));
}

std::vector<CompileResult>
CompileService::compileSweep(std::vector<CompileRequest> requests,
                             std::uint64_t base_seed)
{
    for (std::size_t i = 0; i < requests.size(); ++i) {
        if (!requests[i].seed.has_value())
            requests[i].seed = deriveJobSeed(base_seed, i);
    }
    return compileAll(std::move(requests));
}

std::vector<CompileOutcome>
CompileService::compileSweepOutcomes(std::vector<CompileRequest> requests,
                                     std::uint64_t base_seed)
{
    for (std::size_t i = 0; i < requests.size(); ++i) {
        if (!requests[i].seed.has_value())
            requests[i].seed = deriveJobSeed(base_seed, i);
    }
    return compileAllOutcomes(std::move(requests));
}

std::uint64_t
CompileService::deriveJobSeed(std::uint64_t base_seed,
                              std::size_t job_index)
{
    // SplitMix64 over (base, index): statistically independent streams
    // per job, identical across runs and thread counts.
    std::uint64_t x = base_seed + 0x9E3779B97F4A7C15ull *
        (static_cast<std::uint64_t>(job_index) + 1);
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
}

int
CompileService::parseThreadCount(const char *text)
{
    return parseEnvThreadCount("MUSSTI_BENCH_THREADS", text, kMaxThreads);
}

std::future<CompileResult>
CompileService::submit(CompileRequest request)
{
    MUSSTI_REQUIRE(request.backend != nullptr,
                   "compile request without a backend");
    Job job{std::move(request), {}, {}, false, {}};
    std::future<CompileResult> future = job.promise.get_future();
    enqueueOrCancel(std::move(job));
    return future;
}

std::future<CompileOutcome>
CompileService::submitOutcome(CompileRequest request)
{
    Job job{std::move(request), {}, {}, true, {}};
    std::future<CompileOutcome> future = job.outcomePromise.get_future();
    if (job.request.backend == nullptr) {
        CompileOutcome outcome;
        outcome.error = MusstiError(ErrorCategory::InvalidInput,
                                    "input.no-backend",
                                    "compile request without a backend");
        deliver(std::move(job), std::move(outcome));
        return future;
    }
    enqueueOrCancel(std::move(job));
    return future;
}

void
CompileService::submitWithCallback(CompileRequest request,
                                   std::function<void(CompileOutcome)> done)
{
    MUSSTI_REQUIRE(done != nullptr,
                   "submitWithCallback without a callback");
    Job job{std::move(request), {}, {}, true, std::move(done)};
    if (job.request.backend == nullptr) {
        CompileOutcome outcome;
        outcome.error = MusstiError(ErrorCategory::InvalidInput,
                                    "input.no-backend",
                                    "compile request without a backend");
        deliver(std::move(job), std::move(outcome));
        return;
    }
    enqueueOrCancel(std::move(job));
}

void
CompileService::enqueueOrCancel(Job job)
{
    {
        std::lock_guard<std::mutex> lock(queueMutex_);
        if (!stopping_) {
            queue_.push_back(std::move(job));
            queueCv_.notify_one();
            return;
        }
    }
    // Submit after shutdown: resolve immediately instead of racing the
    // worker teardown — the caller gets a ready Cancelled outcome (or
    // a future that throws it, on the legacy path).
    deliver(std::move(job),
            cancelledOutcome("submit after compile service shutdown"));
}

std::vector<CompileResult>
CompileService::compileAll(std::vector<CompileRequest> requests)
{
    std::vector<std::future<CompileResult>> futures;
    futures.reserve(requests.size());
    for (CompileRequest &request : requests)
        futures.push_back(submit(std::move(request)));

    std::vector<CompileResult> results;
    results.reserve(futures.size());
    for (std::future<CompileResult> &future : futures)
        results.push_back(future.get());
    return results;
}

std::vector<CompileOutcome>
CompileService::compileAllOutcomes(std::vector<CompileRequest> requests)
{
    std::vector<std::future<CompileOutcome>> futures;
    futures.reserve(requests.size());
    for (CompileRequest &request : requests)
        futures.push_back(submitOutcome(std::move(request)));

    std::vector<CompileOutcome> outcomes;
    outcomes.reserve(futures.size());
    for (std::future<CompileOutcome> &future : futures)
        outcomes.push_back(future.get());
    return outcomes;
}

void
CompileService::workerLoop()
{
    for (;;) {
        std::optional<Job> job;
        {
            std::unique_lock<std::mutex> lock(queueMutex_);
            queueCv_.wait(lock, [this] {
                return stopping_ || !queue_.empty();
            });
            if (stopping_)
                return; // shutdown() drains what is left of the queue
            job.emplace(std::move(queue_.front()));
            queue_.pop_front();
        }
        execute(std::move(*job));
    }
}

void
CompileService::execute(Job job)
{
    CompileOutcome outcome = runJob(job.request);
    deliver(std::move(job), std::move(outcome));
}

CompileOutcome
CompileService::runJob(CompileRequest &request)
{
    CompileOutcome outcome;
    const int max_attempts = std::max(1, config_.maxAttempts);
    for (int attempt = 1;; ++attempt) {
        outcome.attempts = attempt;
        try {
            JobControl control;
            control.deadline = request.deadline;
            control.cancel = request.cancel.get();
            control.shutdown = &shutdownFlag_;
            // A job whose deadline already passed (or whose token fired
            // while queued) resolves without compiling anything.
            control.checkpoint();
            FaultInjector::maybeThrow(FaultSite::WorkerDequeue);

            CacheKey key;
            key.circuitHash = request.circuit.contentHash();
            key.configDigest = request.backend->configDigest();
            key.hasSeed = request.seed.has_value();
            key.seed = request.seed.value_or(0);

            if (!resultTiers_.empty()) {
                if (auto cached = cacheLookup(key)) {
                    cacheHits_.fetch_add(1);
                    outcome.result = std::move(*cached);
                    outcome.error.reset();
                    return outcome;
                }
            }

            // One scheduler arena per worker thread: consecutive jobs
            // on a worker reuse warm buffers (a pure allocation cache —
            // results are bit-identical, pinned by test_compile_service
            // / test_scheduler_workspace). Thread-local rather than
            // per-service so the arena survives as long as the worker.
            thread_local auto workspace =
                std::make_shared<SchedulerWorkspace>();

            // Retries need the circuit again, so only the last allowed
            // attempt may consume it.
            Circuit circuit = attempt < max_attempts
                                  ? request.circuit
                                  : std::move(request.circuit);
            CompileResult result = compileOnce(request, std::move(circuit),
                                               key, workspace, control);
            jobsExecuted_.fetch_add(1);

            // A failed job never reaches this store — the result tiers
            // only ever hold compiles that completed.
            if (!resultTiers_.empty() &&
                !FaultInjector::fires(FaultSite::CacheStore))
                cacheStore(key, result);
            outcome.result = std::move(result);
            outcome.error.reset();
            return outcome;
        } catch (...) {
            outcome.result.reset();
            outcome.error = describeCurrentException();
            if (outcome.error->category() != ErrorCategory::Transient ||
                attempt >= max_attempts)
                return outcome;
            if (!backoffBeforeRetry(request, attempt))
                return outcome;
        }
    }
}

CompileResult
CompileService::compileOnce(
    const CompileRequest &request, Circuit circuit, const CacheKey &key,
    const std::shared_ptr<SchedulerWorkspace> &workspace,
    const JobControl &control)
{
    DeltaCompileIO delta;
    const bool tier_on =
        config_.snapshotCacheCapacity > 0 &&
        !deltaQuarantined_.load(std::memory_order_relaxed);
    delta.allowCapture = tier_on;
    if (tier_on)
        delta.candidates = probeSnapshots(key, circuit);
    const bool had_candidates = !delta.candidates.empty();

    CompileResult compiled = request.backend->compileControlled(
        std::move(circuit), request.seed, workspace, delta, &control);

    if (tier_on) {
        if (delta.resumed) {
            deltaResumes_.fetch_add(1);
            deltaFallbackStreak_.store(0, std::memory_order_relaxed);
        } else if (had_candidates) {
            deltaFallbacks_.fetch_add(1);
            noteDeltaFallback();
        }
        // Snapshots are only banked here, after the compile finished:
        // a job that failed mid-run contributes nothing to the tier.
        // Re-read the quarantine flag — if THIS job's fallback tripped
        // it, its captures must not repopulate the tier just cleared.
        if (!deltaQuarantined_.load(std::memory_order_relaxed) &&
            !FaultInjector::fires(FaultSite::CacheStore))
            storeSnapshots(key, std::move(delta.captured));
    }
    return compiled;
}

bool
CompileService::backoffBeforeRetry(const CompileRequest &request,
                                   int attempt) const
{
    if (shutdownFlag_.load(std::memory_order_relaxed))
        return false;
    if (request.cancel != nullptr &&
        request.cancel->load(std::memory_order_relaxed))
        return false;

    long long us = std::max<long long>(0, config_.retryBackoffBaseUs);
    for (int i = 1; i < attempt && us < config_.retryBackoffMaxUs; ++i)
        us *= 2;
    us = std::min(us, std::max<long long>(0, config_.retryBackoffMaxUs));

    if (request.deadline.has_value()) {
        const auto wake = std::chrono::steady_clock::now() +
                          std::chrono::microseconds(us);
        if (wake >= *request.deadline)
            return false; // The retry would start already timed out.
    }
    if (us > 0)
        std::this_thread::sleep_for(std::chrono::microseconds(us));
    return true;
}

void
CompileService::noteDeltaFallback()
{
    const int threshold = config_.deltaQuarantineThreshold;
    if (threshold <= 0)
        return;
    const int streak =
        deltaFallbackStreak_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (streak < threshold)
        return;
    if (deltaQuarantined_.exchange(true, std::memory_order_relaxed))
        return;
    deltaQuarantines_.fetch_add(1);
    {
        std::lock_guard<std::mutex> lock(cacheMutex_);
        snapshots_.clear();
        snapshotLru_.clear();
        prefixIndex_.clear();
        snapshotBytes_ = 0;
    }
    warn("delta snapshot tier quarantined after " +
         std::to_string(streak) +
         " consecutive resume fallbacks; compiling cold from here on");
}

void
CompileService::deliver(Job job, CompileOutcome outcome)
{
    if (outcome.attempts > 1)
        jobsRetried_.fetch_add(
            static_cast<std::uint64_t>(outcome.attempts - 1));
    if (!outcome.ok() && outcome.error.has_value()) {
        switch (outcome.error->category()) {
          case ErrorCategory::Timeout:
            jobsTimedOut_.fetch_add(1);
            break;
          case ErrorCategory::Cancelled:
            jobsCancelled_.fetch_add(1);
            break;
          default:
            jobsFailed_.fetch_add(1);
            break;
        }
    }

    if (job.callback) {
        job.callback(std::move(outcome));
        return;
    }
    if (job.tolerant) {
        job.outcomePromise.set_value(std::move(outcome));
        return;
    }
    if (outcome.ok())
        job.promise.set_value(std::move(*outcome.result));
    else
        job.promise.set_exception(outcome.errorInfo().toExceptionPtr());
}

std::optional<CompileResult>
CompileService::cacheLookup(const CacheKey &key)
{
    for (std::size_t i = 0; i < resultTiers_.size(); ++i) {
        if (auto hit = resultTiers_[i]->lookup(key)) {
            // Promote into the faster tiers the walk passed, so e.g. a
            // disk hit after a restart is memory-speed from now on.
            for (std::size_t j = 0; j < i; ++j)
                resultTiers_[j]->store(key, *hit);
            return hit;
        }
    }
    return std::nullopt;
}

void
CompileService::cacheStore(const CacheKey &key,
                           const CompileResult &result)
{
    for (auto &tier : resultTiers_)
        tier->store(key, result);
}

std::vector<std::shared_ptr<const ScheduleSnapshot>>
CompileService::probeSnapshots(const CacheKey &key, const Circuit &circuit)
{
    std::vector<std::shared_ptr<const ScheduleSnapshot>> found;
    std::lock_guard<std::mutex> lock(cacheMutex_);

    const ProbeKey probe{key.configDigest, key.seed, key.hasSeed};
    const auto index_it = prefixIndex_.find(probe);
    if (index_it != prefixIndex_.end()) {
        // Walk the cached prefix lengths longest-first — the longer
        // the verified prefix, the less suffix the scheduler replays —
        // and stop once enough candidates are in hand.
        const auto &lengths = index_it->second;
        for (auto it = lengths.rbegin();
             it != lengths.rend() && found.size() < kMaxResumeCandidates;
             ++it) {
            const std::size_t prefix_gates = it->first;
            if (prefix_gates == 0 || prefix_gates > circuit.size())
                continue;
            SnapshotKey skey{circuit.prefixHash(prefix_gates),
                             key.configDigest, key.seed, key.hasSeed};
            const auto snap_it = snapshots_.find(skey);
            if (snap_it == snapshots_.end())
                continue;
            snapshotLru_.splice(snapshotLru_.begin(), snapshotLru_,
                                snap_it->second.lruIt);
            found.push_back(snap_it->second.snapshot);
        }
    }

    if (found.empty())
        snapshotMisses_.fetch_add(1);
    else
        snapshotHits_.fetch_add(1);

    // The scheduler wants candidates ascending by covered prefix.
    std::reverse(found.begin(), found.end());
    return found;
}

void
CompileService::storeSnapshots(const CacheKey &key,
                               std::vector<ScheduleSnapshot> captured)
{
    if (captured.empty())
        return;
    std::lock_guard<std::mutex> lock(cacheMutex_);
    for (ScheduleSnapshot &snap : captured) {
        if (snap.inputPrefixGates == 0)
            continue;
        SnapshotKey skey{snap.prefixHash, key.configDigest, key.seed,
                         key.hasSeed};
        const auto it = snapshots_.find(skey);
        if (it != snapshots_.end()) {
            // Deterministic compiles recapture identical checkpoints;
            // keep the incumbent, just refresh its recency.
            snapshotLru_.splice(snapshotLru_.begin(), snapshotLru_,
                                it->second.lruIt);
            continue;
        }

        snapshotBytes_ += snap.approxBytes();
        prefixIndex_[{key.configDigest, key.seed, key.hasSeed}]
                    [snap.inputPrefixGates] += 1;
        snapshotLru_.push_front(skey);
        snapshots_.emplace(
            skey,
            SnapshotEntry{std::make_shared<const ScheduleSnapshot>(
                              std::move(snap)),
                          snapshotLru_.begin()});

        while (snapshots_.size() > config_.snapshotCacheCapacity &&
               !snapshotLru_.empty()) {
            evictSnapshotLocked(snapshotLru_.back());
            snapshotEvictions_.fetch_add(1);
        }
    }
}

void
CompileService::evictSnapshotLocked(const SnapshotKey &key)
{
    const auto it = snapshots_.find(key);
    if (it == snapshots_.end())
        return;
    const ScheduleSnapshot &snap = *it->second.snapshot;
    const std::size_t bytes = snap.approxBytes();
    snapshotBytes_ -= bytes > snapshotBytes_ ? snapshotBytes_ : bytes;

    const ProbeKey probe{key.configDigest, key.seed, key.hasSeed};
    const auto index_it = prefixIndex_.find(probe);
    if (index_it != prefixIndex_.end()) {
        const auto len_it = index_it->second.find(snap.inputPrefixGates);
        if (len_it != index_it->second.end() && --len_it->second <= 0)
            index_it->second.erase(len_it);
        if (index_it->second.empty())
            prefixIndex_.erase(index_it);
    }

    snapshotLru_.erase(it->second.lruIt);
    snapshots_.erase(it);
}

CompileService::CacheStats
CompileService::cacheStats() const
{
    CacheStats stats;
    stats.resultHits = cacheHits_.load();
    stats.resultMisses = jobsExecuted_.load();
    for (const auto &tier : resultTiers_) {
        if (std::string(tier->name()) == "memory")
            stats.memoryTier = tier->stats();
        else if (std::string(tier->name()) == "disk")
            stats.diskTier = tier->stats();
    }
    stats.resultEvictions = stats.memoryTier.evictions;
    stats.snapshotHits = snapshotHits_.load();
    stats.snapshotMisses = snapshotMisses_.load();
    stats.snapshotEvictions = snapshotEvictions_.load();
    stats.deltaResumes = deltaResumes_.load();
    stats.deltaFallbacks = deltaFallbacks_.load();
    stats.jobsFailed = jobsFailed_.load();
    stats.jobsTimedOut = jobsTimedOut_.load();
    stats.jobsCancelled = jobsCancelled_.load();
    stats.jobsRetried = jobsRetried_.load();
    stats.deltaQuarantines = deltaQuarantines_.load();
    stats.deltaQuarantined =
        deltaQuarantined_.load(std::memory_order_relaxed);
    {
        std::lock_guard<std::mutex> lock(cacheMutex_);
        stats.snapshotCount = snapshots_.size();
        stats.snapshotBytes = snapshotBytes_;
    }
    return stats;
}

} // namespace mussti
