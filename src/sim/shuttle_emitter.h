/**
 * @file
 * Emits the physical op sequence of a shuttle relocation and keeps the
 * placement consistent with the emitted stream. Shared by the MUSS-TI
 * scheduler and all baseline compilers so every strategy is costed by
 * identical physics.
 */
#ifndef MUSSTI_SIM_SHUTTLE_EMITTER_H
#define MUSSTI_SIM_SHUTTLE_EMITTER_H

#include <vector>

#include "arch/placement.h"
#include "arch/zone.h"
#include "sim/params.h"
#include "sim/schedule.h"

namespace mussti {

class TargetDevice; // arch/target_device.h

/**
 * Stateless helper bound to one (zones, params, placement, schedule)
 * tuple. One relocate() call = IonSwap* Split Move Merge.
 */
class ShuttleEmitter
{
  public:
    ShuttleEmitter(const std::vector<ZoneInfo> &zones,
                   const PhysicalParams &params,
                   Placement &placement, Schedule &schedule)
        : zones_(zones), params_(params), placement_(placement),
          schedule_(schedule)
    {}

    /** Bind to any TargetDevice's zones (device must outlive this). */
    ShuttleEmitter(const TargetDevice &device, const PhysicalParams &params,
                   Placement &placement, Schedule &schedule);

    /**
     * Relocate a qubit to `to_zone`. `distance_um` < 0 derives the
     * distance from the two zones' intra-module positions. The ion exits
     * through its cheaper chain edge and enters the edge of the target
     * chain facing the source. Returns the number of emitted IonSwaps.
     */
    int relocate(int qubit, int to_zone, double distance_um = -1.0);

    /**
     * Cost preview of relocate() without emitting: extraction swaps and
     * total duration.
     */
    double relocationTimeUs(int qubit, int to_zone,
                            double distance_um = -1.0) const;

  private:
    const std::vector<ZoneInfo> &zones_;
    const PhysicalParams &params_;
    Placement &placement_;
    Schedule &schedule_;
};

} // namespace mussti

#endif // MUSSTI_SIM_SHUTTLE_EMITTER_H
