/**
 * @file
 * Resource-aware timing model.
 *
 * The paper reports serial execution time (the op-duration sum), which
 * Schedule::serialDurationUs() provides. Real devices overlap work in
 * disjoint zones: this module computes a parallel makespan by tracking
 * per-qubit and per-zone availability, giving a lower-bound execution
 * time for the same op stream. The parallelism ablation bench compares
 * the two.
 */
#ifndef MUSSTI_SIM_TIMELINE_H
#define MUSSTI_SIM_TIMELINE_H

#include <vector>

#include "arch/zone.h"
#include "sim/schedule.h"

namespace mussti {

class TargetDevice; // arch/target_device.h

/** Timing results of a replay. */
struct TimelineResult
{
    double makespanUs = 0.0;     ///< Parallel completion time.
    double serialUs = 0.0;       ///< Op-duration sum (paper's metric).
    double zoneBusyMaxUs = 0.0;  ///< Busiest single zone's busy time.
    double parallelism() const   ///< serial / makespan, >= 1.
    {
        return makespanUs > 0.0 ? serialUs / makespanUs : 1.0;
    }
};

/**
 * Replays a schedule assuming an op may start once its qubits and its
 * zones are free; ops on disjoint resources overlap.
 */
class Timeline
{
  public:
    explicit Timeline(const std::vector<ZoneInfo> &zones)
        : zones_(zones)
    {}

    /** Bind to any TargetDevice's zones (device must outlive this). */
    explicit Timeline(const TargetDevice &device);

    /** Compute the makespan of a schedule over `num_qubits` qubits. */
    TimelineResult replay(const Schedule &schedule, int num_qubits) const;

  private:
    const std::vector<ZoneInfo> &zones_;
};

} // namespace mussti

#endif // MUSSTI_SIM_TIMELINE_H
