#include "sim/shuttle_emitter.h"

#include <algorithm>
#include <cmath>

#include "arch/target_device.h"
#include "common/logging.h"

namespace mussti {

ShuttleEmitter::ShuttleEmitter(const TargetDevice &device,
                               const PhysicalParams &params,
                               Placement &placement, Schedule &schedule)
    : ShuttleEmitter(device.zoneInfos(), params, placement, schedule)
{}

namespace {

double
zoneDistanceUm(const std::vector<ZoneInfo> &zones, int from, int to)
{
    const ZoneInfo &a = zones[from];
    const ZoneInfo &b = zones[to];
    if (a.module == b.module)
        return std::fabs(a.positionUm - b.positionUm);
    // Cross-module physical moves only exist on grid devices, where the
    // caller always supplies an explicit distance.
    panic("implicit distance across modules; pass distance_um");
}

} // namespace

int
ShuttleEmitter::relocate(int qubit, int to_zone, double distance_um)
{
    const int from_zone = placement_.zoneOf(qubit);
    MUSSTI_ASSERT(from_zone >= 0, "relocate of unplaced qubit " << qubit);
    MUSSTI_ASSERT(from_zone != to_zone, "relocate to the same zone");
    MUSSTI_ASSERT(placement_.sizeOf(to_zone) < zones_[to_zone].capacity,
                  "relocate into full zone " << to_zone);

    if (distance_um < 0.0)
        distance_um = zoneDistanceUm(zones_, from_zone, to_zone);

    // Walk the ion to its cheaper chain edge. The chain is scanned once
    // for the starting index; each swap moves the ion exactly one slot
    // toward the exit edge, so the position is tracked arithmetically
    // instead of re-searching the chain per swap.
    const ChainEnd exit_end = placement_.cheaperEnd(qubit);
    const int start_idx = placement_.chainIndex(qubit);
    const int swaps = std::min(start_idx,
                               placement_.sizeOf(from_zone) - 1 -
                                   start_idx);
    int idx = start_idx;
    for (int step = 0; step < swaps; ++step) {
        const auto &ch = placement_.chain(from_zone);
        const int neighbor = exit_end == ChainEnd::Front
            ? ch[idx - 1] : ch[idx + 1];
        ScheduledOp op;
        op.kind = OpKind::IonSwap;
        op.q0 = qubit;
        op.q1 = neighbor;
        op.zoneFrom = from_zone;
        op.zoneTo = from_zone;
        op.durationUs = params_.ionSwapTimeUs;
        op.nbar = params_.ionSwapNbar;
        schedule_.push(op);
        placement_.swapAt(from_zone, idx,
                          exit_end == ChainEnd::Front ? idx - 1 : idx + 1);
        idx += exit_end == ChainEnd::Front ? -1 : 1;
    }

    ScheduledOp split;
    split.kind = OpKind::Split;
    split.q0 = qubit;
    split.zoneFrom = from_zone;
    split.zoneTo = from_zone;
    split.durationUs = params_.splitTimeUs;
    split.nbar = params_.splitNbar;
    schedule_.push(split);
    placement_.removeAtEdge(qubit);

    ScheduledOp move;
    move.kind = OpKind::Move;
    move.q0 = qubit;
    move.zoneFrom = from_zone;
    move.zoneTo = to_zone;
    move.durationUs = params_.moveTimeUs(distance_um);
    move.nbar = params_.moveNbar;
    schedule_.push(move);

    // Enter through the edge facing the source zone.
    const bool from_before = zones_[from_zone].module ==
            zones_[to_zone].module
        ? zones_[from_zone].positionUm <= zones_[to_zone].positionUm
        : from_zone < to_zone;
    ScheduledOp merge;
    merge.kind = OpKind::Merge;
    merge.q0 = qubit;
    merge.zoneFrom = to_zone;
    merge.zoneTo = to_zone;
    merge.durationUs = params_.mergeTimeUs;
    merge.nbar = params_.mergeNbar;
    merge.enterFront = from_before;
    schedule_.push(merge);
    placement_.insert(qubit, to_zone,
                      from_before ? ChainEnd::Front : ChainEnd::Back);
    return swaps;
}

double
ShuttleEmitter::relocationTimeUs(int qubit, int to_zone,
                                 double distance_um) const
{
    const int from_zone = placement_.zoneOf(qubit);
    MUSSTI_ASSERT(from_zone >= 0 && from_zone != to_zone,
                  "invalid relocation preview");
    if (distance_um < 0.0)
        distance_um = zoneDistanceUm(zones_, from_zone, to_zone);
    return placement_.extractionSwaps(qubit) * params_.ionSwapTimeUs +
           params_.splitTimeUs + params_.moveTimeUs(distance_um) +
           params_.mergeTimeUs;
}

} // namespace mussti
