#include "sim/op.h"

#include <sstream>

#include "common/logging.h"

namespace mussti {

const char *
opKindName(OpKind kind)
{
    switch (kind) {
      case OpKind::Split: return "split";
      case OpKind::Move: return "move";
      case OpKind::Merge: return "merge";
      case OpKind::IonSwap: return "ion-swap";
      case OpKind::Gate1Q: return "gate1q";
      case OpKind::Gate2Q: return "gate2q";
      case OpKind::FiberGate: return "fiber-gate";
    }
    panic("unhandled OpKind");
}

bool
ScheduledOp::isShuttlePrimitive() const
{
    return kind == OpKind::Split || kind == OpKind::Move ||
           kind == OpKind::Merge || kind == OpKind::IonSwap;
}

std::string
ScheduledOp::describe() const
{
    std::ostringstream out;
    out << opKindName(kind) << " q" << q0;
    if (q1 >= 0)
        out << ",q" << q1;
    if (zoneFrom >= 0)
        out << " z" << zoneFrom;
    if (zoneTo >= 0 && zoneTo != zoneFrom)
        out << "->z" << zoneTo;
    out << " (" << durationUs << "us)";
    if (inserted)
        out << " [inserted]";
    return out.str();
}

} // namespace mussti
