#include "sim/trace.h"

#include <sstream>

#include "arch/target_device.h"
#include "common/logging.h"

namespace mussti {

std::string
formatSchedule(const Schedule &schedule, const TargetDevice &device,
               int max_ops)
{
    return formatSchedule(schedule, device.zoneInfos(), max_ops);
}

std::string
formatSchedule(const Schedule &schedule,
               const std::vector<ZoneInfo> &zones, int max_ops)
{
    std::ostringstream out;
    auto annotate = [&](int zone) {
        std::ostringstream z;
        if (zone >= 0 && zone < static_cast<int>(zones.size())) {
            z << "z" << zone << "[" << zoneKindName(zones[zone].kind)
              << " m" << zones[zone].module << "]";
        } else {
            z << "z?";
        }
        return z.str();
    };

    int shown = 0;
    for (const ScheduledOp &op : schedule.ops) {
        if (max_ops >= 0 && shown++ >= max_ops) {
            out << "... (" << schedule.ops.size() - shown + 1
                << " more ops)\n";
            break;
        }
        out << opKindName(op.kind) << " q" << op.q0;
        if (op.q1 >= 0)
            out << ",q" << op.q1;
        out << " " << annotate(op.zoneFrom);
        if (op.zoneTo >= 0 && op.zoneTo != op.zoneFrom)
            out << " -> " << annotate(op.zoneTo);
        out << " (" << op.durationUs << "us";
        if (op.nbar > 0.0)
            out << ", nbar " << op.nbar;
        out << ")";
        if (op.inserted)
            out << " [inserted-swap]";
        out << "\n";
    }
    return out.str();
}

std::map<std::string, int>
opHistogram(const Schedule &schedule)
{
    std::map<std::string, int> histogram;
    for (const ScheduledOp &op : schedule.ops)
        ++histogram[opKindName(op.kind)];
    return histogram;
}

std::string
summarizeSchedule(const Schedule &schedule)
{
    const auto histogram = opHistogram(schedule);
    auto count = [&](const char *kind) {
        const auto it = histogram.find(kind);
        return it == histogram.end() ? 0 : it->second;
    };
    std::ostringstream out;
    out << schedule.ops.size() << " ops: " << schedule.shuttleCount
        << " shuttles (" << count("ion-swap") << " chain swaps), "
        << count("gate2q") << " local 2q gates, " << count("fiber-gate")
        << " fiber gates (" << 3 * schedule.insertedSwapGates
        << " from inserted SWAPs), " << count("gate1q") << " 1q gates, "
        << schedule.serialDurationUs() << " us serial";
    return out.str();
}

} // namespace mussti
