/**
 * @file
 * Human-readable schedule traces: the debugging view of a compiled op
 * stream, with zone annotations and per-kind summaries. Used by the
 * CLI driver and tests; kept in the library so downstream users can
 * inspect schedules without writing their own printer.
 */
#ifndef MUSSTI_SIM_TRACE_H
#define MUSSTI_SIM_TRACE_H

#include <map>
#include <string>

#include "arch/zone.h"
#include "sim/schedule.h"

namespace mussti {

class TargetDevice; // arch/target_device.h

/**
 * Render up to `max_ops` ops, one per line, with zone kind/module
 * annotations ("gate2q q3,q7 z1[operation m0] (40us)"). max_ops < 0
 * renders everything.
 */
std::string formatSchedule(const Schedule &schedule,
                           const std::vector<ZoneInfo> &zones,
                           int max_ops = 40);

/** Same, over any TargetDevice's zones. */
std::string formatSchedule(const Schedule &schedule,
                           const TargetDevice &device, int max_ops = 40);

/** Count of ops per kind ("split" -> 12, ...). */
std::map<std::string, int> opHistogram(const Schedule &schedule);

/** One-line summary: "1245 ops: 300 shuttle triples, 900 gates, ...". */
std::string summarizeSchedule(const Schedule &schedule);

} // namespace mussti

#endif // MUSSTI_SIM_TRACE_H
