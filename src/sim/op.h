/**
 * @file
 * The physical operation alphabet a compiled schedule is made of.
 *
 * A shuttle relocation is the triple Split -> Move -> Merge, preceded by
 * zero or more IonSwap ops that walk the ion to a chain edge (Fig 2c).
 * Gates execute inside one zone (Gate1Q, Gate2Q) or across a fiber link
 * between two optical zones (FiberGate).
 */
#ifndef MUSSTI_SIM_OP_H
#define MUSSTI_SIM_OP_H

#include <string>

namespace mussti {

/** Kind of one scheduled physical operation. */
enum class OpKind {
    Split,     ///< Detach an edge ion from a chain (starts a shuttle).
    Move,      ///< Transport a detached ion between zones.
    Merge,     ///< Attach an ion to a chain edge (ends a shuttle).
    IonSwap,   ///< Exchange two adjacent ions inside a chain.
    Gate1Q,    ///< Single-qubit gate in place.
    Gate2Q,    ///< Local two-qubit MS gate inside one gate-capable zone.
    FiberGate, ///< Remote two-qubit gate between two optical zones.
};

/** Readable op name for traces and error messages. */
const char *opKindName(OpKind kind);

/** One scheduled physical operation. */
struct ScheduledOp
{
    OpKind kind = OpKind::Gate1Q;
    int q0 = -1;          ///< Primary qubit.
    int q1 = -1;          ///< Partner qubit (2q/fiber/ion-swap) or -1.
    int zoneFrom = -1;    ///< Source zone (Split/Move), gate zone, or the
                          ///< zone of q0 for FiberGate.
    int zoneTo = -1;      ///< Target zone (Move/Merge) or zone of q1 for
                          ///< FiberGate.
    double durationUs = 0.0;
    double nbar = 0.0;    ///< Motional quanta deposited.
    int circuitGate = -1; ///< Source-circuit gate index for gates, or -1.
    bool inserted = false;///< True for SWAP-insertion gates not present
                          ///< in the input circuit.
    bool enterFront = true; ///< Merge only: which chain edge the ion
                             ///< joins (replay determinism).

    /** True for Split/Move/Merge/IonSwap. */
    bool isShuttlePrimitive() const;

    /** True for Gate1Q/Gate2Q/FiberGate. */
    bool isGate() const { return !isShuttlePrimitive(); }

    /** One-line trace rendering. */
    std::string describe() const;
};

} // namespace mussti

#endif // MUSSTI_SIM_OP_H
