/**
 * @file
 * Physical operation parameters (paper Table 1 and section 4).
 *
 * Times are microseconds; n-bar values are the motional quanta each
 * operation deposits into its trap; the fidelity of a shuttle primitive
 * is F = exp(-t/T1 - k * nbar) (paper Eq. 1), and a gate in zone i is
 * additionally multiplied by the zone background B_i = exp(-k * heat_i)
 * where heat_i accumulates the deposited n-bar.
 */
#ifndef MUSSTI_SIM_PARAMS_H
#define MUSSTI_SIM_PARAMS_H

#include <cstdint>

namespace mussti {

/** Tunable physics; defaults reproduce the paper's Table 1. */
struct PhysicalParams
{
    // Trap primitives.
    double splitTimeUs = 80.0;
    double mergeTimeUs = 80.0;
    double ionSwapTimeUs = 40.0;
    double moveSpeedUmPerUs = 2.0;

    double splitNbar = 1.0;
    double mergeNbar = 1.0;
    double ionSwapNbar = 0.3;
    double moveNbar = 0.1;

    // Gates.
    double gate1qTimeUs = 5.0;
    double gate2qTimeUs = 40.0;
    double fiberGateTimeUs = 200.0;

    double gate1qFidelity = 0.9999;
    double fiberGateFidelity = 0.99;
    /** Two-qubit decay coefficient: F = 1 - epsilon * N^2. */
    double epsilon = 1.0 / 25600.0;

    // Environment.
    double t1Us = 600e6;          ///< Qubit lifetime (~10 minutes).
    double heatingRate = 0.001;   ///< k in Eq. 1.

    // Idealized-regime switches (paper section 5.9).
    bool perfectShuttle = false;  ///< Shuttles deposit no heat.
    bool perfectGate = false;     ///< All 2q gates at fixed 0.9999.
    double perfectGateFidelity = 0.9999;

    /** Fidelity of a local two-qubit MS gate in a trap holding n ions. */
    double twoQubitGateFidelity(int ions_in_trap) const;

    /** Fidelity of one shuttle primitive (Eq. 1). */
    double shuttleFidelity(double time_us, double nbar) const;

    /** Move duration for a shuttle covering the given distance. */
    double moveTimeUs(double distance_um) const;
};

/**
 * Content digest over every field; part of a backend's configDigest so
 * the compile-service cache distinguishes runs under different physics.
 */
std::uint64_t paramsDigest(const PhysicalParams &params);

} // namespace mussti

#endif // MUSSTI_SIM_PARAMS_H
