/**
 * @file
 * Compact multi-objective summary of one compilation — the currency of
 * the device tuner. A sweep over hundreds of (spec x workload) jobs
 * keeps one ScoreCard per job instead of full CompileResults, and the
 * Pareto front is computed over exactly these three objectives:
 *
 *   log10Fidelity  (maximise)  — the paper's figure-of-merit axis,
 *   makespanUs     (minimise)  — schedule execution time,
 *   shuttles       (minimise)  — physical shuttle primitives.
 *
 * Wall-clock compile time rides along for reporting but is never
 * scored: tuning decisions must be deterministic across machines and
 * thread counts.
 */
#ifndef MUSSTI_SIM_SCORE_CARD_H
#define MUSSTI_SIM_SCORE_CARD_H

namespace mussti {

struct CompileResult; // core/pipeline.h

/** The tuner's scoring view of one (or an aggregate of) compilation. */
struct ScoreCard
{
    double log10Fidelity = 0.0; ///< Higher (closer to 0) is better.
    double makespanUs = 0.0;    ///< Lower is better.
    long long shuttles = 0;     ///< Lower is better.
    double compileTimeSec = 0.0; ///< Informational only; never scored.

    /** Element-wise accumulation (aggregate over a workload set). */
    void accumulate(const ScoreCard &other);

    /**
     * Pareto dominance over (log10Fidelity, makespanUs, shuttles): at
     * least as good on every objective, strictly better on one.
     */
    bool dominates(const ScoreCard &other) const;
};

/** Extract the ScoreCard of one compilation. */
ScoreCard scoreCardOf(const CompileResult &result);

} // namespace mussti

#endif // MUSSTI_SIM_SCORE_CARD_H
