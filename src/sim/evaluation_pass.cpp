#include "sim/evaluation_pass.h"

#include "sim/evaluator.h"

namespace mussti {

void
EvaluationPass::run(CompileContext &ctx) const
{
    if (ctx.metricsValid)
        return;
    const Evaluator evaluator(ctx.params);
    ctx.metrics = evaluator.evaluate(ctx.schedule, ctx.zoneInfos());
    ctx.metricsValid = true;
}

} // namespace mussti
