#include "sim/analyzer.h"

#include <algorithm>
#include <numeric>

#include "arch/target_device.h"
#include "common/logging.h"

namespace mussti {

ScheduleReport
analyzeSchedule(const Schedule &schedule, const TargetDevice &device,
                const PhysicalParams &params)
{
    return analyzeSchedule(schedule, device.zoneInfos(), params);
}

std::vector<int>
ScheduleReport::hottestZones() const
{
    std::vector<int> order(zones.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](int a, int b) {
        return zones[a].finalHeat > zones[b].finalHeat;
    });
    return order;
}

ScheduleReport
analyzeSchedule(const Schedule &schedule,
                const std::vector<ZoneInfo> &zone_infos,
                const PhysicalParams &params)
{
    ScheduleReport report;
    report.zones.resize(zone_infos.size());
    std::vector<int> occupancy(zone_infos.size(), 0);

    for (std::size_t z = 0; z < zone_infos.size(); ++z) {
        report.zones[z].kind = zone_infos[z].kind;
        report.zones[z].module = zone_infos[z].module;
        occupancy[z] = static_cast<int>(schedule.initialChains[z].size());
        report.zones[z].peakOccupancy = occupancy[z];
    }

    for (const ScheduledOp &op : schedule.ops) {
        report.serialTimeUs += op.durationUs;
        switch (op.kind) {
          case OpKind::Split:
            ++report.zones[op.zoneFrom].departures;
            if (!params.perfectShuttle)
                report.zones[op.zoneFrom].finalHeat += op.nbar;
            --occupancy[op.zoneFrom];
            break;
          case OpKind::Move:
            if (!params.perfectShuttle)
                report.zones[op.zoneTo].finalHeat += op.nbar;
            break;
          case OpKind::Merge:
            ++report.zones[op.zoneTo].arrivals;
            ++report.totalShuttles;
            if (!params.perfectShuttle)
                report.zones[op.zoneTo].finalHeat += op.nbar;
            ++occupancy[op.zoneTo];
            report.zones[op.zoneTo].peakOccupancy =
                std::max(report.zones[op.zoneTo].peakOccupancy,
                         occupancy[op.zoneTo]);
            break;
          case OpKind::IonSwap:
            ++report.zones[op.zoneFrom].ionSwaps;
            if (!params.perfectShuttle)
                report.zones[op.zoneFrom].finalHeat += op.nbar;
            break;
          case OpKind::Gate1Q:
          case OpKind::Gate2Q:
            if (op.zoneFrom >= 0)
                ++report.zones[op.zoneFrom].gatesExecuted;
            report.localGates += op.kind == OpKind::Gate2Q;
            break;
          case OpKind::FiberGate:
            ++report.zones[op.zoneFrom].gatesExecuted;
            ++report.zones[op.zoneTo].gatesExecuted;
            ++report.fiberGates;
            break;
        }
    }
    return report;
}

} // namespace mussti
