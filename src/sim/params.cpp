#include "sim/params.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace mussti {

double
PhysicalParams::twoQubitGateFidelity(int ions_in_trap) const
{
    MUSSTI_ASSERT(ions_in_trap >= 1, "gate in an empty trap");
    if (perfectGate)
        return perfectGateFidelity;
    const double n = static_cast<double>(ions_in_trap);
    return std::max(0.0, 1.0 - epsilon * n * n);
}

double
PhysicalParams::shuttleFidelity(double time_us, double nbar) const
{
    const double effective_nbar = perfectShuttle ? 0.0 : nbar;
    return std::exp(-time_us / t1Us - heatingRate * effective_nbar);
}

double
PhysicalParams::moveTimeUs(double distance_um) const
{
    MUSSTI_ASSERT(distance_um >= 0.0, "negative move distance");
    return distance_um / moveSpeedUmPerUs;
}

} // namespace mussti
