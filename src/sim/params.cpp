#include "sim/params.h"

#include <algorithm>
#include <cmath>

#include "common/hash.h"
#include "common/logging.h"

namespace mussti {

double
PhysicalParams::twoQubitGateFidelity(int ions_in_trap) const
{
    MUSSTI_ASSERT(ions_in_trap >= 1, "gate in an empty trap");
    if (perfectGate)
        return perfectGateFidelity;
    const double n = static_cast<double>(ions_in_trap);
    return std::max(0.0, 1.0 - epsilon * n * n);
}

double
PhysicalParams::shuttleFidelity(double time_us, double nbar) const
{
    const double effective_nbar = perfectShuttle ? 0.0 : nbar;
    return std::exp(-time_us / t1Us - heatingRate * effective_nbar);
}

double
PhysicalParams::moveTimeUs(double distance_um) const
{
    MUSSTI_ASSERT(distance_um >= 0.0, "negative move distance");
    return distance_um / moveSpeedUmPerUs;
}

std::uint64_t
paramsDigest(const PhysicalParams &params)
{
    Fnv1a hash;
    hash.update(params.splitTimeUs);
    hash.update(params.mergeTimeUs);
    hash.update(params.ionSwapTimeUs);
    hash.update(params.moveSpeedUmPerUs);
    hash.update(params.splitNbar);
    hash.update(params.mergeNbar);
    hash.update(params.ionSwapNbar);
    hash.update(params.moveNbar);
    hash.update(params.gate1qTimeUs);
    hash.update(params.gate2qTimeUs);
    hash.update(params.fiberGateTimeUs);
    hash.update(params.gate1qFidelity);
    hash.update(params.fiberGateFidelity);
    hash.update(params.epsilon);
    hash.update(params.t1Us);
    hash.update(params.heatingRate);
    hash.update(params.perfectShuttle);
    hash.update(params.perfectGate);
    hash.update(params.perfectGateFidelity);
    return hash.digest();
}

} // namespace mussti
