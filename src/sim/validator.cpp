#include "sim/validator.h"

#include <algorithm>
#include <deque>
#include <map>
#include <sstream>

#include "arch/target_device.h"
#include "common/logging.h"
#include "dag/dag.h"

namespace mussti {

ScheduleValidator::ScheduleValidator(const TargetDevice &device)
    : zones_(device.zoneInfos())
{}

namespace {

/** Replayed trap state. */
struct ReplayState
{
    std::vector<std::deque<int>> chains;
    std::vector<int> qubitZone;
    int inFlightQubit = -1;
    int inFlightTarget = -1;
    OpKind lastKind = OpKind::Merge;
};

std::string
describeError(const std::string &what, std::size_t op_index,
              const ScheduledOp &op)
{
    std::ostringstream out;
    out << "op " << op_index << " (" << op.describe() << "): " << what;
    return out.str();
}

} // namespace

ValidationReport
ScheduleValidator::validate(const Schedule &schedule,
                            const Circuit &circuit) const
{
    ValidationReport report;
    auto fail = [&](const std::string &message) {
        report.valid = false;
        if (report.firstError.empty())
            report.firstError = message;
    };

    if (schedule.initialChains.size() != zones_.size()) {
        fail("schedule zone count does not match device");
        return report;
    }

    // --- Replay setup.
    ReplayState st;
    st.chains.resize(schedule.initialChains.size());
    for (std::size_t z = 0; z < schedule.initialChains.size(); ++z)
        st.chains[z].assign(schedule.initialChains[z].begin(),
                            schedule.initialChains[z].end());
    st.qubitZone.assign(circuit.numQubits(), -1);
    for (std::size_t z = 0; z < st.chains.size(); ++z) {
        if (static_cast<int>(st.chains[z].size()) > zones_[z].capacity) {
            fail("initial chain exceeds capacity in zone " +
                 std::to_string(z));
            return report;
        }
        for (int q : st.chains[z]) {
            if (q < 0 || q >= circuit.numQubits()) {
                fail("initial chain has invalid qubit");
                return report;
            }
            if (st.qubitZone[q] >= 0) {
                fail("qubit " + std::to_string(q) + " placed twice");
                return report;
            }
            st.qubitZone[q] = static_cast<int>(z);
        }
    }
    for (int q = 0; q < circuit.numQubits(); ++q) {
        if (st.qubitZone[q] < 0) {
            fail("qubit " + std::to_string(q) + " not initially placed");
            return report;
        }
    }

    // --- DAG coverage bookkeeping (P4).
    DependencyDag dag(circuit);
    std::map<int, DagNodeId> by_circuit_index;
    for (DagNodeId id = 0; id < dag.size(); ++id)
        by_circuit_index[dag.node(id).circuitIndex] = id;

    // --- Inserted-SWAP bookkeeping (P5).
    int inserted_run = 0;
    int inserted_a = -1, inserted_b = -1;

    auto at_edge = [&](int zone, int q) {
        const auto &ch = st.chains[zone];
        return !ch.empty() && (ch.front() == q || ch.back() == q);
    };

    for (std::size_t i = 0; i < schedule.ops.size(); ++i) {
        if (!report.valid)
            break;
        const ScheduledOp &op = schedule.ops[i];

        // In-flight discipline: a Split must be immediately followed by
        // the Move and Merge of the same ion.
        if (st.inFlightQubit >= 0) {
            const bool continues =
                (st.lastKind == OpKind::Split && op.kind == OpKind::Move &&
                 op.q0 == st.inFlightQubit) ||
                (st.lastKind == OpKind::Move && op.kind == OpKind::Merge &&
                 op.q0 == st.inFlightQubit);
            if (!continues) {
                fail(describeError("expected move/merge of in-flight ion",
                                   i, op));
                break;
            }
        }

        // Inserted-gate run tracking.
        if (op.isGate() && op.inserted) {
            const int lo = std::min(op.q0, op.q1);
            const int hi = std::max(op.q0, op.q1);
            if (inserted_run == 0) {
                inserted_a = lo;
                inserted_b = hi;
            } else if (lo != inserted_a || hi != inserted_b) {
                fail(describeError("inserted SWAP gates interleaved across "
                                   "pairs", i, op));
                break;
            }
            ++inserted_run;
        } else if (op.isGate() && inserted_run != 0) {
            fail(describeError("inserted SWAP run interrupted before 3 "
                               "gates", i, op));
            break;
        }

        switch (op.kind) {
          case OpKind::Split: {
            const int zone = st.qubitZone[op.q0];
            if (zone < 0) {
                fail(describeError("split of unplaced qubit", i, op));
                break;
            }
            if (zone != op.zoneFrom) {
                fail(describeError("split zoneFrom mismatch", i, op));
                break;
            }
            if (!at_edge(zone, op.q0)) {
                fail(describeError("split of non-edge ion (P1)", i, op));
                break;
            }
            auto &ch = st.chains[zone];
            if (ch.front() == op.q0)
                ch.pop_front();
            else
                ch.pop_back();
            st.qubitZone[op.q0] = -1;
            st.inFlightQubit = op.q0;
            st.inFlightTarget = -1;
            break;
          }

          case OpKind::Move: {
            if (st.inFlightQubit != op.q0) {
                fail(describeError("move of non-in-flight ion (P1)",
                                   i, op));
                break;
            }
            st.inFlightTarget = op.zoneTo;
            break;
          }

          case OpKind::Merge: {
            if (st.inFlightQubit != op.q0 ||
                st.inFlightTarget != op.zoneTo) {
                fail(describeError("merge without matching move (P1)",
                                   i, op));
                break;
            }
            auto &ch = st.chains[op.zoneTo];
            if (static_cast<int>(ch.size()) >=
                zones_[op.zoneTo].capacity) {
                fail(describeError("merge into full zone (P2)", i, op));
                break;
            }
            if (op.enterFront)
                ch.push_front(op.q0);
            else
                ch.push_back(op.q0);
            st.qubitZone[op.q0] = op.zoneTo;
            st.inFlightQubit = -1;
            st.inFlightTarget = -1;
            break;
          }

          case OpKind::IonSwap: {
            const int zone = st.qubitZone[op.q0];
            if (zone < 0 || zone != st.qubitZone[op.q1]) {
                fail(describeError("ion swap across zones (P1)", i, op));
                break;
            }
            auto &ch = st.chains[zone];
            const auto it0 = std::find(ch.begin(), ch.end(), op.q0);
            const auto it1 = std::find(ch.begin(), ch.end(), op.q1);
            if (it0 == ch.end() || it1 == ch.end() ||
                std::abs(static_cast<int>(it0 - ch.begin()) -
                         static_cast<int>(it1 - ch.begin())) != 1) {
                fail(describeError("ion swap of non-adjacent ions (P1)",
                                   i, op));
                break;
            }
            std::iter_swap(it0, it1);
            break;
          }

          case OpKind::Gate1Q: {
            if (op.q0 < 0 || st.qubitZone[op.q0] < 0) {
                fail(describeError("1q gate on unplaced qubit (P3)",
                                   i, op));
                break;
            }
            break;
          }

          case OpKind::Gate2Q: {
            const int za = st.qubitZone[op.q0];
            const int zb = st.qubitZone[op.q1];
            if (za < 0 || za != zb) {
                fail(describeError("2q gate on non-co-located qubits "
                                   "(P3)", i, op));
                break;
            }
            if (!zones_[za].gateCapable()) {
                fail(describeError("2q gate in a storage zone (P3)",
                                   i, op));
                break;
            }
            if (op.zoneFrom != za) {
                fail(describeError("2q gate zone field mismatch", i, op));
                break;
            }
            break;
          }

          case OpKind::FiberGate: {
            const int za = st.qubitZone[op.q0];
            const int zb = st.qubitZone[op.q1];
            if (za < 0 || zb < 0) {
                fail(describeError("fiber gate on unplaced qubit", i, op));
                break;
            }
            if (zones_[za].kind != ZoneKind::Optical ||
                zones_[zb].kind != ZoneKind::Optical ||
                zones_[za].module == zones_[zb].module) {
                fail(describeError("fiber gate outside optical zones of "
                                   "distinct modules (P3)", i, op));
                break;
            }
            if (op.zoneFrom != za || op.zoneTo != zb) {
                fail(describeError("fiber gate zone fields mismatch",
                                   i, op));
                break;
            }
            break;
          }
        }
        if (!report.valid)
            break;

        // P4: circuit coverage in dependency order.
        if ((op.kind == OpKind::Gate2Q || op.kind == OpKind::FiberGate) &&
            !op.inserted) {
            const auto found = by_circuit_index.find(op.circuitGate);
            if (found == by_circuit_index.end()) {
                fail(describeError("gate op does not reference a circuit "
                                   "2q gate (P4)", i, op));
                break;
            }
            const DagNodeId node = found->second;
            const Gate &g = dag.node(node).gate;
            const bool operands_match =
                (g.q0 == op.q0 && g.q1 == op.q1) ||
                (g.q0 == op.q1 && g.q1 == op.q0);
            if (!operands_match) {
                fail(describeError("gate operands disagree with circuit "
                                   "(P4)", i, op));
                break;
            }
            if (!dag.isReady(node)) {
                fail(describeError("gate executed before its dependencies "
                                   "(P4)", i, op));
                break;
            }
            dag.complete(node);
        }

        // P5: a completed triple performs the logical exchange.
        if (inserted_run == 3) {
            std::swap(st.qubitZone[inserted_a], st.qubitZone[inserted_b]);
            auto &chain_a = st.chains[st.qubitZone[inserted_b]];
            auto &chain_b = st.chains[st.qubitZone[inserted_a]];
            // After the zone swap above, inserted_a sits where b's chain
            // entry still says b, and vice versa; patch chain entries.
            std::replace(chain_a.begin(), chain_a.end(), inserted_a,
                         -1000000);
            std::replace(chain_b.begin(), chain_b.end(), inserted_b,
                         inserted_a);
            std::replace(chain_a.begin(), chain_a.end(), -1000000,
                         inserted_b);
            inserted_run = 0;
            inserted_a = inserted_b = -1;
        }

        st.lastKind = op.kind;
    }

    if (report.valid && st.inFlightQubit >= 0)
        fail("schedule ends with an ion in flight");
    if (report.valid && inserted_run != 0)
        fail("schedule ends mid inserted-SWAP triple");
    if (report.valid && !dag.empty())
        fail("schedule does not cover all circuit 2q gates (P4): " +
             std::to_string(dag.remaining()) + " remaining");

    return report;
}

} // namespace mussti
