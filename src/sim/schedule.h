/**
 * @file
 * A compiled schedule: the op stream plus the initial placement snapshot
 * the evaluator and validator replay from.
 */
#ifndef MUSSTI_SIM_SCHEDULE_H
#define MUSSTI_SIM_SCHEDULE_H

#include <vector>

#include "arch/placement.h"
#include "sim/op.h"

namespace mussti {

/**
 * The output of a compiler pass. `initialChains` freezes the starting
 * chain order per zone (index = zone id); replaying `ops` from it
 * reconstructs placement at every point of the schedule.
 */
struct Schedule
{
    std::vector<std::vector<int>> initialChains;
    std::vector<ScheduledOp> ops;

    int shuttleCount = 0;    ///< Completed relocations (per-hop on grids).
    int ionSwapCount = 0;    ///< In-trap reorder swaps.
    int insertedSwapGates = 0; ///< Logical SWAPs added by SWAP insertion.

    /** Append an op, maintaining the counters. */
    void push(const ScheduledOp &op);

    /**
     * Account additional shuttles beyond the Merge count. Grid devices
     * count one shuttle per junction hop (as in the Murali et al.
     * simulator), but a multi-hop relocation is emitted as one physical
     * Split/Move/Merge triple; the extra hops are booked here.
     */
    void addExtraShuttles(int count) { shuttleCount += count; }

    /** Snapshot a placement into initialChains. */
    static std::vector<std::vector<int>>
    snapshotChains(const Placement &placement);

    /** Rebuild a Placement positioned at the schedule start. */
    Placement initialPlacement(int num_qubits) const;

    /** Serial duration: the sum of every op's duration. */
    double serialDurationUs() const;
};

} // namespace mussti

#endif // MUSSTI_SIM_SCHEDULE_H
