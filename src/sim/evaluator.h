/**
 * @file
 * Metric evaluation of a compiled schedule: shuttle count, execution
 * time, and fidelity under the paper's physics (section 4).
 *
 * Fidelity composes three effects:
 *  1. each shuttle primitive contributes exp(-t/T1 - k*nbar)  (Eq. 1);
 *  2. each gate contributes its intrinsic fidelity (1q 0.9999, local 2q
 *     1 - eps*N^2 with N the ions sharing the trap, fiber 0.99);
 *  3. each gate is multiplied by the background of its zone,
 *     B_i = exp(-k * heat_i), with heat_i the n-bar the zone accumulated
 *     from shuttle primitives so far.
 * Everything is accumulated in the log domain (no underflow at 300
 * qubits, unlike the paper's Python pipeline).
 */
#ifndef MUSSTI_SIM_EVALUATOR_H
#define MUSSTI_SIM_EVALUATOR_H

#include <vector>

#include "arch/zone.h"
#include "common/log_fidelity.h"
#include "sim/params.h"
#include "sim/schedule.h"

namespace mussti {

class TargetDevice; // arch/target_device.h

/** Evaluation result for one compiled schedule. */
struct Metrics
{
    int shuttleCount = 0;
    int ionSwapCount = 0;
    int gate1qCount = 0;
    int gate2qCount = 0;
    int fiberGateCount = 0;
    int insertedSwapGates = 0;
    double executionTimeUs = 0.0;  ///< Serial op-duration sum.
    double lnFidelity = 0.0;       ///< ln of the fidelity product.

    // Loss decomposition (each <= 0; they sum to lnFidelity).
    double lnFromShuttleOps = 0.0; ///< Eq.-1 terms of shuttle primitives.
    double lnFromGateIntrinsic = 0.0; ///< 1q/2q(N^2)/fiber intrinsics.
    double lnFromHeatBackground = 0.0; ///< B_i = exp(-k heat) terms.
    double lnFromLifetime = 0.0;   ///< Gate-duration T1 envelope.

    /** Fidelity product (0.0 on double underflow, like the paper). */
    double fidelity() const;
    /** log10 fidelity, the axis used by the paper's figures. */
    double log10Fidelity() const;
};

/** Replays schedules against zone descriptors to produce Metrics. */
class Evaluator
{
  public:
    explicit Evaluator(const PhysicalParams &params) : params_(params) {}

    /**
     * Evaluate a schedule over the device's zones. The schedule's
     * initialChains must cover the zones of `zone_infos`.
     */
    Metrics evaluate(const Schedule &schedule,
                     const std::vector<ZoneInfo> &zone_infos) const;

    /** Same, over any TargetDevice's zones. */
    Metrics evaluate(const Schedule &schedule,
                     const TargetDevice &device) const;

  private:
    PhysicalParams params_;
};

} // namespace mussti

#endif // MUSSTI_SIM_EVALUATOR_H
