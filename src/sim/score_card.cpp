#include "sim/score_card.h"

#include "core/pipeline.h"

namespace mussti {

void
ScoreCard::accumulate(const ScoreCard &other)
{
    log10Fidelity += other.log10Fidelity;
    makespanUs += other.makespanUs;
    shuttles += other.shuttles;
    compileTimeSec += other.compileTimeSec;
}

bool
ScoreCard::dominates(const ScoreCard &other) const
{
    if (log10Fidelity < other.log10Fidelity ||
        makespanUs > other.makespanUs || shuttles > other.shuttles)
        return false;
    return log10Fidelity > other.log10Fidelity ||
           makespanUs < other.makespanUs || shuttles < other.shuttles;
}

ScoreCard
scoreCardOf(const CompileResult &result)
{
    ScoreCard card;
    card.log10Fidelity = result.metrics.log10Fidelity();
    card.makespanUs = result.metrics.executionTimeUs;
    card.shuttles = result.metrics.shuttleCount;
    card.compileTimeSec = result.compileTimeSec;
    return card;
}

} // namespace mussti
