/**
 * @file
 * Schedule analysis: per-zone traffic, heat, occupancy, and gate
 * placement statistics. Used by examples and the extension benches to
 * explain *why* a schedule behaves as it does (which zones are hot,
 * where gates execute, how deep chains get).
 */
#ifndef MUSSTI_SIM_ANALYZER_H
#define MUSSTI_SIM_ANALYZER_H

#include <vector>

#include "arch/zone.h"
#include "sim/params.h"
#include "sim/schedule.h"

namespace mussti {

/** Per-zone aggregate over a schedule replay. */
struct ZoneReport
{
    ZoneKind kind = ZoneKind::Storage;
    int module = 0;
    int arrivals = 0;        ///< Merge ops into the zone.
    int departures = 0;      ///< Split ops out of the zone.
    int ionSwaps = 0;        ///< In-chain reorderings.
    int gatesExecuted = 0;   ///< 1q + 2q + fiber endpoints here.
    double finalHeat = 0.0;  ///< Accumulated n-bar at schedule end.
    int peakOccupancy = 0;   ///< Max simultaneous ions.
};

/** Whole-schedule analysis. */
struct ScheduleReport
{
    std::vector<ZoneReport> zones;
    int totalShuttles = 0;
    int localGates = 0;
    int fiberGates = 0;
    double serialTimeUs = 0.0;

    /** Zones sorted by final heat, hottest first (indices). */
    std::vector<int> hottestZones() const;
};

class TargetDevice; // arch/target_device.h

/** Replays a schedule and aggregates per-zone statistics. */
ScheduleReport analyzeSchedule(const Schedule &schedule,
                               const std::vector<ZoneInfo> &zones,
                               const PhysicalParams &params);

/** Same, over any TargetDevice's zones. */
ScheduleReport analyzeSchedule(const Schedule &schedule,
                               const TargetDevice &device,
                               const PhysicalParams &params);

} // namespace mussti

#endif // MUSSTI_SIM_ANALYZER_H
