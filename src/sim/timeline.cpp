#include "sim/timeline.h"

#include <algorithm>

#include "arch/target_device.h"
#include "common/logging.h"

namespace mussti {

Timeline::Timeline(const TargetDevice &device)
    : zones_(device.zoneInfos())
{}

TimelineResult
Timeline::replay(const Schedule &schedule, int num_qubits) const
{
    TimelineResult result;
    std::vector<double> qubit_free(num_qubits, 0.0);
    std::vector<double> zone_free(zones_.size(), 0.0);
    std::vector<double> zone_busy(zones_.size(), 0.0);

    for (const ScheduledOp &op : schedule.ops) {
        result.serialUs += op.durationUs;

        double start = 0.0;
        auto claim_qubit = [&](int q) {
            if (q >= 0)
                start = std::max(start, qubit_free[q]);
        };
        auto claim_zone = [&](int z) {
            if (z >= 0)
                start = std::max(start, zone_free[z]);
        };
        claim_qubit(op.q0);
        claim_qubit(op.q1);
        claim_zone(op.zoneFrom);
        if (op.zoneTo != op.zoneFrom)
            claim_zone(op.zoneTo);

        const double end = start + op.durationUs;
        if (op.q0 >= 0)
            qubit_free[op.q0] = end;
        if (op.q1 >= 0)
            qubit_free[op.q1] = end;
        if (op.zoneFrom >= 0) {
            zone_free[op.zoneFrom] = end;
            zone_busy[op.zoneFrom] += op.durationUs;
        }
        if (op.zoneTo >= 0 && op.zoneTo != op.zoneFrom) {
            zone_free[op.zoneTo] = end;
            zone_busy[op.zoneTo] += op.durationUs;
        }
        result.makespanUs = std::max(result.makespanUs, end);
    }

    for (double busy : zone_busy)
        result.zoneBusyMaxUs = std::max(result.zoneBusyMaxUs, busy);
    return result;
}

} // namespace mussti
