#include "sim/schedule.h"

#include "common/logging.h"

namespace mussti {

void
Schedule::push(const ScheduledOp &op)
{
    ops.push_back(op);
    if (op.kind == OpKind::Merge)
        ++shuttleCount;
    if (op.kind == OpKind::IonSwap)
        ++ionSwapCount;
}

std::vector<std::vector<int>>
Schedule::snapshotChains(const Placement &placement)
{
    std::vector<std::vector<int>> chains(placement.numZones());
    for (int z = 0; z < placement.numZones(); ++z)
        chains[z].assign(placement.chain(z).begin(),
                         placement.chain(z).end());
    return chains;
}

Placement
Schedule::initialPlacement(int num_qubits) const
{
    Placement placement(num_qubits,
                        static_cast<int>(initialChains.size()));
    for (std::size_t z = 0; z < initialChains.size(); ++z) {
        for (int q : initialChains[z])
            placement.insert(q, static_cast<int>(z), ChainEnd::Back);
    }
    return placement;
}

double
Schedule::serialDurationUs() const
{
    double total = 0.0;
    for (const auto &op : ops)
        total += op.durationUs;
    return total;
}

} // namespace mussti
