/**
 * @file
 * The pipeline stage that evaluates a compiled schedule.
 *
 * Terminal pass of every backend's pipeline: replays the context's
 * schedule against the target device's zones and fills ctx.metrics.
 * A pass that already evaluated (e.g. SABRE candidate selection, which
 * must score both candidates to pick one) sets ctx.metricsValid and this
 * pass becomes a no-op, so the schedule is never scored twice.
 */
#ifndef MUSSTI_SIM_EVALUATION_PASS_H
#define MUSSTI_SIM_EVALUATION_PASS_H

#include "core/pipeline.h"

namespace mussti {

/** Evaluate ctx.schedule into ctx.metrics (skips if already valid). */
class EvaluationPass : public CompilerPass
{
  public:
    const char *name() const override { return "evaluate"; }
    void run(CompileContext &ctx) const override;
};

} // namespace mussti

#endif // MUSSTI_SIM_EVALUATION_PASS_H
