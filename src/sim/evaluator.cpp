#include "sim/evaluator.h"

#include <cmath>

#include "arch/target_device.h"
#include "common/logging.h"

namespace mussti {

Metrics
Evaluator::evaluate(const Schedule &schedule,
                    const TargetDevice &device) const
{
    return evaluate(schedule, device.zoneInfos());
}

double
Metrics::fidelity() const
{
    return std::exp(lnFidelity);
}

double
Metrics::log10Fidelity() const
{
    return lnFidelity * 0.43429448190325176;
}

Metrics
Evaluator::evaluate(const Schedule &schedule,
                    const std::vector<ZoneInfo> &zone_infos) const
{
    MUSSTI_REQUIRE(schedule.initialChains.size() == zone_infos.size(),
                   "schedule zones (" << schedule.initialChains.size()
                   << ") do not match device zones ("
                   << zone_infos.size() << ")");

    Metrics metrics;
    metrics.shuttleCount = schedule.shuttleCount;
    metrics.ionSwapCount = schedule.ionSwapCount;
    metrics.insertedSwapGates = schedule.insertedSwapGates;

    LogFidelity fidelity;
    LogFidelity from_shuttle, from_gate, from_heat;

    // Zone state replay: occupancy for the N^2 gate penalty, heat for
    // the background term.
    std::vector<int> occupancy(zone_infos.size(), 0);
    std::vector<double> heat(zone_infos.size(), 0.0);
    for (std::size_t z = 0; z < zone_infos.size(); ++z)
        occupancy[z] = static_cast<int>(schedule.initialChains[z].size());

    const double k = params_.heatingRate;

    for (const ScheduledOp &op : schedule.ops) {
        metrics.executionTimeUs += op.durationUs;

        switch (op.kind) {
          case OpKind::Split:
          case OpKind::IonSwap:
            from_shuttle.multiply(
                params_.shuttleFidelity(op.durationUs, op.nbar));
            if (!params_.perfectShuttle)
                heat[op.zoneFrom] += op.nbar;
            if (op.kind == OpKind::Split)
                --occupancy[op.zoneFrom];
            break;

          case OpKind::Move:
          case OpKind::Merge:
            from_shuttle.multiply(
                params_.shuttleFidelity(op.durationUs, op.nbar));
            if (!params_.perfectShuttle)
                heat[op.zoneTo] += op.nbar;
            if (op.kind == OpKind::Merge)
                ++occupancy[op.zoneTo];
            break;

          case OpKind::Gate1Q: {
            ++metrics.gate1qCount;
            from_gate.multiply(params_.gate1qFidelity);
            if (op.zoneFrom >= 0)
                from_heat.multiplyLn(-k * heat[op.zoneFrom]);
            break;
          }

          case OpKind::Gate2Q: {
            ++metrics.gate2qCount;
            MUSSTI_ASSERT(op.zoneFrom >= 0, "2q gate without a zone");
            from_gate.multiply(
                params_.twoQubitGateFidelity(occupancy[op.zoneFrom]));
            from_heat.multiplyLn(-k * heat[op.zoneFrom]);
            break;
          }

          case OpKind::FiberGate: {
            ++metrics.fiberGateCount;
            MUSSTI_ASSERT(op.zoneFrom >= 0 && op.zoneTo >= 0,
                          "fiber gate without zones");
            const double f = params_.perfectGate
                ? params_.perfectGateFidelity
                : params_.fiberGateFidelity;
            from_gate.multiply(f);
            from_heat.multiplyLn(-k * (heat[op.zoneFrom] +
                                       heat[op.zoneTo]));
            break;
          }
        }
    }
    fidelity.multiply(from_shuttle);
    fidelity.multiply(from_gate);
    fidelity.multiply(from_heat);
    metrics.lnFromShuttleOps = from_shuttle.ln();
    metrics.lnFromGateIntrinsic = from_gate.ln();
    metrics.lnFromHeatBackground = from_heat.ln();

    // Lifetime decay over the whole serial execution, applied per qubit
    // via the shuttle terms above plus this circuit-level envelope for
    // gate durations (gates also consume lifetime).
    double gate_time = 0.0;
    for (const ScheduledOp &op : schedule.ops) {
        if (op.isGate())
            gate_time += op.durationUs;
    }
    fidelity.multiplyLn(-gate_time / params_.t1Us);
    metrics.lnFromLifetime = -gate_time / params_.t1Us;

    metrics.lnFidelity = fidelity.ln();
    return metrics;
}

} // namespace mussti
