/**
 * @file
 * Schedule validator: proves a compiled schedule is physically legal and
 * logically equivalent to its source circuit. This is the oracle the
 * test suite holds every compiler (MUSS-TI and baselines) against.
 *
 * Checked invariants:
 *  P1  Chain legality: Split removes a chain-edge ion; IonSwap exchanges
 *      adjacent ions; Merge inserts at an edge; Move follows a Split of
 *      the same ion.
 *  P2  Capacity: no zone ever exceeds its capacity.
 *  P3  Gate placement: Gate2Q has both qubits co-resident in one
 *      gate-capable zone; FiberGate couples two optical zones of
 *      different modules with the qubits resident there; Gate1Q acts on
 *      a resident qubit.
 *  P4  Completeness and order: the non-inserted two-qubit gate ops cover
 *      the circuit's two-qubit gates exactly once each, in an order
 *      consistent with the dependency DAG.
 *  P5  SWAP-insertion soundness: inserted gates come in triples on a
 *      fixed qubit pair (a logical SWAP decomposition).
 */
#ifndef MUSSTI_SIM_VALIDATOR_H
#define MUSSTI_SIM_VALIDATOR_H

#include <string>
#include <vector>

#include "arch/zone.h"
#include "circuit/circuit.h"
#include "sim/schedule.h"

namespace mussti {

class TargetDevice; // arch/target_device.h

/** Result of validation: ok() or the first violated invariant. */
struct ValidationReport
{
    bool valid = true;
    std::string firstError;

    explicit operator bool() const { return valid; }
};

/** Stateless validator bound to a device's zone descriptors. */
class ScheduleValidator
{
  public:
    explicit ScheduleValidator(const std::vector<ZoneInfo> &zones)
        : zones_(zones)
    {}

    /** Bind to any TargetDevice's zones (device must outlive this). */
    explicit ScheduleValidator(const TargetDevice &device);

    /** Run all invariants; stops at the first violation. */
    ValidationReport validate(const Schedule &schedule,
                              const Circuit &circuit) const;

  private:
    const std::vector<ZoneInfo> &zones_;
};

} // namespace mussti

#endif // MUSSTI_SIM_VALIDATOR_H
