#include "common/logging.h"

#include <atomic>
#include <cstdlib>
#include <iostream>
#include <mutex>
#include <stdexcept>

namespace mussti {

namespace {

/**
 * Depth of active ScopedFatalSilence guards, process-wide. An atomic
 * (not thread_local) so a probe loop that fans its candidate checks out
 * to worker threads silences the whole burst, and so guard churn from
 * concurrent probes is race-free under TSan.
 */
std::atomic<int> fatal_silence_depth{0};

/**
 * Depth of guards that additionally asked for warn() suppression
 * (ScopedFatalSilence(true)). Kept as a separate counter behind the
 * same discipline so plain guards keep warns audible.
 */
std::atomic<int> warn_silence_depth{0};

/**
 * One mutex in front of the stderr sink: a diagnostic line is emitted
 * as a single locked write, so concurrent warn()/fatal() from the
 * compile-service workers cannot interleave mid-line. Function-local
 * static so the mutex outlives every static-destruction-order caller.
 */
std::mutex &
sinkMutex()
{
    static std::mutex mutex;
    return mutex;
}

void
emitLine(const std::string &line)
{
    const std::lock_guard<std::mutex> lock(sinkMutex());
    std::cerr << line << std::endl;
}

/**
 * Timeout/Cancelled/Transient are expected control-flow outcomes of a
 * managed compile job, not diagnostics — they never echo to stderr.
 */
bool
quietCategory(ErrorCategory category)
{
    return category == ErrorCategory::Timeout ||
           category == ErrorCategory::Cancelled ||
           category == ErrorCategory::Transient;
}

} // namespace

ScopedFatalSilence::ScopedFatalSilence(bool silence_warns)
    : silenceWarns_(silence_warns)
{
    fatal_silence_depth.fetch_add(1, std::memory_order_relaxed);
    if (silenceWarns_)
        warn_silence_depth.fetch_add(1, std::memory_order_relaxed);
}

ScopedFatalSilence::~ScopedFatalSilence()
{
    fatal_silence_depth.fetch_sub(1, std::memory_order_relaxed);
    if (silenceWarns_)
        warn_silence_depth.fetch_sub(1, std::memory_order_relaxed);
}

namespace detail {

void
die(ErrorCategory category, const std::string &code,
    const std::string &message)
{
    const bool is_panic = category == ErrorCategory::Internal;
    const bool silenced = !is_panic &&
        (quietCategory(category) ||
         fatal_silence_depth.load(std::memory_order_relaxed) > 0);
    if (!silenced)
        emitLine(std::string(is_panic ? "panic" : "fatal") + ": " + message);
    // Throwing (rather than abort/exit) keeps death-path behaviour testable
    // from gtest; the what() string carries the diagnostic and the thrown
    // type carries the structured category + code.
    if (is_panic)
        throw MusstiPanic(code, message);
    throw MusstiFault(category, code, message);
}

void
report(LogLevel level, const std::string &message)
{
    if (level == LogLevel::Warn &&
        warn_silence_depth.load(std::memory_order_relaxed) > 0)
        return;
    emitLine(std::string(level == LogLevel::Warn ? "warn" : "info") + ": " +
             message);
}

} // namespace detail
} // namespace mussti
