#include "common/logging.h"

#include <atomic>
#include <cstdlib>
#include <iostream>
#include <mutex>
#include <stdexcept>

namespace mussti {

namespace {

/**
 * Depth of active ScopedFatalSilence guards, process-wide. An atomic
 * (not thread_local) so a probe loop that fans its candidate checks out
 * to worker threads silences the whole burst, and so guard churn from
 * concurrent probes is race-free under TSan.
 */
std::atomic<int> fatal_silence_depth{0};

/**
 * One mutex in front of the stderr sink: a diagnostic line is emitted
 * as a single locked write, so concurrent warn()/fatal() from the
 * compile-service workers cannot interleave mid-line. Function-local
 * static so the mutex outlives every static-destruction-order caller.
 */
std::mutex &
sinkMutex()
{
    static std::mutex mutex;
    return mutex;
}

void
emitLine(const std::string &line)
{
    const std::lock_guard<std::mutex> lock(sinkMutex());
    std::cerr << line << std::endl;
}

} // namespace

ScopedFatalSilence::ScopedFatalSilence()
{
    fatal_silence_depth.fetch_add(1, std::memory_order_relaxed);
}

ScopedFatalSilence::~ScopedFatalSilence()
{
    fatal_silence_depth.fetch_sub(1, std::memory_order_relaxed);
}

namespace detail {

namespace {

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Inform: return "info";
      case LogLevel::Warn: return "warn";
      case LogLevel::Fatal: return "fatal";
      case LogLevel::Panic: return "panic";
    }
    return "?";
}

} // namespace

void
die(LogLevel level, const std::string &where, const std::string &message)
{
    if (level == LogLevel::Panic ||
        fatal_silence_depth.load(std::memory_order_relaxed) == 0)
        emitLine(std::string(levelName(level)) + ": " + where + message);
    // Throwing (rather than abort/exit) keeps death-path behaviour testable
    // from gtest; the what() string carries the diagnostic.
    if (level == LogLevel::Panic)
        throw std::logic_error("panic: " + message);
    throw std::runtime_error("fatal: " + message);
}

void
report(LogLevel level, const std::string &message)
{
    emitLine(std::string(levelName(level)) + ": " + message);
}

} // namespace detail
} // namespace mussti
