#include "common/logging.h"

#include <cstdlib>
#include <iostream>
#include <stdexcept>

namespace mussti {

namespace {

/** Depth of active ScopedFatalSilence guards on this thread. */
thread_local int fatal_silence_depth = 0;

} // namespace

ScopedFatalSilence::ScopedFatalSilence() { ++fatal_silence_depth; }
ScopedFatalSilence::~ScopedFatalSilence() { --fatal_silence_depth; }

namespace detail {

namespace {

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Inform: return "info";
      case LogLevel::Warn: return "warn";
      case LogLevel::Fatal: return "fatal";
      case LogLevel::Panic: return "panic";
    }
    return "?";
}

} // namespace

void
die(LogLevel level, const std::string &where, const std::string &message)
{
    if (level == LogLevel::Panic || fatal_silence_depth == 0)
        std::cerr << levelName(level) << ": " << where << message
                  << std::endl;
    // Throwing (rather than abort/exit) keeps death-path behaviour testable
    // from gtest; the what() string carries the diagnostic.
    if (level == LogLevel::Panic)
        throw std::logic_error("panic: " + message);
    throw std::runtime_error("fatal: " + message);
}

void
report(LogLevel level, const std::string &message)
{
    std::cerr << levelName(level) << ": " << message << std::endl;
}

} // namespace detail
} // namespace mussti
