/**
 * @file
 * Minimal self-contained JSON primitives shared by every emitter and
 * reader in the repo: the bench-results schema (common/bench_json.h),
 * the lint report renderer, and the compile-server wire protocol
 * (src/serve/). No external dependency; the reader is a small
 * recursive-descent parser that fatal()s (not panics) on malformed
 * input — a bad file or frame is a caller error, not a compiler bug.
 */
#ifndef MUSSTI_COMMON_JSON_H
#define MUSSTI_COMMON_JSON_H

#include <string>

namespace mussti {

/**
 * JSON-escape a string for embedding in a double-quoted literal
 * (quotes, backslashes, and control characters; the fields this repo
 * emits are plain ASCII). Shared by the bench writer, the lint report
 * renderer, and the serve framing so escaping never drifts between
 * emitters.
 */
std::string jsonEscape(const std::string &text);

/**
 * Recursive-descent JSON reader, just enough to round-trip the
 * mussti-bench-v1 schema and the compile-server protocol without
 * external dependencies. Methods fatal() with an offset-bearing
 * diagnostic on malformed input. The referenced text must outlive the
 * reader.
 */
class JsonReader
{
  public:
    explicit JsonReader(const std::string &text) : text_(text) {}

    /** Next non-whitespace character without consuming it. */
    char peek();

    /** Consume exactly `c` (after whitespace) or fatal(). */
    void expect(char c);

    /** Consume `c` if it is next; false otherwise. */
    bool consumeIf(char c);

    /** Parse a double-quoted string with escape handling. */
    std::string parseString();

    /** Parse a strict base-10 number (fatal on stod-rejected forms). */
    double parseNumber();

    /** Parse a bare `true`/`false` literal. */
    bool parseBool();

    /** Skip any balanced value (for unknown keys). */
    void skipValue();

    /** True once only trailing whitespace remains. */
    bool atEnd();

  private:
    const std::string &text_;
    std::size_t pos_ = 0;

    void skipWs();
};

} // namespace mussti

#endif // MUSSTI_COMMON_JSON_H
