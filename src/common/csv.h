/**
 * @file
 * CSV and aligned-table writers used by the bench harness to emit both
 * machine-readable rows (for plotting) and the paper-style tables.
 */
#ifndef MUSSTI_COMMON_CSV_H
#define MUSSTI_COMMON_CSV_H

#include <ostream>
#include <string>
#include <vector>

namespace mussti {

/** Writes rows of fields as RFC-4180-ish CSV (quotes fields on demand). */
class CsvWriter
{
  public:
    /** Stream is borrowed; caller keeps it alive for the writer's life. */
    explicit CsvWriter(std::ostream &out) : out_(out) {}

    /** Write a full row; fields containing , or " are quoted. */
    void writeRow(const std::vector<std::string> &fields);

  private:
    std::ostream &out_;
};

/**
 * Collects string cells and prints a column-aligned table, the format in
 * which every bench binary reproduces its paper table/figure.
 */
class TextTable
{
  public:
    /** Set the header row. */
    void setHeader(std::vector<std::string> header);

    /** Append a data row (may be shorter than the header). */
    void addRow(std::vector<std::string> row);

    /** Render with aligned columns and a separator under the header. */
    void print(std::ostream &out) const;

    /** Also emit as CSV for downstream plotting. */
    void printCsv(std::ostream &out) const;

    /** Number of data rows collected so far. */
    std::size_t rowCount() const { return rows_.size(); }

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace mussti

#endif // MUSSTI_COMMON_CSV_H
