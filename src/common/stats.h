/**
 * @file
 * Summary statistics over experiment series (means, geomeans, reductions).
 * Used by the bench harness to print the paper's headline percentages.
 */
#ifndef MUSSTI_COMMON_STATS_H
#define MUSSTI_COMMON_STATS_H

#include <cstddef>
#include <vector>

namespace mussti {

/** Arithmetic mean; 0 for an empty series. */
double mean(const std::vector<double> &values);

/** Geometric mean of positive values; 0 for an empty series. */
double geomean(const std::vector<double> &values);

/** Population standard deviation. */
double stddev(const std::vector<double> &values);

/** Minimum / maximum of a non-empty series. */
double minOf(const std::vector<double> &values);
double maxOf(const std::vector<double> &values);

/**
 * Average relative reduction of `ours` versus `baseline` in percent:
 * mean over i of (baseline_i - ours_i) / baseline_i * 100.
 * Pairs with baseline_i == 0 are skipped.
 */
double averageReductionPercent(const std::vector<double> &baseline,
                               const std::vector<double> &ours);

} // namespace mussti

#endif // MUSSTI_COMMON_STATS_H
