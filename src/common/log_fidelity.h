/**
 * @file
 * Log-domain fidelity accumulator.
 *
 * Circuit fidelity is the product of per-operation fidelities. The paper's
 * Python implementation underflows below ~2.2e-308 and reports zero for the
 * largest circuits (their Fig 6 caption). Accumulating ln(F) keeps every
 * experiment's series finite and exactly reproduces the product where it is
 * representable.
 */
#ifndef MUSSTI_COMMON_LOG_FIDELITY_H
#define MUSSTI_COMMON_LOG_FIDELITY_H

#include <cmath>
#include <limits>

#include "common/logging.h"

namespace mussti {

/** Accumulates a product of fidelities as a sum of natural logs. */
class LogFidelity
{
  public:
    LogFidelity() = default;

    /** Multiply in a fidelity in (0, 1]. A zero factor is terminal. */
    void
    multiply(double fidelity)
    {
        MUSSTI_ASSERT(fidelity >= 0.0 && fidelity <= 1.0 + 1e-12,
                      "fidelity " << fidelity << " outside [0,1]");
        if (fidelity <= 0.0) {
            zero_ = true;
            return;
        }
        lnSum_ += std::log(std::min(fidelity, 1.0));
    }

    /** Multiply in a factor already expressed as ln(F) (<= 0). */
    void
    multiplyLn(double ln_fidelity)
    {
        MUSSTI_ASSERT(ln_fidelity <= 1e-12,
                      "ln-fidelity " << ln_fidelity << " must be <= 0");
        lnSum_ += std::min(ln_fidelity, 0.0);
    }

    /** Combine two accumulators (product of the two underlying products). */
    void
    multiply(const LogFidelity &other)
    {
        zero_ = zero_ || other.zero_;
        lnSum_ += other.lnSum_;
    }

    /** Natural log of the accumulated product (-inf if a factor was 0). */
    double
    ln() const
    {
        return zero_ ? -std::numeric_limits<double>::infinity() : lnSum_;
    }

    /** log10 of the product, the natural axis for the paper's figures. */
    double log10() const { return ln() * 0.43429448190325176; }

    /** The product itself; underflows to 0.0 exactly like the paper. */
    double value() const { return zero_ ? 0.0 : std::exp(lnSum_); }

    /** True if any factor was exactly zero. */
    bool isZero() const { return zero_; }

  private:
    double lnSum_ = 0.0;
    bool zero_ = false;
};

} // namespace mussti

#endif // MUSSTI_COMMON_LOG_FIDELITY_H
