/**
 * @file
 * FNV-1a content hashing for cache keys and config digests.
 *
 * The compile-service result cache keys jobs by (circuit hash, backend
 * config digest, seed); both hashes are built with this accumulator so
 * they are stable across platforms and runs (unlike std::hash).
 */
#ifndef MUSSTI_COMMON_HASH_H
#define MUSSTI_COMMON_HASH_H

#include <cstdint>
#include <cstring>
#include <string>

namespace mussti {

/** Incremental 64-bit FNV-1a hash accumulator. */
class Fnv1a
{
  public:
    Fnv1a() = default;

    /**
     * Resume accumulation from a previously observed digest. FNV-1a has
     * no finalisation step — the running state IS the digest — so
     * `Fnv1a(a.digest())` continued with bytes B equals one accumulator
     * fed A then B. This is what makes a per-gate prefix-hash chain
     * (Circuit::prefixHash) O(1) per appended gate.
     */
    explicit Fnv1a(std::uint64_t resume_state) : hash_(resume_state) {}

    /** Fold `size` raw bytes into the hash. */
    void
    updateBytes(const void *data, std::size_t size)
    {
        const auto *bytes = static_cast<const unsigned char *>(data);
        for (std::size_t i = 0; i < size; ++i) {
            hash_ ^= bytes[i];
            hash_ *= 0x100000001B3ull;
        }
    }

    void
    update(std::uint64_t value)
    {
        updateBytes(&value, sizeof(value));
    }

    void
    update(int value)
    {
        update(static_cast<std::uint64_t>(
            static_cast<std::int64_t>(value)));
    }

    void
    update(bool value)
    {
        update(static_cast<std::uint64_t>(value));
    }

    /** Hash a double by bit pattern (distinguishes -0.0 from +0.0). */
    void
    update(double value)
    {
        std::uint64_t bits = 0;
        std::memcpy(&bits, &value, sizeof(bits));
        update(bits);
    }

    /** Length-prefixed string hash (no concatenation ambiguity). */
    void
    update(const std::string &value)
    {
        update(static_cast<std::uint64_t>(value.size()));
        updateBytes(value.data(), value.size());
    }

    std::uint64_t digest() const { return hash_; }

  private:
    std::uint64_t hash_ = 0xCBF29CE484222325ull;
};

} // namespace mussti

#endif // MUSSTI_COMMON_HASH_H
