#include "common/fault_injection.h"

#include <algorithm>
#include <array>

#include "common/logging.h"

namespace mussti {

namespace {

std::atomic<bool> g_armed{false};

/**
 * Script state, written only by arm()/disarm() (documented to run with
 * no compiles in flight) and read lock-free by the instrumented sites
 * behind the acquire on g_armed.
 */
FaultScript g_script;
std::array<std::vector<FaultTrigger>, kFaultSiteCount> g_triggers_by_site;
std::array<bool, kFaultSiteCount> g_probabilistic_site{};

std::array<std::atomic<std::uint64_t>, kFaultSiteCount> g_visits{};
std::array<std::atomic<std::uint64_t>, kFaultSiteCount> g_fired{};

int
siteIndex(FaultSite site)
{
    return static_cast<int>(site);
}

/** SplitMix64 finalizer — the same mixer deriveJobSeed builds on. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/** Deterministic per-(seed, site, visit) coin flip against probability. */
bool
probabilisticFire(FaultSite site, std::uint64_t visit)
{
    if (g_script.probability <= 0.0 || !g_probabilistic_site[siteIndex(site)])
        return false;
    const std::uint64_t h = mix64(
        g_script.seed ^ mix64(static_cast<std::uint64_t>(siteIndex(site)) ^
                              (visit * 0x2545f4914f6cdd1dULL)));
    // Top 53 bits give a uniform double in [0, 1).
    const double u =
        static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
    return u < g_script.probability;
}

} // namespace

const char *
faultSiteName(FaultSite site)
{
    switch (site) {
      case FaultSite::PassBoundary: return "pass-boundary";
      case FaultSite::SnapshotCapture: return "snapshot-capture";
      case FaultSite::SnapshotResume: return "snapshot-resume";
      case FaultSite::CacheStore: return "cache-store";
      case FaultSite::WorkerDequeue: return "worker-dequeue";
      case FaultSite::TunerProbe: return "tuner-probe";
      case FaultSite::TunerSweep: return "tuner-sweep";
    }
    return "?";
}

void
FaultInjector::arm(FaultScript script)
{
    g_armed.store(false, std::memory_order_release);
    g_script = std::move(script);
    for (auto &list : g_triggers_by_site)
        list.clear();
    for (const FaultTrigger &trigger : g_script.triggers)
        g_triggers_by_site[siteIndex(trigger.site)].push_back(trigger);
    for (auto &list : g_triggers_by_site) {
        std::sort(list.begin(), list.end(),
                  [](const FaultTrigger &a, const FaultTrigger &b) {
                      return a.visit < b.visit;
                  });
    }
    g_probabilistic_site.fill(false);
    for (FaultSite site : g_script.probabilisticSites)
        g_probabilistic_site[siteIndex(site)] = true;
    for (auto &counter : g_visits)
        counter.store(0, std::memory_order_relaxed);
    for (auto &counter : g_fired)
        counter.store(0, std::memory_order_relaxed);
    g_armed.store(true, std::memory_order_release);
}

void
FaultInjector::disarm()
{
    g_armed.store(false, std::memory_order_release);
}

bool
FaultInjector::armed()
{
    return g_armed.load(std::memory_order_relaxed);
}

std::uint64_t
FaultInjector::visitCount(FaultSite site)
{
    return g_visits[siteIndex(site)].load(std::memory_order_relaxed);
}

std::uint64_t
FaultInjector::firedCount(FaultSite site)
{
    return g_fired[siteIndex(site)].load(std::memory_order_relaxed);
}

std::optional<FaultTrigger>
FaultInjector::at(FaultSite site)
{
    if (!g_armed.load(std::memory_order_acquire))
        return std::nullopt;
    const int idx = siteIndex(site);
    const std::uint64_t visit =
        g_visits[idx].fetch_add(1, std::memory_order_relaxed);

    const auto &list = g_triggers_by_site[idx];
    const auto it = std::lower_bound(
        list.begin(), list.end(), visit,
        [](const FaultTrigger &t, std::uint64_t v) { return t.visit < v; });
    if (it != list.end() && it->visit == visit) {
        g_fired[idx].fetch_add(1, std::memory_order_relaxed);
        return *it;
    }
    if (probabilisticFire(site, visit)) {
        g_fired[idx].fetch_add(1, std::memory_order_relaxed);
        FaultTrigger trigger;
        trigger.site = site;
        trigger.visit = visit;
        trigger.category = g_script.probabilisticCategory;
        trigger.code = "fault.injected";
        return trigger;
    }
    return std::nullopt;
}

bool
FaultInjector::fires(FaultSite site)
{
    return at(site).has_value();
}

void
FaultInjector::maybeThrow(FaultSite site)
{
    const std::optional<FaultTrigger> trigger = at(site);
    if (!trigger)
        return;
    raiseError(trigger->category, trigger->code,
               std::string("injected fault at ") + faultSiteName(site));
}

} // namespace mussti
