/**
 * @file
 * Inline-capacity vector for the scheduler/router hot path.
 *
 * A SmallVec<T, N> stores up to N elements inside the object itself and
 * only touches the heap when a call site genuinely exceeds the inline
 * capacity. The routing inner loops (candidate plans, protect sets,
 * eviction scratch) have small, statically known working sets, so with
 * an adequate N their steady state performs zero heap allocations —
 * the property the bench's allocation counter enforces.
 *
 * Deliberately minimal: the subset of std::vector the hot path uses,
 * value types only (elements are copied on growth, no move-only types),
 * no iterator invalidation guarantees beyond vector's.
 */
#ifndef MUSSTI_COMMON_SMALL_VEC_H
#define MUSSTI_COMMON_SMALL_VEC_H

#include <cstddef>
#include <initializer_list>

#include "common/logging.h"

namespace mussti {

template <typename T, int N>
class SmallVec
{
    static_assert(N > 0, "SmallVec needs a positive inline capacity");

  public:
    SmallVec() = default;

    SmallVec(std::initializer_list<T> init)
    {
        for (const T &value : init)
            push_back(value);
    }

    SmallVec(const SmallVec &other) { append(other); }

    SmallVec &
    operator=(const SmallVec &other)
    {
        if (this != &other) {
            clear();
            append(other);
        }
        return *this;
    }

    ~SmallVec() { delete[] heap_; }

    int size() const { return size_; }
    bool empty() const { return size_ == 0; }

    const T *begin() const { return data(); }
    const T *end() const { return data() + size_; }
    T *begin() { return data(); }
    T *end() { return data() + size_; }

    const T &
    operator[](int i) const
    {
        MUSSTI_ASSERT(i >= 0 && i < size_, "SmallVec index " << i
                      << " outside size " << size_);
        return data()[i];
    }

    T &
    operator[](int i)
    {
        MUSSTI_ASSERT(i >= 0 && i < size_, "SmallVec index " << i
                      << " outside size " << size_);
        return data()[i];
    }

    const T &front() const { return (*this)[0]; }
    const T &back() const { return (*this)[size_ - 1]; }

    void
    push_back(const T &value)
    {
        if (size_ == cap_) {
            // `value` may alias an element of this vector; grow() frees
            // the old buffer, so copy it out first (vector parity).
            const T copy = value;
            grow();
            data()[size_++] = copy;
            return;
        }
        data()[size_++] = value;
    }

    void clear() { size_ = 0; }

    /** Linear membership scan (protect sets hold <= a handful of ids). */
    bool
    contains(const T &value) const
    {
        for (const T &have : *this) {
            if (have == value)
                return true;
        }
        return false;
    }

  private:
    T *data() { return heap_ ? heap_ : inline_; }
    const T *data() const { return heap_ ? heap_ : inline_; }

    void
    append(const SmallVec &other)
    {
        for (const T &value : other)
            push_back(value);
    }

    void
    grow()
    {
        const int next_cap = cap_ * 2;
        T *next = new T[next_cap];
        const T *src = data();
        for (int i = 0; i < size_; ++i)
            next[i] = src[i];
        delete[] heap_;
        heap_ = next;
        cap_ = next_cap;
    }

    int size_ = 0;
    int cap_ = N;
    T *heap_ = nullptr;
    T inline_[N] = {};
};

} // namespace mussti

#endif // MUSSTI_COMMON_SMALL_VEC_H
