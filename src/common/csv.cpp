#include "common/csv.h"

#include <algorithm>

namespace mussti {

namespace {

std::string
escapeCsv(const std::string &field)
{
    const bool needs_quotes =
        field.find_first_of(",\"\n") != std::string::npos;
    if (!needs_quotes)
        return field;
    std::string out = "\"";
    for (char ch : field) {
        if (ch == '"')
            out += '"';
        out += ch;
    }
    out += '"';
    return out;
}

} // namespace

void
CsvWriter::writeRow(const std::vector<std::string> &fields)
{
    for (std::size_t i = 0; i < fields.size(); ++i) {
        if (i)
            out_ << ',';
        out_ << escapeCsv(fields[i]);
    }
    out_ << '\n';
}

void
TextTable::setHeader(std::vector<std::string> header)
{
    header_ = std::move(header);
}

void
TextTable::addRow(std::vector<std::string> row)
{
    rows_.push_back(std::move(row));
}

void
TextTable::print(std::ostream &out) const
{
    std::vector<std::size_t> widths(header_.size(), 0);
    auto widen = [&](const std::vector<std::string> &row) {
        if (row.size() > widths.size())
            widths.resize(row.size(), 0);
        for (std::size_t i = 0; i < row.size(); ++i)
            widths[i] = std::max(widths[i], row[i].size());
    };
    widen(header_);
    for (const auto &row : rows_)
        widen(row);

    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t i = 0; i < widths.size(); ++i) {
            const std::string &cell = i < row.size() ? row[i] : std::string();
            out << cell << std::string(widths[i] - cell.size() + 2, ' ');
        }
        out << '\n';
    };
    emit(header_);
    std::size_t total = 0;
    for (auto w : widths)
        total += w + 2;
    out << std::string(total, '-') << '\n';
    for (const auto &row : rows_)
        emit(row);
}

void
TextTable::printCsv(std::ostream &out) const
{
    CsvWriter writer(out);
    writer.writeRow(header_);
    for (const auto &row : rows_)
        writer.writeRow(row);
}

} // namespace mussti
