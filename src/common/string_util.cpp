#include "common/string_util.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "common/logging.h"

namespace mussti {

std::optional<double>
parseDoubleStrict(const std::string &text)
{
    if (text.empty())
        return std::nullopt;
    try {
        std::size_t consumed = 0;
        const double value = std::stod(text, &consumed);
        if (consumed != text.size() || !std::isfinite(value))
            return std::nullopt;
        return value;
    } catch (const std::invalid_argument &) {
        return std::nullopt;
    } catch (const std::out_of_range &) {
        return std::nullopt;
    }
}

std::optional<int>
parseIntStrict(const std::string &text)
{
    if (text.empty())
        return std::nullopt;
    try {
        std::size_t consumed = 0;
        const int value = std::stoi(text, &consumed);
        if (consumed != text.size())
            return std::nullopt;
        return value;
    } catch (const std::invalid_argument &) {
        return std::nullopt;
    } catch (const std::out_of_range &) {
        return std::nullopt;
    }
}

int
parseIntArg(const std::string &text, const std::string &what)
{
    const std::optional<int> parsed = parseIntStrict(trim(text));
    MUSSTI_REQUIRE(parsed.has_value(),
                   "unparsable " << what << " `" << text
                   << "` (want a base-10 integer)");
    return *parsed;
}

int
parseEnvThreadCount(const char *env_var, const char *text,
                    int max_threads)
{
    const std::string var = env_var != nullptr ? env_var : "thread count";
    if (text == nullptr || *text == '\0')
        return 0;

    const std::optional<int> value = parseIntStrict(text);
    if (!value.has_value()) {
        warn("ignoring unparsable " + var + " `" + text +
             "` (want a positive integer); using hardware concurrency");
        return 0;
    }
    if (*value <= 0) {
        warn("ignoring non-positive " + var + " `" + text +
             "`; using hardware concurrency");
        return 0;
    }
    if (*value > max_threads) {
        warn("clamping " + var + " " + std::to_string(*value) + " to " +
             std::to_string(max_threads));
        return max_threads;
    }
    return *value;
}

std::string
trim(const std::string &text)
{
    std::size_t begin = 0;
    std::size_t end = text.size();
    while (begin < end &&
           std::isspace(static_cast<unsigned char>(text[begin]))) {
        ++begin;
    }
    while (end > begin &&
           std::isspace(static_cast<unsigned char>(text[end - 1]))) {
        --end;
    }
    return text.substr(begin, end - begin);
}

std::vector<std::string>
split(const std::string &text, char delim)
{
    std::vector<std::string> fields;
    std::size_t start = 0;
    for (std::size_t i = 0; i <= text.size(); ++i) {
        if (i == text.size() || text[i] == delim) {
            fields.push_back(text.substr(start, i - start));
            start = i + 1;
        }
    }
    return fields;
}

bool
startsWith(const std::string &text, const std::string &prefix)
{
    return text.size() >= prefix.size() &&
           text.compare(0, prefix.size(), prefix) == 0;
}

std::string
toLower(const std::string &text)
{
    std::string out = text;
    for (auto &ch : out)
        ch = static_cast<char>(std::tolower(static_cast<unsigned char>(ch)));
    return out;
}

std::string
formatSci(double value, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*e", digits, value);
    return buf;
}

std::string
formatCompact(double value)
{
    if (std::isfinite(value) && value == std::floor(value) &&
        std::fabs(value) < 1e15) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.0f", value);
        return buf;
    }
    if (std::fabs(value) >= 1e-3 && std::fabs(value) < 1e6) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.4g", value);
        return buf;
    }
    return formatSci(value);
}

} // namespace mussti
