#include "common/bench_json.h"

#include <cctype>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>

#include "common/logging.h"
#include "common/string_util.h"

namespace mussti {

std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size() + 2);
    for (char c : text) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

namespace {

std::string
number(double value)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    return buf;
}

/** Value of one hex digit, or -1 for any other character. */
int
hexDigit(char c)
{
    if (c >= '0' && c <= '9')
        return c - '0';
    if (c >= 'a' && c <= 'f')
        return c - 'a' + 10;
    if (c >= 'A' && c <= 'F')
        return c - 'A' + 10;
    return -1;
}

/** Append a BMP code point as UTF-8 (1-3 bytes). */
void
appendUtf8(std::string &out, int code)
{
    if (code < 0x80) {
        out += static_cast<char>(code);
    } else if (code < 0x800) {
        out += static_cast<char>(0xC0 | (code >> 6));
        out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
        out += static_cast<char>(0xE0 | (code >> 12));
        out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
        out += static_cast<char>(0x80 | (code & 0x3F));
    }
}

/**
 * Minimal recursive-descent JSON reader, just enough to round-trip the
 * mussti-bench-v1 schema without external dependencies. fatal() (not
 * panic) on malformed input: a bad file is a user error.
 */
class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : text_(text) {}

    char
    peek()
    {
        skipWs();
        MUSSTI_REQUIRE(pos_ < text_.size(),
                       "bench JSON truncated at offset " << pos_);
        return text_[pos_];
    }

    void
    expect(char c)
    {
        MUSSTI_REQUIRE(peek() == c, "bench JSON expected `" << c
                       << "` at offset " << pos_ << ", found `"
                       << text_[pos_] << "`");
        ++pos_;
    }

    bool
    consumeIf(char c)
    {
        if (pos_ < text_.size() && peek() == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (true) {
            MUSSTI_REQUIRE(pos_ < text_.size(), "unterminated string");
            const char c = text_[pos_++];
            if (c == '"')
                return out;
            if (c == '\\') {
                MUSSTI_REQUIRE(pos_ < text_.size(), "unterminated escape");
                const char esc = text_[pos_++];
                switch (esc) {
                  case '"': out += '"'; break;
                  case '\\': out += '\\'; break;
                  case '/': out += '/'; break;
                  case 'n': out += '\n'; break;
                  case 't': out += '\t'; break;
                  case 'u': {
                    MUSSTI_REQUIRE(pos_ + 4 <= text_.size(),
                                   "truncated \\u escape");
                    const std::string hex = text_.substr(pos_, 4);
                    // Explicit digit walk: stoi's prefix semantics would
                    // accept whitespace/sign forms like `\u 041`/`\u+041`.
                    int code = 0;
                    for (const char h : hex) {
                        const int digit = hexDigit(h);
                        MUSSTI_REQUIRE(digit >= 0,
                                       "malformed \\u escape `" << hex
                                       << "` (want 4 hex digits)");
                        code = code * 16 + digit;
                    }
                    MUSSTI_REQUIRE(code < 0xD800 || code > 0xDFFF,
                                   "unsupported surrogate \\u escape `"
                                   << hex << "` in bench JSON");
                    pos_ += 4;
                    appendUtf8(out, code);
                    break;
                  }
                  default:
                    fatal("unsupported JSON escape in bench file");
                }
            } else {
                out += c;
            }
        }
    }

    double
    parseNumber()
    {
        skipWs();
        const std::size_t start = pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '-' || text_[pos_] == '+' ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E'))
            ++pos_;
        MUSSTI_REQUIRE(pos_ > start, "bench JSON expected a number at "
                       "offset " << start);
        const std::string token = text_.substr(start, pos_ - start);
        // The character-class scan accepts sequences stod does not
        // (".e", "-", "e5"); keep the promised fatal() contract.
        const std::optional<double> value = parseDoubleStrict(token);
        MUSSTI_REQUIRE(value.has_value(),
                       "bench JSON malformed number `" << token
                       << "` at offset " << start);
        return *value;
    }

    /** Skip any balanced value (for unknown keys). */
    void
    skipValue()
    {
        const char c = peek();
        if (c == 't' || c == 'f' || c == 'n') {
            // Bare literals an unknown key may carry.
            for (const char *lit : {"true", "false", "null"}) {
                if (text_.compare(pos_, std::strlen(lit), lit) == 0) {
                    pos_ += std::strlen(lit);
                    return;
                }
            }
            fatal("bench JSON malformed literal at offset " +
                  std::to_string(pos_));
        } else if (c == '"') {
            (void)parseString();
        } else if (c == '{') {
            ++pos_;
            if (!consumeIf('}')) {
                do {
                    (void)parseString();
                    expect(':');
                    skipValue();
                } while (consumeIf(','));
                expect('}');
            }
        } else if (c == '[') {
            ++pos_;
            if (!consumeIf(']')) {
                do {
                    skipValue();
                } while (consumeIf(','));
                expect(']');
            }
        } else {
            (void)parseNumber();
        }
    }

    bool
    atEnd()
    {
        skipWs();
        return pos_ >= text_.size();
    }

  private:
    const std::string &text_;
    std::size_t pos_ = 0;

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }
};

BenchPassTiming
parsePassTiming(JsonParser &p)
{
    BenchPassTiming timing;
    p.expect('{');
    do {
        const std::string key = p.parseString();
        p.expect(':');
        if (key == "pass")
            timing.pass = p.parseString();
        else if (key == "ms")
            timing.ms = p.parseNumber();
        else
            p.skipValue();
    } while (p.consumeIf(','));
    p.expect('}');
    return timing;
}

BenchRecord
parseRecord(JsonParser &p)
{
    BenchRecord record;
    p.expect('{');
    do {
        const std::string key = p.parseString();
        p.expect(':');
        if (key == "suite") {
            record.suite = p.parseString();
        } else if (key == "name") {
            record.name = p.parseString();
        } else if (key == "qubits") {
            record.qubits = static_cast<int>(p.parseNumber());
        } else if (key == "repeats") {
            record.repeats = static_cast<int>(p.parseNumber());
        } else if (key == "wall_ms") {
            record.wallMs = p.parseNumber();
        } else if (key == "speedup_vs_baseline") {
            record.speedupVsBaseline = p.parseNumber();
        } else if (key == "routing_steps") {
            record.routingSteps = static_cast<long long>(p.parseNumber());
        } else if (key == "steady_allocs") {
            record.steadyAllocs = static_cast<long long>(p.parseNumber());
        } else if (key == "shuttles") {
            record.shuttles = static_cast<long long>(p.parseNumber());
        } else if (key == "makespan_us") {
            record.makespanUs = p.parseNumber();
        } else if (key == "log10_fidelity") {
            record.log10Fidelity = p.parseNumber();
        } else if (key == "delta_cold_ms") {
            record.deltaColdMs = p.parseNumber();
        } else if (key == "delta_speedup") {
            record.deltaSpeedup = p.parseNumber();
        } else if (key == "snapshot_hits") {
            record.snapshotHits = static_cast<long long>(p.parseNumber());
        } else if (key == "snapshot_misses") {
            record.snapshotMisses =
                static_cast<long long>(p.parseNumber());
        } else if (key == "delta_resumes") {
            record.deltaResumes = static_cast<long long>(p.parseNumber());
        } else if (key == "delta_fallbacks") {
            record.deltaFallbacks =
                static_cast<long long>(p.parseNumber());
        } else if (key == "jobs_failed") {
            record.jobsFailed = static_cast<long long>(p.parseNumber());
        } else if (key == "jobs_timed_out") {
            record.jobsTimedOut = static_cast<long long>(p.parseNumber());
        } else if (key == "jobs_cancelled") {
            record.jobsCancelled =
                static_cast<long long>(p.parseNumber());
        } else if (key == "jobs_retried") {
            record.jobsRetried = static_cast<long long>(p.parseNumber());
        } else if (key == "pass_trace") {
            p.expect('[');
            if (!p.consumeIf(']')) {
                do {
                    record.passTrace.push_back(parsePassTiming(p));
                } while (p.consumeIf(','));
                p.expect(']');
            }
        } else {
            p.skipValue();
        }
    } while (p.consumeIf(','));
    p.expect('}');
    return record;
}

} // namespace

std::string
benchResultsToJson(const std::vector<BenchRecord> &records,
                   const std::string &context)
{
    std::ostringstream out;
    out << "{\n  \"schema\": \"mussti-bench-v1\",\n";
    out << "  \"context\": \"" << jsonEscape(context) << "\",\n";
    out << "  \"results\": [";
    for (std::size_t i = 0; i < records.size(); ++i) {
        const BenchRecord &r = records[i];
        out << (i ? ",\n" : "\n");
        out << "    {\"suite\": \"" << jsonEscape(r.suite) << "\", "
            << "\"name\": \"" << jsonEscape(r.name) << "\", "
            << "\"qubits\": " << r.qubits << ", "
            << "\"repeats\": " << r.repeats << ", "
            << "\"wall_ms\": " << number(r.wallMs);
        if (r.speedupVsBaseline > 0.0) {
            out << ", \"speedup_vs_baseline\": "
                << number(r.speedupVsBaseline);
        }
        if (r.routingSteps >= 0) {
            out << ", \"routing_steps\": " << r.routingSteps
                << ", \"steady_allocs\": " << r.steadyAllocs
                << ", \"allocs_per_step\": "
                << number(r.routingSteps > 0
                              ? static_cast<double>(r.steadyAllocs) /
                                    static_cast<double>(r.routingSteps)
                              : 0.0);
        }
        if (r.shuttles >= 0) {
            out << ", \"shuttles\": " << r.shuttles
                << ", \"makespan_us\": " << number(r.makespanUs)
                << ", \"log10_fidelity\": " << number(r.log10Fidelity);
        }
        if (r.deltaColdMs > 0.0) {
            out << ", \"delta_cold_ms\": " << number(r.deltaColdMs)
                << ", \"delta_speedup\": " << number(r.deltaSpeedup);
        }
        if (r.snapshotHits >= 0) {
            out << ", \"snapshot_hits\": " << r.snapshotHits
                << ", \"snapshot_misses\": " << r.snapshotMisses
                << ", \"delta_resumes\": " << r.deltaResumes
                << ", \"delta_fallbacks\": " << r.deltaFallbacks;
        }
        if (r.jobsFailed >= 0) {
            out << ", \"jobs_failed\": " << r.jobsFailed
                << ", \"jobs_timed_out\": " << r.jobsTimedOut
                << ", \"jobs_cancelled\": " << r.jobsCancelled
                << ", \"jobs_retried\": " << r.jobsRetried;
        }
        if (!r.passTrace.empty()) {
            out << ", \"pass_trace\": [";
            for (std::size_t j = 0; j < r.passTrace.size(); ++j) {
                out << (j ? ", " : "")
                    << "{\"pass\": \"" << jsonEscape(r.passTrace[j].pass)
                    << "\", \"ms\": " << number(r.passTrace[j].ms) << "}";
            }
            out << "]";
        }
        out << "}";
    }
    out << "\n  ]\n}\n";
    return out.str();
}

void
writeBenchResults(const std::string &path,
                  const std::vector<BenchRecord> &records,
                  const std::string &context)
{
    std::ofstream out(path);
    MUSSTI_REQUIRE(out.good(), "cannot open bench results file: " << path);
    out << benchResultsToJson(records, context);
    out.flush();
    MUSSTI_REQUIRE(out.good(), "failed writing bench results: " << path);
}

std::vector<BenchRecord>
parseBenchResults(const std::string &text, std::string *context_out)
{
    JsonParser p(text);
    std::vector<BenchRecord> records;
    std::string schema;

    p.expect('{');
    do {
        const std::string key = p.parseString();
        p.expect(':');
        if (key == "schema") {
            schema = p.parseString();
        } else if (key == "context") {
            const std::string context = p.parseString();
            if (context_out)
                *context_out = context;
        } else if (key == "results") {
            p.expect('[');
            if (!p.consumeIf(']')) {
                do {
                    records.push_back(parseRecord(p));
                } while (p.consumeIf(','));
                p.expect(']');
            }
        } else {
            p.skipValue();
        }
    } while (p.consumeIf(','));
    p.expect('}');
    MUSSTI_REQUIRE(p.atEnd(), "trailing content after bench JSON");
    MUSSTI_REQUIRE(schema == "mussti-bench-v1",
                   "unsupported bench schema: `" << schema << "`");
    return records;
}

std::vector<BenchRecord>
readBenchResults(const std::string &path, std::string *context_out)
{
    std::ifstream in(path);
    MUSSTI_REQUIRE(in.good(), "cannot read bench results file: " << path);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return parseBenchResults(buffer.str(), context_out);
}

} // namespace mussti
