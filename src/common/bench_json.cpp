#include "common/bench_json.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/json.h"
#include "common/logging.h"

namespace mussti {

namespace {

std::string
number(double value)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    return buf;
}

BenchPassTiming
parsePassTiming(JsonReader &p)
{
    BenchPassTiming timing;
    p.expect('{');
    do {
        const std::string key = p.parseString();
        p.expect(':');
        if (key == "pass")
            timing.pass = p.parseString();
        else if (key == "ms")
            timing.ms = p.parseNumber();
        else
            p.skipValue();
    } while (p.consumeIf(','));
    p.expect('}');
    return timing;
}

BenchRecord
parseRecord(JsonReader &p)
{
    BenchRecord record;
    p.expect('{');
    do {
        const std::string key = p.parseString();
        p.expect(':');
        if (key == "suite") {
            record.suite = p.parseString();
        } else if (key == "name") {
            record.name = p.parseString();
        } else if (key == "qubits") {
            record.qubits = static_cast<int>(p.parseNumber());
        } else if (key == "repeats") {
            record.repeats = static_cast<int>(p.parseNumber());
        } else if (key == "wall_ms") {
            record.wallMs = p.parseNumber();
        } else if (key == "speedup_vs_baseline") {
            record.speedupVsBaseline = p.parseNumber();
        } else if (key == "routing_steps") {
            record.routingSteps = static_cast<long long>(p.parseNumber());
        } else if (key == "steady_allocs") {
            record.steadyAllocs = static_cast<long long>(p.parseNumber());
        } else if (key == "shuttles") {
            record.shuttles = static_cast<long long>(p.parseNumber());
        } else if (key == "makespan_us") {
            record.makespanUs = p.parseNumber();
        } else if (key == "log10_fidelity") {
            record.log10Fidelity = p.parseNumber();
        } else if (key == "delta_cold_ms") {
            record.deltaColdMs = p.parseNumber();
        } else if (key == "delta_speedup") {
            record.deltaSpeedup = p.parseNumber();
        } else if (key == "snapshot_hits") {
            record.snapshotHits = static_cast<long long>(p.parseNumber());
        } else if (key == "snapshot_misses") {
            record.snapshotMisses =
                static_cast<long long>(p.parseNumber());
        } else if (key == "delta_resumes") {
            record.deltaResumes = static_cast<long long>(p.parseNumber());
        } else if (key == "delta_fallbacks") {
            record.deltaFallbacks =
                static_cast<long long>(p.parseNumber());
        } else if (key == "jobs_failed") {
            record.jobsFailed = static_cast<long long>(p.parseNumber());
        } else if (key == "jobs_timed_out") {
            record.jobsTimedOut = static_cast<long long>(p.parseNumber());
        } else if (key == "jobs_cancelled") {
            record.jobsCancelled =
                static_cast<long long>(p.parseNumber());
        } else if (key == "jobs_retried") {
            record.jobsRetried = static_cast<long long>(p.parseNumber());
        } else if (key == "cache_mem_hits") {
            record.cacheMemHits = static_cast<long long>(p.parseNumber());
        } else if (key == "cache_mem_misses") {
            record.cacheMemMisses =
                static_cast<long long>(p.parseNumber());
        } else if (key == "cache_mem_evictions") {
            record.cacheMemEvictions =
                static_cast<long long>(p.parseNumber());
        } else if (key == "cache_disk_hits") {
            record.cacheDiskHits = static_cast<long long>(p.parseNumber());
        } else if (key == "cache_disk_misses") {
            record.cacheDiskMisses =
                static_cast<long long>(p.parseNumber());
        } else if (key == "cache_disk_evictions") {
            record.cacheDiskEvictions =
                static_cast<long long>(p.parseNumber());
        } else if (key == "cache_disk_corrupt") {
            record.cacheDiskCorrupt =
                static_cast<long long>(p.parseNumber());
        } else if (key == "pass_trace") {
            p.expect('[');
            if (!p.consumeIf(']')) {
                do {
                    record.passTrace.push_back(parsePassTiming(p));
                } while (p.consumeIf(','));
                p.expect(']');
            }
        } else {
            p.skipValue();
        }
    } while (p.consumeIf(','));
    p.expect('}');
    return record;
}

} // namespace

std::string
benchResultsToJson(const std::vector<BenchRecord> &records,
                   const std::string &context)
{
    std::ostringstream out;
    out << "{\n  \"schema\": \"mussti-bench-v1\",\n";
    out << "  \"context\": \"" << jsonEscape(context) << "\",\n";
    out << "  \"results\": [";
    for (std::size_t i = 0; i < records.size(); ++i) {
        const BenchRecord &r = records[i];
        out << (i ? ",\n" : "\n");
        out << "    {\"suite\": \"" << jsonEscape(r.suite) << "\", "
            << "\"name\": \"" << jsonEscape(r.name) << "\", "
            << "\"qubits\": " << r.qubits << ", "
            << "\"repeats\": " << r.repeats << ", "
            << "\"wall_ms\": " << number(r.wallMs);
        if (r.speedupVsBaseline > 0.0) {
            out << ", \"speedup_vs_baseline\": "
                << number(r.speedupVsBaseline);
        }
        if (r.routingSteps >= 0) {
            out << ", \"routing_steps\": " << r.routingSteps
                << ", \"steady_allocs\": " << r.steadyAllocs
                << ", \"allocs_per_step\": "
                << number(r.routingSteps > 0
                              ? static_cast<double>(r.steadyAllocs) /
                                    static_cast<double>(r.routingSteps)
                              : 0.0);
        }
        if (r.shuttles >= 0) {
            out << ", \"shuttles\": " << r.shuttles
                << ", \"makespan_us\": " << number(r.makespanUs)
                << ", \"log10_fidelity\": " << number(r.log10Fidelity);
        }
        if (r.deltaColdMs > 0.0) {
            out << ", \"delta_cold_ms\": " << number(r.deltaColdMs)
                << ", \"delta_speedup\": " << number(r.deltaSpeedup);
        }
        if (r.snapshotHits >= 0) {
            out << ", \"snapshot_hits\": " << r.snapshotHits
                << ", \"snapshot_misses\": " << r.snapshotMisses
                << ", \"delta_resumes\": " << r.deltaResumes
                << ", \"delta_fallbacks\": " << r.deltaFallbacks;
        }
        if (r.jobsFailed >= 0) {
            out << ", \"jobs_failed\": " << r.jobsFailed
                << ", \"jobs_timed_out\": " << r.jobsTimedOut
                << ", \"jobs_cancelled\": " << r.jobsCancelled
                << ", \"jobs_retried\": " << r.jobsRetried;
        }
        if (r.cacheMemHits >= 0) {
            out << ", \"cache_mem_hits\": " << r.cacheMemHits
                << ", \"cache_mem_misses\": " << r.cacheMemMisses
                << ", \"cache_mem_evictions\": " << r.cacheMemEvictions;
        }
        if (r.cacheDiskHits >= 0) {
            out << ", \"cache_disk_hits\": " << r.cacheDiskHits
                << ", \"cache_disk_misses\": " << r.cacheDiskMisses
                << ", \"cache_disk_evictions\": " << r.cacheDiskEvictions
                << ", \"cache_disk_corrupt\": " << r.cacheDiskCorrupt;
        }
        if (!r.passTrace.empty()) {
            out << ", \"pass_trace\": [";
            for (std::size_t j = 0; j < r.passTrace.size(); ++j) {
                out << (j ? ", " : "")
                    << "{\"pass\": \"" << jsonEscape(r.passTrace[j].pass)
                    << "\", \"ms\": " << number(r.passTrace[j].ms) << "}";
            }
            out << "]";
        }
        out << "}";
    }
    out << "\n  ]\n}\n";
    return out.str();
}

void
writeBenchResults(const std::string &path,
                  const std::vector<BenchRecord> &records,
                  const std::string &context)
{
    std::ofstream out(path);
    MUSSTI_REQUIRE(out.good(), "cannot open bench results file: " << path);
    out << benchResultsToJson(records, context);
    out.flush();
    MUSSTI_REQUIRE(out.good(), "failed writing bench results: " << path);
}

std::vector<BenchRecord>
parseBenchResults(const std::string &text, std::string *context_out)
{
    JsonReader p(text);
    std::vector<BenchRecord> records;
    std::string schema;

    p.expect('{');
    do {
        const std::string key = p.parseString();
        p.expect(':');
        if (key == "schema") {
            schema = p.parseString();
        } else if (key == "context") {
            const std::string context = p.parseString();
            if (context_out)
                *context_out = context;
        } else if (key == "results") {
            p.expect('[');
            if (!p.consumeIf(']')) {
                do {
                    records.push_back(parseRecord(p));
                } while (p.consumeIf(','));
                p.expect(']');
            }
        } else {
            p.skipValue();
        }
    } while (p.consumeIf(','));
    p.expect('}');
    MUSSTI_REQUIRE(p.atEnd(), "trailing content after bench JSON");
    MUSSTI_REQUIRE(schema == "mussti-bench-v1",
                   "unsupported bench schema: `" << schema << "`");
    return records;
}

std::vector<BenchRecord>
readBenchResults(const std::string &path, std::string *context_out)
{
    std::ifstream in(path);
    MUSSTI_REQUIRE(in.good(), "cannot read bench results file: " << path);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return parseBenchResults(buffer.str(), context_out);
}

} // namespace mussti
