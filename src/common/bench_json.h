/**
 * @file
 * Machine-readable benchmark results (the repo's BENCH_*.json format).
 *
 * Every perf harness emits the same schema so runs are comparable
 * across PRs and tooling can diff them:
 *
 * @code{.json}
 * {
 *   "schema": "mussti-bench-v1",
 *   "context": "micro_scheduler_bench --repeats 5",
 *   "results": [
 *     {
 *       "suite": "micro_scheduler/large",
 *       "name": "qaoa",
 *       "qubits": 288,
 *       "repeats": 5,
 *       "wall_ms": 4.31,
 *       "speedup_vs_baseline": 12.9,
 *       "pass_trace": [{"pass": "mussti-schedule", "ms": 1.02}, ...]
 *     }
 *   ]
 * }
 * @endcode
 *
 * `wall_ms` is the best-of-`repeats` wall clock of one compilation;
 * `pass_trace` is CompileResult::passTrace of the best run;
 * `speedup_vs_baseline` is present (> 0) only when the harness was
 * given a baseline file to compare against. The reader is a small
 * self-contained JSON parser, so round-tripping needs no external
 * dependency (tests assert write -> parse fidelity).
 */
#ifndef MUSSTI_COMMON_BENCH_JSON_H
#define MUSSTI_COMMON_BENCH_JSON_H

#include <string>
#include <vector>

// jsonEscape and the JsonReader the parser below is built on live in
// common/json.h, shared with the lint renderer and the serve framing.
#include "common/json.h"

namespace mussti {

/** One pass of a result's per-pass wall-clock breakdown. */
struct BenchPassTiming
{
    std::string pass;
    double ms = 0.0;
};

/** One benchmark measurement. */
struct BenchRecord
{
    std::string suite;  ///< Harness + tier, e.g. "micro_scheduler/large".
    std::string name;   ///< Workload family.
    int qubits = 0;
    int repeats = 1;
    double wallMs = 0.0;             ///< Best-of-repeats wall clock.
    double speedupVsBaseline = 0.0;  ///< baseline/current; 0 = unknown.
    std::vector<BenchPassTiming> passTrace;

    /**
     * Scheduler-loop accounting (mussti suites only; absent = -1).
     * `routingSteps` counts phase-2 routed gates across the whole
     * compile; `steadyAllocs` is the heap-allocation count inside the
     * scheduling loops of the LAST repeat — the steady state, with the
     * workspace warm — as seen by the harness's instrumented operator
     * new. `allocs_per_step` in the JSON is their ratio; the CI perf
     * smoke asserts it stays 0.
     */
    long long routingSteps = -1;
    long long steadyAllocs = -1;

    /**
     * Device-tuner sweep scoring (device_tuner suites only; absent =
     * `shuttles` < 0): the candidate device's ScoreCard for one
     * workload, so a sweep trajectory file carries everything the
     * Pareto front was computed from.
     */
    long long shuttles = -1;
    double makespanUs = 0.0;
    double log10Fidelity = 0.0;

    /**
     * Delta-compilation accounting (micro_scheduler/delta records
     * only). `wall_ms` holds the warm resumed path; `delta_cold_ms`
     * (absent = <= 0) is the cold-path reference on the same edited
     * circuit and `delta_speedup` their ratio. The snapshot counters
     * (absent = -1) come from the scenario's CompileService
     * verification pass, proving the cache tier actually hit and the
     * compile resumed end to end. All optional fields of the same
     * mussti-bench-v1 schema; readers that predate them skip unknown
     * keys.
     */
    double deltaColdMs = 0.0;
    double deltaSpeedup = 0.0;
    long long snapshotHits = -1;
    long long snapshotMisses = -1;
    long long deltaResumes = -1;
    long long deltaFallbacks = -1;

    /**
     * CompileService failure-path counters (absent = -1): jobs that
     * resolved with a structured error, split by taxonomy, plus the
     * Transient retry attempts consumed. Emitted by records whose
     * scenario ran through a CompileService, proving the fault-
     * tolerance accounting is live on the production path.
     */
    long long jobsFailed = -1;
    long long jobsTimedOut = -1;
    long long jobsCancelled = -1;
    long long jobsRetried = -1;

    /**
     * Per-tier result-cache counters (absent = -1): the in-memory LRU
     * tier and the disk-backed persistent tier behind it (see
     * core/result_cache.h). `cacheDiskCorrupt` counts entries that
     * failed validation and were quarantined as misses — on a healthy
     * store it reconciles to 0. Optional mussti-bench-v1 fields like
     * the groups above; readers that predate them skip unknown keys.
     */
    long long cacheMemHits = -1;
    long long cacheMemMisses = -1;
    long long cacheMemEvictions = -1;
    long long cacheDiskHits = -1;
    long long cacheDiskMisses = -1;
    long long cacheDiskEvictions = -1;
    long long cacheDiskCorrupt = -1;
};

/** Render records as a mussti-bench-v1 JSON document. */
std::string benchResultsToJson(const std::vector<BenchRecord> &records,
                               const std::string &context);

/** Write the JSON document to `path`; fatal() on I/O failure. */
void writeBenchResults(const std::string &path,
                       const std::vector<BenchRecord> &records,
                       const std::string &context);

/**
 * Parse a mussti-bench-v1 document back into records; fatal() on
 * malformed input or a wrong schema tag. `context_out`, when non-null,
 * receives the document's context string.
 */
std::vector<BenchRecord> parseBenchResults(const std::string &text,
                                           std::string *context_out =
                                               nullptr);

/** Read and parse a results file; fatal() if unreadable. */
std::vector<BenchRecord> readBenchResults(const std::string &path,
                                          std::string *context_out =
                                              nullptr);

} // namespace mussti

#endif // MUSSTI_COMMON_BENCH_JSON_H
