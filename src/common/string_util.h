/**
 * @file
 * Small string helpers shared by the QASM parser and the bench harness.
 */
#ifndef MUSSTI_COMMON_STRING_UTIL_H
#define MUSSTI_COMMON_STRING_UTIL_H

#include <optional>
#include <string>
#include <vector>

namespace mussti {

/** Strip leading and trailing whitespace. */
std::string trim(const std::string &text);

/** Split on a delimiter character; empty fields are preserved. */
std::vector<std::string> split(const std::string &text, char delim);

/** True if text begins with the given prefix. */
bool startsWith(const std::string &text, const std::string &prefix);

/**
 * Strict full-string base-10 double parse: the whole string must be a
 * finite number (no trailing garbage, no inf/nan, no empty input);
 * nullopt otherwise. The one numeric-validation used by the QASM
 * parser, the bench-JSON reader, and the env-var parsing, so hardening
 * fixes land everywhere at once.
 */
std::optional<double> parseDoubleStrict(const std::string &text);

/** Strict full-string int parse; nullopt on garbage or overflow. */
std::optional<int> parseIntStrict(const std::string &text);

/**
 * Strict int parse for command-line tokens: fatal() with a diagnostic
 * naming the offending token and its role (`what`) instead of atoi's
 * silent 0 — the CLI hardening convention (e.g. a positional qubit
 * count of "banana" must not quietly run with 0 qubits).
 */
int parseIntArg(const std::string &text, const std::string &what);

/**
 * Parse a worker-thread-count override from an environment variable.
 * Returns 0 — "auto", i.e. hardware concurrency — for null/empty
 * input, and the parsed value for a well-formed positive integer,
 * clamped to `max_threads` with a warning that names `env_var` (so a
 * process reading several knobs says which one was bad). Garbage or
 * non-positive values (which std::atoi would silently turn into 0 or
 * accept) are rejected with a logged warning and fall back to auto.
 */
int parseEnvThreadCount(const char *env_var, const char *text,
                        int max_threads = 512);

/** Lower-case an ASCII string. */
std::string toLower(const std::string &text);

/** printf-style number formatting used by the paper-table printers. */
std::string formatSci(double value, int digits = 2);

/** Format a double compactly: integers as integers, else fixed/sci. */
std::string formatCompact(double value);

} // namespace mussti

#endif // MUSSTI_COMMON_STRING_UTIL_H
