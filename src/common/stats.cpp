#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace mussti {

double
mean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : values)
        sum += v;
    return sum / static_cast<double>(values.size());
}

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double ln_sum = 0.0;
    for (double v : values) {
        MUSSTI_ASSERT(v > 0.0, "geomean over non-positive value " << v);
        ln_sum += std::log(v);
    }
    return std::exp(ln_sum / static_cast<double>(values.size()));
}

double
stddev(const std::vector<double> &values)
{
    if (values.size() < 2)
        return 0.0;
    const double mu = mean(values);
    double acc = 0.0;
    for (double v : values)
        acc += (v - mu) * (v - mu);
    return std::sqrt(acc / static_cast<double>(values.size()));
}

double
minOf(const std::vector<double> &values)
{
    MUSSTI_ASSERT(!values.empty(), "minOf over empty series");
    return *std::min_element(values.begin(), values.end());
}

double
maxOf(const std::vector<double> &values)
{
    MUSSTI_ASSERT(!values.empty(), "maxOf over empty series");
    return *std::max_element(values.begin(), values.end());
}

double
averageReductionPercent(const std::vector<double> &baseline,
                        const std::vector<double> &ours)
{
    MUSSTI_ASSERT(baseline.size() == ours.size(),
                  "reduction series length mismatch");
    double sum = 0.0;
    std::size_t count = 0;
    for (std::size_t i = 0; i < baseline.size(); ++i) {
        if (baseline[i] == 0.0)
            continue;
        sum += (baseline[i] - ours[i]) / baseline[i] * 100.0;
        ++count;
    }
    return count ? sum / static_cast<double>(count) : 0.0;
}

} // namespace mussti
