#include "common/alloc_counter.h"

namespace mussti {

thread_local std::uint64_t AllocCounter::allocations = 0;

} // namespace mussti
