#include "common/error.h"

#include <new>

namespace mussti {

const char *
errorCategoryName(ErrorCategory category)
{
    switch (category) {
      case ErrorCategory::InvalidInput: return "InvalidInput";
      case ErrorCategory::ResourceExhausted: return "ResourceExhausted";
      case ErrorCategory::Timeout: return "Timeout";
      case ErrorCategory::Cancelled: return "Cancelled";
      case ErrorCategory::Transient: return "Transient";
      case ErrorCategory::Internal: return "Internal";
    }
    return "Internal";
}

void
MusstiError::raise() const
{
    if (category_ == ErrorCategory::Internal)
        throw MusstiPanic(code_, message_);
    throw MusstiFault(category_, code_, message_);
}

std::exception_ptr
MusstiError::toExceptionPtr() const
{
    if (category_ == ErrorCategory::Internal)
        return std::make_exception_ptr(MusstiPanic(code_, message_));
    return std::make_exception_ptr(MusstiFault(category_, code_, message_));
}

MusstiError
describeCurrentException()
{
    try {
        throw;
    } catch (const MusstiError &err) {
        return err;
    } catch (const std::bad_alloc &) {
        return MusstiError(ErrorCategory::ResourceExhausted, "resource.alloc",
                           "allocation failed");
    } catch (const std::exception &err) {
        return MusstiError(ErrorCategory::Internal, "internal.uncaught",
                           err.what());
    } catch (...) {
        return MusstiError(ErrorCategory::Internal, "internal.unknown",
                           "unknown exception");
    }
}

} // namespace mussti
