/**
 * @file
 * Thread-local heap-allocation counter for the scheduler perf harness.
 *
 * The library itself never increments this counter. A binary that wants
 * allocation accounting (micro_scheduler_bench) overrides the global
 * operator new to bump it; the scheduler then reads the counter around
 * its main loop and reports the delta per run. In ordinary builds the
 * counter stays at zero and the bookkeeping is two thread-local loads
 * per scheduler run — effectively free.
 *
 * Thread-local on purpose: concurrent CompileService jobs each observe
 * only their own allocations, so per-job deltas stay exact.
 */
#ifndef MUSSTI_COMMON_ALLOC_COUNTER_H
#define MUSSTI_COMMON_ALLOC_COUNTER_H

#include <cstdint>

namespace mussti {

/** Monotonic per-thread count of instrumented heap allocations. */
struct AllocCounter
{
    /** Incremented by an instrumented operator new (bench binaries). */
    static thread_local std::uint64_t allocations;

    /** Current value; diff two reads to count a window. */
    static std::uint64_t now() { return allocations; }
};

} // namespace mussti

#endif // MUSSTI_COMMON_ALLOC_COUNTER_H
