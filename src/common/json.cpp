#include "common/json.h"

#include <cctype>
#include <cstdio>
#include <cstring>
#include <optional>

#include "common/logging.h"
#include "common/string_util.h"

namespace mussti {

std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size() + 2);
    for (char c : text) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

namespace {

/** Value of one hex digit, or -1 for any other character. */
int
hexDigit(char c)
{
    if (c >= '0' && c <= '9')
        return c - '0';
    if (c >= 'a' && c <= 'f')
        return c - 'a' + 10;
    if (c >= 'A' && c <= 'F')
        return c - 'A' + 10;
    return -1;
}

/** Append a BMP code point as UTF-8 (1-3 bytes). */
void
appendUtf8(std::string &out, int code)
{
    if (code < 0x80) {
        out += static_cast<char>(code);
    } else if (code < 0x800) {
        out += static_cast<char>(0xC0 | (code >> 6));
        out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
        out += static_cast<char>(0xE0 | (code >> 12));
        out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
        out += static_cast<char>(0x80 | (code & 0x3F));
    }
}

} // namespace

char
JsonReader::peek()
{
    skipWs();
    MUSSTI_REQUIRE(pos_ < text_.size(),
                   "JSON truncated at offset " << pos_);
    return text_[pos_];
}

void
JsonReader::expect(char c)
{
    MUSSTI_REQUIRE(peek() == c, "JSON expected `" << c
                   << "` at offset " << pos_ << ", found `"
                   << text_[pos_] << "`");
    ++pos_;
}

bool
JsonReader::consumeIf(char c)
{
    if (pos_ < text_.size() && peek() == c) {
        ++pos_;
        return true;
    }
    return false;
}

std::string
JsonReader::parseString()
{
    expect('"');
    std::string out;
    while (true) {
        MUSSTI_REQUIRE(pos_ < text_.size(), "unterminated string");
        const char c = text_[pos_++];
        if (c == '"')
            return out;
        if (c == '\\') {
            MUSSTI_REQUIRE(pos_ < text_.size(), "unterminated escape");
            const char esc = text_[pos_++];
            switch (esc) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'n': out += '\n'; break;
              case 't': out += '\t'; break;
              case 'u': {
                MUSSTI_REQUIRE(pos_ + 4 <= text_.size(),
                               "truncated \\u escape");
                const std::string hex = text_.substr(pos_, 4);
                // Explicit digit walk: stoi's prefix semantics would
                // accept whitespace/sign forms like `\u 041`/`\u+041`.
                int code = 0;
                for (const char h : hex) {
                    const int digit = hexDigit(h);
                    MUSSTI_REQUIRE(digit >= 0,
                                   "malformed \\u escape `" << hex
                                   << "` (want 4 hex digits)");
                    code = code * 16 + digit;
                }
                MUSSTI_REQUIRE(code < 0xD800 || code > 0xDFFF,
                               "unsupported surrogate \\u escape `"
                               << hex << "` in JSON");
                pos_ += 4;
                appendUtf8(out, code);
                break;
              }
              default:
                fatal("unsupported JSON escape");
            }
        } else {
            out += c;
        }
    }
}

double
JsonReader::parseNumber()
{
    skipWs();
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' ||
            text_[pos_] == '.' || text_[pos_] == 'e' ||
            text_[pos_] == 'E'))
        ++pos_;
    MUSSTI_REQUIRE(pos_ > start, "JSON expected a number at offset "
                   << start);
    const std::string token = text_.substr(start, pos_ - start);
    // The character-class scan accepts sequences stod does not
    // (".e", "-", "e5"); keep the promised fatal() contract.
    const std::optional<double> value = parseDoubleStrict(token);
    MUSSTI_REQUIRE(value.has_value(),
                   "JSON malformed number `" << token
                   << "` at offset " << start);
    return *value;
}

bool
JsonReader::parseBool()
{
    (void)peek();
    if (text_.compare(pos_, 4, "true") == 0) {
        pos_ += 4;
        return true;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
        pos_ += 5;
        return false;
    }
    fatal("JSON expected a boolean at offset " + std::to_string(pos_));
    return false; // unreachable
}

void
JsonReader::skipValue()
{
    const char c = peek();
    if (c == 't' || c == 'f' || c == 'n') {
        // Bare literals an unknown key may carry.
        for (const char *lit : {"true", "false", "null"}) {
            if (text_.compare(pos_, std::strlen(lit), lit) == 0) {
                pos_ += std::strlen(lit);
                return;
            }
        }
        fatal("JSON malformed literal at offset " +
              std::to_string(pos_));
    } else if (c == '"') {
        (void)parseString();
    } else if (c == '{') {
        ++pos_;
        if (!consumeIf('}')) {
            do {
                (void)parseString();
                expect(':');
                skipValue();
            } while (consumeIf(','));
            expect('}');
        }
    } else if (c == '[') {
        ++pos_;
        if (!consumeIf(']')) {
            do {
                skipValue();
            } while (consumeIf(','));
            expect(']');
        }
    } else {
        (void)parseNumber();
    }
}

bool
JsonReader::atEnd()
{
    skipWs();
    return pos_ >= text_.size();
}

void
JsonReader::skipWs()
{
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
        ++pos_;
}

} // namespace mussti
