#pragma once

#include <exception>
#include <stdexcept>
#include <string>

namespace mussti {

/**
 * Failure taxonomy for the compile stack.
 *
 * Every error raised through the logging layer (fatal(), panic(), the
 * MUSSTI_REQUIRE / MUSSTI_ASSERT macros) or the job-control layer
 * (deadlines, cancellation, fault injection) carries one of these
 * categories plus a stable machine-readable code string, mirroring the
 * lint rule-id discipline (`sch.capacity`, `search.degenerate-range`).
 *
 *  - InvalidInput:      the caller handed us something malformed — bad
 *                       QASM, an impossible device spec, a circuit that
 *                       fails validation. Retrying is pointless.
 *  - ResourceExhausted: the request is well-formed but exceeds a
 *                       capacity limit (device slots, memory).
 *  - Timeout:           a per-job deadline expired.
 *  - Cancelled:         a cancellation token fired or the service shut
 *                       down while the job was queued/in flight.
 *  - Transient:         a retryable fault (injected or environmental);
 *                       the service retries these with bounded backoff.
 *  - Internal:          a bug — an invariant we own was violated.
 */
enum class ErrorCategory {
    InvalidInput,
    ResourceExhausted,
    Timeout,
    Cancelled,
    Transient,
    Internal,
};

const char *errorCategoryName(ErrorCategory category);

/**
 * Structured error payload: category + stable code + diagnostic.
 *
 * Deliberately NOT derived from std::exception — it is a copyable value
 * used both as a payload base of the concrete throwable types below and
 * as the error arm of CompileOutcome. `catch (const MusstiError &)`
 * catches every error the stack raises, while legacy
 * `catch (const std::runtime_error &)` / `catch (const std::logic_error &)`
 * handlers keep working unchanged via the concrete types.
 */
class MusstiError
{
  public:
    MusstiError() = default;
    MusstiError(ErrorCategory category, std::string code, std::string message)
        : category_(category), code_(std::move(code)),
          message_(std::move(message))
    {}
    virtual ~MusstiError() = default;
    MusstiError(const MusstiError &) = default;
    MusstiError(MusstiError &&) = default;
    MusstiError &operator=(const MusstiError &) = default;
    MusstiError &operator=(MusstiError &&) = default;

    ErrorCategory category() const { return category_; }
    const std::string &code() const { return code_; }
    const std::string &message() const { return message_; }
    const char *categoryName() const { return errorCategoryName(category_); }

    /** Throw this payload as the category-appropriate concrete type. */
    [[noreturn]] void raise() const;

    /** The same, packaged for std::promise::set_exception. */
    std::exception_ptr toExceptionPtr() const;

  private:
    ErrorCategory category_ = ErrorCategory::Internal;
    std::string code_ = "internal.unclassified";
    std::string message_;
};

/**
 * User-class failure (anything but Internal). Inherits
 * std::runtime_error so every existing `catch (std::runtime_error)`
 * around fatal() paths keeps firing; what() keeps the "fatal: " prefix.
 */
class MusstiFault : public std::runtime_error, public MusstiError
{
  public:
    MusstiFault(ErrorCategory category, std::string code,
                const std::string &message)
        : std::runtime_error("fatal: " + message),
          MusstiError(category, std::move(code), message)
    {}
};

/**
 * Bug-class failure (always Internal). Inherits std::logic_error so
 * `catch (std::logic_error)` around panic()/MUSSTI_ASSERT paths keeps
 * firing; what() keeps the "panic: " prefix.
 */
class MusstiPanic : public std::logic_error, public MusstiError
{
  public:
    MusstiPanic(std::string code, const std::string &message)
        : std::logic_error("panic: " + message),
          MusstiError(ErrorCategory::Internal, std::move(code), message)
    {}
};

/**
 * Classify the in-flight exception (call inside a catch block) into a
 * structured error. MusstiError-carrying exceptions pass through
 * losslessly; foreign exceptions are wrapped (bad_alloc becomes
 * ResourceExhausted, anything else Internal).
 */
MusstiError describeCurrentException();

} // namespace mussti
