/**
 * @file
 * Error-reporting and assertion helpers, following the gem5 convention:
 * panic() for internal invariant violations (a bug in this library),
 * fatal() for user errors (bad configuration, malformed input), and
 * warn()/inform() for non-fatal diagnostics.
 *
 * Every fatal/panic path throws a structured error (common/error.h): a
 * MusstiFault (std::runtime_error) or MusstiPanic (std::logic_error)
 * carrying an ErrorCategory and a stable code string, so callers can
 * route on taxonomy instead of parsing what() strings.
 */
#ifndef MUSSTI_COMMON_LOGGING_H
#define MUSSTI_COMMON_LOGGING_H

#include <sstream>
#include <string>

#include "common/error.h"

namespace mussti {

/** Severity of a log message. */
enum class LogLevel { Inform, Warn, Fatal, Panic };

namespace detail {

/**
 * Emit a message (unless silenced or the category is a quiet control
 * outcome) and throw the structured error for it.
 */
[[noreturn]] void die(ErrorCategory category, const std::string &code,
                      const std::string &message);

/** Emit a non-fatal message to stderr. */
void report(LogLevel level, const std::string &message);

} // namespace detail

/**
 * Called when the simulation cannot continue due to a user error
 * (bad configuration, invalid arguments). Not a library bug.
 */
[[noreturn]] inline void
fatal(const std::string &message)
{
    detail::die(ErrorCategory::InvalidInput, "input.fatal", message);
}

/** fatal() with an explicit stable error code. */
[[noreturn]] inline void
fatalCoded(const std::string &code, const std::string &message)
{
    detail::die(ErrorCategory::InvalidInput, code, message);
}

/**
 * Called when something happens that should never happen regardless of
 * user input, i.e. an actual MUSS-TI bug.
 */
[[noreturn]] inline void
panic(const std::string &message)
{
    detail::die(ErrorCategory::Internal, "internal.panic", message);
}

/** panic() with an explicit stable error code. */
[[noreturn]] inline void
panicCoded(const std::string &code, const std::string &message)
{
    detail::die(ErrorCategory::Internal, code, message);
}

/**
 * Raise a structured error of any category. Timeout/Cancelled/Transient
 * are quiet (expected control-flow outcomes, no stderr echo); the other
 * categories echo like fatal()/panic().
 */
[[noreturn]] inline void
raiseError(ErrorCategory category, const std::string &code,
           const std::string &message)
{
    detail::die(category, code, message);
}

/** Non-fatal warning: something may be subtly wrong. */
inline void
warn(const std::string &message)
{
    detail::report(LogLevel::Warn, message);
}

/** Status message with no connotation of incorrect behaviour. */
inline void
inform(const std::string &message)
{
    detail::report(LogLevel::Inform, message);
}

/**
 * RAII guard silencing the stderr echo of fatal() (the exception still
 * propagates, with the diagnostic in what()). For probes that expect
 * and handle the user-error path — e.g. the device tuner testing
 * candidate feasibility — where hundreds of handled failures would
 * otherwise spam the console. The silence is process-wide (an atomic
 * depth, so guards are thread-safe and a probe fanned out to worker
 * threads is muted as a whole). panic() is never silenced: an internal
 * bug must always be heard. Nestable.
 *
 * Pass silence_warns = true to also mute warn() for the guard's
 * lifetime (same process-wide depth discipline): probe bursts that
 * tolerate the fatal path usually don't want its warn() chatter from
 * concurrent workers interleaved with their output either. Opt-in
 * because warns elsewhere are genuine diagnostics. inform() and
 * panic() are never muted.
 */
class ScopedFatalSilence
{
  public:
    explicit ScopedFatalSilence(bool silence_warns = false);
    ~ScopedFatalSilence();

    ScopedFatalSilence(const ScopedFatalSilence &) = delete;
    ScopedFatalSilence &operator=(const ScopedFatalSilence &) = delete;

  private:
    bool silenceWarns_;
};

} // namespace mussti

/**
 * Internal invariant check. Active in all build types: the schedulers in
 * this library are cheap relative to the physics they model, and silent
 * invariant corruption would invalidate every reported metric.
 */
#define MUSSTI_ASSERT(cond, msg)                                            \
    do {                                                                    \
        if (!(cond)) {                                                      \
            std::ostringstream oss_;                                        \
            oss_ << __FILE__ << ":" << __LINE__ << ": assertion `" #cond    \
                 << "` failed: " << msg;                                    \
            ::mussti::panicCoded("internal.assert", oss_.str());            \
        }                                                                   \
    } while (0)

/** User-input validation; failure is the caller's fault, not a bug. */
#define MUSSTI_REQUIRE(cond, msg)                                           \
    do {                                                                    \
        if (!(cond)) {                                                      \
            std::ostringstream oss_;                                        \
            oss_ << "requirement `" #cond "` violated: " << msg;            \
            ::mussti::fatalCoded("input.require", oss_.str());              \
        }                                                                   \
    } while (0)

#endif // MUSSTI_COMMON_LOGGING_H
