/**
 * @file
 * Deterministic fault-injection harness for the compile stack.
 *
 * Production code is instrumented at a handful of named sites (pass
 * boundaries, snapshot capture/resume, cache stores, worker dequeue).
 * Each site consults the process-wide FaultInjector, which is disarmed
 * by default — a single relaxed atomic load on the hot path, and no
 * behaviour change whatsoever (the zero-steady-state-allocation bench
 * gates run disarmed).
 *
 * Tests arm it with a FaultScript: an explicit trigger list ("fire on
 * the 7th visit of SnapshotResume with a Transient error") for exact
 * replay, plus an optional seeded probabilistic mode where each visit
 * of an enabled site fires with probability p, keyed by
 * hash(seed, site, visit-index) — deterministic for a fixed submission
 * order, which the soak test pins by running the service single-file
 * per round.
 *
 * Arm/disarm must not race in-flight compiles: arm before submitting
 * work, disarm after every future has resolved. The per-site visit and
 * fired counters let tests assert coverage ("every site was actually
 * exercised").
 */
#ifndef MUSSTI_COMMON_FAULT_INJECTION_H
#define MUSSTI_COMMON_FAULT_INJECTION_H

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/error.h"

namespace mussti {

/** Instrumented locations that can be scripted to fail. */
enum class FaultSite {
    PassBoundary,    ///< before each compiler pass runs (throws)
    SnapshotCapture, ///< delta snapshot capture (degrades: capture dropped)
    SnapshotResume,  ///< delta snapshot resume (degrades: cold fallback)
    CacheStore,      ///< result/snapshot cache store (degrades: store skipped)
    WorkerDequeue,   ///< service worker picking up a job (throws)
    TunerProbe,      ///< tuner feasibility probe of one candidate (throws)
    TunerSweep,      ///< tuner harvesting one sweep outcome (throws)
};

inline constexpr int kFaultSiteCount = 7;

const char *faultSiteName(FaultSite site);

/** One scripted fault: fire on the `visit`-th (0-based) visit of `site`. */
struct FaultTrigger {
    FaultSite site = FaultSite::PassBoundary;
    std::uint64_t visit = 0;
    ErrorCategory category = ErrorCategory::Transient;
    std::string code = "fault.injected";
};

/** What the injector does while armed. */
struct FaultScript {
    /** Exact-replay triggers, matched against per-site visit counters. */
    std::vector<FaultTrigger> triggers;

    /**
     * Seeded probabilistic mode: every visit of a site listed in
     * `probabilisticSites` fires with `probability`, decided by
     * hash(seed, site, visit) — no RNG state, so a site's n-th visit
     * always decides the same way for a given seed.
     */
    double probability = 0.0;
    std::uint64_t seed = 0;
    std::vector<FaultSite> probabilisticSites;
    ErrorCategory probabilisticCategory = ErrorCategory::Transient;
};

class FaultInjector
{
  public:
    /** Install a script and start firing. Not safe during compiles. */
    static void arm(FaultScript script);

    /** Stop firing. Counters survive until the next arm()/reset. */
    static void disarm();

    static bool armed();

    /** Visits of / faults fired at a site since the last arm(). */
    static std::uint64_t visitCount(FaultSite site);
    static std::uint64_t firedCount(FaultSite site);

    /**
     * Consult the script at a site. Disarmed: nullopt, nothing counted.
     * Armed: counts the visit and returns the trigger if this visit
     * fires. Degrade-style sites use fires(); throw-style sites use
     * maybeThrow(), which raises the trigger's category/code through
     * the structured error path.
     */
    static std::optional<FaultTrigger> at(FaultSite site);
    static bool fires(FaultSite site);
    static void maybeThrow(FaultSite site);
};

} // namespace mussti

#endif // MUSSTI_COMMON_FAULT_INJECTION_H
