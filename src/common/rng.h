/**
 * @file
 * Deterministic random number generation for workload synthesis.
 *
 * A thin wrapper over SplitMix64/xoshiro256** so that every generated
 * benchmark circuit is bit-reproducible across platforms and standard
 * library implementations (std::mt19937 distributions are not portable).
 */
#ifndef MUSSTI_COMMON_RNG_H
#define MUSSTI_COMMON_RNG_H

#include <cstdint>

#include "common/logging.h"

namespace mussti {

/**
 * xoshiro256** PRNG with SplitMix64 seeding.
 *
 * Deliberately small: the library only needs uniform integers, doubles
 * in [0,1), and Fisher-Yates shuffles.
 */
class Rng
{
  public:
    /** Seed the stream; identical seeds yield identical sequences. */
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull)
    {
        // SplitMix64 expansion of the seed into the xoshiro state.
        std::uint64_t x = seed;
        for (auto &word : state_) {
            x += 0x9E3779B97F4A7C15ull;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
            z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit output. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound) using Lemire rejection. */
    std::uint64_t
    uniform(std::uint64_t bound)
    {
        MUSSTI_ASSERT(bound > 0, "uniform() bound must be positive");
        // Rejection sampling to avoid modulo bias.
        const std::uint64_t threshold = (0 - bound) % bound;
        for (;;) {
            const std::uint64_t r = next();
            if (r >= threshold)
                return r % bound;
        }
    }

    /** Uniform int in [lo, hi] inclusive. */
    int
    intIn(int lo, int hi)
    {
        MUSSTI_ASSERT(lo <= hi, "intIn() empty range");
        return lo + static_cast<int>(uniform(
            static_cast<std::uint64_t>(hi - lo + 1)));
    }

    /** Uniform double in [0, 1). */
    double
    real()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with probability p of true. */
    bool chance(double p) { return real() < p; }

    /** In-place Fisher-Yates shuffle. */
    template <typename Container>
    void
    shuffle(Container &items)
    {
        for (std::size_t i = items.size(); i > 1; --i) {
            const std::size_t j = uniform(i);
            std::swap(items[i - 1], items[j]);
        }
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
};

} // namespace mussti

#endif // MUSSTI_COMMON_RNG_H
