/**
 * @file
 * Static schedule analyzer: proves MUSS-TI invariants over a compiled
 * op stream WITHOUT executing it, and names each violation by rule.
 *
 * The sim/ ScheduleValidator answers "is this schedule legal?" with the
 * first violated invariant; this linter answers "which named invariants
 * does it violate, everywhere?" — the shape a fuzzing oracle, a CI
 * gate, and a corruption corpus need. The two are cross-checked on the
 * same corpus (tests/test_lint.cpp): a schedule is validator-legal iff
 * it lints with zero errors.
 *
 * Rule catalog (full rationale in src/lint/README.md):
 *   sch.dep-order    every gate op runs after its DAG predecessors
 *   sch.coverage     every circuit 2q gate appears exactly once
 *   sch.capacity     no zone ever holds more ions than its trap capacity
 *   sch.zone         gates only fire where the architecture allows
 *   sch.shuttle      shuttle windows never overlap (strict split/move/
 *                    merge triples, one ion in flight, real paths)
 *   sch.placement    no qubit is in two places at once; ops act on ions
 *                    where they actually are
 *   sch.swap-triple  inserted SWAP gates come in clean 3-gate runs
 *
 * The linter reports every violation (unlike the validator's
 * first-error stop), capped per rule so a totally corrupt artifact
 * cannot produce unbounded output. Checks run as three independent
 * walks (shuttle discipline, placement replay, DAG order/coverage) so
 * one corruption class fires its own rule without cascading into the
 * others — the property the corruption-corpus tests pin.
 */
#ifndef MUSSTI_LINT_SCHEDULE_LINTER_H
#define MUSSTI_LINT_SCHEDULE_LINTER_H

#include "circuit/circuit.h"
#include "lint/lint.h"
#include "sim/schedule.h"

namespace mussti {

class TargetDevice; // arch/target_device.h

/** Stable schedule-lint rule ids (shared by tests, corpus, CI greps). */
namespace lint_rules {
inline constexpr const char *kDepOrder = "sch.dep-order";
inline constexpr const char *kCoverage = "sch.coverage";
inline constexpr const char *kCapacity = "sch.capacity";
inline constexpr const char *kZone = "sch.zone";
inline constexpr const char *kShuttle = "sch.shuttle";
inline constexpr const char *kPlacement = "sch.placement";
inline constexpr const char *kSwapTriple = "sch.swap-triple";
} // namespace lint_rules

/**
 * Static analyzer bound to one target device. Stateless across lint()
 * calls; safe to share across threads (the device must outlive it).
 */
class ScheduleLinter
{
  public:
    /** Findings reported per rule before truncation kicks in. */
    static constexpr int kMaxFindingsPerRule = 16;

    explicit ScheduleLinter(const TargetDevice &device)
        : device_(device)
    {}

    /**
     * Lint a schedule against its LOWERED source circuit (the circuit
     * the schedule implements — CompileResult::lowered, same contract
     * as ScheduleValidator::validate).
     */
    LintReport lint(const Schedule &schedule,
                    const Circuit &circuit) const;

  private:
    const TargetDevice &device_;
};

/** One-shot convenience: the library oracle the fuzz/soak paths call. */
LintReport lintSchedule(const Schedule &schedule, const Circuit &circuit,
                        const TargetDevice &device);

} // namespace mussti

#endif // MUSSTI_LINT_SCHEDULE_LINTER_H
