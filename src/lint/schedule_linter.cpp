#include "lint/schedule_linter.h"

#include <algorithm>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "arch/target_device.h"
#include "dag/dag.h"

namespace mussti {

namespace {

/**
 * Report collector with a per-rule finding cap: a thoroughly corrupt
 * artifact reports its first kMaxFindingsPerRule violations per rule
 * plus one truncation note, never unbounded output.
 */
class RuleSink
{
  public:
    void
    add(const char *rule, const std::string &location,
        const std::string &message,
        LintSeverity severity = LintSeverity::Error)
    {
        const int count = ++counts_[rule];
        if (count <= ScheduleLinter::kMaxFindingsPerRule)
            report_.add(rule, severity, location, message);
    }

    LintReport
    take()
    {
        for (const auto &[rule, count] : counts_) {
            if (count > ScheduleLinter::kMaxFindingsPerRule)
                report_.add("lint.truncated", LintSeverity::Info, "",
                            std::to_string(count -
                                           ScheduleLinter::
                                               kMaxFindingsPerRule) +
                                " further finding(s) of rule " + rule +
                                " suppressed");
        }
        return std::move(report_);
    }

  private:
    LintReport report_;
    std::map<std::string, int> counts_;
};

std::string
opLocation(std::size_t index, const ScheduledOp &op)
{
    std::ostringstream out;
    out << "op " << index << " (" << op.describe() << ")";
    return out.str();
}

/** Message builder shorthand. */
std::string
msg(const std::ostringstream &out)
{
    return out.str();
}

/**
 * Per-op operand validity: ids the op's kind reads must be in range.
 * Ops failing this are reported once (sch.placement) and excluded from
 * the stateful walks, which index by these ids.
 */
std::vector<char>
checkFieldSanity(const Schedule &schedule, int num_qubits, int num_zones,
                 RuleSink &sink)
{
    std::vector<char> valid(schedule.ops.size(), 1);
    const auto qubit_ok = [&](int q) { return q >= 0 && q < num_qubits; };
    const auto zone_ok = [&](int z) { return z >= 0 && z < num_zones; };

    for (std::size_t i = 0; i < schedule.ops.size(); ++i) {
        const ScheduledOp &op = schedule.ops[i];
        bool ok = qubit_ok(op.q0);
        switch (op.kind) {
          case OpKind::Split:
            ok = ok && zone_ok(op.zoneFrom);
            break;
          case OpKind::Move:
            ok = ok && zone_ok(op.zoneFrom) && zone_ok(op.zoneTo);
            break;
          case OpKind::Merge:
            ok = ok && zone_ok(op.zoneTo);
            break;
          case OpKind::IonSwap:
            ok = ok && qubit_ok(op.q1);
            break;
          case OpKind::Gate1Q:
            break;
          case OpKind::Gate2Q:
            ok = ok && qubit_ok(op.q1) && zone_ok(op.zoneFrom);
            break;
          case OpKind::FiberGate:
            ok = ok && qubit_ok(op.q1) && zone_ok(op.zoneFrom) &&
                 zone_ok(op.zoneTo);
            break;
        }
        if (!ok) {
            valid[i] = 0;
            std::ostringstream out;
            out << "op references a qubit or zone outside the device "
                << "(" << num_qubits << " qubits, " << num_zones
                << " zones)";
            sink.add(lint_rules::kPlacement, opLocation(i, op), msg(out));
        }
    }
    return valid;
}

/**
 * Walk 1 — shuttle exclusivity. A relocation is the contiguous window
 * Split -> Move -> Merge of one ion; windows on the shuttle fabric are
 * serialized, so a second Split (or any gate/ion-swap) inside an open
 * window overlaps two windows. Tracking tolerates multiple open
 * windows after a violation so one overlap reports once, not per
 * continuation op.
 */
void
lintShuttleDiscipline(const Schedule &schedule,
                      const std::vector<char> &valid,
                      const TargetDevice &device, RuleSink &sink)
{
    enum class Stage { Split, Moved };
    struct Window
    {
        int qubit;
        Stage stage;
        int moveTarget = -1;
    };
    std::vector<Window> open;
    const auto find = [&](int q) {
        return std::find_if(open.begin(), open.end(),
                            [q](const Window &w) { return w.qubit == q; });
    };

    for (std::size_t i = 0; i < schedule.ops.size(); ++i) {
        if (!valid[i])
            continue;
        const ScheduledOp &op = schedule.ops[i];
        switch (op.kind) {
          case OpKind::Split: {
            if (find(op.q0) != open.end()) {
                std::ostringstream out;
                out << "second split of q" << op.q0
                    << " inside its own open shuttle window";
                sink.add(lint_rules::kShuttle, opLocation(i, op),
                         msg(out));
            } else {
                if (!open.empty()) {
                    std::ostringstream out;
                    out << "split of q" << op.q0
                        << " while the shuttle window of q"
                        << open.front().qubit
                        << " is still open — overlapping shuttles";
                    sink.add(lint_rules::kShuttle, opLocation(i, op),
                             msg(out));
                }
                open.push_back({op.q0, Stage::Split, -1});
            }
            break;
          }
          case OpKind::Move: {
            const auto it = find(op.q0);
            if (it == open.end() || it->stage != Stage::Split) {
                std::ostringstream out;
                out << "move of q" << op.q0
                    << " without a preceding split";
                sink.add(lint_rules::kShuttle, opLocation(i, op),
                         msg(out));
            } else {
                it->stage = Stage::Moved;
                it->moveTarget = op.zoneTo;
            }
            if (device.hopDistance(op.zoneFrom, op.zoneTo) < 0) {
                std::ostringstream out;
                out << "no shuttle path connects z" << op.zoneFrom
                    << " and z" << op.zoneTo
                    << " (cross-module relocation?)";
                sink.add(lint_rules::kShuttle, opLocation(i, op),
                         msg(out));
            }
            break;
          }
          case OpKind::Merge: {
            const auto it = find(op.q0);
            if (it == open.end() || it->stage != Stage::Moved) {
                std::ostringstream out;
                out << "merge of q" << op.q0
                    << " without a matching move";
                sink.add(lint_rules::kShuttle, opLocation(i, op),
                         msg(out));
                if (it != open.end())
                    open.erase(it);
            } else {
                if (it->moveTarget != op.zoneTo) {
                    std::ostringstream out;
                    out << "merge lands in z" << op.zoneTo
                        << " but the move targeted z" << it->moveTarget;
                    sink.add(lint_rules::kShuttle, opLocation(i, op),
                             msg(out));
                }
                open.erase(it);
            }
            break;
          }
          case OpKind::IonSwap:
          case OpKind::Gate1Q:
          case OpKind::Gate2Q:
          case OpKind::FiberGate: {
            if (!open.empty()) {
                std::ostringstream out;
                out << opKindName(op.kind)
                    << " interleaved into the open shuttle window of q"
                    << open.front().qubit;
                sink.add(lint_rules::kShuttle, opLocation(i, op),
                         msg(out));
            }
            break;
          }
        }
    }

    for (const Window &w : open) {
        std::ostringstream out;
        out << "schedule ends with q" << w.qubit << " still in flight";
        sink.add(lint_rules::kShuttle, "end of schedule", msg(out));
    }
}

/**
 * Walk 2 — placement, capacity, and gate-zone legality, by replaying
 * zone membership (an occupancy set per zone, not the ordered chain:
 * chain-order legality is the validator's P1; the linter's placement
 * rule is "no qubit in two places / ops act where the ion is").
 *
 * Every violation applies a local recovery (trust the op over the
 * derived state) so one corruption does not cascade into findings of
 * unrelated rules downstream.
 */
void
lintPlacementReplay(const Schedule &schedule,
                    const std::vector<char> &valid, const Circuit &circuit,
                    const TargetDevice &device, RuleSink &sink)
{
    const int num_qubits = circuit.numQubits();
    std::vector<int> zone_of(num_qubits, -1);
    std::vector<int> zone_count(device.numZones(), 0);

    // Initial placement: each qubit exactly once, within capacity.
    for (std::size_t z = 0; z < schedule.initialChains.size(); ++z) {
        const int zi = static_cast<int>(z);
        for (int q : schedule.initialChains[z]) {
            if (q < 0 || q >= num_qubits) {
                std::ostringstream out;
                out << "initial chain of z" << zi
                    << " names qubit " << q << " outside the circuit's "
                    << num_qubits << " qubits";
                sink.add(lint_rules::kPlacement, "initial placement",
                         msg(out));
                continue;
            }
            if (zone_of[q] >= 0) {
                std::ostringstream out;
                out << "q" << q << " placed in both z" << zone_of[q]
                    << " and z" << zi
                    << " — a qubit cannot be in two places at once";
                sink.add(lint_rules::kPlacement, "initial placement",
                         msg(out));
                continue; // Keep the first residence.
            }
            zone_of[q] = zi;
            ++zone_count[zi];
        }
        if (zone_count[zi] > device.zone(zi).capacity) {
            std::ostringstream out;
            out << "initial chain holds " << zone_count[zi]
                << " ions but z" << zi << " has capacity "
                << device.zone(zi).capacity;
            sink.add(lint_rules::kCapacity, "initial placement",
                     msg(out));
        }
    }
    for (int q = 0; q < num_qubits; ++q) {
        if (zone_of[q] < 0) {
            std::ostringstream out;
            out << "q" << q << " is never placed on the device";
            sink.add(lint_rules::kPlacement, "initial placement",
                     msg(out));
        }
    }

    // Inserted-SWAP run tracking (validator P5): after a clean triple
    // the two logical qubits exchange physical positions.
    int inserted_run = 0;
    int inserted_a = -1, inserted_b = -1;

    for (std::size_t i = 0; i < schedule.ops.size(); ++i) {
        if (!valid[i])
            continue;
        const ScheduledOp &op = schedule.ops[i];
        // Deferred: formatting every op's location costs more than the
        // whole replay on a clean schedule; build it only on a finding.
        const auto where = [&] { return opLocation(i, op); };

        if (op.isGate() && op.inserted) {
            const int lo = std::min(op.q0, op.q1);
            const int hi = std::max(op.q0, op.q1);
            if (inserted_run == 0) {
                inserted_a = lo;
                inserted_b = hi;
            } else if (lo != inserted_a || hi != inserted_b) {
                sink.add(lint_rules::kSwapTriple, where(),
                         "inserted SWAP gates interleaved across qubit "
                         "pairs");
                inserted_a = lo;
                inserted_b = hi;
                inserted_run = 0;
            }
            ++inserted_run;
        } else if (op.isGate() && inserted_run != 0) {
            sink.add(lint_rules::kSwapTriple, where(),
                     "inserted SWAP run interrupted before its 3rd "
                     "gate");
            inserted_run = 0;
        }

        switch (op.kind) {
          case OpKind::Split: {
            if (zone_of[op.q0] < 0) {
                std::ostringstream out;
                out << "split of q" << op.q0
                    << ", which is not resident anywhere";
                sink.add(lint_rules::kPlacement, where(), msg(out));
                break;
            }
            if (zone_of[op.q0] != op.zoneFrom) {
                std::ostringstream out;
                out << "q" << op.q0 << " is resident in z"
                    << zone_of[op.q0] << " but the split claims z"
                    << op.zoneFrom;
                sink.add(lint_rules::kPlacement, where(), msg(out));
            }
            --zone_count[zone_of[op.q0]];
            zone_of[op.q0] = -1;
            break;
          }
          case OpKind::Move:
            break; // In flight; walk 1 owns the discipline.
          case OpKind::Merge: {
            if (zone_of[op.q0] >= 0) {
                std::ostringstream out;
                out << "merge of q" << op.q0
                    << " which is already resident in z"
                    << zone_of[op.q0]
                    << " — a qubit cannot be in two places at once";
                sink.add(lint_rules::kPlacement, where(), msg(out));
                --zone_count[zone_of[op.q0]];
            }
            if (zone_count[op.zoneTo] + 1 >
                device.zone(op.zoneTo).capacity) {
                std::ostringstream out;
                out << "merge overfills z" << op.zoneTo << ": "
                    << zone_count[op.zoneTo] + 1
                    << " ions against capacity "
                    << device.zone(op.zoneTo).capacity;
                sink.add(lint_rules::kCapacity, where(), msg(out));
            }
            zone_of[op.q0] = op.zoneTo;
            ++zone_count[op.zoneTo];
            break;
          }
          case OpKind::IonSwap: {
            if (zone_of[op.q0] < 0 ||
                zone_of[op.q0] != zone_of[op.q1]) {
                std::ostringstream out;
                out << "ion swap of q" << op.q0 << " and q" << op.q1
                    << ", which are not co-resident";
                sink.add(lint_rules::kPlacement, where(), msg(out));
            }
            break; // Membership is order-free; nothing changes.
          }
          case OpKind::Gate1Q: {
            if (zone_of[op.q0] < 0) {
                std::ostringstream out;
                out << "1q gate on q" << op.q0
                    << ", which is not resident anywhere";
                sink.add(lint_rules::kZone, where(), msg(out));
            }
            break;
          }
          case OpKind::Gate2Q: {
            const int za = zone_of[op.q0];
            const int zb = zone_of[op.q1];
            if (za < 0 || zb < 0) {
                std::ostringstream out;
                out << "2q gate on unplaced qubit q"
                    << (za < 0 ? op.q0 : op.q1);
                sink.add(lint_rules::kZone, where(), msg(out));
                break;
            }
            if (za != zb) {
                std::ostringstream out;
                out << "2q gate needs co-resident qubits, but q" << op.q0
                    << " is in z" << za << " and q" << op.q1 << " in z"
                    << zb;
                sink.add(lint_rules::kZone, where(), msg(out));
                break;
            }
            if (!device.gateCapable(za)) {
                std::ostringstream out;
                out << "2q gate fired in z" << za << " ("
                    << zoneKindName(device.kindOf(za))
                    << "), which cannot execute gates";
                sink.add(lint_rules::kZone, where(), msg(out));
            }
            if (op.zoneFrom != za) {
                std::ostringstream out;
                out << "2q gate claims z" << op.zoneFrom
                    << " but both qubits are resident in z" << za;
                sink.add(lint_rules::kZone, where(), msg(out));
            }
            break;
          }
          case OpKind::FiberGate: {
            const int za = zone_of[op.q0];
            const int zb = zone_of[op.q1];
            if (za < 0 || zb < 0) {
                std::ostringstream out;
                out << "fiber gate on unplaced qubit q"
                    << (za < 0 ? op.q0 : op.q1);
                sink.add(lint_rules::kZone, where(), msg(out));
                break;
            }
            if (device.kindOf(za) != ZoneKind::Optical ||
                device.kindOf(zb) != ZoneKind::Optical ||
                device.moduleOf(za) == device.moduleOf(zb)) {
                std::ostringstream out;
                out << "fiber gate must couple optical zones of "
                    << "distinct modules, got z" << za << " ("
                    << zoneKindName(device.kindOf(za)) << ", m"
                    << device.moduleOf(za) << ") and z" << zb << " ("
                    << zoneKindName(device.kindOf(zb)) << ", m"
                    << device.moduleOf(zb) << ")";
                sink.add(lint_rules::kZone, where(), msg(out));
            } else if (op.zoneFrom != za || op.zoneTo != zb) {
                std::ostringstream out;
                out << "fiber gate claims z" << op.zoneFrom << "->z"
                    << op.zoneTo << " but the qubits are resident in z"
                    << za << " and z" << zb;
                sink.add(lint_rules::kZone, where(), msg(out));
            }
            break;
          }
        }

        // A completed triple exchanges the two logical qubits'
        // physical positions (occupancy counts are unchanged).
        if (inserted_run == 3) {
            std::swap(zone_of[inserted_a], zone_of[inserted_b]);
            inserted_run = 0;
            inserted_a = inserted_b = -1;
        }
    }

    if (inserted_run != 0)
        sink.add(lint_rules::kSwapTriple, "end of schedule",
                 "schedule ends mid inserted-SWAP triple");
}

/**
 * Walk 3 — dependency order and coverage, against the circuit's DAG.
 * Position-based (no destructive DAG replay): a gate op violates
 * dep-order iff some DAG predecessor's op appears LATER in the stream;
 * a predecessor with no op at all is a coverage hole, not a dep
 * violation — so each corruption class fires exactly its own rule.
 */
void
lintDagOrder(const Schedule &schedule, const std::vector<char> &valid,
             const Circuit &circuit, RuleSink &sink)
{
    // Horizon 1: this walk reads only nodes and edges, never the
    // look-ahead window, and the smallest horizon keeps the DAG's
    // window-initialisation sweep out of the lint budget (the linter
    // runs inline on every delta-resumed schedule).
    const DependencyDag dag(circuit, 1);
    std::vector<DagNodeId> by_circuit_index(circuit.size(), -1);
    for (DagNodeId id = 0; id < dag.size(); ++id)
        by_circuit_index[static_cast<std::size_t>(
            dag.node(id).circuitIndex)] = id;

    constexpr std::size_t kUnseen = static_cast<std::size_t>(-1);
    std::vector<std::size_t> first_op(
        static_cast<std::size_t>(dag.size()), kUnseen);

    for (std::size_t i = 0; i < schedule.ops.size(); ++i) {
        if (!valid[i])
            continue;
        const ScheduledOp &op = schedule.ops[i];
        if ((op.kind != OpKind::Gate2Q &&
             op.kind != OpKind::FiberGate) || op.inserted)
            continue;
        const auto where = [&] { return opLocation(i, op); };

        const bool known =
            op.circuitGate >= 0 &&
            static_cast<std::size_t>(op.circuitGate) <
                by_circuit_index.size() &&
            by_circuit_index[static_cast<std::size_t>(op.circuitGate)] >=
                0;
        if (!known) {
            std::ostringstream out;
            out << "gate op references circuit gate " << op.circuitGate
                << ", which is not a 2q gate of the circuit";
            sink.add(lint_rules::kCoverage, where(), msg(out));
            continue;
        }
        const DagNodeId node =
            by_circuit_index[static_cast<std::size_t>(op.circuitGate)];
        const Gate &g = dag.node(node).gate;
        const bool operands_match =
            (g.q0 == op.q0 && g.q1 == op.q1) ||
            (g.q0 == op.q1 && g.q1 == op.q0);
        if (!operands_match) {
            std::ostringstream out;
            out << "op operands disagree with circuit gate "
                << op.circuitGate << " (q" << g.q0 << ",q" << g.q1
                << ")";
            sink.add(lint_rules::kCoverage, where(), msg(out));
            continue;
        }
        if (first_op[static_cast<std::size_t>(node)] != kUnseen) {
            std::ostringstream out;
            out << "circuit gate " << op.circuitGate
                << " already executed at op "
                << first_op[static_cast<std::size_t>(node)]
                << " — every gate must appear exactly once";
            sink.add(lint_rules::kCoverage, where(), msg(out));
            continue;
        }
        first_op[static_cast<std::size_t>(node)] = i;
    }

    for (DagNodeId id = 0; id < dag.size(); ++id) {
        const std::size_t mine = first_op[static_cast<std::size_t>(id)];
        const DagNode &node = dag.node(id);
        if (mine == kUnseen) {
            std::ostringstream out;
            out << "circuit gate " << node.circuitIndex << " (q"
                << node.gate.q0 << ",q" << node.gate.q1
                << ") never appears in the schedule";
            sink.add(lint_rules::kCoverage, "whole schedule", msg(out));
            continue;
        }
        for (DagNodeId pred : node.preds) {
            const std::size_t pred_op =
                first_op[static_cast<std::size_t>(pred)];
            if (pred_op != kUnseen && pred_op > mine) {
                std::ostringstream out;
                out << "circuit gate " << node.circuitIndex
                    << " executes at op " << mine
                    << " before its dependency, circuit gate "
                    << dag.node(pred).circuitIndex << " at op "
                    << pred_op;
                sink.add(lint_rules::kDepOrder,
                         opLocation(mine, schedule.ops[mine]), msg(out));
            }
        }
    }
}

} // namespace

LintReport
ScheduleLinter::lint(const Schedule &schedule,
                     const Circuit &circuit) const
{
    RuleSink sink;

    if (schedule.initialChains.size() !=
        static_cast<std::size_t>(device_.numZones())) {
        std::ostringstream out;
        out << "schedule snapshots " << schedule.initialChains.size()
            << " zones but the device has " << device_.numZones()
            << " — wrong device for this schedule?";
        sink.add(lint_rules::kPlacement, "initial placement", msg(out));
        // Zone-indexed replays would index out of the descriptor set;
        // the DAG walk is device-free and still runs.
        std::vector<char> valid(schedule.ops.size(), 1);
        lintDagOrder(schedule, valid, circuit, sink);
        return sink.take();
    }

    const std::vector<char> valid = checkFieldSanity(
        schedule, circuit.numQubits(), device_.numZones(), sink);
    lintShuttleDiscipline(schedule, valid, device_, sink);
    lintPlacementReplay(schedule, valid, circuit, device_, sink);
    lintDagOrder(schedule, valid, circuit, sink);
    return sink.take();
}

LintReport
lintSchedule(const Schedule &schedule, const Circuit &circuit,
             const TargetDevice &device)
{
    return ScheduleLinter(device).lint(schedule, circuit);
}

} // namespace mussti
