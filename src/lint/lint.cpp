#include "lint/lint.h"

#include <algorithm>
#include <sstream>

#include "common/bench_json.h"

namespace mussti {

const char *
lintSeverityName(LintSeverity severity)
{
    switch (severity) {
      case LintSeverity::Info: return "info";
      case LintSeverity::Warning: return "warning";
      case LintSeverity::Error: return "error";
    }
    return "?";
}

void
LintReport::add(std::string rule, LintSeverity severity,
                std::string location, std::string message)
{
    findings.push_back({std::move(rule), severity, std::move(location),
                        std::move(message)});
}

void
LintReport::merge(const LintReport &other)
{
    findings.insert(findings.end(), other.findings.begin(),
                    other.findings.end());
}

int
LintReport::errorCount() const
{
    return static_cast<int>(
        std::count_if(findings.begin(), findings.end(),
                      [](const LintFinding &f) {
                          return f.severity == LintSeverity::Error;
                      }));
}

int
LintReport::warningCount() const
{
    return static_cast<int>(
        std::count_if(findings.begin(), findings.end(),
                      [](const LintFinding &f) {
                          return f.severity == LintSeverity::Warning;
                      }));
}

std::vector<std::string>
LintReport::firedRules() const
{
    std::vector<std::string> rules;
    rules.reserve(findings.size());
    for (const LintFinding &finding : findings)
        rules.push_back(finding.rule);
    std::sort(rules.begin(), rules.end());
    rules.erase(std::unique(rules.begin(), rules.end()), rules.end());
    return rules;
}

bool
LintReport::fired(const std::string &rule) const
{
    return std::any_of(findings.begin(), findings.end(),
                       [&](const LintFinding &f) {
                           return f.rule == rule;
                       });
}

std::string
LintReport::renderText() const
{
    if (findings.empty())
        return "clean: no findings\n";
    std::ostringstream out;
    for (const LintFinding &f : findings) {
        out << lintSeverityName(f.severity) << "[" << f.rule << "]";
        if (!f.location.empty())
            out << " " << f.location;
        out << ": " << f.message << "\n";
    }
    out << errorCount() << " error(s), " << warningCount()
        << " warning(s)\n";
    return out.str();
}

std::string
LintReport::renderJson() const
{
    std::ostringstream out;
    out << "{\n  \"schema\": \"mussti-lint-v1\",\n  \"findings\": [";
    for (std::size_t i = 0; i < findings.size(); ++i) {
        const LintFinding &f = findings[i];
        out << (i == 0 ? "\n" : ",\n")
            << "    {\"rule\": \"" << jsonEscape(f.rule) << "\", "
            << "\"severity\": \"" << lintSeverityName(f.severity)
            << "\", "
            << "\"location\": \"" << jsonEscape(f.location) << "\", "
            << "\"message\": \"" << jsonEscape(f.message) << "\"}";
    }
    if (!findings.empty())
        out << "\n  ";
    out << "],\n  \"summary\": {\"errors\": " << errorCount()
        << ", \"warnings\": " << warningCount() << "}\n}\n";
    return out.str();
}

} // namespace mussti
