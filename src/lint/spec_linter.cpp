#include "lint/spec_linter.h"

#include <algorithm>
#include <cctype>
#include <optional>
#include <sstream>
#include <vector>

#include "arch/device_registry.h"
#include "common/string_util.h"
#include "core/config.h"

namespace mussti {

namespace {

/** Known spec keys after canonicalSpecKey folding, both families. */
const char *const kKnownKeys[] = {"cap",     "storage", "op",
                                  "optical", "maxq",    "modules",
                                  "pitch",   "hetero"};

/** Levenshtein distance, for did-you-mean key suggestions. */
int
editDistance(const std::string &a, const std::string &b)
{
    std::vector<int> prev(b.size() + 1), cur(b.size() + 1);
    for (std::size_t j = 0; j <= b.size(); ++j)
        prev[j] = static_cast<int>(j);
    for (std::size_t i = 1; i <= a.size(); ++i) {
        cur[0] = static_cast<int>(i);
        for (std::size_t j = 1; j <= b.size(); ++j) {
            const int sub = prev[j - 1] + (a[i - 1] != b[j - 1]);
            cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
        }
        std::swap(prev, cur);
    }
    return prev[b.size()];
}

/** Closest known key within edit distance 2, or empty. */
std::string
nearestKnownKey(const std::string &key)
{
    std::string best;
    int best_distance = 3;
    for (const char *candidate : kKnownKeys) {
        const int d = editDistance(key, candidate);
        if (d < best_distance) {
            best_distance = d;
            best = candidate;
        }
    }
    return best;
}

/** True for a grid geometry token like "4x3". */
bool
isGeometryToken(const std::string &token)
{
    const std::size_t x = token.find('x');
    if (x == std::string::npos || x == 0 || x + 1 == token.size())
        return false;
    return parseIntStrict(token.substr(0, x)).has_value() &&
           parseIntStrict(token.substr(x + 1)).has_value();
}

/** One parsed range token: `lo..hi[:step=n]`. */
struct RangeToken
{
    std::optional<int> lo, hi, step;
    bool hasStep = false;
    bool malformed = false;
};

RangeToken
parseRangeToken(const std::string &value)
{
    RangeToken out;
    const std::size_t dots = value.find("..");
    std::string hi_part = value.substr(dots + 2);
    const std::size_t step_at = hi_part.find(":step=");
    if (step_at != std::string::npos) {
        out.hasStep = true;
        out.step = parseIntStrict(trim(hi_part.substr(step_at + 6)));
        hi_part = hi_part.substr(0, step_at);
    } else if (hi_part.find(':') != std::string::npos) {
        out.malformed = true; // Some other `:suffix` the grammar lacks.
        hi_part = hi_part.substr(0, hi_part.find(':'));
    }
    out.lo = parseIntStrict(trim(value.substr(0, dots)));
    out.hi = parseIntStrict(trim(hi_part));
    if (!out.lo || !out.hi || (out.hasStep && !out.step))
        out.malformed = true;
    return out;
}

/** Per-module zone mix of one spec (index = module). */
std::vector<EmlModuleMix>
moduleMixesOf(const EmlConfig &config, int module_count)
{
    if (!config.moduleMix.empty())
        return config.moduleMix;
    return std::vector<EmlModuleMix>(
        std::max(module_count, 1),
        EmlModuleMix{config.numStorageZones, config.numOperationZones,
                     config.numOpticalZones});
}

} // namespace

LintReport
lintDeviceSpec(const DeviceSpec &spec, int workload_qubits)
{
    LintReport report;
    const std::string where = spec.canonical();

    if (spec.family == DeviceFamily::Grid) {
        const GridConfig &g = spec.grid;
        if (g.trapCapacity < 2)
            report.add(lint_rules::kSpecCapacity, LintSeverity::Error,
                       where,
                       "trap capacity " +
                           std::to_string(g.trapCapacity) +
                           " cannot co-locate the two ions a 2q gate "
                           "needs");
        if (workload_qubits >= 0) {
            const long long slots = static_cast<long long>(g.width) *
                                    g.height * g.trapCapacity;
            if (workload_qubits > slots) {
                std::ostringstream out;
                out << "grid holds " << slots << " ions but the "
                    << "workload needs " << workload_qubits;
                report.add(lint_rules::kSpecWorkloadFit,
                           LintSeverity::Error, where, out.str());
            }
        }
        return report;
    }

    const EmlConfig &e = spec.eml;
    if (e.trapCapacity < 2)
        report.add(lint_rules::kSpecCapacity, LintSeverity::Error, where,
                   "trap capacity " + std::to_string(e.trapCapacity) +
                       " cannot co-locate the two ions a 2q gate needs");

    // Module count when it is knowable without a workload: pinned by a
    // mix or by forcedNumModules; otherwise derived from the workload.
    int module_count = -1;
    if (!e.moduleMix.empty())
        module_count = static_cast<int>(e.moduleMix.size());
    else if (e.forcedNumModules >= 1)
        module_count = e.forcedNumModules;
    else if (workload_qubits >= 0 && e.maxQubitsPerModule > 0)
        module_count = std::max(
            1, (workload_qubits + e.maxQubitsPerModule - 1) /
                   e.maxQubitsPerModule);

    const std::vector<EmlModuleMix> mixes =
        moduleMixesOf(e, std::max(module_count, 1));
    long long slots_per_module_min = -1;
    long long total_slots = 0;
    for (std::size_t m = 0; m < mixes.size(); ++m) {
        const EmlModuleMix &mix = mixes[m];
        const long long zones =
            mix.storage + mix.operation + mix.optical;
        const long long slots = zones * e.trapCapacity;
        total_slots += slots;
        if (slots_per_module_min < 0 || slots < slots_per_module_min)
            slots_per_module_min = slots;
        if (mix.operation + mix.optical <= 0) {
            std::ostringstream out;
            out << "module " << m << " has no gate-capable zone: no 2q "
                << "gate can ever execute there";
            report.add(lint_rules::kSpecGateZones, LintSeverity::Error,
                       where, out.str());
        }
        if (mixes.size() >= 2 && mix.optical <= 0) {
            std::ostringstream out;
            out << "module " << m << " has no optical zone, so it "
                << "cannot entangle with the other "
                << mixes.size() - 1 << " module(s)";
            report.add(lint_rules::kSpecOpticalLink, LintSeverity::Error,
                       where, out.str());
        }
    }
    if (module_count < 0 && e.numOpticalZones <= 0)
        report.add(lint_rules::kSpecOpticalLink, LintSeverity::Warning,
                   where,
                   "no optical zones: any multi-module instantiation "
                   "of this spec will have unreachable modules");

    if (e.moduleMix.empty() && e.forcedNumModules < 1 &&
        slots_per_module_min >= 0 &&
        e.maxQubitsPerModule > slots_per_module_min) {
        std::ostringstream out;
        out << "maxQubitsPerModule " << e.maxQubitsPerModule
            << " exceeds a module's " << slots_per_module_min
            << " ion slots — the derived module count under-provisions";
        report.add(lint_rules::kSpecWorkloadFit, LintSeverity::Warning,
                   where, out.str());
    }

    if (workload_qubits >= 0 && module_count >= 1) {
        // mixes holds one entry per module in both branches, so
        // total_slots is already the device-wide slot count.
        if (workload_qubits > total_slots) {
            std::ostringstream out;
            out << "device holds " << total_slots
                << " ions across " << module_count
                << " module(s) but the workload needs "
                << workload_qubits;
            report.add(lint_rules::kSpecWorkloadFit, LintSeverity::Error,
                       where, out.str());
        }
    }
    return report;
}

LintReport
lintSpecSearchText(const std::string &text)
{
    LintReport report;
    const std::size_t colon = text.find(':');
    if (colon == std::string::npos) {
        report.add(lint_rules::kSpecFamily, LintSeverity::Error, text,
                   "spec has no `family:` prefix (want `eml:...` or "
                   "`grid:...`)");
        return report;
    }
    const std::string family = toLower(trim(text.substr(0, colon)));
    if (family != "eml" && family != "grid") {
        std::string message = "unknown device family `" + family + "`";
        const int to_eml = editDistance(family, "eml");
        const int to_grid = editDistance(family, "grid");
        if (std::min(to_eml, to_grid) <= 2)
            message += std::string(" — did you mean `") +
                       (to_eml <= to_grid ? "eml" : "grid") + "`?";
        report.add(lint_rules::kSpecFamily, LintSeverity::Error, text,
                   message);
    }

    bool any_range = false;
    long long candidate_product = 1;
    for (const std::string &raw : split(text.substr(colon + 1), ',')) {
        const std::string token = trim(raw);
        if (token.empty()) {
            report.add(lint_rules::kSpecToken, LintSeverity::Error, text,
                       "empty spec token (stray comma?)");
            continue;
        }
        const std::size_t eq = token.find('=');
        if (eq == std::string::npos) {
            if (!isGeometryToken(token)) {
                report.add(lint_rules::kSpecToken, LintSeverity::Error,
                           token,
                           "token is neither `key=value` nor a WxH "
                           "geometry");
            }
            continue;
        }

        const std::string key =
            canonicalSpecKey(toLower(trim(token.substr(0, eq))));
        const std::string value = trim(token.substr(eq + 1));
        if (std::find_if(std::begin(kKnownKeys), std::end(kKnownKeys),
                         [&](const char *k) { return key == k; }) ==
            std::end(kKnownKeys)) {
            std::string message = "unknown spec key `" + key + "`";
            const std::string suggestion = nearestKnownKey(key);
            if (!suggestion.empty())
                message += " — did you mean `" + suggestion + "`?";
            report.add(lint_rules::kSpecToken, LintSeverity::Error, token,
                       message);
            continue;
        }

        if (key == "hetero" || value.find("..") == std::string::npos)
            continue;

        any_range = true;
        const RangeToken range = parseRangeToken(value);
        if (range.malformed || !range.lo || !range.hi) {
            report.add(lint_rules::kSearchDegenerateRange,
                       LintSeverity::Error, token,
                       "malformed range (want `lo..hi[:step=n]` with "
                       "integer bounds)");
            continue;
        }
        const int lo = *range.lo, hi = *range.hi;
        const int step = range.hasStep && range.step ? *range.step : 1;
        if (lo > hi) {
            std::ostringstream out;
            out << "empty range: lo " << lo << " > hi " << hi;
            report.add(lint_rules::kSearchDegenerateRange,
                       LintSeverity::Error, token, out.str());
            continue;
        }
        if (step < 1) {
            report.add(lint_rules::kSearchDegenerateRange,
                       LintSeverity::Error, token,
                       "step must be >= 1, got " +
                           std::to_string(step));
            continue;
        }
        if (lo == hi) {
            report.add(lint_rules::kSearchDegenerateRange,
                       LintSeverity::Warning, token,
                       "degenerate range: lo == hi enumerates a single "
                       "value — write `" + key + "=" +
                           std::to_string(lo) + "` if that is meant");
        } else if (step > hi - lo) {
            std::ostringstream out;
            out << "step " << step << " overshoots the range width "
                << hi - lo << ": only lo " << lo << " is enumerated";
            report.add(lint_rules::kSearchStepOvershoot,
                       LintSeverity::Warning, token, out.str());
        }
        candidate_product *= (hi - lo) / step + 1;
    }

    if (any_range && candidate_product == 1)
        report.add(lint_rules::kSearchSingleton, LintSeverity::Warning,
                   text,
                   "every range collapses to one value: the search "
                   "space holds a single candidate");
    return report;
}

LintReport
lintMusstiConfig(const MusstiConfig &config, int workload_qubits)
{
    LintReport report;
    const std::string where = "MusstiConfig";

    if (config.lookAhead < 1)
        report.add(lint_rules::kCfgLookahead, LintSeverity::Error, where,
                   "lookAhead must be >= 1, got " +
                       std::to_string(config.lookAhead));
    if (config.nextUseHorizon < 1)
        report.add(lint_rules::kCfgHorizon, LintSeverity::Error, where,
                   "nextUseHorizon must be >= 1, got " +
                       std::to_string(config.nextUseHorizon));
    else if (config.lookAhead > config.nextUseHorizon) {
        std::ostringstream out;
        out << "lookAhead " << config.lookAhead
            << " exceeds nextUseHorizon " << config.nextUseHorizon
            << ": the weight table asks for layers the DAG window "
            << "never maintains";
        report.add(lint_rules::kCfgHorizon, LintSeverity::Warning, where,
                   out.str());
    }
    if (config.enableSwapInsertion && config.swapThreshold < 3) {
        std::ostringstream out;
        out << "swapThreshold " << config.swapThreshold
            << " is below the 3-gate cost of an inserted SWAP: "
            << "insertion can never break even";
        report.add(lint_rules::kCfgSwapThreshold, LintSeverity::Error,
                   where, out.str());
    }

    report.merge(
        lintDeviceSpec(DeviceRegistry::specOf(config.device),
                       workload_qubits));
    return report;
}

} // namespace mussti
