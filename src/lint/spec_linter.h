/**
 * @file
 * Static analyzers for the configuration surface: device specs, the
 * tuner's search-range grammar, and MusstiConfig knobs.
 *
 * The registry/search parsers fatal() on malformed input — correct for
 * a CLI, useless for tooling that wants ALL problems listed. These
 * linters never throw: they scan tolerantly and report findings, so a
 * sweep driver can vet a spec file before burning a tuner run on it.
 *
 * Rule catalog (full rationale in src/lint/README.md):
 *   spec.family           unknown device family tag
 *   spec.token            unknown spec key (with nearest-key suggestion)
 *   spec.capacity         trap capacity cannot host a 2q gate
 *   spec.gate-zones       a module has no gate-capable zone
 *   spec.optical-link     multi-module device without fiber endpoints
 *   spec.workload-fit     device cannot hold the workload's qubits
 *   search.degenerate-range  lo == hi / lo > hi / malformed bounds
 *   search.step-overshoot    step larger than the range it walks
 *   search.singleton         a "search" that enumerates one candidate
 *   cfg.lookahead         weight-table look-ahead out of range
 *   cfg.swap-threshold    SWAP insertion below its 3-gate break-even
 *   cfg.horizon           DAG window horizon inconsistent with knobs
 */
#ifndef MUSSTI_LINT_SPEC_LINTER_H
#define MUSSTI_LINT_SPEC_LINTER_H

#include <string>

#include "lint/lint.h"

namespace mussti {

struct DeviceSpec;   // arch/device_registry.h
struct MusstiConfig; // core/config.h

/** Stable spec/search/config lint rule ids. */
namespace lint_rules {
inline constexpr const char *kSpecFamily = "spec.family";
inline constexpr const char *kSpecToken = "spec.token";
inline constexpr const char *kSpecCapacity = "spec.capacity";
inline constexpr const char *kSpecGateZones = "spec.gate-zones";
inline constexpr const char *kSpecOpticalLink = "spec.optical-link";
inline constexpr const char *kSpecWorkloadFit = "spec.workload-fit";
inline constexpr const char *kSearchDegenerateRange =
    "search.degenerate-range";
inline constexpr const char *kSearchStepOvershoot =
    "search.step-overshoot";
inline constexpr const char *kSearchSingleton = "search.singleton";
inline constexpr const char *kCfgLookahead = "cfg.lookahead";
inline constexpr const char *kCfgSwapThreshold = "cfg.swap-threshold";
inline constexpr const char *kCfgHorizon = "cfg.horizon";
} // namespace lint_rules

/**
 * Lint a parsed device spec. `workload_qubits` >= 0 additionally checks
 * the device can host that many program qubits (spec.workload-fit);
 * pass -1 when no workload is known.
 */
LintReport lintDeviceSpec(const DeviceSpec &spec, int workload_qubits = -1);

/**
 * Lint a spec or spec-search string BEFORE parsing it (the parsers
 * fatal() on the problems this reports). Accepts both the concrete
 * registry grammar and the search superset; never throws.
 */
LintReport lintSpecSearchText(const std::string &text);

/**
 * Lint compiler knobs: range checks plus cross-knob consistency, and
 * the embedded device config via lintDeviceSpec.
 */
LintReport lintMusstiConfig(const MusstiConfig &config,
                            int workload_qubits = -1);

} // namespace mussti

#endif // MUSSTI_LINT_SPEC_LINTER_H
