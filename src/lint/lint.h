/**
 * @file
 * Structured static-analysis findings: the shared vocabulary of the
 * mussti-lint subsystem (schedule linter, spec/config linter).
 *
 * A LintFinding names a rule (stable token id such as "sch.dep-order"),
 * a severity, a location inside the linted artifact ("op 42 (gate2q
 * q3,q7 ...)", "token cap=1"), and a human-readable message. A
 * LintReport is an ordered collection with text and JSON renderers; it
 * is data, never control flow — linters REPORT, callers decide whether
 * a finding is fatal (the CLI exits non-zero, the opt-in pipeline pass
 * throws, the fuzz oracle asserts).
 *
 * The full rule catalog — id, invariant, paper rationale — lives in
 * src/lint/README.md.
 */
#ifndef MUSSTI_LINT_LINT_H
#define MUSSTI_LINT_LINT_H

#include <string>
#include <vector>

namespace mussti {

/** Weight of a finding. Only Error findings fail a lint gate. */
enum class LintSeverity {
    Info,    ///< Observation; never actionable on its own.
    Warning, ///< Legal but suspect (degenerate range, contradictory knob).
    Error,   ///< Invariant violation; the artifact is wrong.
};

/** Human-readable severity name ("info", "warning", "error"). */
const char *lintSeverityName(LintSeverity severity);

/** One diagnostic produced by a linter. */
struct LintFinding
{
    std::string rule;     ///< Stable rule id, e.g. "sch.capacity".
    LintSeverity severity = LintSeverity::Error;
    std::string location; ///< Where in the artifact ("op 12 (...)").
    std::string message;  ///< What is wrong, in token-naming style.
};

/** Ordered findings of one lint run (possibly merged across linters). */
struct LintReport
{
    std::vector<LintFinding> findings;

    /** Append one finding. */
    void add(std::string rule, LintSeverity severity,
             std::string location, std::string message);

    /** Append every finding of another report (rule order preserved). */
    void merge(const LintReport &other);

    /** True when nothing at all was reported. */
    bool clean() const { return findings.empty(); }

    /** True when no Error-severity finding was reported. */
    bool ok() const { return errorCount() == 0; }

    int errorCount() const;
    int warningCount() const;

    /** Distinct rule ids that fired, sorted (corpus tests key on this). */
    std::vector<std::string> firedRules() const;

    /** True if any finding carries the given rule id. */
    bool fired(const std::string &rule) const;

    /**
     * Plain-text rendering, one finding per line:
     *   error[sch.capacity] op 12 (merge q3 -> z1): merge overfills ...
     * Returns "clean: no findings\n" for an empty report.
     */
    std::string renderText() const;

    /**
     * JSON rendering (schema "mussti-lint-v1"): a findings array plus
     * an error/warning summary. Clean reports render an empty array,
     * so `"findings": []` is grep-able in CI smokes.
     */
    std::string renderJson() const;
};

} // namespace mussti

#endif // MUSSTI_LINT_LINT_H
