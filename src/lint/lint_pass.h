/**
 * @file
 * Opt-in pipeline stage running the schedule linter on the compiled
 * artifact (MusstiConfig::lintLevel; see src/lint/README.md).
 *
 * The pass re-checks the pipeline's own output — a self-audit, not a
 * transformation: it never mutates the context. Level 1 reports
 * findings through warn(); level 2 (strict) fatal()s when the report
 * carries errors, turning the linter into a hard gate for soak runs
 * and CI sweeps. Level 0 pipelines simply never add the pass.
 */
#ifndef MUSSTI_LINT_LINT_PASS_H
#define MUSSTI_LINT_LINT_PASS_H

#include "core/pipeline.h"

namespace mussti {

/** Post-compile schedule audit (see file comment). */
class ScheduleLintPass : public CompilerPass
{
  public:
    explicit ScheduleLintPass(int level) : level_(level) {}

    const char *name() const override { return "schedule-lint"; }

    void run(CompileContext &ctx) const override;

  private:
    int level_;
};

} // namespace mussti

#endif // MUSSTI_LINT_LINT_PASS_H
