#include "lint/corrupt.h"

#include <algorithm>
#include <utility>

#include "arch/target_device.h"
#include "common/logging.h"
#include "lint/schedule_linter.h"

namespace mussti {

namespace {

/**
 * Zone membership after replaying a VALID schedule to its end: where
 * every qubit rests, and how many ions each zone holds. The appending
 * corruptions build on this so their planted ops are legal right up to
 * the intended violation.
 */
struct FinalState
{
    std::vector<int> zoneOf;    ///< Per qubit; -1 never happens (valid).
    std::vector<int> zoneCount; ///< Per zone.
};

FinalState
replayToEnd(const Schedule &schedule, const Circuit &circuit,
            const TargetDevice &device)
{
    FinalState st;
    st.zoneOf.assign(circuit.numQubits(), -1);
    st.zoneCount.assign(device.numZones(), 0);
    for (std::size_t z = 0; z < schedule.initialChains.size(); ++z) {
        for (int q : schedule.initialChains[z]) {
            st.zoneOf[q] = static_cast<int>(z);
            ++st.zoneCount[z];
        }
    }
    int run = 0, a = -1, b = -1;
    for (const ScheduledOp &op : schedule.ops) {
        if (op.isGate() && op.inserted) {
            if (run == 0) {
                a = std::min(op.q0, op.q1);
                b = std::max(op.q0, op.q1);
            }
            if (++run == 3) {
                std::swap(st.zoneOf[a], st.zoneOf[b]);
                run = 0;
            }
            continue;
        }
        if (op.kind == OpKind::Split) {
            --st.zoneCount[st.zoneOf[op.q0]];
            st.zoneOf[op.q0] = -1;
        } else if (op.kind == OpKind::Merge) {
            st.zoneOf[op.q0] = op.zoneTo;
            ++st.zoneCount[op.zoneTo];
        }
    }
    return st;
}

ScheduledOp
makeOp(OpKind kind, int q0, int zone_from, int zone_to)
{
    ScheduledOp op;
    op.kind = kind;
    op.q0 = q0;
    op.zoneFrom = zone_from;
    op.zoneTo = zone_to;
    op.durationUs = 1.0;
    return op;
}

/** Append a full Split/Move/Merge relocation of q (legal on its own). */
void
appendRelocation(Schedule &schedule, int q, int from, int to)
{
    schedule.push(makeOp(OpKind::Split, q, from, -1));
    schedule.push(makeOp(OpKind::Move, q, from, to));
    schedule.push(makeOp(OpKind::Merge, q, -1, to));
}

/**
 * sch.dep-order — swap two stream-adjacent, dependent gate ops. Being
 * adjacent, no placement state changes between them, so the swap is
 * invisible to every walk except the DAG-order analysis.
 */
bool
corruptDepOrder(Schedule &schedule)
{
    for (std::size_t i = 0; i + 1 < schedule.ops.size(); ++i) {
        const ScheduledOp &x = schedule.ops[i];
        const ScheduledOp &y = schedule.ops[i + 1];
        if (x.isGate() && y.isGate() && !x.inserted && !y.inserted &&
            x.kind != OpKind::Gate1Q && y.kind != OpKind::Gate1Q &&
            (y.q0 == x.q0 || y.q0 == x.q1 || y.q1 == x.q0 ||
             y.q1 == x.q1)) {
            std::swap(schedule.ops[i], schedule.ops[i + 1]);
            return true;
        }
    }
    return false;
}

/** sch.coverage — duplicate a circuit gate op immediately after itself. */
bool
corruptCoverage(Schedule &schedule)
{
    for (std::size_t i = 0; i < schedule.ops.size(); ++i) {
        const ScheduledOp &op = schedule.ops[i];
        if (op.isGate() && !op.inserted && op.kind != OpKind::Gate1Q) {
            const ScheduledOp copy = op;
            schedule.ops.insert(
                schedule.ops.begin() + static_cast<std::ptrdiff_t>(i),
                copy);
            return true;
        }
    }
    return false;
}

/**
 * sch.capacity — append legal relocations that pack ions into one zone
 * until a merge overflows its trap. Every planted op is individually
 * well-formed; only the final merge breaks an invariant.
 */
bool
corruptCapacity(Schedule &schedule, const Circuit &circuit,
                const TargetDevice &device)
{
    FinalState st = replayToEnd(schedule, circuit, device);
    for (int target = 0; target < device.numZones(); ++target) {
        int need = device.zone(target).capacity + 1 -
                   st.zoneCount[target];
        if (need < 1)
            continue;
        std::vector<int> donors;
        for (int q = 0; q < circuit.numQubits(); ++q) {
            const int from = st.zoneOf[q];
            if (from != target && device.hopDistance(from, target) >= 0)
                donors.push_back(q);
        }
        if (static_cast<int>(donors.size()) < need)
            continue;
        for (int k = 0; k < need; ++k)
            appendRelocation(schedule, donors[k], st.zoneOf[donors[k]],
                             target);
        return true;
    }
    return false;
}

/**
 * sch.shuttle — interleave two shuttle windows. Each ion merges back
 * into its own zone (a zero-hop relocation), so nothing else changes:
 * the only violation is the second split inside an open window.
 */
bool
corruptShuttle(Schedule &schedule, const Circuit &circuit,
               const TargetDevice &device)
{
    if (circuit.numQubits() < 2)
        return false;
    const FinalState st = replayToEnd(schedule, circuit, device);
    const int qa = 0, qb = 1;
    const int za = st.zoneOf[qa], zb = st.zoneOf[qb];
    schedule.push(makeOp(OpKind::Split, qa, za, -1));
    schedule.push(makeOp(OpKind::Split, qb, zb, -1));
    schedule.push(makeOp(OpKind::Move, qa, za, za));
    schedule.push(makeOp(OpKind::Merge, qa, -1, za));
    schedule.push(makeOp(OpKind::Move, qb, zb, zb));
    schedule.push(makeOp(OpKind::Merge, qb, -1, zb));
    return true;
}

/**
 * sch.placement — also list an already-placed qubit in a second zone's
 * initial chain. The duplicate is appended to a LATER zone with spare
 * capacity, so the linter's first-seen-wins recovery keeps every
 * count and residence exactly as the valid schedule had them.
 */
bool
corruptPlacement(Schedule &schedule, const TargetDevice &device)
{
    for (std::size_t z = 0; z < schedule.initialChains.size(); ++z) {
        if (schedule.initialChains[z].empty())
            continue;
        const int q = schedule.initialChains[z].front();
        for (std::size_t t = z + 1; t < schedule.initialChains.size();
             ++t) {
            if (static_cast<int>(schedule.initialChains[t].size()) <
                device.zone(static_cast<int>(t)).capacity) {
                schedule.initialChains[t].push_back(q);
                return true;
            }
        }
    }
    return false;
}

/**
 * sch.zone — rewrite one gate op's zone field to somewhere the qubits
 * are not. Residency itself stays legal, so only the field-mismatch
 * check (the validator's "zone field mismatch") fires.
 */
bool
corruptZone(Schedule &schedule, const TargetDevice &device)
{
    for (ScheduledOp &op : schedule.ops) {
        if (op.kind != OpKind::Gate2Q)
            continue;
        // Prefer a gate-incapable zone (the paper's storage traps);
        // any zone other than the true one exposes the mismatch.
        int replacement = -1;
        for (int z = 0; z < device.numZones(); ++z) {
            if (z == op.zoneFrom)
                continue;
            if (!device.gateCapable(z)) {
                replacement = z;
                break;
            }
            if (replacement < 0)
                replacement = z;
        }
        if (replacement < 0)
            return false;
        op.zoneFrom = replacement;
        return true;
    }
    return false;
}

/**
 * sch.swap-triple — append two inserted SWAP gates on a co-resident
 * pair and end the schedule there: a run cut off before its third
 * gate. The gates themselves are legally placed, so nothing else
 * fires.
 */
bool
corruptSwapTriple(Schedule &schedule, const Circuit &circuit,
                  const TargetDevice &device)
{
    const FinalState st = replayToEnd(schedule, circuit, device);
    for (int z = 0; z < device.numZones(); ++z) {
        if (!device.gateCapable(z) || st.zoneCount[z] < 2)
            continue;
        int qa = -1, qb = -1;
        for (int q = 0; q < circuit.numQubits(); ++q) {
            if (st.zoneOf[q] != z)
                continue;
            if (qa < 0)
                qa = q;
            else {
                qb = q;
                break;
            }
        }
        if (qb < 0)
            continue;
        for (int k = 0; k < 2; ++k) {
            ScheduledOp op = makeOp(OpKind::Gate2Q, qa, z, -1);
            op.q1 = qb;
            op.inserted = true;
            schedule.push(op);
        }
        return true;
    }
    return false;
}

} // namespace

std::vector<std::string>
corruptibleRules()
{
    return {lint_rules::kDepOrder, lint_rules::kCoverage,
            lint_rules::kCapacity, lint_rules::kZone,
            lint_rules::kShuttle,  lint_rules::kPlacement,
            lint_rules::kSwapTriple};
}

bool
corruptSchedule(Schedule &schedule, const Circuit &circuit,
                const TargetDevice &device, const std::string &rule)
{
    if (rule == lint_rules::kDepOrder)
        return corruptDepOrder(schedule);
    if (rule == lint_rules::kCoverage)
        return corruptCoverage(schedule);
    if (rule == lint_rules::kCapacity)
        return corruptCapacity(schedule, circuit, device);
    if (rule == lint_rules::kShuttle)
        return corruptShuttle(schedule, circuit, device);
    if (rule == lint_rules::kPlacement)
        return corruptPlacement(schedule, device);
    if (rule == lint_rules::kZone)
        return corruptZone(schedule, device);
    if (rule == lint_rules::kSwapTriple)
        return corruptSwapTriple(schedule, circuit, device);
    panic("unknown corruption rule: " + rule);
    return false;
}

} // namespace mussti
