/**
 * @file
 * Surgical schedule corruptions, one per schedule-lint rule.
 *
 * Each generator takes a VALID compiled schedule and plants exactly one
 * violation class, engineered so the linter fires precisely the named
 * rule and nothing else — the property the corruption-corpus tests
 * (tests/test_lint.cpp) pin, and what makes the corpus a true
 * per-rule detector test rather than a "something is wrong" test.
 * lint_cli --corrupt RULE exposes the same generators for CI smokes
 * and manual inspection.
 *
 * Generators return false when the schedule lacks the structure the
 * corruption needs (e.g. no adjacent dependent gate pair); callers
 * pick a richer circuit.
 */
#ifndef MUSSTI_LINT_CORRUPT_H
#define MUSSTI_LINT_CORRUPT_H

#include <string>
#include <vector>

#include "circuit/circuit.h"
#include "sim/schedule.h"

namespace mussti {

class TargetDevice;

/** Rule ids corruptSchedule() understands (the sch.* catalog). */
std::vector<std::string> corruptibleRules();

/**
 * Plant the violation of `rule` into a valid schedule, in place.
 * `circuit` is the LOWERED circuit the schedule implements. Returns
 * false (schedule untouched) when the corruption cannot be staged;
 * panics on an unknown rule id.
 */
bool corruptSchedule(Schedule &schedule, const Circuit &circuit,
                     const TargetDevice &device, const std::string &rule);

} // namespace mussti

#endif // MUSSTI_LINT_CORRUPT_H
