#include "lint/lint_pass.h"

#include "common/logging.h"
#include "lint/schedule_linter.h"

namespace mussti {

void
ScheduleLintPass::run(CompileContext &ctx) const
{
    if (level_ <= 0)
        return;
    const LintReport report = lintSchedule(
        ctx.schedule, ctx.requireLowered(), ctx.requireDevice());
    if (report.clean())
        return;
    if (level_ >= 2 && !report.ok())
        fatal("schedule lint failed (lintLevel=2):\n" +
              report.renderText());
    warn("schedule lint findings:\n" + report.renderText());
}

} // namespace mussti
