/**
 * @file
 * Gate dependency graph (section 3.1 of the paper).
 *
 * Nodes are the two-qubit gates of a circuit; single-qubit gates are
 * recorded as satellite lists attached to the following two-qubit node
 * (or to a terminal list) so they can be costed without participating in
 * scheduling, exactly the simplification the paper applies. An edge
 * (g_i, g_j) means g_j shares a qubit with g_i and appears later; the
 * frontier is the set of nodes with zero unresolved predecessors.
 *
 * The structure is consumed destructively by schedulers: complete(node)
 * retires a frontier node and unlocks its successors. The k-layer window
 * needed by the SWAP-insertion weight table is computed on demand without
 * mutating the graph.
 */
#ifndef MUSSTI_DAG_DAG_H
#define MUSSTI_DAG_DAG_H

#include <cstdint>
#include <vector>

#include "circuit/circuit.h"

namespace mussti {

/** Node id inside a DependencyDag (index into its node array). */
using DagNodeId = int;

/** One two-qubit gate node. */
struct DagNode
{
    Gate gate;                       ///< The two-qubit gate.
    int circuitIndex = -1;           ///< Position in the source circuit
                                     ///< (FCFS tie-breaking key).
    std::vector<DagNodeId> succs;    ///< Dependent nodes.
    int pendingPreds = 0;            ///< Unresolved predecessor count.
    std::vector<Gate> leading1q;     ///< 1q gates to cost just before this
                                     ///< node executes.
    bool done = false;
};

/**
 * Dependency DAG over the two-qubit gates of a circuit.
 */
class DependencyDag
{
  public:
    /** Build from a circuit in O(g). */
    explicit DependencyDag(const Circuit &circuit);

    /** Total number of two-qubit nodes. */
    int size() const { return static_cast<int>(nodes_.size()); }

    /** Number of not-yet-completed nodes. */
    int remaining() const { return remaining_; }

    /** True when every node has been completed. */
    bool empty() const { return remaining_ == 0; }

    /** Node access. */
    const DagNode &node(DagNodeId id) const { return nodes_[id]; }

    /**
     * Current frontier in ascending circuitIndex order (the paper's
     * first-come-first-served order).
     */
    const std::vector<DagNodeId> &frontier() const { return frontier_; }

    /**
     * Retire a frontier node; its successors whose predecessors are all
     * done join the frontier. Panics if the node is not in the frontier.
     */
    void complete(DagNodeId id);

    /**
     * Nodes in the first `k` layers of the remaining graph, layer by
     * layer: layer 0 is the frontier, layer i+1 are nodes unlocked when
     * layers <= i retire. Non-destructive.
     */
    std::vector<std::vector<DagNodeId>> frontLayers(int k) const;

    /**
     * Trailing single-qubit gates (after the last 2q gate on their qubit)
     * — costed at the end of a schedule.
     */
    const std::vector<Gate> &trailing1q() const { return trailing1q_; }

    /** Sum of pendingPreds==0 checks; exposed for tests. */
    bool isReady(DagNodeId id) const;

  private:
    std::vector<DagNode> nodes_;
    std::vector<DagNodeId> frontier_;
    std::vector<Gate> trailing1q_;
    int remaining_ = 0;

    void insertSortedFrontier(DagNodeId id);
};

} // namespace mussti

#endif // MUSSTI_DAG_DAG_H
