/**
 * @file
 * Gate dependency graph (section 3.1 of the paper).
 *
 * Nodes are the two-qubit gates of a circuit; single-qubit gates are
 * recorded as satellite lists attached to the following two-qubit node
 * (or to a terminal list) so they can be costed without participating in
 * scheduling, exactly the simplification the paper applies. An edge
 * (g_i, g_j) means g_j shares a qubit with g_i and appears later; the
 * frontier is the set of nodes with zero unresolved predecessors.
 *
 * The structure is consumed destructively by schedulers: complete(node)
 * retires a frontier node and unlocks its successors.
 *
 * ## The incremental front window
 *
 * The replacement scheduler needs, at every routing step, the DAG layer
 * of each qubit's next two-qubit gate within a `windowHorizon`-layer
 * look-ahead (the paper's "anticipated qubit usage", section 3.4). Layer
 * membership is the longest-path depth over the *remaining* (non-retired)
 * nodes: a node's layer is 0 when every predecessor is done, otherwise
 * 1 + the maximum layer among its unfinished predecessors — exactly the
 * layers a peel of the current frontier would produce.
 *
 * Instead of re-peeling the graph per step (O(gates) scratch and walk),
 * the DAG maintains this state persistently:
 *
 *  - `windowDepth(node)`: the node's layer, clamped to the horizon,
 *    initialised by one topological sweep at construction and updated on
 *    every complete()/retire by a decrease-only worklist over the
 *    affected cone (depths never increase as nodes retire);
 *  - `nextUse()`: per qubit, the layer of its first unfinished gate (the
 *    head of its dependency chain), or the horizon sentinel when the
 *    qubit is idle throughout the window. Because the gates touching a
 *    qubit form a chain in the DAG, the chain head always carries the
 *    minimum depth, so this is an O(1)-per-qubit read.
 *
 * frontLayers(k) keeps the non-destructive peel (the SWAP-insertion
 * weight table wants explicit layer lists) but reuses persistent scratch
 * buffers, so it performs no O(total-gates) allocation per call.
 *
 * ## Allocation discipline
 *
 * The scheduler's hot loop (drain, route, complete) must perform zero
 * heap allocations in steady state. Everything that grows during that
 * loop — the frontier, the relaxation worklist, the window buckets, the
 * retirement queues — is reserved to its proven bound at construction,
 * and a DagScratch (core/scheduler_workspace.h) may donate warm buffers
 * so even construction reuses the previous run's capacity. Per-qubit
 * chains are CSR (one flat array + offsets), not a vector-of-vectors.
 */
#ifndef MUSSTI_DAG_DAG_H
#define MUSSTI_DAG_DAG_H

#include <cstdint>
#include <vector>

#include "circuit/circuit.h"
#include "common/logging.h"

namespace mussti {

/** Node id inside a DependencyDag (index into its node array). */
using DagNodeId = int;

/**
 * Inline edge list of a DAG node. A node has at most two edges per
 * direction — its qubits each contribute one previous and one next gate
 * (deduplicated when both operands share the neighbour) — so edges live
 * inside the node, sparing two heap allocations per gate and a pointer
 * chase per traversal.
 */
class DagEdgeList
{
  public:
    void
    push_back(DagNodeId id)
    {
        MUSSTI_ASSERT(count_ < 2, "a DAG node has at most 2 edges per "
                      "direction (one per operand qubit)");
        ids_[count_++] = id;
    }

    const DagNodeId *begin() const { return ids_; }
    const DagNodeId *end() const { return ids_ + count_; }
    std::size_t size() const { return static_cast<std::size_t>(count_); }
    bool empty() const { return count_ == 0; }

  private:
    DagNodeId ids_[2] = {-1, -1};
    int count_ = 0;
};

/** One two-qubit gate node. */
struct DagNode
{
    Gate gate;                       ///< The two-qubit gate.
    int circuitIndex = -1;           ///< Position in the source circuit
                                     ///< (FCFS tie-breaking key).
    DagEdgeList succs;               ///< Dependent nodes.
    DagEdgeList preds;               ///< Prerequisite nodes (mirror of
                                     ///< succs; drives window updates).
    int pendingPreds = 0;            ///< Unresolved predecessor count.
    int lead1qOffset = 0;            ///< Slice of the DAG's flat leading-
    int lead1qCount = 0;             ///< 1q gate store (leading1q(id)).
    bool done = false;
};

/** Read-only slice of the DAG's flat single-qubit gate store. */
struct GateSpan
{
    const Gate *data = nullptr;
    int count = 0;

    const Gate *begin() const { return data; }
    const Gate *end() const { return data + count; }
    int size() const { return count; }
};

/**
 * Recycled storage for the DependencyDag's incremental-window state.
 * The MUSS-TI scheduler rebuilds the DAG for every run (three per SABRE
 * compile); donating these buffers lets each rebuild reuse the previous
 * run's capacity instead of re-growing from empty, and keeps the
 * window-maintenance wave (flushWindow) allocation-free once warm.
 * Moved into the DAG at construction and handed back on destruction;
 * contents are opaque capacity, never information — a DAG built with a
 * used scratch is identical to one built without.
 */
struct DagScratch
{
    std::vector<DagNode> nodes;      ///< Node storage.
    std::vector<Gate> lead1qGates;   ///< Flat leading-1q store.
    std::vector<Gate> trailing1q;    ///< Trailing-1q list.
    std::vector<int> depth;          ///< Per-node clamped window layer.
    std::vector<int> nextUse;        ///< Per-qubit chain-head depth.
    std::vector<int> nextUseLog;     ///< syncNextUse change log.
    std::vector<int> chainOffsets;   ///< CSR offsets of the qubit chains.
    std::vector<DagNodeId> chainNodes; ///< CSR payload of the chains.
    std::vector<int> chainHead;      ///< Per-qubit first-unfinished index.
    std::vector<DagNodeId> frontier; ///< Ready-node list (sorted by id).
    std::vector<DagNodeId> worklist; ///< Depth-relaxation wave scratch.
    std::vector<std::uint8_t> inWave; ///< Wave-membership dedup flags.
    std::vector<int> bucketPos;      ///< Node position in its bucket.
    std::vector<DagNodeId> pendingRetired; ///< Retirements pre-flush.
    std::vector<int> dirtyQubits;    ///< Qubits whose chain head moved.
    std::vector<std::vector<DagNodeId>> windowBuckets; ///< Per-depth sets.
    std::vector<int> peelPreds;      ///< frontLayers scratch (-1 = clean).
    std::vector<DagNodeId> peelTouched; ///< frontLayers reset list.
};

/**
 * Read-only view of one qubit's dependency chain (CSR slice). Nodes
 * appear in circuit order; the unfinished suffix starts at
 * DependencyDag::qubitChainHead.
 */
struct QubitChainView
{
    const DagNodeId *data = nullptr;
    int count = 0;

    const DagNodeId *begin() const { return data; }
    const DagNodeId *end() const { return data + count; }
    int size() const { return count; }

    DagNodeId
    operator[](int i) const
    {
        MUSSTI_ASSERT(i >= 0 && i < count,
                      "chain view index " << i << " outside " << count);
        return data[i];
    }
};

/**
 * Dependency DAG over the two-qubit gates of a circuit.
 */
class DependencyDag
{
  public:
    /** Default look-ahead horizon of the incremental window (layers). */
    static constexpr int kDefaultWindowHorizon = 64;

    /**
     * Build from a circuit in O(g). `window_horizon` bounds the
     * incremental look-ahead window: depths and nextUse() values are
     * clamped to it, and it doubles as the idle sentinel. `scratch`,
     * when given, donates warm buffers for the window state (returned
     * when the DAG is destroyed); output is identical either way.
     */
    explicit DependencyDag(const Circuit &circuit,
                           int window_horizon = kDefaultWindowHorizon,
                           DagScratch *scratch = nullptr);

    ~DependencyDag();

    DependencyDag(const DependencyDag &) = delete;
    DependencyDag &operator=(const DependencyDag &) = delete;

    /** Total number of two-qubit nodes. */
    int size() const { return static_cast<int>(nodes_.size()); }

    /** Number of not-yet-completed nodes. */
    int remaining() const { return remaining_; }

    /** True when every node has been completed. */
    bool empty() const { return remaining_ == 0; }

    /** Node access. */
    const DagNode &node(DagNodeId id) const { return nodes_[id]; }

    /**
     * Single-qubit gates costed just before this node executes. Stored
     * flat across the DAG (one array, not one vector per node) so
     * 1q-heavy circuits build without thousands of small allocations.
     */
    GateSpan
    leading1q(DagNodeId id) const
    {
        const DagNode &n = nodes_[id];
        return {lead1qGates_.data() + n.lead1qOffset, n.lead1qCount};
    }

    /**
     * Current frontier in ascending circuitIndex order (the paper's
     * first-come-first-served order).
     */
    const std::vector<DagNodeId> &frontier() const { return frontier_; }

    /**
     * Retire a frontier node; its successors whose predecessors are all
     * done join the frontier, and the incremental window (depths and
     * nextUse) is updated in place. Panics if the node is not in the
     * frontier.
     */
    void complete(DagNodeId id);

    /**
     * Nodes in the first `k` layers of the remaining graph, layer by
     * layer: layer 0 is the frontier, layer i+1 are nodes unlocked when
     * layers <= i retire. Non-destructive; reuses internal scratch, so
     * calls allocate only for the returned layers themselves.
     */
    std::vector<std::vector<DagNodeId>> frontLayers(int k) const;

    /** The window horizon this DAG was built with. */
    int windowHorizon() const { return horizon_; }

    /**
     * Unfinished nodes whose window depth is exactly `depth`
     * (0 <= depth < windowHorizon()), maintained incrementally. The
     * order is arbitrary — use frontLayers() when layer-internal FCFS
     * order matters; use this for order-independent aggregation like
     * the SWAP-insertion weight table. For depth < k <= horizon the set
     * equals layer `depth` of frontLayers(k).
     */
    const std::vector<DagNodeId> &
    windowLayer(int depth) const
    {
        MUSSTI_ASSERT(depth >= 0 && depth < horizon_,
                      "window layer " << depth << " outside horizon "
                      << horizon_);
        flushWindow();
        return windowBuckets_[depth];
    }

    /**
     * Layer of a node within the window, clamped to windowHorizon():
     * 0 for frontier nodes, horizon for nodes at or beyond it. Retired
     * nodes keep their last depth (callers filter on done).
     */
    int
    windowDepth(DagNodeId id) const
    {
        flushWindow();
        return depth_[id];
    }

    /**
     * Anticipated-usage table, maintained incrementally: nextUse()[q] is
     * the window depth of qubit q's first unfinished two-qubit gate, or
     * windowHorizon() when q has none within the window. Always sized to
     * the circuit's qubit count.
     *
     * Retirements are batched: complete() only queues the update, and
     * the first read after a burst settles the window in one
     * output-sensitive wave (see flushWindow), so draining a run of
     * executable gates costs nothing per gate.
     */
    const std::vector<int> &
    nextUse() const
    {
        flushWindow();
        return nextUse_;
    }

    /**
     * Turn on change-logging for nextUse so syncNextUse() can patch a
     * caller's snapshot instead of re-copying the whole table. Off by
     * default: consumers that never sync (validator, grid baselines)
     * pay nothing and the log cannot grow unbounded.
     */
    void enableNextUseLog() { logNextUse_ = true; }

    /**
     * Bring `copy` up to date with nextUse(). With `full` (the first
     * snapshot of a run) the whole table is copied; afterwards only the
     * qubits whose value changed since the previous sync are patched —
     * a routing step touches a handful of chain heads, not the whole
     * qubit population. Requires enableNextUseLog(). The result is
     * always exactly nextUse(); the log is an optimisation, not a
     * source of truth.
     */
    void
    syncNextUse(std::vector<int> &copy, bool full) const
    {
        MUSSTI_ASSERT(logNextUse_, "syncNextUse without enableNextUseLog");
        flushWindow();
        if (full || copy.size() != nextUse_.size()) {
            copy = nextUse_;
        } else {
            for (int q : nextUseLog_)
                copy[q] = nextUse_[q];
        }
        nextUseLog_.clear();
    }

    /**
     * All nodes touching qubit q, in circuit order. The unfinished ones
     * form the suffix starting at qubitChainHead(q), and their window
     * depths are non-decreasing along the chain (each gate depends on
     * the previous gate on the same qubit), so the nodes of q inside a
     * k-layer window are a prefix of that suffix.
     */
    QubitChainView
    qubitChain(int q) const
    {
        return {chainNodes_.data() + chainOffsets_[q],
                chainOffsets_[q + 1] - chainOffsets_[q]};
    }

    /** Index into qubitChain(q) of q's first unfinished node. */
    int qubitChainHead(int q) const { return chainHead_[q]; }

    /**
     * The first unfinished node on qubit q's chain, or -1 when the
     * qubit has no work left. This is the only node of q that can sit
     * on the frontier (later chain nodes depend on it), which makes it
     * the pivot of the scheduler's relocation dirtying: moving q can
     * only change the executability of this node.
     */
    DagNodeId
    qubitChainHeadNode(int q) const
    {
        const int begin = chainOffsets_[q] + chainHead_[q];
        return begin < chainOffsets_[q + 1] ? chainNodes_[begin] : -1;
    }

    /**
     * Trailing single-qubit gates (after the last 2q gate on their qubit)
     * — costed at the end of a schedule.
     */
    const std::vector<Gate> &trailing1q() const { return trailing1q_; }

    /** Sum of pendingPreds==0 checks; exposed for tests. */
    bool isReady(DagNodeId id) const;

  private:
    std::vector<DagNode> nodes_;
    std::vector<Gate> lead1qGates_; ///< Flat leading-1q store (see
                                    ///< leading1q()).
    std::vector<DagNodeId> frontier_;
    std::vector<Gate> trailing1q_;
    int remaining_ = 0;
    int horizon_ = kDefaultWindowHorizon;
    DagScratch *donor_ = nullptr; ///< Buffers return here on destruction.

    // ---- incremental window state ------------------------------------
    // Depths are a pure function of the retired set, so maintenance is
    // lazy: complete() queues the retirement and the next read settles
    // every queued one in a single decrease-only wave. All mutable: the
    // flush happens under const readers.
    mutable std::vector<int> depth_;   ///< Clamped remaining-graph layer.
    mutable std::vector<int> nextUse_; ///< Per-qubit chain-head depth
                                       ///< (or horizon).
    mutable std::vector<int> nextUseLog_; ///< Qubits written since the
                                       ///< last sync (may repeat).
    bool logNextUse_ = false;          ///< Log writes for syncNextUse.
    std::vector<int> chainOffsets_;    ///< CSR offsets (numQubits + 1).
    std::vector<DagNodeId> chainNodes_; ///< CSR payload: nodes touching
                                        ///< q, in circuit order.
    std::vector<int> chainHead_; ///< Index of q's first unfinished node.
    mutable std::vector<DagNodeId> worklist_; ///< Depth-update scratch.
    mutable std::vector<std::uint8_t> inWave_; ///< Node queued in the
                                 ///< current relaxation wave (dedup).
    mutable std::vector<std::vector<DagNodeId>> windowBuckets_;
                                 ///< Unfinished nodes per depth < horizon.
    mutable std::vector<int> bucketPos_; ///< Index in bucket, or -1.
    mutable std::vector<DagNodeId> pendingRetired_; ///< Retirements not
                                 ///< yet folded into depths/nextUse.
    mutable std::vector<int> dirtyQubits_; ///< Qubits whose chain head
                                 ///< advanced since the last flush.

    // ---- frontLayers peel scratch (reset after every call) -----------
    mutable std::vector<int> peelPreds_;      ///< -1 = untouched.
    mutable std::vector<DagNodeId> peelTouched_;

    void insertSortedFrontier(DagNodeId id);

    /** Recompute one node's depth from its unfinished predecessors. */
    int recomputeDepth(DagNodeId id) const;

    /** Refresh nextUse_[q] from q's chain head. */
    void refreshQubitNextUse(int q) const;

    /** Fold every queued retirement into depths/buckets/nextUse. */
    void flushWindow() const;

    /** Remove a node from its window bucket (no-op when outside). */
    void bucketRemove(DagNodeId id) const;

    /** Insert a node into the bucket of depth d (d < horizon). */
    void bucketInsert(DagNodeId id, int d) const;

    /** Move the donated buffers in/out of the scratch. */
    void adoptScratch();
    void returnScratch();
};

} // namespace mussti

#endif // MUSSTI_DAG_DAG_H
