#include "dag/dag.h"

#include <algorithm>

#include "common/logging.h"

namespace mussti {

DependencyDag::DependencyDag(const Circuit &circuit)
{
    const int n = circuit.numQubits();
    // lastNode[q]: most recent 2q node touching qubit q, or -1.
    std::vector<DagNodeId> last_node(n, -1);
    // Pending 1q gates per qubit, attached to the next 2q node on that
    // qubit (or to trailing1q_ if none follows).
    std::vector<std::vector<Gate>> pending_1q(n);

    for (std::size_t i = 0; i < circuit.size(); ++i) {
        const Gate &g = circuit[i];
        if (g.kind == GateKind::Barrier)
            continue;
        if (!g.twoQubit()) {
            if (g.q0 >= 0)
                pending_1q[g.q0].push_back(g);
            continue;
        }

        DagNode node;
        node.gate = g;
        node.circuitIndex = static_cast<int>(i);
        node.leading1q = std::move(pending_1q[g.q0]);
        pending_1q[g.q0].clear();
        node.leading1q.insert(node.leading1q.end(),
                              pending_1q[g.q1].begin(),
                              pending_1q[g.q1].end());
        pending_1q[g.q1].clear();

        const DagNodeId id = static_cast<DagNodeId>(nodes_.size());
        for (int q : {g.q0, g.q1}) {
            const DagNodeId prev = last_node[q];
            if (prev >= 0) {
                // Avoid duplicate edges when both operands share the
                // same predecessor.
                auto &succs = nodes_[prev].succs;
                if (std::find(succs.begin(), succs.end(), id) ==
                    succs.end()) {
                    succs.push_back(id);
                    ++node.pendingPreds;
                }
            }
            last_node[q] = id;
        }
        nodes_.push_back(std::move(node));
    }

    for (auto &rest : pending_1q) {
        trailing1q_.insert(trailing1q_.end(), rest.begin(), rest.end());
    }

    remaining_ = static_cast<int>(nodes_.size());
    for (DagNodeId id = 0; id < size(); ++id) {
        if (nodes_[id].pendingPreds == 0)
            frontier_.push_back(id);
    }
    // Node ids are created in circuit order, so the frontier built by an
    // id scan is already FCFS-sorted.
}

bool
DependencyDag::isReady(DagNodeId id) const
{
    return !nodes_[id].done && nodes_[id].pendingPreds == 0;
}

void
DependencyDag::insertSortedFrontier(DagNodeId id)
{
    // Frontier stays sorted by circuitIndex == node id order.
    auto it = std::lower_bound(frontier_.begin(), frontier_.end(), id);
    frontier_.insert(it, id);
}

void
DependencyDag::complete(DagNodeId id)
{
    auto it = std::find(frontier_.begin(), frontier_.end(), id);
    MUSSTI_ASSERT(it != frontier_.end(),
                  "complete() on non-frontier node " << id);
    frontier_.erase(it);
    DagNode &node = nodes_[id];
    MUSSTI_ASSERT(!node.done, "double completion of node " << id);
    node.done = true;
    --remaining_;
    for (DagNodeId succ : node.succs) {
        if (--nodes_[succ].pendingPreds == 0)
            insertSortedFrontier(succ);
    }
}

std::vector<std::vector<DagNodeId>>
DependencyDag::frontLayers(int k) const
{
    std::vector<std::vector<DagNodeId>> layers;
    if (k <= 0 || frontier_.empty())
        return layers;

    // Simulate retirement on a scratch predecessor count, touching only
    // the nodes actually reached (far cheaper than a full copy for the
    // k ~ 8 window the scheduler uses).
    std::vector<DagNodeId> current = frontier_;
    std::vector<int> scratch_preds(nodes_.size(), -1);

    for (int layer = 0; layer < k && !current.empty(); ++layer) {
        layers.push_back(current);
        std::vector<DagNodeId> next;
        for (DagNodeId id : current) {
            for (DagNodeId succ : nodes_[id].succs) {
                if (scratch_preds[succ] < 0)
                    scratch_preds[succ] = nodes_[succ].pendingPreds;
                if (--scratch_preds[succ] == 0)
                    next.push_back(succ);
            }
        }
        std::sort(next.begin(), next.end());
        current = std::move(next);
    }
    return layers;
}

} // namespace mussti
