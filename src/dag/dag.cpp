#include "dag/dag.h"

#include <algorithm>

#include "common/logging.h"

namespace mussti {

DependencyDag::DependencyDag(const Circuit &circuit, int window_horizon)
    : horizon_(window_horizon)
{
    MUSSTI_REQUIRE(window_horizon >= 1,
                   "DAG window horizon must be >= 1, got "
                   << window_horizon);

    const int n = circuit.numQubits();
    // lastNode[q]: most recent 2q node touching qubit q, or -1.
    std::vector<DagNodeId> last_node(n, -1);
    // Pending 1q gates per qubit, attached to the next 2q node on that
    // qubit (or to trailing1q_ if none follows).
    std::vector<std::vector<Gate>> pending_1q(n);

    for (std::size_t i = 0; i < circuit.size(); ++i) {
        const Gate &g = circuit[i];
        if (g.kind == GateKind::Barrier)
            continue;
        if (!g.twoQubit()) {
            if (g.q0 >= 0)
                pending_1q[g.q0].push_back(g);
            continue;
        }

        DagNode node;
        node.gate = g;
        node.circuitIndex = static_cast<int>(i);
        node.leading1q = std::move(pending_1q[g.q0]);
        pending_1q[g.q0].clear();
        node.leading1q.insert(node.leading1q.end(),
                              pending_1q[g.q1].begin(),
                              pending_1q[g.q1].end());
        pending_1q[g.q1].clear();

        const DagNodeId id = static_cast<DagNodeId>(nodes_.size());
        for (int q : {g.q0, g.q1}) {
            const DagNodeId prev = last_node[q];
            if (prev >= 0) {
                // Avoid duplicate edges when both operands share the
                // same predecessor.
                auto &succs = nodes_[prev].succs;
                if (std::find(succs.begin(), succs.end(), id) ==
                    succs.end()) {
                    succs.push_back(id);
                    node.preds.push_back(prev);
                    ++node.pendingPreds;
                }
            }
            last_node[q] = id;
        }
        nodes_.push_back(std::move(node));
    }

    for (auto &rest : pending_1q) {
        trailing1q_.insert(trailing1q_.end(), rest.begin(), rest.end());
    }

    remaining_ = static_cast<int>(nodes_.size());
    for (DagNodeId id = 0; id < size(); ++id) {
        if (nodes_[id].pendingPreds == 0)
            frontier_.push_back(id);
    }
    // Node ids are created in circuit order, so the frontier built by an
    // id scan is already FCFS-sorted.

    // Window depths in one topological sweep (ids are already in
    // topological order): a node's layer is one past its deepest
    // predecessor, clamped to the horizon.
    depth_.resize(nodes_.size());
    for (DagNodeId id = 0; id < size(); ++id)
        depth_[id] = recomputeDepth(id);

    // Per-qubit dependency chains: the nodes touching a qubit are
    // totally ordered through it, so the first unfinished one always
    // carries the qubit's minimum window depth.
    qubitChain_.resize(n);
    chainHead_.assign(n, 0);
    for (DagNodeId id = 0; id < size(); ++id) {
        qubitChain_[nodes_[id].gate.q0].push_back(id);
        qubitChain_[nodes_[id].gate.q1].push_back(id);
    }
    nextUse_.assign(n, horizon_);
    for (int q = 0; q < n; ++q)
        refreshQubitNextUse(q);

    // Window buckets: unfinished nodes grouped by depth, for the
    // order-independent windowLayer() view.
    windowBuckets_.resize(horizon_);
    bucketPos_.assign(nodes_.size(), -1);
    for (DagNodeId id = 0; id < size(); ++id) {
        if (depth_[id] < horizon_)
            bucketInsert(id, depth_[id]);
    }
}

void
DependencyDag::bucketRemove(DagNodeId id) const
{
    const int pos = bucketPos_[id];
    if (pos < 0)
        return;
    auto &bucket = windowBuckets_[depth_[id]];
    const DagNodeId moved = bucket.back();
    bucket[pos] = moved;
    bucketPos_[moved] = pos;
    bucket.pop_back();
    bucketPos_[id] = -1;
}

void
DependencyDag::bucketInsert(DagNodeId id, int d) const
{
    bucketPos_[id] = static_cast<int>(windowBuckets_[d].size());
    windowBuckets_[d].push_back(id);
}

bool
DependencyDag::isReady(DagNodeId id) const
{
    return !nodes_[id].done && nodes_[id].pendingPreds == 0;
}

void
DependencyDag::insertSortedFrontier(DagNodeId id)
{
    // Frontier stays sorted by circuitIndex == node id order.
    auto it = std::lower_bound(frontier_.begin(), frontier_.end(), id);
    frontier_.insert(it, id);
}

int
DependencyDag::recomputeDepth(DagNodeId id) const
{
    int deepest = -1;
    for (DagNodeId pred : nodes_[id].preds) {
        if (!nodes_[pred].done)
            deepest = std::max(deepest, depth_[pred]);
    }
    return std::min(horizon_, deepest + 1);
}

void
DependencyDag::refreshQubitNextUse(int q) const
{
    const auto &chain = qubitChain_[q];
    const int head = chainHead_[q];
    nextUse_[q] = head < static_cast<int>(chain.size())
        ? depth_[chain[head]]
        : horizon_;
}

void
DependencyDag::flushWindow() const
{
    if (pendingRetired_.empty() && dirtyQubits_.empty())
        return;

    // Decrease-only worklist over the cone affected by every queued
    // retirement at once. Depths are a pure function of the retired
    // set, so one batched wave lands on the same fixpoint as per-
    // retirement propagation; clamping to the horizon stops changes
    // beyond the window immediately. A phase-1 drain of n executable
    // gates therefore costs one wave, not n.
    worklist_.clear();
    for (DagNodeId id : pendingRetired_) {
        for (DagNodeId succ : nodes_[id].succs) {
            if (!nodes_[succ].done)
                worklist_.push_back(succ);
        }
    }
    pendingRetired_.clear();
    while (!worklist_.empty()) {
        const DagNodeId n = worklist_.back();
        worklist_.pop_back();
        const int fresh = recomputeDepth(n);
        if (fresh >= depth_[n])
            continue;
        bucketRemove(n);
        depth_[n] = fresh;
        bucketInsert(n, fresh);
        const DagNode &node = nodes_[n];
        for (int q : {node.gate.q0, node.gate.q1}) {
            const auto &chain = qubitChain_[q];
            const int head = chainHead_[q];
            if (head < static_cast<int>(chain.size()) && chain[head] == n)
                nextUse_[q] = fresh;
        }
        for (DagNodeId succ : node.succs) {
            if (!nodes_[succ].done)
                worklist_.push_back(succ);
        }
    }

    for (int q : dirtyQubits_)
        refreshQubitNextUse(q);
    dirtyQubits_.clear();
}

void
DependencyDag::complete(DagNodeId id)
{
    auto it = std::find(frontier_.begin(), frontier_.end(), id);
    MUSSTI_ASSERT(it != frontier_.end(),
                  "complete() on non-frontier node " << id);
    frontier_.erase(it);
    DagNode &node = nodes_[id];
    MUSSTI_ASSERT(!node.done, "double completion of node " << id);
    node.done = true;
    --remaining_;
    bucketRemove(id);
    for (DagNodeId succ : node.succs) {
        if (--nodes_[succ].pendingPreds == 0)
            insertSortedFrontier(succ);
    }

    // Incremental window maintenance: the retired node was the chain
    // head of both its qubits (frontier nodes have no unfinished
    // ancestors), so advance their heads now (O(1)) and queue the depth
    // relaxation for the next window read (flushWindow).
    for (int q : {node.gate.q0, node.gate.q1}) {
        const auto &chain = qubitChain_[q];
        int &head = chainHead_[q];
        while (head < static_cast<int>(chain.size()) &&
               nodes_[chain[head]].done)
            ++head;
        dirtyQubits_.push_back(q);
    }
    pendingRetired_.push_back(id);
}

std::vector<std::vector<DagNodeId>>
DependencyDag::frontLayers(int k) const
{
    std::vector<std::vector<DagNodeId>> layers;
    if (k <= 0 || frontier_.empty())
        return layers;

    // Simulate retirement on a scratch predecessor count, touching only
    // the nodes actually reached. The scratch persists across calls
    // (entries reset on exit), so no O(total-gates) allocation happens
    // per call. The MUSS-TI scheduler itself reads the incremental
    // window (nextUse/windowLayer, horizon 64 by default) instead of
    // peeling; this remains for consumers that need layer-internal FCFS
    // order (the Dai baseline) or look-aheads beyond the horizon.
    if (peelPreds_.size() != nodes_.size())
        peelPreds_.assign(nodes_.size(), -1);

    std::vector<DagNodeId> current = frontier_;
    for (int layer = 0; layer < k && !current.empty(); ++layer) {
        std::vector<DagNodeId> next;
        for (DagNodeId id : current) {
            for (DagNodeId succ : nodes_[id].succs) {
                if (peelPreds_[succ] < 0) {
                    peelPreds_[succ] = nodes_[succ].pendingPreds;
                    peelTouched_.push_back(succ);
                }
                if (--peelPreds_[succ] == 0)
                    next.push_back(succ);
            }
        }
        std::sort(next.begin(), next.end());
        layers.push_back(std::move(current));
        current = std::move(next);
    }

    for (DagNodeId id : peelTouched_)
        peelPreds_[id] = -1;
    peelTouched_.clear();
    return layers;
}

} // namespace mussti
