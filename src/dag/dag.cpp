#include "dag/dag.h"

#include <algorithm>

#include "common/logging.h"

namespace mussti {

void
DependencyDag::adoptScratch()
{
    if (donor_ == nullptr)
        return;
    DagScratch &s = *donor_;
    nodes_ = std::move(s.nodes);
    lead1qGates_ = std::move(s.lead1qGates);
    trailing1q_ = std::move(s.trailing1q);
    nodes_.clear();
    lead1qGates_.clear();
    trailing1q_.clear();
    depth_ = std::move(s.depth);
    nextUse_ = std::move(s.nextUse);
    nextUseLog_ = std::move(s.nextUseLog);
    nextUseLog_.clear();
    chainOffsets_ = std::move(s.chainOffsets);
    chainNodes_ = std::move(s.chainNodes);
    chainHead_ = std::move(s.chainHead);
    frontier_ = std::move(s.frontier);
    worklist_ = std::move(s.worklist);
    inWave_ = std::move(s.inWave);
    bucketPos_ = std::move(s.bucketPos);
    pendingRetired_ = std::move(s.pendingRetired);
    dirtyQubits_ = std::move(s.dirtyQubits);
    windowBuckets_ = std::move(s.windowBuckets);
    peelPreds_ = std::move(s.peelPreds);
    peelTouched_ = std::move(s.peelTouched);
    frontier_.clear();
    worklist_.clear();
    pendingRetired_.clear();
    dirtyQubits_.clear();
    peelTouched_.clear();
    for (auto &bucket : windowBuckets_)
        bucket.clear();
}

void
DependencyDag::returnScratch()
{
    if (donor_ == nullptr)
        return;
    DagScratch &s = *donor_;
    s.nodes = std::move(nodes_);
    s.lead1qGates = std::move(lead1qGates_);
    s.trailing1q = std::move(trailing1q_);
    s.depth = std::move(depth_);
    s.nextUse = std::move(nextUse_);
    s.nextUseLog = std::move(nextUseLog_);
    s.chainOffsets = std::move(chainOffsets_);
    s.chainNodes = std::move(chainNodes_);
    s.chainHead = std::move(chainHead_);
    s.frontier = std::move(frontier_);
    s.worklist = std::move(worklist_);
    s.inWave = std::move(inWave_);
    s.bucketPos = std::move(bucketPos_);
    s.pendingRetired = std::move(pendingRetired_);
    s.dirtyQubits = std::move(dirtyQubits_);
    s.windowBuckets = std::move(windowBuckets_);
    s.peelPreds = std::move(peelPreds_);
    s.peelTouched = std::move(peelTouched_);
}

DependencyDag::~DependencyDag()
{
    returnScratch();
}

DependencyDag::DependencyDag(const Circuit &circuit, int window_horizon,
                             DagScratch *scratch)
    : horizon_(window_horizon), donor_(scratch)
{
    MUSSTI_REQUIRE(window_horizon >= 1,
                   "DAG window horizon must be >= 1, got "
                   << window_horizon);
    adoptScratch();

    const int n = circuit.numQubits();
    // lastNode[q]: most recent 2q node touching qubit q, or -1.
    std::vector<DagNodeId> last_node(n, -1);
    // Pending 1q gates per qubit, attached to the next 2q node on that
    // qubit (or to trailing1q_ if none follows). Inner vectors keep
    // their capacity across clears, so churn is bounded by the qubit
    // count, not the gate count.
    std::vector<std::vector<Gate>> pending_1q(n);

    // Size the node and leading-1q stores up front: DagNode growth
    // would otherwise re-copy the node array log(gates) times.
    std::size_t two_qubit = 0;
    std::size_t single_qubit = 0;
    for (std::size_t i = 0; i < circuit.size(); ++i) {
        if (circuit[i].twoQubit())
            ++two_qubit;
        else
            ++single_qubit;
    }
    nodes_.reserve(two_qubit);
    lead1qGates_.reserve(single_qubit);

    for (std::size_t i = 0; i < circuit.size(); ++i) {
        const Gate &g = circuit[i];
        if (g.kind == GateKind::Barrier)
            continue;
        if (!g.twoQubit()) {
            if (g.q0 >= 0)
                pending_1q[g.q0].push_back(g);
            continue;
        }

        DagNode node;
        node.gate = g;
        node.circuitIndex = static_cast<int>(i);
        node.lead1qOffset = static_cast<int>(lead1qGates_.size());
        for (int q : {g.q0, g.q1}) {
            lead1qGates_.insert(lead1qGates_.end(), pending_1q[q].begin(),
                                pending_1q[q].end());
            pending_1q[q].clear();
        }
        node.lead1qCount = static_cast<int>(lead1qGates_.size()) -
            node.lead1qOffset;

        const DagNodeId id = static_cast<DagNodeId>(nodes_.size());
        for (int q : {g.q0, g.q1}) {
            const DagNodeId prev = last_node[q];
            if (prev >= 0) {
                // Avoid duplicate edges when both operands share the
                // same predecessor.
                auto &succs = nodes_[prev].succs;
                if (std::find(succs.begin(), succs.end(), id) ==
                    succs.end()) {
                    succs.push_back(id);
                    node.preds.push_back(prev);
                    ++node.pendingPreds;
                }
            }
            last_node[q] = id;
        }
        nodes_.push_back(node);
    }

    for (auto &rest : pending_1q) {
        trailing1q_.insert(trailing1q_.end(), rest.begin(), rest.end());
    }

    remaining_ = static_cast<int>(nodes_.size());

    // Frontier capacity bound: frontier nodes are chain heads of their
    // operand qubits, and each qubit has at most one chain head, so the
    // frontier never exceeds floor(n / 2) nodes. Reserving it here keeps
    // insertSortedFrontier allocation-free for the whole run.
    frontier_.reserve(static_cast<std::size_t>(n) / 2 + 1);
    for (DagNodeId id = 0; id < size(); ++id) {
        if (nodes_[id].pendingPreds == 0)
            frontier_.push_back(id);
    }
    // Node ids are created in circuit order, so the frontier built by an
    // id scan is already FCFS-sorted.

    // Window depths in one topological sweep (ids are already in
    // topological order): a node's layer is one past its deepest
    // predecessor, clamped to the horizon.
    depth_.resize(nodes_.size());
    for (DagNodeId id = 0; id < size(); ++id)
        depth_[id] = recomputeDepth(id);

    // Per-qubit dependency chains in CSR form: the nodes touching a
    // qubit are totally ordered through it, so the first unfinished one
    // always carries the qubit's minimum window depth. Counting pass,
    // prefix sum, fill pass — two flat arrays, no per-qubit vectors.
    chainOffsets_.assign(n + 1, 0);
    for (const DagNode &node : nodes_) {
        ++chainOffsets_[node.gate.q0 + 1];
        ++chainOffsets_[node.gate.q1 + 1];
    }
    for (int q = 0; q < n; ++q)
        chainOffsets_[q + 1] += chainOffsets_[q];
    chainNodes_.resize(chainOffsets_[n]);
    {
        std::vector<int> fill(chainOffsets_.begin(),
                              chainOffsets_.end() - 1);
        for (DagNodeId id = 0; id < size(); ++id) {
            chainNodes_[fill[nodes_[id].gate.q0]++] = id;
            chainNodes_[fill[nodes_[id].gate.q1]++] = id;
        }
    }
    chainHead_.assign(n, 0);
    nextUse_.assign(n, horizon_);
    for (int q = 0; q < n; ++q)
        refreshQubitNextUse(q);

    // Window buckets: unfinished nodes grouped by depth, for the
    // order-independent windowLayer() view. Nodes of one bucket are
    // qubit-disjoint (same-qubit nodes are chain-ordered, so their
    // depths differ), which bounds each bucket by floor(n / 2); the
    // reserve keeps the flush wave's bucket moves allocation-free.
    windowBuckets_.resize(horizon_);
    const std::size_t bucket_bound =
        std::min(static_cast<std::size_t>(n) / 2 + 1, nodes_.size());
    for (auto &bucket : windowBuckets_)
        bucket.reserve(bucket_bound);
    bucketPos_.assign(nodes_.size(), -1);
    for (DagNodeId id = 0; id < size(); ++id) {
        if (depth_[id] < horizon_)
            bucketInsert(id, depth_[id]);
    }

    // Relaxation/retirement queues: bounded by the touched cone, itself
    // bounded by the node count (the wave re-pushes a successor only
    // after an actual depth decrease, and depths only shrink).
    worklist_.reserve(nodes_.size() + 1);
    inWave_.assign(nodes_.size(), 0);
    pendingRetired_.reserve(nodes_.size() + 1);
    dirtyQubits_.reserve(2 * nodes_.size() + 2);
}

void
DependencyDag::bucketRemove(DagNodeId id) const
{
    const int pos = bucketPos_[id];
    if (pos < 0)
        return;
    auto &bucket = windowBuckets_[depth_[id]];
    const DagNodeId moved = bucket.back();
    bucket[pos] = moved;
    bucketPos_[moved] = pos;
    bucket.pop_back();
    bucketPos_[id] = -1;
}

void
DependencyDag::bucketInsert(DagNodeId id, int d) const
{
    bucketPos_[id] = static_cast<int>(windowBuckets_[d].size());
    windowBuckets_[d].push_back(id);
}

bool
DependencyDag::isReady(DagNodeId id) const
{
    return !nodes_[id].done && nodes_[id].pendingPreds == 0;
}

void
DependencyDag::insertSortedFrontier(DagNodeId id)
{
    // Frontier stays sorted by circuitIndex == node id order.
    auto it = std::lower_bound(frontier_.begin(), frontier_.end(), id);
    frontier_.insert(it, id);
}

int
DependencyDag::recomputeDepth(DagNodeId id) const
{
    int deepest = -1;
    for (DagNodeId pred : nodes_[id].preds) {
        if (!nodes_[pred].done)
            deepest = std::max(deepest, depth_[pred]);
    }
    return std::min(horizon_, deepest + 1);
}

void
DependencyDag::refreshQubitNextUse(int q) const
{
    const QubitChainView chain = qubitChain(q);
    const int head = chainHead_[q];
    nextUse_[q] = head < chain.size() ? depth_[chain[head]] : horizon_;
    if (logNextUse_)
        nextUseLog_.push_back(q);
}

void
DependencyDag::flushWindow() const
{
    if (pendingRetired_.empty() && dirtyQubits_.empty())
        return;

    // Decrease-only worklist over the cone affected by every queued
    // retirement at once. Depths are a pure function of the retired
    // set, so one batched wave lands on the same fixpoint as per-
    // retirement propagation; clamping to the horizon stops changes
    // beyond the window immediately. A phase-1 drain of n executable
    // gates therefore costs one wave, not n.
    // A node may be reachable through both operand chains and through
    // several retirements of one burst; the inWave_ flag queues it once
    // per wave. Deduping is sound because recomputeDepth reads the live
    // pred depths at pop time: one visit after the duplicate pushes
    // lands on the same value, and any later pred decrease re-queues
    // the node (the push below fires on every actual decrease).
    worklist_.clear();
    const auto enqueue = [this](DagNodeId succ) {
        if (!nodes_[succ].done && !inWave_[succ]) {
            inWave_[succ] = 1;
            worklist_.push_back(succ);
        }
    };
    for (DagNodeId id : pendingRetired_) {
        for (DagNodeId succ : nodes_[id].succs)
            enqueue(succ);
    }
    pendingRetired_.clear();
    while (!worklist_.empty()) {
        const DagNodeId n = worklist_.back();
        worklist_.pop_back();
        inWave_[n] = 0;
        const int fresh = recomputeDepth(n);
        if (fresh >= depth_[n])
            continue;
        bucketRemove(n);
        depth_[n] = fresh;
        bucketInsert(n, fresh);
        const DagNode &node = nodes_[n];
        for (int q : {node.gate.q0, node.gate.q1}) {
            const QubitChainView chain = qubitChain(q);
            const int head = chainHead_[q];
            if (head < chain.size() && chain[head] == n) {
                nextUse_[q] = fresh;
                if (logNextUse_)
                    nextUseLog_.push_back(q);
            }
        }
        for (DagNodeId succ : node.succs)
            enqueue(succ);
    }

    for (int q : dirtyQubits_)
        refreshQubitNextUse(q);
    dirtyQubits_.clear();
}

void
DependencyDag::complete(DagNodeId id)
{
    // The frontier is sorted by node id, so membership is a binary
    // search (complete() sits inside the drain loop).
    auto it = std::lower_bound(frontier_.begin(), frontier_.end(), id);
    MUSSTI_ASSERT(it != frontier_.end() && *it == id,
                  "complete() on non-frontier node " << id);
    frontier_.erase(it);
    DagNode &node = nodes_[id];
    MUSSTI_ASSERT(!node.done, "double completion of node " << id);
    node.done = true;
    --remaining_;
    bucketRemove(id);
    for (DagNodeId succ : node.succs) {
        if (--nodes_[succ].pendingPreds == 0)
            insertSortedFrontier(succ);
    }

    // Incremental window maintenance: the retired node was the chain
    // head of both its qubits (frontier nodes have no unfinished
    // ancestors), so advance their heads now (O(1)) and queue the depth
    // relaxation for the next window read (flushWindow).
    for (int q : {node.gate.q0, node.gate.q1}) {
        const QubitChainView chain = qubitChain(q);
        int &head = chainHead_[q];
        while (head < chain.size() && nodes_[chain[head]].done)
            ++head;
        dirtyQubits_.push_back(q);
    }
    pendingRetired_.push_back(id);
}

std::vector<std::vector<DagNodeId>>
DependencyDag::frontLayers(int k) const
{
    std::vector<std::vector<DagNodeId>> layers;
    if (k <= 0 || frontier_.empty())
        return layers;

    // Simulate retirement on a scratch predecessor count, touching only
    // the nodes actually reached. The scratch persists across calls
    // (entries reset on exit), so no O(total-gates) allocation happens
    // per call. The MUSS-TI scheduler itself reads the incremental
    // window (nextUse/windowLayer, horizon 64 by default) instead of
    // peeling; this remains for consumers that need layer-internal FCFS
    // order (the Dai baseline) or look-aheads beyond the horizon.
    if (peelPreds_.size() != nodes_.size())
        peelPreds_.assign(nodes_.size(), -1);

    std::vector<DagNodeId> current = frontier_;
    for (int layer = 0; layer < k && !current.empty(); ++layer) {
        std::vector<DagNodeId> next;
        for (DagNodeId id : current) {
            for (DagNodeId succ : nodes_[id].succs) {
                if (peelPreds_[succ] < 0) {
                    peelPreds_[succ] = nodes_[succ].pendingPreds;
                    peelTouched_.push_back(succ);
                }
                if (--peelPreds_[succ] == 0)
                    next.push_back(succ);
            }
        }
        std::sort(next.begin(), next.end());
        layers.push_back(std::move(current));
        current = std::move(next);
    }

    for (DagNodeId id : peelTouched_)
        peelPreds_[id] = -1;
    peelTouched_.clear();
    return layers;
}

} // namespace mussti
