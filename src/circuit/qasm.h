/**
 * @file
 * OpenQASM 2.0 subset reader/writer.
 *
 * The paper's benchmarks come from QASMBench; this module lets users feed
 * their own QASM files to the compiler and lets our generated workloads be
 * exported for inspection. Supported subset: one quantum register, one
 * optional classical register, the gate alphabet of gate.h (including
 * u1/u2/u3/rxx/rzz aliases), measure, and barrier. Gate definitions,
 * conditionals, and multiple registers are rejected with fatal().
 */
#ifndef MUSSTI_CIRCUIT_QASM_H
#define MUSSTI_CIRCUIT_QASM_H

#include <iosfwd>
#include <string>

#include "circuit/circuit.h"

namespace mussti {

/** Serialize a circuit as OpenQASM 2.0. */
std::string toQasm(const Circuit &circuit);

/** Parse the supported OpenQASM 2.0 subset; fatal() on unsupported input. */
Circuit fromQasm(const std::string &text, const std::string &name = "qasm");

/** Parse from a stream. */
Circuit fromQasmStream(std::istream &in, const std::string &name = "qasm");

} // namespace mussti

#endif // MUSSTI_CIRCUIT_QASM_H
