#include "circuit/gate.h"

#include "common/logging.h"
#include "common/string_util.h"

namespace mussti {

int
gateArity(GateKind kind)
{
    switch (kind) {
      case GateKind::Ms:
      case GateKind::Cx:
      case GateKind::Cz:
      case GateKind::Swap:
        return 2;
      case GateKind::Barrier:
        return 0;
      default:
        return 1;
    }
}

bool
isTwoQubit(GateKind kind)
{
    return gateArity(kind) == 2;
}

bool
isSingleQubit(GateKind kind)
{
    return gateArity(kind) == 1 && kind != GateKind::Measure;
}

const char *
gateName(GateKind kind)
{
    switch (kind) {
      case GateKind::X: return "x";
      case GateKind::Y: return "y";
      case GateKind::Z: return "z";
      case GateKind::H: return "h";
      case GateKind::S: return "s";
      case GateKind::Sdg: return "sdg";
      case GateKind::T: return "t";
      case GateKind::Tdg: return "tdg";
      case GateKind::Rx: return "rx";
      case GateKind::Ry: return "ry";
      case GateKind::Rz: return "rz";
      case GateKind::U: return "u";
      case GateKind::Ms: return "ms";
      case GateKind::Cx: return "cx";
      case GateKind::Cz: return "cz";
      case GateKind::Swap: return "swap";
      case GateKind::Measure: return "measure";
      case GateKind::Barrier: return "barrier";
    }
    panic("unhandled GateKind in gateName");
}

GateKind
gateKindFromName(const std::string &name)
{
    const std::string low = toLower(name);
    static const struct { const char *name; GateKind kind; } table[] = {
        {"x", GateKind::X}, {"y", GateKind::Y}, {"z", GateKind::Z},
        {"h", GateKind::H}, {"s", GateKind::S}, {"sdg", GateKind::Sdg},
        {"t", GateKind::T}, {"tdg", GateKind::Tdg}, {"rx", GateKind::Rx},
        {"ry", GateKind::Ry}, {"rz", GateKind::Rz}, {"u", GateKind::U},
        {"u1", GateKind::Rz}, {"u2", GateKind::U}, {"u3", GateKind::U},
        {"ms", GateKind::Ms}, {"rxx", GateKind::Ms}, {"rzz", GateKind::Ms},
        {"cx", GateKind::Cx}, {"cnot", GateKind::Cx}, {"cz", GateKind::Cz},
        {"swap", GateKind::Swap}, {"measure", GateKind::Measure},
        {"barrier", GateKind::Barrier},
    };
    for (const auto &entry : table) {
        if (low == entry.name)
            return entry.kind;
    }
    fatal("unknown gate mnemonic: " + name);
}

} // namespace mussti
