/**
 * @file
 * Circuit container: an ordered gate list over n qubits, plus the
 * derived views the compiler needs (two-qubit gate extraction, reversal
 * for SABRE's two-fold search, interaction statistics).
 */
#ifndef MUSSTI_CIRCUIT_CIRCUIT_H
#define MUSSTI_CIRCUIT_CIRCUIT_H

#include <cstdint>
#include <string>
#include <vector>

#include "circuit/gate.h"

namespace mussti {

/** Aggregate shape statistics for a circuit. */
struct CircuitStats
{
    int numQubits = 0;
    int totalGates = 0;
    int twoQubitGates = 0;
    int singleQubitGates = 0;
    int measurements = 0;
    int depth = 0;              ///< Two-qubit-gate depth (layers).
    double avgInteractionDistance = 0.0; ///< Mean |q0-q1| over 2q gates.
};

/**
 * An ordered quantum circuit.
 *
 * Qubits are integer indices [0, numQubits). Gates execute in list order
 * subject only to commutation through disjoint supports (the DAG module
 * recovers the partial order).
 */
class Circuit
{
  public:
    /** An empty circuit over a fixed qubit count. */
    explicit Circuit(int num_qubits, std::string name = "circuit");

    /** Number of qubits the circuit addresses. */
    int numQubits() const { return numQubits_; }

    /** Human-readable identifier, e.g. "Adder_n32". */
    const std::string &name() const { return name_; }

    void
    setName(std::string name)
    {
        name_ = std::move(name);
        prefixHashes_.clear(); // The name seeds the prefix-hash chain.
    }

    /** Append a gate; operands are validated against numQubits(). */
    void add(const Gate &gate);

    /** Convenience appenders. */
    void h(int q) { add(Gate(GateKind::H, q)); }
    void x(int q) { add(Gate(GateKind::X, q)); }
    void z(int q) { add(Gate(GateKind::Z, q)); }
    void t(int q) { add(Gate(GateKind::T, q)); }
    void tdg(int q) { add(Gate(GateKind::Tdg, q)); }
    void rx(int q, double a) { add(Gate(GateKind::Rx, q, a)); }
    void rz(int q, double a) { add(Gate(GateKind::Rz, q, a)); }
    void ms(int a, int b) { add(Gate(GateKind::Ms, a, b)); }
    void cx(int a, int b) { add(Gate(GateKind::Cx, a, b)); }
    void cz(int a, int b) { add(Gate(GateKind::Cz, a, b)); }
    void swap(int a, int b) { add(Gate(GateKind::Swap, a, b)); }
    void measure(int q) { add(Gate(GateKind::Measure, q)); }

    /** Gate list access. */
    const std::vector<Gate> &gates() const { return gates_; }
    std::size_t size() const { return gates_.size(); }
    const Gate &operator[](std::size_t i) const { return gates_[i]; }

    /** Count of entangling (two-qubit) gates. */
    int twoQubitCount() const;

    /** Count of single-qubit gates (measure/barrier excluded). */
    int singleQubitCount() const;

    /**
     * The circuit with the gate order reversed (SABRE reverse pass).
     * Gate parameters are kept; this is a scheduling mirror, not an
     * algebraic inverse.
     */
    Circuit reversed() const;

    /**
     * The same circuit with SWAP gates lowered to 3 alternating-direction
     * CX (MS) gates, the native trapped-ion decomposition.
     */
    Circuit withSwapsDecomposed() const;

    /** Shape statistics (depth counts two-qubit layers). */
    CircuitStats stats() const;

    /** Per-qubit count of two-qubit gates touching each qubit. */
    std::vector<int> twoQubitDegrees() const;

    /**
     * Platform-stable FNV-1a digest of the circuit's full content (qubit
     * count, name, every gate). Equal circuits hash equally; used as the
     * circuit component of the compile-service cache key. Identical to
     * prefixHash(size()) — the full hash is the last link of the
     * prefix-hash chain.
     */
    std::uint64_t contentHash() const { return prefixHash(size()); }

    /**
     * FNV-1a digest of the first `num_gates` gates (plus qubit count and
     * name): the rolling prefix-hash chain behind delta compilation.
     * prefixHash(p) of circuit A equals prefixHash(p) of circuit B iff
     * they agree on qubit count, name, and gates [0, p) — so the longest
     * prefix shared with a cached artifact is found by hash lookup, not
     * by diffing gate lists. The chain is cached lazily and extends
     * incrementally: after the first call, hashing an appended gate (or
     * any longer prefix) costs O(1) per gate, never a rescan.
     *
     * The cache is not synchronised: the first call on a Circuit shared
     * across threads races. Every compile path hands each job its own
     * Circuit copy (CompileRequest owns its circuit), so this only
     * matters for callers that deliberately share one instance.
     */
    std::uint64_t prefixHash(std::size_t num_gates) const;

    bool
    operator==(const Circuit &other) const
    {
        // The lazy prefix-hash cache is derived state, not content.
        return numQubits_ == other.numQubits_ && name_ == other.name_ &&
               gates_ == other.gates_;
    }

  private:
    int numQubits_;
    std::string name_;
    std::vector<Gate> gates_;

    /**
     * Lazy rolling chain: prefixHashes_[i] is the FNV-1a state after
     * (numQubits, name, gates [0, i)). Empty until the first hash query;
     * extended on demand, so appends never invalidate it.
     */
    mutable std::vector<std::uint64_t> prefixHashes_;
};

} // namespace mussti

#endif // MUSSTI_CIRCUIT_CIRCUIT_H
