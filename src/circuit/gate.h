/**
 * @file
 * Gate representation for trapped-ion circuits.
 *
 * The scheduler cares about two things only: which qubits a gate touches
 * and whether it is a two-qubit (entangling) operation. Trapped-ion
 * hardware implements all two-qubit interactions as Molmer-Sorensen (MS)
 * gates; other two-qubit names (cx, cz, swap) are retained for provenance
 * and QASM round-tripping but are costed identically (SWAP as 3 MS).
 */
#ifndef MUSSTI_CIRCUIT_GATE_H
#define MUSSTI_CIRCUIT_GATE_H

#include <string>

namespace mussti {

/** The gate alphabet understood by the compiler. */
enum class GateKind {
    // One-qubit gates.
    X, Y, Z, H, S, Sdg, T, Tdg, Rx, Ry, Rz, U,
    // Two-qubit gates (all compiled to MS interactions).
    Ms, Cx, Cz, Swap,
    // Markers: no duration, no fidelity cost, kept for round-tripping.
    Measure, Barrier,
};

/** Number of qubit operands for a gate kind (0 for barrier). */
int gateArity(GateKind kind);

/** True for entangling two-qubit kinds (Ms, Cx, Cz, Swap). */
bool isTwoQubit(GateKind kind);

/** True for the single-qubit rotation/Clifford kinds. */
bool isSingleQubit(GateKind kind);

/** Lower-case OpenQASM-style mnemonic ("cx", "ms", "rz", ...). */
const char *gateName(GateKind kind);

/** Inverse of gateName(); fatal() on unknown mnemonics. */
GateKind gateKindFromName(const std::string &name);

/**
 * One gate instance in a circuit.
 *
 * q1 is -1 for single-qubit gates and measure. The angle parameter is
 * carried only for round-tripping; it does not affect scheduling cost.
 */
struct Gate
{
    GateKind kind = GateKind::X;
    int q0 = -1;
    int q1 = -1;
    double param = 0.0;

    Gate() = default;
    Gate(GateKind k, int a) : kind(k), q0(a) {}
    Gate(GateKind k, int a, int b) : kind(k), q0(a), q1(b) {}
    Gate(GateKind k, int a, double p) : kind(k), q0(a), param(p) {}
    Gate(GateKind k, int a, int b, double p)
        : kind(k), q0(a), q1(b), param(p) {}

    /** True if this gate entangles two qubits. */
    bool twoQubit() const { return isTwoQubit(kind); }

    /** True if the gate acts on the given qubit. */
    bool touches(int q) const { return q0 == q || q1 == q; }

    /** The operand that is not `q`; q must be an operand. */
    int partnerOf(int q) const { return q0 == q ? q1 : q0; }

    bool operator==(const Gate &other) const = default;
};

} // namespace mussti

#endif // MUSSTI_CIRCUIT_GATE_H
