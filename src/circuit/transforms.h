/**
 * @file
 * Circuit-level transformation passes.
 *
 * These are the standard pre-compilation cleanups a production flow
 * runs before routing: self-inverse gate cancellation, rotation
 * merging, dead 1q-gate pruning before measurement-free wires, and
 * qubit relabeling (used to model transpiled QASMBench inputs whose
 * wire labels are scrambled relative to program structure).
 */
#ifndef MUSSTI_CIRCUIT_TRANSFORMS_H
#define MUSSTI_CIRCUIT_TRANSFORMS_H

#include <cstdint>
#include <vector>

#include "circuit/circuit.h"

namespace mussti {

/**
 * Cancel adjacent self-inverse pairs on identical supports: X-X, Y-Y,
 * Z-Z, H-H, and CX-CX / CZ-CZ / SWAP-SWAP with equal operands separated
 * only by gates on disjoint qubits. Runs to a fixed point.
 */
Circuit cancelAdjacentInverses(const Circuit &circuit);

/**
 * Merge runs of same-axis rotations on one qubit (Rz-Rz, Rx-Rx, Ry-Ry)
 * into a single rotation with the summed angle; drops rotations whose
 * merged angle is ~0 (mod 2 pi).
 */
Circuit mergeRotations(const Circuit &circuit);

/**
 * Apply a qubit permutation: wire q in the input becomes
 * permutation[q] in the output. fatal() if not a permutation.
 */
Circuit relabelQubits(const Circuit &circuit,
                      const std::vector<int> &permutation);

/**
 * Deterministically scramble wire labels with the given seed. Models
 * the label structure of transpiled benchmark files, where program
 * locality is not reflected in qubit indices.
 */
Circuit scrambleQubits(const Circuit &circuit, std::uint64_t seed);

/** Run cancellation and rotation merging to a joint fixed point. */
Circuit simplify(const Circuit &circuit);

} // namespace mussti

#endif // MUSSTI_CIRCUIT_TRANSFORMS_H
