#include "circuit/circuit.h"

#include <algorithm>
#include <cmath>

#include "common/hash.h"
#include "common/logging.h"

namespace mussti {

Circuit::Circuit(int num_qubits, std::string name)
    : numQubits_(num_qubits), name_(std::move(name))
{
    MUSSTI_REQUIRE(num_qubits > 0, "circuit needs at least one qubit");
}

void
Circuit::add(const Gate &gate)
{
    const int arity = gateArity(gate.kind);
    if (arity >= 1) {
        MUSSTI_ASSERT(gate.q0 >= 0 && gate.q0 < numQubits_,
                      "gate operand q0=" << gate.q0 << " out of range for "
                      << numQubits_ << " qubits");
    }
    if (arity == 2) {
        MUSSTI_ASSERT(gate.q1 >= 0 && gate.q1 < numQubits_,
                      "gate operand q1=" << gate.q1 << " out of range");
        MUSSTI_ASSERT(gate.q0 != gate.q1,
                      "two-qubit gate with identical operands q=" << gate.q0);
    }
    gates_.push_back(gate);
}

int
Circuit::twoQubitCount() const
{
    return static_cast<int>(std::count_if(
        gates_.begin(), gates_.end(),
        [](const Gate &g) { return g.twoQubit(); }));
}

int
Circuit::singleQubitCount() const
{
    return static_cast<int>(std::count_if(
        gates_.begin(), gates_.end(),
        [](const Gate &g) { return isSingleQubit(g.kind); }));
}

Circuit
Circuit::reversed() const
{
    Circuit out(numQubits_, name_ + "_rev");
    out.gates_.assign(gates_.rbegin(), gates_.rend());
    return out;
}

Circuit
Circuit::withSwapsDecomposed() const
{
    Circuit out(numQubits_, name_);
    for (const Gate &g : gates_) {
        if (g.kind == GateKind::Swap) {
            out.cx(g.q0, g.q1);
            out.cx(g.q1, g.q0);
            out.cx(g.q0, g.q1);
        } else {
            out.add(g);
        }
    }
    return out;
}

CircuitStats
Circuit::stats() const
{
    CircuitStats s;
    s.numQubits = numQubits_;
    s.totalGates = static_cast<int>(gates_.size());
    s.twoQubitGates = twoQubitCount();
    s.singleQubitGates = singleQubitCount();
    s.measurements = static_cast<int>(std::count_if(
        gates_.begin(), gates_.end(),
        [](const Gate &g) { return g.kind == GateKind::Measure; }));

    // Two-qubit depth: longest chain of dependent 2q gates.
    std::vector<int> qubit_depth(numQubits_, 0);
    double dist_sum = 0.0;
    for (const Gate &g : gates_) {
        if (!g.twoQubit())
            continue;
        const int d = std::max(qubit_depth[g.q0], qubit_depth[g.q1]) + 1;
        qubit_depth[g.q0] = d;
        qubit_depth[g.q1] = d;
        s.depth = std::max(s.depth, d);
        dist_sum += std::abs(g.q0 - g.q1);
    }
    if (s.twoQubitGates > 0)
        s.avgInteractionDistance = dist_sum / s.twoQubitGates;
    return s;
}

std::vector<int>
Circuit::twoQubitDegrees() const
{
    std::vector<int> degree(numQubits_, 0);
    for (const Gate &g : gates_) {
        if (!g.twoQubit())
            continue;
        ++degree[g.q0];
        ++degree[g.q1];
    }
    return degree;
}

std::uint64_t
Circuit::prefixHash(std::size_t num_gates) const
{
    MUSSTI_REQUIRE(num_gates <= gates_.size(),
                   "prefixHash over " << num_gates << " gates of a "
                   << gates_.size() << "-gate circuit");
    if (prefixHashes_.empty()) {
        // Link 0: the chain seed over everything that precedes the gate
        // stream. Byte-compatible with the historical contentHash(),
        // which folded (numQubits, name) before the gates.
        Fnv1a seed;
        seed.update(numQubits_);
        seed.update(name_);
        prefixHashes_.reserve(gates_.size() + 1);
        prefixHashes_.push_back(seed.digest());
    }
    while (prefixHashes_.size() <= num_gates) {
        const Gate &g = gates_[prefixHashes_.size() - 1];
        Fnv1a hash(prefixHashes_.back());
        hash.update(static_cast<int>(g.kind));
        hash.update(g.q0);
        hash.update(g.q1);
        hash.update(g.param);
        prefixHashes_.push_back(hash.digest());
    }
    return prefixHashes_[num_gates];
}

} // namespace mussti
