#include "circuit/qasm.h"

#include <cmath>
#include <cstdio>
#include <istream>
#include <sstream>
#include <stdexcept>

#include "common/logging.h"
#include "common/string_util.h"

namespace mussti {

namespace {

/** Render one gate as a QASM statement line. */
std::string
gateToQasm(const Gate &g)
{
    char buf[128];
    switch (gateArity(g.kind)) {
      case 0:
        return "barrier q;";
      case 1:
        if (g.kind == GateKind::Measure) {
            std::snprintf(buf, sizeof(buf), "measure q[%d] -> c[%d];",
                          g.q0, g.q0);
        } else if (g.kind == GateKind::Rx || g.kind == GateKind::Ry ||
                   g.kind == GateKind::Rz || g.kind == GateKind::U) {
            std::snprintf(buf, sizeof(buf), "%s(%.12g) q[%d];",
                          gateName(g.kind), g.param, g.q0);
        } else {
            std::snprintf(buf, sizeof(buf), "%s q[%d];",
                          gateName(g.kind), g.q0);
        }
        return buf;
      case 2:
        if (g.kind == GateKind::Ms) {
            std::snprintf(buf, sizeof(buf), "rxx(%.12g) q[%d],q[%d];",
                          g.param == 0.0 ? M_PI / 2 : g.param, g.q0, g.q1);
        } else {
            std::snprintf(buf, sizeof(buf), "%s q[%d],q[%d];",
                          gateName(g.kind), g.q0, g.q1);
        }
        return buf;
      default:
        panic("unreachable gate arity");
    }
}

/**
 * Strict full-string double parse; diagnostics name the offending
 * statement (std::stod alone throws bare exceptions and silently
 * accepts trailing garbage).
 */
double
parseReal(const std::string &text, const std::string &stmt)
{
    const std::optional<double> value = parseDoubleStrict(text);
    MUSSTI_REQUIRE(value.has_value(),
                   "unparsable number `" << text << "` in statement: "
                   << stmt);
    return *value;
}

/** Strict full-string non-negative integer parse with diagnostics. */
int
parseIndex(const std::string &text, const std::string &stmt)
{
    const std::optional<int> value = parseIntStrict(text);
    MUSSTI_REQUIRE(value.has_value(),
                   "unparsable index `" << text << "` in statement: "
                   << stmt);
    MUSSTI_REQUIRE(*value >= 0,
                   "negative index `" << text << "` in statement: "
                   << stmt);
    return *value;
}

/** Parse "q[7]" -> 7; fatal on other register names. */
int
parseOperand(const std::string &token, const std::string &reg_name,
             const std::string &stmt)
{
    const std::string t = trim(token);
    const std::size_t lb = t.find('[');
    const std::size_t rb = t.find(']');
    MUSSTI_REQUIRE(lb != std::string::npos && rb != std::string::npos &&
                   rb > lb + 1,
                   "malformed operand `" + token + "` in statement: " +
                   stmt);
    const std::string reg = trim(t.substr(0, lb));
    MUSSTI_REQUIRE(reg == reg_name,
                   "unsupported register `" + reg + "` (expected " +
                   reg_name + ") in statement: " + stmt);
    return parseIndex(trim(t.substr(lb + 1, rb - lb - 1)), stmt);
}

/**
 * Parse one parameter fragment: a plain number, or the pi expressions
 * QASMBench emits — `pi`, `pi/b`, `a*pi`, `pi*a`, `a*pi/b`, each with
 * an optional leading sign. Zero denominators and malformed products
 * are rejected with the offending statement (the old code let `pi/0`
 * through as inf and read every `a*pi` as plain pi).
 */
double
parseParam(const std::string &fragment, const std::string &stmt)
{
    std::string text = trim(fragment);
    if (text.empty())
        return 0.0;

    double sign = 1.0;
    if (text[0] == '+' || text[0] == '-') {
        sign = text[0] == '-' ? -1.0 : 1.0;
        text = trim(text.substr(1));
        MUSSTI_REQUIRE(!text.empty(), "dangling sign in parameter of "
                       "statement: " << stmt);
    }

    if (text.find("pi") == std::string::npos)
        return sign * parseReal(text, stmt);

    double scale = 1.0;
    const auto frac = split(text, '/');
    MUSSTI_REQUIRE(frac.size() <= 2,
                   "chained division in parameter of statement: " << stmt);
    if (frac.size() == 2) {
        const double denominator = parseReal(trim(frac[1]), stmt);
        MUSSTI_REQUIRE(denominator != 0.0,
                       "zero denominator in parameter of statement: "
                       << stmt);
        scale /= denominator;
    }

    const std::string head = trim(frac[0]);
    const auto product = split(head, '*');
    MUSSTI_REQUIRE(product.size() <= 2,
                   "chained product in parameter of statement: " << stmt);
    if (product.size() == 1) {
        MUSSTI_REQUIRE(trim(product[0]) == "pi",
                       "unsupported parameter expression `" << text
                       << "` in statement: " << stmt);
    } else {
        const std::string lhs = trim(product[0]);
        const std::string rhs = trim(product[1]);
        if (lhs == "pi") {
            scale *= parseReal(rhs, stmt);
        } else if (rhs == "pi") {
            scale *= parseReal(lhs, stmt);
        } else {
            fatal("unsupported parameter expression `" + text +
                  "` in statement: " + stmt);
        }
    }
    return sign * M_PI * scale;
}

} // namespace

std::string
toQasm(const Circuit &circuit)
{
    std::ostringstream out;
    out << "OPENQASM 2.0;\n";
    out << "include \"qelib1.inc\";\n";
    out << "// " << circuit.name() << "\n";
    out << "qreg q[" << circuit.numQubits() << "];\n";
    out << "creg c[" << circuit.numQubits() << "];\n";
    for (const Gate &g : circuit.gates())
        out << gateToQasm(g) << "\n";
    return out.str();
}

Circuit
fromQasmStream(std::istream &in, const std::string &name)
{
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return fromQasm(buffer.str(), name);
}

Circuit
fromQasm(const std::string &text, const std::string &name)
{
    int num_qubits = -1;
    std::string qreg_name = "q";
    std::vector<Gate> pending;

    // Statement-split on ';', tolerating newlines and // comments.
    std::string cleaned;
    cleaned.reserve(text.size());
    for (std::size_t i = 0; i < text.size(); ++i) {
        if (text[i] == '/' && i + 1 < text.size() && text[i + 1] == '/') {
            while (i < text.size() && text[i] != '\n')
                ++i;
            continue;
        }
        cleaned += text[i] == '\n' ? ' ' : text[i];
    }

    for (const std::string &raw : split(cleaned, ';')) {
        const std::string stmt = trim(raw);
        if (stmt.empty())
            continue;
        if (startsWith(stmt, "OPENQASM") || startsWith(stmt, "include"))
            continue;
        if (startsWith(stmt, "creg"))
            continue;
        if (startsWith(stmt, "qreg")) {
            MUSSTI_REQUIRE(num_qubits < 0,
                           "multiple qreg declarations are unsupported");
            const std::size_t lb = stmt.find('[');
            const std::size_t rb = stmt.find(']');
            MUSSTI_REQUIRE(lb != std::string::npos &&
                           rb != std::string::npos && rb > lb + 1,
                           "malformed qreg: " + stmt);
            qreg_name = trim(stmt.substr(4, lb - 4));
            MUSSTI_REQUIRE(!qreg_name.empty(),
                           "qreg without a register name: " + stmt);
            num_qubits = parseIndex(trim(stmt.substr(lb + 1, rb - lb - 1)),
                                    stmt);
            MUSSTI_REQUIRE(num_qubits > 0,
                           "qreg needs a positive size: " + stmt);
            continue;
        }
        MUSSTI_REQUIRE(!startsWith(stmt, "gate") && !startsWith(stmt, "if"),
                       "unsupported QASM construct: " + stmt);
        MUSSTI_REQUIRE(num_qubits > 0, "gate before qreg declaration");

        // Mnemonic [("params")] operands
        std::size_t cut = stmt.find_first_of(" (");
        MUSSTI_REQUIRE(cut != std::string::npos, "malformed stmt: " + stmt);
        const std::string mnemonic = stmt.substr(0, cut);
        double param = 0.0;
        std::string rest = stmt.substr(cut);
        if (startsWith(trim(rest), "(")) {
            const std::size_t open = rest.find('(');
            const std::size_t close = rest.find(')');
            MUSSTI_REQUIRE(close != std::string::npos && close > open,
                           "unterminated parameter list: " + stmt);
            const std::string params = rest.substr(open + 1,
                                                   close - open - 1);
            // Only the first parameter matters for the simulated gate
            // set (u's theta, rotations' angle); "pi/2"-style fragments
            // as emitted by QASMBench are accepted.
            param = parseParam(split(params, ',')[0], stmt);
            rest = rest.substr(close + 1);
        }

        const GateKind kind = gateKindFromName(mnemonic);
        if (kind == GateKind::Barrier) {
            pending.emplace_back(kind, -1);
            continue;
        }
        if (kind == GateKind::Measure) {
            const std::string lhs = split(rest, '-')[0];
            pending.emplace_back(kind,
                                 parseOperand(lhs, qreg_name, stmt));
            continue;
        }
        const auto operands = split(rest, ',');
        if (gateArity(kind) == 2) {
            MUSSTI_REQUIRE(operands.size() == 2,
                           "two-qubit gate needs two operands: " + stmt);
            pending.emplace_back(kind,
                                 parseOperand(operands[0], qreg_name, stmt),
                                 parseOperand(operands[1], qreg_name, stmt),
                                 param);
        } else {
            MUSSTI_REQUIRE(operands.size() == 1,
                           "one-qubit gate needs one operand: " + stmt);
            pending.emplace_back(kind,
                                 parseOperand(operands[0], qreg_name, stmt),
                                 param);
        }
    }

    MUSSTI_REQUIRE(num_qubits > 0, "no qreg declaration found");
    Circuit circuit(num_qubits, name);
    for (const Gate &g : pending) {
        if (g.kind == GateKind::Barrier) {
            circuit.add(Gate(GateKind::Barrier, -1));
        } else {
            MUSSTI_REQUIRE(g.q0 < num_qubits &&
                           (gateArity(g.kind) < 2 || g.q1 < num_qubits),
                           "operand index exceeds qreg size "
                           << num_qubits << " (gate " << gateName(g.kind)
                           << " q" << g.q0 << (gateArity(g.kind) == 2
                               ? ",q" + std::to_string(g.q1) : "") << ")");
            // Malformed input, not a library bug: without this check a
            // repeated operand (e.g. "cx q[0],q[0];") would sail past
            // the range validation and trip Circuit::add's internal
            // assertion — an Internal panic for what is a bad program.
            MUSSTI_REQUIRE(gateArity(g.kind) < 2 || g.q0 != g.q1,
                           "two-qubit gate repeats operand q" << g.q0
                           << " (gate " << gateName(g.kind) << ")");
            circuit.add(g);
        }
    }
    return circuit;
}

} // namespace mussti
