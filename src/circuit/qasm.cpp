#include "circuit/qasm.h"

#include <cmath>
#include <cstdio>
#include <istream>
#include <sstream>

#include "common/logging.h"
#include "common/string_util.h"

namespace mussti {

namespace {

/** Render one gate as a QASM statement line. */
std::string
gateToQasm(const Gate &g)
{
    char buf[128];
    switch (gateArity(g.kind)) {
      case 0:
        return "barrier q;";
      case 1:
        if (g.kind == GateKind::Measure) {
            std::snprintf(buf, sizeof(buf), "measure q[%d] -> c[%d];",
                          g.q0, g.q0);
        } else if (g.kind == GateKind::Rx || g.kind == GateKind::Ry ||
                   g.kind == GateKind::Rz || g.kind == GateKind::U) {
            std::snprintf(buf, sizeof(buf), "%s(%.12g) q[%d];",
                          gateName(g.kind), g.param, g.q0);
        } else {
            std::snprintf(buf, sizeof(buf), "%s q[%d];",
                          gateName(g.kind), g.q0);
        }
        return buf;
      case 2:
        if (g.kind == GateKind::Ms) {
            std::snprintf(buf, sizeof(buf), "rxx(%.12g) q[%d],q[%d];",
                          g.param == 0.0 ? M_PI / 2 : g.param, g.q0, g.q1);
        } else {
            std::snprintf(buf, sizeof(buf), "%s q[%d],q[%d];",
                          gateName(g.kind), g.q0, g.q1);
        }
        return buf;
      default:
        panic("unreachable gate arity");
    }
}

/** Parse "q[7]" -> 7; fatal on other register names. */
int
parseOperand(const std::string &token, const std::string &reg_name)
{
    const std::string t = trim(token);
    const std::size_t lb = t.find('[');
    const std::size_t rb = t.find(']');
    MUSSTI_REQUIRE(lb != std::string::npos && rb != std::string::npos &&
                   rb > lb, "malformed operand: " + token);
    const std::string reg = trim(t.substr(0, lb));
    MUSSTI_REQUIRE(reg == reg_name,
                   "unsupported register `" + reg + "` (expected " +
                   reg_name + ")");
    return std::stoi(t.substr(lb + 1, rb - lb - 1));
}

} // namespace

std::string
toQasm(const Circuit &circuit)
{
    std::ostringstream out;
    out << "OPENQASM 2.0;\n";
    out << "include \"qelib1.inc\";\n";
    out << "// " << circuit.name() << "\n";
    out << "qreg q[" << circuit.numQubits() << "];\n";
    out << "creg c[" << circuit.numQubits() << "];\n";
    for (const Gate &g : circuit.gates())
        out << gateToQasm(g) << "\n";
    return out.str();
}

Circuit
fromQasmStream(std::istream &in, const std::string &name)
{
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return fromQasm(buffer.str(), name);
}

Circuit
fromQasm(const std::string &text, const std::string &name)
{
    int num_qubits = -1;
    std::string qreg_name = "q";
    std::vector<Gate> pending;

    // Statement-split on ';', tolerating newlines and // comments.
    std::string cleaned;
    cleaned.reserve(text.size());
    for (std::size_t i = 0; i < text.size(); ++i) {
        if (text[i] == '/' && i + 1 < text.size() && text[i + 1] == '/') {
            while (i < text.size() && text[i] != '\n')
                ++i;
            continue;
        }
        cleaned += text[i] == '\n' ? ' ' : text[i];
    }

    for (const std::string &raw : split(cleaned, ';')) {
        const std::string stmt = trim(raw);
        if (stmt.empty())
            continue;
        if (startsWith(stmt, "OPENQASM") || startsWith(stmt, "include"))
            continue;
        if (startsWith(stmt, "creg"))
            continue;
        if (startsWith(stmt, "qreg")) {
            MUSSTI_REQUIRE(num_qubits < 0,
                           "multiple qreg declarations are unsupported");
            const std::size_t lb = stmt.find('[');
            const std::size_t rb = stmt.find(']');
            MUSSTI_REQUIRE(lb != std::string::npos && rb > lb,
                           "malformed qreg: " + stmt);
            qreg_name = trim(stmt.substr(4, lb - 4));
            num_qubits = std::stoi(stmt.substr(lb + 1, rb - lb - 1));
            continue;
        }
        MUSSTI_REQUIRE(!startsWith(stmt, "gate") && !startsWith(stmt, "if"),
                       "unsupported QASM construct: " + stmt);
        MUSSTI_REQUIRE(num_qubits > 0, "gate before qreg declaration");

        // Mnemonic [("params")] operands
        std::size_t cut = stmt.find_first_of(" (");
        MUSSTI_REQUIRE(cut != std::string::npos, "malformed stmt: " + stmt);
        const std::string mnemonic = stmt.substr(0, cut);
        double param = 0.0;
        std::string rest = stmt.substr(cut);
        if (!rest.empty() && trim(rest)[0] == '(') {
            const std::size_t open = rest.find('(');
            const std::size_t close = rest.find(')');
            MUSSTI_REQUIRE(close != std::string::npos,
                           "unterminated parameter list: " + stmt);
            const std::string params = rest.substr(open + 1, close - open - 1);
            // Accept "pi/2"-style fragments commonly emitted by QASMBench.
            std::string first = trim(split(params, ',')[0]);
            if (first.find("pi") != std::string::npos) {
                double scale = 1.0;
                const auto frac = split(first, '/');
                if (frac.size() == 2)
                    scale = 1.0 / std::stod(frac[1]);
                double sign = startsWith(first, "-") ? -1.0 : 1.0;
                param = sign * M_PI * scale;
            } else if (!first.empty()) {
                param = std::stod(first);
            }
            rest = rest.substr(close + 1);
        }

        const GateKind kind = gateKindFromName(mnemonic);
        if (kind == GateKind::Barrier) {
            pending.emplace_back(kind, -1);
            continue;
        }
        if (kind == GateKind::Measure) {
            const std::string lhs = split(rest, '-')[0];
            pending.emplace_back(kind, parseOperand(lhs, qreg_name));
            continue;
        }
        const auto operands = split(rest, ',');
        if (gateArity(kind) == 2) {
            MUSSTI_REQUIRE(operands.size() == 2,
                           "two-qubit gate needs two operands: " + stmt);
            pending.emplace_back(kind, parseOperand(operands[0], qreg_name),
                                 parseOperand(operands[1], qreg_name), param);
        } else {
            MUSSTI_REQUIRE(operands.size() == 1,
                           "one-qubit gate needs one operand: " + stmt);
            pending.emplace_back(kind, parseOperand(operands[0], qreg_name),
                                 param);
        }
    }

    MUSSTI_REQUIRE(num_qubits > 0, "no qreg declaration found");
    Circuit circuit(num_qubits, name);
    for (const Gate &g : pending) {
        if (g.kind == GateKind::Barrier)
            circuit.add(Gate(GateKind::Barrier, -1));
        else
            circuit.add(g);
    }
    return circuit;
}

} // namespace mussti
