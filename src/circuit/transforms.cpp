#include "circuit/transforms.h"

#include <cmath>
#include <numbers>

#include "common/logging.h"
#include "common/rng.h"

namespace mussti {

namespace {

/** Self-inverse gate kinds eligible for pair cancellation. */
bool
selfInverse(GateKind kind)
{
    switch (kind) {
      case GateKind::X:
      case GateKind::Y:
      case GateKind::Z:
      case GateKind::H:
      case GateKind::Cx:
      case GateKind::Cz:
      case GateKind::Swap:
        return true;
      default:
        return false;
    }
}

/** Identical support (operands may not be reordered for cx). */
bool
sameSupport(const Gate &a, const Gate &b)
{
    if (a.kind != b.kind)
        return false;
    if (a.kind == GateKind::Cz || a.kind == GateKind::Swap) {
        // Symmetric gates cancel regardless of operand order.
        return (a.q0 == b.q0 && a.q1 == b.q1) ||
               (a.q0 == b.q1 && a.q1 == b.q0);
    }
    return a.q0 == b.q0 && a.q1 == b.q1;
}

/** One cancellation sweep; returns true if anything was removed. */
bool
cancelOnce(std::vector<Gate> &gates)
{
    std::vector<bool> removed(gates.size(), false);
    bool changed = false;
    for (std::size_t i = 0; i < gates.size(); ++i) {
        if (removed[i] || !selfInverse(gates[i].kind))
            continue;
        // Find the next gate sharing a qubit with gates[i].
        for (std::size_t j = i + 1; j < gates.size(); ++j) {
            if (removed[j])
                continue;
            const Gate &a = gates[i];
            const Gate &b = gates[j];
            const bool blocks = b.touches(a.q0) ||
                (a.q1 >= 0 && b.touches(a.q1));
            if (!blocks)
                continue;
            if (sameSupport(a, b)) {
                removed[i] = removed[j] = true;
                changed = true;
            }
            break; // first interacting gate decides either way
        }
    }
    if (changed) {
        std::vector<Gate> kept;
        for (std::size_t i = 0; i < gates.size(); ++i) {
            if (!removed[i])
                kept.push_back(gates[i]);
        }
        gates = std::move(kept);
    }
    return changed;
}

bool
isRotation(GateKind kind)
{
    return kind == GateKind::Rx || kind == GateKind::Ry ||
           kind == GateKind::Rz;
}

} // namespace

Circuit
cancelAdjacentInverses(const Circuit &circuit)
{
    std::vector<Gate> gates = circuit.gates();
    while (cancelOnce(gates)) {
    }
    Circuit out(circuit.numQubits(), circuit.name());
    for (const Gate &g : gates)
        out.add(g);
    return out;
}

Circuit
mergeRotations(const Circuit &circuit)
{
    // For each gate, look backward for a mergeable same-axis rotation
    // on the same qubit not blocked by an interacting gate.
    std::vector<Gate> gates;
    constexpr double two_pi = 2.0 * std::numbers::pi;
    for (const Gate &g : circuit.gates()) {
        if (!isRotation(g.kind)) {
            gates.push_back(g);
            continue;
        }
        bool merged = false;
        for (auto it = gates.rbegin(); it != gates.rend(); ++it) {
            if (!it->touches(g.q0))
                continue;
            if (it->kind == g.kind && it->q0 == g.q0) {
                it->param = std::fmod(it->param + g.param, two_pi);
                merged = true;
            }
            break;
        }
        if (!merged)
            gates.push_back(g);
    }
    Circuit out(circuit.numQubits(), circuit.name());
    for (const Gate &g : gates) {
        if (isRotation(g.kind) &&
            std::fabs(std::remainder(g.param, two_pi)) < 1e-12)
            continue; // identity rotation
        out.add(g);
    }
    return out;
}

Circuit
relabelQubits(const Circuit &circuit, const std::vector<int> &permutation)
{
    MUSSTI_REQUIRE(static_cast<int>(permutation.size()) ==
                   circuit.numQubits(),
                   "permutation size must equal qubit count");
    std::vector<bool> seen(permutation.size(), false);
    for (int target : permutation) {
        MUSSTI_REQUIRE(target >= 0 &&
                       target < circuit.numQubits() && !seen[target],
                       "relabeling is not a permutation");
        seen[target] = true;
    }

    Circuit out(circuit.numQubits(), circuit.name());
    for (Gate g : circuit.gates()) {
        if (g.q0 >= 0)
            g.q0 = permutation[g.q0];
        if (g.q1 >= 0)
            g.q1 = permutation[g.q1];
        out.add(g);
    }
    return out;
}

Circuit
scrambleQubits(const Circuit &circuit, std::uint64_t seed)
{
    std::vector<int> permutation(circuit.numQubits());
    for (int q = 0; q < circuit.numQubits(); ++q)
        permutation[q] = q;
    Rng rng(seed);
    rng.shuffle(permutation);
    Circuit out = relabelQubits(circuit, permutation);
    out.setName(circuit.name() + "_scrambled");
    return out;
}

Circuit
simplify(const Circuit &circuit)
{
    Circuit current = circuit;
    for (int round = 0; round < 16; ++round) {
        Circuit next = mergeRotations(cancelAdjacentInverses(current));
        if (next == current)
            break;
        current = std::move(next);
    }
    return current;
}

} // namespace mussti
