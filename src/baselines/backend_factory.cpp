#include "baselines/backend_factory.h"

#include "baselines/dai.h"
#include "baselines/mqt_like.h"
#include "baselines/murali.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "core/compiler.h"

namespace mussti {

std::shared_ptr<const ICompilerBackend>
makeMusstiBackend(const MusstiConfig &config, const PhysicalParams &params)
{
    return std::make_shared<const MusstiCompiler>(config, params);
}

std::shared_ptr<const ICompilerBackend>
makeGridBackend(const std::string &which, const GridConfig &grid,
                const PhysicalParams &params)
{
    const std::string name = toLower(which);
    if (name == "murali")
        return std::make_shared<const MuraliCompiler>(grid, params);
    if (name == "dai")
        return std::make_shared<const DaiCompiler>(grid, params);
    if (name == "mqt")
        return std::make_shared<const MqtLikeCompiler>(grid, params);
    fatal("unknown baseline: " + which);
}

std::vector<std::string>
gridBackendNames()
{
    return {"murali", "dai", "mqt"};
}

} // namespace mussti
