#include "baselines/grid_compiler_base.h"

#include <algorithm>
#include <limits>
#include <memory>
#include <utility>

#include "arch/device_registry.h"
#include "common/hash.h"
#include "common/logging.h"
#include "sim/evaluation_pass.h"

namespace mussti {

GridCompilerBase::GridCompilerBase(std::string name, const GridConfig &grid,
                                   const PhysicalParams &params)
    : name_(std::move(name)), device_(DeviceRegistry::createGrid(grid)),
      params_(params)
{}

GridCompilerBase::Pass::Pass(const GridDevice &device,
                             const PhysicalParams &params,
                             const Circuit &lowered,
                             const Placement &initial)
    : placement(initial),
      lru(lowered.numQubits()),
      emitter(device.zoneInfos(), params, placement, schedule),
      dag(lowered),
      remainingDegree(lowered.twoQubitDegrees())
{
    schedule.initialChains = Schedule::snapshotChains(initial);
}

/** Share the backend's immutable grid device with the context. */
class GridTargetPass : public CompilerPass
{
  public:
    explicit GridTargetPass(std::shared_ptr<const GridDevice> device)
        : device_(std::move(device))
    {}

    const char *name() const override { return "grid-target"; }

    void
    run(CompileContext &ctx) const override
    {
        ctx.device = device_;
    }

  private:
    std::shared_ptr<const GridDevice> device_;
};

/** Row-major initial fill over the context's grid device. */
class GridCompilerBase::PlacementPass : public CompilerPass
{
  public:
    explicit PlacementPass(const GridCompilerBase &strategy)
        : strategy_(strategy)
    {}

    const char *name() const override { return "grid-placement"; }

    void
    run(CompileContext &ctx) const override
    {
        ctx.requireGridDevice();
        ctx.placement =
            strategy_.initialPlacement(ctx.input.numQubits());
    }

  private:
    const GridCompilerBase &strategy_;
};

/** Drive the strategy's scheduleStep() loop to a full schedule. */
class GridCompilerBase::SchedulePass : public CompilerPass
{
  public:
    explicit SchedulePass(const GridCompilerBase &strategy)
        : strategy_(strategy)
    {}

    const char *name() const override { return "grid-schedule"; }

    void
    run(CompileContext &ctx) const override
    {
        Pass pass(ctx.requireGridDevice(), ctx.params,
                  ctx.requireLowered(), ctx.requirePlacement());

        while (!pass.dag.empty()) {
            strategy_.drainExecutable(pass);
            if (pass.dag.empty())
                break;
            strategy_.scheduleStep(pass);
        }

        // Trailing single-qubit gates.
        for (const Gate &g1 : pass.dag.trailing1q()) {
            if (!isSingleQubit(g1.kind))
                continue;
            ScheduledOp op;
            op.kind = OpKind::Gate1Q;
            op.q0 = g1.q0;
            op.zoneFrom = pass.placement.zoneOf(g1.q0);
            op.zoneTo = op.zoneFrom;
            op.durationUs = ctx.params.gate1qTimeUs;
            pass.schedule.push(op);
        }

        ctx.schedule = std::move(pass.schedule);
        ctx.finalPlacement = std::move(pass.placement);
    }

  private:
    const GridCompilerBase &strategy_;
};

Placement
GridCompilerBase::initialPlacement(int num_qubits) const
{
    MUSSTI_REQUIRE(num_qubits <= device_->slotCount(),
                   "circuit does not fit on the grid: " << num_qubits
                   << " qubits vs " << device_->slotCount() << " slots");
    Placement placement(num_qubits, device_->numTraps());
    int next = 0;
    for (int t = 0; t < device_->numTraps() && next < num_qubits; ++t) {
        for (int slot = 0; slot < device_->config().trapCapacity &&
             next < num_qubits; ++slot) {
            placement.insert(next, t, ChainEnd::Back);
            ++next;
        }
    }
    return placement;
}

bool
GridCompilerBase::executable(const Pass &pass, const Gate &gate) const
{
    const int ta = pass.placement.zoneOf(gate.q0);
    return ta >= 0 && ta == pass.placement.zoneOf(gate.q1) &&
           gateAllowedIn(ta);
}

int
GridCompilerBase::nearestTrapWithSpace(const Pass &pass, int from,
                                       int exclude) const
{
    int best = -1;
    int best_dist = std::numeric_limits<int>::max();
    for (int t = 0; t < device_->numTraps(); ++t) {
        if (t == exclude)
            continue;
        if (pass.placement.sizeOf(t) >= device_->config().trapCapacity)
            continue;
        const int dist = device_->hopDistance(from, t);
        if (dist < best_dist) {
            best_dist = dist;
            best = t;
        }
    }
    return best;
}

void
GridCompilerBase::relocate(Pass &pass, int qubit, int target_trap,
                           const std::vector<int> &protect) const
{
    const int from = pass.placement.zoneOf(qubit);
    MUSSTI_ASSERT(from >= 0, "grid relocate of unplaced qubit");
    if (from == target_trap)
        return;

    // Spill until the target has a slot.
    std::vector<int> guarded = protect;
    guarded.push_back(qubit);
    while (pass.placement.sizeOf(target_trap) >=
           device_->config().trapCapacity) {
        const int victim = pass.lru.victim(pass.placement.chain(target_trap),
                                           guarded);
        // victim() returns -1 when every resident is protected — a
        // capacity dead-lock (trap smaller than the protected working
        // set), which must fail loudly instead of indexing with -1.
        if (victim < 0) {
            panic("grid spill dead-lock in trap " +
                  std::to_string(target_trap) + ": all " +
                  std::to_string(pass.placement.sizeOf(target_trap)) +
                  " residents are protected (" +
                  std::to_string(guarded.size()) + " protected qubits); "
                  "trap capacity too small for the gate's working set");
        }
        const int spill_to = nearestTrapWithSpace(pass, target_trap,
                                                  target_trap);
        MUSSTI_ASSERT(spill_to >= 0, "grid completely full");
        const int hops = device_->hopDistance(target_trap, spill_to);
        pass.emitter.relocate(victim, spill_to,
                              hops * device_->config().pitchUm);
        pass.schedule.addExtraShuttles(hops - 1);
    }

    const int hops = device_->hopDistance(from, target_trap);
    pass.emitter.relocate(qubit, target_trap,
                          hops * device_->config().pitchUm);
    pass.schedule.addExtraShuttles(hops - 1);
}

void
GridCompilerBase::executeNode(Pass &pass, DagNodeId id) const
{
    const DagNode &node = pass.dag.node(id);
    const Gate &gate = node.gate;
    MUSSTI_ASSERT(executable(pass, gate),
                  "executeNode on split operands");

    for (const Gate &g1 : pass.dag.leading1q(id)) {
        if (!isSingleQubit(g1.kind))
            continue;
        ScheduledOp op;
        op.kind = OpKind::Gate1Q;
        op.q0 = g1.q0;
        op.zoneFrom = pass.placement.zoneOf(g1.q0);
        op.zoneTo = op.zoneFrom;
        op.durationUs = params_.gate1qTimeUs;
        pass.schedule.push(op);
    }

    const int trap = pass.placement.zoneOf(gate.q0);
    ScheduledOp op;
    op.kind = OpKind::Gate2Q;
    op.q0 = gate.q0;
    op.q1 = gate.q1;
    op.zoneFrom = trap;
    op.zoneTo = trap;
    op.durationUs = params_.gate2qTimeUs;
    op.circuitGate = node.circuitIndex;
    pass.schedule.push(op);

    pass.lru.touch(gate.q0);
    pass.lru.touch(gate.q1);
    --pass.remainingDegree[gate.q0];
    --pass.remainingDegree[gate.q1];
    pass.dag.complete(id);
}

void
GridCompilerBase::drainExecutable(Pass &pass) const
{
    bool progressed = true;
    while (progressed) {
        progressed = false;
        const std::vector<DagNodeId> snapshot = pass.dag.frontier();
        for (DagNodeId id : snapshot) {
            if (pass.dag.isReady(id) &&
                executable(pass, pass.dag.node(id).gate)) {
                executeNode(pass, id);
                progressed = true;
            }
        }
    }
}

PassPipeline
GridCompilerBase::makePipeline() const
{
    PassPipeline pipeline;
    pipeline.add(std::make_unique<LowerSwapsPass>())
        .add(std::make_unique<GridTargetPass>(device_))
        .add(std::make_unique<PlacementPass>(*this))
        .add(std::make_unique<SchedulePass>(*this))
        .add(std::make_unique<EvaluationPass>());
    return pipeline;
}

CompileResult
GridCompilerBase::compile(Circuit circuit) const
{
    // The grid strategies are deterministic; the seed is unused but a
    // value must flow to the context.
    return makePipeline().compile(std::move(circuit), params_, 0);
}

CompileResult
GridCompilerBase::compileControlled(
    Circuit circuit, const std::optional<std::uint64_t> &seed,
    const std::shared_ptr<SchedulerWorkspace> &workspace,
    DeltaCompileIO &delta, const JobControl *control) const
{
    (void)seed;
    (void)workspace;
    delta.captured.clear();
    delta.resumed = false;
    return makePipeline().compile(std::move(circuit), params_, 0, nullptr,
                                  nullptr, control);
}

void
GridCompilerBase::hashConfigExtra(Fnv1a &hash) const
{
    (void)hash;
}

std::uint64_t
GridCompilerBase::configDigest() const
{
    Fnv1a hash;
    hash.update(name_);
    // The device folds in through its canonical registry spec (one
    // digest convention across every backend family).
    hash.update(DeviceRegistry::specOf(device_->config()).digest());
    hash.update(paramsDigest(params_));
    hashConfigExtra(hash);
    return hash.digest();
}

} // namespace mussti
