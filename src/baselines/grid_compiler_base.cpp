#include "baselines/grid_compiler_base.h"

#include <algorithm>
#include <chrono>
#include <limits>

#include "common/logging.h"
#include "sim/evaluator.h"

namespace mussti {

GridCompilerBase::Pass::Pass(const GridDevice &device,
                             const PhysicalParams &params,
                             const Circuit &lowered,
                             const Placement &initial)
    : placement(initial),
      lru(lowered.numQubits()),
      emitter(device.zoneInfos(), params, placement, schedule),
      dag(lowered),
      remainingDegree(lowered.twoQubitDegrees())
{
    schedule.initialChains = Schedule::snapshotChains(initial);
}

Placement
GridCompilerBase::initialPlacement(int num_qubits) const
{
    MUSSTI_REQUIRE(num_qubits <= device_.slotCount(),
                   "circuit does not fit on the grid: " << num_qubits
                   << " qubits vs " << device_.slotCount() << " slots");
    Placement placement(num_qubits, device_.numTraps());
    int next = 0;
    for (int t = 0; t < device_.numTraps() && next < num_qubits; ++t) {
        for (int slot = 0; slot < device_.config().trapCapacity &&
             next < num_qubits; ++slot) {
            placement.insert(next, t, ChainEnd::Back);
            ++next;
        }
    }
    return placement;
}

bool
GridCompilerBase::executable(const Pass &pass, const Gate &gate) const
{
    const int ta = pass.placement.zoneOf(gate.q0);
    return ta >= 0 && ta == pass.placement.zoneOf(gate.q1) &&
           gateAllowedIn(ta);
}

int
GridCompilerBase::nearestTrapWithSpace(const Pass &pass, int from,
                                       int exclude) const
{
    int best = -1;
    int best_dist = std::numeric_limits<int>::max();
    for (int t = 0; t < device_.numTraps(); ++t) {
        if (t == exclude)
            continue;
        if (pass.placement.sizeOf(t) >= device_.config().trapCapacity)
            continue;
        const int dist = device_.hopDistance(from, t);
        if (dist < best_dist) {
            best_dist = dist;
            best = t;
        }
    }
    return best;
}

void
GridCompilerBase::relocate(Pass &pass, int qubit, int target_trap,
                           const std::vector<int> &protect)
{
    const int from = pass.placement.zoneOf(qubit);
    MUSSTI_ASSERT(from >= 0, "grid relocate of unplaced qubit");
    if (from == target_trap)
        return;

    // Spill until the target has a slot.
    std::vector<int> guarded = protect;
    guarded.push_back(qubit);
    while (pass.placement.sizeOf(target_trap) >=
           device_.config().trapCapacity) {
        const int victim = pass.lru.victim(pass.placement.chain(target_trap),
                                           guarded);
        MUSSTI_ASSERT(victim >= 0, "grid spill dead-lock in trap "
                      << target_trap);
        const int spill_to = nearestTrapWithSpace(pass, target_trap,
                                                  target_trap);
        MUSSTI_ASSERT(spill_to >= 0, "grid completely full");
        const int hops = device_.hopDistance(target_trap, spill_to);
        pass.emitter.relocate(victim, spill_to,
                              hops * device_.config().pitchUm);
        pass.schedule.addExtraShuttles(hops - 1);
    }

    const int hops = device_.hopDistance(from, target_trap);
    pass.emitter.relocate(qubit, target_trap,
                          hops * device_.config().pitchUm);
    pass.schedule.addExtraShuttles(hops - 1);
}

void
GridCompilerBase::executeNode(Pass &pass, DagNodeId id)
{
    const DagNode &node = pass.dag.node(id);
    const Gate &gate = node.gate;
    MUSSTI_ASSERT(executable(pass, gate),
                  "executeNode on split operands");

    for (const Gate &g1 : node.leading1q) {
        if (!isSingleQubit(g1.kind))
            continue;
        ScheduledOp op;
        op.kind = OpKind::Gate1Q;
        op.q0 = g1.q0;
        op.zoneFrom = pass.placement.zoneOf(g1.q0);
        op.zoneTo = op.zoneFrom;
        op.durationUs = params_.gate1qTimeUs;
        pass.schedule.push(op);
    }

    const int trap = pass.placement.zoneOf(gate.q0);
    ScheduledOp op;
    op.kind = OpKind::Gate2Q;
    op.q0 = gate.q0;
    op.q1 = gate.q1;
    op.zoneFrom = trap;
    op.zoneTo = trap;
    op.durationUs = params_.gate2qTimeUs;
    op.circuitGate = node.circuitIndex;
    pass.schedule.push(op);

    pass.lru.touch(gate.q0);
    pass.lru.touch(gate.q1);
    --pass.remainingDegree[gate.q0];
    --pass.remainingDegree[gate.q1];
    pass.dag.complete(id);
}

void
GridCompilerBase::drainExecutable(Pass &pass)
{
    bool progressed = true;
    while (progressed) {
        progressed = false;
        const std::vector<DagNodeId> snapshot = pass.dag.frontier();
        for (DagNodeId id : snapshot) {
            if (pass.dag.isReady(id) &&
                executable(pass, pass.dag.node(id).gate)) {
                executeNode(pass, id);
                progressed = true;
            }
        }
    }
}

CompileResult
GridCompilerBase::compile(const Circuit &circuit)
{
    const auto t0 = std::chrono::steady_clock::now();

    CompileResult result(circuit.withSwapsDecomposed());
    Pass pass(device_, params_, result.lowered,
              initialPlacement(circuit.numQubits()));

    while (!pass.dag.empty()) {
        drainExecutable(pass);
        if (pass.dag.empty())
            break;
        scheduleStep(pass);
    }

    // Trailing single-qubit gates.
    for (const Gate &g1 : pass.dag.trailing1q()) {
        if (!isSingleQubit(g1.kind))
            continue;
        ScheduledOp op;
        op.kind = OpKind::Gate1Q;
        op.q0 = g1.q0;
        op.zoneFrom = pass.placement.zoneOf(g1.q0);
        op.zoneTo = op.zoneFrom;
        op.durationUs = params_.gate1qTimeUs;
        pass.schedule.push(op);
    }

    const auto t1 = std::chrono::steady_clock::now();
    result.compileTimeSec = std::chrono::duration<double>(t1 - t0).count();
    result.schedule = std::move(pass.schedule);
    result.finalChains = Schedule::snapshotChains(pass.placement);

    const Evaluator evaluator(params_);
    result.metrics = evaluator.evaluate(result.schedule,
                                        device_.zoneInfos());
    return result;
}

} // namespace mussti
