/**
 * @file
 * Construction of named compiler backends.
 *
 * The one place that knows every concrete compiler; bench drivers and
 * the CLI resolve a backend by name here and then talk only to the
 * ICompilerBackend interface. Adding a backend = adding a branch here
 * (plus the backend itself), nothing else.
 */
#ifndef MUSSTI_BASELINES_BACKEND_FACTORY_H
#define MUSSTI_BASELINES_BACKEND_FACTORY_H

#include <memory>
#include <string>
#include <vector>

#include "arch/grid_device.h"
#include "core/backend.h"
#include "core/config.h"
#include "sim/params.h"

namespace mussti {

/** The MUSS-TI compiler as a shareable backend. */
std::shared_ptr<const ICompilerBackend>
makeMusstiBackend(const MusstiConfig &config = {},
                  const PhysicalParams &params = {});

/**
 * A grid baseline by name: "murali" [55], "dai" [13], or "mqt" [70]
 * (case-insensitive). fatal() on unknown names.
 */
std::shared_ptr<const ICompilerBackend>
makeGridBackend(const std::string &which, const GridConfig &grid,
                const PhysicalParams &params = {});

/** The grid baseline names makeGridBackend() accepts. */
std::vector<std::string> gridBackendNames();

} // namespace mussti

#endif // MUSSTI_BASELINES_BACKEND_FACTORY_H
