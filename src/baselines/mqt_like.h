/**
 * @file
 * Baseline: processing-zone compiler in the style of the Munich Quantum
 * Toolkit ion shuttler (Schoenberger et al., IEEE TCAD 2024) —
 * reference [70] of the paper.
 *
 * That flow targets architectures with one dedicated processing zone:
 * every two-qubit gate requires both ions to be shuttled into the
 * processing trap, and displaced ions are spilled back toward storage.
 * The resulting schedules are correct but shuttle-heavy, which is the
 * behaviour Table 2 of the paper shows for [70].
 */
#ifndef MUSSTI_BASELINES_MQT_LIKE_H
#define MUSSTI_BASELINES_MQT_LIKE_H

#include "baselines/grid_compiler_base.h"

namespace mussti {

/** Dedicated-processing-zone shuttling (reference [70]). */
class MqtLikeCompiler : public GridCompilerBase
{
  public:
    MqtLikeCompiler(const GridConfig &grid, const PhysicalParams &params)
        : GridCompilerBase("mqt", grid, params),
          processingTrap_(device().centerTrap())
    {}

    /** The trap all gates execute in. */
    int processingTrap() const { return processingTrap_; }

  protected:
    void scheduleStep(Pass &pass) const override;

    /** Gates execute only inside the processing trap. */
    bool
    gateAllowedIn(int trap) const override
    {
        return trap == processingTrap_;
    }

  private:
    int processingTrap_;
};

} // namespace mussti

#endif // MUSSTI_BASELINES_MQT_LIKE_H
