/**
 * @file
 * Shared machinery of the baseline compilers that target monolithic
 * QCCD grids: initial row-major placement, hop-counted relocations with
 * LRU spill handling, executable-gate draining, and evaluation, so each
 * baseline only contributes its shuttle *strategy*.
 */
#ifndef MUSSTI_BASELINES_GRID_COMPILER_BASE_H
#define MUSSTI_BASELINES_GRID_COMPILER_BASE_H

#include <vector>

#include "arch/grid_device.h"
#include "arch/placement.h"
#include "core/compiler.h"
#include "core/lru.h"
#include "dag/dag.h"
#include "sim/params.h"
#include "sim/schedule.h"
#include "sim/shuttle_emitter.h"

namespace mussti {

/**
 * Base class for grid-QCCD baseline compilers. Subclasses implement
 * scheduleStep(), which must make progress on the FCFS frontier gate.
 */
class GridCompilerBase
{
  public:
    GridCompilerBase(const GridConfig &grid, const PhysicalParams &params)
        : device_(grid), params_(params)
    {}
    virtual ~GridCompilerBase() = default;

    /** Compile a circuit and evaluate it on the grid device. */
    CompileResult compile(const Circuit &circuit);

    const GridDevice &device() const { return device_; }

  protected:
    GridDevice device_;
    PhysicalParams params_;

    /** Per-pass working state visible to strategies. */
    struct Pass
    {
        Placement placement;
        Schedule schedule;
        LruTracker lru;
        ShuttleEmitter emitter;
        DependencyDag dag;
        std::vector<int> remainingDegree; ///< Future 2q gates per qubit.

        Pass(const GridDevice &device, const PhysicalParams &params,
             const Circuit &lowered, const Placement &initial);
    };

    /**
     * One strategy step: the pass's frontier is non-empty and contains
     * no executable gate; bring the FCFS gate's qubits together.
     */
    virtual void scheduleStep(Pass &pass) = 0;

    /** True if both operands share a trap the strategy may gate in. */
    bool executable(const Pass &pass, const Gate &gate) const;

    /**
     * Strategy hook: whether a gate may execute in the given trap.
     * Default allows any trap (standard QCCD); the MQT-like baseline
     * restricts execution to its processing trap.
     */
    virtual bool gateAllowedIn(int trap) const { (void)trap; return true; }

    /**
     * Relocate a qubit to a target trap: spills LRU victims from the
     * target to the nearest trap with space, then emits one relocation
     * triple booking hop-count shuttles.
     */
    void relocate(Pass &pass, int qubit, int target_trap,
                  const std::vector<int> &protect);

    /** Row-major initial fill. */
    Placement initialPlacement(int num_qubits) const;

    /** Execute every currently executable frontier gate. */
    void drainExecutable(Pass &pass);

    /** Execute one ready node (gate + leading 1q costing). */
    void executeNode(Pass &pass, DagNodeId id);

    /** Nearest trap with a free slot, by hop distance from `from`. */
    int nearestTrapWithSpace(const Pass &pass, int from,
                             int exclude) const;
};

} // namespace mussti

#endif // MUSSTI_BASELINES_GRID_COMPILER_BASE_H
