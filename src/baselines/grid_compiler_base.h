/**
 * @file
 * Shared machinery of the baseline compilers that target monolithic
 * QCCD grids: initial row-major placement, hop-counted relocations with
 * LRU spill handling, executable-gate draining, and evaluation, so each
 * baseline only contributes its shuttle *strategy*.
 *
 * Every grid baseline is an ICompilerBackend whose compile() runs the
 * shared pass pipeline:
 *
 *   lower-swaps -> grid-target -> grid-placement -> grid-schedule
 *               -> evaluate
 *
 * where grid-schedule drives the subclass's scheduleStep() strategy.
 */
#ifndef MUSSTI_BASELINES_GRID_COMPILER_BASE_H
#define MUSSTI_BASELINES_GRID_COMPILER_BASE_H

#include <memory>
#include <string>
#include <vector>

#include "arch/grid_device.h"
#include "arch/placement.h"
#include "core/backend.h"
#include "core/compiler.h"
#include "core/lru.h"
#include "dag/dag.h"
#include "sim/params.h"
#include "sim/schedule.h"
#include "sim/shuttle_emitter.h"

namespace mussti {

/**
 * Base class for grid-QCCD baseline compilers. Subclasses implement
 * scheduleStep(), which must make progress on the FCFS frontier gate.
 */
class GridCompilerBase : public ICompilerBackend
{
  public:
    GridCompilerBase(std::string name, const GridConfig &grid,
                     const PhysicalParams &params);

    /** Compile a circuit and evaluate it on the grid device. */
    CompileResult compile(Circuit circuit) const override;

    /**
     * The grid strategies have no delta path (the candidates are
     * ignored, nothing is captured), but deadlines/cancellation are
     * honoured at every pass boundary of the pipeline.
     */
    CompileResult
    compileControlled(Circuit circuit,
                      const std::optional<std::uint64_t> &seed,
                      const std::shared_ptr<SchedulerWorkspace> &workspace,
                      DeltaCompileIO &delta,
                      const JobControl *control) const override;

    const std::string &name() const override { return name_; }

    std::uint64_t configDigest() const override;

    /**
     * The pass sequence compile() runs (exposed for tests/tools). The
     * strategy passes reference this backend, so the pipeline must not
     * outlive the compiler that built it.
     */
    PassPipeline makePipeline() const;

    const GridDevice &device() const { return *device_; }

  protected:
    std::string name_;
    /** Registry-created, immutable; shared with every job's context. */
    std::shared_ptr<const GridDevice> device_;
    PhysicalParams params_;

    /** Per-run working state visible to strategies. */
    struct Pass
    {
        Placement placement;
        Schedule schedule;
        LruTracker lru;
        ShuttleEmitter emitter;
        DependencyDag dag;
        std::vector<int> remainingDegree; ///< Future 2q gates per qubit.

        Pass(const GridDevice &device, const PhysicalParams &params,
             const Circuit &lowered, const Placement &initial);
    };

    /**
     * One strategy step: the pass's frontier is non-empty and contains
     * no executable gate; bring the FCFS gate's qubits together.
     */
    virtual void scheduleStep(Pass &pass) const = 0;

    /** True if both operands share a trap the strategy may gate in. */
    bool executable(const Pass &pass, const Gate &gate) const;

    /**
     * Strategy hook: whether a gate may execute in the given trap.
     * Default allows any trap (standard QCCD); the MQT-like baseline
     * restricts execution to its processing trap.
     */
    virtual bool gateAllowedIn(int trap) const { (void)trap; return true; }

    /** Strategy hook: fold strategy-specific tunables into the digest. */
    virtual void hashConfigExtra(class Fnv1a &hash) const;

    /**
     * Relocate a qubit to a target trap: spills LRU victims from the
     * target to the nearest trap with space, then emits one relocation
     * triple booking hop-count shuttles.
     */
    void relocate(Pass &pass, int qubit, int target_trap,
                  const std::vector<int> &protect) const;

    /** Row-major initial fill. */
    Placement initialPlacement(int num_qubits) const;

    /** Execute every currently executable frontier gate. */
    void drainExecutable(Pass &pass) const;

    /** Execute one ready node (gate + leading 1q costing). */
    void executeNode(Pass &pass, DagNodeId id) const;

    /** Nearest trap with a free slot, by hop distance from `from`. */
    int nearestTrapWithSpace(const Pass &pass, int from,
                             int exclude) const;

  private:
    /** The strategy-driving pipeline stages (defined in the .cpp). */
    class PlacementPass;
    class SchedulePass;
};

} // namespace mussti

#endif // MUSSTI_BASELINES_GRID_COMPILER_BASE_H
