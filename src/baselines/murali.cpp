#include "baselines/murali.h"

#include "common/logging.h"

namespace mussti {

void
MuraliCompiler::scheduleStep(Pass &pass) const
{
    const DagNodeId chosen = pass.dag.frontier().front();
    const Gate &gate = pass.dag.node(chosen).gate;
    const int trap_a = pass.placement.zoneOf(gate.q0);
    const int trap_b = pass.placement.zoneOf(gate.q1);
    MUSSTI_ASSERT(trap_a != trap_b, "scheduleStep on executable gate");

    // Move the operand with fewer remaining gates toward the busier one.
    int mover = gate.q0;
    int dest = trap_b;
    if (pass.remainingDegree[gate.q1] <
        pass.remainingDegree[gate.q0]) {
        mover = gate.q1;
        dest = trap_a;
    }
    relocate(pass, mover, dest, {gate.q0, gate.q1});
    executeNode(pass, chosen);
}

} // namespace mussti
