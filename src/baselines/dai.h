/**
 * @file
 * Baseline: look-ahead shuttle strategy after Dai et al., "Advanced
 * Shuttle Strategies for Parallel QCCD Architectures" (IEEE TQE 2024)
 * — reference [13] of the paper.
 *
 * Strategy: for the FCFS frontier gate, candidate meeting traps are
 * costed by immediate hops plus a discounted estimate of the distance
 * to the operands' future partners within a look-ahead window, and by a
 * congestion penalty for nearly-full traps. This anticipates upcoming
 * communication and reduces shuttle counts versus the greedy baseline.
 */
#ifndef MUSSTI_BASELINES_DAI_H
#define MUSSTI_BASELINES_DAI_H

#include "baselines/grid_compiler_base.h"

namespace mussti {

/** Look-ahead weighted shuttling (reference [13]). */
class DaiCompiler : public GridCompilerBase
{
  public:
    /** `look_ahead` = DAG layers scanned for future partners. */
    DaiCompiler(const GridConfig &grid, const PhysicalParams &params,
                int look_ahead = 6)
        : GridCompilerBase("dai", grid, params), lookAhead_(look_ahead)
    {}

  protected:
    void scheduleStep(Pass &pass) const override;
    void hashConfigExtra(Fnv1a &hash) const override;

  private:
    int lookAhead_;

    /**
     * Discounted future-partner distance if `qubit` were in `trap`,
     * over a frontLayers() peel the caller hoists once per step.
     */
    double futureCost(const Pass &pass,
                      const std::vector<std::vector<DagNodeId>> &layers,
                      int qubit, int trap) const;
};

} // namespace mussti

#endif // MUSSTI_BASELINES_DAI_H
