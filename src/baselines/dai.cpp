#include "baselines/dai.h"

#include <limits>

#include "common/hash.h"
#include "common/logging.h"

namespace mussti {

double
DaiCompiler::futureCost(const Pass &pass,
                        const std::vector<std::vector<DagNodeId>> &layers,
                        int qubit, int trap) const
{
    double cost = 0.0;
    double discount = 1.0;
    for (const auto &layer : layers) {
        for (DagNodeId id : layer) {
            const Gate &g = pass.dag.node(id).gate;
            if (!g.touches(qubit))
                continue;
            const int partner_trap =
                pass.placement.zoneOf(g.partnerOf(qubit));
            cost += discount * device().hopDistance(trap, partner_trap);
        }
        discount *= 0.7;
    }
    return cost;
}

void
DaiCompiler::hashConfigExtra(Fnv1a &hash) const
{
    hash.update(lookAhead_);
}

void
DaiCompiler::scheduleStep(Pass &pass) const
{
    const DagNodeId chosen = pass.dag.frontier().front();
    const Gate &gate = pass.dag.node(chosen).gate;
    const int trap_a = pass.placement.zoneOf(gate.q0);
    const int trap_b = pass.placement.zoneOf(gate.q1);
    MUSSTI_ASSERT(trap_a != trap_b, "scheduleStep on executable gate");

    // One look-ahead peel per step, shared by every candidate plan
    // (frontLayers is O(window gates); the per-plan re-peel used to
    // dominate this strategy's compile time).
    const auto layers = pass.dag.frontLayers(lookAhead_);

    // Candidate plans: move q0 to trap_b, move q1 to trap_a, or meet in
    // an intermediate trap on the path between them.
    struct Plan { int moveA; int moveB; int target; double cost; };
    std::vector<Plan> plans;

    auto congestion = [&](int trap, int arrivals) {
        const int free = device().config().trapCapacity -
            pass.placement.sizeOf(trap);
        return arrivals > free ? 2.0 * (arrivals - free) : 0.0;
    };

    plans.push_back({1, 0, trap_b,
        device().hopDistance(trap_a, trap_b) +
        futureCost(pass, layers, gate.q0, trap_b) + congestion(trap_b, 1)});
    plans.push_back({0, 1, trap_a,
        device().hopDistance(trap_a, trap_b) +
        futureCost(pass, layers, gate.q1, trap_a) + congestion(trap_a, 1)});

    for (int mid : device().path(trap_a, trap_b)) {
        if (mid == trap_b)
            continue;
        plans.push_back({1, 1, mid,
            device().hopDistance(trap_a, mid) +
            device().hopDistance(trap_b, mid) +
            futureCost(pass, layers, gate.q0, mid) +
            futureCost(pass, layers, gate.q1, mid) + congestion(mid, 2)});
    }

    const Plan *best = &plans.front();
    for (const Plan &p : plans) {
        if (p.cost < best->cost)
            best = &p;
    }

    if (best->moveA)
        relocate(pass, gate.q0, best->target, {gate.q0, gate.q1});
    if (best->moveB)
        relocate(pass, gate.q1, best->target, {gate.q0, gate.q1});
    executeNode(pass, chosen);
}

} // namespace mussti
