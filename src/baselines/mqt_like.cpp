#include "baselines/mqt_like.h"

#include "common/logging.h"

namespace mussti {

void
MqtLikeCompiler::scheduleStep(Pass &pass) const
{
    const DagNodeId chosen = pass.dag.frontier().front();
    const Gate &gate = pass.dag.node(chosen).gate;

    // Both operands must reach the processing trap.
    for (int q : {gate.q0, gate.q1}) {
        if (pass.placement.zoneOf(q) != processingTrap_)
            relocate(pass, q, processingTrap_, {gate.q0, gate.q1});
    }
    executeNode(pass, chosen);
}

} // namespace mussti
