/**
 * @file
 * Baseline: greedy QCCD compiler after Murali et al., "Architecting
 * Noisy Intermediate-Scale Trapped Ion Quantum Computers" (ISCA 2020)
 * — reference [55] of the paper.
 *
 * Strategy: for the FCFS frontier gate whose operands sit in different
 * traps, shuttle one operand to the other's trap along a shortest
 * junction path. The mover is the operand with fewer remaining gates
 * (the one whose locality is cheaper to disturb); spills evict the LRU
 * ion of the destination to the nearest trap with space.
 */
#ifndef MUSSTI_BASELINES_MURALI_H
#define MUSSTI_BASELINES_MURALI_H

#include "baselines/grid_compiler_base.h"

namespace mussti {

/** Greedy nearest-destination shuttling (reference [55]). */
class MuraliCompiler : public GridCompilerBase
{
  public:
    MuraliCompiler(const GridConfig &grid, const PhysicalParams &params)
        : GridCompilerBase("murali", grid, params)
    {}

  protected:
    void scheduleStep(Pass &pass) const override;
};

} // namespace mussti

#endif // MUSSTI_BASELINES_MURALI_H
