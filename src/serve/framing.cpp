#include "serve/framing.h"

#include <cerrno>
#include <cstdint>

#include <sys/socket.h>
#include <sys/types.h>

namespace mussti {

namespace {

/**
 * recv exactly `len` bytes. 1 = got them, 0 = clean EOF before the
 * first byte, -1 = error or mid-buffer EOF.
 */
int
recvAll(int fd, char *buffer, std::size_t len)
{
    std::size_t got = 0;
    while (got < len) {
        const ssize_t n = ::recv(fd, buffer + got, len - got, 0);
        if (n > 0) {
            got += static_cast<std::size_t>(n);
            continue;
        }
        if (n == 0)
            return got == 0 ? 0 : -1;
        if (errno == EINTR)
            continue;
        return -1;
    }
    return 1;
}

bool
sendAll(int fd, const char *buffer, std::size_t len)
{
    std::size_t sent = 0;
    while (sent < len) {
        const ssize_t n =
            ::send(fd, buffer + sent, len - sent, MSG_NOSIGNAL);
        if (n > 0) {
            sent += static_cast<std::size_t>(n);
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        return false;
    }
    return true;
}

} // namespace

bool
writeFrame(int fd, const std::string &payload)
{
    if (payload.size() > kMaxFrameBytes)
        return false;
    const auto len = static_cast<std::uint32_t>(payload.size());
    char prefix[4] = {
        static_cast<char>((len >> 24) & 0xff),
        static_cast<char>((len >> 16) & 0xff),
        static_cast<char>((len >> 8) & 0xff),
        static_cast<char>(len & 0xff),
    };
    // Two sends, not one coalesced buffer: the frames are small relative
    // to compile latency, and the kernel coalesces anyway (no TCP_NODELAY
    // games needed at this request rate).
    return sendAll(fd, prefix, sizeof prefix) &&
           sendAll(fd, payload.data(), payload.size());
}

bool
readFrame(int fd, std::string &payload, std::size_t max_bytes)
{
    char prefix[4];
    if (recvAll(fd, prefix, sizeof prefix) != 1)
        return false;
    const std::uint32_t len =
        (static_cast<std::uint32_t>(static_cast<unsigned char>(prefix[0]))
         << 24) |
        (static_cast<std::uint32_t>(static_cast<unsigned char>(prefix[1]))
         << 16) |
        (static_cast<std::uint32_t>(static_cast<unsigned char>(prefix[2]))
         << 8) |
        static_cast<std::uint32_t>(static_cast<unsigned char>(prefix[3]));
    if (len > max_bytes)
        return false; // Garbage prefix or hostile peer; don't allocate.
    payload.resize(len);
    return len == 0 || recvAll(fd, payload.data(), len) == 1;
}

} // namespace mussti
