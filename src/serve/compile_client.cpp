#include "serve/compile_client.h"

#include <cstring>
#include <utility>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "serve/framing.h"

namespace mussti {

CompileClient::~CompileClient()
{
    close();
}

bool
CompileClient::connect(const std::string &host, int port)
{
    close();
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return false;

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        ::close(fd);
        return false; // Numeric IPv4 only; no resolver dependency.
    }
    if (::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                  sizeof addr) != 0) {
        ::close(fd);
        return false;
    }
    fd_ = fd;
    return true;
}

std::uint64_t
CompileClient::send(ServeRequest request)
{
    request.id = nextId_++;
    const std::uint64_t id = request.id;
    if (fd_ < 0 || !writeFrame(fd_, encodeRequest(request)))
        pending_[id] = connectionLost(id); // await(id) resolves it.
    return id;
}

ServeResponse
CompileClient::await(std::uint64_t id)
{
    auto it = pending_.find(id);
    if (it != pending_.end()) {
        ServeResponse response = std::move(it->second);
        pending_.erase(it);
        return response;
    }
    std::string payload;
    while (fd_ >= 0 && readFrame(fd_, payload)) {
        ServeResponse response;
        if (!decodeResponse(payload, response))
            break; // Framing is intact but the peer speaks garbage.
        if (response.id == id)
            return response;
        pending_[response.id] = std::move(response);
    }
    return connectionLost(id);
}

ServeResponse
CompileClient::stats(const std::string &client)
{
    ServeRequest request;
    request.type = ServeRequestType::Stats;
    request.client = client;
    return await(send(std::move(request)));
}

void
CompileClient::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

ServeResponse
CompileClient::connectionLost(std::uint64_t id) const
{
    ServeResponse response;
    response.id = id;
    response.ok = false;
    response.error.category = "Cancelled";
    response.error.code = "serve.connection-lost";
    response.error.message =
        "connection to the compile server was lost before the "
        "response arrived";
    return response;
}

} // namespace mussti
