/**
 * @file
 * Length-prefixed framing over a stream socket.
 *
 * Every message on the compile-server wire is one frame: a 4-byte
 * big-endian payload length followed by that many bytes of UTF-8 JSON
 * (src/serve/protocol.h defines the payloads). Framing and payload are
 * deliberately separate layers — the framing never inspects the JSON,
 * and the protocol never sees partial reads.
 *
 * Both directions are loop-until-complete over recv/send with EINTR
 * retry and MSG_NOSIGNAL (a peer hanging up mid-frame is a false
 * return, never a SIGPIPE kill). An oversized length prefix is
 * rejected before any allocation.
 */
#ifndef MUSSTI_SERVE_FRAMING_H
#define MUSSTI_SERVE_FRAMING_H

#include <cstddef>
#include <string>

namespace mussti {

/** Frames above this are a protocol violation (or garbage prefix). */
constexpr std::size_t kMaxFrameBytes = 64u << 20;

/**
 * Write one frame. False on any socket error (peer gone, fd closed);
 * never throws, never raises SIGPIPE.
 */
bool writeFrame(int fd, const std::string &payload);

/**
 * Read one frame into `payload`. False on clean EOF at a frame
 * boundary, a truncated frame, an oversized length prefix, or a socket
 * error — the caller treats all of them as end-of-session.
 */
bool readFrame(int fd, std::string &payload,
               std::size_t max_bytes = kMaxFrameBytes);

} // namespace mussti

#endif // MUSSTI_SERVE_FRAMING_H
