/**
 * @file
 * The compile daemon: a TCP server wrapping the layered compile stack.
 *
 *     transport (this file)  — framing, sessions, protocol
 *          |
 *     FairAdmission          — per-client DRR queues, in-flight budget
 *          |
 *     CompileService         — worker pool, retry, deadlines
 *          |
 *     ResultCacheTier stack  — memory LRU, then persistent disk tier
 *
 * One session per accepted connection; each session has a reader
 * thread that decodes request frames and submits them through the
 * admission layer. Responses are STREAMED: each job's response frame
 * goes out the moment its outcome resolves (a per-session write mutex
 * keeps frames whole), so responses arrive out of order and clients
 * correlate by id. Every layer below the transport is deterministic —
 * a compile's result is a pure function of (circuit, config, seed) —
 * so the fingerprints a server streams are bit-identical to a local
 * compile_cli run at any thread count and any client interleaving.
 *
 * Failures stay structured end to end: a malformed frame, an unknown
 * benchmark family, a blown deadline, or an injected fault each come
 * back as a response carrying the MusstiError taxonomy (category /
 * code / message); nothing a client sends can take the daemon down.
 *
 * Graceful drain (stop(), also the SIGTERM path of the example
 * daemon): close the listen socket, cancel still-queued jobs through
 * FairAdmission::shutdown (each streams a Cancelled response), let
 * in-flight compiles finish, then shut the sessions' read sides and
 * join. Already-dispatched work is never abandoned mid-compile.
 */
#ifndef MUSSTI_SERVE_COMPILE_SERVER_H
#define MUSSTI_SERVE_COMPILE_SERVER_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/admission.h"
#include "core/compile_service.h"
#include "serve/protocol.h"

namespace mussti {

/** Daemon sizing: socket, pool, cache tiers, fairness policy. */
struct CompileServerConfig
{
    /** TCP port to bind on 127.0.0.1; 0 picks an ephemeral port
        (read it back with port()). */
    int port = 0;

    /** Worker threads of the underlying service; <= 0 auto-sizes. */
    int numThreads = 0;

    /** In-memory result-tier capacity (CompileServiceConfig). */
    std::size_t cacheCapacity = 128;

    /** Persistent disk-tier directory; empty disables the tier. */
    std::string diskCachePath;
    std::size_t diskCacheCapacity = 512;

    /** Fairness policy of the admission layer. */
    FairAdmissionConfig admission;
};

/**
 * The daemon. Construction builds the stack; start() binds and begins
 * accepting; stop() drains gracefully. One instance per process is the
 * intended shape, but nothing is global — tests run several.
 */
class CompileServer
{
  public:
    explicit CompileServer(const CompileServerConfig &config = {});
    ~CompileServer();

    CompileServer(const CompileServer &) = delete;
    CompileServer &operator=(const CompileServer &) = delete;

    /**
     * Bind 127.0.0.1:port, listen, and spawn the accept loop. False if
     * the socket could not be bound (port taken, no permission) — the
     * object is then inert and stop() is a no-op.
     */
    bool start();

    /**
     * Graceful drain, in layer order: stop accepting, cancel queued
     * admission work (streamed as Cancelled responses), drain in-flight
     * compiles, stop the service pool, close sessions, join every
     * thread. Idempotent; the destructor calls it.
     */
    void stop();

    /**
     * Block until something ends the accept loop — stop() from another
     * thread, or an out-of-band shutdown of the listen socket (the
     * SIGTERM handler of the example daemon does exactly that, it being
     * the only async-signal-safe option). Returns without draining;
     * callers follow with stop().
     */
    void waitForShutdownRequest();

    /** The bound port (resolved after start(), also for port = 0). */
    int port() const { return port_; }

    /**
     * The listen socket, for async-signal-safe shutdown from a signal
     * handler: ::shutdown(listenFd(), SHUT_RDWR) unblocks the accept
     * loop, waitForShutdownRequest() returns, and the caller runs
     * stop(). -1 before start().
     */
    int listenFd() const { return listenFd_; }

    /** Layer introspection (stats endpoints, tests). */
    const CompileService &service() const { return service_; }
    const FairAdmission &admission() const { return admission_; }

  private:
    struct Session
    {
        int fd = -1;
        std::thread reader;
        std::mutex writeMutex;           ///< One frame at a time.
        std::size_t outstanding = 0;     ///< Jobs not yet responded.
        std::condition_variable drained; ///< outstanding -> 0.
        std::mutex stateMutex;           ///< outstanding + drained.
    };

    void acceptLoop();
    void sessionLoop(Session &session);

    /** Decode + execute one request frame, streaming the response(s). */
    void handleFrame(Session &session, const std::string &payload);

    /** Submit one compile through admission; response streams later. */
    void handleCompile(Session &session, ServeRequest request);

    /** Answer a stats request inline. */
    void handleStats(Session &session, std::uint64_t id);

    void sendResponse(Session &session, const ServeResponse &response);

    /**
     * Build the CompileRequest a protocol request describes — circuit,
     * backend, seed, absolute deadline (anchored now). Throws the
     * structured taxonomy on anything malformed; handleCompile converts
     * that into an InvalidInput-class response.
     */
    CompileRequest buildRequest(const ServeRequest &request) const;

    CompileServerConfig config_;
    CompileService service_;
    FairAdmission admission_;

    int listenFd_ = -1;
    int port_ = 0;
    std::thread acceptThread_;
    std::atomic<bool> stopping_{false};
    bool stopped_ = false; ///< stop() ran to completion (stopMutex_).
    std::mutex stopMutex_;

    std::mutex sessionsMutex_;
    std::vector<std::unique_ptr<Session>> sessions_;

    std::mutex acceptExitMutex_;
    std::condition_variable acceptExitCv_;
    bool acceptExited_ = false;
};

} // namespace mussti

#endif // MUSSTI_SERVE_COMPILE_SERVER_H
