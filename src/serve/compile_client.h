/**
 * @file
 * Client library for the compile daemon.
 *
 * Thin and synchronous by design: send() writes one request frame and
 * returns its id; await(id) reads response frames until that id's
 * arrives, buffering any OTHER responses it passes (the server streams
 * results in completion order, not submission order). A client can
 * therefore pipeline a whole batch — send everything, then await each
 * id — and still collect out-of-order completions without threads.
 *
 * Not thread-safe: one CompileClient per connection per thread.
 * Concurrent load (the fairness tests, the CI smoke) runs one client
 * object per thread, each with its own connection and admission
 * identity.
 *
 * A dropped connection never throws: awaits resolve with a synthetic
 * Cancelled-category `serve.connection-lost` error response, mirroring
 * how the server itself degrades queued work at shutdown.
 */
#ifndef MUSSTI_SERVE_COMPILE_CLIENT_H
#define MUSSTI_SERVE_COMPILE_CLIENT_H

#include <cstdint>
#include <string>
#include <unordered_map>

#include "serve/protocol.h"

namespace mussti {

/** One connection to a CompileServer. */
class CompileClient
{
  public:
    CompileClient() = default;
    ~CompileClient();

    CompileClient(const CompileClient &) = delete;
    CompileClient &operator=(const CompileClient &) = delete;

    /** Connect to a daemon on `host`:`port`; false on failure. */
    bool connect(const std::string &host, int port);

    bool connected() const { return fd_ >= 0; }

    /**
     * Send one request, assigning it the next id (any id in the passed
     * request is overwritten); returns that id for await(). False
     * return values surface as a connection-lost response from await.
     */
    std::uint64_t send(ServeRequest request);

    /** The response to `id`, however many other frames arrive first. */
    ServeResponse await(std::uint64_t id);

    /** Convenience: stats round-trip. */
    ServeResponse stats(const std::string &client = "");

    void close();

  private:
    ServeResponse connectionLost(std::uint64_t id) const;

    int fd_ = -1;
    std::uint64_t nextId_ = 1;
    std::unordered_map<std::uint64_t, ServeResponse> pending_;
};

} // namespace mussti

#endif // MUSSTI_SERVE_COMPILE_CLIENT_H
