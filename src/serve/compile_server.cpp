#include "serve/compile_server.h"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "arch/device_registry.h"
#include "baselines/backend_factory.h"
#include "circuit/qasm.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "core/pipeline.h"
#include "serve/framing.h"
#include "workloads/workloads.h"

namespace mussti {

namespace {

CompileServiceConfig
serviceConfigOf(const CompileServerConfig &config)
{
    CompileServiceConfig service;
    service.numThreads = config.numThreads;
    service.cacheCapacity = config.cacheCapacity;
    service.diskCachePath = config.diskCachePath;
    service.diskCacheCapacity = config.diskCacheCapacity;
    return service;
}

ServeResponse
errorResponse(std::uint64_t id, const MusstiError &error, int attempts = 1)
{
    ServeResponse response;
    response.id = id;
    response.ok = false;
    response.attempts = attempts;
    response.error.category = error.categoryName();
    response.error.code = error.code();
    response.error.message = error.message();
    return response;
}

} // namespace

CompileServer::CompileServer(const CompileServerConfig &config)
    : config_(config), service_(serviceConfigOf(config)),
      admission_(service_, config.admission)
{}

CompileServer::~CompileServer()
{
    stop();
}

bool
CompileServer::start()
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return false;
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

    // Loopback only: the daemon has no auth story; remote use belongs
    // behind a tunnel.
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(config_.port));
    if (::bind(fd, reinterpret_cast<const sockaddr *>(&addr),
               sizeof addr) != 0 ||
        ::listen(fd, 16) != 0) {
        ::close(fd);
        return false;
    }

    sockaddr_in bound{};
    socklen_t bound_len = sizeof bound;
    if (::getsockname(fd, reinterpret_cast<sockaddr *>(&bound),
                      &bound_len) == 0)
        port_ = static_cast<int>(ntohs(bound.sin_port));

    listenFd_ = fd;
    acceptThread_ = std::thread([this] { acceptLoop(); });
    return true;
}

void
CompileServer::stop()
{
    std::lock_guard<std::mutex> stop_lock(stopMutex_);
    if (stopped_)
        return;
    stopped_ = true;
    stopping_.store(true);

    if (listenFd_ >= 0)
        ::shutdown(listenFd_, SHUT_RDWR);
    if (acceptThread_.joinable())
        acceptThread_.join();
    if (listenFd_ >= 0) {
        ::close(listenFd_);
        listenFd_ = -1;
    }

    // Drain inner layers before cutting sessions: queued jobs stream
    // Cancelled responses, in-flight jobs finish and stream results.
    admission_.shutdown();
    service_.shutdown();

    std::lock_guard<std::mutex> lock(sessionsMutex_);
    for (auto &session : sessions_) {
        std::lock_guard<std::mutex> state(session->stateMutex);
        if (session->fd >= 0)
            ::shutdown(session->fd, SHUT_RD);
    }
    for (auto &session : sessions_) {
        if (session->reader.joinable())
            session->reader.join();
        std::lock_guard<std::mutex> state(session->stateMutex);
        if (session->fd >= 0) {
            ::close(session->fd);
            session->fd = -1;
        }
    }
}

void
CompileServer::waitForShutdownRequest()
{
    std::unique_lock<std::mutex> lock(acceptExitMutex_);
    acceptExitCv_.wait(lock, [this] { return acceptExited_; });
}

void
CompileServer::acceptLoop()
{
    while (!stopping_.load()) {
        const int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            break; // Listen socket shut down (stop() or SIGTERM path).
        }
        std::lock_guard<std::mutex> lock(sessionsMutex_);
        if (stopping_.load()) {
            ::close(fd); // Lost the race against stop().
            break;
        }
        auto session = std::make_unique<Session>();
        session->fd = fd;
        Session &ref = *session;
        sessions_.push_back(std::move(session));
        ref.reader = std::thread([this, &ref] { sessionLoop(ref); });
    }
    {
        std::lock_guard<std::mutex> lock(acceptExitMutex_);
        acceptExited_ = true;
    }
    acceptExitCv_.notify_all();
}

void
CompileServer::sessionLoop(Session &session)
{
    std::string payload;
    while (readFrame(session.fd, payload))
        handleFrame(session, payload);

    // EOF or cut read side: every accepted job still streams its
    // response, so the write side stays open until the last one lands.
    std::unique_lock<std::mutex> state(session.stateMutex);
    session.drained.wait(state,
                         [&session] { return session.outstanding == 0; });
    // The fd itself is closed by stop() (which joins this thread first);
    // closing here would race the number back into accept's pool.
}

void
CompileServer::handleFrame(Session &session, const std::string &payload)
{
    ServeRequest request;
    if (!decodeRequest(payload, request)) {
        sendResponse(session,
                     errorResponse(request.id,
                                   MusstiError(ErrorCategory::InvalidInput,
                                               "serve.bad-frame",
                                               "unparseable request frame")));
        return;
    }
    if (request.type == ServeRequestType::Stats)
        handleStats(session, request.id);
    else
        handleCompile(session, std::move(request));
}

void
CompileServer::handleCompile(Session &session, ServeRequest request)
{
    std::optional<CompileRequest> job;
    try {
        // Bad requests are the client's problem, reported on the wire;
        // keep their fatal() chatter out of the daemon's stderr.
        ScopedFatalSilence quiet(true);
        job = buildRequest(request);
    } catch (...) {
        sendResponse(session,
                     errorResponse(request.id, describeCurrentException()));
        return;
    }

    {
        std::lock_guard<std::mutex> state(session.stateMutex);
        ++session.outstanding;
    }
    const std::uint64_t id = request.id;
    admission_.submit(
        request.client, std::move(*job),
        [this, &session, id](CompileOutcome outcome) {
            ServeResponse response;
            if (outcome.ok()) {
                const CompileResult &result = *outcome.result;
                response.id = id;
                response.ok = true;
                response.attempts = outcome.attempts;
                response.fingerprint = resultFingerprint(result);
                response.executionTimeUs = result.metrics.executionTimeUs;
                response.log10Fidelity = result.metrics.log10Fidelity();
                response.shuttles = result.metrics.shuttleCount;
                response.swapInsertions = result.swapInsertions;
            } else {
                response = errorResponse(id, *outcome.error,
                                         outcome.attempts);
            }
            sendResponse(session, response);
            {
                std::lock_guard<std::mutex> state(session.stateMutex);
                --session.outstanding;
            }
            session.drained.notify_all();
        });
}

void
CompileServer::handleStats(Session &session, std::uint64_t id)
{
    const CompileService::CacheStats cache = service_.cacheStats();
    const AdmissionStats admission = admission_.stats();
    ServeResponse response;
    response.id = id;
    response.ok = true;
    auto put = [&response](const char *key, auto value) {
        response.stats.emplace_back(key, static_cast<long long>(value));
    };
    put("jobs_executed", service_.jobsExecuted());
    put("cache_hits", service_.cacheHits());
    put("cache_mem_hits", cache.memoryTier.hits);
    put("cache_mem_misses", cache.memoryTier.misses);
    put("cache_mem_evictions", cache.memoryTier.evictions);
    put("cache_disk_hits", cache.diskTier.hits);
    put("cache_disk_misses", cache.diskTier.misses);
    put("cache_disk_evictions", cache.diskTier.evictions);
    put("cache_disk_corrupt", cache.diskTier.corrupt);
    put("jobs_failed", cache.jobsFailed);
    put("jobs_timed_out", cache.jobsTimedOut);
    put("jobs_cancelled", cache.jobsCancelled);
    put("jobs_retried", cache.jobsRetried);
    put("admission_submitted", admission.submitted);
    put("admission_dispatched", admission.dispatched);
    put("admission_completed", admission.completed);
    put("admission_cancelled_queued", admission.cancelledQueued);
    put("admission_queued", admission.queuedJobs);
    put("admission_in_flight", admission.inFlightJobs);
    put("admission_active_clients", admission.activeClients);
    sendResponse(session, response);
}

void
CompileServer::sendResponse(Session &session, const ServeResponse &response)
{
    const std::string payload = encodeResponse(response);
    std::lock_guard<std::mutex> lock(session.writeMutex);
    // A failed write means the peer is gone; its jobs still complete
    // (cache-warm for the next asker) — nothing to do here.
    writeFrame(session.fd, payload);
}

CompileRequest
CompileServer::buildRequest(const ServeRequest &request) const
{
    Circuit circuit(1);
    if (!request.qasm.empty())
        circuit = fromQasm(request.qasm,
                           request.name.empty() ? "qasm" : request.name);
    else if (!request.family.empty())
        circuit = makeBenchmark(request.family,
                                request.qubits > 0 ? request.qubits : 32);
    else
        fatalCoded("serve.no-circuit",
                   "compile request names neither a benchmark family "
                   "nor inline QASM");

    // Backend/device resolution mirrors compile_cli exactly — the
    // determinism contract depends on a served compile being configured
    // bit-for-bit like a local one.
    MusstiConfig config;
    DeviceSpec spec = DeviceRegistry::specOf(config.device);
    if (!request.device.empty())
        spec = DeviceRegistry::parse(request.device);

    const std::string backend_name =
        toLower(request.backend.empty() ? "mussti" : request.backend);
    std::shared_ptr<const ICompilerBackend> backend;
    if (backend_name == "mussti") {
        if (spec.family != DeviceFamily::Eml)
            fatalCoded("serve.device-mismatch",
                       "backend mussti needs an eml:... device spec, "
                       "got: " + spec.canonical());
        config.device = spec.eml;
        backend = makeMusstiBackend(config);
    } else {
        if (spec.family != DeviceFamily::Grid)
            fatalCoded("serve.device-mismatch",
                       "backend " + backend_name + " needs a grid:... "
                       "device spec, got: " + spec.canonical());
        backend = makeGridBackend(backend_name, spec.grid);
    }

    CompileRequest job{std::move(backend), std::move(circuit), {}, {}, {}};
    if (request.hasSeed)
        job.seed = request.seed;
    if (request.deadlineMs > 0)
        job.deadline = std::chrono::steady_clock::now() +
                       std::chrono::milliseconds(request.deadlineMs);
    return job;
}

} // namespace mussti
