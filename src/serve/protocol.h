/**
 * @file
 * Wire protocol of the compile server: the JSON payloads carried inside
 * serve/framing.h frames, and their encode/decode functions.
 *
 * One request frame -> exactly one response frame, matched by the
 * client-chosen `id` — responses may arrive OUT OF ORDER (the server
 * streams each result the moment its job resolves), so the id is the
 * only correlation. Two request types:
 *
 *   compile  — one circuit (benchmark family + qubits, or inline QASM),
 *              a device spec, a backend name, optional seed and
 *              relative deadline. The response carries the outcome:
 *              headline metrics plus the schedule FINGERPRINT
 *              (core/pipeline.h resultFingerprint) on success, or the
 *              structured MusstiError taxonomy on failure. The
 *              fingerprint is the determinism contract: a client can
 *              assert server-compiled == locally-compiled bit-for-bit
 *              without shipping the schedule across the wire.
 *   stats    — point-in-time service/cache/admission counters.
 *
 * Numeric hygiene: u64 values (seed, fingerprint) are wire-encoded as
 * strings (decimal / "0x" hex) because JSON numbers are doubles and lose
 * bits past 2^53. Decoders treat any malformed payload as a recoverable
 * error (decode functions return false), never a crash — a hostile or
 * buggy peer cannot take the server down.
 */
#ifndef MUSSTI_SERVE_PROTOCOL_H
#define MUSSTI_SERVE_PROTOCOL_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace mussti {

/** What the client asks for. */
enum class ServeRequestType { Compile, Stats };

/** One request frame, client -> server. */
struct ServeRequest
{
    ServeRequestType type = ServeRequestType::Compile;

    /** Client-chosen correlation id, echoed verbatim in the response. */
    std::uint64_t id = 0;

    /**
     * Admission identity: requests sharing a client string share one
     * fair-admission queue (and its in-flight budget). Empty is legal —
     * such requests pool under the anonymous client.
     */
    std::string client;

    // ---- circuit (compile requests; family XOR qasm) -----------------
    std::string family; ///< Benchmark family (workloads.h), with `qubits`.
    int qubits = 0;
    std::string qasm;   ///< Inline OpenQASM text; wins over family.
    std::string name;   ///< Circuit name for QASM submissions.

    // ---- compilation target ------------------------------------------
    std::string device;  ///< DeviceRegistry spec; empty = paper device.
    std::string backend = "mussti"; ///< Backend name (backend_factory.h).

    bool hasSeed = false;
    std::uint64_t seed = 0;

    /** Relative deadline in ms, anchored when the server decodes the
        frame; <= 0 means none. */
    long long deadlineMs = 0;
};

/** Structured failure payload (mirrors common/error.h MusstiError). */
struct ServeError
{
    std::string category; ///< errorCategoryName() string.
    std::string code;     ///< Stable machine-readable code.
    std::string message;
};

/** One response frame, server -> client. */
struct ServeResponse
{
    std::uint64_t id = 0; ///< Echo of the request id.
    bool ok = false;

    // ---- success arm -------------------------------------------------
    int attempts = 1;
    std::uint64_t fingerprint = 0; ///< resultFingerprint(result).
    double executionTimeUs = 0.0;
    double log10Fidelity = 0.0;
    int shuttles = 0;
    int swapInsertions = 0;

    // ---- failure arm -------------------------------------------------
    ServeError error;

    /** Stats responses: counter name -> value, in server order. */
    std::vector<std::pair<std::string, long long>> stats;
};

std::string encodeRequest(const ServeRequest &request);
std::string encodeResponse(const ServeResponse &response);

/** False (and untouched diagnostics aside) on any malformed payload. */
bool decodeRequest(const std::string &text, ServeRequest &request);
bool decodeResponse(const std::string &text, ServeResponse &response);

} // namespace mussti

#endif // MUSSTI_SERVE_PROTOCOL_H
