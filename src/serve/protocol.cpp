#include "serve/protocol.h"

#include <limits>
#include <sstream>

#include "common/json.h"
#include "common/logging.h"

namespace mussti {

namespace {

/** Strict full-string u64 parse (decimal or 0x-hex); fatal on garbage. */
std::uint64_t
parseU64(const std::string &text)
{
    MUSSTI_REQUIRE(!text.empty(), "empty u64 field on the serve wire");
    std::size_t used = 0;
    std::uint64_t value = 0;
    try {
        value = std::stoull(text, &used, 0);
    } catch (const std::exception &) {
        fatal("unparseable u64 on the serve wire: `" + text + "`");
    }
    MUSSTI_REQUIRE(used == text.size(),
                   "trailing garbage in u64 field: `" << text << "`");
    return value;
}

std::string
hexU64(std::uint64_t value)
{
    std::ostringstream out;
    out << "0x" << std::hex << value;
    return out.str();
}

void
field(std::ostringstream &out, bool &first, const char *key)
{
    out << (first ? "" : ",") << '"' << key << "\":";
    first = false;
}

long long
parseInteger(JsonReader &p)
{
    return static_cast<long long>(p.parseNumber());
}

} // namespace

std::string
encodeRequest(const ServeRequest &request)
{
    std::ostringstream out;
    bool first = true;
    out << '{';
    field(out, first, "type");
    out << (request.type == ServeRequestType::Stats ? "\"stats\""
                                                    : "\"compile\"");
    field(out, first, "id");
    out << request.id;
    if (!request.client.empty()) {
        field(out, first, "client");
        out << '"' << jsonEscape(request.client) << '"';
    }
    if (request.type == ServeRequestType::Compile) {
        if (!request.qasm.empty()) {
            field(out, first, "qasm");
            out << '"' << jsonEscape(request.qasm) << '"';
            if (!request.name.empty()) {
                field(out, first, "name");
                out << '"' << jsonEscape(request.name) << '"';
            }
        } else {
            field(out, first, "family");
            out << '"' << jsonEscape(request.family) << '"';
            field(out, first, "qubits");
            out << request.qubits;
        }
        if (!request.device.empty()) {
            field(out, first, "device");
            out << '"' << jsonEscape(request.device) << '"';
        }
        field(out, first, "backend");
        out << '"' << jsonEscape(request.backend) << '"';
        if (request.hasSeed) {
            // String, not number: a u64 seed does not survive a JSON
            // double round-trip past 2^53.
            field(out, first, "seed");
            out << '"' << request.seed << '"';
        }
        if (request.deadlineMs > 0) {
            field(out, first, "deadline_ms");
            out << request.deadlineMs;
        }
    }
    out << '}';
    return out.str();
}

bool
decodeRequest(const std::string &text, ServeRequest &request)
{
    // A malformed frame is the PEER's bug: degrade to `false` (the
    // session answers with an InvalidInput response or drops), never
    // let the reader's fatal() escape into the session thread.
    ScopedFatalSilence quiet;
    try {
        ServeRequest decoded;
        JsonReader p(text);
        p.expect('{');
        if (!p.consumeIf('}')) {
            do {
                const std::string key = p.parseString();
                p.expect(':');
                if (key == "type") {
                    const std::string type = p.parseString();
                    if (type == "compile")
                        decoded.type = ServeRequestType::Compile;
                    else if (type == "stats")
                        decoded.type = ServeRequestType::Stats;
                    else
                        return false;
                } else if (key == "id") {
                    decoded.id =
                        static_cast<std::uint64_t>(p.parseNumber());
                } else if (key == "client") {
                    decoded.client = p.parseString();
                } else if (key == "family") {
                    decoded.family = p.parseString();
                } else if (key == "qubits") {
                    decoded.qubits = static_cast<int>(parseInteger(p));
                } else if (key == "qasm") {
                    decoded.qasm = p.parseString();
                } else if (key == "name") {
                    decoded.name = p.parseString();
                } else if (key == "device") {
                    decoded.device = p.parseString();
                } else if (key == "backend") {
                    decoded.backend = p.parseString();
                } else if (key == "seed") {
                    decoded.seed = parseU64(p.parseString());
                    decoded.hasSeed = true;
                } else if (key == "deadline_ms") {
                    decoded.deadlineMs = parseInteger(p);
                } else {
                    p.skipValue(); // Forward compatibility.
                }
            } while (p.consumeIf(','));
            p.expect('}');
        }
        if (!p.atEnd())
            return false;
        request = std::move(decoded);
        return true;
    } catch (...) {
        return false;
    }
}

std::string
encodeResponse(const ServeResponse &response)
{
    std::ostringstream out;
    // Round-trip precision: the fidelity/time metrics must survive the
    // wire bit-for-bit or the determinism contract quietly erodes.
    out.precision(std::numeric_limits<double>::max_digits10);
    bool first = true;
    out << '{';
    field(out, first, "id");
    out << response.id;
    field(out, first, "ok");
    out << (response.ok ? "true" : "false");
    if (response.ok) {
        field(out, first, "attempts");
        out << response.attempts;
        field(out, first, "fingerprint");
        out << '"' << hexU64(response.fingerprint) << '"';
        field(out, first, "exec_time_us");
        out << response.executionTimeUs;
        field(out, first, "log10_fidelity");
        out << response.log10Fidelity;
        field(out, first, "shuttles");
        out << response.shuttles;
        field(out, first, "swap_insertions");
        out << response.swapInsertions;
    } else {
        field(out, first, "error");
        out << "{\"category\":\"" << jsonEscape(response.error.category)
            << "\",\"code\":\"" << jsonEscape(response.error.code)
            << "\",\"message\":\"" << jsonEscape(response.error.message)
            << "\"}";
        field(out, first, "attempts");
        out << response.attempts;
    }
    if (!response.stats.empty()) {
        field(out, first, "stats");
        out << '{';
        bool stats_first = true;
        for (const auto &[key, value] : response.stats) {
            field(out, stats_first, key.c_str());
            out << value;
        }
        out << '}';
    }
    out << '}';
    return out.str();
}

bool
decodeResponse(const std::string &text, ServeResponse &response)
{
    ScopedFatalSilence quiet;
    try {
        ServeResponse decoded;
        JsonReader p(text);
        p.expect('{');
        if (!p.consumeIf('}')) {
            do {
                const std::string key = p.parseString();
                p.expect(':');
                if (key == "id") {
                    decoded.id =
                        static_cast<std::uint64_t>(p.parseNumber());
                } else if (key == "ok") {
                    decoded.ok = p.parseBool();
                } else if (key == "attempts") {
                    decoded.attempts = static_cast<int>(parseInteger(p));
                } else if (key == "fingerprint") {
                    decoded.fingerprint = parseU64(p.parseString());
                } else if (key == "exec_time_us") {
                    decoded.executionTimeUs = p.parseNumber();
                } else if (key == "log10_fidelity") {
                    decoded.log10Fidelity = p.parseNumber();
                } else if (key == "shuttles") {
                    decoded.shuttles = static_cast<int>(parseInteger(p));
                } else if (key == "swap_insertions") {
                    decoded.swapInsertions =
                        static_cast<int>(parseInteger(p));
                } else if (key == "error") {
                    p.expect('{');
                    if (!p.consumeIf('}')) {
                        do {
                            const std::string err_key = p.parseString();
                            p.expect(':');
                            if (err_key == "category")
                                decoded.error.category = p.parseString();
                            else if (err_key == "code")
                                decoded.error.code = p.parseString();
                            else if (err_key == "message")
                                decoded.error.message = p.parseString();
                            else
                                p.skipValue();
                        } while (p.consumeIf(','));
                        p.expect('}');
                    }
                } else if (key == "stats") {
                    p.expect('{');
                    if (!p.consumeIf('}')) {
                        do {
                            std::string stat = p.parseString();
                            p.expect(':');
                            decoded.stats.emplace_back(std::move(stat),
                                                       parseInteger(p));
                        } while (p.consumeIf(','));
                        p.expect('}');
                    }
                } else {
                    p.skipValue();
                }
            } while (p.consumeIf(','));
            p.expect('}');
        }
        if (!p.atEnd())
            return false;
        response = std::move(decoded);
        return true;
    } catch (...) {
        return false;
    }
}

} // namespace mussti
