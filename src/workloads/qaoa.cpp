#include "workloads/workloads.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"

namespace mussti {

namespace {

/**
 * Deterministic random 3-regular graph by repeated perfect-matching
 * composition: union of three edge-disjoint random matchings. Falls back
 * to a circulant graph on odd n (where 3-regularity is impossible for
 * odd n, matching QAOA benchmark practice of near-regular graphs).
 */
std::vector<std::pair<int, int>>
threeRegularEdges(int n, Rng &rng)
{
    std::vector<std::pair<int, int>> edges;
    if (n % 2 != 0) {
        // Circulant fallback: ring + chords; degree ~3.
        for (int i = 0; i < n; ++i)
            edges.emplace_back(i, (i + 1) % n);
        for (int i = 0; i < n / 2; ++i)
            edges.emplace_back(i, (i + n / 2) % n);
        return edges;
    }
    auto edgeKey = [n](int a, int b) {
        return static_cast<long long>(std::min(a, b)) * n + std::max(a, b);
    };
    std::vector<long long> used;
    for (int matching = 0; matching < 3; ++matching) {
        std::vector<int> order(n);
        for (int i = 0; i < n; ++i)
            order[i] = i;
        // Retry shuffles until the matching is edge-disjoint from prior
        // ones; for random orders this terminates almost immediately.
        for (int attempt = 0; attempt < 64; ++attempt) {
            rng.shuffle(order);
            bool ok = true;
            for (int i = 0; i < n && ok; i += 2) {
                if (std::find(used.begin(), used.end(),
                              edgeKey(order[i], order[i + 1])) != used.end())
                    ok = false;
            }
            if (!ok)
                continue;
            for (int i = 0; i < n; i += 2) {
                edges.emplace_back(order[i], order[i + 1]);
                used.push_back(edgeKey(order[i], order[i + 1]));
            }
            break;
        }
    }
    return edges;
}

} // namespace

Circuit
makeQaoa(int num_qubits, int rounds, std::uint64_t seed)
{
    MUSSTI_REQUIRE(num_qubits >= 4, "QAOA needs at least 4 qubits");
    MUSSTI_REQUIRE(rounds >= 1, "QAOA needs at least one round");
    Circuit qc(num_qubits, "QAOA_n" + std::to_string(num_qubits));
    Rng rng(seed);
    const auto edges = threeRegularEdges(num_qubits, rng);

    for (int q = 0; q < num_qubits; ++q)
        qc.h(q);
    for (int round = 0; round < rounds; ++round) {
        const double gamma = 0.35 + 0.1 * round;
        const double beta = 0.25 + 0.05 * round;
        // Cost layer: ZZ interaction per edge = CX, RZ, CX.
        for (const auto &[u, v] : edges) {
            qc.cx(u, v);
            qc.rz(v, 2.0 * gamma);
            qc.cx(u, v);
        }
        // Mixer layer.
        for (int q = 0; q < num_qubits; ++q)
            qc.rx(q, 2.0 * beta);
    }
    for (int q = 0; q < num_qubits; ++q)
        qc.measure(q);
    return qc;
}

} // namespace mussti
