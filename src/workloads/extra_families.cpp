#include "workloads/workloads.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/rng.h"

namespace mussti {

Circuit
makeIsing(int num_qubits, int trotter_steps, std::uint64_t seed)
{
    MUSSTI_REQUIRE(num_qubits >= 2, "ising needs >= 2 qubits");
    MUSSTI_REQUIRE(trotter_steps >= 1, "ising needs >= 1 step");
    Circuit qc(num_qubits, "Ising_n" + std::to_string(num_qubits));
    Rng rng(seed);

    for (int q = 0; q < num_qubits; ++q)
        qc.h(q);
    for (int step = 0; step < trotter_steps; ++step) {
        // ZZ couplings on the 1D chain (even bonds then odd bonds).
        for (int parity = 0; parity < 2; ++parity) {
            for (int q = parity; q + 1 < num_qubits; q += 2) {
                qc.cx(q, q + 1);
                qc.rz(q + 1, 0.1 + 0.05 * step);
                qc.cx(q, q + 1);
            }
        }
        // Transverse field.
        for (int q = 0; q < num_qubits; ++q)
            qc.rx(q, 0.2 + 0.01 * static_cast<double>(rng.intIn(0, 9)));
    }
    for (int q = 0; q < num_qubits; ++q)
        qc.measure(q);
    return qc;
}

Circuit
makeQuantumVolume(int num_qubits, int depth, std::uint64_t seed)
{
    MUSSTI_REQUIRE(num_qubits >= 2, "QV needs >= 2 qubits");
    if (depth <= 0)
        depth = num_qubits;
    Circuit qc(num_qubits, "QV_n" + std::to_string(num_qubits));
    Rng rng(seed);

    std::vector<int> order(num_qubits);
    for (int q = 0; q < num_qubits; ++q)
        order[q] = q;

    for (int layer = 0; layer < depth; ++layer) {
        rng.shuffle(order);
        for (int i = 0; i + 1 < num_qubits; i += 2) {
            const int a = order[i];
            const int b = order[i + 1];
            // Haar-random SU(4) block decomposes into 3 CX + 1q gates;
            // we emit the interaction skeleton.
            qc.rz(a, rng.real() * 3.14159);
            qc.rz(b, rng.real() * 3.14159);
            qc.cx(a, b);
            qc.add(Gate(GateKind::Ry, a, rng.real()));
            qc.cx(b, a);
            qc.add(Gate(GateKind::Ry, b, rng.real()));
            qc.cx(a, b);
        }
    }
    for (int q = 0; q < num_qubits; ++q)
        qc.measure(q);
    return qc;
}

Circuit
makeWState(int num_qubits)
{
    MUSSTI_REQUIRE(num_qubits >= 2, "W state needs >= 2 qubits");
    Circuit qc(num_qubits, "WState_n" + std::to_string(num_qubits));
    // Cascade of controlled rotations followed by a CX ladder; the
    // standard linear-depth W-state preparation network.
    qc.x(0);
    for (int q = 0; q + 1 < num_qubits; ++q) {
        const double theta =
            2.0 * std::acos(std::sqrt(1.0 / (num_qubits - q)));
        qc.add(Gate(GateKind::Ry, q + 1, theta));
        qc.cz(q, q + 1);
        qc.add(Gate(GateKind::Ry, q + 1, -theta));
        qc.cx(q + 1, q);
    }
    for (int q = 0; q < num_qubits; ++q)
        qc.measure(q);
    return qc;
}

Circuit
makeSurfaceCodeCycle(int distance, int rounds)
{
    MUSSTI_REQUIRE(distance >= 3 && distance % 2 == 1,
                   "surface code distance must be odd and >= 3");
    MUSSTI_REQUIRE(rounds >= 1, "need at least one syndrome round");

    // Rotated surface code: d^2 data qubits + (d^2 - 1) ancillas.
    const int data = distance * distance;
    const int ancillas = distance * distance - 1;
    const int n = data + ancillas;
    Circuit qc(n, "Surface_d" + std::to_string(distance));

    auto dataAt = [&](int row, int col) { return row * distance + col; };

    // Ancilla layout: one per plaquette of the (d-1+boundary) lattice;
    // we enumerate the standard d^2-1 stabilizers row-major.
    int next_ancilla = data;
    struct Stabilizer { int ancilla; bool x_type; std::vector<int> data; };
    std::vector<Stabilizer> stabilizers;

    // Bulk plaquettes.
    for (int row = 0; row < distance - 1; ++row) {
        for (int col = 0; col < distance - 1; ++col) {
            Stabilizer s;
            s.ancilla = next_ancilla++;
            s.x_type = (row + col) % 2 == 0;
            s.data = {dataAt(row, col), dataAt(row, col + 1),
                      dataAt(row + 1, col), dataAt(row + 1, col + 1)};
            stabilizers.push_back(s);
        }
    }
    // Boundary (weight-2) stabilizers along top/bottom and left/right.
    for (int col = 0; col + 1 < distance; col += 2) {
        Stabilizer top{next_ancilla++, true,
                       {dataAt(0, col), dataAt(0, col + 1)}};
        stabilizers.push_back(top);
        Stabilizer bottom{next_ancilla++, true,
                          {dataAt(distance - 1, col + 1),
                           dataAt(distance - 1,
                                  std::min(col + 2, distance - 1))}};
        stabilizers.push_back(bottom);
    }
    for (int row = 0; row + 1 < distance &&
         next_ancilla < n; row += 2) {
        Stabilizer left{next_ancilla++, false,
                        {dataAt(row, 0), dataAt(row + 1, 0)}};
        stabilizers.push_back(left);
        if (next_ancilla < n) {
            Stabilizer right{next_ancilla++, false,
                             {dataAt(row + 1, distance - 1),
                              dataAt(std::min(row + 2, distance - 1),
                                     distance - 1)}};
            stabilizers.push_back(right);
        }
    }

    for (int round = 0; round < rounds; ++round) {
        for (const auto &s : stabilizers) {
            if (s.x_type)
                qc.h(s.ancilla);
            for (int dq : s.data) {
                if (s.x_type)
                    qc.cx(s.ancilla, dq);
                else
                    qc.cx(dq, s.ancilla);
            }
            if (s.x_type)
                qc.h(s.ancilla);
            qc.measure(s.ancilla);
        }
    }
    return qc;
}

} // namespace mussti
