#include "workloads/workloads.h"

#include <cmath>

#include "common/logging.h"

namespace mussti {

Circuit
makeQft(int num_qubits)
{
    MUSSTI_REQUIRE(num_qubits >= 2, "QFT needs at least 2 qubits");
    Circuit qc(num_qubits, "QFT_n" + std::to_string(num_qubits));

    // Controlled-phase ladder. CP(theta) = RZ corrections + 2 CX; we emit
    // the standard decomposition so gate counts match compiled QASMBench.
    for (int i = 0; i < num_qubits; ++i) {
        qc.h(i);
        for (int j = i + 1; j < num_qubits; ++j) {
            const double theta = M_PI / std::pow(2.0, j - i);
            qc.rz(i, theta / 2);
            qc.cx(j, i);
            qc.rz(i, -theta / 2);
            qc.cx(j, i);
            qc.rz(j, theta / 2);
        }
    }
    // Bit-reversal swaps (each is 3 MS gates once decomposed).
    for (int i = 0; i < num_qubits / 2; ++i)
        qc.swap(i, num_qubits - 1 - i);
    for (int q = 0; q < num_qubits; ++q)
        qc.measure(q);
    return qc;
}

} // namespace mussti
