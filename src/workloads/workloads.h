/**
 * @file
 * Benchmark circuit generators.
 *
 * The paper evaluates on QASMBench circuits (Adder, BV, GHZ, QAOA, QFT,
 * SQRT, RAN/random, SC/supremacy) at 30-299 qubits. The original QASM
 * files are not redistributable here, so each family is regenerated from
 * its construction. What the compiler consumes is the two-qubit
 * interaction structure, which these constructions reproduce exactly:
 *
 *  - Adder: ripple-carry (CDKM) adder; local chains with carry propagation.
 *  - BV: Bernstein-Vazirani; a star of CX into one target qubit.
 *  - GHZ: a CX ladder (linear nearest-neighbour chain).
 *  - QAOA: MaxCut on a random 3-regular graph; bounded-degree, p rounds.
 *  - QFT: quantum Fourier transform; all-to-all controlled rotations.
 *  - SQRT: reversible fixed-point square root via non-restoring iteration
 *    built from adder/subtractor blocks; deep, communication-heavy reuse.
 *  - RAN: uniformly random two-qubit pairs with interleaved 1q gates.
 *  - SC: supremacy-style 2D-grid pattern of staggered two-qubit layers.
 *
 * All generators are deterministic given (n, seed).
 */
#ifndef MUSSTI_WORKLOADS_WORKLOADS_H
#define MUSSTI_WORKLOADS_WORKLOADS_H

#include <cstdint>
#include <string>
#include <vector>

#include "circuit/circuit.h"

namespace mussti {

/**
 * Ripple-carry adder over two (n-1)/2-bit registers plus carry ancillas,
 * named Adder_n<n> as in QASMBench.
 */
Circuit makeAdder(int num_qubits);

/** Bernstein-Vazirani with a pseudorandom hidden string. */
Circuit makeBv(int num_qubits, std::uint64_t seed = 7);

/** GHZ state preparation: H then a CX chain. */
Circuit makeGhz(int num_qubits);

/**
 * QAOA MaxCut on a random 3-regular graph, `rounds` alternating
 * cost/mixer rounds (paper uses shallow QAOA).
 */
Circuit makeQaoa(int num_qubits, int rounds = 1, std::uint64_t seed = 11);

/** Textbook QFT with full controlled-phase ladder and final swaps. */
Circuit makeQft(int num_qubits);

/**
 * Reversible fixed-point square root (non-restoring digit recurrence),
 * matching QASMBench's sqrt family in size class and reuse pattern.
 */
Circuit makeSqrt(int num_qubits);

/** Uniformly random circuit: `num_gates` 2q pairs + interleaved 1q. */
Circuit makeRandomCircuit(int num_qubits, int num_two_qubit_gates,
                          std::uint64_t seed = 13);

/** Supremacy-style staggered grid circuit of the given depth. */
Circuit makeSupremacy(int num_qubits, int depth = 8,
                      std::uint64_t seed = 17);

/** 1D transverse-field Ising Trotter evolution (even/odd bond layers). */
Circuit makeIsing(int num_qubits, int trotter_steps = 4,
                  std::uint64_t seed = 19);

/** Quantum-volume style square circuit (random pairings per layer). */
Circuit makeQuantumVolume(int num_qubits, int depth = 0,
                          std::uint64_t seed = 23);

/** Linear-depth W-state preparation network. */
Circuit makeWState(int num_qubits);

/**
 * Rotated surface-code syndrome-extraction cycles at the given odd code
 * distance: d^2 data qubits plus d^2-1 ancillas (the paper's outlook
 * names QEC on EML-QCCD as the next step; this workload exercises it).
 */
Circuit makeSurfaceCodeCycle(int distance, int rounds = 1);

/**
 * Named lookup used by benches and examples: family in {adder, bv, ghz,
 * qaoa, qft, sqrt, ran, sc} (case-insensitive); fatal() on unknown names.
 */
Circuit makeBenchmark(const std::string &family, int num_qubits);

/** The benchmark families available through makeBenchmark(). */
std::vector<std::string> benchmarkFamilies();

/**
 * The paper's three evaluation suites (section 4): small 30-32q,
 * medium 117-128q, large 256-299q. Returns {family, numQubits} pairs.
 */
struct BenchmarkSpec
{
    std::string family;
    int numQubits;

    /** "Adder_n32"-style label used in the paper's tables. */
    std::string label() const;
};

std::vector<BenchmarkSpec> smallScaleSuite();
std::vector<BenchmarkSpec> mediumScaleSuite();
std::vector<BenchmarkSpec> largeScaleSuite();

} // namespace mussti

#endif // MUSSTI_WORKLOADS_WORKLOADS_H
