#include "workloads/workloads.h"

#include "common/logging.h"
#include "common/rng.h"

namespace mussti {

Circuit
makeRandomCircuit(int num_qubits, int num_two_qubit_gates,
                  std::uint64_t seed)
{
    MUSSTI_REQUIRE(num_qubits >= 2, "random circuit needs >= 2 qubits");
    MUSSTI_REQUIRE(num_two_qubit_gates >= 0, "negative gate count");
    Circuit qc(num_qubits, "RAN_n" + std::to_string(num_qubits));
    Rng rng(seed);

    for (int q = 0; q < num_qubits; ++q)
        qc.h(q);
    for (int g = 0; g < num_two_qubit_gates; ++g) {
        const int a = rng.intIn(0, num_qubits - 1);
        int b = rng.intIn(0, num_qubits - 2);
        if (b >= a)
            ++b;
        qc.cx(a, b);
        // Interleave sparse 1q rotations, as QASMBench's random family does.
        if (rng.chance(0.3))
            qc.rz(a, rng.real() * 3.14159);
    }
    for (int q = 0; q < num_qubits; ++q)
        qc.measure(q);
    return qc;
}

} // namespace mussti
