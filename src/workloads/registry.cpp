#include "workloads/workloads.h"

#include <algorithm>
#include <cctype>

#include "common/logging.h"
#include "common/string_util.h"

namespace mussti {

std::string
BenchmarkSpec::label() const
{
    std::string fam = family;
    if (!fam.empty())
        fam[0] = static_cast<char>(std::toupper(
            static_cast<unsigned char>(fam[0])));
    if (toLower(family) == "bv" || toLower(family) == "ghz" ||
        toLower(family) == "qft" || toLower(family) == "qaoa" ||
        toLower(family) == "sqrt" || toLower(family) == "ran" ||
        toLower(family) == "sc") {
        fam = toLower(family);
        std::transform(fam.begin(), fam.end(), fam.begin(), ::toupper);
    }
    return fam + "_n" + std::to_string(numQubits);
}

Circuit
makeBenchmark(const std::string &family, int num_qubits)
{
    const std::string fam = toLower(family);
    if (fam == "adder")
        return makeAdder(num_qubits);
    if (fam == "bv")
        return makeBv(num_qubits);
    if (fam == "ghz")
        return makeGhz(num_qubits);
    if (fam == "qaoa")
        return makeQaoa(num_qubits);
    if (fam == "qft")
        return makeQft(num_qubits);
    if (fam == "sqrt")
        return makeSqrt(num_qubits);
    if (fam == "ran" || fam == "random")
        return makeRandomCircuit(num_qubits, num_qubits * 6);
    if (fam == "sc" || fam == "supremacy")
        return makeSupremacy(num_qubits);
    if (fam == "ising")
        return makeIsing(num_qubits);
    if (fam == "qv")
        return makeQuantumVolume(num_qubits);
    if (fam == "wstate")
        return makeWState(num_qubits);
    fatal("unknown benchmark family: " + family);
}

std::vector<std::string>
benchmarkFamilies()
{
    return {"adder", "bv", "ghz", "qaoa", "qft", "sqrt", "ran", "sc",
            "ising", "qv", "wstate"};
}

std::vector<BenchmarkSpec>
smallScaleSuite()
{
    return {
        {"adder", 32}, {"bv", 32}, {"ghz", 32},
        {"qaoa", 32}, {"qft", 32}, {"sqrt", 30},
    };
}

std::vector<BenchmarkSpec>
mediumScaleSuite()
{
    return {
        {"adder", 128}, {"bv", 128}, {"qaoa", 128},
        {"ghz", 128}, {"sqrt", 117},
    };
}

std::vector<BenchmarkSpec>
largeScaleSuite()
{
    return {
        {"adder", 256}, {"bv", 256}, {"qaoa", 256}, {"ghz", 256},
        {"ran", 256}, {"sc", 274}, {"sqrt", 299},
    };
}

} // namespace mussti
