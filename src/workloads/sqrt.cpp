#include "workloads/workloads.h"

#include <algorithm>

#include "common/logging.h"

namespace mussti {

/**
 * Reversible fixed-point square root by non-restoring digit recurrence.
 *
 * Register layout over n qubits (d = (n - 3) / 4 result bits):
 *   root      Q[0 .. d-1]          (digit accumulator)
 *   remainder R[0 .. 2d-1]         (radicand shifted in place)
 *   borrow    ancillas (3)
 * Each digit iteration (i) performs a conditional ripple subtraction
 * over a width-16 window of the remainder that slides as digits are
 * recovered, then writes the digit with a burst of controlled gates
 * between the current root bit and the window head, and finally ripples
 * the carry through the root.
 *
 * This reproduces the scheduling-relevant structure of QASMBench's sqrt
 * family: deep register reuse (every iteration revisits the remainder
 * and root), interaction windows wider than one trap (16) so monolithic
 * QCCD grids shuttle continuously, and repeated bursts between one root
 * bit and a remote window (the Fig 5 pattern SWAP insertion targets).
 * At n=299 the two-qubit gate count lands at the paper's scale
 * (QASMBench sqrt_n299 has 4376).
 */
Circuit
makeSqrt(int num_qubits)
{
    MUSSTI_REQUIRE(num_qubits >= 15, "sqrt needs at least 15 qubits");
    const int d = (num_qubits - 3) / 4;
    Circuit qc(num_qubits, "SQRT_n" + std::to_string(num_qubits));

    const int q0 = 0;              // root, d qubits
    const int r0 = d;              // remainder, 2d qubits
    const int borrow = 3 * d;      // borrow ancillas

    auto Q = [&](int i) { return q0 + i; };
    auto R = [&](int i) { return r0 + i; };

    // Load a nontrivial radicand.
    for (int i = 0; i < 2 * d; ++i) {
        if ((i * 7 + 3) % 5 < 2)
            qc.x(R(i));
    }
    qc.h(borrow);

    const int window = std::min(32, 2 * d);
    const int span = 2 * d - window; // top window offset (>= 0)

    // One iteration per result digit: each digit is decided exactly once
    // (non-restoring recurrence), so after its burst a root bit never
    // returns to the root register's module — the migration pattern the
    // paper's SWAP insertion exists for.
    for (int iter = 0; iter < d; ++iter) {
        const int offset = span > 0 ? (4 * iter) % (span + 1) : 0;
        const int head = R(offset);
        const int digit = Q(iter);

        // Conditional ripple subtraction across the remainder window
        // (borrow chain of CX with interleaved phase corrections).
        for (int j = 0; j < window - 1; ++j) {
            qc.cx(R(offset + j), R(offset + j + 1));
            if (j % 3 == 0)
                qc.t(R(offset + j + 1));
        }

        // Carry ripple into the next root bit (before the digit burst;
        // the digit's sign is known from the previous iteration).
        if (iter + 1 < d)
            qc.cx(digit, Q(iter + 1));
        if (iter % 4 == 0)
            qc.cx(digit, borrow);

        // Digit decision burst: the root bit accumulates the comparison
        // result from the window head (a long repeated interaction with
        // one remote partner, after which the digit is final).
        for (int b = 0; b < 16; ++b) {
            if (b % 2 == 0)
                qc.cx(head, digit);
            else
                qc.cx(digit, head);
        }
    }

    for (int i = 0; i < d; ++i)
        qc.measure(Q(i));
    return qc;
}

} // namespace mussti
