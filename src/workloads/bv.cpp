#include "workloads/workloads.h"

#include "common/logging.h"
#include "common/rng.h"

namespace mussti {

Circuit
makeBv(int num_qubits, std::uint64_t seed)
{
    MUSSTI_REQUIRE(num_qubits >= 2, "BV needs at least 2 qubits");
    Circuit qc(num_qubits, "BV_n" + std::to_string(num_qubits));
    Rng rng(seed);

    const int target = num_qubits - 1;
    for (int q = 0; q < target; ++q)
        qc.h(q);
    qc.x(target);
    qc.h(target);

    // Oracle: CX from every set bit of the hidden string into the target.
    // The star topology (everything converging on one qubit) is what makes
    // BV a locality stress test for shuttle schedulers.
    for (int q = 0; q < target; ++q) {
        if (rng.chance(0.5))
            qc.cx(q, target);
    }

    for (int q = 0; q < target; ++q)
        qc.h(q);
    for (int q = 0; q < target; ++q)
        qc.measure(q);
    return qc;
}

} // namespace mussti
