#include "workloads/workloads.h"

#include "common/logging.h"

namespace mussti {

Circuit
makeGhz(int num_qubits)
{
    MUSSTI_REQUIRE(num_qubits >= 2, "GHZ needs at least 2 qubits");
    Circuit qc(num_qubits, "GHZ_n" + std::to_string(num_qubits));
    qc.h(0);
    for (int q = 0; q + 1 < num_qubits; ++q)
        qc.cx(q, q + 1);
    for (int q = 0; q < num_qubits; ++q)
        qc.measure(q);
    return qc;
}

} // namespace mussti
