#include "workloads/workloads.h"

#include "common/logging.h"

namespace mussti {

namespace {

/**
 * MAJ block of the CDKM ripple-carry adder: (c, b, a) -> majority carry.
 * Emits 3 CX-class gates among three adjacent wires.
 */
void
maj(Circuit &qc, int c, int b, int a)
{
    qc.cx(a, b);
    qc.cx(a, c);
    // Toffoli decomposed into the standard 6-CX + T network; the compiler
    // cares only about the interaction pairs, so we emit the CX skeleton
    // plus the T-layer on the touched wires.
    qc.h(a);
    qc.cx(b, a);
    qc.tdg(a);
    qc.cx(c, a);
    qc.t(a);
    qc.cx(b, a);
    qc.tdg(a);
    qc.cx(c, a);
    qc.t(b);
    qc.t(a);
    qc.h(a);
}

/** UMA block: undoes MAJ and writes the sum bit. */
void
uma(Circuit &qc, int c, int b, int a)
{
    qc.h(a);
    qc.cx(c, a);
    qc.t(a);
    qc.cx(b, a);
    qc.tdg(a);
    qc.cx(c, a);
    qc.t(a);
    qc.cx(b, a);
    qc.h(a);
    qc.cx(a, c);
    qc.cx(c, b);
}

} // namespace

Circuit
makeAdder(int num_qubits)
{
    MUSSTI_REQUIRE(num_qubits >= 4, "adder needs at least 4 qubits");
    // Layout: cin | a[0] b[0] | a[1] b[1] | ... | cout.
    // Register width from the available qubits: 2 ancilla + 2k data.
    const int bits = (num_qubits - 2) / 2;
    Circuit qc(num_qubits, "Adder_n" + std::to_string(num_qubits));

    const int cin = 0;
    const int cout = num_qubits - 1;
    auto a = [&](int i) { return 1 + 2 * i; };
    auto b = [&](int i) { return 2 + 2 * i; };

    // Prepare a nontrivial input state so measurement is meaningful.
    for (int i = 0; i < bits; ++i) {
        if (i % 3 != 2)
            qc.x(a(i));
        if (i % 2 == 0)
            qc.x(b(i));
    }

    // MAJ ripple up.
    maj(qc, cin, b(0), a(0));
    for (int i = 1; i < bits; ++i)
        maj(qc, a(i - 1), b(i), a(i));
    // Carry out.
    qc.cx(a(bits - 1), cout);
    // UMA ripple down.
    for (int i = bits - 1; i >= 1; --i)
        uma(qc, a(i - 1), b(i), a(i));
    uma(qc, cin, b(0), a(0));

    for (int i = 0; i < bits; ++i)
        qc.measure(b(i));
    qc.measure(cout);
    return qc;
}

} // namespace mussti
