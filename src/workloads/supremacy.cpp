#include "workloads/workloads.h"

#include <cmath>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"

namespace mussti {

/**
 * Supremacy-style circuit (the "SC" family): qubits on a near-square 2D
 * grid, `depth` rounds of staggered two-qubit layers cycling through the
 * four coupler orientations (right/down with two phase offsets), with a
 * random single-qubit gate on every qubit between rounds. This is the
 * interaction pattern of Google-style random-circuit-sampling benchmarks.
 */
Circuit
makeSupremacy(int num_qubits, int depth, std::uint64_t seed)
{
    MUSSTI_REQUIRE(num_qubits >= 4, "supremacy circuit needs >= 4 qubits");
    MUSSTI_REQUIRE(depth >= 1, "supremacy circuit needs depth >= 1");
    Circuit qc(num_qubits, "SC_n" + std::to_string(num_qubits));
    Rng rng(seed);

    const int width = std::max(2, static_cast<int>(std::lround(
        std::sqrt(static_cast<double>(num_qubits)))));
    auto index = [&](int row, int col) { return row * width + col; };
    const int rows = (num_qubits + width - 1) / width;
    auto valid = [&](int row, int col) {
        return row >= 0 && col >= 0 && col < width &&
               index(row, col) < num_qubits;
    };

    for (int q = 0; q < num_qubits; ++q)
        qc.h(q);

    for (int layer = 0; layer < depth; ++layer) {
        // Orientation cycle: horizontal even, horizontal odd, vertical
        // even, vertical odd — each qubit partners at most once per layer.
        const int phase = layer % 4;
        const bool horizontal = phase < 2;
        const int offset = phase % 2;
        for (int row = 0; row < rows; ++row) {
            for (int col = 0; col < width; ++col) {
                if (!valid(row, col))
                    continue;
                int r2 = row, c2 = col;
                if (horizontal) {
                    if (col % 2 != offset)
                        continue;
                    c2 = col + 1;
                } else {
                    if (row % 2 != offset)
                        continue;
                    r2 = row + 1;
                }
                if (!valid(r2, c2))
                    continue;
                qc.cz(index(row, col), index(r2, c2));
            }
        }
        // Random 1q layer.
        for (int q = 0; q < num_qubits; ++q) {
            switch (rng.intIn(0, 2)) {
              case 0: qc.rx(q, 1.5707963267948966); break;
              case 1: qc.add(Gate(GateKind::Ry, q, 1.5707963267948966));
                      break;
              default: qc.t(q); break;
            }
        }
    }
    for (int q = 0; q < num_qubits; ++q)
        qc.measure(q);
    return qc;
}

} // namespace mussti
