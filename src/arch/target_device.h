/**
 * @file
 * The polymorphic device layer every compiler backend targets.
 *
 * A TargetDevice is an immutable trap topology: a list of ZoneInfo
 * descriptors plus the shuttle connectivity between them. The base
 * class owns everything the passes, evaluators, and benches consume —
 * zone descriptors, kind/module queries, an index-based adjacency view
 * (no per-call vector), a precomputed O(1) hop-distance table, and a
 * describe()/spec() round trip through the DeviceRegistry grammar
 * (arch/device_registry.h). Concrete families (EmlDevice, GridDevice)
 * contribute only their geometry and family-specific vocabulary.
 *
 * All runtime state (ion placement, heat) lives elsewhere; a device is
 * safe to share across threads for the lifetime of a CompileService.
 */
#ifndef MUSSTI_ARCH_TARGET_DEVICE_H
#define MUSSTI_ARCH_TARGET_DEVICE_H

#include <string>
#include <utility>
#include <vector>

#include "arch/zone.h"
#include "common/logging.h"

namespace mussti {

/** Concrete topology families the registry can instantiate. */
enum class DeviceFamily { Eml, Grid };

/** Spec-grammar prefix of a family ("eml", "grid"). */
const char *deviceFamilyName(DeviceFamily family);

/**
 * Lightweight view into the device's CSR adjacency: the zones reachable
 * from one zone in a single shuttle hop. Valid as long as the device
 * lives; cheap to copy (two pointers), so the router's inner loops can
 * ask for neighbourhoods without allocating.
 */
class NeighborView
{
  public:
    NeighborView(const int *first, const int *last)
        : first_(first), last_(last)
    {}

    const int *begin() const { return first_; }
    const int *end() const { return last_; }
    int size() const { return static_cast<int>(last_ - first_); }
    bool empty() const { return first_ == last_; }

    int
    operator[](int i) const
    {
        MUSSTI_ASSERT(i >= 0 && i < size(),
                      "neighbor index " << i << " out of range");
        return first_[i];
    }

  private:
    const int *first_;
    const int *last_;
};

/**
 * Abstract immutable device topology. Construction order for derived
 * classes: validate the config, lay out zones and hop edges, then call
 * finalizeTopology() exactly once to freeze the adjacency and the
 * hop-distance table.
 */
class TargetDevice
{
  public:
    virtual ~TargetDevice() = default;

    DeviceFamily family() const { return family_; }
    const char *familyName() const { return deviceFamilyName(family_); }

    int numZones() const { return static_cast<int>(zones_.size()); }

    /** All zone descriptors (evaluator/validator/timeline input). */
    const std::vector<ZoneInfo> &zoneInfos() const { return zones_; }

    /** Static zone descriptor by global zone id (hot path, inline). */
    const ZoneInfo &
    zone(int zone_id) const
    {
        MUSSTI_ASSERT(zone_id >= 0 && zone_id < numZones(),
                      "zone id " << zone_id << " out of range");
        return zones_[zone_id];
    }

    /** Zone-kind queries (shared vocabulary of every consumer). */
    ZoneKind kindOf(int zone_id) const { return zone(zone_id).kind; }
    bool gateCapable(int zone_id) const { return zone(zone_id).gateCapable(); }
    int moduleOf(int zone_id) const { return zone(zone_id).module; }

    /** Modules present (1 for monolithic grids). */
    int numModules() const { return numModules_; }

    /** Total ion slots on the device (sum of zone capacities). */
    int slotCount() const { return slotCount_; }

    /**
     * Zones reachable from `zone_id` in one shuttle hop, as a view into
     * the shared adjacency index — no per-call allocation.
     */
    NeighborView
    neighbors(int zone_id) const
    {
        MUSSTI_ASSERT(zone_id >= 0 && zone_id < numZones(),
                      "neighbors zone " << zone_id << " out of range");
        const int *base = adjacency_.data();
        return {base + adjacencyOffsets_[zone_id],
                base + adjacencyOffsets_[zone_id + 1]};
    }

    /**
     * Shuttle hops between two zones, served from a table precomputed
     * at construction (BFS over the adjacency) — this sits inside the
     * routers' plan-costing inner loops. Returns -1 for pairs no
     * shuttle path connects (e.g. zones of different EML modules).
     */
    int
    hopDistance(int zone_a, int zone_b) const
    {
        MUSSTI_ASSERT(zone_a >= 0 && zone_a < numZones() && zone_b >= 0 &&
                      zone_b < numZones(),
                      "hopDistance zone out of range: " << zone_a << ", "
                      << zone_b);
        return hopTable_[static_cast<std::size_t>(zone_a) * numZones() +
                         zone_b];
    }

    /**
     * Canonical DeviceRegistry spec string: parsing it re-creates this
     * topology (DeviceRegistry::parse(device.spec()) round-trips).
     */
    virtual std::string spec() const = 0;

    /** One-line human-readable topology summary. */
    virtual std::string describe() const = 0;

  protected:
    explicit TargetDevice(DeviceFamily family) : family_(family) {}

    TargetDevice(const TargetDevice &) = default;
    TargetDevice &operator=(const TargetDevice &) = default;

    /**
     * Freeze the topology: adopt the zone descriptors, build the CSR
     * adjacency from undirected hop `edges`, and precompute the all-
     * pairs hop-distance table (BFS per source; the device sizes this
     * library models keep that well under a millisecond).
     */
    void finalizeTopology(std::vector<ZoneInfo> zones,
                          const std::vector<std::pair<int, int>> &edges);

  private:
    DeviceFamily family_;
    std::vector<ZoneInfo> zones_;
    int numModules_ = 0;
    int slotCount_ = 0;
    std::vector<int> adjacencyOffsets_; ///< numZones+1 CSR offsets.
    std::vector<int> adjacency_;        ///< Flat neighbour lists.
    std::vector<int> hopTable_;         ///< numZones^2; -1 = unreachable.
};

} // namespace mussti

#endif // MUSSTI_ARCH_TARGET_DEVICE_H
