/**
 * @file
 * Entanglement-module-linked QCCD device model (paper Fig 2).
 *
 * A device is a set of QCCD modules. Each module is a linear arrangement
 * of traps partitioned into storage / operation / optical zones. Optical
 * zones of distinct modules are connected through a switched fiber, so a
 * remote entangling gate may execute between any pair of optical zones in
 * different modules. Ions physically shuttle only inside a module; they
 * cross modules only logically via inserted SWAP gates.
 */
#ifndef MUSSTI_ARCH_EML_DEVICE_H
#define MUSSTI_ARCH_EML_DEVICE_H

#include <utility>
#include <vector>

#include "arch/zone.h"
#include "common/logging.h"

namespace mussti {

/** Construction parameters for an EML-QCCD device (paper section 4). */
struct EmlConfig
{
    int trapCapacity = 16;        ///< Ions per trap (12-20 in Fig 7).
    int numStorageZones = 2;      ///< Storage traps per module.
    int numOperationZones = 1;    ///< Operation traps per module.
    int numOpticalZones = 1;      ///< Optical traps per module (2 in
                                  ///< the Fig 12 study).
    int maxQubitsPerModule = 32;  ///< A new module per 32 qubits.
    double zonePitchUm = 200.0;   ///< Distance between adjacent traps.
    int forcedNumModules = -1;    ///< >=1 overrides the derived count.
};

/**
 * Immutable device topology: zones, module membership, geometry.
 * All runtime state (ion placement, heat) lives elsewhere.
 */
class EmlDevice
{
  public:
    /**
     * Build a device sized for `num_qubits` program qubits: the module
     * count is ceil(n / maxQubitsPerModule) unless forcedNumModules
     * overrides it. fatal() if the device cannot hold the program.
     */
    EmlDevice(const EmlConfig &config, int num_qubits);

    const EmlConfig &config() const { return config_; }
    int numModules() const { return numModules_; }
    int numZones() const { return static_cast<int>(zones_.size()); }
    int numQubits() const { return numQubits_; }

    /** Static zone descriptor by global zone id (hot path, inline). */
    const ZoneInfo &
    zone(int zone_id) const
    {
        MUSSTI_ASSERT(zone_id >= 0 && zone_id < numZones(),
                      "zone id " << zone_id << " out of range");
        return zones_[zone_id];
    }

    /** All zone descriptors (evaluator/validator input). */
    const std::vector<ZoneInfo> &zoneInfos() const { return zones_; }

    /** Global zone ids belonging to one module, in spatial order. */
    const std::vector<int> &zonesOfModule(int module) const;

    /** Zone ids of one kind within a module. */
    std::vector<int> zonesOfKind(int module, ZoneKind kind) const;

    /** Gate-capable zone ids (operation + optical) within a module. */
    std::vector<int> gateZonesOfModule(int module) const;

    /**
     * Intra-module center-to-center distance in micrometers. Served
     * from a table precomputed at construction — this sits inside the
     * router's plan-costing inner loops.
     */
    double distanceUm(int zone_a, int zone_b) const;

    /** True if a fiber gate may couple these two zones. */
    bool fiberLinked(int zone_a, int zone_b) const;

    /** Total ion slots in a module (sum of zone capacities). */
    int moduleSlotCount(int module) const;

    /** Qubits assigned to a module by the ceil(n/32) split: [lo, hi). */
    std::pair<int, int> moduleQubitRange(int module) const;

  private:
    EmlConfig config_;
    int numQubits_;
    int numModules_;
    std::vector<ZoneInfo> zones_;
    std::vector<std::vector<int>> moduleZones_;
    std::vector<double> zoneDistanceUm_; ///< numZones x numZones lookup;
                                         ///< -1 marks cross-module pairs.
};

} // namespace mussti

#endif // MUSSTI_ARCH_EML_DEVICE_H
