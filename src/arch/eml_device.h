/**
 * @file
 * Entanglement-module-linked QCCD device model (paper Fig 2).
 *
 * A device is a set of QCCD modules. Each module is a linear arrangement
 * of traps partitioned into storage / operation / optical zones. Optical
 * zones of distinct modules are connected through a switched fiber, so a
 * remote entangling gate may execute between any pair of optical zones in
 * different modules. Ions physically shuttle only inside a module; they
 * cross modules only logically via inserted SWAP gates.
 *
 * Modules are homogeneous by default (the paper's configuration); a
 * non-empty EmlConfig::moduleMix builds a heterogeneous device with
 * per-module zone counts — the co-design axis the registry spec
 * `eml:hetero=...` exposes (see arch/README.md for the grammar).
 */
#ifndef MUSSTI_ARCH_EML_DEVICE_H
#define MUSSTI_ARCH_EML_DEVICE_H

#include <utility>
#include <vector>

#include "arch/target_device.h"
#include "arch/zone.h"
#include "common/logging.h"

namespace mussti {

/** Zone counts of one module of a heterogeneous EML device. */
struct EmlModuleMix
{
    int storage = 2;
    int operation = 1;
    int optical = 1;
};

/** Construction parameters for an EML-QCCD device (paper section 4). */
struct EmlConfig
{
    int trapCapacity = 16;        ///< Ions per trap (12-20 in Fig 7).
    int numStorageZones = 2;      ///< Storage traps per module.
    int numOperationZones = 1;    ///< Operation traps per module.
    int numOpticalZones = 1;      ///< Optical traps per module (2 in
                                  ///< the Fig 12 study).
    int maxQubitsPerModule = 32;  ///< A new module per 32 qubits.
    double zonePitchUm = 200.0;   ///< Distance between adjacent traps.
    int forcedNumModules = -1;    ///< >=1 overrides the derived count.

    /**
     * Non-empty: heterogeneous device with one entry per module (the
     * module count is the mix length; forcedNumModules must be unset
     * or agree). The num*Zones fields above are ignored.
     */
    std::vector<EmlModuleMix> moduleMix;
};

/**
 * Canonical DeviceRegistry spec string of an EML config (the single
 * producer behind EmlDevice::spec() and DeviceSpec::canonical()).
 */
std::string emlSpecString(const EmlConfig &config);

/**
 * Immutable device topology: zones, module membership, geometry.
 * All runtime state (ion placement, heat) lives elsewhere.
 */
class EmlDevice : public TargetDevice
{
  public:
    /**
     * Build a device sized for `num_qubits` program qubits: the module
     * count is ceil(n / maxQubitsPerModule) unless forcedNumModules or
     * a moduleMix overrides it. fatal() if the device cannot hold the
     * program.
     */
    EmlDevice(const EmlConfig &config, int num_qubits);

    const EmlConfig &config() const { return config_; }
    int numQubits() const { return numQubits_; }

    /** Global zone ids belonging to one module, in spatial order. */
    const std::vector<int> &zonesOfModule(int module) const;

    /**
     * Zone ids of one kind within a module. Precomputed at
     * construction: this sits inside the router's optical-zone and
     * plan-enumeration loops, which must not allocate per call.
     */
    const std::vector<int> &zonesOfKind(int module, ZoneKind kind) const;

    /** Gate-capable zone ids (operation + optical) within a module. */
    const std::vector<int> &gateZonesOfModule(int module) const;

    /**
     * Intra-module center-to-center distance in micrometers. Served
     * from a table precomputed at construction — this sits inside the
     * router's plan-costing inner loops.
     */
    double distanceUm(int zone_a, int zone_b) const;

    /** True if a fiber gate may couple these two zones. */
    bool fiberLinked(int zone_a, int zone_b) const;

    /** Total ion slots in a module (sum of zone capacities). */
    int moduleSlotCount(int module) const;

    /** Qubits assigned to a module by the ceil(n/32) split: [lo, hi). */
    std::pair<int, int> moduleQubitRange(int module) const;

    std::string spec() const override;
    std::string describe() const override;

  private:
    EmlConfig config_;
    int numQubits_;
    std::vector<std::vector<int>> moduleZones_;
    std::vector<std::vector<int>> moduleZonesByKind_[3];
                                         ///< [kind][module] zone ids.
    std::vector<std::vector<int>> moduleGateZones_;
    std::vector<double> zoneDistanceUm_; ///< numZones x numZones lookup;
                                         ///< -1 marks cross-module pairs.
};

} // namespace mussti

#endif // MUSSTI_ARCH_EML_DEVICE_H
