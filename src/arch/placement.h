/**
 * @file
 * Runtime ion placement: which zone each logical qubit occupies and the
 * linear chain order inside each trap. Shuttles may only extract ions
 * from chain edges (paper Fig 2c), so chain order determines how many
 * physical in-trap swaps a relocation costs.
 */
#ifndef MUSSTI_ARCH_PLACEMENT_H
#define MUSSTI_ARCH_PLACEMENT_H

#include <initializer_list>
#include <vector>

#include "arch/zone.h"
#include "common/logging.h"

namespace mussti {

/** Which chain edge an ion enters or leaves through. */
enum class ChainEnd { Front, Back };

/**
 * The ion order of one trap chain, front to back. Contiguous on
 * purpose: the router's victim scans and the SWAP-inserter's partner
 * scans walk every resident of a zone, and chains are short (bounded by
 * the trap capacity), so a flat array beats a deque's block chasing and
 * — with reserveTo() — performs no allocation per push/pop in steady
 * state. Front insertion shifts the chain, which is O(capacity) and
 * rare next to the scans.
 */
class ZoneChain
{
  public:
    ZoneChain() = default;
    ZoneChain(std::initializer_list<int> ions) : ions_(ions) {}

    int size() const { return static_cast<int>(ions_.size()); }
    bool empty() const { return ions_.empty(); }

    const int *begin() const { return ions_.data(); }
    const int *end() const { return ions_.data() + ions_.size(); }

    int front() const { return ions_.front(); }
    int back() const { return ions_.back(); }

    int
    operator[](int index) const
    {
        MUSSTI_ASSERT(index >= 0 && index < size(),
                      "chain index " << index << " outside size "
                      << size());
        return ions_[index];
    }

    /** Position of the qubit in the chain, or -1 if absent. */
    int
    indexOf(int qubit) const
    {
        for (int i = 0; i < size(); ++i) {
            if (ions_[i] == qubit)
                return i;
        }
        return -1;
    }

    /** Grow capacity (never the size) to at least `capacity` slots. */
    void
    reserveTo(int capacity)
    {
        if (capacity > 0)
            ions_.reserve(static_cast<std::size_t>(capacity));
    }

  private:
    friend class Placement;

    std::vector<int> ions_;
};

/**
 * Mutable placement of `numQubits` logical qubits across `numZones`
 * trap chains. Unplaced qubits have zone -1.
 */
class Placement
{
  public:
    Placement(int num_qubits, int num_zones);

    int numQubits() const { return static_cast<int>(qubitZone_.size()); }
    int numZones() const { return static_cast<int>(chains_.size()); }

    // The three accessors below sit inside the router's plan-costing
    // and weight-table inner loops; they are defined inline so the
    // range checks fold into the callers.

    /** Zone holding a qubit, or -1 if unplaced. */
    int
    zoneOf(int qubit) const
    {
        checkQubit(qubit);
        return qubitZone_[qubit];
    }

    /** Chain order (front..back) of a zone. */
    const ZoneChain &
    chain(int zone) const
    {
        checkZone(zone);
        return chains_[zone];
    }

    /** Number of ions resident in a zone. */
    int
    sizeOf(int zone) const
    {
        checkZone(zone);
        return chains_[zone].size();
    }

    /** Position of the qubit in its chain (0 = front). */
    int chainIndex(int qubit) const;

    /**
     * Minimum number of adjacent-ion swaps to bring the qubit to a chain
     * edge (0 if already at an edge or alone).
     */
    int extractionSwaps(int qubit) const;

    /** The cheaper extraction edge for the qubit. */
    ChainEnd cheaperEnd(int qubit) const;

    /** Insert an unplaced qubit at the given edge of a zone. */
    void insert(int qubit, int zone, ChainEnd end);

    /** Remove a placed qubit from its chain (must be at an edge). */
    void removeAtEdge(int qubit);

    /** Remove regardless of position (initial-mapping construction). */
    void removeAnywhere(int qubit);

    /** Swap a qubit with its chain neighbour toward the given edge. */
    void swapToward(int qubit, ChainEnd end);

    /**
     * Swap two adjacent chain slots of a zone by index — the shuttle
     * emitter's extraction walk already knows the ion's position, so it
     * skips the chain re-scan swapToward would perform.
     */
    void swapAt(int zone, int idx_a, int idx_b);

    /**
     * Exchange the placements of two qubits (logical SWAP insertion):
     * each takes the other's zone and chain slot.
     */
    void exchange(int qubit_a, int qubit_b);

    /** True if every qubit is placed. */
    bool allPlaced() const;

    /**
     * Pre-size every chain to its zone's trap capacity. Chains never
     * outgrow the capacity (routing evicts before it inserts), so after
     * this call push/pop traffic performs no heap allocation — call it
     * once per scheduling run, before the hot loop.
     */
    void reserveChains(const std::vector<ZoneInfo> &zones);

    /**
     * Overwrite the whole placement from a per-zone chain snapshot
     * (index = zone id, ions front to back), the delta-resume
     * counterpart of Schedule::snapshotChains. `chains.size()` must not
     * exceed numZones(); qubits absent from every chain end up
     * unplaced. Existing chain capacity is kept, so restoring into a
     * reserveChains()'d placement allocates nothing.
     */
    void restoreChains(const std::vector<std::vector<int>> &chains);

  private:
    std::vector<int> qubitZone_;
    std::vector<ZoneChain> chains_;

    void
    checkQubit(int qubit) const
    {
        MUSSTI_ASSERT(qubit >= 0 && qubit < numQubits(),
                      "qubit " << qubit << " out of range");
    }

    void
    checkZone(int zone) const
    {
        MUSSTI_ASSERT(zone >= 0 && zone < numZones(),
                      "zone " << zone << " out of range");
    }
};

} // namespace mussti

#endif // MUSSTI_ARCH_PLACEMENT_H
