/**
 * @file
 * Runtime ion placement: which zone each logical qubit occupies and the
 * linear chain order inside each trap. Shuttles may only extract ions
 * from chain edges (paper Fig 2c), so chain order determines how many
 * physical in-trap swaps a relocation costs.
 */
#ifndef MUSSTI_ARCH_PLACEMENT_H
#define MUSSTI_ARCH_PLACEMENT_H

#include <deque>
#include <vector>

#include "common/logging.h"

namespace mussti {

/** Which chain edge an ion enters or leaves through. */
enum class ChainEnd { Front, Back };

/**
 * Mutable placement of `numQubits` logical qubits across `numZones`
 * trap chains. Unplaced qubits have zone -1.
 */
class Placement
{
  public:
    Placement(int num_qubits, int num_zones);

    int numQubits() const { return static_cast<int>(qubitZone_.size()); }
    int numZones() const { return static_cast<int>(chains_.size()); }

    // The three accessors below sit inside the router's plan-costing
    // and weight-table inner loops; they are defined inline so the
    // range checks fold into the callers.

    /** Zone holding a qubit, or -1 if unplaced. */
    int
    zoneOf(int qubit) const
    {
        checkQubit(qubit);
        return qubitZone_[qubit];
    }

    /** Chain order (front..back) of a zone. */
    const std::deque<int> &
    chain(int zone) const
    {
        checkZone(zone);
        return chains_[zone];
    }

    /** Number of ions resident in a zone. */
    int
    sizeOf(int zone) const
    {
        checkZone(zone);
        return static_cast<int>(chains_[zone].size());
    }

    /** Position of the qubit in its chain (0 = front). */
    int chainIndex(int qubit) const;

    /**
     * Minimum number of adjacent-ion swaps to bring the qubit to a chain
     * edge (0 if already at an edge or alone).
     */
    int extractionSwaps(int qubit) const;

    /** The cheaper extraction edge for the qubit. */
    ChainEnd cheaperEnd(int qubit) const;

    /** Insert an unplaced qubit at the given edge of a zone. */
    void insert(int qubit, int zone, ChainEnd end);

    /** Remove a placed qubit from its chain (must be at an edge). */
    void removeAtEdge(int qubit);

    /** Remove regardless of position (initial-mapping construction). */
    void removeAnywhere(int qubit);

    /** Swap a qubit with its chain neighbour toward the given edge. */
    void swapToward(int qubit, ChainEnd end);

    /**
     * Exchange the placements of two qubits (logical SWAP insertion):
     * each takes the other's zone and chain slot.
     */
    void exchange(int qubit_a, int qubit_b);

    /** True if every qubit is placed. */
    bool allPlaced() const;

  private:
    std::vector<int> qubitZone_;
    std::vector<std::deque<int>> chains_;

    void
    checkQubit(int qubit) const
    {
        MUSSTI_ASSERT(qubit >= 0 && qubit < numQubits(),
                      "qubit " << qubit << " out of range");
    }

    void
    checkZone(int zone) const
    {
        MUSSTI_ASSERT(zone >= 0 && zone < numZones(),
                      "zone " << zone << " out of range");
    }
};

} // namespace mussti

#endif // MUSSTI_ARCH_PLACEMENT_H
