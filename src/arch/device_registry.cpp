#include "arch/device_registry.h"

#include <algorithm>
#include <stdexcept>
#include <utility>
#include <vector>

#include "common/hash.h"
#include "common/logging.h"
#include "common/string_util.h"

namespace mussti {

namespace {

/** Strict int parse; diagnostics name the offending token and spec. */
int
specInt(const std::string &value, const std::string &key,
        const std::string &spec)
{
    const auto parsed = parseIntStrict(trim(value));
    MUSSTI_REQUIRE(parsed.has_value(),
                   "unparsable value `" << value << "` for key `" << key
                   << "` in device spec: " << spec);
    return *parsed;
}

/** Strict double parse with the same convention. */
double
specDouble(const std::string &value, const std::string &key,
           const std::string &spec)
{
    const auto parsed = parseDoubleStrict(trim(value));
    MUSSTI_REQUIRE(parsed.has_value(),
                   "unparsable value `" << value << "` for key `" << key
                   << "` in device spec: " << spec);
    return *parsed;
}

/** Split "key=value"; fatal names the token when no '=' is present. */
std::pair<std::string, std::string>
keyValue(const std::string &token, const std::string &spec)
{
    const std::size_t eq = token.find('=');
    MUSSTI_REQUIRE(eq != std::string::npos && eq > 0,
                   "malformed token `" << token
                   << "` (expected key=value) in device spec: " << spec);
    return {toLower(trim(token.substr(0, eq))),
            trim(token.substr(eq + 1))};
}

/** Parse "<S>.<O>.<X>[-...]" into a per-module mix list. */
std::vector<EmlModuleMix>
parseModuleMix(const std::string &value, const std::string &spec)
{
    std::vector<EmlModuleMix> mixes;
    for (const std::string &term : split(value, '-')) {
        const std::vector<std::string> counts = split(term, '.');
        MUSSTI_REQUIRE(counts.size() == 3,
                       "malformed module term `" << term
                       << "` (expected storage.operation.optical) in "
                       "device spec: " << spec);
        EmlModuleMix mix;
        mix.storage = specInt(counts[0], "hetero", spec);
        mix.operation = specInt(counts[1], "hetero", spec);
        mix.optical = specInt(counts[2], "hetero", spec);
        mixes.push_back(mix);
    }
    return mixes;
}

DeviceSpec
parseEml(const std::vector<std::string> &tokens, const std::string &spec)
{
    DeviceSpec parsed;
    parsed.family = DeviceFamily::Eml;
    bool hetero = false;
    bool uniform_zones = false;
    std::vector<std::string> seen;
    for (const std::string &token : tokens) {
        if (trim(token).empty())
            continue;
        const auto [raw_key, value] = keyValue(token, spec);
        const std::string key = canonicalSpecKey(raw_key);
        noteSpecKey(seen, key, spec);
        if (key == "cap") {
            parsed.eml.trapCapacity = specInt(value, key, spec);
        } else if (key == "storage") {
            parsed.eml.numStorageZones = specInt(value, key, spec);
            uniform_zones = true;
        } else if (key == "op") {
            parsed.eml.numOperationZones = specInt(value, key, spec);
            uniform_zones = true;
        } else if (key == "optical") {
            parsed.eml.numOpticalZones = specInt(value, key, spec);
            uniform_zones = true;
        } else if (key == "maxq") {
            parsed.eml.maxQubitsPerModule = specInt(value, key, spec);
        } else if (key == "modules") {
            parsed.eml.forcedNumModules = specInt(value, key, spec);
            uniform_zones = true;
        } else if (key == "pitch") {
            parsed.eml.zonePitchUm = specDouble(value, key, spec);
        } else if (key == "hetero") {
            parsed.eml.moduleMix = parseModuleMix(value, spec);
            hetero = true;
        } else {
            fatal("unknown key `" + key + "` in device spec: " + spec);
        }
    }
    MUSSTI_REQUIRE(!(hetero && uniform_zones),
                   "key `hetero` excludes the uniform zone keys "
                   "(storage/op/optical/modules) in device spec: " << spec);
    return parsed;
}

DeviceSpec
parseGrid(const std::vector<std::string> &tokens, const std::string &spec)
{
    DeviceSpec parsed;
    parsed.family = DeviceFamily::Grid;
    MUSSTI_REQUIRE(!tokens.empty() && !trim(tokens.front()).empty(),
                   "grid spec needs a leading <W>x<H> geometry token: "
                   << spec);

    const std::string geometry = trim(tokens.front());
    const std::vector<std::string> dims = split(geometry, 'x');
    MUSSTI_REQUIRE(dims.size() == 2,
                   "malformed grid geometry `" << geometry
                   << "` (expected <W>x<H>) in device spec: " << spec);
    parsed.grid.width = specInt(dims[0], "geometry", spec);
    parsed.grid.height = specInt(dims[1], "geometry", spec);

    std::vector<std::string> seen;
    for (std::size_t i = 1; i < tokens.size(); ++i) {
        if (trim(tokens[i]).empty())
            continue;
        const auto [key, value] = keyValue(tokens[i], spec);
        noteSpecKey(seen, key, spec);
        if (key == "cap") {
            parsed.grid.trapCapacity = specInt(value, key, spec);
        } else if (key == "pitch") {
            parsed.grid.pitchUm = specDouble(value, key, spec);
        } else {
            fatal("unknown key `" + key + "` in device spec: " + spec);
        }
    }
    return parsed;
}

} // namespace

std::string
canonicalSpecKey(const std::string &key)
{
    return key == "operation" ? "op" : key;
}

void
noteSpecKey(std::vector<std::string> &seen, const std::string &key,
            const std::string &spec_text)
{
    MUSSTI_REQUIRE(std::find(seen.begin(), seen.end(), key) == seen.end(),
                   "duplicate key `" << key << "` in device spec: "
                   << spec_text);
    seen.push_back(key);
}

std::string
DeviceSpec::canonical() const
{
    return family == DeviceFamily::Eml ? emlSpecString(eml)
                                       : gridSpecString(grid);
}

std::uint64_t
DeviceSpec::digest() const
{
    Fnv1a hash;
    hash.update(canonical());
    return hash.digest();
}

DeviceSpec
DeviceRegistry::parse(const std::string &text)
{
    const std::size_t colon = text.find(':');
    MUSSTI_REQUIRE(colon != std::string::npos,
                   "device spec needs a `family:` prefix (eml or grid), "
                   "got: " << text);
    const std::string family = toLower(trim(text.substr(0, colon)));
    const std::vector<std::string> tokens =
        split(text.substr(colon + 1), ',');
    if (family == "eml")
        return parseEml(tokens, text);
    if (family == "grid")
        return parseGrid(tokens, text);
    fatal("unknown device family `" + family + "` in device spec: " +
          text);
}

DeviceSpec
DeviceRegistry::specOf(const EmlConfig &config)
{
    DeviceSpec spec;
    spec.family = DeviceFamily::Eml;
    spec.eml = config;
    return spec;
}

DeviceSpec
DeviceRegistry::specOf(const GridConfig &config)
{
    DeviceSpec spec;
    spec.family = DeviceFamily::Grid;
    spec.grid = config;
    return spec;
}

std::shared_ptr<const TargetDevice>
DeviceRegistry::create(const DeviceSpec &spec, int num_qubits)
{
    if (spec.family == DeviceFamily::Eml)
        return createEml(spec.eml, num_qubits);
    return createGrid(spec.grid);
}

std::shared_ptr<const TargetDevice>
DeviceRegistry::create(const std::string &text, int num_qubits)
{
    return create(parse(text), num_qubits);
}

std::shared_ptr<const TargetDevice>
DeviceRegistry::tryCreate(const DeviceSpec &spec, int num_qubits,
                          std::string *error)
{
    try {
        // Also mute warn(): tryCreate runs in tuner probe bursts where
        // hundreds of expected failures would interleave warn chatter
        // from concurrent workers with the probe output.
        const ScopedFatalSilence quiet(/*silence_warns=*/true);
        return create(spec, num_qubits);
    } catch (const std::runtime_error &err) {
        if (error)
            *error = err.what();
        return nullptr;
    }
}

std::shared_ptr<const EmlDevice>
DeviceRegistry::createEml(const EmlConfig &config, int num_qubits)
{
    return std::make_shared<const EmlDevice>(config, num_qubits);
}

std::shared_ptr<const GridDevice>
DeviceRegistry::createGrid(const GridConfig &config)
{
    return std::make_shared<const GridDevice>(config);
}

std::string
DeviceRegistry::heteroSpec(const std::vector<EmlModuleMix> &mixes,
                           int trap_capacity)
{
    EmlConfig config;
    config.moduleMix = mixes;
    config.trapCapacity = trap_capacity;
    return emlSpecString(config);
}

} // namespace mussti
