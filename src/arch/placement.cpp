#include "arch/placement.h"

#include <algorithm>

#include "common/logging.h"

namespace mussti {

Placement::Placement(int num_qubits, int num_zones)
    : qubitZone_(num_qubits, -1), chains_(num_zones)
{
    MUSSTI_REQUIRE(num_qubits > 0, "placement needs qubits");
    MUSSTI_REQUIRE(num_zones > 0, "placement needs zones");
}

int
Placement::chainIndex(int qubit) const
{
    checkQubit(qubit);
    const int zone = qubitZone_[qubit];
    MUSSTI_ASSERT(zone >= 0, "chainIndex of unplaced qubit " << qubit);
    const int idx = chains_[zone].indexOf(qubit);
    MUSSTI_ASSERT(idx >= 0, "qubit " << qubit << " missing from its "
                  "zone chain (placement corrupted)");
    return idx;
}

int
Placement::extractionSwaps(int qubit) const
{
    const int zone = zoneOf(qubit);
    MUSSTI_ASSERT(zone >= 0, "extractionSwaps of unplaced qubit");
    const int idx = chainIndex(qubit);
    const int size = sizeOf(zone);
    return std::min(idx, size - 1 - idx);
}

ChainEnd
Placement::cheaperEnd(int qubit) const
{
    const int idx = chainIndex(qubit);
    const int size = sizeOf(zoneOf(qubit));
    return idx <= size - 1 - idx ? ChainEnd::Front : ChainEnd::Back;
}

void
Placement::insert(int qubit, int zone, ChainEnd end)
{
    checkQubit(qubit);
    checkZone(zone);
    MUSSTI_ASSERT(qubitZone_[qubit] < 0,
                  "insert of already-placed qubit " << qubit);
    auto &ions = chains_[zone].ions_;
    if (end == ChainEnd::Front)
        ions.insert(ions.begin(), qubit);
    else
        ions.push_back(qubit);
    qubitZone_[qubit] = zone;
}

void
Placement::removeAtEdge(int qubit)
{
    const int zone = zoneOf(qubit);
    MUSSTI_ASSERT(zone >= 0, "remove of unplaced qubit " << qubit);
    auto &ions = chains_[zone].ions_;
    if (!ions.empty() && ions.front() == qubit) {
        ions.erase(ions.begin());
    } else if (!ions.empty() && ions.back() == qubit) {
        ions.pop_back();
    } else {
        panic("removeAtEdge: qubit not at a chain edge");
    }
    qubitZone_[qubit] = -1;
}

void
Placement::removeAnywhere(int qubit)
{
    const int zone = zoneOf(qubit);
    MUSSTI_ASSERT(zone >= 0, "remove of unplaced qubit " << qubit);
    auto &ions = chains_[zone].ions_;
    const int idx = chains_[zone].indexOf(qubit);
    MUSSTI_ASSERT(idx >= 0, "placement corrupted");
    ions.erase(ions.begin() + idx);
    qubitZone_[qubit] = -1;
}

void
Placement::swapToward(int qubit, ChainEnd end)
{
    const int zone = zoneOf(qubit);
    MUSSTI_ASSERT(zone >= 0, "swapToward of unplaced qubit");
    auto &ions = chains_[zone].ions_;
    const int idx = chainIndex(qubit);
    if (end == ChainEnd::Front) {
        MUSSTI_ASSERT(idx > 0, "swapToward front at front already");
        std::swap(ions[idx], ions[idx - 1]);
    } else {
        MUSSTI_ASSERT(idx + 1 < sizeOf(zone),
                      "swapToward back at back already");
        std::swap(ions[idx], ions[idx + 1]);
    }
}

void
Placement::swapAt(int zone, int idx_a, int idx_b)
{
    checkZone(zone);
    auto &ions = chains_[zone].ions_;
    const int size = chains_[zone].size();
    MUSSTI_ASSERT(idx_a >= 0 && idx_a < size && idx_b >= 0 &&
                  idx_b < size && (idx_a - idx_b == 1 ||
                                   idx_b - idx_a == 1),
                  "swapAt wants adjacent in-range slots, got " << idx_a
                  << ", " << idx_b << " in a chain of " << size);
    std::swap(ions[idx_a], ions[idx_b]);
}

void
Placement::exchange(int qubit_a, int qubit_b)
{
    checkQubit(qubit_a);
    checkQubit(qubit_b);
    const int zone_a = qubitZone_[qubit_a];
    const int zone_b = qubitZone_[qubit_b];
    MUSSTI_ASSERT(zone_a >= 0 && zone_b >= 0,
                  "exchange of unplaced qubits");
    const int idx_a = chains_[zone_a].indexOf(qubit_a);
    const int idx_b = chains_[zone_b].indexOf(qubit_b);
    MUSSTI_ASSERT(idx_a >= 0 && idx_b >= 0,
                  "placement corrupted in exchange");
    chains_[zone_a].ions_[idx_a] = qubit_b;
    chains_[zone_b].ions_[idx_b] = qubit_a;
    std::swap(qubitZone_[qubit_a], qubitZone_[qubit_b]);
}

bool
Placement::allPlaced() const
{
    return std::all_of(qubitZone_.begin(), qubitZone_.end(),
                       [](int z) { return z >= 0; });
}

void
Placement::restoreChains(const std::vector<std::vector<int>> &chains)
{
    MUSSTI_REQUIRE(static_cast<int>(chains.size()) <= numZones(),
                   "chain snapshot spans " << chains.size()
                   << " zones, placement has " << numZones());
    std::fill(qubitZone_.begin(), qubitZone_.end(), -1);
    for (int z = 0; z < numZones(); ++z) {
        auto &ions = chains_[z].ions_;
        ions.clear();
        if (z >= static_cast<int>(chains.size()))
            continue;
        for (int q : chains[z]) {
            checkQubit(q);
            MUSSTI_ASSERT(qubitZone_[q] < 0, "qubit " << q
                          << " appears twice in the chain snapshot");
            ions.push_back(q);
            qubitZone_[q] = z;
        }
    }
}

void
Placement::reserveChains(const std::vector<ZoneInfo> &zones)
{
    const int count = std::min(numZones(),
                               static_cast<int>(zones.size()));
    for (int z = 0; z < count; ++z)
        chains_[z].reserveTo(zones[z].capacity);
}

} // namespace mussti
