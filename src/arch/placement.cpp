#include "arch/placement.h"

#include <algorithm>

#include "common/logging.h"

namespace mussti {

Placement::Placement(int num_qubits, int num_zones)
    : qubitZone_(num_qubits, -1), chains_(num_zones)
{
    MUSSTI_REQUIRE(num_qubits > 0, "placement needs qubits");
    MUSSTI_REQUIRE(num_zones > 0, "placement needs zones");
}

int
Placement::chainIndex(int qubit) const
{
    checkQubit(qubit);
    const int zone = qubitZone_[qubit];
    MUSSTI_ASSERT(zone >= 0, "chainIndex of unplaced qubit " << qubit);
    const auto &ch = chains_[zone];
    const auto it = std::find(ch.begin(), ch.end(), qubit);
    MUSSTI_ASSERT(it != ch.end(), "qubit " << qubit << " missing from its "
                  "zone chain (placement corrupted)");
    return static_cast<int>(it - ch.begin());
}

int
Placement::extractionSwaps(int qubit) const
{
    const int zone = zoneOf(qubit);
    MUSSTI_ASSERT(zone >= 0, "extractionSwaps of unplaced qubit");
    const int idx = chainIndex(qubit);
    const int size = sizeOf(zone);
    return std::min(idx, size - 1 - idx);
}

ChainEnd
Placement::cheaperEnd(int qubit) const
{
    const int idx = chainIndex(qubit);
    const int size = sizeOf(zoneOf(qubit));
    return idx <= size - 1 - idx ? ChainEnd::Front : ChainEnd::Back;
}

void
Placement::insert(int qubit, int zone, ChainEnd end)
{
    checkQubit(qubit);
    checkZone(zone);
    MUSSTI_ASSERT(qubitZone_[qubit] < 0,
                  "insert of already-placed qubit " << qubit);
    if (end == ChainEnd::Front)
        chains_[zone].push_front(qubit);
    else
        chains_[zone].push_back(qubit);
    qubitZone_[qubit] = zone;
}

void
Placement::removeAtEdge(int qubit)
{
    const int zone = zoneOf(qubit);
    MUSSTI_ASSERT(zone >= 0, "remove of unplaced qubit " << qubit);
    auto &ch = chains_[zone];
    if (!ch.empty() && ch.front() == qubit) {
        ch.pop_front();
    } else if (!ch.empty() && ch.back() == qubit) {
        ch.pop_back();
    } else {
        panic("removeAtEdge: qubit not at a chain edge");
    }
    qubitZone_[qubit] = -1;
}

void
Placement::removeAnywhere(int qubit)
{
    const int zone = zoneOf(qubit);
    MUSSTI_ASSERT(zone >= 0, "remove of unplaced qubit " << qubit);
    auto &ch = chains_[zone];
    const auto it = std::find(ch.begin(), ch.end(), qubit);
    MUSSTI_ASSERT(it != ch.end(), "placement corrupted");
    ch.erase(it);
    qubitZone_[qubit] = -1;
}

void
Placement::swapToward(int qubit, ChainEnd end)
{
    const int zone = zoneOf(qubit);
    MUSSTI_ASSERT(zone >= 0, "swapToward of unplaced qubit");
    auto &ch = chains_[zone];
    const int idx = chainIndex(qubit);
    if (end == ChainEnd::Front) {
        MUSSTI_ASSERT(idx > 0, "swapToward front at front already");
        std::swap(ch[idx], ch[idx - 1]);
    } else {
        MUSSTI_ASSERT(idx + 1 < sizeOf(zone),
                      "swapToward back at back already");
        std::swap(ch[idx], ch[idx + 1]);
    }
}

void
Placement::exchange(int qubit_a, int qubit_b)
{
    checkQubit(qubit_a);
    checkQubit(qubit_b);
    const int zone_a = qubitZone_[qubit_a];
    const int zone_b = qubitZone_[qubit_b];
    MUSSTI_ASSERT(zone_a >= 0 && zone_b >= 0,
                  "exchange of unplaced qubits");
    auto &chain_a = chains_[zone_a];
    auto &chain_b = chains_[zone_b];
    const auto it_a = std::find(chain_a.begin(), chain_a.end(), qubit_a);
    const auto it_b = std::find(chain_b.begin(), chain_b.end(), qubit_b);
    MUSSTI_ASSERT(it_a != chain_a.end() && it_b != chain_b.end(),
                  "placement corrupted in exchange");
    std::iter_swap(it_a, it_b);
    std::swap(qubitZone_[qubit_a], qubitZone_[qubit_b]);
}

bool
Placement::allPlaced() const
{
    return std::all_of(qubitZone_.begin(), qubitZone_.end(),
                       [](int z) { return z >= 0; });
}

} // namespace mussti
