#include "arch/zone.h"

#include "common/logging.h"

namespace mussti {

int
zoneLevel(ZoneKind kind)
{
    switch (kind) {
      case ZoneKind::Storage: return 0;
      case ZoneKind::Operation: return 1;
      case ZoneKind::Optical: return 2;
    }
    panic("unhandled ZoneKind in zoneLevel");
}

bool
isGateCapable(ZoneKind kind)
{
    return kind != ZoneKind::Storage;
}

const char *
zoneKindName(ZoneKind kind)
{
    switch (kind) {
      case ZoneKind::Storage: return "storage";
      case ZoneKind::Operation: return "operation";
      case ZoneKind::Optical: return "optical";
    }
    panic("unhandled ZoneKind in zoneKindName");
}

} // namespace mussti
