#include "arch/target_device.h"

#include <algorithm>
#include <deque>

namespace mussti {

const char *
deviceFamilyName(DeviceFamily family)
{
    switch (family) {
      case DeviceFamily::Eml: return "eml";
      case DeviceFamily::Grid: return "grid";
    }
    panic("unknown device family");
}

void
TargetDevice::finalizeTopology(std::vector<ZoneInfo> zones,
                               const std::vector<std::pair<int, int>> &edges)
{
    MUSSTI_ASSERT(hopTable_.empty(), "finalizeTopology called twice");
    MUSSTI_ASSERT(!zones.empty(), "device has no zones");
    // The all-pairs hop table is O(zones^2) memory (4 KB at the paper's
    // scales, 16 MB at the cap below). Specs are user input, so refuse
    // topologies whose table would dwarf the compilation itself instead
    // of silently allocating gigabytes for a grid:256x256 typo.
    MUSSTI_REQUIRE(zones.size() <= 2048,
                   "device has " << zones.size() << " zones; the "
                   "precomputed adjacency/hop tables support at most "
                   "2048 — shrink the device spec");
    zones_ = std::move(zones);

    const int nz = numZones();
    numModules_ = 0;
    slotCount_ = 0;
    for (const ZoneInfo &info : zones_) {
        numModules_ = std::max(numModules_, info.module + 1);
        slotCount_ += info.capacity;
    }

    // CSR adjacency from the undirected edge list (counting pass, then
    // placement pass; neighbour order follows edge-list order so the
    // derived class controls determinism).
    std::vector<int> degree(nz, 0);
    for (const auto &[a, b] : edges) {
        MUSSTI_ASSERT(a >= 0 && a < nz && b >= 0 && b < nz && a != b,
                      "bad adjacency edge " << a << " -- " << b);
        ++degree[a];
        ++degree[b];
    }
    adjacencyOffsets_.assign(nz + 1, 0);
    for (int z = 0; z < nz; ++z)
        adjacencyOffsets_[z + 1] = adjacencyOffsets_[z] + degree[z];
    adjacency_.assign(adjacencyOffsets_[nz], -1);
    std::vector<int> cursor(adjacencyOffsets_.begin(),
                            adjacencyOffsets_.end() - 1);
    for (const auto &[a, b] : edges) {
        adjacency_[cursor[a]++] = b;
        adjacency_[cursor[b]++] = a;
    }

    // All-pairs hop distances: one BFS per source over the CSR lists.
    hopTable_.assign(static_cast<std::size_t>(nz) * nz, -1);
    std::deque<int> queue;
    for (int src = 0; src < nz; ++src) {
        int *row = hopTable_.data() + static_cast<std::size_t>(src) * nz;
        row[src] = 0;
        queue.clear();
        queue.push_back(src);
        while (!queue.empty()) {
            const int at = queue.front();
            queue.pop_front();
            for (int next : neighbors(at)) {
                if (row[next] < 0) {
                    row[next] = row[at] + 1;
                    queue.push_back(next);
                }
            }
        }
    }
}

} // namespace mussti
