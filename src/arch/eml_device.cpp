#include "arch/eml_device.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace mussti {

EmlDevice::EmlDevice(const EmlConfig &config, int num_qubits)
    : config_(config), numQubits_(num_qubits)
{
    MUSSTI_REQUIRE(num_qubits > 0, "device needs a positive qubit count");
    MUSSTI_REQUIRE(config.trapCapacity >= 2,
                   "trap capacity must be >= 2 (two-qubit gates need "
                   "co-located ions)");
    MUSSTI_REQUIRE(config.numOperationZones >= 1,
                   "each module needs an operation zone");
    MUSSTI_REQUIRE(config.numOpticalZones >= 1,
                   "each module needs an optical zone");

    numModules_ = config.forcedNumModules >= 1
        ? config.forcedNumModules
        : (num_qubits + config.maxQubitsPerModule - 1) /
              config.maxQubitsPerModule;

    const int zones_per_module = config.numStorageZones +
        config.numOperationZones + config.numOpticalZones;
    const int slots_per_module = zones_per_module * config.trapCapacity;

    // Capacity sanity: the per-module qubit share must fit with at least
    // one free slot per gate zone so routing can always make progress.
    const int max_assigned = std::min(config.maxQubitsPerModule,
                                      num_qubits);
    MUSSTI_REQUIRE(slots_per_module >= max_assigned + 2,
                   "module slots (" << slots_per_module
                   << ") cannot hold per-module qubits (" << max_assigned
                   << ") plus routing headroom; enlarge capacity or add "
                   "zones");

    moduleZones_.resize(numModules_);
    for (int m = 0; m < numModules_; ++m) {
        // Spatial order: storage half, operation, optical, storage half.
        std::vector<ZoneKind> order;
        const int lead_storage = config.numStorageZones / 2;
        for (int i = 0; i < lead_storage; ++i)
            order.push_back(ZoneKind::Storage);
        for (int i = 0; i < config.numOperationZones; ++i)
            order.push_back(ZoneKind::Operation);
        for (int i = 0; i < config.numOpticalZones; ++i)
            order.push_back(ZoneKind::Optical);
        for (int i = lead_storage; i < config.numStorageZones; ++i)
            order.push_back(ZoneKind::Storage);

        for (std::size_t slot = 0; slot < order.size(); ++slot) {
            ZoneInfo info;
            info.kind = order[slot];
            info.module = m;
            info.capacity = config.trapCapacity;
            info.positionUm = static_cast<double>(slot) * config.zonePitchUm;
            moduleZones_[m].push_back(static_cast<int>(zones_.size()));
            zones_.push_back(info);
        }
    }

    // Zone-distance lookup: distanceUm sits inside the router's
    // plan-costing loops, so resolve the geometry once here. Cross-
    // module pairs stay -1 (ions never shuttle between modules).
    const int nz = numZones();
    zoneDistanceUm_.assign(static_cast<std::size_t>(nz) * nz, -1.0);
    for (int m = 0; m < numModules_; ++m) {
        for (int a : moduleZones_[m]) {
            for (int b : moduleZones_[m]) {
                zoneDistanceUm_[static_cast<std::size_t>(a) * nz + b] =
                    std::fabs(zones_[a].positionUm - zones_[b].positionUm);
            }
        }
    }
}

const std::vector<int> &
EmlDevice::zonesOfModule(int module) const
{
    MUSSTI_ASSERT(module >= 0 && module < numModules_,
                  "module " << module << " out of range");
    return moduleZones_[module];
}

std::vector<int>
EmlDevice::zonesOfKind(int module, ZoneKind kind) const
{
    std::vector<int> out;
    for (int z : zonesOfModule(module)) {
        if (zones_[z].kind == kind)
            out.push_back(z);
    }
    return out;
}

std::vector<int>
EmlDevice::gateZonesOfModule(int module) const
{
    std::vector<int> out;
    for (int z : zonesOfModule(module)) {
        if (zones_[z].gateCapable())
            out.push_back(z);
    }
    return out;
}

double
EmlDevice::distanceUm(int zone_a, int zone_b) const
{
    MUSSTI_ASSERT(zone_a >= 0 && zone_a < numZones() && zone_b >= 0 &&
                  zone_b < numZones(),
                  "distanceUm zone out of range: " << zone_a << ", "
                  << zone_b);
    const double distance =
        zoneDistanceUm_[static_cast<std::size_t>(zone_a) * numZones() +
                        zone_b];
    MUSSTI_ASSERT(distance >= 0.0,
                  "distanceUm across modules "
                  << zones_[zone_a].module << " and "
                  << zones_[zone_b].module
                  << "; ions cannot shuttle between modules");
    return distance;
}

bool
EmlDevice::fiberLinked(int zone_a, int zone_b) const
{
    const ZoneInfo &a = zone(zone_a);
    const ZoneInfo &b = zone(zone_b);
    return a.kind == ZoneKind::Optical && b.kind == ZoneKind::Optical &&
           a.module != b.module;
}

int
EmlDevice::moduleSlotCount(int module) const
{
    int slots = 0;
    for (int z : zonesOfModule(module))
        slots += zones_[z].capacity;
    return slots;
}

std::pair<int, int>
EmlDevice::moduleQubitRange(int module) const
{
    const int per = config_.maxQubitsPerModule;
    const int lo = module * per;
    const int hi = std::min(numQubits_, lo + per);
    return {lo, std::max(lo, hi)};
}

} // namespace mussti
