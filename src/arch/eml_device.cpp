#include "arch/eml_device.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/logging.h"
#include "common/string_util.h"

namespace mussti {

namespace {

/** The zone mix of module `m` under the config (uniform or per-module). */
EmlModuleMix
mixOfModule(const EmlConfig &config, int m)
{
    if (!config.moduleMix.empty())
        return config.moduleMix[m];
    return {config.numStorageZones, config.numOperationZones,
            config.numOpticalZones};
}

} // namespace

EmlDevice::EmlDevice(const EmlConfig &config, int num_qubits)
    : TargetDevice(DeviceFamily::Eml), config_(config),
      numQubits_(num_qubits)
{
    MUSSTI_REQUIRE(num_qubits > 0, "device needs a positive qubit count");
    MUSSTI_REQUIRE(config.trapCapacity >= 2,
                   "trap capacity must be >= 2 (two-qubit gates need "
                   "co-located ions)");

    int num_modules;
    if (!config.moduleMix.empty()) {
        num_modules = static_cast<int>(config.moduleMix.size());
        MUSSTI_REQUIRE(config.forcedNumModules < 1 ||
                       config.forcedNumModules == num_modules,
                       "forcedNumModules (" << config.forcedNumModules
                       << ") disagrees with the heterogeneous module mix ("
                       << num_modules << " modules)");
    } else {
        num_modules = config.forcedNumModules >= 1
            ? config.forcedNumModules
            : (num_qubits + config.maxQubitsPerModule - 1) /
                  config.maxQubitsPerModule;
    }
    for (int m = 0; m < num_modules; ++m) {
        const EmlModuleMix mix = mixOfModule(config, m);
        MUSSTI_REQUIRE(mix.operation >= 1,
                       "module " << m << " needs an operation zone");
        MUSSTI_REQUIRE(mix.optical >= 1,
                       "module " << m << " needs an optical zone");
        MUSSTI_REQUIRE(mix.storage >= 0,
                       "module " << m << " has a negative storage count");
    }

    std::vector<ZoneInfo> zones;
    std::vector<std::pair<int, int>> edges;
    moduleZones_.resize(num_modules);
    for (int m = 0; m < num_modules; ++m) {
        const EmlModuleMix mix = mixOfModule(config, m);

        // Capacity sanity: the module's qubit share must fit with at
        // least one free slot per gate zone so routing can always make
        // progress.
        const int zones_per_module = mix.storage + mix.operation +
            mix.optical;
        const int slots_per_module = zones_per_module *
            config.trapCapacity;
        const int lo = m * config.maxQubitsPerModule;
        const int hi = std::min(num_qubits,
                                lo + config.maxQubitsPerModule);
        const int assigned = std::max(0, hi - lo);
        MUSSTI_REQUIRE(assigned == 0 || slots_per_module >= assigned + 2,
                       "module " << m << " slots (" << slots_per_module
                       << ") cannot hold its qubit share (" << assigned
                       << ") plus routing headroom; enlarge capacity or "
                       "add zones");

        // Spatial order: storage half, operation, optical, storage half.
        std::vector<ZoneKind> order;
        const int lead_storage = mix.storage / 2;
        for (int i = 0; i < lead_storage; ++i)
            order.push_back(ZoneKind::Storage);
        for (int i = 0; i < mix.operation; ++i)
            order.push_back(ZoneKind::Operation);
        for (int i = 0; i < mix.optical; ++i)
            order.push_back(ZoneKind::Optical);
        for (int i = lead_storage; i < mix.storage; ++i)
            order.push_back(ZoneKind::Storage);

        for (std::size_t slot = 0; slot < order.size(); ++slot) {
            ZoneInfo info;
            info.kind = order[slot];
            info.module = m;
            info.capacity = config.trapCapacity;
            info.positionUm = static_cast<double>(slot) * config.zonePitchUm;
            const int zone_id = static_cast<int>(zones.size());
            if (slot > 0)
                edges.emplace_back(zone_id - 1, zone_id);
            moduleZones_[m].push_back(zone_id);
            zones.push_back(info);
        }
    }
    MUSSTI_REQUIRE(static_cast<long long>(num_modules) *
                       config.maxQubitsPerModule >= num_qubits,
                   "device of " << num_modules << " modules cannot hold "
                   << num_qubits << " qubits at " <<
                   config.maxQubitsPerModule << " per module");

    finalizeTopology(std::move(zones), edges);

    // Per-module kind and gate-capability indices: the router queries
    // these inside its plan-costing loops, so resolve them once.
    for (auto &by_kind : moduleZonesByKind_)
        by_kind.resize(num_modules);
    moduleGateZones_.resize(num_modules);
    for (int m = 0; m < num_modules; ++m) {
        for (int z : moduleZones_[m]) {
            moduleZonesByKind_[zoneLevel(zone(z).kind)][m].push_back(z);
            if (zone(z).gateCapable())
                moduleGateZones_[m].push_back(z);
        }
    }

    // Zone-distance lookup: distanceUm sits inside the router's
    // plan-costing loops, so resolve the geometry once here. Cross-
    // module pairs stay -1 (ions never shuttle between modules).
    const int nz = numZones();
    zoneDistanceUm_.assign(static_cast<std::size_t>(nz) * nz, -1.0);
    for (int m = 0; m < num_modules; ++m) {
        for (int a : moduleZones_[m]) {
            for (int b : moduleZones_[m]) {
                zoneDistanceUm_[static_cast<std::size_t>(a) * nz + b] =
                    std::fabs(zone(a).positionUm - zone(b).positionUm);
            }
        }
    }
}

const std::vector<int> &
EmlDevice::zonesOfModule(int module) const
{
    MUSSTI_ASSERT(module >= 0 && module < numModules(),
                  "module " << module << " out of range");
    return moduleZones_[module];
}

const std::vector<int> &
EmlDevice::zonesOfKind(int module, ZoneKind kind) const
{
    MUSSTI_ASSERT(module >= 0 && module < numModules(),
                  "module " << module << " out of range");
    return moduleZonesByKind_[zoneLevel(kind)][module];
}

const std::vector<int> &
EmlDevice::gateZonesOfModule(int module) const
{
    MUSSTI_ASSERT(module >= 0 && module < numModules(),
                  "module " << module << " out of range");
    return moduleGateZones_[module];
}

double
EmlDevice::distanceUm(int zone_a, int zone_b) const
{
    MUSSTI_ASSERT(zone_a >= 0 && zone_a < numZones() && zone_b >= 0 &&
                  zone_b < numZones(),
                  "distanceUm zone out of range: " << zone_a << ", "
                  << zone_b);
    const double distance =
        zoneDistanceUm_[static_cast<std::size_t>(zone_a) * numZones() +
                        zone_b];
    MUSSTI_ASSERT(distance >= 0.0,
                  "distanceUm across modules "
                  << zone(zone_a).module << " and "
                  << zone(zone_b).module
                  << "; ions cannot shuttle between modules");
    return distance;
}

bool
EmlDevice::fiberLinked(int zone_a, int zone_b) const
{
    const ZoneInfo &a = zone(zone_a);
    const ZoneInfo &b = zone(zone_b);
    return a.kind == ZoneKind::Optical && b.kind == ZoneKind::Optical &&
           a.module != b.module;
}

int
EmlDevice::moduleSlotCount(int module) const
{
    int slots = 0;
    for (int z : zonesOfModule(module))
        slots += zone(z).capacity;
    return slots;
}

std::pair<int, int>
EmlDevice::moduleQubitRange(int module) const
{
    const int per = config_.maxQubitsPerModule;
    const int lo = module * per;
    const int hi = std::min(numQubits_, lo + per);
    return {lo, std::max(lo, hi)};
}

std::string
emlSpecString(const EmlConfig &config)
{
    std::ostringstream out;
    out << "eml:";
    if (!config.moduleMix.empty()) {
        out << "hetero=";
        for (std::size_t m = 0; m < config.moduleMix.size(); ++m) {
            const EmlModuleMix &mix = config.moduleMix[m];
            if (m > 0)
                out << "-";
            out << mix.storage << "." << mix.operation << "."
                << mix.optical;
        }
        out << ",cap=" << config.trapCapacity;
    } else {
        out << "cap=" << config.trapCapacity
            << ",storage=" << config.numStorageZones
            << ",op=" << config.numOperationZones
            << ",optical=" << config.numOpticalZones;
        if (config.forcedNumModules >= 1)
            out << ",modules=" << config.forcedNumModules;
    }
    out << ",maxq=" << config.maxQubitsPerModule;
    if (config.zonePitchUm != 200.0)
        out << ",pitch=" << formatCompact(config.zonePitchUm);
    return out.str();
}

std::string
EmlDevice::spec() const
{
    return emlSpecString(config_);
}

std::string
EmlDevice::describe() const
{
    std::ostringstream out;
    out << "EML-QCCD" << (config_.moduleMix.empty() ? "" : " (heterogeneous)")
        << ": " << numModules() << " module(s), " << numZones()
        << " zones, trap capacity " << config_.trapCapacity << ", "
        << slotCount() << " slots";
    return out.str();
}

} // namespace mussti
