/**
 * @file
 * Search spaces over DeviceRegistry specs: the registry grammar
 * extended with value ranges, so a single compact string names a whole
 * family of candidate devices for the tuner to sweep.
 *
 * Grammar (a superset of the concrete spec grammar — see
 * device_registry.h and arch/README.md):
 *
 *   search      := family ':' token [',' token ...]
 *   token       := <key> '=' range | <key> '=' <value>
 *                | 'hetero=' mixlist ['|' mixlist ...]
 *                | <W>x<H>                       (grid geometry, fixed)
 *   range       := <lo> '..' <hi> [':step=' <n>]   (ints, step >= 1)
 *
 * e.g. `eml:modules=2..8,cap=8..32:step=8` enumerates 7 x 4 = 28
 * candidates, and `eml:hetero=2.1.1-2.1.1|2.1.2-2.1.1,cap=12..16:step=4`
 * crosses two heterogeneous mixes with two capacities. Keys without a
 * range pass through fixed. Malformed ranges (missing bound, lo > hi,
 * bad step) fatal() with a diagnostic naming the offending token, like
 * the registry's own parse. Every enumerated candidate is validated by
 * DeviceRegistry::parse, so the search grammar can never construct a
 * spec the registry would reject.
 */
#ifndef MUSSTI_ARCH_SPEC_SEARCH_H
#define MUSSTI_ARCH_SPEC_SEARCH_H

#include <cstddef>
#include <string>
#include <vector>

#include "arch/device_registry.h"

namespace mussti {

/**
 * One searchable key of a spec search space: the candidate value texts
 * in enumeration order. A fixed token is an axis with one value; the
 * grid geometry token renders with an empty key.
 */
struct SpecSearchAxis
{
    std::string key;
    std::vector<std::string> values;
};

/** A parsed search space over device specs. */
struct SpecSearchSpace
{
    std::string family;              ///< "eml" or "grid".
    std::vector<SpecSearchAxis> axes; ///< In token order of the input.

    /**
     * The enumerated candidates, filled by parseSpecSearch() (its
     * validation pass IS the enumeration, so consumers — the tuner —
     * reuse it instead of re-running enumerate()).
     */
    std::vector<DeviceSpec> candidates;

    /** Number of candidate specs (product of axis sizes; >= 1). */
    std::size_t size() const;

    /**
     * Every candidate DeviceSpec, in deterministic odometer order: the
     * last axis varies fastest, values in listed (ascending) order.
     * Each candidate round-trips through DeviceRegistry::parse.
     */
    std::vector<DeviceSpec> enumerate() const;

    /** One-line human summary ("eml search, 3 axes, 28 candidates"). */
    std::string describe() const;
};

/** Candidate-count ceiling enumerate() enforces (runaway-range guard). */
inline constexpr std::size_t kMaxSearchCandidates = 4096;

/**
 * Parse the search grammar; fatal() names the offending token on
 * malformed input (unknown range suffix, missing bound, lo > hi,
 * step < 1, duplicate keys).
 */
SpecSearchSpace parseSpecSearch(const std::string &text);

} // namespace mussti

#endif // MUSSTI_ARCH_SPEC_SEARCH_H
