#include "arch/grid_device.h"

#include <cmath>

#include "common/logging.h"

namespace mussti {

GridDevice::GridDevice(const GridConfig &config) : config_(config)
{
    MUSSTI_REQUIRE(config.width >= 1 && config.height >= 1,
                   "grid needs positive dimensions");
    MUSSTI_REQUIRE(config.trapCapacity > 0, "trap capacity must be > 0");
    for (int t = 0; t < numTraps(); ++t) {
        ZoneInfo info;
        info.kind = ZoneKind::Operation;
        info.module = 0;
        info.capacity = config.trapCapacity;
        // 1D projection of the 2D position; hop metrics use row/col.
        info.positionUm = (rowOf(t) + colOf(t)) * config.pitchUm;
        zones_.push_back(info);
    }
}

std::vector<int>
GridDevice::neighbors(int trap) const
{
    std::vector<int> out;
    const int row = rowOf(trap);
    const int col = colOf(trap);
    if (row > 0)
        out.push_back(trapAt(row - 1, col));
    if (row + 1 < config_.height)
        out.push_back(trapAt(row + 1, col));
    if (col > 0)
        out.push_back(trapAt(row, col - 1));
    if (col + 1 < config_.width)
        out.push_back(trapAt(row, col + 1));
    return out;
}

int
GridDevice::hopDistance(int trap_a, int trap_b) const
{
    return std::abs(rowOf(trap_a) - rowOf(trap_b)) +
           std::abs(colOf(trap_a) - colOf(trap_b));
}

std::vector<int>
GridDevice::path(int from, int to) const
{
    std::vector<int> out;
    int row = rowOf(from);
    int col = colOf(from);
    while (row != rowOf(to)) {
        row += rowOf(to) > row ? 1 : -1;
        out.push_back(trapAt(row, col));
    }
    while (col != colOf(to)) {
        col += colOf(to) > col ? 1 : -1;
        out.push_back(trapAt(row, col));
    }
    return out;
}

} // namespace mussti
