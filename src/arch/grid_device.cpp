#include "arch/grid_device.h"

#include <sstream>

#include "common/logging.h"
#include "common/string_util.h"

namespace mussti {

GridDevice::GridDevice(const GridConfig &config)
    : TargetDevice(DeviceFamily::Grid), config_(config)
{
    MUSSTI_REQUIRE(config.width >= 1 && config.height >= 1,
                   "grid needs positive dimensions");
    MUSSTI_REQUIRE(config.trapCapacity > 0, "trap capacity must be > 0");

    std::vector<ZoneInfo> zones;
    std::vector<std::pair<int, int>> edges;
    for (int t = 0; t < numTraps(); ++t) {
        ZoneInfo info;
        info.kind = ZoneKind::Operation;
        info.module = 0;
        info.capacity = config.trapCapacity;
        // 1D projection of the 2D position; hop metrics use row/col.
        info.positionUm = (rowOf(t) + colOf(t)) * config.pitchUm;
        zones.push_back(info);
        // Undirected lattice edges, emitted once per pair. Neighbour
        // order per trap: up, left precede down, right via edge order
        // (up/left edges were emitted by the earlier endpoint).
        if (rowOf(t) + 1 < config.height)
            edges.emplace_back(t, trapAt(rowOf(t) + 1, colOf(t)));
        if (colOf(t) + 1 < config.width)
            edges.emplace_back(t, trapAt(rowOf(t), colOf(t) + 1));
    }
    finalizeTopology(std::move(zones), edges);
}

std::vector<int>
GridDevice::path(int from, int to) const
{
    std::vector<int> out;
    int row = rowOf(from);
    int col = colOf(from);
    while (row != rowOf(to)) {
        row += rowOf(to) > row ? 1 : -1;
        out.push_back(trapAt(row, col));
    }
    while (col != colOf(to)) {
        col += colOf(to) > col ? 1 : -1;
        out.push_back(trapAt(row, col));
    }
    return out;
}

std::string
gridSpecString(const GridConfig &config)
{
    std::ostringstream out;
    out << "grid:" << config.width << "x" << config.height
        << ",cap=" << config.trapCapacity;
    if (config.pitchUm != 200.0)
        out << ",pitch=" << formatCompact(config.pitchUm);
    return out.str();
}

std::string
GridDevice::spec() const
{
    return gridSpecString(config_);
}

std::string
GridDevice::describe() const
{
    std::ostringstream out;
    out << "grid QCCD: " << config_.width << "x" << config_.height
        << " traps, trap capacity " << config_.trapCapacity << ", "
        << slotCount() << " slots";
    return out.str();
}

} // namespace mussti
