/**
 * @file
 * Monolithic QCCD grid device (paper Fig 1b), the substrate the baseline
 * compilers [55], [13], [70] run on. W x H traps connected through an
 * X-junction lattice; every trap is gate-capable; ions shuttle hop by hop
 * between 4-neighbours.
 *
 * Adjacency and hop distances come from the TargetDevice base:
 * neighbors() is an index view into the shared CSR lists and
 * hopDistance() is an O(1) table lookup (BFS over the lattice equals
 * the Manhattan metric), so the baselines' relocation inner loops never
 * recompute row/column arithmetic.
 */
#ifndef MUSSTI_ARCH_GRID_DEVICE_H
#define MUSSTI_ARCH_GRID_DEVICE_H

#include <string>
#include <vector>

#include "arch/target_device.h"
#include "arch/zone.h"

namespace mussti {

/** Construction parameters for a grid QCCD. */
struct GridConfig
{
    int width = 2;            ///< Traps per row.
    int height = 2;           ///< Rows.
    int trapCapacity = 16;    ///< Ions per trap.
    double pitchUm = 200.0;   ///< Trap center spacing.
};

/**
 * Canonical DeviceRegistry spec string of a grid config (the single
 * producer behind GridDevice::spec() and DeviceSpec::canonical()).
 */
std::string gridSpecString(const GridConfig &config);

/** Immutable grid topology; traps are zones with ZoneKind::Operation. */
class GridDevice : public TargetDevice
{
  public:
    explicit GridDevice(const GridConfig &config);

    const GridConfig &config() const { return config_; }
    int numTraps() const { return config_.width * config_.height; }
    int width() const { return config_.width; }
    int height() const { return config_.height; }

    /** Row/column of a trap. */
    int rowOf(int trap) const { return trap / config_.width; }
    int colOf(int trap) const { return trap % config_.width; }
    int trapAt(int row, int col) const { return row * config_.width + col; }

    /** The central trap (the MQT-style dedicated processing zone). */
    int centerTrap() const
    {
        return trapAt(config_.height / 2, config_.width / 2);
    }

    /**
     * A shortest hop path from `from` to `to`, excluding `from` and
     * including `to`; row-first then column (deterministic).
     */
    std::vector<int> path(int from, int to) const;

    std::string spec() const override;
    std::string describe() const override;

  private:
    GridConfig config_;
};

} // namespace mussti

#endif // MUSSTI_ARCH_GRID_DEVICE_H
