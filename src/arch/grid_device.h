/**
 * @file
 * Monolithic QCCD grid device (paper Fig 1b), the substrate the baseline
 * compilers [55], [13], [70] run on. W x H traps connected through an
 * X-junction lattice; every trap is gate-capable; ions shuttle hop by hop
 * between 4-neighbours.
 */
#ifndef MUSSTI_ARCH_GRID_DEVICE_H
#define MUSSTI_ARCH_GRID_DEVICE_H

#include <vector>

#include "arch/zone.h"

namespace mussti {

/** Construction parameters for a grid QCCD. */
struct GridConfig
{
    int width = 2;            ///< Traps per row.
    int height = 2;           ///< Rows.
    int trapCapacity = 16;    ///< Ions per trap.
    double pitchUm = 200.0;   ///< Trap center spacing.
};

/** Immutable grid topology; traps are zones with ZoneKind::Operation. */
class GridDevice
{
  public:
    explicit GridDevice(const GridConfig &config);

    const GridConfig &config() const { return config_; }
    int numTraps() const { return config_.width * config_.height; }
    int width() const { return config_.width; }
    int height() const { return config_.height; }

    /** Zone descriptors; all traps are gate-capable, module 0. */
    const std::vector<ZoneInfo> &zoneInfos() const { return zones_; }

    /** Row/column of a trap. */
    int rowOf(int trap) const { return trap / config_.width; }
    int colOf(int trap) const { return trap % config_.width; }
    int trapAt(int row, int col) const { return row * config_.width + col; }

    /** 4-neighbourhood of a trap. */
    std::vector<int> neighbors(int trap) const;

    /** Manhattan hop distance between two traps. */
    int hopDistance(int trap_a, int trap_b) const;

    /**
     * A shortest hop path from `from` to `to`, excluding `from` and
     * including `to`; row-first then column (deterministic).
     */
    std::vector<int> path(int from, int to) const;

    /** Total ion slots on the device. */
    int slotCount() const { return numTraps() * config_.trapCapacity; }

  private:
    GridConfig config_;
    std::vector<ZoneInfo> zones_;
};

} // namespace mussti

#endif // MUSSTI_ARCH_GRID_DEVICE_H
