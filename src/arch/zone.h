/**
 * @file
 * Zone taxonomy of the EML-QCCD architecture (paper section 2.2, Fig 2).
 *
 * Each trap in a module is dedicated to one role:
 *  - Storage (level 0): holds idle ions; no laser access, no gates.
 *  - Operation (level 1): integrated waveguides; local MS gates among the
 *    fully-connected ions in the trap.
 *  - Optical (level 2): fiber-coupled; local MS gates plus remote
 *    entangling gates with optical zones of other modules.
 *
 * The level ordering mirrors the multi-level memory hierarchy the
 * scheduler is modelled on (storage = external storage, operation =
 * memory, optical = CPU).
 */
#ifndef MUSSTI_ARCH_ZONE_H
#define MUSSTI_ARCH_ZONE_H

namespace mussti {

/** Functional role of a trap. */
enum class ZoneKind { Storage, Operation, Optical };

/** Memory-hierarchy level of a zone kind: 0, 1, 2. */
int zoneLevel(ZoneKind kind);

/** True if local two-qubit gates may execute in this zone kind. */
bool isGateCapable(ZoneKind kind);

/** Human-readable name ("storage", "operation", "optical"). */
const char *zoneKindName(ZoneKind kind);

/**
 * Static description of one trap/zone. Produced by device models and
 * consumed by the scheduler, evaluator, and validator.
 */
struct ZoneInfo
{
    ZoneKind kind = ZoneKind::Storage;
    int module = 0;          ///< Owning QCCD module.
    int capacity = 0;        ///< Maximum resident ions.
    double positionUm = 0.0; ///< 1D coordinate within the module.

    /** Hierarchy level shorthand. */
    int level() const { return zoneLevel(kind); }

    /** Local-gate capability shorthand. */
    bool gateCapable() const { return isGateCapable(kind); }
};

} // namespace mussti

#endif // MUSSTI_ARCH_ZONE_H
