#include "arch/spec_search.h"

#include <sstream>

#include "common/logging.h"
#include "common/string_util.h"

namespace mussti {

namespace {

/** Strict int with a range-flavoured diagnostic. */
int
rangeInt(const std::string &value, const std::string &token,
         const std::string &text)
{
    const auto parsed = parseIntStrict(trim(value));
    MUSSTI_REQUIRE(parsed.has_value(),
                   "malformed range bound `" << value << "` in token `"
                   << token << "` of device search: " << text);
    return *parsed;
}

/** Expand "lo..hi[:step=n]" into its value list. */
std::vector<std::string>
expandRange(const std::string &value, const std::string &token,
            const std::string &text)
{
    const std::vector<std::string> parts = split(value, ':');
    const std::string &range = parts.front();

    int step = 1;
    MUSSTI_REQUIRE(parts.size() <= 2,
                   "malformed range `" << value << "` (at most one "
                   ":step=<int> suffix) in device search: " << text);
    if (parts.size() == 2) {
        const std::string suffix = trim(parts[1]);
        MUSSTI_REQUIRE(startsWith(suffix, "step="),
                       "unknown range suffix `" << suffix
                       << "` (expected step=<int>) in device search: "
                       << text);
        step = rangeInt(suffix.substr(5), token, text);
        MUSSTI_REQUIRE(step >= 1, "range step must be >= 1, got "
                       << step << " in device search: " << text);
    }

    const std::size_t dots = range.find("..");
    MUSSTI_ASSERT(dots != std::string::npos, "expandRange without `..`");
    const std::string lo_text = range.substr(0, dots);
    const std::string hi_text = range.substr(dots + 2);
    MUSSTI_REQUIRE(!trim(lo_text).empty() && !trim(hi_text).empty(),
                   "range `" << range << "` needs both bounds "
                   "(<lo>..<hi>) in device search: " << text);
    const int lo = rangeInt(lo_text, token, text);
    const int hi = rangeInt(hi_text, token, text);
    MUSSTI_REQUIRE(lo <= hi, "empty range `" << range
                   << "` (lo > hi) in device search: " << text);

    // Bound the axis BEFORE materialising it: a runaway range must hit
    // the candidate ceiling as a diagnostic, not as an allocation. The
    // widened arithmetic also keeps `v += step` clear of signed
    // overflow at INT_MAX bounds.
    const long long count =
        (static_cast<long long>(hi) - lo) / step + 1;
    MUSSTI_REQUIRE(count <= static_cast<long long>(kMaxSearchCandidates),
                   "range `" << range << "` expands to " << count
                   << " values, above the " << kMaxSearchCandidates
                   << " candidate ceiling; narrow the range or raise "
                   "the step");

    std::vector<std::string> values;
    values.reserve(static_cast<std::size_t>(count));
    for (long long v = lo; v <= hi; v += step)
        values.push_back(std::to_string(v));
    return values;
}

/** Split "hetero=a|b|c" alternatives; every alternative non-empty. */
std::vector<std::string>
expandHetero(const std::string &value, const std::string &text)
{
    std::vector<std::string> alternatives;
    for (const std::string &alt : split(value, '|')) {
        const std::string trimmed = trim(alt);
        MUSSTI_REQUIRE(!trimmed.empty(),
                       "empty hetero alternative in device search: "
                       << text);
        alternatives.push_back(trimmed);
    }
    return alternatives;
}

} // namespace

std::size_t
SpecSearchSpace::size() const
{
    std::size_t count = 1;
    for (const SpecSearchAxis &axis : axes) {
        count *= axis.values.size();
        if (count > kMaxSearchCandidates)
            return count; // saturate early: callers only test the ceiling
    }
    return count;
}

std::vector<DeviceSpec>
SpecSearchSpace::enumerate() const
{
    MUSSTI_REQUIRE(size() <= kMaxSearchCandidates,
                   "device search enumerates " << size()
                   << " candidates, above the " << kMaxSearchCandidates
                   << " ceiling; narrow the ranges or raise the step");

    std::vector<DeviceSpec> specs;
    specs.reserve(size());
    std::vector<std::size_t> odometer(axes.size(), 0);
    for (;;) {
        std::ostringstream rendered;
        rendered << family << ":";
        for (std::size_t a = 0; a < axes.size(); ++a) {
            if (a > 0)
                rendered << ",";
            if (!axes[a].key.empty())
                rendered << axes[a].key << "=";
            rendered << axes[a].values[odometer[a]];
        }
        specs.push_back(DeviceRegistry::parse(rendered.str()));

        // Advance the odometer, last axis fastest.
        std::size_t a = axes.size();
        while (a > 0) {
            --a;
            if (++odometer[a] < axes[a].values.size())
                break;
            odometer[a] = 0;
            if (a == 0)
                return specs;
        }
        if (axes.empty())
            return specs;
    }
}

std::string
SpecSearchSpace::describe() const
{
    std::size_t searched_axes = 0;
    for (const SpecSearchAxis &axis : axes)
        searched_axes += axis.values.size() > 1 ? 1 : 0;
    std::ostringstream out;
    out << family << " search, " << searched_axes << " searched axis(es), "
        << size() << " candidate(s)";
    return out.str();
}

SpecSearchSpace
parseSpecSearch(const std::string &text)
{
    const std::size_t colon = text.find(':');
    MUSSTI_REQUIRE(colon != std::string::npos,
                   "device search needs a `family:` prefix (eml or "
                   "grid), got: " << text);
    SpecSearchSpace space;
    space.family = toLower(trim(text.substr(0, colon)));
    MUSSTI_REQUIRE(space.family == "eml" || space.family == "grid",
                   "unknown device family `" << space.family
                   << "` in device search: " << text);

    const std::vector<std::string> tokens =
        split(text.substr(colon + 1), ',');
    std::vector<std::string> seen;
    bool first_token = true;
    for (const std::string &raw : tokens) {
        const std::string token = trim(raw);
        if (token.empty()) {
            first_token = false;
            continue;
        }
        const std::size_t eq = token.find('=');

        // The grid geometry token stays fixed (ranging <W>x<H> would
        // need a 2-D grammar; sweep cap/pitch instead).
        if (space.family == "grid" && first_token) {
            MUSSTI_REQUIRE(eq == std::string::npos,
                           "grid search needs a leading <W>x<H> geometry "
                           "token: " << text);
            space.axes.push_back({"", {token}});
            first_token = false;
            continue;
        }
        first_token = false;

        MUSSTI_REQUIRE(eq != std::string::npos && eq > 0,
                       "malformed token `" << token
                       << "` (expected key=value) in device search: "
                       << text);
        const std::string key =
            canonicalSpecKey(toLower(trim(token.substr(0, eq))));
        const std::string value = trim(token.substr(eq + 1));
        noteSpecKey(seen, key, text);

        if (key == "hetero")
            space.axes.push_back({key, expandHetero(value, text)});
        else if (value.find("..") != std::string::npos)
            space.axes.push_back({key, expandRange(value, token, text)});
        else
            space.axes.push_back({key, {value}});
    }

    MUSSTI_REQUIRE(space.size() <= kMaxSearchCandidates,
                   "device search enumerates " << space.size()
                   << " candidates, above the " << kMaxSearchCandidates
                   << " ceiling; narrow the ranges or raise the step");
    // Validate eagerly — a search whose keys the registry rejects
    // should fail at parse, not at sweep time — and keep the result,
    // so consumers never pay for a second enumeration.
    space.candidates = space.enumerate();
    return space;
}

} // namespace mussti
