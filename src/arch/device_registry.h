/**
 * @file
 * Spec-driven device construction: the one place that turns a compact
 * string into a TargetDevice, so entry points (CLI, benches, services)
 * select architectures by configuration rather than by compile-time
 * type.
 *
 * Grammar (see arch/README.md for the full reference):
 *
 *   grid:<W>x<H>[,cap=<int>][,pitch=<um>]
 *   eml:[cap=<int>][,storage=<int>][,op=<int>][,optical=<int>]
 *       [,maxq=<int>][,modules=<int>][,pitch=<um>]
 *   eml:hetero=<S>.<O>.<X>[-<S>.<O>.<X>...][,cap=...][,maxq=...]
 *
 * e.g. `eml:modules=4,cap=16,optical=2`, `grid:8x8,cap=16`, or the
 * heterogeneous `eml:hetero=2.1.1-4.1.2,cap=16`. Malformed specs
 * fatal() with a diagnostic naming the offending token. DeviceSpec is
 * the parsed, canonicalisable form; its digest feeds backend
 * configDigest()s so the CompileService cache keys on the device.
 */
#ifndef MUSSTI_ARCH_DEVICE_REGISTRY_H
#define MUSSTI_ARCH_DEVICE_REGISTRY_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "arch/eml_device.h"
#include "arch/grid_device.h"
#include "arch/target_device.h"

namespace mussti {

/** A parsed device spec: family tag plus the family's config. */
struct DeviceSpec
{
    DeviceFamily family = DeviceFamily::Eml;
    EmlConfig eml;      ///< Meaningful when family == Eml.
    GridConfig grid;    ///< Meaningful when family == Grid.

    /**
     * The canonical spec string: fixed key order, defaults elided the
     * same way every time, so equal topologies render equal strings
     * (parse(canonical()) is a fixed point).
     */
    std::string canonical() const;

    /** FNV-1a digest of the canonical string (cache-key component). */
    std::uint64_t digest() const;
};

/**
 * Static registry mapping spec strings to TargetDevice instances. All
 * device creation in compiler passes, examples, and benches goes
 * through here; only arch/ constructs EmlDevice/GridDevice directly.
 */
class DeviceRegistry
{
  public:
    /** Parse a spec string; fatal() names the offending token. */
    static DeviceSpec parse(const std::string &text);

    /** The spec a given family config renders to. */
    static DeviceSpec specOf(const EmlConfig &config);
    static DeviceSpec specOf(const GridConfig &config);

    /**
     * Instantiate the spec's device. `num_qubits` sizes EML devices
     * (module count unless pinned); grids ignore it.
     */
    static std::shared_ptr<const TargetDevice>
    create(const DeviceSpec &spec, int num_qubits);

    /** Parse-and-create shorthand. */
    static std::shared_ptr<const TargetDevice>
    create(const std::string &text, int num_qubits);

    /**
     * Feasibility-probing create: returns nullptr (instead of the
     * fatal() throw) when the spec cannot host `num_qubits` — e.g. a
     * tuner search candidate whose modules cannot hold the workload.
     * The diagnostic lands in `error` when given; nothing is printed.
     * Only the user-error path is absorbed; internal bugs still panic.
     */
    static std::shared_ptr<const TargetDevice>
    tryCreate(const DeviceSpec &spec, int num_qubits,
              std::string *error = nullptr);

    /** Typed creation for the family-specific call sites. */
    static std::shared_ptr<const EmlDevice>
    createEml(const EmlConfig &config, int num_qubits);

    static std::shared_ptr<const GridDevice>
    createGrid(const GridConfig &config);

    /**
     * Render an `eml:hetero=...` spec for a per-module mix list (the
     * single producer sweep drivers use, so the grammar never gets
     * hand-assembled at call sites). Module count = mixes.size().
     */
    static std::string heteroSpec(const std::vector<EmlModuleMix> &mixes,
                                  int trap_capacity);
};

/**
 * Canonical form of a spec key (lower-cased by the caller): folds the
 * op/operation synonym. Shared by the concrete parser and the search
 * grammar (arch/spec_search.h) so synonym handling never drifts.
 */
std::string canonicalSpecKey(const std::string &key);

/**
 * Record a key occurrence; fatal() on a repeat. Without this, the last
 * occurrence silently wins (e.g. `eml:cap=16,cap=4` compiled with a
 * surprising cap-4 device). Callers pass canonicalSpecKey() output so
 * the synonyms collide too.
 */
void noteSpecKey(std::vector<std::string> &seen, const std::string &key,
                 const std::string &spec_text);

} // namespace mussti

#endif // MUSSTI_ARCH_DEVICE_REGISTRY_H
