file(REMOVE_RECURSE
  "CMakeFiles/test_device_registry.dir/tests/test_device_registry.cpp.o"
  "CMakeFiles/test_device_registry.dir/tests/test_device_registry.cpp.o.d"
  "test_device_registry"
  "test_device_registry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_device_registry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
