# Empty dependencies file for test_device_registry.
# This may be replaced when dependencies are built.
