# Empty dependencies file for fig7_trap_capacity.
# This may be replaced when dependencies are built.
