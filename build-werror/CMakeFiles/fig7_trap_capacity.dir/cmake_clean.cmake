file(REMOVE_RECURSE
  "CMakeFiles/fig7_trap_capacity.dir/bench/fig7_trap_capacity.cpp.o"
  "CMakeFiles/fig7_trap_capacity.dir/bench/fig7_trap_capacity.cpp.o.d"
  "fig7_trap_capacity"
  "fig7_trap_capacity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_trap_capacity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
