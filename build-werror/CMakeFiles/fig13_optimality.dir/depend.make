# Empty dependencies file for fig13_optimality.
# This may be replaced when dependencies are built.
