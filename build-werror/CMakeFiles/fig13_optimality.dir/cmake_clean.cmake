file(REMOVE_RECURSE
  "CMakeFiles/fig13_optimality.dir/bench/fig13_optimality.cpp.o"
  "CMakeFiles/fig13_optimality.dir/bench/fig13_optimality.cpp.o.d"
  "fig13_optimality"
  "fig13_optimality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_optimality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
