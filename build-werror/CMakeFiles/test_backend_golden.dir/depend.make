# Empty dependencies file for test_backend_golden.
# This may be replaced when dependencies are built.
