file(REMOVE_RECURSE
  "CMakeFiles/test_backend_golden.dir/tests/test_backend_golden.cpp.o"
  "CMakeFiles/test_backend_golden.dir/tests/test_backend_golden.cpp.o.d"
  "test_backend_golden"
  "test_backend_golden.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_backend_golden.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
