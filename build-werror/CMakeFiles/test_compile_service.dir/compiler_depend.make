# Empty compiler generated dependencies file for test_compile_service.
# This may be replaced when dependencies are built.
