file(REMOVE_RECURSE
  "CMakeFiles/test_compile_service.dir/tests/test_compile_service.cpp.o"
  "CMakeFiles/test_compile_service.dir/tests/test_compile_service.cpp.o.d"
  "test_compile_service"
  "test_compile_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_compile_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
