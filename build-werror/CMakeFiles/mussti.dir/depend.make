# Empty dependencies file for mussti.
# This may be replaced when dependencies are built.
