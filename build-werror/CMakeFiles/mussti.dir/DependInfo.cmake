
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/arch/device_registry.cpp" "CMakeFiles/mussti.dir/src/arch/device_registry.cpp.o" "gcc" "CMakeFiles/mussti.dir/src/arch/device_registry.cpp.o.d"
  "/root/repo/src/arch/eml_device.cpp" "CMakeFiles/mussti.dir/src/arch/eml_device.cpp.o" "gcc" "CMakeFiles/mussti.dir/src/arch/eml_device.cpp.o.d"
  "/root/repo/src/arch/grid_device.cpp" "CMakeFiles/mussti.dir/src/arch/grid_device.cpp.o" "gcc" "CMakeFiles/mussti.dir/src/arch/grid_device.cpp.o.d"
  "/root/repo/src/arch/placement.cpp" "CMakeFiles/mussti.dir/src/arch/placement.cpp.o" "gcc" "CMakeFiles/mussti.dir/src/arch/placement.cpp.o.d"
  "/root/repo/src/arch/target_device.cpp" "CMakeFiles/mussti.dir/src/arch/target_device.cpp.o" "gcc" "CMakeFiles/mussti.dir/src/arch/target_device.cpp.o.d"
  "/root/repo/src/arch/zone.cpp" "CMakeFiles/mussti.dir/src/arch/zone.cpp.o" "gcc" "CMakeFiles/mussti.dir/src/arch/zone.cpp.o.d"
  "/root/repo/src/baselines/backend_factory.cpp" "CMakeFiles/mussti.dir/src/baselines/backend_factory.cpp.o" "gcc" "CMakeFiles/mussti.dir/src/baselines/backend_factory.cpp.o.d"
  "/root/repo/src/baselines/dai.cpp" "CMakeFiles/mussti.dir/src/baselines/dai.cpp.o" "gcc" "CMakeFiles/mussti.dir/src/baselines/dai.cpp.o.d"
  "/root/repo/src/baselines/grid_compiler_base.cpp" "CMakeFiles/mussti.dir/src/baselines/grid_compiler_base.cpp.o" "gcc" "CMakeFiles/mussti.dir/src/baselines/grid_compiler_base.cpp.o.d"
  "/root/repo/src/baselines/mqt_like.cpp" "CMakeFiles/mussti.dir/src/baselines/mqt_like.cpp.o" "gcc" "CMakeFiles/mussti.dir/src/baselines/mqt_like.cpp.o.d"
  "/root/repo/src/baselines/murali.cpp" "CMakeFiles/mussti.dir/src/baselines/murali.cpp.o" "gcc" "CMakeFiles/mussti.dir/src/baselines/murali.cpp.o.d"
  "/root/repo/src/circuit/circuit.cpp" "CMakeFiles/mussti.dir/src/circuit/circuit.cpp.o" "gcc" "CMakeFiles/mussti.dir/src/circuit/circuit.cpp.o.d"
  "/root/repo/src/circuit/gate.cpp" "CMakeFiles/mussti.dir/src/circuit/gate.cpp.o" "gcc" "CMakeFiles/mussti.dir/src/circuit/gate.cpp.o.d"
  "/root/repo/src/circuit/qasm.cpp" "CMakeFiles/mussti.dir/src/circuit/qasm.cpp.o" "gcc" "CMakeFiles/mussti.dir/src/circuit/qasm.cpp.o.d"
  "/root/repo/src/circuit/transforms.cpp" "CMakeFiles/mussti.dir/src/circuit/transforms.cpp.o" "gcc" "CMakeFiles/mussti.dir/src/circuit/transforms.cpp.o.d"
  "/root/repo/src/common/bench_json.cpp" "CMakeFiles/mussti.dir/src/common/bench_json.cpp.o" "gcc" "CMakeFiles/mussti.dir/src/common/bench_json.cpp.o.d"
  "/root/repo/src/common/csv.cpp" "CMakeFiles/mussti.dir/src/common/csv.cpp.o" "gcc" "CMakeFiles/mussti.dir/src/common/csv.cpp.o.d"
  "/root/repo/src/common/logging.cpp" "CMakeFiles/mussti.dir/src/common/logging.cpp.o" "gcc" "CMakeFiles/mussti.dir/src/common/logging.cpp.o.d"
  "/root/repo/src/common/stats.cpp" "CMakeFiles/mussti.dir/src/common/stats.cpp.o" "gcc" "CMakeFiles/mussti.dir/src/common/stats.cpp.o.d"
  "/root/repo/src/common/string_util.cpp" "CMakeFiles/mussti.dir/src/common/string_util.cpp.o" "gcc" "CMakeFiles/mussti.dir/src/common/string_util.cpp.o.d"
  "/root/repo/src/core/compile_service.cpp" "CMakeFiles/mussti.dir/src/core/compile_service.cpp.o" "gcc" "CMakeFiles/mussti.dir/src/core/compile_service.cpp.o.d"
  "/root/repo/src/core/compiler.cpp" "CMakeFiles/mussti.dir/src/core/compiler.cpp.o" "gcc" "CMakeFiles/mussti.dir/src/core/compiler.cpp.o.d"
  "/root/repo/src/core/config.cpp" "CMakeFiles/mussti.dir/src/core/config.cpp.o" "gcc" "CMakeFiles/mussti.dir/src/core/config.cpp.o.d"
  "/root/repo/src/core/lru.cpp" "CMakeFiles/mussti.dir/src/core/lru.cpp.o" "gcc" "CMakeFiles/mussti.dir/src/core/lru.cpp.o.d"
  "/root/repo/src/core/mapper.cpp" "CMakeFiles/mussti.dir/src/core/mapper.cpp.o" "gcc" "CMakeFiles/mussti.dir/src/core/mapper.cpp.o.d"
  "/root/repo/src/core/pipeline.cpp" "CMakeFiles/mussti.dir/src/core/pipeline.cpp.o" "gcc" "CMakeFiles/mussti.dir/src/core/pipeline.cpp.o.d"
  "/root/repo/src/core/router.cpp" "CMakeFiles/mussti.dir/src/core/router.cpp.o" "gcc" "CMakeFiles/mussti.dir/src/core/router.cpp.o.d"
  "/root/repo/src/core/scheduler.cpp" "CMakeFiles/mussti.dir/src/core/scheduler.cpp.o" "gcc" "CMakeFiles/mussti.dir/src/core/scheduler.cpp.o.d"
  "/root/repo/src/core/swap_inserter.cpp" "CMakeFiles/mussti.dir/src/core/swap_inserter.cpp.o" "gcc" "CMakeFiles/mussti.dir/src/core/swap_inserter.cpp.o.d"
  "/root/repo/src/core/weight_table.cpp" "CMakeFiles/mussti.dir/src/core/weight_table.cpp.o" "gcc" "CMakeFiles/mussti.dir/src/core/weight_table.cpp.o.d"
  "/root/repo/src/dag/dag.cpp" "CMakeFiles/mussti.dir/src/dag/dag.cpp.o" "gcc" "CMakeFiles/mussti.dir/src/dag/dag.cpp.o.d"
  "/root/repo/src/sim/analyzer.cpp" "CMakeFiles/mussti.dir/src/sim/analyzer.cpp.o" "gcc" "CMakeFiles/mussti.dir/src/sim/analyzer.cpp.o.d"
  "/root/repo/src/sim/evaluation_pass.cpp" "CMakeFiles/mussti.dir/src/sim/evaluation_pass.cpp.o" "gcc" "CMakeFiles/mussti.dir/src/sim/evaluation_pass.cpp.o.d"
  "/root/repo/src/sim/evaluator.cpp" "CMakeFiles/mussti.dir/src/sim/evaluator.cpp.o" "gcc" "CMakeFiles/mussti.dir/src/sim/evaluator.cpp.o.d"
  "/root/repo/src/sim/op.cpp" "CMakeFiles/mussti.dir/src/sim/op.cpp.o" "gcc" "CMakeFiles/mussti.dir/src/sim/op.cpp.o.d"
  "/root/repo/src/sim/params.cpp" "CMakeFiles/mussti.dir/src/sim/params.cpp.o" "gcc" "CMakeFiles/mussti.dir/src/sim/params.cpp.o.d"
  "/root/repo/src/sim/schedule.cpp" "CMakeFiles/mussti.dir/src/sim/schedule.cpp.o" "gcc" "CMakeFiles/mussti.dir/src/sim/schedule.cpp.o.d"
  "/root/repo/src/sim/shuttle_emitter.cpp" "CMakeFiles/mussti.dir/src/sim/shuttle_emitter.cpp.o" "gcc" "CMakeFiles/mussti.dir/src/sim/shuttle_emitter.cpp.o.d"
  "/root/repo/src/sim/timeline.cpp" "CMakeFiles/mussti.dir/src/sim/timeline.cpp.o" "gcc" "CMakeFiles/mussti.dir/src/sim/timeline.cpp.o.d"
  "/root/repo/src/sim/trace.cpp" "CMakeFiles/mussti.dir/src/sim/trace.cpp.o" "gcc" "CMakeFiles/mussti.dir/src/sim/trace.cpp.o.d"
  "/root/repo/src/sim/validator.cpp" "CMakeFiles/mussti.dir/src/sim/validator.cpp.o" "gcc" "CMakeFiles/mussti.dir/src/sim/validator.cpp.o.d"
  "/root/repo/src/workloads/adder.cpp" "CMakeFiles/mussti.dir/src/workloads/adder.cpp.o" "gcc" "CMakeFiles/mussti.dir/src/workloads/adder.cpp.o.d"
  "/root/repo/src/workloads/bv.cpp" "CMakeFiles/mussti.dir/src/workloads/bv.cpp.o" "gcc" "CMakeFiles/mussti.dir/src/workloads/bv.cpp.o.d"
  "/root/repo/src/workloads/extra_families.cpp" "CMakeFiles/mussti.dir/src/workloads/extra_families.cpp.o" "gcc" "CMakeFiles/mussti.dir/src/workloads/extra_families.cpp.o.d"
  "/root/repo/src/workloads/ghz.cpp" "CMakeFiles/mussti.dir/src/workloads/ghz.cpp.o" "gcc" "CMakeFiles/mussti.dir/src/workloads/ghz.cpp.o.d"
  "/root/repo/src/workloads/qaoa.cpp" "CMakeFiles/mussti.dir/src/workloads/qaoa.cpp.o" "gcc" "CMakeFiles/mussti.dir/src/workloads/qaoa.cpp.o.d"
  "/root/repo/src/workloads/qft.cpp" "CMakeFiles/mussti.dir/src/workloads/qft.cpp.o" "gcc" "CMakeFiles/mussti.dir/src/workloads/qft.cpp.o.d"
  "/root/repo/src/workloads/random_circuit.cpp" "CMakeFiles/mussti.dir/src/workloads/random_circuit.cpp.o" "gcc" "CMakeFiles/mussti.dir/src/workloads/random_circuit.cpp.o.d"
  "/root/repo/src/workloads/registry.cpp" "CMakeFiles/mussti.dir/src/workloads/registry.cpp.o" "gcc" "CMakeFiles/mussti.dir/src/workloads/registry.cpp.o.d"
  "/root/repo/src/workloads/sqrt.cpp" "CMakeFiles/mussti.dir/src/workloads/sqrt.cpp.o" "gcc" "CMakeFiles/mussti.dir/src/workloads/sqrt.cpp.o.d"
  "/root/repo/src/workloads/supremacy.cpp" "CMakeFiles/mussti.dir/src/workloads/supremacy.cpp.o" "gcc" "CMakeFiles/mussti.dir/src/workloads/supremacy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
