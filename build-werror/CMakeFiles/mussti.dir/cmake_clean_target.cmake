file(REMOVE_RECURSE
  "libmussti.a"
)
