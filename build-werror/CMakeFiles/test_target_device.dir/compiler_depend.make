# Empty compiler generated dependencies file for test_target_device.
# This may be replaced when dependencies are built.
