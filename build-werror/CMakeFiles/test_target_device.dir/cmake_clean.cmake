file(REMOVE_RECURSE
  "CMakeFiles/test_target_device.dir/tests/test_target_device.cpp.o"
  "CMakeFiles/test_target_device.dir/tests/test_target_device.cpp.o.d"
  "test_target_device"
  "test_target_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_target_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
