file(REMOVE_RECURSE
  "CMakeFiles/fig10_compile_time.dir/bench/fig10_compile_time.cpp.o"
  "CMakeFiles/fig10_compile_time.dir/bench/fig10_compile_time.cpp.o.d"
  "fig10_compile_time"
  "fig10_compile_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_compile_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
