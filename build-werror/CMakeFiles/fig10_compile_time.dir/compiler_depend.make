# Empty compiler generated dependencies file for fig10_compile_time.
# This may be replaced when dependencies are built.
