file(REMOVE_RECURSE
  "CMakeFiles/qec_cycle.dir/examples/qec_cycle.cpp.o"
  "CMakeFiles/qec_cycle.dir/examples/qec_cycle.cpp.o.d"
  "qec_cycle"
  "qec_cycle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qec_cycle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
