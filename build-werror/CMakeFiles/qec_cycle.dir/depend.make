# Empty dependencies file for qec_cycle.
# This may be replaced when dependencies are built.
