# Empty compiler generated dependencies file for ext_qec_outlook.
# This may be replaced when dependencies are built.
