file(REMOVE_RECURSE
  "CMakeFiles/ext_qec_outlook.dir/bench/ext_qec_outlook.cpp.o"
  "CMakeFiles/ext_qec_outlook.dir/bench/ext_qec_outlook.cpp.o.d"
  "ext_qec_outlook"
  "ext_qec_outlook.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_qec_outlook.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
