file(REMOVE_RECURSE
  "CMakeFiles/test_fuzz_validator.dir/tests/test_fuzz_validator.cpp.o"
  "CMakeFiles/test_fuzz_validator.dir/tests/test_fuzz_validator.cpp.o.d"
  "test_fuzz_validator"
  "test_fuzz_validator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fuzz_validator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
