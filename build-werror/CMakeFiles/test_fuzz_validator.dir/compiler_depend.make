# Empty compiler generated dependencies file for test_fuzz_validator.
# This may be replaced when dependencies are built.
