file(REMOVE_RECURSE
  "CMakeFiles/fig12_entanglement_zones.dir/bench/fig12_entanglement_zones.cpp.o"
  "CMakeFiles/fig12_entanglement_zones.dir/bench/fig12_entanglement_zones.cpp.o.d"
  "fig12_entanglement_zones"
  "fig12_entanglement_zones.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_entanglement_zones.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
