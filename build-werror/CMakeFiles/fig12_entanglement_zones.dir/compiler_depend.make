# Empty compiler generated dependencies file for fig12_entanglement_zones.
# This may be replaced when dependencies are built.
