file(REMOVE_RECURSE
  "CMakeFiles/capacity_explorer.dir/examples/capacity_explorer.cpp.o"
  "CMakeFiles/capacity_explorer.dir/examples/capacity_explorer.cpp.o.d"
  "capacity_explorer"
  "capacity_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capacity_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
