# Empty compiler generated dependencies file for capacity_explorer.
# This may be replaced when dependencies are built.
