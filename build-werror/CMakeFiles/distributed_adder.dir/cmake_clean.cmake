file(REMOVE_RECURSE
  "CMakeFiles/distributed_adder.dir/examples/distributed_adder.cpp.o"
  "CMakeFiles/distributed_adder.dir/examples/distributed_adder.cpp.o.d"
  "distributed_adder"
  "distributed_adder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distributed_adder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
