# Empty dependencies file for distributed_adder.
# This may be replaced when dependencies are built.
