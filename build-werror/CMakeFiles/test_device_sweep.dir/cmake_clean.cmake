file(REMOVE_RECURSE
  "CMakeFiles/test_device_sweep.dir/tests/test_device_sweep.cpp.o"
  "CMakeFiles/test_device_sweep.dir/tests/test_device_sweep.cpp.o.d"
  "test_device_sweep"
  "test_device_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_device_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
