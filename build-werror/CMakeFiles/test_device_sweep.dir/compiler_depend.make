# Empty compiler generated dependencies file for test_device_sweep.
# This may be replaced when dependencies are built.
