file(REMOVE_RECURSE
  "CMakeFiles/fig8_ablation.dir/bench/fig8_ablation.cpp.o"
  "CMakeFiles/fig8_ablation.dir/bench/fig8_ablation.cpp.o.d"
  "fig8_ablation"
  "fig8_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
