file(REMOVE_RECURSE
  "CMakeFiles/test_timeline_analyzer.dir/tests/test_timeline_analyzer.cpp.o"
  "CMakeFiles/test_timeline_analyzer.dir/tests/test_timeline_analyzer.cpp.o.d"
  "test_timeline_analyzer"
  "test_timeline_analyzer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_timeline_analyzer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
