# Empty dependencies file for test_timeline_analyzer.
# This may be replaced when dependencies are built.
