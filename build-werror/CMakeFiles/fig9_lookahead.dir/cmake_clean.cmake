file(REMOVE_RECURSE
  "CMakeFiles/fig9_lookahead.dir/bench/fig9_lookahead.cpp.o"
  "CMakeFiles/fig9_lookahead.dir/bench/fig9_lookahead.cpp.o.d"
  "fig9_lookahead"
  "fig9_lookahead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_lookahead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
