# Empty dependencies file for fig9_lookahead.
# This may be replaced when dependencies are built.
