file(REMOVE_RECURSE
  "CMakeFiles/micro_scheduler_bench.dir/bench/micro_scheduler_bench.cpp.o"
  "CMakeFiles/micro_scheduler_bench.dir/bench/micro_scheduler_bench.cpp.o.d"
  "micro_scheduler_bench"
  "micro_scheduler_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_scheduler_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
