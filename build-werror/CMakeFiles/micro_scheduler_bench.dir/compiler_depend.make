# Empty compiler generated dependencies file for micro_scheduler_bench.
# This may be replaced when dependencies are built.
