file(REMOVE_RECURSE
  "CMakeFiles/test_qasm.dir/tests/test_qasm.cpp.o"
  "CMakeFiles/test_qasm.dir/tests/test_qasm.cpp.o.d"
  "test_qasm"
  "test_qasm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_qasm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
