# Empty dependencies file for test_qasm.
# This may be replaced when dependencies are built.
