file(REMOVE_RECURSE
  "CMakeFiles/ext_hetero_eml.dir/bench/ext_hetero_eml.cpp.o"
  "CMakeFiles/ext_hetero_eml.dir/bench/ext_hetero_eml.cpp.o.d"
  "ext_hetero_eml"
  "ext_hetero_eml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_hetero_eml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
