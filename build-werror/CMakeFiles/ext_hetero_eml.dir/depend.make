# Empty dependencies file for ext_hetero_eml.
# This may be replaced when dependencies are built.
