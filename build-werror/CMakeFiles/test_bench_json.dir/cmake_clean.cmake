file(REMOVE_RECURSE
  "CMakeFiles/test_bench_json.dir/tests/test_bench_json.cpp.o"
  "CMakeFiles/test_bench_json.dir/tests/test_bench_json.cpp.o.d"
  "test_bench_json"
  "test_bench_json.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bench_json.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
