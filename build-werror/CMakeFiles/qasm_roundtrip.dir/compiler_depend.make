# Empty compiler generated dependencies file for qasm_roundtrip.
# This may be replaced when dependencies are built.
