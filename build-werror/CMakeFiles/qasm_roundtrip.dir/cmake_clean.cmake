file(REMOVE_RECURSE
  "CMakeFiles/qasm_roundtrip.dir/examples/qasm_roundtrip.cpp.o"
  "CMakeFiles/qasm_roundtrip.dir/examples/qasm_roundtrip.cpp.o.d"
  "qasm_roundtrip"
  "qasm_roundtrip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qasm_roundtrip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
