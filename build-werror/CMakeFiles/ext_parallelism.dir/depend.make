# Empty dependencies file for ext_parallelism.
# This may be replaced when dependencies are built.
