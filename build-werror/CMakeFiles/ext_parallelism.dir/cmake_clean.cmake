file(REMOVE_RECURSE
  "CMakeFiles/ext_parallelism.dir/bench/ext_parallelism.cpp.o"
  "CMakeFiles/ext_parallelism.dir/bench/ext_parallelism.cpp.o.d"
  "ext_parallelism"
  "ext_parallelism.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_parallelism.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
