# Empty compiler generated dependencies file for test_swap_insertion.
# This may be replaced when dependencies are built.
