file(REMOVE_RECURSE
  "CMakeFiles/test_swap_insertion.dir/tests/test_swap_insertion.cpp.o"
  "CMakeFiles/test_swap_insertion.dir/tests/test_swap_insertion.cpp.o.d"
  "test_swap_insertion"
  "test_swap_insertion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_swap_insertion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
