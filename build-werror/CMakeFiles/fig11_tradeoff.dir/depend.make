# Empty dependencies file for fig11_tradeoff.
# This may be replaced when dependencies are built.
