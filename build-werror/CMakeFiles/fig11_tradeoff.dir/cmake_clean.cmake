file(REMOVE_RECURSE
  "CMakeFiles/fig11_tradeoff.dir/bench/fig11_tradeoff.cpp.o"
  "CMakeFiles/fig11_tradeoff.dir/bench/fig11_tradeoff.cpp.o.d"
  "fig11_tradeoff"
  "fig11_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
