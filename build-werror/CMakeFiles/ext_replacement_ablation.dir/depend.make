# Empty dependencies file for ext_replacement_ablation.
# This may be replaced when dependencies are built.
