file(REMOVE_RECURSE
  "CMakeFiles/ext_replacement_ablation.dir/bench/ext_replacement_ablation.cpp.o"
  "CMakeFiles/ext_replacement_ablation.dir/bench/ext_replacement_ablation.cpp.o.d"
  "ext_replacement_ablation"
  "ext_replacement_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_replacement_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
