file(REMOVE_RECURSE
  "CMakeFiles/test_schedule_api.dir/tests/test_schedule_api.cpp.o"
  "CMakeFiles/test_schedule_api.dir/tests/test_schedule_api.cpp.o.d"
  "test_schedule_api"
  "test_schedule_api.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_schedule_api.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
