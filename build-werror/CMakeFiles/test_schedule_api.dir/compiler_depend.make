# Empty compiler generated dependencies file for test_schedule_api.
# This may be replaced when dependencies are built.
