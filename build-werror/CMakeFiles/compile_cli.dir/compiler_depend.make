# Empty compiler generated dependencies file for compile_cli.
# This may be replaced when dependencies are built.
