file(REMOVE_RECURSE
  "CMakeFiles/compile_cli.dir/examples/compile_cli.cpp.o"
  "CMakeFiles/compile_cli.dir/examples/compile_cli.cpp.o.d"
  "compile_cli"
  "compile_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compile_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
