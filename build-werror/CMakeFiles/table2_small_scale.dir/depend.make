# Empty dependencies file for table2_small_scale.
# This may be replaced when dependencies are built.
