file(REMOVE_RECURSE
  "CMakeFiles/table2_small_scale.dir/bench/table2_small_scale.cpp.o"
  "CMakeFiles/table2_small_scale.dir/bench/table2_small_scale.cpp.o.d"
  "table2_small_scale"
  "table2_small_scale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_small_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
