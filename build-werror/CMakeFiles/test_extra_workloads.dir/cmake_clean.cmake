file(REMOVE_RECURSE
  "CMakeFiles/test_extra_workloads.dir/tests/test_extra_workloads.cpp.o"
  "CMakeFiles/test_extra_workloads.dir/tests/test_extra_workloads.cpp.o.d"
  "test_extra_workloads"
  "test_extra_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_extra_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
