# Empty compiler generated dependencies file for test_extra_workloads.
# This may be replaced when dependencies are built.
