/**
 * @file
 * The SchedulerWorkspace reuse contract: a workspace is an allocation
 * cache, never information. Reusing one arena across the three SABRE
 * legs, across repeated compilations, across different circuits, and
 * across CompileService jobs must yield bit-identical results to fresh
 * state every time, and handing buffers back must leave no state bleed.
 */
#include <memory>

#include <gtest/gtest.h>

#include "common/hash.h"
#include "core/compile_service.h"
#include "core/compiler.h"
#include "core/mapper.h"
#include "core/scheduler.h"
#include "core/scheduler_workspace.h"
#include "workloads/workloads.h"

namespace mussti {
namespace {

/** Same full-compilation digest as tests/test_scheduler.cpp. */
std::uint64_t
scheduleFingerprint(const CompileResult &r)
{
    Fnv1a h;
    h.update(static_cast<std::uint64_t>(r.schedule.ops.size()));
    for (const ScheduledOp &op : r.schedule.ops) {
        h.update(static_cast<int>(op.kind));
        h.update(op.q0);
        h.update(op.q1);
        h.update(op.zoneFrom);
        h.update(op.zoneTo);
        h.update(op.durationUs);
        h.update(op.nbar);
        h.update(op.circuitGate);
        h.update(op.inserted);
        h.update(op.enterFront);
    }
    for (const auto &chain : r.schedule.initialChains) {
        h.update(static_cast<std::uint64_t>(chain.size()));
        for (int q : chain)
            h.update(q);
    }
    for (const auto &chain : r.finalChains) {
        h.update(static_cast<std::uint64_t>(chain.size()));
        for (int q : chain)
            h.update(q);
    }
    h.update(r.schedule.shuttleCount);
    h.update(r.schedule.ionSwapCount);
    h.update(r.schedule.insertedSwapGates);
    h.update(r.swapInsertions);
    h.update(r.evictions);
    h.update(r.metrics.shuttleCount);
    h.update(r.metrics.executionTimeUs);
    h.update(r.metrics.lnFidelity);
    return h.digest();
}

TEST(SchedulerWorkspaceReuse, RepeatedCompilesAreBitIdentical)
{
    // One arena, many compilations of the same circuit (the bench's
    // steady-state measurement pattern): every repeat must equal the
    // workspace-free compile.
    const Circuit qc = makeBenchmark("qaoa", 96);
    const MusstiCompiler compiler;
    const std::uint64_t fresh = scheduleFingerprint(compiler.compile(qc));

    const auto workspace = std::make_shared<SchedulerWorkspace>();
    for (int rep = 0; rep < 3; ++rep) {
        EXPECT_EQ(scheduleFingerprint(compiler.compile(qc, workspace)),
                  fresh)
            << "repeat " << rep << " diverged through the shared arena";
    }
}

TEST(SchedulerWorkspaceReuse, CrossCircuitReuseHasNoStateBleed)
{
    // Interleave circuits of different families, sizes, and qubit
    // counts through ONE arena; every result must match its fresh
    // compile. Shrinking then growing exercises stale-capacity reuse in
    // both directions (chain buffers, DAG scratch, worklist state).
    const MusstiCompiler compiler;
    const auto workspace = std::make_shared<SchedulerWorkspace>();
    const std::pair<const char *, int> sequence[] = {
        {"qaoa", 128}, {"ghz", 16}, {"adder", 96},
        {"bv", 48},    {"ran", 64}, {"qaoa", 128},
    };
    for (const auto &[family, qubits] : sequence) {
        const Circuit qc = makeBenchmark(family, qubits);
        EXPECT_EQ(scheduleFingerprint(compiler.compile(qc, workspace)),
                  scheduleFingerprint(compiler.compile(qc)))
            << family << "_n" << qubits
            << " diverged after the arena served a different circuit";
    }
}

TEST(SchedulerWorkspaceReuse, DirectSchedulerRunsShareOneArena)
{
    // The raw scheduler API, as the SABRE legs use it: repeated runs
    // through one workspace equal runs with none, and the workspace's
    // buffers come back (opReserveHint reflects the largest run).
    MusstiConfig config;
    const Circuit qc = makeBenchmark("adder", 48).withSwapsDecomposed();
    const EmlDevice device(config.device, qc.numQubits());
    const PhysicalParams params;
    const MusstiScheduler scheduler(device, params, config);
    const Placement initial = trivialPlacement(device, qc.numQubits());

    const auto bare = scheduler.run(qc, initial);
    SchedulerWorkspace workspace;
    for (int rep = 0; rep < 3; ++rep) {
        const auto reused = scheduler.run(qc, initial, &workspace);
        EXPECT_EQ(reused.schedule.ops.size(), bare.schedule.ops.size());
        EXPECT_EQ(reused.swapInsertions, bare.swapInsertions);
        EXPECT_EQ(reused.evictions, bare.evictions);
        EXPECT_EQ(reused.routingSteps, bare.routingSteps);
    }
    EXPECT_GE(workspace.opReserveHint, bare.schedule.ops.size());
    // The donated DAG scratch really was used and returned.
    EXPECT_FALSE(workspace.dag.chainOffsets.empty());
}

TEST(SchedulerWorkspaceReuse, CompileServiceJobsMatchDirectCompiles)
{
    // Jobs on the service run through per-worker-thread arenas; results
    // must match direct workspace-free compiles regardless of how many
    // jobs an arena already served. Cache disabled so every submission
    // actually compiles.
    CompileServiceConfig service_config;
    service_config.numThreads = 2;
    service_config.cacheCapacity = 0;
    CompileService service(service_config);
    const auto backend = std::make_shared<MusstiCompiler>();

    std::vector<std::pair<const char *, int>> jobs = {
        {"qaoa", 96}, {"adder", 64}, {"ghz", 48},  {"bv", 32},
        {"qaoa", 96}, {"ran", 40},   {"adder", 64}, {"qaoa", 96},
    };
    std::vector<std::future<CompileResult>> futures;
    for (const auto &[family, qubits] : jobs)
        futures.push_back(
            service.submit(backend, makeBenchmark(family, qubits)));
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        const auto &[family, qubits] = jobs[i];
        const auto direct =
            backend->compile(makeBenchmark(family, qubits));
        EXPECT_EQ(scheduleFingerprint(futures[i].get()),
                  scheduleFingerprint(direct))
            << family << "_n" << qubits
            << " diverged through the service's per-thread arena";
    }
    EXPECT_EQ(service.jobsExecuted(), jobs.size());
}

} // namespace
} // namespace mussti
