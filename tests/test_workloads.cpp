/**
 * @file
 * Tests for the benchmark generators: determinism, size classes, and
 * the interaction-topology properties each family must exhibit (these
 * are what make the paper's evaluation shapes reproducible).
 */
#include <algorithm>
#include <map>
#include <set>

#include <gtest/gtest.h>

#include "workloads/workloads.h"

namespace mussti {
namespace {

TEST(Workloads, GeneratorsAreDeterministic)
{
    for (const auto &family : benchmarkFamilies()) {
        const Circuit a = makeBenchmark(family, 32);
        const Circuit b = makeBenchmark(family, 32);
        EXPECT_EQ(a, b) << family;
    }
}

TEST(Workloads, QubitCountsHonored)
{
    for (int n : {16, 30, 32, 117, 128}) {
        for (const auto &family : benchmarkFamilies()) {
            EXPECT_EQ(makeBenchmark(family, n).numQubits(), n)
                << family << " n=" << n;
        }
    }
}

TEST(Workloads, UnknownFamilyIsFatal)
{
    EXPECT_THROW(makeBenchmark("nope", 8), std::runtime_error);
}

TEST(Workloads, GhzIsLinearChain)
{
    const Circuit qc = makeGhz(32);
    EXPECT_EQ(qc.twoQubitCount(), 31);
    for (const Gate &g : qc.gates()) {
        if (g.twoQubit()) {
            EXPECT_EQ(g.q1 - g.q0, 1);
        }
    }
}

TEST(Workloads, BvIsStarIntoTarget)
{
    const Circuit qc = makeBv(32);
    const int target = 31;
    int cx = 0;
    for (const Gate &g : qc.gates()) {
        if (!g.twoQubit())
            continue;
        ++cx;
        EXPECT_EQ(g.q1, target);
    }
    EXPECT_GT(cx, 5);
    EXPECT_LT(cx, 31);
}

TEST(Workloads, QftIsAllToAll)
{
    const int n = 12;
    const Circuit qc = makeQft(n).withSwapsDecomposed();
    std::set<std::pair<int, int>> pairs;
    for (const Gate &g : qc.gates()) {
        if (g.twoQubit())
            pairs.insert({std::min(g.q0, g.q1), std::max(g.q0, g.q1)});
    }
    // Every unordered pair appears in the ladder.
    EXPECT_EQ(static_cast<int>(pairs.size()), n * (n - 1) / 2);
}

TEST(Workloads, QaoaDegreesBounded)
{
    const Circuit qc = makeQaoa(32);
    // Cost layer visits each graph edge twice (CX-RZ-CX); per-qubit gate
    // degree is therefore <= 2 * 3 for a 3-regular instance.
    const auto deg = qc.twoQubitDegrees();
    for (int q = 0; q < qc.numQubits(); ++q)
        EXPECT_LE(deg[q], 6) << "qubit " << q;
}

TEST(Workloads, QaoaOddFallbackStillValid)
{
    const Circuit qc = makeQaoa(31);
    EXPECT_GT(qc.twoQubitCount(), 31);
}

TEST(Workloads, AdderLocality)
{
    const Circuit qc = makeAdder(32);
    // Ripple-carry adders are dominated by near-neighbour interaction.
    EXPECT_LT(qc.stats().avgInteractionDistance, 4.0);
    EXPECT_GT(qc.twoQubitCount(), 50);
}

TEST(Workloads, SqrtIsDeepAndCommunicationHeavy)
{
    const Circuit qc = makeSqrt(117);
    const CircuitStats s = qc.stats();
    EXPECT_GT(s.twoQubitGates, 300);
    // Long-distance register reuse: the digit bursts give the family a
    // much larger interaction span than the local families (adder < 4).
    EXPECT_GT(s.avgInteractionDistance, 8.0);
}

TEST(Workloads, SqrtLargeMatchesPaperGateScale)
{
    // QASMBench's sqrt_n299 has 4376 two-qubit gates; ours must land in
    // the same scale class for Fig 6 shapes to transfer.
    const int count = makeSqrt(299).twoQubitCount();
    EXPECT_GT(count, 2500);
    EXPECT_LT(count, 8000);
}

TEST(Workloads, RandomCircuitGateCount)
{
    const Circuit qc = makeRandomCircuit(64, 500, 9);
    EXPECT_EQ(qc.twoQubitCount(), 500);
}

TEST(Workloads, RandomCircuitSeedsDiffer)
{
    EXPECT_NE(makeRandomCircuit(16, 50, 1), makeRandomCircuit(16, 50, 2));
}

TEST(Workloads, SupremacyPartnersOncePerLayer)
{
    const Circuit qc = makeSupremacy(36, 4);
    // Count 2q gates per qubit per layer: the staggered pattern must not
    // reuse a qubit within one layer. Layers are separated by the 1q
    // round, so consecutive 2q runs share no qubit.
    std::set<int> in_layer;
    for (const Gate &g : qc.gates()) {
        if (g.twoQubit()) {
            EXPECT_EQ(in_layer.count(g.q0), 0u);
            EXPECT_EQ(in_layer.count(g.q1), 0u);
            in_layer.insert(g.q0);
            in_layer.insert(g.q1);
        } else if (isSingleQubit(g.kind)) {
            in_layer.clear();
        }
    }
}

TEST(Workloads, SuiteDefinitionsMatchPaper)
{
    const auto small = smallScaleSuite();
    ASSERT_EQ(small.size(), 6u);
    EXPECT_EQ(small[0].label(), "Adder_n32");
    EXPECT_EQ(small[5].label(), "SQRT_n30");

    const auto medium = mediumScaleSuite();
    ASSERT_EQ(medium.size(), 5u);
    for (const auto &spec : medium) {
        EXPECT_GE(spec.numQubits, 117);
        EXPECT_LE(spec.numQubits, 128);
    }

    const auto large = largeScaleSuite();
    ASSERT_EQ(large.size(), 7u);
    for (const auto &spec : large) {
        EXPECT_GE(spec.numQubits, 256);
        EXPECT_LE(spec.numQubits, 299);
    }
}

TEST(Workloads, AllSuitesGenerate)
{
    for (const auto &suites : {smallScaleSuite(), mediumScaleSuite(),
                               largeScaleSuite()}) {
        for (const auto &spec : suites) {
            const Circuit qc = makeBenchmark(spec.family, spec.numQubits);
            EXPECT_GT(qc.twoQubitCount(), 0) << spec.label();
        }
    }
}

/** Gate-count scale sanity per family at the paper's sizes. */
class WorkloadSizeTest
    : public ::testing::TestWithParam<std::pair<const char *, int>>
{};

TEST_P(WorkloadSizeTest, TwoQubitCountWithinPaperRange)
{
    const auto [family, n] = GetParam();
    const int count = makeBenchmark(family, n).twoQubitCount();
    // Paper: 31..4376 two-qubit gates over the whole suite; QFT at 256+
    // is excluded there and here.
    EXPECT_GE(count, 15) << family;
    EXPECT_LE(count, 9000) << family;
}

INSTANTIATE_TEST_SUITE_P(
    PaperSizes, WorkloadSizeTest,
    ::testing::Values(std::pair{"adder", 32}, std::pair{"bv", 32},
                      std::pair{"ghz", 32}, std::pair{"qaoa", 32},
                      std::pair{"qft", 32}, std::pair{"sqrt", 30},
                      std::pair{"adder", 128}, std::pair{"sqrt", 117},
                      std::pair{"adder", 256}, std::pair{"ran", 256},
                      std::pair{"sc", 274}, std::pair{"sqrt", 299}));

} // namespace
} // namespace mussti
