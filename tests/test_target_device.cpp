/**
 * @file
 * Tests for the polymorphic TargetDevice topology layer: the shared
 * adjacency-index view, the precomputed hop-distance table, the base-
 * class zone/module/slot vocabulary, and the describe()/spec() round
 * trip — over both concrete families, including heterogeneous EML
 * devices.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "arch/device_registry.h"
#include "arch/eml_device.h"
#include "arch/grid_device.h"
#include "arch/target_device.h"

namespace mussti {
namespace {

std::set<int>
neighborSet(const TargetDevice &device, int zone)
{
    const NeighborView view = device.neighbors(zone);
    return {view.begin(), view.end()};
}

TEST(TargetDevice, GridNeighborViewMatchesLattice)
{
    const GridDevice grid(GridConfig{3, 3, 4});
    // Center of the 3x3 touches all four sides.
    EXPECT_EQ(neighborSet(grid, 4), (std::set<int>{1, 3, 5, 7}));
    // Corner touches two.
    EXPECT_EQ(neighborSet(grid, 0), (std::set<int>{1, 3}));
    // Edge midpoint touches three.
    EXPECT_EQ(neighborSet(grid, 1), (std::set<int>{0, 2, 4}));
}

TEST(TargetDevice, NeighborViewIsIndexBased)
{
    const GridDevice grid(GridConfig{4, 4, 4});
    const NeighborView view = grid.neighbors(5);
    ASSERT_EQ(view.size(), 4);
    // Operator[] and iteration agree; the view is a window into the
    // device's storage, not a copy.
    int i = 0;
    for (int z : view)
        EXPECT_EQ(view[i++], z);
    EXPECT_THROW(view[4], std::logic_error);
}

TEST(TargetDevice, GridHopTableIsManhattanEverywhere)
{
    const GridDevice grid(GridConfig{5, 4, 4});
    for (int a = 0; a < grid.numZones(); ++a) {
        for (int b = 0; b < grid.numZones(); ++b) {
            const int manhattan =
                std::abs(grid.rowOf(a) - grid.rowOf(b)) +
                std::abs(grid.colOf(a) - grid.colOf(b));
            EXPECT_EQ(grid.hopDistance(a, b), manhattan)
                << "traps " << a << " -> " << b;
        }
    }
}

TEST(TargetDevice, EmlModulesAreLinearChains)
{
    const EmlDevice device(EmlConfig{}, 64); // 2 modules, 4 zones each
    for (int m = 0; m < device.numModules(); ++m) {
        const auto &zones = device.zonesOfModule(m);
        for (std::size_t i = 0; i < zones.size(); ++i) {
            const auto expected_degree =
                (i == 0 || i + 1 == zones.size()) ? 1 : 2;
            EXPECT_EQ(device.neighbors(zones[i]).size(), expected_degree);
        }
        // Hop distance inside a module is the slot-index distance.
        EXPECT_EQ(device.hopDistance(zones.front(), zones.back()),
                  static_cast<int>(zones.size()) - 1);
    }
}

TEST(TargetDevice, EmlCrossModulePairsAreUnreachable)
{
    const EmlDevice device(EmlConfig{}, 64);
    const int zone_m0 = device.zonesOfModule(0).front();
    const int zone_m1 = device.zonesOfModule(1).front();
    EXPECT_EQ(device.hopDistance(zone_m0, zone_m1), -1);
    EXPECT_EQ(device.hopDistance(zone_m0, zone_m0), 0);
}

TEST(TargetDevice, BaseVocabularyCoversBothFamilies)
{
    const EmlDevice eml(EmlConfig{}, 96);
    const GridDevice grid(GridConfig{2, 3, 8});
    const TargetDevice &eml_base = eml;
    const TargetDevice &grid_base = grid;

    EXPECT_EQ(eml_base.family(), DeviceFamily::Eml);
    EXPECT_STREQ(eml_base.familyName(), "eml");
    EXPECT_EQ(eml_base.numModules(), 3);
    EXPECT_EQ(eml_base.slotCount(), 3 * 4 * 16);
    EXPECT_FALSE(eml_base.gateCapable(0)); // leading storage zone
    EXPECT_EQ(eml_base.moduleOf(5), 1);

    EXPECT_EQ(grid_base.family(), DeviceFamily::Grid);
    EXPECT_STREQ(grid_base.familyName(), "grid");
    EXPECT_EQ(grid_base.numModules(), 1);
    EXPECT_EQ(grid_base.slotCount(), 48);
    EXPECT_TRUE(grid_base.gateCapable(0));
    EXPECT_EQ(grid_base.kindOf(3), ZoneKind::Operation);
}

TEST(TargetDevice, CenterTrapMatchesMqtFormula)
{
    const GridDevice grid(GridConfig{5, 4, 8});
    EXPECT_EQ(grid.centerTrap(), 5 / 2 + (4 / 2) * 5);
}

TEST(TargetDevice, HeterogeneousEmlHonoursPerModuleMixes)
{
    EmlConfig config;
    config.moduleMix = {{2, 1, 2}, {3, 2, 1}, {2, 1, 1}};
    const EmlDevice device(config, 96);

    EXPECT_EQ(device.numModules(), 3);
    EXPECT_EQ(device.zonesOfModule(0).size(), 5u);
    EXPECT_EQ(device.zonesOfModule(1).size(), 6u);
    EXPECT_EQ(device.zonesOfModule(2).size(), 4u);
    EXPECT_EQ(device.zonesOfKind(0, ZoneKind::Optical).size(), 2u);
    EXPECT_EQ(device.zonesOfKind(1, ZoneKind::Operation).size(), 2u);
    EXPECT_EQ(device.zonesOfKind(2, ZoneKind::Storage).size(), 2u);
    EXPECT_EQ(device.slotCount(), (5 + 6 + 4) * 16);

    // Chains stay linear per module, unreachable across modules.
    const auto &m1 = device.zonesOfModule(1);
    EXPECT_EQ(device.hopDistance(m1.front(), m1.back()), 5);
    EXPECT_EQ(device.hopDistance(device.zonesOfModule(0)[0], m1[0]), -1);
}

TEST(TargetDevice, HeterogeneousMixDisagreeingWithForcedCountFatals)
{
    EmlConfig config;
    config.moduleMix = {{2, 1, 1}, {2, 1, 1}};
    config.forcedNumModules = 3;
    EXPECT_THROW(EmlDevice(config, 32), std::runtime_error);
}

TEST(TargetDevice, ModuleWithoutGateZonesFatals)
{
    EmlConfig config;
    config.moduleMix = {{2, 1, 1}, {4, 0, 1}};
    EXPECT_THROW(EmlDevice(config, 33), std::runtime_error);
    config.moduleMix = {{2, 1, 1}, {4, 1, 0}};
    EXPECT_THROW(EmlDevice(config, 33), std::runtime_error);
}

TEST(TargetDevice, OversizedTopologyFatalsInsteadOfAllocatingTables)
{
    // Specs are user input; a grid:64x64 typo must not allocate an
    // O(zones^2) hop table.
    EXPECT_THROW(GridDevice(GridConfig{64, 64, 4}), std::runtime_error);
    EXPECT_NO_THROW(GridDevice(GridConfig{32, 32, 4}));
}

TEST(TargetDevice, TooFewModulesForQubitsFatals)
{
    EmlConfig config;
    config.moduleMix = {{2, 1, 1}}; // one module, 32-qubit ceiling
    EXPECT_THROW(EmlDevice(config, 40), std::runtime_error);
}

TEST(TargetDevice, SpecRoundTripsThroughRegistry)
{
    EmlConfig hetero;
    hetero.moduleMix = {{2, 1, 2}, {2, 1, 1}};
    hetero.trapCapacity = 20;
    const EmlDevice eml(hetero, 64);
    const GridDevice grid(GridConfig{8, 8, 16});

    for (const TargetDevice *device :
         {static_cast<const TargetDevice *>(&eml),
          static_cast<const TargetDevice *>(&grid)}) {
        const auto rebuilt =
            DeviceRegistry::create(device->spec(), 64);
        EXPECT_EQ(rebuilt->spec(), device->spec());
        EXPECT_EQ(rebuilt->numZones(), device->numZones());
        EXPECT_EQ(rebuilt->slotCount(), device->slotCount());
        EXPECT_EQ(rebuilt->family(), device->family());
        EXPECT_FALSE(device->describe().empty());
    }
}

} // namespace
} // namespace mussti
