/**
 * @file
 * Tests for the schedule validator: it must accept well-formed op
 * streams and reject every class of physical or logical violation
 * (these are the invariants the compiler tests then rely on).
 */
#include <gtest/gtest.h>

#include "arch/eml_device.h"
#include "sim/shuttle_emitter.h"
#include "sim/validator.h"

namespace mussti {
namespace {

/** Two-module fixture with a tiny circuit scheduled by hand. */
class ValidatorTest : public ::testing::Test
{
  protected:
    ValidatorTest() : device_(EmlConfig{}, 64), circuit_(64, "hand")
    {
    }

    /** Places qubit q in the given zone (back edge). */
    Placement
    basePlacement() const
    {
        Placement p(64, device_.numZones());
        for (int q = 0; q < 64; ++q) {
            const int module = q < 32 ? 0 : 1;
            const auto zones = device_.zonesOfModule(module);
            p.insert(q, zones[q % zones.size()], ChainEnd::Back);
        }
        return p;
    }

    ScheduledOp
    gate2q(int a, int b, int zone) const
    {
        ScheduledOp op;
        op.kind = OpKind::Gate2Q;
        op.q0 = a;
        op.q1 = b;
        op.zoneFrom = op.zoneTo = zone;
        op.durationUs = 40.0;
        return op;
    }

    EmlDevice device_;
    Circuit circuit_;
    PhysicalParams params_;
};

TEST_F(ValidatorTest, AcceptsEmptyScheduleOfEmptyCircuit)
{
    Placement p = basePlacement();
    Schedule schedule;
    schedule.initialChains = Schedule::snapshotChains(p);
    const ScheduleValidator validator(device_.zoneInfos());
    EXPECT_TRUE(validator.validate(schedule, circuit_));
}

TEST_F(ValidatorTest, AcceptsColocatedGate)
{
    // Qubits 1 and 5 share zone index 1 (operation) of module 0.
    circuit_.cx(1, 5);
    Placement p = basePlacement();
    Schedule schedule;
    schedule.initialChains = Schedule::snapshotChains(p);
    ScheduledOp op = gate2q(1, 5, device_.zonesOfModule(0)[1]);
    op.circuitGate = 0;
    schedule.push(op);
    EXPECT_TRUE(ScheduleValidator(device_.zoneInfos())
                    .validate(schedule, circuit_));
}

TEST_F(ValidatorTest, RejectsSplitGate)
{
    circuit_.cx(0, 1); // zones 0 and 1
    Placement p = basePlacement();
    Schedule schedule;
    schedule.initialChains = Schedule::snapshotChains(p);
    ScheduledOp op = gate2q(0, 1, device_.zonesOfModule(0)[0]);
    op.circuitGate = 0;
    schedule.push(op);
    const auto report = ScheduleValidator(device_.zoneInfos())
                            .validate(schedule, circuit_);
    EXPECT_FALSE(report);
    EXPECT_NE(report.firstError.find("P3"), std::string::npos);
}

TEST_F(ValidatorTest, RejectsGateInStorage)
{
    circuit_.cx(0, 4); // both in zone 0 (storage)
    Placement p = basePlacement();
    Schedule schedule;
    schedule.initialChains = Schedule::snapshotChains(p);
    ScheduledOp op = gate2q(0, 4, device_.zonesOfModule(0)[0]);
    op.circuitGate = 0;
    schedule.push(op);
    const auto report = ScheduleValidator(device_.zoneInfos())
                            .validate(schedule, circuit_);
    EXPECT_FALSE(report);
    EXPECT_NE(report.firstError.find("storage"), std::string::npos);
}

TEST_F(ValidatorTest, RejectsMissingCoverage)
{
    circuit_.cx(1, 5);
    Placement p = basePlacement();
    Schedule schedule;
    schedule.initialChains = Schedule::snapshotChains(p);
    const auto report = ScheduleValidator(device_.zoneInfos())
                            .validate(schedule, circuit_);
    EXPECT_FALSE(report);
    EXPECT_NE(report.firstError.find("P4"), std::string::npos);
}

TEST_F(ValidatorTest, RejectsOutOfOrderExecution)
{
    // Gate 1 depends on gate 0 via qubit 5.
    circuit_.cx(1, 5);
    circuit_.cx(5, 9);
    Placement p = basePlacement();
    Schedule schedule;
    schedule.initialChains = Schedule::snapshotChains(p);
    ScheduledOp second = gate2q(5, 9, device_.zonesOfModule(0)[1]);
    second.circuitGate = 1;
    schedule.push(second);
    ScheduledOp first = gate2q(1, 5, device_.zonesOfModule(0)[1]);
    first.circuitGate = 0;
    schedule.push(first);
    const auto report = ScheduleValidator(device_.zoneInfos())
                            .validate(schedule, circuit_);
    EXPECT_FALSE(report);
    EXPECT_NE(report.firstError.find("P4"), std::string::npos);
}

TEST_F(ValidatorTest, AcceptsEmittedShuttles)
{
    circuit_.cx(0, 1);
    Placement p = basePlacement();
    Schedule schedule;
    schedule.initialChains = Schedule::snapshotChains(p);
    ShuttleEmitter emitter(device_.zoneInfos(), params_, p, schedule);
    emitter.relocate(0, device_.zonesOfModule(0)[1]);
    ScheduledOp op = gate2q(0, 1, device_.zonesOfModule(0)[1]);
    op.circuitGate = 0;
    schedule.push(op);
    EXPECT_TRUE(ScheduleValidator(device_.zoneInfos())
                    .validate(schedule, circuit_));
}

TEST_F(ValidatorTest, RejectsHandForgedNonEdgeSplit)
{
    circuit_.cx(0, 1);
    Placement p = basePlacement();
    // Zone 0 holds 0,4,8,...: put three ions so index 1 is interior.
    Schedule schedule;
    schedule.initialChains = Schedule::snapshotChains(p);
    const int zone0 = device_.zonesOfModule(0)[0];
    // Forge a split of an interior ion (qubit 4 at index 1 of zone 0).
    ScheduledOp split;
    split.kind = OpKind::Split;
    split.q0 = 4;
    split.zoneFrom = split.zoneTo = zone0;
    split.durationUs = 80.0;
    schedule.push(split);
    const auto report = ScheduleValidator(device_.zoneInfos())
                            .validate(schedule, circuit_);
    EXPECT_FALSE(report);
    EXPECT_NE(report.firstError.find("P1"), std::string::npos);
}

TEST_F(ValidatorTest, RejectsMergeBeyondCapacity)
{
    EmlConfig tiny;
    tiny.trapCapacity = 2;
    tiny.maxQubitsPerModule = 6;
    const EmlDevice dev(tiny, 6);
    Circuit qc(6);
    Placement p(6, dev.numZones());
    const auto zones = dev.zonesOfModule(0);
    p.insert(0, zones[0], ChainEnd::Back);
    p.insert(1, zones[1], ChainEnd::Back);
    p.insert(2, zones[1], ChainEnd::Back);
    p.insert(3, zones[2], ChainEnd::Back);
    p.insert(4, zones[3], ChainEnd::Back);
    p.insert(5, zones[3], ChainEnd::Back);
    Schedule schedule;
    schedule.initialChains = Schedule::snapshotChains(p);
    // Forge: split qubit 0 from zones[0], merge into full zones[1].
    ScheduledOp split;
    split.kind = OpKind::Split;
    split.q0 = 0;
    split.zoneFrom = split.zoneTo = zones[0];
    schedule.push(split);
    ScheduledOp move;
    move.kind = OpKind::Move;
    move.q0 = 0;
    move.zoneFrom = zones[0];
    move.zoneTo = zones[1];
    schedule.push(move);
    ScheduledOp merge;
    merge.kind = OpKind::Merge;
    merge.q0 = 0;
    merge.zoneFrom = merge.zoneTo = zones[1];
    schedule.push(merge);
    const auto report =
        ScheduleValidator(dev.zoneInfos()).validate(schedule, qc);
    EXPECT_FALSE(report);
    EXPECT_NE(report.firstError.find("P2"), std::string::npos);
}

TEST_F(ValidatorTest, RejectsDanglingInFlightIon)
{
    Placement p = basePlacement();
    Schedule schedule;
    schedule.initialChains = Schedule::snapshotChains(p);
    ScheduledOp split;
    split.kind = OpKind::Split;
    split.q0 = 0;
    split.zoneFrom = split.zoneTo = device_.zonesOfModule(0)[0];
    schedule.push(split);
    const auto report = ScheduleValidator(device_.zoneInfos())
                            .validate(schedule, circuit_);
    EXPECT_FALSE(report);
    EXPECT_NE(report.firstError.find("in flight"), std::string::npos);
}

TEST_F(ValidatorTest, FiberGateRequiresOpticalZones)
{
    circuit_.cx(0, 32); // module 0 and module 1, but storage zones
    Placement p = basePlacement();
    Schedule schedule;
    schedule.initialChains = Schedule::snapshotChains(p);
    ScheduledOp fiber;
    fiber.kind = OpKind::FiberGate;
    fiber.q0 = 0;
    fiber.q1 = 32;
    fiber.zoneFrom = device_.zonesOfModule(0)[0];
    fiber.zoneTo = device_.zonesOfModule(1)[0];
    fiber.circuitGate = 0;
    schedule.push(fiber);
    const auto report = ScheduleValidator(device_.zoneInfos())
                            .validate(schedule, circuit_);
    EXPECT_FALSE(report);
    EXPECT_NE(report.firstError.find("optical"), std::string::npos);
}

TEST_F(ValidatorTest, AcceptsValidFiberGate)
{
    // Qubit 2 is in module 0's optical zone (index 2), qubit 34 in
    // module 1's optical zone.
    circuit_.cx(2, 34);
    Placement p = basePlacement();
    Schedule schedule;
    schedule.initialChains = Schedule::snapshotChains(p);
    ScheduledOp fiber;
    fiber.kind = OpKind::FiberGate;
    fiber.q0 = 2;
    fiber.q1 = 34;
    fiber.zoneFrom = device_.zonesOfModule(0)[2];
    fiber.zoneTo = device_.zonesOfModule(1)[2];
    fiber.durationUs = 200.0;
    fiber.circuitGate = 0;
    schedule.push(fiber);
    EXPECT_TRUE(ScheduleValidator(device_.zoneInfos())
                    .validate(schedule, circuit_));
}

TEST_F(ValidatorTest, InsertedSwapTripleExchangesPlacement)
{
    // One real fiber gate, then an inserted logical SWAP of (2, 34),
    // then a local gate that is only legal *because* the swap moved
    // qubit 34 into module 0's optical zone.
    circuit_.cx(2, 34);
    circuit_.cx(34, 6); // 6 lives in zone 2 (optical) of module 0
    Placement p = basePlacement();
    Schedule schedule;
    schedule.initialChains = Schedule::snapshotChains(p);
    const int optical0 = device_.zonesOfModule(0)[2];
    const int optical1 = device_.zonesOfModule(1)[2];

    ScheduledOp fiber;
    fiber.kind = OpKind::FiberGate;
    fiber.q0 = 2;
    fiber.q1 = 34;
    fiber.zoneFrom = optical0;
    fiber.zoneTo = optical1;
    fiber.circuitGate = 0;
    schedule.push(fiber);

    for (int i = 0; i < 3; ++i) {
        ScheduledOp swap_gate;
        swap_gate.kind = OpKind::FiberGate;
        swap_gate.q0 = 2;
        swap_gate.q1 = 34;
        swap_gate.zoneFrom = optical0;
        swap_gate.zoneTo = optical1;
        swap_gate.inserted = true;
        schedule.push(swap_gate);
    }

    ScheduledOp local = gate2q(34, 6, optical0);
    local.circuitGate = 1;
    schedule.push(local);

    EXPECT_TRUE(ScheduleValidator(device_.zoneInfos())
                    .validate(schedule, circuit_));
}

TEST_F(ValidatorTest, RejectsIncompleteSwapTriple)
{
    circuit_.cx(2, 34);
    Placement p = basePlacement();
    Schedule schedule;
    schedule.initialChains = Schedule::snapshotChains(p);
    const int optical0 = device_.zonesOfModule(0)[2];
    const int optical1 = device_.zonesOfModule(1)[2];
    ScheduledOp fiber;
    fiber.kind = OpKind::FiberGate;
    fiber.q0 = 2;
    fiber.q1 = 34;
    fiber.zoneFrom = optical0;
    fiber.zoneTo = optical1;
    fiber.circuitGate = 0;
    schedule.push(fiber);
    ScheduledOp swap_gate = fiber;
    swap_gate.circuitGate = -1;
    swap_gate.inserted = true;
    schedule.push(swap_gate); // only one of three
    const auto report = ScheduleValidator(device_.zoneInfos())
                            .validate(schedule, circuit_);
    EXPECT_FALSE(report);
}

} // namespace
} // namespace mussti
