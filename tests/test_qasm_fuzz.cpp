/**
 * @file
 * Mutation fuzzer for the OpenQASM 2.0 reader.
 *
 * Seeds a small corpus of valid programs (emitted by toQasm plus a
 * hand-written one covering parameters, rxx, measure, and barrier) and
 * applies deterministic byte- and token-level mutations. The oracle is
 * the parser's failure contract: every mutated input must either parse
 * (principled acceptance — many mutations keep the program valid) or
 * raise a structured MusstiError with category InvalidInput. An
 * Internal panic, an unstructured exception, a crash, or a hang on
 * attacker-controlled text is a bug.
 *
 * Inputs that break the contract are printed verbatim so they can be
 * promoted to named regressions in test_qasm.cpp (as the repeated-
 * operand crasher was). Iteration counts scale with the
 * MUSSTI_QASM_FUZZ_ITERS environment variable for CI soak runs.
 */
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "circuit/qasm.h"
#include "common/error.h"
#include "common/logging.h"
#include "common/rng.h"
#include "workloads/workloads.h"

namespace mussti {
namespace {

/** Iteration count, overridable for CI soak runs. */
int
fuzzIters(int fallback)
{
    const char *env = std::getenv("MUSSTI_QASM_FUZZ_ITERS");
    if (env == nullptr || *env == '\0')
        return fallback;
    const int parsed = std::atoi(env);
    return parsed > 0 ? parsed : fallback;
}

std::vector<std::string>
seedCorpus()
{
    std::vector<std::string> corpus;
    corpus.push_back(toQasm(makeBenchmark("ghz", 8)));
    corpus.push_back(toQasm(makeBenchmark("adder", 8)));
    corpus.push_back(toQasm(makeBenchmark("qft", 6)));
    corpus.push_back(
        "OPENQASM 2.0;\n"
        "include \"qelib1.inc\";\n"
        "// fuzz seed with every statement shape\n"
        "qreg q[4];\n"
        "creg c[4];\n"
        "h q[0];\n"
        "rz(pi/2) q[1];\n"
        "ry(-0.25) q[2];\n"
        "u(2*pi) q[3];\n"
        "cx q[0],q[1];\n"
        "rxx(-3*pi/2) q[2],q[3];\n"
        "barrier q;\n"
        "measure q[0] -> c[0];\n");
    return corpus;
}

/**
 * The oracle: parse must succeed or fail as structured InvalidInput.
 * Returns false (after printing the input) on a contract violation.
 */
bool
parsesPrincipled(const std::string &text)
{
    try {
        const Circuit qc = fromQasm(text, "fuzz");
        (void)qc; // accepted — the mutation kept the program valid
        return true;
    } catch (const MusstiError &err) {
        if (err.category() == ErrorCategory::InvalidInput)
            return true;
        ADD_FAILURE() << "non-InvalidInput error (category "
                      << err.categoryName() << ", code " << err.code()
                      << ") for input:\n"
                      << text;
        return false;
    } catch (const std::exception &err) {
        ADD_FAILURE() << "unstructured exception (" << err.what()
                      << ") for input:\n"
                      << text;
        return false;
    }
}

/** Characters the grammar cares about, over-weighted in mutations. */
const std::string kInterestingChars = "[](),;*/-+.0123456789 qx";

std::string
mutateBytes(const std::string &input, Rng &rng)
{
    std::string text = input;
    const int edits = rng.intIn(1, 4);
    for (int e = 0; e < edits && !text.empty(); ++e) {
        const std::size_t at = rng.uniform(text.size());
        switch (rng.intIn(0, 4)) {
          case 0: // replace with an interesting char
            text[at] = kInterestingChars[rng.uniform(
                kInterestingChars.size())];
            break;
          case 1: // replace with an arbitrary byte
            text[at] = static_cast<char>(rng.uniform(256));
            break;
          case 2: // delete a short span
            text.erase(at, rng.intIn(1, 8));
            break;
          case 3: // insert an interesting char
            text.insert(text.begin() + static_cast<std::ptrdiff_t>(at),
                        kInterestingChars[rng.uniform(
                            kInterestingChars.size())]);
            break;
          case 4: // truncate (simulates a torn file)
            text.resize(at);
            break;
        }
    }
    return text;
}

std::string
mutateTokens(const std::string &input, Rng &rng)
{
    // Statement-level mutations: split on ';', then drop, duplicate,
    // swap, or corrupt whole statements — near-valid programs that
    // stress the semantic checks rather than the lexer.
    std::vector<std::string> stmts;
    std::string current;
    for (const char c : input) {
        current += c;
        if (c == ';') {
            stmts.push_back(current);
            current.clear();
        }
    }
    if (!current.empty())
        stmts.push_back(current);
    if (stmts.empty())
        return input;

    const int edits = rng.intIn(1, 3);
    for (int e = 0; e < edits && !stmts.empty(); ++e) {
        const std::size_t at = rng.uniform(stmts.size());
        switch (rng.intIn(0, 4)) {
          case 0: // drop a statement (e.g. the qreg declaration)
            stmts.erase(stmts.begin() +
                        static_cast<std::ptrdiff_t>(at));
            break;
          case 1: // duplicate a statement (e.g. a second qreg)
            stmts.insert(stmts.begin() +
                         static_cast<std::ptrdiff_t>(at), stmts[at]);
            break;
          case 2: { // swap two statements (gate before qreg, ...)
            const std::size_t other = rng.uniform(stmts.size());
            std::swap(stmts[at], stmts[other]);
            break;
          }
          case 3: { // rewrite an operand index, often out of range
            const std::size_t lb = stmts[at].find('[');
            const std::size_t rb = stmts[at].find(']');
            if (lb != std::string::npos && rb != std::string::npos &&
                rb > lb) {
                const char *replacements[] = {"0", "3", "99",
                                              "4294967295", "-1", "x"};
                stmts[at] = stmts[at].substr(0, lb + 1) +
                            replacements[rng.uniform(6)] +
                            stmts[at].substr(rb);
            }
            break;
          }
          case 4: // corrupt the statement's bytes
            stmts[at] = mutateBytes(stmts[at], rng);
            break;
        }
    }
    std::string out;
    for (const std::string &stmt : stmts)
        out += stmt;
    return out;
}

TEST(QasmFuzz, ByteMutationsNeverPanic)
{
    // Expected failures by the thousand: mute the fatal echo (the
    // exceptions still carry their diagnostics) and the warn chatter.
    const ScopedFatalSilence quiet(/*silence_warns=*/true);
    const auto corpus = seedCorpus();
    const int iters = fuzzIters(500);
    Rng rng(0x5eedULL);
    for (int i = 0; i < iters; ++i) {
        const std::string &seed = corpus[rng.uniform(corpus.size())];
        if (!parsesPrincipled(mutateBytes(seed, rng)))
            return; // the failing input was already printed
    }
}

TEST(QasmFuzz, TokenMutationsNeverPanic)
{
    const ScopedFatalSilence quiet(/*silence_warns=*/true);
    const auto corpus = seedCorpus();
    const int iters = fuzzIters(500);
    Rng rng(0xfaceULL);
    for (int i = 0; i < iters; ++i) {
        const std::string &seed = corpus[rng.uniform(corpus.size())];
        if (!parsesPrincipled(mutateTokens(seed, rng)))
            return;
    }
}

TEST(QasmFuzz, StackedMutationsNeverPanic)
{
    // Several rounds of both mutators — far-from-valid inputs that
    // stress the lexer's recovery rather than single semantic checks.
    const ScopedFatalSilence quiet(/*silence_warns=*/true);
    const auto corpus = seedCorpus();
    const int iters = fuzzIters(300);
    Rng rng(0xd00dULL);
    for (int i = 0; i < iters; ++i) {
        std::string text = corpus[rng.uniform(corpus.size())];
        const int rounds = rng.intIn(2, 5);
        for (int r = 0; r < rounds; ++r)
            text = rng.chance(0.5) ? mutateBytes(text, rng)
                                   : mutateTokens(text, rng);
        if (!parsesPrincipled(text))
            return;
    }
}

TEST(QasmFuzz, CorpusSeedsParseCleanly)
{
    // The mutation baseline must itself be valid, or "principled
    // acceptance" would be vacuous.
    for (const std::string &seed : seedCorpus())
        EXPECT_NO_THROW((void)fromQasm(seed, "seed"));
}

} // namespace
} // namespace mussti
