/**
 * @file
 * Device-shape property sweep: the compiler must produce valid
 * schedules across the whole configuration space the benches explore —
 * capacities, zone mixes, module counts, optical-zone counts, and
 * replacement policies — on representative workloads. Guards against
 * configuration-dependent deadlocks and capacity accounting bugs.
 */
#include <gtest/gtest.h>

#include "core/compiler.h"
#include "sim/validator.h"
#include "workloads/workloads.h"

namespace mussti {
namespace {

struct SweepPoint
{
    int capacity;
    int storageZones;
    int operationZones;
    int opticalZones;
    int maxPerModule;
};

class DeviceSweepTest : public ::testing::TestWithParam<SweepPoint>
{};

TEST_P(DeviceSweepTest, CompilesAndValidates)
{
    const SweepPoint p = GetParam();
    MusstiConfig config;
    config.device.trapCapacity = p.capacity;
    config.device.numStorageZones = p.storageZones;
    config.device.numOperationZones = p.operationZones;
    config.device.numOpticalZones = p.opticalZones;
    config.device.maxQubitsPerModule = p.maxPerModule;

    for (const char *family : {"ghz", "qft", "sqrt"}) {
        const Circuit qc = makeBenchmark(family, 48);
        const auto result = MusstiCompiler(config).compile(qc);
        const EmlDevice device(config.device, qc.numQubits());
        const auto report = ScheduleValidator(device.zoneInfos())
                                .validate(result.schedule, result.lowered);
        ASSERT_TRUE(report)
            << family << " cap=" << p.capacity << " zones="
            << p.storageZones << "/" << p.operationZones << "/"
            << p.opticalZones << " perModule=" << p.maxPerModule << ": "
            << report.firstError;
    }
}

INSTANTIATE_TEST_SUITE_P(
    ConfigurationSpace, DeviceSweepTest,
    ::testing::Values(
        SweepPoint{16, 2, 1, 1, 32},  // paper default
        SweepPoint{12, 2, 1, 1, 32},  // Fig 7 low end
        SweepPoint{24, 2, 1, 1, 32},  // Fig 7 high end
        SweepPoint{16, 2, 1, 2, 32},  // Fig 12 two optical zones
        SweepPoint{8, 2, 2, 2, 32},   // Table 2 "2x3" structure
        SweepPoint{16, 4, 1, 1, 32},  // storage-heavy
        SweepPoint{16, 2, 2, 1, 32},  // two operation zones
        SweepPoint{16, 2, 1, 1, 16},  // small modules (more fiber)
        SweepPoint{8, 2, 1, 1, 16},   // tight capacity, small modules
        SweepPoint{20, 1, 1, 1, 24},  // single storage zone
        SweepPoint{6, 3, 2, 1, 16},   // many small zones
        SweepPoint{16, 0, 1, 1, 24}   // no storage at all
        ));

TEST(DeviceSweep, ModuleCountFollowsMaxPerModule)
{
    MusstiConfig config;
    config.device.maxQubitsPerModule = 16;
    const Circuit qc = makeGhz(48);
    const MusstiCompiler compiler(config);
    EXPECT_EQ(compiler.deviceFor(qc)->numModules(), 3);
    const auto result = compiler.compile(qc);
    // Two module boundaries -> at least two fiber gates.
    EXPECT_GE(result.metrics.fiberGateCount, 2);
}

TEST(DeviceSweep, SmallerModulesMeanMoreFiberGates)
{
    // With SWAP insertion disabled (it can reshuffle enough to blur the
    // effect on all-to-all circuits), more module boundaries mean more
    // cross-module gates.
    const Circuit qc = makeQft(64);
    MusstiConfig big;
    big.device.maxQubitsPerModule = 32;
    big.enableSwapInsertion = false;
    MusstiConfig small = big;
    small.device.maxQubitsPerModule = 16;
    const auto big_result = MusstiCompiler(big).compile(qc);
    const auto small_result = MusstiCompiler(small).compile(qc);
    EXPECT_GT(small_result.metrics.fiberGateCount,
              big_result.metrics.fiberGateCount);
}

TEST(DeviceSweep, DeterministicAcrossRuns)
{
    // The whole pipeline is deterministic: identical configs and
    // circuits give op-identical schedules.
    const Circuit qc = makeSqrt(63);
    MusstiConfig config;
    const auto a = MusstiCompiler(config).compile(qc);
    const auto b = MusstiCompiler(config).compile(qc);
    ASSERT_EQ(a.schedule.ops.size(), b.schedule.ops.size());
    for (std::size_t i = 0; i < a.schedule.ops.size(); ++i) {
        EXPECT_EQ(a.schedule.ops[i].kind, b.schedule.ops[i].kind);
        EXPECT_EQ(a.schedule.ops[i].q0, b.schedule.ops[i].q0);
        EXPECT_EQ(a.schedule.ops[i].q1, b.schedule.ops[i].q1);
    }
    EXPECT_EQ(a.metrics.shuttleCount, b.metrics.shuttleCount);
    EXPECT_DOUBLE_EQ(a.metrics.lnFidelity, b.metrics.lnFidelity);
}

TEST(DeviceSweep, MetricsDecompositionSumsToTotal)
{
    for (const char *family : {"ghz", "sqrt", "ran"}) {
        const Circuit qc = makeBenchmark(family, 64);
        const auto result = MusstiCompiler().compile(qc);
        const double sum = result.metrics.lnFromShuttleOps +
                           result.metrics.lnFromGateIntrinsic +
                           result.metrics.lnFromHeatBackground +
                           result.metrics.lnFromLifetime;
        EXPECT_NEAR(sum, result.metrics.lnFidelity,
                    1e-9 * std::abs(sum) + 1e-12)
            << family;
    }
}

} // namespace
} // namespace mussti
