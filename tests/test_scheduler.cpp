/**
 * @file
 * Tests for the MUSS-TI scheduler and compiler facade: every produced
 * schedule must validate against the source circuit, and the scheduling
 * policies must show their signature behaviours (executable-first
 * draining, low shuttle counts on streaming workloads, fiber gates for
 * cross-module work).
 */
#include <gtest/gtest.h>

#include "common/hash.h"
#include "core/compiler.h"
#include "core/mapper.h"
#include "core/scheduler.h"
#include "sim/validator.h"
#include "workloads/workloads.h"

namespace mussti {
namespace {

CompileResult
compileWith(const Circuit &circuit, MappingKind mapping,
            bool swap_insertion = true)
{
    MusstiConfig config;
    config.mapping = mapping;
    config.enableSwapInsertion = swap_insertion;
    return MusstiCompiler(config).compile(circuit);
}

void
expectValid(const Circuit &circuit, const CompileResult &result)
{
    MusstiConfig config;
    const EmlDevice device(config.device, circuit.numQubits());
    const auto report = ScheduleValidator(device.zoneInfos())
                            .validate(result.schedule, result.lowered);
    EXPECT_TRUE(report) << report.firstError;
}

TEST(Scheduler, GhzSingleModuleValid)
{
    const Circuit qc = makeGhz(32);
    const auto result = compileWith(qc, MappingKind::Trivial);
    expectValid(qc, result);
    EXPECT_EQ(result.metrics.gate2qCount +
              result.metrics.fiberGateCount, 31);
}

TEST(Scheduler, GhzStreamingHasFewShuttles)
{
    // A linear chain through a 32-slot gate area: the LRU stream should
    // need far fewer shuttles than gates.
    const Circuit qc = makeGhz(32);
    const auto result = compileWith(qc, MappingKind::Trivial);
    EXPECT_LT(result.metrics.shuttleCount, 16);
}

TEST(Scheduler, SingleModuleHasNoFiberGates)
{
    const Circuit qc = makeAdder(32);
    const auto result = compileWith(qc, MappingKind::Trivial);
    EXPECT_EQ(result.metrics.fiberGateCount, 0);
    expectValid(qc, result);
}

TEST(Scheduler, CrossModuleUsesFiber)
{
    // 64 qubits -> 2 modules; GHZ crosses the boundary exactly once
    // per chain link across modules.
    const Circuit qc = makeGhz(64);
    const auto result = compileWith(qc, MappingKind::Trivial, false);
    EXPECT_GE(result.metrics.fiberGateCount, 1);
    expectValid(qc, result);
}

TEST(Scheduler, ExecutableGatesDrainWithoutRouting)
{
    // Two gates already co-located in the optical zone execute with
    // zero shuttles under trivial mapping (qubits 0..15 share zone).
    Circuit qc(32, "drain");
    qc.cx(0, 1);
    qc.cx(2, 3);
    const auto result = compileWith(qc, MappingKind::Trivial);
    EXPECT_EQ(result.metrics.shuttleCount, 0);
    expectValid(qc, result);
}

TEST(Scheduler, OneQubitGatesAreCostedNotRouted)
{
    Circuit qc(32, "oneq");
    qc.h(0);
    qc.h(31); // resident in storage under trivial mapping
    qc.cx(0, 1);
    const auto result = compileWith(qc, MappingKind::Trivial);
    EXPECT_EQ(result.metrics.gate1qCount, 2);
    EXPECT_EQ(result.metrics.shuttleCount, 0);
}

TEST(Scheduler, MeasureAndBarrierAreFree)
{
    Circuit qc(32, "free");
    qc.cx(0, 1);
    qc.measure(0);
    qc.measure(1);
    qc.add(Gate(GateKind::Barrier, -1));
    const auto result = compileWith(qc, MappingKind::Trivial);
    EXPECT_EQ(result.metrics.gate1qCount, 0);
    EXPECT_EQ(result.metrics.gate2qCount, 1);
}

TEST(Scheduler, LoweredCircuitDecomposesSwaps)
{
    Circuit qc(32, "sw");
    qc.swap(0, 20);
    const auto result = compileWith(qc, MappingKind::Trivial);
    EXPECT_EQ(result.lowered.twoQubitCount(), 3);
    expectValid(qc, result);
}

TEST(Scheduler, SchedulerRunRejectsPartialPlacement)
{
    MusstiConfig config;
    const Circuit qc = makeGhz(8);
    const EmlDevice device(config.device, 8);
    const PhysicalParams params;
    MusstiScheduler scheduler(device, params, config);
    Placement partial(8, device.numZones()); // nothing placed
    EXPECT_THROW(scheduler.run(qc, partial), std::runtime_error);
}

TEST(Scheduler, CompileTimeIsMeasured)
{
    const auto result = compileWith(makeAdder(64), MappingKind::Sabre);
    EXPECT_GT(result.compileTimeSec, 0.0);
}

TEST(Scheduler, MetricsTimeMatchesScheduleSum)
{
    const auto result = compileWith(makeQft(16), MappingKind::Trivial);
    EXPECT_NEAR(result.metrics.executionTimeUs,
                result.schedule.serialDurationUs(), 1e-9);
}

/**
 * FNV-1a fingerprint over everything a compilation produces: the full
 * op stream (every field of every op), the initial and final chain
 * snapshots, the counters, and the headline metrics. Any behavioural
 * drift in the scheduler/router/SWAP-inserter changes it.
 */
std::uint64_t
scheduleFingerprint(const CompileResult &r)
{
    Fnv1a h;
    h.update(static_cast<std::uint64_t>(r.schedule.ops.size()));
    for (const ScheduledOp &op : r.schedule.ops) {
        h.update(static_cast<int>(op.kind));
        h.update(op.q0);
        h.update(op.q1);
        h.update(op.zoneFrom);
        h.update(op.zoneTo);
        h.update(op.durationUs);
        h.update(op.nbar);
        h.update(op.circuitGate);
        h.update(op.inserted);
        h.update(op.enterFront);
    }
    for (const auto &chain : r.schedule.initialChains) {
        h.update(static_cast<std::uint64_t>(chain.size()));
        for (int q : chain)
            h.update(q);
    }
    for (const auto &chain : r.finalChains) {
        h.update(static_cast<std::uint64_t>(chain.size()));
        for (int q : chain)
            h.update(q);
    }
    h.update(r.schedule.shuttleCount);
    h.update(r.schedule.ionSwapCount);
    h.update(r.schedule.insertedSwapGates);
    h.update(r.swapInsertions);
    h.update(r.evictions);
    h.update(r.metrics.shuttleCount);
    h.update(r.metrics.executionTimeUs);
    h.update(r.metrics.lnFidelity);
    return h.digest();
}

struct GoldenCase
{
    const char *family;
    int qubits;
    MappingKind mapping;
    ReplacementPolicy policy;
    std::uint64_t fingerprint;
};

/**
 * Golden fingerprints captured from the pre-incremental-window
 * implementation (the PR-1 tree, whose scheduler recomputed the whole
 * look-ahead window per routing step). The incremental DAG window,
 * nextUse snapshotting, lazy weight rows, distance table, and workspace
 * reuse must all be pure optimisations: schedules and metrics stay
 * bit-identical. If an INTENTIONAL behaviour change ever lands, refresh
 * these constants in the same commit and say so in its message.
 */
TEST(Scheduler, BitIdenticalToPreIncrementalWindowImplementation)
{
    const GoldenCase cases[] = {
        {"adder", 16, MappingKind::Trivial,
         ReplacementPolicy::AnticipatoryLru, 0xb9187d857d8727f8ull},
        {"adder", 48, MappingKind::Sabre,
         ReplacementPolicy::AnticipatoryLru, 0x7f671609132e03adull},
        {"bv", 48, MappingKind::Sabre,
         ReplacementPolicy::AnticipatoryLru, 0xd1cbd994e5467a2bull},
        {"ghz", 64, MappingKind::Sabre,
         ReplacementPolicy::AnticipatoryLru, 0xde02e8451cc0bd8aull},
        {"qaoa", 48, MappingKind::Sabre,
         ReplacementPolicy::AnticipatoryLru, 0xc0f43afa63592fb0ull},
        {"qft", 32, MappingKind::Sabre,
         ReplacementPolicy::AnticipatoryLru, 0x0fe7e02abaeb3ec6ull},
        {"sqrt", 45, MappingKind::Sabre,
         ReplacementPolicy::AnticipatoryLru, 0x48c6afefa71e0c0eull},
        {"ran", 40, MappingKind::Sabre,
         ReplacementPolicy::AnticipatoryLru, 0x58a2db1e0094056dull},
        {"sc", 36, MappingKind::Sabre,
         ReplacementPolicy::AnticipatoryLru, 0xb0c28092aa9b9f79ull},
        {"adder", 128, MappingKind::Sabre,
         ReplacementPolicy::AnticipatoryLru, 0x9da91635a092ba24ull},
        {"qaoa", 96, MappingKind::Sabre,
         ReplacementPolicy::AnticipatoryLru, 0x1040969b00253364ull},
        {"ran", 40, MappingKind::Sabre, ReplacementPolicy::Lru,
         0xa60e1087b9b955a0ull},
        {"ran", 40, MappingKind::Sabre, ReplacementPolicy::Fifo,
         0x3771b757ac38925dull},
        {"ran", 40, MappingKind::Sabre, ReplacementPolicy::Random,
         0x55b80d6e0f148401ull},
    };
    for (const GoldenCase &c : cases) {
        MusstiConfig config;
        config.mapping = c.mapping;
        config.replacement = c.policy;
        const auto result =
            MusstiCompiler(config).compile(makeBenchmark(c.family,
                                                         c.qubits));
        EXPECT_EQ(scheduleFingerprint(result), c.fingerprint)
            << c.family << "_n" << c.qubits << " diverged from the "
            << "pre-incremental-window scheduler";
    }
}

/**
 * The incrementally maintained executable-ready worklist must drain in
 * exactly the order of the historical full-frontier re-scan: compile
 * every family under both drains and compare full fingerprints. This is
 * the cross-check oracle behind MusstiConfig::incrementalFrontier —
 * relocation dirtying (shuttles, evictions, logical SWAP exchanges) and
 * mid-round requeue ordering all fold into the fingerprint.
 */
TEST(Scheduler, FrontierWorklistMatchesFullRescan)
{
    const char *families[] = {"adder", "bv", "ghz", "qaoa", "qft",
                              "sqrt", "ran", "sc"};
    const ReplacementPolicy policies[] = {
        ReplacementPolicy::AnticipatoryLru, ReplacementPolicy::Lru,
        ReplacementPolicy::Fifo, ReplacementPolicy::Random};
    for (const char *family : families) {
        for (int qubits : {48, 96}) {
            const Circuit qc = makeBenchmark(family, qubits);
            MusstiConfig incremental;
            MusstiConfig rescan;
            rescan.incrementalFrontier = false;
            const auto fast = MusstiCompiler(incremental).compile(qc);
            const auto slow = MusstiCompiler(rescan).compile(qc);
            EXPECT_EQ(scheduleFingerprint(fast),
                      scheduleFingerprint(slow))
                << family << "_n" << qubits
                << ": worklist drain diverged from the full re-scan";
        }
    }
    // The drains must also agree under every replacement policy — each
    // policy takes a different victim, so relocation-dirtying patterns
    // differ.
    for (const ReplacementPolicy policy : policies) {
        const Circuit qc = makeBenchmark("ran", 64);
        MusstiConfig incremental;
        incremental.replacement = policy;
        MusstiConfig rescan = incremental;
        rescan.incrementalFrontier = false;
        EXPECT_EQ(scheduleFingerprint(
                      MusstiCompiler(incremental).compile(qc)),
                  scheduleFingerprint(MusstiCompiler(rescan).compile(qc)))
            << "policy " << static_cast<int>(policy)
            << ": worklist drain diverged from the full re-scan";
    }
}

/** Every workload family at several sizes must produce valid schedules
 * under both mappings — the central correctness property sweep. */
class SchedulerPropertyTest
    : public ::testing::TestWithParam<
          std::tuple<const char *, int, MappingKind>>
{};

TEST_P(SchedulerPropertyTest, ScheduleValidates)
{
    const auto [family, n, mapping] = GetParam();
    const Circuit qc = makeBenchmark(family, n);
    const auto result = compileWith(qc, mapping);
    MusstiConfig config;
    const EmlDevice device(config.device, qc.numQubits());
    const auto report = ScheduleValidator(device.zoneInfos())
                            .validate(result.schedule, result.lowered);
    ASSERT_TRUE(report) << family << "_n" << n << ": "
                        << report.firstError;
    // Coverage: every 2q gate of the lowered circuit is in the stream.
    EXPECT_EQ(result.metrics.gate2qCount + result.metrics.fiberGateCount -
                  3 * result.metrics.insertedSwapGates,
              result.lowered.twoQubitCount());
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, SchedulerPropertyTest,
    ::testing::Combine(
        ::testing::Values("adder", "bv", "ghz", "qaoa", "qft", "sqrt",
                          "ran", "sc"),
        ::testing::Values(16, 32, 48),
        ::testing::Values(MappingKind::Trivial, MappingKind::Sabre)));

/** Larger multi-module sweep (slower; fewer combos). */
class SchedulerScaleTest
    : public ::testing::TestWithParam<std::pair<const char *, int>>
{};

TEST_P(SchedulerScaleTest, MultiModuleValidates)
{
    const auto [family, n] = GetParam();
    const Circuit qc = makeBenchmark(family, n);
    const auto result = compileWith(qc, MappingKind::Sabre);
    MusstiConfig config;
    const EmlDevice device(config.device, qc.numQubits());
    const auto report = ScheduleValidator(device.zoneInfos())
                            .validate(result.schedule, result.lowered);
    ASSERT_TRUE(report) << report.firstError;
    EXPECT_GT(device.numModules(), 1);
}

INSTANTIATE_TEST_SUITE_P(
    MediumSizes, SchedulerScaleTest,
    ::testing::Values(std::pair{"adder", 128}, std::pair{"bv", 128},
                      std::pair{"ghz", 128}, std::pair{"qaoa", 128},
                      std::pair{"sqrt", 117}));

} // namespace
} // namespace mussti
