/**
 * @file
 * Tests for the pass-based compilation pipeline: pass ordering of the
 * stock backends, context invariant enforcement, and equivalence of the
 * pipelined MUSS-TI compiler (including the Sabre two-fold search) with
 * the pre-refactor monolithic flow, re-implemented here verbatim as the
 * reference.
 */
#include <gtest/gtest.h>

#include <type_traits>

#include "baselines/murali.h"
#include "core/compiler.h"
#include "core/mapper.h"
#include "core/pipeline.h"
#include "core/scheduler.h"
#include "sim/evaluation_pass.h"
#include "sim/evaluator.h"
#include "workloads/workloads.h"

namespace mussti {
namespace {

// CompileResult must not be constructible by accident from a Circuit.
static_assert(!std::is_convertible_v<Circuit, CompileResult>,
              "CompileResult(Circuit) must be explicit");

/**
 * The pre-refactor MusstiCompiler::compile body (monolithic forward /
 * reverse / forward flow), kept as the behavioural reference for the
 * pipelined implementation.
 */
CompileResult
referenceCompile(const Circuit &circuit, const MusstiConfig &config,
                 const PhysicalParams &params)
{
    CompileResult result(circuit.withSwapsDecomposed());
    const EmlDevice device(config.device, circuit.numQubits());
    const MusstiScheduler scheduler(device, params, config);
    const Evaluator evaluator(params);

    const Placement trivial = trivialPlacement(device,
                                               circuit.numQubits());
    auto output = scheduler.run(result.lowered, trivial);
    Metrics metrics = evaluator.evaluate(output.schedule,
                                         device.zoneInfos());

    if (config.mapping == MappingKind::Sabre) {
        const Circuit reversed = result.lowered.reversed();
        auto backward = scheduler.run(reversed, output.finalPlacement);
        auto refined = scheduler.run(result.lowered,
                                     backward.finalPlacement);
        Metrics refined_metrics = evaluator.evaluate(
            refined.schedule, device.zoneInfos());
        if (refined_metrics.lnFidelity > metrics.lnFidelity) {
            output = std::move(refined);
            metrics = refined_metrics;
        }
    }

    result.schedule = std::move(output.schedule);
    result.swapInsertions = output.swapInsertions;
    result.evictions = output.evictions;
    result.finalChains = Schedule::snapshotChains(output.finalPlacement);
    result.metrics = metrics;
    return result;
}

void
expectEquivalent(const CompileResult &pipelined,
                 const CompileResult &reference)
{
    EXPECT_EQ(pipelined.schedule.ops.size(),
              reference.schedule.ops.size());
    EXPECT_EQ(pipelined.metrics.shuttleCount,
              reference.metrics.shuttleCount);
    EXPECT_EQ(pipelined.metrics.ionSwapCount,
              reference.metrics.ionSwapCount);
    EXPECT_EQ(pipelined.metrics.gate1qCount,
              reference.metrics.gate1qCount);
    EXPECT_EQ(pipelined.metrics.gate2qCount,
              reference.metrics.gate2qCount);
    EXPECT_EQ(pipelined.metrics.fiberGateCount,
              reference.metrics.fiberGateCount);
    EXPECT_EQ(pipelined.metrics.executionTimeUs,
              reference.metrics.executionTimeUs);
    EXPECT_EQ(pipelined.metrics.lnFidelity,
              reference.metrics.lnFidelity);
    EXPECT_EQ(pipelined.swapInsertions, reference.swapInsertions);
    EXPECT_EQ(pipelined.evictions, reference.evictions);
    EXPECT_EQ(pipelined.finalChains, reference.finalChains);
    EXPECT_EQ(pipelined.lowered.size(), reference.lowered.size());
}

TEST(Pipeline, MusstiPassOrdering)
{
    const MusstiCompiler compiler;
    const auto names = compiler.makePipeline().passNames();
    const std::vector<std::string> expected{
        "lower-swaps",      "eml-target", "trivial-placement",
        "mussti-schedule",  "sabre-two-fold", "evaluate"};
    EXPECT_EQ(names, expected);
}

TEST(Pipeline, GridPassOrdering)
{
    const MuraliCompiler compiler(GridConfig{2, 2, 16},
                                  PhysicalParams{});
    const auto names = compiler.makePipeline().passNames();
    const std::vector<std::string> expected{
        "lower-swaps", "grid-target", "grid-placement",
        "grid-schedule", "evaluate"};
    EXPECT_EQ(names, expected);
}

TEST(Pipeline, PassTraceRecordsEveryStageInOrder)
{
    const MusstiCompiler compiler;
    const auto result = compiler.compile(makeGhz(32));
    const auto names = compiler.makePipeline().passNames();
    ASSERT_EQ(result.passTrace.size(), names.size());
    for (std::size_t i = 0; i < names.size(); ++i) {
        EXPECT_EQ(result.passTrace[i].pass, names[i]);
        EXPECT_GE(result.passTrace[i].seconds, 0.0);
    }
}

TEST(Pipeline, RejectsPipelineWithoutLowering)
{
    PassPipeline pipeline;
    pipeline.add(std::make_unique<EvaluationPass>());
    // EvaluationPass itself panics first: no target device was set.
    EXPECT_THROW(pipeline.compile(makeGhz(8), PhysicalParams{}, 0),
                 std::logic_error);
}

TEST(Pipeline, RejectsPipelineWithoutEvaluation)
{
    PassPipeline pipeline;
    pipeline.add(std::make_unique<LowerSwapsPass>());
    EXPECT_THROW(pipeline.compile(makeGhz(8), PhysicalParams{}, 0),
                 std::logic_error);
}

TEST(Pipeline, ContextRequiresPanicWhenStagesMissing)
{
    const PhysicalParams params;
    CompileContext ctx(makeGhz(8), params, 0);
    EXPECT_THROW(ctx.requireLowered(), std::logic_error);
    EXPECT_THROW(ctx.requirePlacement(), std::logic_error);
    EXPECT_THROW(ctx.requireEmlDevice(), std::logic_error);
    EXPECT_THROW(ctx.requireGridDevice(), std::logic_error);
    EXPECT_THROW(ctx.zoneInfos(), std::logic_error);
}

TEST(Pipeline, LowerSwapsPassDecomposes)
{
    Circuit qc(4, "swapper");
    qc.swap(0, 3);
    const PhysicalParams params;
    CompileContext ctx(qc, params, 0);
    LowerSwapsPass pass;
    pass.run(ctx);
    EXPECT_TRUE(ctx.loweredReady);
    EXPECT_EQ(ctx.requireLowered().size(), 3u); // SWAP -> 3 CX
    EXPECT_EQ(ctx.requireLowered().twoQubitCount(), 3);
}

TEST(Pipeline, SabreTwoFoldMatchesPreRefactorResult)
{
    for (const char *family : {"adder", "qft", "bv"}) {
        const Circuit qc = makeBenchmark(family, 32);
        MusstiConfig config; // Sabre mapping is the default
        const PhysicalParams params;
        expectEquivalent(MusstiCompiler(config, params).compile(qc),
                         referenceCompile(qc, config, params));
    }
}

TEST(Pipeline, TrivialMappingMatchesPreRefactorResult)
{
    const Circuit qc = makeBenchmark("sqrt", 45);
    MusstiConfig config;
    config.mapping = MappingKind::Trivial;
    const PhysicalParams params;
    expectEquivalent(MusstiCompiler(config, params).compile(qc),
                     referenceCompile(qc, config, params));
}

TEST(Pipeline, RandomPolicyMatchesPreRefactorResult)
{
    const Circuit qc = makeBenchmark("adder", 64);
    MusstiConfig config;
    config.replacement = ReplacementPolicy::Random;
    config.seed = 99;
    const PhysicalParams params;
    expectEquivalent(MusstiCompiler(config, params).compile(qc),
                     referenceCompile(qc, config, params));
}

TEST(Pipeline, CompileSeededOverridesConfiguredSeed)
{
    const Circuit qc = makeBenchmark("ran", 48);
    MusstiConfig config;
    config.replacement = ReplacementPolicy::Random;
    config.seed = 1;
    MusstiConfig reseeded = config;
    reseeded.seed = 1234;

    const MusstiCompiler compiler(config);
    const auto via_seed_arg = compiler.compileSeeded(qc, 1234);
    const auto via_config = MusstiCompiler(reseeded).compile(qc);
    EXPECT_EQ(via_seed_arg.metrics.lnFidelity,
              via_config.metrics.lnFidelity);
    EXPECT_EQ(via_seed_arg.metrics.shuttleCount,
              via_config.metrics.shuttleCount);
    EXPECT_EQ(via_seed_arg.schedule.ops.size(),
              via_config.schedule.ops.size());
}

TEST(Pipeline, BackendsShareOneInterface)
{
    // Every stock compiler is reachable through ICompilerBackend alone.
    const GridConfig grid{2, 2, 16};
    const PhysicalParams params;
    std::vector<std::shared_ptr<const ICompilerBackend>> backends;
    backends.push_back(std::make_shared<const MusstiCompiler>());
    backends.push_back(
        std::make_shared<const MuraliCompiler>(grid, params));
    const Circuit qc = makeGhz(24);
    for (const auto &backend : backends) {
        const CompileResult result = backend->compile(qc);
        EXPECT_FALSE(backend->name().empty());
        EXPECT_NE(backend->configDigest(), 0u);
        EXPECT_GT(result.schedule.ops.size(), 0u);
        EXPECT_LT(result.metrics.lnFidelity, 0.0);
    }
}

} // namespace
} // namespace mussti
