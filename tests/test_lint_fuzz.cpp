/**
 * @file
 * Bounded fuzz smoke: the linter as an oracle over random workloads.
 *
 * Random circuits are compiled through every backend against two device
 * shapes each, and every resulting schedule must lint clean AND satisfy
 * the replay validator. This is the cheap always-on slice of the fuzz
 * strategy (ISSUE 7): the corpus test proves the linter catches planted
 * violations; this test proves the compilers never produce one on
 * inputs nobody hand-picked. Seeds are fixed so failures reproduce.
 */
#include <gtest/gtest.h>

#include "arch/device_registry.h"
#include "baselines/backend_factory.h"
#include "lint/schedule_linter.h"
#include "sim/validator.h"
#include "workloads/workloads.h"

namespace mussti {
namespace {

constexpr std::uint64_t kSeeds[] = {1, 7, 2025};

/** Lint + validate one compiled artifact; label appears on failure. */
void
expectCleanCompile(const ICompilerBackend &backend,
                   const TargetDevice &device, const Circuit &circuit,
                   const std::string &label)
{
    const CompileResult result = backend.compile(circuit);
    const LintReport report =
        lintSchedule(result.schedule, result.lowered, device);
    EXPECT_TRUE(report.clean())
        << label << "\n" << report.renderText();
    const ValidationReport replay = ScheduleValidator(device).validate(
        result.schedule, result.lowered);
    EXPECT_TRUE(replay.valid) << label << ": " << replay.firstError;
}

TEST(LintFuzz, MusstiSingleModuleRandomCircuitsLintClean)
{
    MusstiConfig config; // default device: one module, 64 slots
    for (const std::uint64_t seed : kSeeds) {
        const Circuit circuit = makeRandomCircuit(24, 60, seed);
        const auto device =
            DeviceRegistry::createEml(config.device, circuit.numQubits());
        expectCleanCompile(*makeMusstiBackend(config), *device, circuit,
                           "mussti/default seed=" + std::to_string(seed));
    }
}

TEST(LintFuzz, MusstiMultiModuleRandomCircuitsLintClean)
{
    // 20 qubits per module forces 40-qubit circuits across two modules,
    // exercising fiber gates and cross-module placement.
    MusstiConfig config;
    config.device = DeviceRegistry::parse(
                        "eml:cap=12,storage=2,op=1,optical=1,maxq=20")
                        .eml;
    for (const std::uint64_t seed : kSeeds) {
        const Circuit circuit = makeRandomCircuit(40, 80, seed);
        const auto device =
            DeviceRegistry::createEml(config.device, circuit.numQubits());
        expectCleanCompile(*makeMusstiBackend(config), *device, circuit,
                           "mussti/multi seed=" + std::to_string(seed));
    }
}

TEST(LintFuzz, GridBaselinesRandomCircuitsLintClean)
{
    const GridConfig grids[] = {{2, 2, 16}, {3, 2, 8}};
    for (const std::string &backend_name : gridBackendNames()) {
        for (const GridConfig &grid : grids) {
            const auto backend = makeGridBackend(backend_name, grid);
            const GridDevice device(grid);
            for (const std::uint64_t seed : kSeeds) {
                const Circuit circuit = makeRandomCircuit(24, 60, seed);
                expectCleanCompile(
                    *backend, device, circuit,
                    backend_name + "/" + device.spec() +
                        " seed=" + std::to_string(seed));
            }
        }
    }
}

} // namespace
} // namespace mussti
