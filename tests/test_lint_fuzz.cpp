/**
 * @file
 * Bounded fuzz smoke: the linter as an oracle over random workloads.
 *
 * Random circuits are compiled through every backend against two device
 * shapes each, and every resulting schedule must lint clean AND satisfy
 * the replay validator. This is the cheap always-on slice of the fuzz
 * strategy (ISSUE 7): the corpus test proves the linter catches planted
 * violations; this test proves the compilers never produce one on
 * inputs nobody hand-picked. Seeds are fixed so failures reproduce.
 */
#include <gtest/gtest.h>

#include <future>
#include <vector>

#include "arch/device_registry.h"
#include "baselines/backend_factory.h"
#include "common/hash.h"
#include "core/compile_service.h"
#include "lint/schedule_linter.h"
#include "sim/validator.h"
#include "workloads/workloads.h"

namespace mussti {
namespace {

constexpr std::uint64_t kSeeds[] = {1, 7, 2025};

/** FNV-1a over everything a compilation produces (the digest the
 * golden suites use, duplicated to keep this suite self-contained). */
std::uint64_t
scheduleFingerprint(const CompileResult &r)
{
    Fnv1a h;
    h.update(static_cast<std::uint64_t>(r.schedule.ops.size()));
    for (const ScheduledOp &op : r.schedule.ops) {
        h.update(static_cast<int>(op.kind));
        h.update(op.q0);
        h.update(op.q1);
        h.update(op.zoneFrom);
        h.update(op.zoneTo);
        h.update(op.durationUs);
        h.update(op.nbar);
        h.update(op.circuitGate);
        h.update(op.inserted);
        h.update(op.enterFront);
    }
    for (const auto &chain : r.schedule.initialChains) {
        h.update(static_cast<std::uint64_t>(chain.size()));
        for (int q : chain)
            h.update(q);
    }
    for (const auto &chain : r.finalChains) {
        h.update(static_cast<std::uint64_t>(chain.size()));
        for (int q : chain)
            h.update(q);
    }
    h.update(r.schedule.shuttleCount);
    h.update(r.schedule.ionSwapCount);
    h.update(r.schedule.insertedSwapGates);
    h.update(r.swapInsertions);
    h.update(r.evictions);
    h.update(r.metrics.shuttleCount);
    h.update(r.metrics.executionTimeUs);
    h.update(r.metrics.lnFidelity);
    return h.digest();
}

/** Lint + validate one compiled artifact; label appears on failure. */
void
expectCleanCompile(const ICompilerBackend &backend,
                   const TargetDevice &device, const Circuit &circuit,
                   const std::string &label)
{
    const CompileResult result = backend.compile(circuit);
    const LintReport report =
        lintSchedule(result.schedule, result.lowered, device);
    EXPECT_TRUE(report.clean())
        << label << "\n" << report.renderText();
    const ValidationReport replay = ScheduleValidator(device).validate(
        result.schedule, result.lowered);
    EXPECT_TRUE(replay.valid) << label << ": " << replay.firstError;
}

TEST(LintFuzz, MusstiSingleModuleRandomCircuitsLintClean)
{
    MusstiConfig config; // default device: one module, 64 slots
    for (const std::uint64_t seed : kSeeds) {
        const Circuit circuit = makeRandomCircuit(24, 60, seed);
        const auto device =
            DeviceRegistry::createEml(config.device, circuit.numQubits());
        expectCleanCompile(*makeMusstiBackend(config), *device, circuit,
                           "mussti/default seed=" + std::to_string(seed));
    }
}

TEST(LintFuzz, MusstiMultiModuleRandomCircuitsLintClean)
{
    // 20 qubits per module forces 40-qubit circuits across two modules,
    // exercising fiber gates and cross-module placement.
    MusstiConfig config;
    config.device = DeviceRegistry::parse(
                        "eml:cap=12,storage=2,op=1,optical=1,maxq=20")
                        .eml;
    for (const std::uint64_t seed : kSeeds) {
        const Circuit circuit = makeRandomCircuit(40, 80, seed);
        const auto device =
            DeviceRegistry::createEml(config.device, circuit.numQubits());
        expectCleanCompile(*makeMusstiBackend(config), *device, circuit,
                           "mussti/multi seed=" + std::to_string(seed));
    }
}

TEST(LintFuzz, GridBaselinesRandomCircuitsLintClean)
{
    const GridConfig grids[] = {{2, 2, 16}, {3, 2, 8}};
    for (const std::string &backend_name : gridBackendNames()) {
        for (const GridConfig &grid : grids) {
            const auto backend = makeGridBackend(backend_name, grid);
            const GridDevice device(grid);
            for (const std::uint64_t seed : kSeeds) {
                const Circuit circuit = makeRandomCircuit(24, 60, seed);
                expectCleanCompile(
                    *backend, device, circuit,
                    backend_name + "/" + device.spec() +
                        " seed=" + std::to_string(seed));
            }
        }
    }
}

// ---- service differentials (ROADMAP fuzz-strategy follow-up) ---------

TEST(LintFuzz, ThreadedServiceMatchesSerialCompiles)
{
    // The same random circuits, compiled directly (serial oracle) and
    // through a 4-thread CompileService submitted all at once: worker
    // scheduling, the per-thread workspaces, and the cache layers must
    // never leak into the output.
    MusstiConfig config;
    const auto backend = makeMusstiBackend(config);

    std::vector<Circuit> circuits;
    for (const std::uint64_t seed : kSeeds) {
        for (const int qubits : {16, 24, 32})
            circuits.push_back(makeRandomCircuit(qubits, 60, seed));
    }

    CompileServiceConfig svc;
    svc.numThreads = 4;
    CompileService service(svc);
    std::vector<std::future<CompileResult>> threaded;
    threaded.reserve(circuits.size());
    for (const Circuit &qc : circuits)
        threaded.push_back(service.submit(backend, qc));

    for (std::size_t i = 0; i < circuits.size(); ++i) {
        EXPECT_EQ(scheduleFingerprint(threaded[i].get()),
                  scheduleFingerprint(backend->compile(circuits[i])))
            << "circuit " << i << " (" << circuits[i].name()
            << ") diverged between serial and 4-thread compiles";
    }
}

TEST(LintFuzz, DeltaWarmMatchesColdOnRandomExtensions)
{
    // Same rng seed, more two-qubit gates: the extension shares the
    // base's whole gate stream up to the measure block, so a snapshot-
    // seeded warm compile must reproduce the cold (knob-off) compile
    // bit for bit. Dense checkpoints keep small circuits resumable.
    MusstiConfig config;
    MusstiConfig delta_config = config;
    delta_config.deltaCompile = true;
    delta_config.deltaCheckpointGates = 16;
    const auto cold_backend = makeMusstiBackend(config);
    const auto delta_backend = makeMusstiBackend(delta_config);

    for (const std::uint64_t seed : kSeeds) {
        // Deep circuits (well past the 64-layer look-ahead horizon)
        // give the warm path a real chance to resume; shallow ones
        // exercise the probe-and-fall-back path. Both must match cold.
        const Circuit base = makeRandomCircuit(24, 800, seed);
        const Circuit edited = makeRandomCircuit(24, 880, seed);

        const std::uint64_t cold =
            scheduleFingerprint(cold_backend->compile(edited));

        CompileServiceConfig svc;
        svc.numThreads = 1;
        svc.cacheCapacity = 0; // The edited job must really compile.
        svc.snapshotCacheCapacity = 16;
        CompileService service(svc);
        service.submit(delta_backend, base).get();
        EXPECT_EQ(scheduleFingerprint(
                      service.submit(delta_backend, edited).get()),
                  cold)
            << "seed " << seed
            << ": delta-warm compile diverged from the cold oracle";
    }
}

} // namespace
} // namespace mussti
