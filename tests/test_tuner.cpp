/**
 * @file
 * Tests for the device auto-tuner (src/tune/): thread-count
 * independence of the Pareto front and recommendation, pinned
 * recommended specs per workload, feasibility handling, workload-token
 * parsing, and ScoreCard dominance.
 */
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "common/fault_injection.h"
#include "common/logging.h"
#include "sim/score_card.h"
#include "tune/tuner.h"

namespace mussti {
namespace {

/** Bit-exact equality of everything the tuner scores (not wall-clock). */
void
expectSameScores(const ScoreCard &a, const ScoreCard &b)
{
    EXPECT_EQ(a.log10Fidelity, b.log10Fidelity);
    EXPECT_EQ(a.makespanUs, b.makespanUs);
    EXPECT_EQ(a.shuttles, b.shuttles);
}

void
expectSameOutcome(const TuneOutcome &a, const TuneOutcome &b)
{
    ASSERT_EQ(a.candidates.size(), b.candidates.size());
    for (std::size_t i = 0; i < a.candidates.size(); ++i) {
        EXPECT_EQ(a.candidates[i].spec.canonical(),
                  b.candidates[i].spec.canonical());
        EXPECT_EQ(a.candidates[i].feasible, b.candidates[i].feasible);
        EXPECT_EQ(a.candidates[i].onParetoFront,
                  b.candidates[i].onParetoFront);
        expectSameScores(a.candidates[i].total, b.candidates[i].total);
        ASSERT_EQ(a.candidates[i].perWorkload.size(),
                  b.candidates[i].perWorkload.size());
        for (std::size_t w = 0; w < a.candidates[i].perWorkload.size();
             ++w)
            expectSameScores(a.candidates[i].perWorkload[w],
                             b.candidates[i].perWorkload[w]);
    }
    EXPECT_EQ(a.paretoFront, b.paretoFront);
    EXPECT_EQ(a.recommended, b.recommended);
}

TEST(Tuner, ParetoFrontAndRecommendationIndependentOfThreadCount)
{
    // The ISSUE-5 determinism contract: the same search under 1 thread
    // and N threads yields identical Pareto fronts and recommendation.
    TunerConfig config;
    config.search = "eml:modules=3..5,cap=12..16:step=2";
    config.workloads = {parseTuneWorkload("qaoa:48"),
                        parseTuneWorkload("bv:64")};

    config.numThreads = 1;
    const TuneOutcome serial = tuneDeviceSpec(config);
    config.numThreads = 4;
    const TuneOutcome parallel = tuneDeviceSpec(config);

    ASSERT_FALSE(serial.paretoFront.empty());
    expectSameOutcome(serial, parallel);
}

TEST(Tuner, RecommendedSpecIsPinnedForQaoa96)
{
    // The ISSUE-5 acceptance sweep. These values are goldens of the
    // deterministic compile path (like the backend-golden FNVs): an
    // intentional scheduler change may re-pin them with a changelog
    // note, anything else moving them is a regression.
    TunerConfig config;
    config.search = "eml:modules=2..8,cap=8..32";
    config.workloads = {parseTuneWorkload("qaoa:96")};
    config.numThreads = 4;
    const TuneOutcome outcome = tuneDeviceSpec(config);

    EXPECT_EQ(outcome.candidates.size(), 175u);
    std::size_t feasible = 0;
    for (const TuneCandidate &candidate : outcome.candidates)
        feasible += candidate.feasible ? 1 : 0;
    EXPECT_EQ(feasible, 144u); // modules >= 3, cap >= 9 fit qaoa-96
    EXPECT_EQ(outcome.paretoFront.size(), 18u);
    ASSERT_GE(outcome.recommended, 0);
    EXPECT_EQ(outcome.recommendedCandidate().spec.canonical(),
              "eml:cap=30,storage=2,op=1,optical=1,modules=3,maxq=32");
}

TEST(Tuner, RecommendedSpecIsPinnedForAdder64)
{
    TunerConfig config;
    config.search = "eml:modules=2..3,cap=12..20:step=4";
    config.workloads = {parseTuneWorkload("adder:64")};
    config.numThreads = 2;
    const TuneOutcome outcome = tuneDeviceSpec(config);
    ASSERT_GE(outcome.recommended, 0);
    EXPECT_EQ(outcome.recommendedCandidate().spec.canonical(),
              "eml:cap=16,storage=2,op=1,optical=1,modules=2,maxq=32");
}

TEST(Tuner, InfeasibleCandidatesAreMarkedAndExcluded)
{
    // qaoa-96 cannot fit 2 modules x 32 qubits; the candidate must be
    // marked (with the device's own diagnostic) and kept off the front.
    TunerConfig config;
    config.search = "eml:modules=2..3,cap=16";
    config.workloads = {parseTuneWorkload("qaoa:96")};
    config.numThreads = 2;
    const TuneOutcome outcome = tuneDeviceSpec(config);

    ASSERT_EQ(outcome.candidates.size(), 2u);
    EXPECT_FALSE(outcome.candidates[0].feasible);
    EXPECT_FALSE(outcome.candidates[0].infeasibleReason.empty());
    EXPECT_FALSE(outcome.candidates[0].onParetoFront);
    EXPECT_TRUE(outcome.candidates[0].perWorkload.empty());
    EXPECT_TRUE(outcome.candidates[1].feasible);
    EXPECT_EQ(outcome.paretoFront, std::vector<std::size_t>{1});
    EXPECT_EQ(outcome.recommended, 1);
}

TEST(Tuner, FullyInfeasibleSearchIsAUserError)
{
    TunerConfig config;
    config.search = "eml:modules=2,cap=16";
    config.workloads = {parseTuneWorkload("qaoa:96")};
    EXPECT_THROW(tuneDeviceSpec(config), std::runtime_error);
}

TEST(Tuner, AggregatesScoresAcrossWorkloads)
{
    TunerConfig config;
    config.search = "eml:modules=2,cap=16";
    config.workloads = {parseTuneWorkload("ghz:48"),
                        parseTuneWorkload("bv:48")};
    config.numThreads = 2;
    const TuneOutcome outcome = tuneDeviceSpec(config);
    ASSERT_EQ(outcome.candidates.size(), 1u);
    const TuneCandidate &candidate = outcome.candidates[0];
    ASSERT_EQ(candidate.perWorkload.size(), 2u);
    EXPECT_EQ(candidate.total.shuttles,
              candidate.perWorkload[0].shuttles +
                  candidate.perWorkload[1].shuttles);
    EXPECT_DOUBLE_EQ(candidate.total.makespanUs,
                     candidate.perWorkload[0].makespanUs +
                         candidate.perWorkload[1].makespanUs);
}

TEST(Tuner, ParseTuneWorkloadValidatesTokens)
{
    const TuneWorkload workload = parseTuneWorkload("qaoa:96");
    EXPECT_EQ(workload.family, "qaoa");
    EXPECT_EQ(workload.qubits, 96);
    EXPECT_EQ(workload.label(), "qaoa_n96");

    EXPECT_THROW(parseTuneWorkload("qaoa"), std::runtime_error);
    EXPECT_THROW(parseTuneWorkload(":96"), std::runtime_error);
    EXPECT_THROW(parseTuneWorkload("qaoa:banana"), std::runtime_error);
    EXPECT_THROW(parseTuneWorkload("qaoa:0"), std::runtime_error);
    EXPECT_THROW(parseTuneWorkload("qaoa:-4"), std::runtime_error);
    try {
        (void)parseTuneWorkload("qaoa:banana");
        FAIL();
    } catch (const std::runtime_error &err) {
        EXPECT_NE(std::string(err.what()).find("banana"),
                  std::string::npos) << err.what();
    }
}

/** Disarm on scope exit so a failing test cannot leak its script. */
class ScopedFaultScript
{
  public:
    explicit ScopedFaultScript(FaultScript script)
    {
        FaultInjector::arm(std::move(script));
    }
    ~ScopedFaultScript() { FaultInjector::disarm(); }
};

TEST(TunerFaults, TransientFaultsLeaveTheFrontBitIdentical)
{
    // The fault-tolerance contract: scripted Transient faults at the
    // probe, the sweep harvest, AND the service's worker dequeue all
    // retry deterministically, so the tuned front and recommendation
    // are bit-identical to the unfaulted run.
    TunerConfig config;
    config.search = "eml:modules=2..3,cap=16";
    config.workloads = {parseTuneWorkload("ghz:24")};
    config.numThreads = 1; // pins the WorkerDequeue visit order
    const TuneOutcome baseline = tuneDeviceSpec(config);

    FaultScript script;
    script.triggers = {
        {FaultSite::TunerProbe, 0, ErrorCategory::Transient,
         "fault.injected"},
        {FaultSite::TunerSweep, 1, ErrorCategory::Transient,
         "fault.injected"},
        {FaultSite::WorkerDequeue, 0, ErrorCategory::Transient,
         "fault.injected"},
    };
    const ScopedFaultScript armed(script);
    const TuneOutcome faulted = tuneDeviceSpec(config);

    EXPECT_EQ(FaultInjector::firedCount(FaultSite::TunerProbe), 1u);
    EXPECT_EQ(FaultInjector::firedCount(FaultSite::TunerSweep), 1u);
    EXPECT_EQ(FaultInjector::firedCount(FaultSite::WorkerDequeue), 1u);
    ASSERT_FALSE(faulted.paretoFront.empty());
    expectSameOutcome(baseline, faulted);
}

TEST(TunerFaults, PersistentProbeFaultMarksOnlyThatCandidateInfeasible)
{
    // A non-Transient probe failure is final: the candidate drops out
    // with the structured reason, the rest of the tune proceeds.
    const ScopedFatalSilence quiet; // ResourceExhausted echoes
    FaultScript script;
    script.triggers = {{FaultSite::TunerProbe, 0,
                        ErrorCategory::ResourceExhausted,
                        "fault.injected"}};
    const ScopedFaultScript armed(script);

    TunerConfig config;
    config.search = "eml:modules=2..3,cap=16";
    config.workloads = {parseTuneWorkload("ghz:24")};
    config.numThreads = 1;
    const TuneOutcome outcome = tuneDeviceSpec(config);

    ASSERT_EQ(outcome.candidates.size(), 2u);
    EXPECT_FALSE(outcome.candidates[0].feasible);
    EXPECT_NE(outcome.candidates[0].infeasibleReason.find(
                  "fault.injected"),
              std::string::npos)
        << outcome.candidates[0].infeasibleReason;
    EXPECT_TRUE(outcome.candidates[1].feasible);
    EXPECT_EQ(outcome.paretoFront, std::vector<std::size_t>{1});
    EXPECT_EQ(outcome.recommended, 1);
}

TEST(TunerFaults, SweepJobFailingEveryRoundPoisonsOnlyItsCandidate)
{
    // 2 feasible candidates x 1 workload = flat jobs 0 and 1. Job 0's
    // harvest faults Transient in every round (visits 0, then 2 and 3
    // as the retry batches shrink to just it), exhausting the round
    // bound; candidate 0 must drop out infeasible while candidate 1 is
    // scored and recommended.
    FaultScript script;
    script.triggers = {
        {FaultSite::TunerSweep, 0, ErrorCategory::Transient,
         "fault.injected"},
        {FaultSite::TunerSweep, 2, ErrorCategory::Transient,
         "fault.injected"},
        {FaultSite::TunerSweep, 3, ErrorCategory::Transient,
         "fault.injected"},
    };
    const ScopedFaultScript armed(script);

    TunerConfig config;
    config.search = "eml:modules=2..3,cap=16";
    config.workloads = {parseTuneWorkload("ghz:24")};
    config.numThreads = 1;
    const TuneOutcome outcome = tuneDeviceSpec(config);

    EXPECT_EQ(FaultInjector::firedCount(FaultSite::TunerSweep), 3u);
    ASSERT_EQ(outcome.candidates.size(), 2u);
    EXPECT_FALSE(outcome.candidates[0].feasible);
    EXPECT_NE(outcome.candidates[0].infeasibleReason.find("Transient"),
              std::string::npos)
        << outcome.candidates[0].infeasibleReason;
    EXPECT_TRUE(outcome.candidates[0].perWorkload.empty());
    EXPECT_TRUE(outcome.candidates[1].feasible);
    EXPECT_EQ(outcome.paretoFront, std::vector<std::size_t>{1});
    EXPECT_EQ(outcome.recommended, 1);
}

TEST(Tuner, ScoreCardDominanceIsStrictPareto)
{
    const ScoreCard base{-5.0, 100.0, 10, 0.0};
    ScoreCard better = base;
    better.shuttles = 8;
    ScoreCard mixed = base;
    mixed.log10Fidelity = -4.0; // better fidelity...
    mixed.makespanUs = 120.0;   // ...worse makespan

    EXPECT_TRUE(better.dominates(base));
    EXPECT_FALSE(base.dominates(better));
    EXPECT_FALSE(base.dominates(base)); // equal: no strict objective
    EXPECT_FALSE(mixed.dominates(base));
    EXPECT_FALSE(base.dominates(mixed));
}

} // namespace
} // namespace mussti
