/**
 * @file
 * Tests for initial mapping (paper section 3.4): trivial level-ordered
 * placement and the SABRE two-fold search.
 */
#include <gtest/gtest.h>

#include "core/compiler.h"
#include "core/mapper.h"
#include "sim/validator.h"
#include "workloads/workloads.h"

namespace mussti {
namespace {

TEST(TrivialMapping, PlacesAllQubits)
{
    MusstiConfig config;
    const EmlDevice device(config.device, 70);
    const Placement p = trivialPlacement(device, 70);
    EXPECT_TRUE(p.allPlaced());
}

TEST(TrivialMapping, FillsHighestLevelFirst)
{
    MusstiConfig config;
    const EmlDevice device(config.device, 40); // 2 modules
    const Placement p = trivialPlacement(device, 40);
    // Qubit 0 goes to the optical zone (level 2) of module 0.
    const int zone0 = p.zoneOf(0);
    EXPECT_EQ(device.zone(zone0).kind, ZoneKind::Optical);
    EXPECT_EQ(device.zone(zone0).module, 0);
    // Qubit 16 (after 16 optical slots) goes to the operation zone.
    EXPECT_EQ(device.zone(p.zoneOf(16)).kind, ZoneKind::Operation);
    // Module 1 starts at qubit 32.
    EXPECT_EQ(device.zone(p.zoneOf(32)).module, 1);
    EXPECT_EQ(device.zone(p.zoneOf(32)).kind, ZoneKind::Optical);
}

TEST(TrivialMapping, RespectsModuleRanges)
{
    MusstiConfig config;
    const EmlDevice device(config.device, 96);
    const Placement p = trivialPlacement(device, 96);
    for (int q = 0; q < 96; ++q)
        EXPECT_EQ(device.zone(p.zoneOf(q)).module, q / 32) << q;
}

TEST(TrivialMapping, CapacityNeverExceeded)
{
    MusstiConfig config;
    config.device.trapCapacity = 12;
    const EmlDevice device(config.device, 48);
    const Placement p = trivialPlacement(device, 48);
    for (int z = 0; z < device.numZones(); ++z)
        EXPECT_LE(p.sizeOf(z), device.zone(z).capacity);
}

TEST(SabreMapping, ProducesCompletePlacement)
{
    MusstiConfig config;
    const Circuit qc = makeAdder(64).withSwapsDecomposed();
    const EmlDevice device(config.device, 64);
    const PhysicalParams params;
    const Placement p = sabrePlacement(device, params, config, qc);
    EXPECT_TRUE(p.allPlaced());
    for (int z = 0; z < device.numZones(); ++z)
        EXPECT_LE(p.sizeOf(z), device.zone(z).capacity);
}

TEST(SabreMapping, DiffersFromTrivialOnStructuredCircuits)
{
    MusstiConfig config;
    const Circuit qc = makeQft(48).withSwapsDecomposed();
    const EmlDevice device(config.device, 48);
    const PhysicalParams params;
    const Placement trivial = trivialPlacement(device, 48);
    const Placement sabre = sabrePlacement(device, params, config, qc);
    int moved = 0;
    for (int q = 0; q < 48; ++q)
        moved += trivial.zoneOf(q) != sabre.zoneOf(q);
    EXPECT_GT(moved, 0);
}

TEST(SabreMapping, CompilesValidSchedules)
{
    MusstiConfig config;
    config.mapping = MappingKind::Sabre;
    const Circuit qc = makeSqrt(64);
    const auto result = MusstiCompiler(config).compile(qc);
    const EmlDevice device(config.device, 64);
    const auto report = ScheduleValidator(device.zoneInfos())
                            .validate(result.schedule, result.lowered);
    EXPECT_TRUE(report) << report.firstError;
}

TEST(SabreMapping, HelpsOrAtLeastDoesNotExplodeShuttles)
{
    // The paper's ablation (Fig 8) shows SABRE strictly helps fidelity
    // on its benchmarks; as a robust cross-workload property we assert
    // SABRE never costs more than a small factor over trivial.
    for (const char *family : {"adder", "bv", "ghz", "qaoa"}) {
        const Circuit qc = makeBenchmark(family, 64);
        MusstiConfig config;
        config.mapping = MappingKind::Trivial;
        const auto trivial = MusstiCompiler(config).compile(qc);
        config.mapping = MappingKind::Sabre;
        const auto sabre = MusstiCompiler(config).compile(qc);
        EXPECT_LE(sabre.metrics.shuttleCount,
                  trivial.metrics.shuttleCount * 2 + 8)
            << family;
    }
}

TEST(SabreMapping, MappingMismatchDeviceSizingIsFatal)
{
    MusstiConfig config;
    const EmlDevice device(config.device, 64);
    EXPECT_THROW(trivialPlacement(device, 32), std::runtime_error);
}

} // namespace
} // namespace mussti
