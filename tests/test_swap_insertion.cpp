/**
 * @file
 * Tests for the weight table and SWAP insertion (paper section 3.3):
 * W(q, c) accounting, threshold behaviour, and the shuttle savings the
 * mechanism exists to deliver.
 */
#include <gtest/gtest.h>

#include "core/compiler.h"
#include "core/mapper.h"
#include "core/weight_table.h"
#include "sim/validator.h"
#include "workloads/workloads.h"

namespace mussti {
namespace {

/**
 * A communication pattern engineered for SWAP insertion: qubit 0 (module
 * 0) first talks to module 1 once, then repeatedly interacts with
 * module-1 qubits — exactly the Fig 5 scenario.
 */
Circuit
fig5Circuit(int per_module)
{
    const int n = 2 * per_module;
    Circuit qc(n, "fig5");
    // One cross-module gate to trigger the insertion check.
    qc.cx(0, per_module);
    // Then a burst of gates between qubit 0 and module-1 residents.
    for (int i = 1; i <= 6; ++i)
        qc.cx(0, per_module + i);
    return qc;
}

TEST(WeightTable, CountsPartnersByModule)
{
    MusstiConfig config;
    config.device.maxQubitsPerModule = 8;
    const Circuit qc = fig5Circuit(8);
    const EmlDevice device(config.device, qc.numQubits());
    const Placement placement = trivialPlacement(device, qc.numQubits());
    const DependencyDag dag(qc);
    const WeightTable weights(dag, placement, device, 8);

    // Qubit 0's near-future partners all live on module 1.
    EXPECT_EQ(weights.weight(0, 0), 0);
    EXPECT_GE(weights.weight(0, 1), 6);
    const auto [best, w] = weights.bestForeignModule(0, 0);
    EXPECT_EQ(best, 1);
    EXPECT_GE(w, 6);
}

TEST(WeightTable, TotalWeightSumsModules)
{
    MusstiConfig config;
    config.device.maxQubitsPerModule = 8;
    const Circuit qc = fig5Circuit(8);
    const EmlDevice device(config.device, qc.numQubits());
    const Placement placement = trivialPlacement(device, qc.numQubits());
    const DependencyDag dag(qc);
    const WeightTable weights(dag, placement, device, 8);
    EXPECT_EQ(weights.totalWeight(0),
              weights.weight(0, 0) + weights.weight(0, 1));
}

TEST(WeightTable, WindowBoundsLookAhead)
{
    // GHZ is serial: with k=2 only 2 nodes are visible.
    const Circuit qc = makeGhz(64);
    MusstiConfig config;
    const EmlDevice device(config.device, 64);
    const Placement placement = trivialPlacement(device, 64);
    const DependencyDag dag(qc);
    const WeightTable narrow(dag, placement, device, 2);
    const WeightTable wide(dag, placement, device, 40);
    int narrow_total = 0, wide_total = 0;
    for (int q = 0; q < 64; ++q) {
        narrow_total += narrow.totalWeight(q);
        wide_total += wide.totalWeight(q);
    }
    EXPECT_LT(narrow_total, wide_total);
}

TEST(SwapInsertion, FiresOnFig5Pattern)
{
    MusstiConfig config;
    config.device.maxQubitsPerModule = 8;
    config.mapping = MappingKind::Trivial;
    const Circuit qc = fig5Circuit(8);
    const auto result = MusstiCompiler(config).compile(qc);
    EXPECT_GE(result.swapInsertions, 1);

    const EmlDevice device(config.device, qc.numQubits());
    const auto report = ScheduleValidator(device.zoneInfos())
                            .validate(result.schedule, result.lowered);
    EXPECT_TRUE(report) << report.firstError;
}

TEST(SwapInsertion, ReducesFiberGatesOnFig5Pattern)
{
    MusstiConfig config;
    config.device.maxQubitsPerModule = 8;
    config.mapping = MappingKind::Trivial;
    const Circuit qc = fig5Circuit(8);

    auto with = MusstiCompiler(config).compile(qc);
    config.enableSwapInsertion = false;
    auto without = MusstiCompiler(config).compile(qc);

    // Without insertion every one of the 7 gates is a fiber gate; with
    // it, after the swap the burst executes locally.
    EXPECT_EQ(without.metrics.fiberGateCount, 7);
    EXPECT_LT(with.metrics.fiberGateCount -
                  3 * with.metrics.insertedSwapGates, 7);
}

TEST(SwapInsertion, DisabledMeansNoInsertedGates)
{
    MusstiConfig config;
    config.enableSwapInsertion = false;
    const auto result = MusstiCompiler(config).compile(makeBv(64));
    EXPECT_EQ(result.swapInsertions, 0);
    EXPECT_EQ(result.metrics.insertedSwapGates, 0);
}

TEST(SwapInsertion, ThresholdBelowThreeRejected)
{
    MusstiConfig config;
    config.swapThreshold = 2;
    EXPECT_THROW(MusstiCompiler(config).compile(makeGhz(64)),
                 std::runtime_error);
}

TEST(SwapInsertion, HighThresholdSuppressesInsertion)
{
    MusstiConfig config;
    config.device.maxQubitsPerModule = 8;
    config.mapping = MappingKind::Trivial;
    config.swapThreshold = 1000;
    const auto result = MusstiCompiler(config).compile(fig5Circuit(8));
    EXPECT_EQ(result.swapInsertions, 0);
}

TEST(SwapInsertion, InsertedTriplesAreConsecutiveFiberGates)
{
    MusstiConfig config;
    config.device.maxQubitsPerModule = 8;
    config.mapping = MappingKind::Trivial;
    const auto result = MusstiCompiler(config).compile(fig5Circuit(8));
    int run = 0;
    for (const auto &op : result.schedule.ops) {
        if (op.isGate() && op.inserted) {
            EXPECT_EQ(op.kind, OpKind::FiberGate);
            ++run;
        } else if (op.isGate()) {
            EXPECT_EQ(run % 3, 0);
        }
    }
    EXPECT_EQ(run, 3 * result.swapInsertions);
}

TEST(SwapInsertion, LookAheadSweepStaysValid)
{
    for (int k : {2, 4, 8, 12, 16}) {
        MusstiConfig config;
        config.lookAhead = k;
        config.device.maxQubitsPerModule = 16;
        const Circuit qc = makeSqrt(47); // multi-module communication
        const auto result = MusstiCompiler(config).compile(qc);
        const EmlDevice device(config.device, qc.numQubits());
        const auto report = ScheduleValidator(device.zoneInfos())
                                .validate(result.schedule, result.lowered);
        EXPECT_TRUE(report) << "k=" << k << ": " << report.firstError;
    }
}

} // namespace
} // namespace mussti
